package kregret

// Extensions beyond the paper: the optimal 2-D solver, the
// average-regret greedy (the paper's first future direction) and
// interactive utility learning (the second, after Nanongkai et al.,
// SIGMOD 2012).

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/interactive"
)

// QueryExact2D answers a k-regret query *optimally* for
// two-dimensional datasets (the paper's algorithms are greedy
// heuristics in every dimension). It is how this repository measures
// the greedy's optimality gap on planar data. Returns an error when
// Dim() != 2.
func (d *Dataset) QueryExact2D(k int) (*Answer, error) {
	if k < 1 {
		return nil, ErrBadK
	}
	res, err := core.Exact2D(d.snap().pts, k)
	if err != nil {
		return nil, fmt.Errorf("kregret: %w", err)
	}
	return &Answer{
		Indices:    res.Indices,
		MRR:        res.MRR,
		Algorithm:  AlgoGeoGreedy, // reported for interface uniformity
		Candidates: CandidatesHappy,
	}, nil
}

// QueryAverage selects at most k tuples minimizing the *average*
// regret ratio over utility functions sampled uniformly from the
// non-negative unit sphere (Monte-Carlo, deterministic for a given
// seed). The returned Answer's MRR field holds the exact *maximum*
// regret ratio of the selection so answers remain comparable; the
// second return value is the sampled average regret.
func (d *Dataset) QueryAverage(k, samples int, seed int64) (*Answer, float64, error) {
	if k < 1 {
		return nil, 0, ErrBadK
	}
	st := d.snap()
	res, err := core.AverageGreedy(st.pts, k, samples, seed)
	if err != nil {
		return nil, 0, fmt.Errorf("kregret: %w", err)
	}
	mrr, err := core.MRRGeometric(st.pts, res.Indices)
	if err != nil {
		return nil, 0, fmt.Errorf("kregret: %w", err)
	}
	return &Answer{
		Indices:    res.Indices,
		MRR:        mrr,
		Algorithm:  AlgoGeoGreedy,
		Candidates: CandidatesAll,
	}, res.MRR, nil
}

// InteractiveSession starts an interactive regret-minimization
// session over the dataset: repeatedly Show a handful of tuples, let
// the user Choose their favourite, and Recommend converges to a
// near-personal-optimal tuple. See internal/interactive for the
// protocol details.
type InteractiveSession struct {
	s *interactive.Session
}

// NewInteractiveSession prepares a session over this dataset.
func (d *Dataset) NewInteractiveSession() (*InteractiveSession, error) {
	s, err := interactive.NewSession(d.snap().pts)
	if err != nil {
		return nil, fmt.Errorf("kregret: %w", err)
	}
	return &InteractiveSession{s: s}, nil
}

// Show returns `size` dataset indices for the user to compare.
func (s *InteractiveSession) Show(size int) ([]int, error) {
	out, err := s.s.Show(size)
	if err != nil {
		return nil, fmt.Errorf("kregret: %w", err)
	}
	return out, nil
}

// Choose records the user's pick (a position within the last Show).
func (s *InteractiveSession) Choose(position int) error {
	if err := s.s.Choose(position); err != nil {
		return fmt.Errorf("kregret: %w", err)
	}
	return nil
}

// Recommend returns the tuple minimizing this user's worst-case
// regret given the feedback so far, with the regret bound.
func (s *InteractiveSession) Recommend() (index int, regretBound float64, err error) {
	idx, bound, err := s.s.Recommend()
	if err != nil {
		return -1, 0, fmt.Errorf("kregret: %w", err)
	}
	return idx, bound, nil
}

// EstimatedUtility returns the current best guess of the user's
// weight vector (unit length).
func (s *InteractiveSession) EstimatedUtility() (Point, error) {
	w, err := s.s.Estimate()
	if err != nil {
		return nil, fmt.Errorf("kregret: %w", err)
	}
	return Point(geom.Vector(w)), nil
}

// Rounds reports how many feedback rounds have completed.
func (s *InteractiveSession) Rounds() int { return s.s.Rounds() }

// Face is a non-origin face of the convex hull of a selection's
// orthotope closure: the hyperplane Normal·x = Offset (non-negative
// normal). Faces drive the critical-ratio geometry of the paper's
// Lemma 1 and are exposed for inspection and visualization.
type Face struct {
	Normal Point
	Offset float64
}

// Faces returns the non-origin faces of Conv(S) for a selection of
// dataset indices, deterministically ordered.
func (d *Dataset) Faces(selection []int) ([]Face, error) {
	faces, err := core.FacesOf(d.snap().pts, selection)
	if err != nil {
		return nil, fmt.Errorf("kregret: %w", err)
	}
	out := make([]Face, len(faces))
	for i, f := range faces {
		out[i] = Face{Normal: Point(f.Normal), Offset: f.Offset}
	}
	return out, nil
}

// CriticalRatio computes the paper's cr(q, S) for a dataset tuple
// against a selection: < 1 outside the selection's hull (the tuple
// contributes regret), 1 on its boundary, > 1 strictly inside.
func (d *Dataset) CriticalRatio(selection []int, tuple int) (float64, error) {
	st := d.snap()
	if tuple < 0 || tuple >= len(st.pts) {
		return 0, fmt.Errorf("kregret: tuple index %d out of range (n=%d)", tuple, len(st.pts))
	}
	cr, err := core.CriticalRatioOf(st.pts, selection, st.pts[tuple])
	if err != nil {
		return 0, fmt.Errorf("kregret: %w", err)
	}
	return cr, nil
}
