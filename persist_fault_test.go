//go:build kregretfault

// Fault-injection tests for the snapshot persistence path: an
// injected fsync failure (persist.sync) must abort the save, leave no
// temp file behind, and keep the previous on-disk snapshot loadable —
// the atomic-rename protocol never publishes unsynced bytes.
package kregret

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

// leftoverTemps returns the snapshot temp files still present in dir;
// a failed save must have removed its own.
func leftoverTemps(t *testing.T, dir string) []string {
	t.Helper()
	var temps []string
	for _, pat := range []string{".kregret-index-*", ".kregret-dataset-*"} {
		m, err := filepath.Glob(filepath.Join(dir, pat))
		if err != nil {
			t.Fatal(err)
		}
		temps = append(temps, m...)
	}
	return temps
}

// TestInjectedFsyncFailureKeepsPreviousIndexSnapshot: SaveFile with
// persist.sync armed fails, removes its temp file, and the previously
// published index snapshot still loads bit-for-bit.
func TestInjectedFsyncFailureKeepsPreviousIndexSnapshot(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	path := filepath.Join(dir, "idx.snap")
	ds, err := NewDataset(testPoints(40, 2, 7))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := ds.BuildIndex()
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.SaveFile(path, ds); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	fault.Arm(fault.SitePersistSync, 1)
	if err := idx.SaveFile(path, ds); err == nil {
		t.Fatal("SaveFile succeeded with a failing fsync")
	}
	if fault.Fired(fault.SitePersistSync) == 0 {
		t.Fatal("persist.sync site never fired")
	}
	if temps := leftoverTemps(t, dir); len(temps) != 0 {
		t.Fatalf("failed save left temp files behind: %v", temps)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("failed save modified the published snapshot")
	}
	if _, err := LoadFile(path, ds); err != nil {
		t.Fatalf("previous snapshot unloadable after failed save: %v", err)
	}
}

// TestInjectedFsyncFailureKeepsDatasetSnapshot: the same guarantee
// for the WAL's base snapshot — a Compact whose snapshot fsync fails
// reports the error, removes its temp, leaves the (snapshot, log)
// pair exactly as it was, and Recover still reproduces the full
// mutation history from it.
func TestInjectedFsyncFailureKeepsDatasetSnapshot(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	walPath := filepath.Join(dir, "ds.wal")
	snapPath := filepath.Join(dir, "ds.snap")
	ds, err := NewDataset([]Point{{1.0, 0.1}, {0.1, 1.0}, {0.5, 0.5}},
		WithoutNormalization(), WithWAL(walPath, snapPath))
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if _, err := ds.Insert(Point{0.9, 0.9}); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	walBefore, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	fault.Arm(fault.SitePersistSync, 1)
	if err := ds.Compact(); err == nil {
		t.Fatal("Compact succeeded with a failing fsync")
	}
	if temps := leftoverTemps(t, dir); len(temps) != 0 {
		t.Fatalf("failed compact left temp files behind: %v", temps)
	}
	after, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	walAfter, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) || string(walBefore) != string(walAfter) {
		t.Fatal("failed compact modified the (snapshot, log) pair")
	}

	// The pair still recovers the acknowledged state, insert included.
	rec, err := Recover(snapPath, walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Len() != 4 || rec.Seq() != 1 {
		t.Fatalf("recovered len/seq = %d/%d, want 4/1", rec.Len(), rec.Seq())
	}
}

// TestEngineFoldSurvivesFsyncFailure: an epoch fold whose post-swap
// persistence hits the failing fsync still swaps the epoch — queries
// see the mutation, the error only reports that durability compaction
// is deferred, and the next fold (fault cleared) persists normally.
func TestEngineFoldSurvivesFsyncFailure(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	walPath := filepath.Join(dir, "eng.wal")
	snapPath := filepath.Join(dir, "eng.snap")
	ds, err := NewDataset([]Point{{1.0, 0.1}, {0.1, 1.0}, {0.5, 0.5}},
		WithoutNormalization(), WithWAL(walPath, snapPath))
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	eng, err := NewEngine(ds)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := eng.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()

	fault.Arm(fault.SitePersistSync, 1)
	err = eng.Apply(context.Background(), InsertMutation(Point{0.9, 0.9}))
	if err == nil {
		t.Fatal("Apply reported success despite the failed compaction fsync")
	}
	if errors.Is(err, ErrShuttingDown) {
		t.Fatalf("unexpected shutdown error: %v", err)
	}
	// The swap happened anyway: the serving epoch has the insert.
	if n := eng.Dataset().Len(); n != 4 {
		t.Fatalf("epoch not swapped after persistence failure: len=%d", n)
	}
	// And the mutation is durable regardless of the failed compact.
	recovered, rerr := Recover(snapPath, walPath)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if recovered.Len() != 4 {
		t.Fatalf("durability lost: recovered len=%d, want 4", recovered.Len())
	}
	if cerr := recovered.Close(); cerr != nil {
		t.Fatal(cerr)
	}

	// With the fault cleared the next fold compacts cleanly.
	if err := eng.Apply(context.Background(), InsertMutation(Point{0.2, 0.2})); err != nil {
		t.Fatalf("fold after cleared fault: %v", err)
	}
}
