package kregret

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func snapshotFixture(t *testing.T) (*Dataset, *Index, []byte) {
	t.Helper()
	ds, err := NewDataset(testPoints(80, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := ds.BuildIndex()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf, ds); err != nil {
		t.Fatal(err)
	}
	return ds, idx, buf.Bytes()
}

// TestSnapshotTruncationEveryByte is the durability regression the
// CRC frame exists for: a snapshot cut at ANY byte boundary must come
// back as ErrCorruptIndex — never a panic, never a silently-wrong
// index. Before the frame, a truncation inside the second gob stream
// could decode into garbage or an opaque gob error.
func TestSnapshotTruncationEveryByte(t *testing.T) {
	ds, _, snap := snapshotFixture(t)
	for i := 0; i < len(snap); i++ {
		idx, err := LoadIndex(bytes.NewReader(snap[:i]), ds)
		if idx != nil {
			t.Fatalf("truncation at byte %d of %d produced an index", i, len(snap))
		}
		if !errors.Is(err, ErrCorruptIndex) {
			t.Fatalf("truncation at byte %d of %d: want ErrCorruptIndex, got %v", i, len(snap), err)
		}
	}
	// The untruncated snapshot still loads.
	if _, err := LoadIndex(bytes.NewReader(snap), ds); err != nil {
		t.Fatalf("full snapshot failed to load: %v", err)
	}
}

// Every single-byte corruption must be detected. Byte 4 is the frame
// version and gets its own error; everywhere else the CRC (or, for
// the magic, the legacy-path gob decoder) reports corruption.
func TestSnapshotBitFlipEveryByte(t *testing.T) {
	ds, _, snap := snapshotFixture(t)
	for i := 0; i < len(snap); i++ {
		mutated := append([]byte(nil), snap...)
		mutated[i] ^= 0xa5
		idx, err := LoadIndex(bytes.NewReader(mutated), ds)
		if err == nil {
			t.Fatalf("bit flip at byte %d of %d accepted (index=%v)", i, len(snap), idx != nil)
		}
		if i == 4 {
			if !strings.Contains(err.Error(), "format") {
				t.Fatalf("version-byte flip: want a format-version error, got %v", err)
			}
			continue
		}
		if !errors.Is(err, ErrCorruptIndex) {
			t.Fatalf("bit flip at byte %d of %d: want ErrCorruptIndex, got %v", i, len(snap), err)
		}
	}
}

// Snapshots written by the pre-frame v1 code (two bare gob streams)
// must still load. The test reconstructs the exact v1 byte layout.
func TestSnapshotV1ReadCompatibility(t *testing.T) {
	ds, idx, _ := snapshotFixture(t)
	var v1 bytes.Buffer
	if err := gob.NewEncoder(&v1).Encode(indexWire{
		Version:  indexVersion,
		Checksum: ds.checksum(),
		N:        ds.Len(),
		Dim:      ds.Dim(),
		Cand:     idx.cand,
	}); err != nil {
		t.Fatal(err)
	}
	if err := idx.list.Save(&v1); err != nil {
		t.Fatal(err)
	}
	// Sanity: a legacy stream must not look framed.
	if bytes.HasPrefix(v1.Bytes(), []byte(snapshotMagic)) {
		t.Fatal("legacy gob stream collides with the snapshot magic")
	}
	loaded, err := LoadIndex(bytes.NewReader(v1.Bytes()), ds)
	if err != nil {
		t.Fatalf("v1 snapshot failed to load: %v", err)
	}
	want, err := idx.Query(5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Query(5)
	if err != nil {
		t.Fatal(err)
	}
	if want.MRR != got.MRR {
		t.Fatalf("v1-loaded index answers differently: %v vs %v", got.MRR, want.MRR)
	}
}

// Payload v1 (explicit Version: 1, no Ext field) must still load —
// that is what every snapshot written before the extreme set rode
// along looks like after the frame is stripped.
func TestSnapshotPayloadV1Compatibility(t *testing.T) {
	ds, idx, _ := snapshotFixture(t)
	var v1 bytes.Buffer
	if err := gob.NewEncoder(&v1).Encode(indexWire{
		Version:  1,
		Checksum: ds.checksum(),
		N:        ds.Len(),
		Dim:      ds.Dim(),
		Cand:     idx.cand,
	}); err != nil {
		t.Fatal(err)
	}
	if err := idx.list.Save(&v1); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(bytes.NewReader(frameSnapshot(v1.Bytes())), ds)
	if err != nil {
		t.Fatalf("payload-v1 snapshot failed to load: %v", err)
	}
	want, err := idx.Query(5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Query(5)
	if err != nil {
		t.Fatal(err)
	}
	if want.MRR != got.MRR {
		t.Fatalf("payload-v1 index answers differently: %v vs %v", got.MRR, want.MRR)
	}
}

// Loading a v2 snapshot into a fresh dataset seeds its skyline cache,
// and the seeded skyline must be exactly what the dataset would have
// computed itself — otherwise pruned evaluation would silently change.
func TestSnapshotSeedsExtremeSet(t *testing.T) {
	ds, idx, snap := snapshotFixture(t)
	fresh, err := NewDataset(testPoints(80, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(bytes.NewReader(snap), fresh)
	if err != nil {
		t.Fatal(err)
	}
	wantSky, err := ds.Skyline()
	if err != nil {
		t.Fatal(err)
	}
	gotSky, err := fresh.Skyline()
	if err != nil {
		t.Fatal(err)
	}
	if len(wantSky) != len(gotSky) {
		t.Fatalf("seeded skyline has %d points, computed %d", len(gotSky), len(wantSky))
	}
	for i := range wantSky {
		if wantSky[i] != gotSky[i] {
			t.Fatalf("seeded skyline differs at %d: %d vs %d", i, gotSky[i], wantSky[i])
		}
	}
	want, err := idx.Query(5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Query(5)
	if err != nil {
		t.Fatal(err)
	}
	if want.MRR != got.MRR {
		t.Fatalf("seeded dataset answers differently: %v vs %v", got.MRR, want.MRR)
	}
}

// A CRC-valid frame can still carry a hostile extreme set; both
// out-of-range and out-of-order entries must be rejected as
// corruption before they seed the dataset.
func TestSnapshotRejectsBadExtremeSet(t *testing.T) {
	ds, idx, _ := snapshotFixture(t)
	for name, ext := range map[string][]int{
		"out of range":  {0, ds.Len()},
		"negative":      {-1, 2},
		"not ascending": {3, 3},
		"descending":    {5, 2},
	} {
		var payload bytes.Buffer
		if err := gob.NewEncoder(&payload).Encode(indexWire{
			Version:  indexVersion,
			Checksum: ds.checksum(),
			N:        ds.Len(),
			Dim:      ds.Dim(),
			Cand:     idx.cand,
			Ext:      ext,
		}); err != nil {
			t.Fatal(err)
		}
		if err := idx.list.Save(&payload); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadIndex(bytes.NewReader(frameSnapshot(payload.Bytes())), ds); !errors.Is(err, ErrCorruptIndex) {
			t.Fatalf("%s extreme set: want ErrCorruptIndex, got %v", name, err)
		}
	}
}

// frameSnapshot wraps a raw payload in a valid v2 frame (magic,
// version, length, CRC) so tests can exercise the payload decoder
// with hand-built contents.
func frameSnapshot(payload []byte) []byte {
	frame := make([]byte, snapshotHdrLen, snapshotHdrLen+len(payload)+4)
	copy(frame, snapshotMagic)
	frame[4] = snapshotVersion
	binary.LittleEndian.PutUint64(frame[5:], uint64(len(payload)))
	frame = append(frame, payload...)
	return binary.LittleEndian.AppendUint32(frame, crc32.Checksum(frame, snapshotCRC))
}

func TestSaveFileLoadFileRoundTrip(t *testing.T) {
	ds, idx, _ := snapshotFixture(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "idx.snap")
	if err := idx.SaveFile(path, ds); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path, ds)
	if err != nil {
		t.Fatal(err)
	}
	want, err := idx.Query(4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Query(4)
	if err != nil {
		t.Fatal(err)
	}
	if want.MRR != got.MRR {
		t.Fatalf("file round trip changed the answer: %v vs %v", got.MRR, want.MRR)
	}
	// Overwriting an existing snapshot is atomic, not additive.
	if err := idx.SaveFile(path, ds); err != nil {
		t.Fatalf("overwrite failed: %v", err)
	}
	if _, err := LoadFile(path, ds); err != nil {
		t.Fatalf("overwritten snapshot corrupt: %v", err)
	}
	// No temp-file litter.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("snapshot dir littered: %v", names)
	}
}

func TestLoadFileErrors(t *testing.T) {
	ds, idx, _ := snapshotFixture(t)
	dir := t.TempDir()

	if _, err := LoadFile(filepath.Join(dir, "nope.snap"), ds); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: want ErrNotExist, got %v", err)
	}

	// A snapshot of a different dataset is a mismatch, not corruption.
	other, err := NewDataset(testPoints(60, 3, 99))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "idx.snap")
	if err := idx.SaveFile(path, ds); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path, other); !errors.Is(err, ErrIndexMismatch) {
		t.Fatalf("want ErrIndexMismatch, got %v", err)
	}

	// Garbage on disk is corruption.
	garbage := filepath.Join(dir, "garbage.snap")
	if err := os.WriteFile(garbage, []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(garbage, ds); !errors.Is(err, ErrCorruptIndex) {
		t.Fatalf("want ErrCorruptIndex for garbage, got %v", err)
	}
}
