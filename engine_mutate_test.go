package kregret

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestEngineApplyFoldsEpoch: one Apply (default threshold 1) swaps in
// a new epoch whose queries see the mutation, while a view pinned
// before the fold keeps answering from the old generation.
func TestEngineApplyFoldsEpoch(t *testing.T) {
	ds := mutGrid(t)
	eng, err := NewEngine(ds)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := eng.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()
	before, err := eng.Query(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	pinned := eng.Dataset()

	// {1,1} dominates every grid point: any 2-point answer must pick it.
	if err := eng.Apply(context.Background(), InsertMutation(Point{1.0, 1.0})); err != nil {
		t.Fatal(err)
	}
	after, err := eng.Query(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, idx := range after.Indices {
		if idx == 6 {
			found = true
		}
	}
	if !found {
		t.Fatalf("post-fold query missed the dominating insert: %v", after.Indices)
	}
	// The pinned pre-fold view is immune to the mutation.
	if pinned.Len() != 6 {
		t.Fatalf("pinned epoch grew: len=%d", pinned.Len())
	}
	old, err := pinned.Query(2)
	if err != nil {
		t.Fatal(err)
	}
	sameAnswerBits(t, old, before)

	s := eng.Stats()
	if s.Epoch != 2 || s.MutationsApplied != 1 || s.Rebuilds != 1 || s.PendingMutations != 0 {
		t.Fatalf("stats after one fold: epoch=%d applied=%d rebuilds=%d pending=%d",
			s.Epoch, s.MutationsApplied, s.Rebuilds, s.PendingMutations)
	}
}

// TestEngineRebuildThreshold: below the threshold, mutations are
// applied (and durable) but invisible to queries; crossing it folds
// them all at once.
func TestEngineRebuildThreshold(t *testing.T) {
	ds := mutGrid(t)
	eng, err := NewEngine(ds, WithRebuildThreshold(3))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := eng.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()
	for i := 0; i < 2; i++ {
		if err := eng.Apply(context.Background(), InsertMutation(Point{0.2, 0.2})); err != nil {
			t.Fatal(err)
		}
	}
	if s := eng.Stats(); s.Epoch != 1 || s.PendingMutations != 2 || s.Rebuilds != 0 {
		t.Fatalf("below threshold: epoch=%d pending=%d rebuilds=%d", s.Epoch, s.PendingMutations, s.Rebuilds)
	}
	if n := eng.Dataset().Len(); n != 6 {
		t.Fatalf("serving epoch saw unfolded mutations: len=%d", n)
	}
	// The live dataset has them — they are applied, just not served.
	if n := ds.Len(); n != 8 {
		t.Fatalf("live dataset missing applied mutations: len=%d", n)
	}
	if err := eng.Apply(context.Background(), InsertMutation(Point{0.2, 0.2})); err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	if s.Epoch != 2 || s.PendingMutations != 0 || s.Rebuilds != 1 || s.MutationsApplied != 3 {
		t.Fatalf("after threshold: %+v", s)
	}
	if n := eng.Dataset().Len(); n != 9 {
		t.Fatalf("fold missed mutations: len=%d", n)
	}
}

// TestEngineApplyRebuildsIndex: on a snapshot-backed engine a fold
// rebuilds the index over the new epoch, serves from it, and persists
// it — the file on disk loads against the new epoch's dataset.
func TestEngineApplyRebuildsIndex(t *testing.T) {
	ds := mutGrid(t)
	path := filepath.Join(t.TempDir(), "idx.snap")
	eng, err := NewEngine(ds, WithSnapshot(path))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := eng.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()
	if err := eng.Apply(context.Background(), InsertMutation(Point{1.0, 1.0})); err != nil {
		t.Fatal(err)
	}
	idx := eng.Index()
	if idx == nil {
		t.Fatal("index lost across fold")
	}
	ans, err := idx.Query(2)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, i := range ans.Indices {
		if i == 6 {
			found = true
		}
	}
	if !found {
		t.Fatalf("rebuilt index does not know the insert: %v", ans.Indices)
	}
	// The persisted snapshot belongs to the new epoch.
	if _, err := LoadFile(path, eng.Dataset()); err != nil {
		t.Fatalf("persisted index does not match the new epoch: %v", err)
	}
	// And no longer to the old one.
	old := mutGrid(t)
	if _, err := LoadFile(path, old); !errors.Is(err, ErrIndexMismatch) {
		t.Fatalf("stale-dataset load: %v", err)
	}
}

// TestEngineApplyDurableAndCompacted: over a WAL-backed dataset every
// fold compacts the log, and killing the process right here (modeled
// by recovering from the on-disk pair without Close) yields a dataset
// answering bit-identically to the engine's serving epoch.
func TestEngineApplyDurableAndCompacted(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "mut.wal")
	snapPath := filepath.Join(dir, "mut.snap")
	ds := mutGrid(t, WithWAL(walPath, snapPath))
	eng, err := NewEngine(ds)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := eng.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()
	if err := eng.Apply(context.Background(),
		InsertMutation(Point{1.0, 1.0}),
		DeleteMutation(3),
		InsertMutation(Point{0.7, 0.2}),
	); err != nil {
		t.Fatal(err)
	}
	// The fold compacted: the log is back to its bare header.
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > 16 {
		t.Fatalf("log not compacted after fold: %d bytes", fi.Size())
	}
	want, err := eng.Query(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(snapPath, walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Len() != ds.Len() || rec.Seq() != ds.Seq() {
		t.Fatalf("recovered len/seq %d/%d, want %d/%d", rec.Len(), rec.Seq(), ds.Len(), ds.Seq())
	}
	got, err := rec.Query(3)
	if err != nil {
		t.Fatal(err)
	}
	sameAnswerBits(t, got, want)
}

// TestEngineApplyPartialFailureFolds: a failing mutation mid-batch
// reports its position, keeps the durable prefix, and still folds the
// prefix into the serving epoch rather than leaving it invisible.
func TestEngineApplyPartialFailureFolds(t *testing.T) {
	ds := mutGrid(t)
	eng, err := NewEngine(ds, WithRebuildThreshold(100))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := eng.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()
	err = eng.Apply(context.Background(),
		InsertMutation(Point{0.4, 0.4}),
		DeleteMutation(99), // out of range
		InsertMutation(Point{0.6, 0.6}),
	)
	if err == nil {
		t.Fatal("out-of-range delete accepted")
	}
	s := eng.Stats()
	if s.MutationsApplied != 1 || s.PendingMutations != 0 || s.Epoch != 2 {
		t.Fatalf("prefix not folded after failure: %+v", s)
	}
	if n := eng.Dataset().Len(); n != 7 {
		t.Fatalf("serving epoch len=%d, want 7", n)
	}
}

// TestEngineShutdownRacingApply is the lifecycle race of the epoch
// design: Applies and queries in full flight while Shutdown drains.
// The drain must complete, no goroutine may leak, and every Apply
// must either fully succeed or report ErrShuttingDown — with any
// mutations it did apply still folded or pending, never lost.
func TestEngineShutdownRacingApply(t *testing.T) {
	base := runtime.NumGoroutine()
	ds := mutGrid(t)
	eng, err := NewEngine(ds, WithWorkers(4), WithQueueDepth(8), WithWatchdog(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	var (
		wg       sync.WaitGroup
		applied  int64
		rejected int64
		muCount  sync.Mutex
	)
	start := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; ; i++ {
				err := eng.Apply(context.Background(), InsertMutation(Point{0.1, 0.1}))
				muCount.Lock()
				if err == nil {
					applied++
				} else if errors.Is(err, ErrShuttingDown) {
					rejected++
					muCount.Unlock()
					return
				} else {
					t.Errorf("apply failed with non-shutdown error: %v", err)
					muCount.Unlock()
					return
				}
				muCount.Unlock()
			}
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for {
				_, err := eng.Query(context.Background(), 2)
				if err != nil {
					if !errors.Is(err, ErrShuttingDown) && !errors.Is(err, ErrOverloaded) && !errors.Is(err, ErrShed) {
						t.Errorf("query failed with unclassified error: %v", err)
					}
					if errors.Is(err, ErrShuttingDown) {
						return
					}
				}
			}
		}()
	}
	close(start)
	time.Sleep(20 * time.Millisecond) // let the race develop
	if err := eng.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	wg.Wait()

	if rejected == 0 {
		t.Fatal("no Apply observed ErrShuttingDown")
	}
	// Post-shutdown mutations are rejected outright.
	if err := eng.Apply(context.Background(), InsertMutation(Point{0.1, 0.1})); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown Apply: %v", err)
	}
	// Nothing applied was lost: the engine's counter matches the
	// dataset's logical clock exactly.
	s := eng.Stats()
	if uint64(applied) != s.MutationsApplied || ds.Seq() != s.MutationsApplied {
		t.Fatalf("mutation accounting: acked=%d stats=%d seq=%d", applied, s.MutationsApplied, ds.Seq())
	}
	// Every fold was consistent: serving epoch length is base + folded.
	if got, want := eng.Dataset().Len(), 6+int(s.MutationsApplied)-s.PendingMutations; got != want {
		t.Fatalf("serving epoch len=%d, want %d", got, want)
	}

	// The drain left no goroutine behind (watchdog included).
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", base, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRebuildThresholdDefaultFoldsEveryApply pins the debounce
// default: with no WithRebuildThreshold every Apply folds immediately
// (readers never lag durable state), and sub-1 thresholds clamp to
// the same behavior instead of deferring folds forever.
func TestRebuildThresholdDefaultFoldsEveryApply(t *testing.T) {
	for _, opts := range [][]EngineOption{
		nil,                        // default
		{WithRebuildThreshold(0)},  // clamps to 1
		{WithRebuildThreshold(-5)}, // clamps to 1
	} {
		ds := mutGrid(t)
		eng, err := NewEngine(ds, opts...)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 3; i++ {
			if err := eng.Apply(context.Background(), InsertMutation(Point{0.5, 0.5})); err != nil {
				t.Fatal(err)
			}
			s := eng.Stats()
			if s.Epoch != uint64(1+i) || s.Rebuilds != uint64(i) || s.PendingMutations != 0 {
				t.Fatalf("opts=%v after %d applies: epoch=%d rebuilds=%d pending=%d",
					opts, i, s.Epoch, s.Rebuilds, s.PendingMutations)
			}
		}
		if err := eng.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}
