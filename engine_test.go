package kregret

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

func testEngine(t *testing.T, opts ...EngineOption) (*Engine, *Dataset) {
	t.Helper()
	ds, err := NewDataset(testPoints(200, 3, 5))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(ds, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return eng, ds
}

// TestEngineStress is the acceptance stress: ≥200 concurrent queries
// against a pool of 4 workers and a queue of 8. Every request must be
// answered, shed with ErrOverloaded/ErrShed, or canceled — none lost
// — with zero data races (the suite runs under -race).
func TestEngineStress(t *testing.T) {
	eng, ds := testEngine(t, WithWorkers(4), WithQueueDepth(8))
	defer func() {
		if err := eng.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()
	const n = 200
	var (
		answered, overloaded, shed, canceled atomic.Int64
		wg                                   sync.WaitGroup
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i%4 == 3 { // a quarter arrive with tight or dead deadlines
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(i%3)*time.Millisecond)
				defer cancel()
			}
			ans, err := eng.Query(ctx, 1+i%6)
			switch {
			case err == nil:
				if len(ans.Indices) == 0 || ans.MRR < 0 || ans.MRR > 1 {
					t.Errorf("bad answer under load: %+v", ans)
				}
				answered.Add(1)
			case errors.Is(err, ErrOverloaded):
				overloaded.Add(1)
			case errors.Is(err, ErrShed):
				shed.Add(1)
			case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
				canceled.Add(1)
			default:
				t.Errorf("unclassified outcome: %v", err)
			}
		}(i)
	}
	wg.Wait()
	total := answered.Load() + overloaded.Load() + shed.Load() + canceled.Load()
	if total != n {
		t.Fatalf("classified %d of %d requests (answered=%d overloaded=%d shed=%d canceled=%d)",
			total, n, answered.Load(), overloaded.Load(), shed.Load(), canceled.Load())
	}
	if answered.Load() == 0 {
		t.Fatal("no request was answered under load")
	}
	s := eng.Stats()
	accounted := s.Completed + s.ShedOverload + s.ShedDeadline + s.Canceled + s.RejectedShutdown
	if accounted != n {
		t.Fatalf("engine stats account for %d of %d requests: %+v", accounted, n, s)
	}
	// The dataset answers identically after the storm.
	if _, err := ds.Query(3); err != nil {
		t.Fatalf("dataset unusable after stress: %v", err)
	}
}

func TestEngineQueryMatchesDataset(t *testing.T) {
	eng, ds := testEngine(t)
	defer func() {
		if err := eng.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()
	want, err := ds.Query(5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Query(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if got.MRR != want.MRR || len(got.Indices) != len(want.Indices) {
		t.Fatalf("engine answer %+v diverges from dataset answer %+v", got, want)
	}
	if got.Degraded {
		t.Fatalf("healthy engine query marked degraded: %+v", got)
	}
	// Per-call options pass through.
	greedy, err := eng.Query(context.Background(), 5, WithAlgorithm(AlgoGreedy))
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Algorithm != AlgoGreedy {
		t.Fatalf("per-call algorithm ignored: %+v", greedy)
	}
	if _, err := eng.Query(context.Background(), 0); !errors.Is(err, ErrBadK) {
		t.Fatalf("k=0 accepted: %v", err)
	}
}

func TestEngineQueryTimeoutBudget(t *testing.T) {
	// A per-query budget far too small for this dataset must surface
	// as a deadline error even though the caller set no deadline.
	ds, err := NewDataset(spherePoints(2000, 7, 1))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(ds, WithWorkers(1), WithQueryTimeout(50*time.Millisecond),
		WithQueryDefaults(WithCandidates(CandidatesAll)))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := eng.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()
	start := time.Now()
	_, err = eng.Query(context.Background(), 80)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded from the query budget, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("budget took %v to bite", elapsed)
	}
}

func TestEngineSnapshotStartup(t *testing.T) {
	ds, err := NewDataset(testPoints(200, 3, 5))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "idx.snap")

	// First startup: no file → rebuild and write it.
	eng1, err := NewEngine(ds, WithSnapshot(path))
	if err != nil {
		t.Fatal(err)
	}
	if !eng1.Stats().SnapshotRebuilt {
		t.Fatal("first startup should report a rebuild")
	}
	ans1, err := eng1.Query(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Second startup: loads the snapshot, no rebuild.
	eng2, err := NewEngine(ds, WithSnapshot(path))
	if err != nil {
		t.Fatal(err)
	}
	if eng2.Stats().SnapshotRebuilt {
		t.Fatal("second startup rebuilt despite a valid snapshot")
	}
	if eng2.Index() == nil {
		t.Fatal("snapshot engine has no index")
	}
	ans2, err := eng2.Query(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if ans1.MRR != ans2.MRR {
		t.Fatalf("snapshot answer MRR %v != rebuilt answer MRR %v", ans2.MRR, ans1.MRR)
	}
	// Index fast path must agree with the live solver.
	live, err := ds.Query(5)
	if err != nil {
		t.Fatal(err)
	}
	if ans2.MRR != live.MRR {
		t.Fatalf("indexed MRR %v != live MRR %v", ans2.MRR, live.MRR)
	}
	if err := eng2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Corrupt the snapshot: startup must fall back to a rebuild, not
	// fail, and must repair the file on disk.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()/2); err != nil {
		t.Fatal(err)
	}
	eng3, err := NewEngine(ds, WithSnapshot(path))
	if err != nil {
		t.Fatalf("corrupt snapshot killed startup: %v", err)
	}
	if !eng3.Stats().SnapshotRebuilt {
		t.Fatal("corrupt snapshot not reported as rebuilt")
	}
	if err := eng3.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path, ds); err != nil {
		t.Fatalf("snapshot not repaired after rebuild: %v", err)
	}
}

func TestEngineSnapshotMismatchRebuilds(t *testing.T) {
	ds, err := NewDataset(testPoints(200, 3, 5))
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewDataset(testPoints(150, 3, 11))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "idx.snap")
	idx, err := other.BuildIndex()
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.SaveFile(path, other); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(ds, WithSnapshot(path))
	if err != nil {
		t.Fatalf("mismatched snapshot killed startup: %v", err)
	}
	if !eng.Stats().SnapshotRebuilt {
		t.Fatal("mismatched snapshot not rebuilt")
	}
	if err := eng.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestEngineStatsShape(t *testing.T) {
	eng, _ := testEngine(t, WithWorkers(3), WithQueueDepth(7))
	defer func() {
		if err := eng.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()
	if _, err := eng.Query(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	if s.Workers != 3 || s.QueueDepth != 7 {
		t.Fatalf("config not echoed: %+v", s)
	}
	if s.Admitted != 1 || s.Completed != 1 {
		t.Fatalf("counters wrong after one query: %+v", s)
	}
	if state := s.Breakers[breakerKey(AlgoGeoGreedy, 3)]; state != "closed" {
		t.Fatalf("breaker state %q, want closed (%v)", state, s.Breakers)
	}
	if s.Retries != 0 || s.RetrySuccesses != 0 || s.WatchdogStuck != 0 || s.ShedAtDequeue != 0 {
		t.Fatalf("self-healing counters nonzero after one healthy query: %+v", s)
	}
}

// TestEngineShutdownIdempotent pins the double-shutdown contract: the
// second call returns cleanly with no panic, the counters are stable
// across it, and a post-shutdown Query returns ErrShuttingDown
// wrapped in a *serve.OverloadError carrying the pool pressure.
func TestEngineShutdownIdempotent(t *testing.T) {
	eng, _ := testEngine(t, WithWorkers(2), WithWatchdog(2*time.Millisecond))
	if _, err := eng.Query(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if err := eng.Shutdown(context.Background()); err != nil {
		t.Fatalf("first Shutdown: %v", err)
	}
	s1 := eng.Stats()
	if err := eng.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	s2 := eng.Stats()
	// Counter stability across the idempotent call (DrainDuration is
	// recorded asynchronously and may land between the snapshots, so
	// it is deliberately not compared).
	if s1.Admitted != s2.Admitted || s1.Completed != s2.Completed ||
		s1.Canceled != s2.Canceled || s1.ShedOverload != s2.ShedOverload ||
		s1.ShedDeadline != s2.ShedDeadline || s1.RejectedShutdown != s2.RejectedShutdown {
		t.Fatalf("counters moved across an idempotent Shutdown:\n%+v\n%+v", s1, s2)
	}

	_, err := eng.Query(context.Background(), 3)
	if !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown Query: want ErrShuttingDown, got %v", err)
	}
	var oe *serve.OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("post-shutdown Query error is not an *serve.OverloadError: %v", err)
	}
	if !errors.Is(oe.Sentinel, serve.ErrShuttingDown) || oe.Workers != 2 {
		t.Fatalf("OverloadError carries wrong context: %+v", oe)
	}
	if s3 := eng.Stats(); s3.RejectedShutdown != s2.RejectedShutdown+1 {
		t.Fatalf("rejection not counted: %+v", s3)
	}
}

// TestEngineWatchdogShutdownNoLeak proves the watchdog goroutine is
// joined by Shutdown: after a full drain the process goroutine count
// returns to its pre-engine baseline.
func TestEngineWatchdogShutdownNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	eng, _ := testEngine(t, WithWorkers(2), WithWatchdog(time.Millisecond))
	if _, err := eng.Query(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if err := eng.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", base, runtime.NumGoroutine())
		}
		time.Sleep(2 * time.Millisecond)
	}
}
