package kregret

// Sharded partition–merge serving: the engine-level scale layer
// (DESIGN.md §17). The dataset is partitioned into S contiguous
// shards; each shard runs the ε-dominance cover with half the budget
// (skyline.EpsCover — for eps = 0, its exact skyline), the survivor
// unions are merged, and one ε-kernel build with the other half of
// the budget produces the core that queries run GeoGreedy on.
// Correctness rests on three facts:
//
//   - every shard point is within (1−eps/2) of a shard survivor, and
//     the cover property composes over unions: the merged survivors
//     are an (eps/2)-kernel superset of D (with eps = 0, survivors
//     are exactly ∪ skyline(Dᵢ) ⊇ skyline(D));
//   - the kernel tightening over the survivors spends the other half:
//     (1−eps/2)·(1−eps/2) ≥ 1−eps, so the merged core is an ε-kernel
//     of D and any selection's true regret exceeds its reported value
//     by at most eps;
//   - with eps = 0 the union pass reduces to skyline(D) → happy(D) —
//     the unsharded candidate set — so every S is exact and S = 1 is
//     byte-identical to the unsharded path (proved by the
//     differential suite in shard_test.go).
//
// A failed shard build never fails the engine: it falls back to the
// unsharded serving path and counts the fallback in Stats.

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/coreset"
	"repro/internal/fault"
	"repro/internal/happy"
	"repro/internal/parallel"
	"repro/internal/skyline"
)

// WithShardedServing makes the engine serve happy-point queries from a
// sharded partition–merge core: the dataset is split into `shards`
// contiguous partitions, each reduced by an ε-dominance cover pass (in
// parallel across shards), and an ε-kernel built over the merged
// survivors becomes the serving set queries run against. The engine's
// build cost drops from one global exact preprocessing pass to S
// linear cover passes plus exact work on a survivor set whose size
// depends on eps and the hull geometry instead of n — the path to
// datasets far beyond a single preprocessing pass.
//
// Answers are approximate within eps: a selection's true regret over
// the full dataset exceeds the reported value by at most eps (the
// per-shard kernel bound composes over the union). eps = 0 keeps
// answers exact — the merged core then contains every happy point —
// and shards = 1 with eps = 0 is byte-identical to the unsharded
// engine. Only default-candidate (happy) queries use the core;
// CandidatesSkyline and CandidatesAll run on the full dataset.
//
// shards is clamped to the dataset size (S > n degenerates to
// one-point shards). If a shard build fails — numerically or via
// fault injection — the epoch serves unsharded and the fallback is
// counted in Stats().ShardFallbacks; sharding is retried at the next
// fold. Invalid configuration (shards < 1, eps outside [0, 1)) fails
// NewEngine.
func WithShardedServing(shards int, eps float64) EngineOption {
	return func(o *engineOptions) {
		o.shards = shards
		o.shardEps = eps
		o.sharded = true
	}
}

// validateSharding rejects an impossible shard plan at NewEngine time.
func (o *engineOptions) validateSharding() error {
	if !o.sharded {
		return nil
	}
	if o.shards < 1 {
		return fmt.Errorf("kregret: sharded serving needs at least 1 shard, got %d", o.shards)
	}
	if math.IsNaN(o.shardEps) || o.shardEps < 0 || o.shardEps >= 1 {
		return fmt.Errorf("kregret: shard coreset eps must be in [0, 1), got %v", o.shardEps)
	}
	return nil
}

// shardEpoch attaches the sharded serving view to a freshly built
// epoch: the merged per-shard core as a Dataset plus the core→global
// index map. On a build failure the epoch is left unsharded (queries
// fall back to the full dataset) and the fallback is counted — a
// broken core must degrade capacity, not correctness.
func (e *Engine) shardEpoch(ctx context.Context, ep *engineEpoch) {
	if !e.opts.sharded {
		return
	}
	start := time.Now()
	serveDS, coreMap, shards, err := buildShardView(ctx, ep.ds, e.opts.shards, e.opts.shardEps)
	if err != nil {
		e.shardFallbacks.Add(1)
		return
	}
	ep.serveDS, ep.coreMap, ep.shards = serveDS, coreMap, shards
	ep.coresetBuild = time.Since(start)
}

// buildShardView partitions the epoch's points into contiguous shards,
// reduces each shard with the ε-dominance cover (shards fan out over
// the dataset's parallelism), and runs the exact kernel machinery only
// on the merged survivor union. The ε budget is split evenly: each
// shard's cover keeps every shard point within (1−eps/2) of a
// survivor, and the kernel tightening on the union spends the other
// half, so (1−eps/2)² ≥ 1−eps bounds the merged core against the full
// dataset. With eps = 0 the cover IS the exact per-shard skyline, the
// union collapses to skyline(D) (skyline of a union of shard skylines)
// and the candidate set to happy(D) — the unsharded candidate set,
// which is what keeps S=1 byte-identical and every S exact.
//
// The returned index map translates serving-dataset indices back to
// the full dataset; the returned shard count is the effective one
// after clamping to n.
func buildShardView(ctx context.Context, ds *Dataset, shards int, eps float64) (*Dataset, []int, int, error) {
	st := ds.snap()
	n := len(st.pts)
	if shards > n {
		shards = n
	}
	outs := make([][]int, shards)
	err := parallel.For(ctx, shards, parallel.Resolve(st.workers), 1, func(start, end int) error {
		for s := start; s < end; s++ {
			lo, hi := s*n/shards, (s+1)*n/shards
			if lo >= hi {
				continue // degenerate empty shard: contributes nothing
			}
			surv, err := skyline.EpsCover(st.pts, lo, hi, eps/2)
			if err != nil {
				return fmt.Errorf("kregret: shard %d cover: %w", s, err)
			}
			outs[s] = surv
		}
		return nil
	})
	if err != nil {
		return nil, nil, 0, err
	}
	if fault.Enabled {
		if err := fault.Err(fault.SiteShardMerge); err != nil {
			return nil, nil, 0, fmt.Errorf("kregret: shard merge: %w", err)
		}
	}
	merged := mergeShardCores(outs)
	cand := merged
	kernelEps := eps / 2
	if eps == 0 { //kregret:allow floatcmp: exact-plan sentinel, a configured value, not arithmetic
		// Exact plan: per-shard covers are exact skylines, so one more
		// exact pass over the union yields skyline(D) and the happy
		// points among it — precisely the unsharded candidate set.
		sky, err := skyline.OfSubset(st.pts, merged)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("kregret: shard union skyline: %w", err)
		}
		cand = happy.ComputeAmongSkyline(st.pts, sky)
	}
	coreIdx, _, err := coreset.Build(ctx, st.pts, cand, kernelEps, parallel.Resolve(st.workers))
	if err != nil {
		return nil, nil, 0, fmt.Errorf("kregret: merged coreset: %w", err)
	}
	pts, err := core.Select(st.pts, coreIdx)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("kregret: shard merge: %w", err)
	}
	serveDS := newDatasetFromVectors(pts, st.seq, options{workers: st.workers, pruning: st.pruning})
	return serveDS, coreIdx, shards, nil
}

// mergeShardCores unions per-shard core index lists. Shard ranges are
// disjoint and ascending and each list is ascending within its range,
// so concatenation is already sorted; empty and nil shards vanish.
func mergeShardCores(outs [][]int) []int {
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	merged := make([]int, 0, total)
	for _, o := range outs {
		merged = append(merged, o...)
	}
	return merged
}

// buildShardedIndex materializes the StoredList over the sharded
// serving view and rewrites it in global coordinates: the candidate
// mapping is composed with the core→global map, and the core itself is
// recorded on the index so a persisted snapshot (payload v3) can be
// matched against the sharded configuration on reload.
func buildShardedIndex(ctx context.Context, serveDS *Dataset, coreMap []int) (*Index, error) {
	idx, err := serveDS.buildIndex(ctx, 0)
	if err != nil {
		return nil, err
	}
	cand := make([]int, len(idx.cand))
	for i, c := range idx.cand {
		cand[i] = coreMap[c]
	}
	idx.cand = cand
	idx.core = append([]int(nil), coreMap...)
	return idx, nil
}

// loadOrRebuildShardedIndex is loadOrRebuildIndex for a sharded
// engine: a loadable snapshot is adopted only when its persisted core
// equals the epoch's freshly built core (same points, same shard/eps
// configuration); anything else — missing, corrupt, mismatched, or an
// unsharded/stale core — is replaced by a fresh sharded build written
// back atomically.
func loadOrRebuildShardedIndex(ctx context.Context, fullDS, serveDS *Dataset, coreMap []int, path string) (*Index, bool, error) {
	idx, err := LoadFile(path, fullDS)
	if err == nil && equalInts(idx.core, coreMap) {
		return idx, false, nil
	}
	if err != nil && !loadFailureRebuildable(err) {
		return nil, false, fmt.Errorf("kregret: engine snapshot: %w", err)
	}
	idx, berr := buildShardedIndex(ctx, serveDS, coreMap)
	if berr != nil {
		return nil, false, fmt.Errorf("kregret: engine snapshot unusable (%v) and sharded rebuild failed: %w", err, berr)
	}
	if serr := idx.SaveFile(path, fullDS); serr != nil {
		return nil, false, fmt.Errorf("kregret: rewriting engine snapshot: %w", serr)
	}
	return idx, true, nil
}

// equalInts reports whether two index slices are identical.
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
