//go:build kregretfault

package kregret

// The second half of the crash-point sweep: instead of truncating the
// log after the fact, every durability fault site (wal.append,
// wal.sync, wal.rotate, persist.sync) is armed at every one of its
// execution points in the mutation script — the Observe/ArmAfter
// sweep. Whatever the failure does (torn tail, rewound suffix, failed
// compaction, failed snapshot fsync), the invariant is single:
// recovering from the on-disk pair reproduces exactly the mutations
// the run acknowledged, bit for bit, and nothing else.

import (
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

// runFaultedScript executes the crash script over a fresh WAL-backed
// dataset in dir, tolerating mutation and compaction failures (the
// armed site causes some), and returns the live dataset — whose
// in-memory state is by construction exactly the acknowledged
// history. A nil dataset means construction itself failed (the armed
// site hit the base-snapshot write inside NewDataset).
func runFaultedScript(t *testing.T, dir string) *Dataset {
	t.Helper()
	ds, err := NewDataset([]Point{
		{1.0, 0.1}, {0.1, 1.0}, {0.8, 0.8}, {0.5, 0.5}, {0.3, 0.9}, {0.9, 0.3},
	}, WithoutNormalization(), WithWAL(filepath.Join(dir, "crash.wal"), filepath.Join(dir, "crash.snap")))
	if err != nil {
		return nil
	}
	for i, op := range crashScript() {
		if op.pt != nil {
			//kregret:allow errdrop: injected durability failures are the point — unacknowledged mutations are verified absent after recovery
			ds.Insert(op.pt)
		} else {
			//kregret:allow errdrop: injected durability failures are the point — unacknowledged mutations are verified absent after recovery
			ds.Delete(op.del)
		}
		if i == 3 {
			// Mid-script compaction: the wal.rotate and persist.sync
			// execution points live here (and Reset also heals a log a
			// torn append broke, so the script regains write access).
			//kregret:allow errdrop: a failed compaction leaves the previous pair intact; recovery verifies it
			ds.Compact()
		}
	}
	return ds
}

// TestCrashFaultSiteSweep arms each durability site at every one of
// its execution points in the script and proves recovery equals the
// acknowledged in-memory state for all of them.
func TestCrashFaultSiteSweep(t *testing.T) {
	sites := []string{
		fault.SiteWALAppend,
		fault.SiteWALSync,
		fault.SiteWALRotate,
		fault.SitePersistSync,
	}
	for _, site := range sites {
		site := site
		t.Run(site, func(t *testing.T) {
			// Reconnaissance: count the site's executions in a clean run.
			fault.Reset()
			t.Cleanup(fault.Reset)
			fault.Observe(site)
			clean := runFaultedScript(t, t.TempDir())
			if clean == nil {
				t.Fatal("clean run failed to build its dataset")
			}
			total := fault.Fired(site)
			if total == 0 {
				t.Fatalf("site %s never executes in the script — the sweep would prove nothing", site)
			}
			if err := clean.Close(); err != nil {
				t.Fatal(err)
			}

			for shot := 0; shot < total; shot++ {
				fault.Reset()
				fault.ArmAfter(site, shot, 1)
				dir := t.TempDir()
				ds := runFaultedScript(t, dir)
				if fault.Fired(site) == 0 {
					t.Fatalf("shot %d/%d never fired", shot, total)
				}
				if ds == nil {
					// The injection hit the base-snapshot write inside
					// NewDataset: nothing was ever acknowledged, and
					// the failed save must have left no snapshot.
					if _, _, err := loadDatasetFile(filepath.Join(dir, "crash.snap")); err == nil {
						t.Fatalf("shot %d: failed construction left a loadable snapshot", shot)
					}
					continue
				}
				// Crash here: no Close, recover straight from disk.
				fault.Reset() // recovery itself runs on healthy hardware
				rec, err := Recover(filepath.Join(dir, "crash.snap"), filepath.Join(dir, "crash.wal"))
				if err != nil {
					t.Fatalf("shot %d/%d: recovery failed: %v", shot, total, err)
				}
				if rec.Seq() != ds.Seq() {
					t.Fatalf("shot %d/%d: recovered seq %d, acknowledged %d", shot, total, rec.Seq(), ds.Seq())
				}
				if !sameBits(datasetBits(t, rec), datasetBits(t, ds)) {
					t.Fatalf("shot %d/%d: recovered state differs from acknowledged state", shot, total)
				}
				recAns, err := rec.Query(2)
				if err != nil {
					t.Fatalf("shot %d/%d: recovered query: %v", shot, total, err)
				}
				liveAns, err := ds.Query(2)
				if err != nil {
					t.Fatalf("shot %d/%d: live query: %v", shot, total, err)
				}
				sameAnswerBits(t, recAns, liveAns)
				if err := rec.Close(); err != nil {
					t.Fatalf("shot %d/%d: closing recovered: %v", shot, total, err)
				}
				//kregret:allow errdrop: the live log may be mid-failure by design; its close error is not the invariant
				ds.Close()
			}
		})
	}
}
