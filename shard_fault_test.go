//go:build kregretfault

// Fault-injection tests for the coreset and sharded-serving layer:
// an armed shard-merge or coreset-build site must degrade the engine
// to its unsharded path (counted, never wrong), and a coreset-backed
// dataset must surface the failure as a typed numerical error. They
// compile only under the kregretfault tag (`make test-fault`).
package kregret

import (
	"context"
	"math"
	"testing"

	"repro/internal/fault"
)

// TestShardMergeFaultFallsBackUnsharded: a failed shard merge leaves
// the epoch unsharded — answers stay byte-identical to a plain engine
// — and the fallback is counted. The next fold, with the site
// disarmed, re-shards.
func TestShardMergeFaultFallsBackUnsharded(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	ds, err := NewDataset(testPoints(200, 3, 120))
	if err != nil {
		t.Fatal(err)
	}
	fault.Arm(fault.SiteShardMerge, 1)
	eng, err := NewEngine(ds, WithShardedServing(3, 0.1))
	if err != nil {
		t.Fatalf("shard fault must not fail startup: %v", err)
	}
	defer shutdownEngine(t, eng)
	s := eng.Stats()
	if s.ShardFallbacks != 1 {
		t.Fatalf("ShardFallbacks = %d, want 1", s.ShardFallbacks)
	}
	if s.Shards != 0 || s.CoreSize != 0 {
		t.Fatalf("fallen-back epoch still reports sharding: %+v", s)
	}
	want, err := ds.Query(5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Query(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.MRR) != math.Float64bits(want.MRR) {
		t.Fatalf("fallen-back answer %v != plain %v", got.MRR, want.MRR)
	}

	// Site disarmed: the next fold re-shards.
	if err := eng.Apply(context.Background(), InsertMutation(Point{1.5, 1.5, 1.5})); err != nil {
		t.Fatal(err)
	}
	s = eng.Stats()
	if s.Shards != 3 || s.CoreSize <= 0 {
		t.Fatalf("post-fold epoch did not re-shard: %+v", s)
	}
	if s.ShardFallbacks != 1 {
		t.Fatalf("ShardFallbacks moved to %d across a healthy fold", s.ShardFallbacks)
	}
}

// TestCoresetBuildFaultFallsBackUnsharded: the per-shard coreset
// build is inside the shard fan-out, so arming it degrades the engine
// exactly like a merge failure.
func TestCoresetBuildFaultFallsBackUnsharded(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	ds, err := NewDataset(testPoints(200, 3, 121))
	if err != nil {
		t.Fatal(err)
	}
	fault.Arm(fault.SiteCoresetBuild, 1)
	eng, err := NewEngine(ds, WithShardedServing(2, 0.1))
	if err != nil {
		t.Fatalf("coreset fault must not fail startup: %v", err)
	}
	defer shutdownEngine(t, eng)
	if s := eng.Stats(); s.ShardFallbacks != 1 || s.Shards != 0 {
		t.Fatalf("expected unsharded fallback, got %+v", s)
	}
	if _, err := eng.Query(context.Background(), 4); err != nil {
		t.Fatalf("fallen-back engine cannot answer: %v", err)
	}
}

// TestCoresetBuildFaultOnDataset: on a coreset-enabled Dataset the
// failure has no fallback set to hide in — the query surfaces a typed
// numerical error (and the epoch cache pins it, like any poisoned
// candidate cache).
func TestCoresetBuildFaultOnDataset(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	ds, err := NewDataset(testPoints(100, 3, 122), WithCoreset(0.1))
	if err != nil {
		t.Fatal(err)
	}
	fault.Arm(fault.SiteCoresetBuild, 1)
	if _, _, err := ds.Coreset(); err == nil {
		t.Fatal("armed coreset build succeeded")
	}
	if _, err := ds.Query(4); err == nil {
		t.Fatal("query on a poisoned core cache succeeded")
	}
	// A fresh epoch (post-mutation) rebuilds the core with the site
	// disarmed and recovers.
	if _, err := ds.Insert(Point{1.5, 1.5, 1.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Query(4); err != nil {
		t.Fatalf("fresh epoch did not recover: %v", err)
	}
}
