package kregret

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/wal"
)

// mutGrid returns a small 2-D dataset with a non-trivial skyline.
func mutGrid(t *testing.T, opts ...Option) *Dataset {
	t.Helper()
	ds, err := NewDataset([]Point{
		{1.0, 0.1}, {0.1, 1.0}, {0.8, 0.8}, {0.5, 0.5}, {0.3, 0.9}, {0.9, 0.3},
	}, append([]Option{WithoutNormalization()}, opts...)...)
	if err != nil {
		t.Fatalf("NewDataset: %v", err)
	}
	return ds
}

func sameAnswerBits(t *testing.T, got, want *Answer) {
	t.Helper()
	if len(got.Indices) != len(want.Indices) {
		t.Fatalf("selection sizes differ: %v vs %v", got.Indices, want.Indices)
	}
	for i := range want.Indices {
		if got.Indices[i] != want.Indices[i] {
			t.Fatalf("selection differs at %d: %v vs %v", i, got.Indices, want.Indices)
		}
	}
	if math.Float64bits(got.MRR) != math.Float64bits(want.MRR) {
		t.Fatalf("MRR bits differ: %016x vs %016x", math.Float64bits(got.MRR), math.Float64bits(want.MRR))
	}
}

func TestInsertDeleteSemantics(t *testing.T) {
	ds := mutGrid(t)
	if ds.Seq() != 0 {
		t.Fatalf("fresh Seq = %d, want 0", ds.Seq())
	}

	idx, err := ds.Insert(Point{0.95, 0.95})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if idx != 6 || ds.Len() != 7 || ds.Seq() != 1 {
		t.Fatalf("after insert: idx=%d len=%d seq=%d", idx, ds.Len(), ds.Seq())
	}
	p := ds.Point(6)
	if p[0] != 0.95 || p[1] != 0.95 {
		t.Fatalf("inserted point reads back as %v", p)
	}
	// The dominant new point must join the skyline.
	sky, err := ds.Skyline()
	if err != nil {
		t.Fatalf("Skyline: %v", err)
	}
	found := false
	for _, s := range sky {
		if s == 6 {
			found = true
		}
	}
	if !found {
		t.Fatalf("inserted dominant point missing from skyline %v", sky)
	}

	// Delete shifts later indices down by one.
	before := ds.Point(4)
	if err := ds.Delete(3); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if ds.Len() != 6 || ds.Seq() != 2 {
		t.Fatalf("after delete: len=%d seq=%d", ds.Len(), ds.Seq())
	}
	after := ds.Point(3)
	if after[0] != before[0] || after[1] != before[1] {
		t.Fatalf("index shift broken: %v vs %v", after, before)
	}

	// Invalid mutations are rejected without changing anything.
	if _, err := ds.Insert(Point{0.5}); err == nil {
		t.Fatal("dimension-mismatched insert succeeded")
	}
	if _, err := ds.Insert(Point{0.5, math.NaN()}); err == nil {
		t.Fatal("NaN insert succeeded")
	}
	if _, err := ds.Insert(Point{0.5, -1}); err == nil {
		t.Fatal("negative insert succeeded")
	}
	if err := ds.Delete(-1); err == nil {
		t.Fatal("negative delete succeeded")
	}
	if err := ds.Delete(ds.Len()); err == nil {
		t.Fatal("out-of-range delete succeeded")
	}
	if ds.Seq() != 2 {
		t.Fatalf("rejected mutations advanced seq to %d", ds.Seq())
	}

	// The last point can never be deleted.
	for ds.Len() > 1 {
		if err := ds.Delete(0); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	if err := ds.Delete(0); !errors.Is(err, ErrNoPoints) {
		t.Fatalf("deleting last point = %v, want ErrNoPoints", err)
	}
}

// TestEpochIsolation proves copy-on-write: a snapshot taken before a
// mutation keeps answering byte-identically afterwards, and the
// mutated dataset diverges.
func TestEpochIsolation(t *testing.T) {
	ds := mutGrid(t)
	snap := ds.Snapshot()
	control, err := snap.Query(2)
	if err != nil {
		t.Fatalf("control query: %v", err)
	}

	// A dominating insert changes the mutated dataset's answer...
	if _, err := ds.Insert(Point{1.0, 1.0}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	mutated, err := ds.Query(2)
	if err != nil {
		t.Fatalf("mutated query: %v", err)
	}
	foundNew := false
	for _, i := range mutated.Indices {
		if i == 6 {
			foundNew = true
		}
	}
	if !foundNew {
		t.Fatalf("dominating insert not selected: %v", mutated.Indices)
	}

	// ...while the pre-mutation snapshot is bit-for-bit unchanged.
	again, err := snap.Query(2)
	if err != nil {
		t.Fatalf("snapshot query: %v", err)
	}
	sameAnswerBits(t, again, control)
	if snap.Len() != 6 || ds.Len() != 7 {
		t.Fatalf("lengths: snap=%d ds=%d", snap.Len(), ds.Len())
	}
}

func TestWALDurabilityRoundTrip(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "mut.wal")
	snapPath := filepath.Join(dir, "base.krgd")
	ds := mutGrid(t, WithWAL(walPath, snapPath))
	defer ds.Close()

	if _, err := ds.Insert(Point{0.95, 0.95}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := ds.Delete(0); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	want, err := ds.Query(3)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}

	// A "crashed" process recovers the exact state: same length, same
	// seq, byte-identical answers. (No Close — the files are as a kill
	// would leave them, modulo the torn tail which needs fault injection
	// or the crash matrix to produce.)
	rec, err := Recover(snapPath, walPath)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer rec.Close()
	if rec.Len() != ds.Len() || rec.Seq() != ds.Seq() {
		t.Fatalf("recovered len=%d seq=%d, want len=%d seq=%d", rec.Len(), rec.Seq(), ds.Len(), ds.Seq())
	}
	got, err := rec.Query(3)
	if err != nil {
		t.Fatalf("recovered Query: %v", err)
	}
	sameAnswerBits(t, got, want)

	// The recovered dataset continues the same durable history.
	if _, err := rec.Insert(Point{0.2, 0.85}); err != nil {
		t.Fatalf("post-recovery Insert: %v", err)
	}
	if rec.Seq() != ds.Seq()+1 {
		t.Fatalf("post-recovery seq = %d, want %d", rec.Seq(), ds.Seq()+1)
	}
}

func TestCompactTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "mut.wal")
	snapPath := filepath.Join(dir, "base.krgd")
	ds := mutGrid(t, WithWAL(walPath, snapPath))
	defer ds.Close()

	for i := 0; i < 8; i++ {
		if _, err := ds.Insert(Point{0.40 + float64(i)/100, 0.40}); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	grown, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	compacted, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if compacted.Size() >= grown.Size() {
		t.Fatalf("compaction did not shrink the log: %d -> %d", grown.Size(), compacted.Size())
	}

	// Post-compaction mutations land in the truncated log; recovery
	// folds snapshot + suffix.
	if err := ds.Delete(0); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	want, err := ds.Query(2)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	rec, err := Recover(snapPath, walPath)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer rec.Close()
	if rec.Len() != ds.Len() || rec.Seq() != ds.Seq() {
		t.Fatalf("recovered len=%d seq=%d, want len=%d seq=%d", rec.Len(), rec.Seq(), ds.Len(), ds.Seq())
	}
	got, err := rec.Query(2)
	if err != nil {
		t.Fatalf("recovered Query: %v", err)
	}
	sameAnswerBits(t, got, want)
}

func TestWithWALRefusesExistingHistory(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "mut.wal")
	snapPath := filepath.Join(dir, "base.krgd")
	ds := mutGrid(t, WithWAL(walPath, snapPath))
	if _, err := ds.Insert(Point{0.9, 0.9}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := ds.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Building a fresh dataset over a log that holds history would
	// orphan it; the constructor must refuse.
	if _, err := NewDataset([]Point{{0.5, 0.5}}, WithoutNormalization(), WithWAL(walPath, snapPath)); err == nil {
		t.Fatal("NewDataset over a non-empty WAL succeeded")
	}
	// Recover is the sanctioned way in.
	rec, err := Recover(snapPath, walPath)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer rec.Close()
	if rec.Len() != 7 {
		t.Fatalf("recovered %d points, want 7", rec.Len())
	}
}

func TestCloseStopsMutations(t *testing.T) {
	dir := t.TempDir()
	ds := mutGrid(t, WithWAL(filepath.Join(dir, "mut.wal"), filepath.Join(dir, "base.krgd")))
	if err := ds.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := ds.Insert(Point{0.5, 0.5}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Insert after Close = %v, want ErrClosed", err)
	}
	if err := ds.Delete(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Delete after Close = %v, want ErrClosed", err)
	}
	if err := ds.Compact(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Compact after Close = %v, want ErrClosed", err)
	}
	// Queries still work: Close only ends durability, not reads.
	if _, err := ds.Query(2); err != nil {
		t.Fatalf("Query after Close: %v", err)
	}
	// A WAL-less dataset mutates fine (just not durably) and Compact
	// explains what is missing.
	plain := mutGrid(t)
	if _, err := plain.Insert(Point{0.9, 0.9}); err != nil {
		t.Fatalf("WAL-less Insert: %v", err)
	}
	if err := plain.Compact(); !errors.Is(err, ErrWALRequired) {
		t.Fatalf("WAL-less Compact = %v, want ErrWALRequired", err)
	}
}

func TestRecoverCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "mut.wal")
	snapPath := filepath.Join(dir, "base.krgd")
	ds := mutGrid(t, WithWAL(walPath, snapPath))
	if err := ds.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	// Bit-flip every byte: recovery must always fail typed, never
	// return a silently-wrong dataset.
	for pos := 0; pos < len(data); pos++ {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x10
		if err := os.WriteFile(snapPath, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Recover(snapPath, walPath); err == nil {
			t.Fatalf("Recover with snapshot byte %d flipped succeeded", pos)
		} else if pos >= 5 && !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("pos %d: error not ErrCorruptSnapshot: %v", pos, err)
		}
	}
	// Truncations too.
	for cut := 0; cut < len(data); cut += 7 {
		if err := os.WriteFile(snapPath, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Recover(snapPath, walPath); !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("Recover with snapshot cut to %d = %v, want ErrCorruptSnapshot", cut, err)
		}
	}
}

func TestRecoverForeignLog(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "mut.wal")
	snapPath := filepath.Join(dir, "base.krgd")
	ds := mutGrid(t, WithWAL(walPath, snapPath))
	if _, err := ds.Insert(Point{0.9, 0.9}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := ds.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A log whose records cannot belong to this snapshot — a delete
	// past the dataset's length, an insert of the wrong dimension — is
	// typed corruption, never a silently-wrong dataset.
	for _, rec := range []wal.Record{
		{Seq: 2, Op: wal.OpDelete, Index: 99},
		{Seq: 2, Op: wal.OpInsert, Point: []float64{0.5, 0.5, 0.5}},
	} {
		if err := os.Remove(walPath); err != nil {
			t.Fatal(err)
		}
		l, _, err := wal.Open(walPath, wal.Config{})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		if err := l.Append(wal.Record{Seq: 1, Op: wal.OpInsert, Point: []float64{0.9, 0.9}}); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if err := l.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if _, err := Recover(snapPath, walPath); !errors.Is(err, wal.ErrCorruptRecord) {
			t.Fatalf("Recover(mismatched log %+v) = %v, want wal.ErrCorruptRecord", rec, err)
		}
	}
}
