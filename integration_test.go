package kregret

// End-to-end integration tests: the full pipeline over every
// generator and every real-data stand-in at reduced scale, plus
// cross-candidate-set invariants discovered during the reproduction.

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
)

func vectorsToPoints(vs []geom.Vector) []Point {
	out := make([]Point, len(vs))
	for i, v := range vs {
		out[i] = Point(v)
	}
	return out
}

func TestPipelineOnAllGenerators(t *testing.T) {
	gens := map[string]func() ([]geom.Vector, error){
		"independent":    func() ([]geom.Vector, error) { return dataset.Independent(800, 4, 1) },
		"correlated":     func() ([]geom.Vector, error) { return dataset.Correlated(800, 4, 1) },
		"anticorrelated": func() ([]geom.Vector, error) { return dataset.AntiCorrelated(800, 4, 1) },
		"clustered":      func() ([]geom.Vector, error) { return dataset.Clustered(800, 4, 3, 1) },
	}
	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			raw, err := gen()
			if err != nil {
				t.Fatal(err)
			}
			ds, err := NewDataset(vectorsToPoints(raw))
			if err != nil {
				t.Fatal(err)
			}
			sky, err := ds.Skyline()
			if err != nil {
				t.Fatal(err)
			}
			hp, err := ds.HappyPoints()
			if err != nil {
				t.Fatal(err)
			}
			conv, err := ds.ConvexPoints()
			if err != nil {
				t.Fatal(err)
			}
			if !(len(conv) <= len(hp) && len(hp) <= len(sky)) {
				t.Fatalf("Lemma 3 violated: %d/%d/%d", len(conv), len(hp), len(sky))
			}
			ans, err := ds.Query(8)
			if err != nil {
				t.Fatal(err)
			}
			mrr, err := ds.EvaluateMRR(ans.Indices)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(mrr-ans.MRR) > 1e-6 {
				t.Fatalf("reported %v vs evaluated %v", ans.MRR, mrr)
			}
		})
	}
}

func TestPipelineOnAllStandIns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range dataset.RealNames {
		t.Run(string(name), func(t *testing.T) {
			raw, err := dataset.RealScaled(name, 3000)
			if err != nil {
				t.Fatal(err)
			}
			ds, err := NewDataset(vectorsToPoints(raw), WithoutNormalization())
			if err != nil {
				t.Fatal(err)
			}
			idx, err := ds.BuildIndex()
			if err != nil {
				t.Fatal(err)
			}
			prev := 2.0
			for _, k := range []int{5, 10, 20} {
				direct, err := ds.Query(k)
				if err != nil {
					t.Fatal(err)
				}
				viaIdx, err := idx.Query(k)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(direct.MRR-viaIdx.MRR) > 1e-9 {
					t.Fatalf("k=%d: direct %v vs index %v", k, direct.MRR, viaIdx.MRR)
				}
				if direct.MRR > prev+1e-9 {
					t.Fatalf("regret rose with k at %d", k)
				}
				prev = direct.MRR
				grd, err := ds.Query(k, WithAlgorithm(AlgoGreedy))
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(grd.MRR-direct.MRR) > 1e-6 {
					t.Fatalf("k=%d: Greedy %v vs GeoGreedy %v", k, grd.MRR, direct.MRR)
				}
			}
		})
	}
}

// TestGreedyPicksOnlyHappyPoints pins a fact this reproduction
// established while investigating why our Figure 8 coincides with
// Figure 7 (EXPERIMENTS.md): on normalized, tie-free data the greedy
// skeleton can never select a non-happy candidate, because a
// subjugated point q ≤ λ·p + Σμ_i·e_i has dual support
// ≤ λ·support(p) + (1−λ) < support(p) while its subjugator p is
// unselected (support > 1), and ≤ 1 afterwards.
func TestGreedyPicksOnlyHappyPoints(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		raw, err := dataset.AntiCorrelated(600, 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := NewDataset(vectorsToPoints(raw))
		if err != nil {
			t.Fatal(err)
		}
		hp, err := ds.HappyPoints()
		if err != nil {
			t.Fatal(err)
		}
		inHappy := make(map[int]bool, len(hp))
		for _, i := range hp {
			inHappy[i] = true
		}
		ans, err := ds.Query(12, WithCandidates(CandidatesAll))
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range ans.Indices {
			if !inHappy[i] {
				t.Fatalf("seed %d: greedy over all candidates selected non-happy point %d", seed, i)
			}
		}
	}
}

// TestCSVPipelineRoundTrip exercises datagen-style output through the
// public API as cmd/kregret does.
func TestCSVPipelineRoundTrip(t *testing.T) {
	raw, err := dataset.AntiCorrelated(300, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/pts.csv"
	if err := dataset.WriteCSVFile(path, raw, []string{"a", "b", "c"}); err != nil {
		t.Fatal(err)
	}
	back, err := dataset.ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ds1, err := NewDataset(vectorsToPoints(raw))
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := NewDataset(vectorsToPoints(back))
	if err != nil {
		t.Fatal(err)
	}
	a1, err := ds1.Query(6)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := ds2.Query(6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a1.MRR-a2.MRR) > 1e-12 {
		t.Fatalf("CSV round trip changed the answer: %v vs %v", a1.MRR, a2.MRR)
	}
}

// TestExactVsGreedyGap2D measures the greedy's optimality gap on 2-D
// data using the exact solver: greedy regret is never better than
// optimal and typically close.
func TestExactVsGreedyGap2D(t *testing.T) {
	raw, err := dataset.AntiCorrelated(500, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]geom.Vector, len(raw))
	copy(pts, raw)
	for _, k := range []int{3, 5, 8} {
		exact, err := core.Exact2D(pts, k)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := core.GeoGreedy(pts, k)
		if err != nil {
			t.Fatal(err)
		}
		if exact.MRR > greedy.MRR+1e-6 {
			t.Fatalf("k=%d: exact %v worse than greedy %v", k, exact.MRR, greedy.MRR)
		}
	}
}
