package kregret

import (
	"context"
	"reflect"
	"sync"
	"testing"
)

// Eight goroutines hammer one shared Dataset and one shared Index
// with a mix of queries, evaluations and lazy accessors. Run with
// -race (the Makefile's test-race target does): the sync.Once caches
// are the only mutable state, and this test is their proof.
func TestConcurrentDatasetAndIndex(t *testing.T) {
	ds, err := NewDataset(testPoints(300, 4, 11))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := ds.BuildIndex()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ds.Query(5)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds*8)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				ans, err := ds.Query(5)
				if err != nil {
					errs <- err
					continue
				}
				if ans.MRR != ref.MRR {
					t.Errorf("goroutine %d: MRR %v, want %v", g, ans.MRR, ref.MRR)
				}
				if _, err := ds.QueryContext(context.Background(), 3, WithAlgorithm(AlgoCube)); err != nil {
					errs <- err
				}
				if _, err := ds.EvaluateMRR(ans.Indices); err != nil {
					errs <- err
				}
				if _, _, err := ds.WorstUtility(ans.Indices); err != nil {
					errs <- err
				}
				if _, err := ds.Skyline(); err != nil {
					errs <- err
				}
				if _, err := ds.HappyPoints(); err != nil {
					errs <- err
				}
				if _, err := ds.ConvexPoints(); err != nil {
					errs <- err
				}
				if _, err := idx.Query(4); err != nil {
					errs <- err
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent access failed: %v", err)
	}
}

// Race specifically on the FIRST lazy computation: a fresh Dataset,
// all goroutines released at once onto the cold caches. Every caller
// must observe the same candidate sets.
func TestConcurrentFirstAccess(t *testing.T) {
	for round := 0; round < 3; round++ {
		ds, err := NewDataset(testPoints(400, 4, int64(round)))
		if err != nil {
			t.Fatal(err)
		}
		const goroutines = 8
		start := make(chan struct{})
		results := make([][]int, goroutines)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				// Odd goroutines start from the deepest cache (conv
				// pulls happy pulls skyline), even ones from the
				// shallowest, so the Once chain is entered from both
				// ends simultaneously.
				if g%2 == 0 {
					if _, err := ds.Skyline(); err != nil {
						t.Errorf("goroutine %d: %v", g, err)
						return
					}
				} else if _, err := ds.ConvexPoints(); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				happy, err := ds.HappyPoints()
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				results[g] = happy
			}(g)
		}
		close(start)
		wg.Wait()
		for g := 1; g < goroutines; g++ {
			if !reflect.DeepEqual(results[0], results[g]) {
				t.Fatalf("round %d: goroutine %d saw different happy points", round, g)
			}
		}
	}
}
