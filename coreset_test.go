package kregret

import (
	"math"
	"sort"
	"testing"
)

func TestWithCoresetValidation(t *testing.T) {
	pts := testPoints(20, 3, 91)
	for _, eps := range []float64{math.NaN(), -0.1, 1, 2} {
		if _, err := NewDataset(pts, WithCoreset(eps)); err == nil {
			t.Fatalf("eps=%v accepted", eps)
		}
	}
	if _, err := NewDataset(pts, WithCoreset(0)); err != nil {
		t.Fatalf("eps=0 rejected: %v", err)
	}
}

func TestDatasetCoresetAPI(t *testing.T) {
	ds, err := NewDataset(testPoints(500, 3, 92), WithCoreset(0.1))
	if err != nil {
		t.Fatal(err)
	}
	idx, mrr, err := ds.Coreset()
	if err != nil {
		t.Fatal(err)
	}
	if mrr > 0.1+1e-9 {
		t.Fatalf("core MRR %v exceeds eps", mrr)
	}
	if !sort.IntsAreSorted(idx) {
		t.Fatalf("core not ascending: %v", idx)
	}
	happy, err := ds.HappyPoints()
	if err != nil {
		t.Fatal(err)
	}
	inHappy := make(map[int]bool, len(happy))
	for _, h := range happy {
		inHappy[h] = true
	}
	for _, c := range idx {
		if !inHappy[c] {
			t.Fatalf("core index %d is not a happy point", c)
		}
	}
	// Coreset returns a copy.
	idx[0] = -1
	again, _, err := ds.Coreset()
	if err != nil {
		t.Fatal(err)
	}
	if again[0] == -1 {
		t.Fatal("Coreset aliases the cached slice")
	}

	// Without the option, the core IS the happy set with zero ratio.
	plain, err := NewDataset(testPoints(500, 3, 92))
	if err != nil {
		t.Fatal(err)
	}
	pidx, pmrr, err := plain.Coreset()
	if err != nil {
		t.Fatal(err)
	}
	ph, _ := plain.HappyPoints()
	if pmrr != 0 || len(pidx) != len(ph) {
		t.Fatalf("plain coreset: %d of %d happy points, mrr %v", len(pidx), len(ph), pmrr)
	}
}

// TestCoresetDifferential is the tentpole's differential suite: for a
// grid of eps values the coreset-backed answer's true regret over the
// FULL dataset must stay within eps of the plain answer's regret — the
// composition bound WithCoreset promises — and eps = 0 must reproduce
// the plain answers byte for byte.
func TestCoresetDifferential(t *testing.T) {
	for _, d := range []int{2, 3, 4} {
		pts := testPoints(800, d, int64(93+d))
		plain, err := NewDataset(pts)
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range []float64{0, 0.05, 0.2} {
			cds, err := NewDataset(pts, WithCoreset(eps))
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{d, 5, 12} {
				want, err := plain.Query(k)
				if err != nil {
					t.Fatal(err)
				}
				got, err := cds.Query(k)
				if err != nil {
					t.Fatalf("d=%d eps=%v k=%d: %v", d, eps, k, err)
				}
				if eps == 0 {
					if math.Float64bits(got.MRR) != math.Float64bits(want.MRR) {
						t.Fatalf("d=%d k=%d: eps=0 MRR %v != plain %v", d, k, got.MRR, want.MRR)
					}
					if len(got.Indices) != len(want.Indices) {
						t.Fatalf("d=%d k=%d: eps=0 selected %d, plain %d", d, k, len(got.Indices), len(want.Indices))
					}
					for i := range got.Indices {
						if got.Indices[i] != want.Indices[i] {
							t.Fatalf("d=%d k=%d: eps=0 indices %v != plain %v", d, k, got.Indices, want.Indices)
						}
					}
					continue
				}
				// True regret of the coreset answer over the full
				// dataset, measured by the plain dataset's evaluator.
				trueMRR, err := plain.EvaluateMRR(got.Indices)
				if err != nil {
					t.Fatal(err)
				}
				if trueMRR > got.MRR+eps+1e-9 {
					t.Fatalf("d=%d eps=%v k=%d: true regret %v exceeds reported %v + eps",
						d, eps, k, trueMRR, got.MRR)
				}
				if trueMRR > want.MRR+eps+1e-9 {
					t.Fatalf("d=%d eps=%v k=%d: true regret %v exceeds plain %v + eps",
						d, eps, k, trueMRR, want.MRR)
				}
			}
		}
	}
}

// TestCoresetOnlyAffectsHappyQueries: CandidatesSkyline and
// CandidatesAll bypass the core entirely and must answer exactly like
// a plain dataset.
func TestCoresetOnlyAffectsHappyQueries(t *testing.T) {
	pts := testPoints(400, 3, 97)
	plain, err := NewDataset(pts)
	if err != nil {
		t.Fatal(err)
	}
	cds, err := NewDataset(pts, WithCoreset(0.3))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []CandidateSet{CandidatesSkyline, CandidatesAll} {
		want, err := plain.Query(6, WithCandidates(c))
		if err != nil {
			t.Fatal(err)
		}
		got, err := cds.Query(6, WithCandidates(c))
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got.MRR) != math.Float64bits(want.MRR) {
			t.Fatalf("%v: coreset dataset MRR %v != plain %v", c, got.MRR, want.MRR)
		}
	}
}

// TestCoresetSurvivesMutation: each epoch rebuilds its core lazily, so
// queries after Insert/Delete keep the eps bound against the mutated
// dataset.
func TestCoresetSurvivesMutation(t *testing.T) {
	const eps = 0.1
	ds, err := NewDataset(testPoints(300, 3, 98), WithCoreset(eps))
	if err != nil {
		t.Fatal(err)
	}
	// Coordinates are in the normalized space (per-dim max 1), so 1.5
	// everywhere strictly dominates the entire dataset.
	dominating := Point{1.5, 1.5, 1.5}
	idx, err := ds.Insert(dominating)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := ds.Query(5)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, i := range ans.Indices {
		found = found || i == idx
	}
	if !found {
		t.Fatalf("post-insert core misses the dominating point: %v", ans.Indices)
	}
	if err := ds.Delete(idx); err != nil {
		t.Fatal(err)
	}
	ans, err = ds.Query(5)
	if err != nil {
		t.Fatal(err)
	}
	trueMRR, err := ds.EvaluateMRR(ans.Indices)
	if err != nil {
		t.Fatal(err)
	}
	if trueMRR > ans.MRR+eps+1e-9 {
		t.Fatalf("post-delete regret %v exceeds reported %v + eps", trueMRR, ans.MRR)
	}
	core, mrr, err := ds.Coreset()
	if err != nil {
		t.Fatal(err)
	}
	if mrr > eps+1e-9 {
		t.Fatalf("post-mutation core MRR %v", mrr)
	}
	for _, c := range core {
		if c < 0 || c >= ds.Len() {
			t.Fatalf("post-mutation core index %d out of range [0,%d)", c, ds.Len())
		}
	}
}
