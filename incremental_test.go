package kregret

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// incrementalGens mirrors the paper's three workload families.
var incrementalGens = []struct {
	name string
	fn   func(n, d int, seed int64) ([]geom.Vector, error)
}{
	{"independent", dataset.Independent},
	{"correlated", dataset.Correlated},
	{"anticorrelated", dataset.AntiCorrelated},
}

func vecsToPoints(vs []geom.Vector) []Point {
	out := make([]Point, len(vs))
	for i, v := range vs {
		out[i] = append(Point(nil), v...)
	}
	return out
}

// TestIncrementalFoldMatchesFromScratch is the end-to-end differential
// for delta maintenance: warm a dataset's skyline/happy caches, drive
// randomized insert/delete sequences (which patch the caches via the
// epoch fold instead of recomputing), and after every mutation compare
// Skyline() and HappyPoints() against a FRESH dataset built from the
// same points. Equality is exact — same indices, and the underlying
// points bit-identical per math.Float64bits.
func TestIncrementalFoldMatchesFromScratch(t *testing.T) {
	for _, g := range incrementalGens {
		for d := 2; d <= 6; d++ {
			pool, err := g.fn(200, d, int64(d*17+len(g.name)))
			if err != nil {
				t.Fatal(err)
			}
			ds, err := NewDataset(vecsToPoints(pool[:70]), WithoutNormalization())
			if err != nil {
				t.Fatal(err)
			}
			pool = pool[70:]
			// Warm both caches so every later mutation takes the fold.
			if _, err := ds.Skyline(); err != nil {
				t.Fatal(err)
			}
			if _, err := ds.HappyPoints(); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(d * 5)))
			for step := 0; step < 60; step++ {
				if len(pool) > 0 && (ds.Len() < 15 || rng.Intn(2) == 0) {
					if _, err := ds.Insert(Point(pool[0])); err != nil {
						t.Fatal(err)
					}
					pool = pool[1:]
				} else {
					if err := ds.Delete(rng.Intn(ds.Len())); err != nil {
						t.Fatal(err)
					}
				}
				cur := make([]Point, ds.Len())
				for i := range cur {
					cur[i] = ds.Point(i)
				}
				fresh, err := NewDataset(cur, WithoutNormalization())
				if err != nil {
					t.Fatal(err)
				}
				for i := range cur {
					fp := fresh.Point(i)
					for j := range cur[i] {
						if math.Float64bits(cur[i][j]) != math.Float64bits(fp[j]) {
							t.Fatalf("%s d=%d step %d: point %d coord %d bits differ", g.name, d, step, i, j)
						}
					}
				}
				incSky, err := ds.Skyline()
				if err != nil {
					t.Fatal(err)
				}
				freshSky, err := fresh.Skyline()
				if err != nil {
					t.Fatal(err)
				}
				equalIndexSets(t, g.name+" skyline", step, incSky, freshSky)
				incHappy, err := ds.HappyPoints()
				if err != nil {
					t.Fatal(err)
				}
				freshHappy, err := fresh.HappyPoints()
				if err != nil {
					t.Fatal(err)
				}
				equalIndexSets(t, g.name+" happy", step, incHappy, freshHappy)
			}
		}
	}
}

func equalIndexSets(t *testing.T, ctxt string, step int, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s step %d: |%d| vs |%d|\nincremental %v\nfrom-scratch %v", ctxt, step, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s step %d: [%d] = %d, want %d", ctxt, step, i, got[i], want[i])
		}
	}
}

// TestIncrementalFoldColdCachesStayCold: the epoch fold must never
// trigger computation the previous epoch didn't already pay for — a
// mutation on a cold dataset leaves the successor cold too.
func TestIncrementalFoldColdCachesStayCold(t *testing.T) {
	ds := mutGrid(t)
	if _, err := ds.Insert(Point{0.7, 0.7}); err != nil {
		t.Fatal(err)
	}
	st := ds.snap()
	if st.skyDone.Load() || st.happyDone.Load() {
		t.Fatal("mutation on a cold dataset seeded successor caches")
	}
	// Now warm and mutate: the successor must arrive pre-seeded, with
	// the certificate invariant Wit ∈ Sky ∪ {-1} intact.
	if _, err := ds.HappyPoints(); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Insert(Point{0.85, 0.85}); err != nil {
		t.Fatal(err)
	}
	st = ds.snap()
	if !st.skyDone.Load() || !st.happyDone.Load() {
		t.Fatal("mutation on a warm dataset did not seed successor caches")
	}
	inSky := make(map[int]bool, len(st.cert.Sky))
	for _, s := range st.cert.Sky {
		inSky[s] = true
	}
	for i, w := range st.cert.Wit {
		if w != -1 && (!inSky[int(w)] || int(w) == st.cert.Sky[i]) {
			t.Fatalf("seeded certificate violates witness invariant: wit[%d]=%d sky=%v", i, w, st.cert.Sky)
		}
	}
}

// TestIncrementalFoldSnapshotIsolation: a Snapshot taken before a
// mutation keeps serving the old epoch's sets, bit-for-bit, while the
// live dataset folds forward.
func TestIncrementalFoldSnapshotIsolation(t *testing.T) {
	ds := mutGrid(t)
	if _, err := ds.HappyPoints(); err != nil {
		t.Fatal(err)
	}
	snap := ds.Snapshot()
	beforeSky, err := snap.Skyline()
	if err != nil {
		t.Fatal(err)
	}
	beforeHappy, err := snap.HappyPoints()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Insert(Point{0.95, 0.95}); err != nil {
		t.Fatal(err)
	}
	if err := ds.Delete(0); err != nil {
		t.Fatal(err)
	}
	afterSky, err := snap.Skyline()
	if err != nil {
		t.Fatal(err)
	}
	afterHappy, err := snap.HappyPoints()
	if err != nil {
		t.Fatal(err)
	}
	equalIndexSets(t, "snapshot skyline", 0, afterSky, beforeSky)
	equalIndexSets(t, "snapshot happy", 0, afterHappy, beforeHappy)
}
