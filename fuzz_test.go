package kregret

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// decodePoints turns fuzzer bytes into a point set. Two decodings
// share the corpus: mode 0 maps byte pairs into (0, 1] — always a
// structurally valid dataset, so the solvers themselves get fuzzed —
// while mode 1 reinterprets raw float64 bits, feeding NaN, ±Inf,
// subnormals and huge spreads straight into validation.
func decodePoints(data []byte) []Point {
	if len(data) < 4 {
		return nil
	}
	d := 1 + int(data[0])%5
	mode := data[1] % 2
	body := data[2:]
	var coords []float64
	if mode == 0 {
		for i := 0; i+1 < len(body); i += 2 {
			u := binary.LittleEndian.Uint16(body[i:])
			coords = append(coords, float64(u+1)/65536)
		}
	} else {
		for i := 0; i+7 < len(body); i += 8 {
			coords = append(coords, math.Float64frombits(binary.LittleEndian.Uint64(body[i:])))
		}
	}
	n := len(coords) / d
	if n == 0 {
		return nil
	}
	if n > 200 {
		n = 200 // bound per-input work
	}
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point(coords[i*d : (i+1)*d])
	}
	return pts
}

// seedCorpus holds the degenerate shapes the robustness layer must
// survive: duplicates, collinear runs, near-zero coordinates, huge
// spreads, single points, and raw-bits garbage.
func seedCorpus(f *testing.F) {
	duplicate := []byte{1, 0}
	for i := 0; i < 8; i++ {
		duplicate = append(duplicate, 0x10, 0x20, 0x10, 0x20) // same 2-d point repeated
	}
	f.Add(duplicate)
	collinear := []byte{1, 0}
	for i := 1; i <= 8; i++ {
		collinear = append(collinear, byte(i), 0, byte(i), 0) // points on the diagonal
	}
	f.Add(collinear)
	f.Add([]byte{2, 0, 1, 0, 1, 0, 1, 0, 0xff, 0xff, 0xff, 0xff, 0x01, 0x00}) // near-zero next to near-one
	f.Add([]byte{0, 0, 5, 5})                                                 // 1-d minimal
	f.Add([]byte{4, 0, 1, 2, 3})                                              // too short for one 5-d point
	raw := []byte{3, 1}
	for _, v := range []float64{math.NaN(), math.Inf(1), -1, 1e300, 5e-324, 0.5, 0.25, 1} {
		raw = binary.LittleEndian.AppendUint64(raw, math.Float64bits(v))
	}
	f.Add(raw)
}

// FuzzNewDataset asserts the constructor either rejects its input
// with an error or produces a dataset whose every accessor works — it
// must never panic and never accept non-finite coordinates.
func FuzzNewDataset(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		pts := decodePoints(data)
		ds, err := NewDataset(pts)
		if err != nil {
			return
		}
		for i := 0; i < ds.Len(); i++ {
			p := ds.Point(i)
			for j, x := range p {
				if math.IsNaN(x) || math.IsInf(x, 0) || x <= 0 {
					t.Fatalf("accepted point %d has invalid coordinate %d: %v", i, j, x)
				}
			}
		}
		sky, err := ds.Skyline()
		if err != nil {
			t.Fatalf("Skyline on valid dataset: %v", err)
		}
		happy, err := ds.HappyPoints()
		if err != nil {
			t.Fatalf("HappyPoints on valid dataset: %v", err)
		}
		if len(happy) > len(sky) {
			t.Fatalf("%d happy points but only %d skyline points", len(happy), len(sky))
		}
	})
}

// FuzzQuery runs the full pipeline over fuzzer-shaped datasets with a
// fuzzer-chosen k and algorithm: the only acceptable outcomes are an
// error or a valid Answer (indices in range and unique, MRR in
// [0, 1]); any panic escapes the boundary and fails the fuzz run.
func FuzzQuery(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		pts := decodePoints(data)
		ds, err := NewDataset(pts)
		if err != nil {
			return
		}
		k := 1 + int(data[0]>>4)%6
		alg := Algorithm(int(data[1]>>1) % 3)
		ans, err := ds.Query(k, WithAlgorithm(alg))
		if err != nil {
			return
		}
		if len(ans.Indices) == 0 || len(ans.Indices) > k {
			t.Fatalf("answer size %d for k=%d", len(ans.Indices), k)
		}
		seen := map[int]bool{}
		for _, i := range ans.Indices {
			if i < 0 || i >= ds.Len() {
				t.Fatalf("index %d out of range [0, %d)", i, ds.Len())
			}
			if seen[i] {
				t.Fatalf("duplicate index %d in answer", i)
			}
			seen[i] = true
		}
		if math.IsNaN(ans.MRR) || ans.MRR < 0 || ans.MRR > 1+1e-9 {
			t.Fatalf("MRR %v outside [0, 1]", ans.MRR)
		}
		// The answer must survive independent re-evaluation.
		mrr, err := ds.EvaluateMRR(ans.Indices)
		if err != nil {
			t.Fatalf("EvaluateMRR on query answer: %v", err)
		}
		if math.IsNaN(mrr) || mrr < 0 || mrr > 1+1e-9 {
			t.Fatalf("re-evaluated MRR %v outside [0, 1]", mrr)
		}
	})
}

// FuzzLoadIndex feeds the snapshot decoder valid snapshots, mutated
// snapshots and raw garbage: the only acceptable outcomes are a typed
// error or an index whose answers validate — never a panic, never an
// index with out-of-range candidates.
func FuzzLoadIndex(f *testing.F) {
	ds, err := NewDataset(testPoints(40, 3, 6))
	if err != nil {
		f.Fatal(err)
	}
	idx, err := ds.BuildIndex()
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf, ds); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0xff // bit-flipped payload
	f.Add(flipped)
	f.Add(valid[:3]) // shorter than the magic
	f.Add([]byte("KRGXgarbage after magic"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := LoadIndex(bytes.NewReader(data), ds)
		if err != nil {
			return
		}
		// Whatever decoded must answer like a real index.
		ans, err := loaded.Query(3)
		if err != nil {
			return
		}
		if len(ans.Indices) == 0 || len(ans.Indices) > 3 {
			t.Fatalf("loaded index answered with %d tuples for k=3", len(ans.Indices))
		}
		for _, i := range ans.Indices {
			if i < 0 || i >= ds.Len() {
				t.Fatalf("loaded index references tuple %d of %d", i, ds.Len())
			}
		}
		if math.IsNaN(ans.MRR) || ans.MRR < 0 || ans.MRR > 1+1e-9 {
			t.Fatalf("loaded index MRR %v outside [0, 1]", ans.MRR)
		}
	})
}

// FuzzCoresetBound fuzzes the ε-kernel layer end to end: for
// fuzzer-shaped datasets and a fuzzer-chosen eps, the core must be an
// ascending subset of the happy points whose reported ratio honors
// eps, and a coreset-backed query's true regret over the full dataset
// must stay within eps of its reported value — the WithCoreset
// contract, under adversarial geometry instead of friendly samples.
func FuzzCoresetBound(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		pts := decodePoints(data)
		eps := float64(int(data[0]^data[1])%90) / 100 // [0, 0.89]
		ds, err := NewDataset(pts, WithCoreset(eps))
		if err != nil {
			return
		}
		core, mrr, err := ds.Coreset()
		if err != nil {
			return // degenerate geometry is allowed to fail, not panic
		}
		if mrr > eps+1e-9 {
			t.Fatalf("core ratio %v exceeds eps %v", mrr, eps)
		}
		happy, err := ds.HappyPoints()
		if err != nil {
			t.Fatal(err)
		}
		inHappy := map[int]bool{}
		for _, h := range happy {
			inHappy[h] = true
		}
		for i, c := range core {
			if !inHappy[c] {
				t.Fatalf("core index %d is not a happy point", c)
			}
			if i > 0 && core[i-1] >= c {
				t.Fatalf("core not strictly ascending: %v", core)
			}
		}
		k := 1 + int(data[0]>>4)%6
		ans, err := ds.Query(k)
		if err != nil {
			return
		}
		trueMRR, err := ds.EvaluateMRR(ans.Indices)
		if err != nil {
			t.Fatalf("EvaluateMRR on coreset answer: %v", err)
		}
		if trueMRR > ans.MRR+eps+1e-9 {
			t.Fatalf("true regret %v exceeds reported %v + eps %v", trueMRR, ans.MRR, eps)
		}
	})
}
