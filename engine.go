package kregret

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/parallel"
	"repro/internal/serve"
)

// Admission errors returned by Engine.Query. They alias the
// internal/serve sentinels, so errors.Is works with either name; the
// concrete error in the chain is a *serve.OverloadError carrying the
// queue depth, capacity and worker count at the moment of the
// decision.
var (
	// ErrOverloaded: the bounded wait queue was full; the request was
	// shed before touching the geometry core.
	ErrOverloaded = serve.ErrOverloaded
	// ErrShed: the request's deadline had already expired (at
	// admission or while it waited in the queue); no solver ran.
	ErrShed = serve.ErrShed
	// ErrShuttingDown: the engine no longer accepts queries.
	ErrShuttingDown = serve.ErrShuttingDown
)

// EngineOption customizes NewEngine.
type EngineOption func(*engineOptions)

type engineOptions struct {
	workers, queueDepth int
	parallelismBudget   int
	maxQueryTime        time.Duration
	breakerThreshold    int
	breakerCooldown     time.Duration
	snapshotPath        string
	queryOpts           []Option
}

// WithWorkers bounds how many queries execute concurrently (default
// GOMAXPROCS). This is the hard cap on simultaneous solver work.
func WithWorkers(n int) EngineOption { return func(o *engineOptions) { o.workers = n } }

// WithQueueDepth bounds how many admitted queries may wait for a
// worker (default twice the worker count). Requests beyond it are
// shed with ErrOverloaded.
func WithQueueDepth(n int) EngineOption { return func(o *engineOptions) { o.queueDepth = n } }

// WithParallelismBudget caps the total intra-query fan-out across the
// whole engine: each query runs with WithParallelism(budget / pool
// workers) (at least 1), so inter-query concurrency and intra-query
// parallelism compose to at most ~budget busy goroutines instead of
// multiplying. The default budget is the process default parallelism
// (see WithParallelism), which with the default worker count gives
// every query the exact sequential path — a saturated pool already
// uses every core. Raise the budget (or lower the worker count) to
// give individual queries more cores, e.g. a 1-worker engine with
// budget 8 runs one query at a time, 8-wide. A WithParallelism in
// WithQueryDefaults or per-call options overrides the derived value.
func WithParallelismBudget(n int) EngineOption {
	return func(o *engineOptions) { o.parallelismBudget = n }
}

// WithQueryTimeout caps the wall-clock budget of every query (default
// none). The effective budget is the smaller of this cap and the
// request's own deadline; it threads into the geometric hot loops via
// the context-aware core entry points, so one pathological instance
// cannot monopolize a worker past its budget.
func WithQueryTimeout(d time.Duration) EngineOption {
	return func(o *engineOptions) { o.maxQueryTime = d }
}

// WithBreaker tunes the circuit breakers around the numerical
// fallback chain: threshold is the decayed failure score that trips a
// breaker open, cooldown how long it stays open before a half-open
// probe (and the score's half-life). Defaults: 5 failures, 10s.
func WithBreaker(threshold int, cooldown time.Duration) EngineOption {
	return func(o *engineOptions) {
		o.breakerThreshold = threshold
		o.breakerCooldown = cooldown
	}
}

// WithSnapshot makes the engine serve index-backed queries from a
// snapshot file: at startup the engine loads path, and when the file
// is missing, corrupt (ErrCorruptIndex) or built from a different
// dataset (ErrIndexMismatch) it rebuilds the StoredList from scratch
// and atomically rewrites the snapshot instead of failing. The
// rebuild is recorded in Stats().SnapshotRebuilt.
func WithSnapshot(path string) EngineOption {
	return func(o *engineOptions) { o.snapshotPath = path }
}

// WithQueryDefaults sets query options (algorithm, candidate set, …)
// applied to every Engine.Query before the per-call options.
func WithQueryDefaults(opts ...Option) EngineOption {
	return func(o *engineOptions) { o.queryOpts = append(o.queryOpts, opts...) }
}

// EngineStats is a point-in-time snapshot of the serving counters.
type EngineStats struct {
	// Admission counters, from the worker pool: Admitted entered the
	// queue; Completed ran; ShedOverload and ShedDeadline were
	// dropped before any solver work (queue full / deadline already
	// dead); Canceled were abandoned by their caller while queued;
	// RejectedShutdown arrived after Shutdown. Queued and InFlight
	// are current gauges.
	Admitted, Completed        uint64
	ShedOverload, ShedDeadline uint64
	Canceled, RejectedShutdown uint64
	Queued, InFlight           int
	Workers, QueueDepth        int
	// Degraded counts answers produced by the numerical fallback
	// chain; BreakerShortCircuits counts queries an open breaker
	// routed straight to Cube without attempting the requested
	// solver. Breakers maps each (algorithm/dim-bucket) key to its
	// current state ("closed", "open", "half-open").
	Degraded             uint64
	BreakerShortCircuits uint64
	Breakers             map[string]string
	// SnapshotRebuilt reports that startup found the snapshot file
	// missing, corrupt or mismatched and rebuilt the index.
	SnapshotRebuilt bool
}

// Engine is the production serving layer around a Dataset: a bounded
// worker pool with admission control and load shedding, per-query
// wall-clock budgets, circuit breakers around the numerical fallback
// chain, and optional crash-safe index snapshots. One Engine is meant
// to serve many concurrent callers; all methods are safe for
// concurrent use.
//
//	eng, err := kregret.NewEngine(ds, kregret.WithWorkers(8))
//	defer eng.Shutdown(context.Background())
//	ans, err := eng.Query(ctx, 10)
type Engine struct {
	ds       *Dataset
	idx      *Index // non-nil only with WithSnapshot
	pool     *serve.Pool
	breakers *serve.BreakerSet
	opts     engineOptions
	// perQueryWorkers is the intra-query parallelism injected into
	// every query (overridable via options): the engine's parallelism
	// budget divided by the pool's worker count.
	perQueryWorkers int

	degraded        atomic.Uint64
	breakerShorts   atomic.Uint64
	snapshotRebuilt bool
}

// NewEngine builds a serving engine over ds. With WithSnapshot it
// also loads (or rebuilds) the StoredList index and serves default
// queries from it in O(k).
func NewEngine(ds *Dataset, opts ...EngineOption) (*Engine, error) {
	if ds == nil {
		return nil, errors.New("kregret: engine needs a dataset")
	}
	var o engineOptions
	for _, f := range opts {
		f(&o)
	}
	e := &Engine{
		ds:   ds,
		opts: o,
		breakers: serve.NewBreakerSet(serve.BreakerConfig{
			Threshold: o.breakerThreshold,
			Cooldown:  o.breakerCooldown,
		}),
	}
	if o.snapshotPath != "" {
		idx, rebuilt, err := loadOrRebuildIndex(ds, o.snapshotPath)
		if err != nil {
			return nil, err
		}
		e.idx, e.snapshotRebuilt = idx, rebuilt
	}
	e.pool = serve.NewPool(serve.Config{Workers: o.workers, QueueDepth: o.queueDepth})
	e.perQueryWorkers = derivePerQueryWorkers(o.parallelismBudget, e.pool.Stats().Workers)
	return e, nil
}

// derivePerQueryWorkers splits the engine-wide parallelism budget
// (0 = the process default) evenly over the pool workers; every query
// gets at least the sequential path.
func derivePerQueryWorkers(budget, poolWorkers int) int {
	budget = parallel.Resolve(budget)
	if poolWorkers < 1 {
		poolWorkers = 1
	}
	if per := budget / poolWorkers; per > 1 {
		return per
	}
	return 1
}

// loadOrRebuildIndex implements the crash-safe startup path: a
// loadable snapshot wins; a missing, corrupt or mismatched one is
// replaced by a fresh build written back atomically. Only unexpected
// failures (I/O errors, a numerically failing build) propagate.
func loadOrRebuildIndex(ds *Dataset, path string) (*Index, bool, error) {
	idx, err := LoadFile(path, ds)
	if err == nil {
		return idx, false, nil
	}
	if !errors.Is(err, ErrCorruptIndex) && !errors.Is(err, ErrIndexMismatch) && !errors.Is(err, os.ErrNotExist) {
		return nil, false, fmt.Errorf("kregret: engine snapshot: %w", err)
	}
	idx, berr := ds.BuildIndex()
	if berr != nil {
		return nil, false, fmt.Errorf("kregret: engine snapshot unusable (%v) and rebuild failed: %w", err, berr)
	}
	if serr := idx.SaveFile(path, ds); serr != nil {
		return nil, false, fmt.Errorf("kregret: rewriting engine snapshot: %w", serr)
	}
	return idx, true, nil
}

// Query answers a k-regret query through the serving pipeline:
// admission (shed on overload or a dead deadline), a per-query
// wall-clock budget, then either the snapshot index (default-config
// queries on an engine built WithSnapshot) or the full solver behind
// its circuit breaker. While a breaker is open the query is routed
// straight to the Cube fallback and the answer is marked Degraded
// with the breaker named in FallbackReason.
func (e *Engine) Query(ctx context.Context, k int, opts ...Option) (*Answer, error) {
	if k < 1 {
		return nil, ErrBadK
	}
	// The derived per-query parallelism goes first so WithQueryDefaults
	// and per-call options can both override it.
	all := make([]Option, 0, len(e.opts.queryOpts)+len(opts)+1)
	all = append(all, WithParallelism(e.perQueryWorkers))
	all = append(all, e.opts.queryOpts...)
	all = append(all, opts...)
	var (
		ans *Answer
		err error
	)
	perr := e.pool.Do(ctx, func(jctx context.Context) {
		ans, err = e.serve(jctx, k, all)
	})
	if perr != nil {
		return nil, fmt.Errorf("kregret: %w", perr)
	}
	return ans, err
}

// serve runs one admitted query on a worker goroutine.
func (e *Engine) serve(ctx context.Context, k int, opts []Option) (*Answer, error) {
	if e.opts.maxQueryTime > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.opts.maxQueryTime)
		defer cancel()
	}
	o := defaultOptions()
	for _, f := range opts {
		f(&o)
	}

	// Default-config queries on a snapshot-backed engine are served
	// from the materialized list in O(k) — no breaker needed, the
	// index cannot fail numerically.
	if e.idx != nil && o.algorithm == AlgoGeoGreedy && o.candidates == CandidatesHappy {
		if ans, err := e.idx.Query(k); err == nil {
			return ans, nil
		}
		// Partial index (BuildIndexUpTo) or k beyond it: fall through
		// to the live solver.
	}

	br := e.breakers.For(breakerKey(o.algorithm, e.ds.Dim()))
	if o.algorithm == AlgoCube {
		// Cube is the floor of the fallback chain — non-adaptive
		// arithmetic with nothing to break.
		return e.ds.QueryContext(ctx, k, opts...)
	}
	if !br.Allow() {
		ans, err := e.ds.QueryContext(ctx, k, append(opts, WithAlgorithm(AlgoCube))...)
		if err != nil {
			return nil, err
		}
		e.breakerShorts.Add(1)
		e.degraded.Add(1)
		ans.Degraded = true
		ans.FallbackReason = fmt.Sprintf("circuit breaker open for %s: served by Cube without attempting %v",
			breakerKey(o.algorithm, e.ds.Dim()), o.algorithm)
		return ans, nil
	}

	ans, err := e.ds.QueryContext(ctx, k, opts...)
	switch {
	case err == nil && !ans.Degraded:
		br.Record(true)
	case err == nil: // degraded: the requested solver failed numerically
		br.Record(false)
		e.degraded.Add(1)
	default:
		var ne *NumericalError
		if errors.As(err, &ne) {
			br.Record(false)
		}
		// Cancellation and validation errors say nothing about the
		// solver's numerical health; leave the breaker untouched.
	}
	return ans, err
}

// breakerKey buckets breakers by requested algorithm and dimension:
// numerical degeneracy risk grows with dimension, so a storm at d=7
// must not open the breaker for well-conditioned low-d traffic when
// one engine serves heterogeneous query options.
func breakerKey(alg Algorithm, dim int) string {
	bucket := dim
	if bucket > 8 {
		bucket = 8
	}
	return fmt.Sprintf("%v/d%d", alg, bucket)
}

// Stats snapshots the serving counters.
func (e *Engine) Stats() EngineStats {
	ps := e.pool.Stats()
	states := e.breakers.States()
	breakers := make(map[string]string, len(states))
	for k, s := range states {
		breakers[k] = s.String()
	}
	return EngineStats{
		Admitted:             ps.Admitted,
		Completed:            ps.Completed,
		ShedOverload:         ps.ShedOverload,
		ShedDeadline:         ps.ShedDeadline,
		Canceled:             ps.Canceled,
		RejectedShutdown:     ps.RejectedShutdown,
		Queued:               ps.Queued,
		InFlight:             ps.InFlight,
		Workers:              ps.Workers,
		QueueDepth:           ps.QueueDepth,
		Degraded:             e.degraded.Load(),
		BreakerShortCircuits: e.breakerShorts.Load(),
		Breakers:             breakers,
		SnapshotRebuilt:      e.snapshotRebuilt,
	}
}

// Shutdown stops admissions (new queries return ErrShuttingDown),
// drains the queued and in-flight queries, and returns once the
// engine is idle — or ctx.Err() if ctx ends first, in which case the
// drain continues in the background and Shutdown may be called again.
// Safe to call multiple times; a post-shutdown Query never blocks.
func (e *Engine) Shutdown(ctx context.Context) error {
	return e.pool.Shutdown(ctx)
}

// Index returns the snapshot-backed index, or nil when the engine was
// built without WithSnapshot.
func (e *Engine) Index() *Index { return e.idx }
