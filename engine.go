package kregret

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/serve"
)

// Admission errors returned by Engine.Query. They alias the
// internal/serve sentinels, so errors.Is works with either name; the
// concrete error in the chain is a *serve.OverloadError carrying the
// queue depth, capacity and worker count at the moment of the
// decision.
var (
	// ErrOverloaded: the bounded wait queue was full; the request was
	// shed before touching the geometry core.
	ErrOverloaded = serve.ErrOverloaded
	// ErrShed: the request's deadline had already expired (at
	// admission or while it waited in the queue); no solver ran.
	ErrShed = serve.ErrShed
	// ErrShuttingDown: the engine no longer accepts queries.
	ErrShuttingDown = serve.ErrShuttingDown
)

// EngineOption customizes NewEngine.
type EngineOption func(*engineOptions)

type engineOptions struct {
	workers, queueDepth int
	parallelismBudget   int
	maxQueryTime        time.Duration
	breakerThreshold    int
	breakerCooldown     time.Duration
	snapshotPath        string
	queryOpts           []Option
	retryBudget         int
	retryBackoff        time.Duration
	watchdogInterval    time.Duration
	rebuildEvery        int
	sharded             bool
	shards              int
	shardEps            float64
}

// WithWorkers bounds how many queries execute concurrently (default
// GOMAXPROCS). This is the hard cap on simultaneous solver work.
func WithWorkers(n int) EngineOption { return func(o *engineOptions) { o.workers = n } }

// WithQueueDepth bounds how many admitted queries may wait for a
// worker (default twice the worker count). Requests beyond it are
// shed with ErrOverloaded.
func WithQueueDepth(n int) EngineOption { return func(o *engineOptions) { o.queueDepth = n } }

// WithParallelismBudget caps the total intra-query fan-out across the
// whole engine: each query runs with WithParallelism(budget / pool
// workers) (at least 1), so inter-query concurrency and intra-query
// parallelism compose to at most ~budget busy goroutines instead of
// multiplying. The default budget is the process default parallelism
// (see WithParallelism), which with the default worker count gives
// every query the exact sequential path — a saturated pool already
// uses every core. Raise the budget (or lower the worker count) to
// give individual queries more cores, e.g. a 1-worker engine with
// budget 8 runs one query at a time, 8-wide. A WithParallelism in
// WithQueryDefaults or per-call options overrides the derived value.
func WithParallelismBudget(n int) EngineOption {
	return func(o *engineOptions) { o.parallelismBudget = n }
}

// WithQueryTimeout caps the wall-clock budget of every query (default
// none). The effective budget is the smaller of this cap and the
// request's own deadline; it threads into the geometric hot loops via
// the context-aware core entry points, so one pathological instance
// cannot monopolize a worker past its budget.
func WithQueryTimeout(d time.Duration) EngineOption {
	return func(o *engineOptions) { o.maxQueryTime = d }
}

// WithBreaker tunes the circuit breakers around the numerical
// fallback chain: threshold is the decayed failure score that trips a
// breaker open, cooldown how long it stays open before a half-open
// probe (and the score's half-life). Defaults: 5 failures, 10s.
func WithBreaker(threshold int, cooldown time.Duration) EngineOption {
	return func(o *engineOptions) {
		o.breakerThreshold = threshold
		o.breakerCooldown = cooldown
	}
}

// WithSnapshot makes the engine serve index-backed queries from a
// snapshot file: at startup the engine loads path, and when the file
// is missing, corrupt (ErrCorruptIndex) or built from a different
// dataset (ErrIndexMismatch) it rebuilds the StoredList from scratch
// and atomically rewrites the snapshot instead of failing. The
// rebuild is recorded in Stats().SnapshotRebuilt.
func WithSnapshot(path string) EngineOption {
	return func(o *engineOptions) { o.snapshotPath = path }
}

// WithQueryDefaults sets query options (algorithm, candidate set, …)
// applied to every Engine.Query before the per-call options.
func WithQueryDefaults(opts ...Option) EngineOption {
	return func(o *engineOptions) { o.queryOpts = append(o.queryOpts, opts...) }
}

// WithRetryBudget gives every query up to `retries` transparent
// re-attempts after a transient numerical failure (a *NumericalError
// — cancellation and validation errors are never retried), with
// capped exponential backoff plus jitter between attempts: the n-th
// wait is backoff·2ⁿ, capped at 64·backoff, jittered into [d/2, d) so
// a storm of failing workers does not re-converge in lockstep. The
// wait honors the request context — a retry is never started when the
// remaining deadline cannot outlast its backoff, so the budget adds
// latency only to queries that still have time to be rescued.
// Re-attempts and rescues are counted in Stats (Retries,
// RetrySuccesses). Default: no retries.
func WithRetryBudget(retries int, backoff time.Duration) EngineOption {
	return func(o *engineOptions) {
		o.retryBudget = retries
		o.retryBackoff = backoff
	}
}

// WithRebuildThreshold sets how many applied mutations accumulate
// before Engine.Apply folds them into a fresh serving epoch. The
// default is 1 — every Apply call folds immediately, so readers never
// lag the durable state — and values below 1 are clamped to 1. Until
// the threshold is reached, queries keep answering from the previous
// epoch: mutations are already durable in the dataset's WAL, just not
// yet visible to the engine's readers. Raise it only to amortize
// candidate-set, coreset and index rebuild cost over bursts of
// mutations, accepting that bounded staleness in exchange.
func WithRebuildThreshold(n int) EngineOption {
	return func(o *engineOptions) { o.rebuildEvery = n }
}

// WithWatchdog starts a background scanner that every interval checks
// the in-flight queries for work running past its deadline by more
// than one interval — evidence that a solver is stuck in a loop the
// cancellation checks cannot reach. Each stuck query is counted in
// Stats().WatchdogStuck and its breaker key (algorithm/dim bucket) is
// quarantined: the breaker trips open immediately, so follow-up
// traffic for the pathological regime short-circuits to Cube instead
// of piling onto stuck workers. The watchdog goroutine is joined by
// Shutdown. Default: disabled.
func WithWatchdog(interval time.Duration) EngineOption {
	return func(o *engineOptions) { o.watchdogInterval = interval }
}

// EngineStats is a point-in-time snapshot of the serving counters.
type EngineStats struct {
	// Admission counters, from the worker pool: Admitted entered the
	// queue; Completed ran; ShedOverload and ShedDeadline were
	// dropped before any solver work (queue full / deadline already
	// dead); Canceled were abandoned by their caller while queued;
	// RejectedShutdown arrived after Shutdown. Queued and InFlight
	// are current gauges.
	Admitted, Completed        uint64
	ShedOverload, ShedDeadline uint64
	Canceled, RejectedShutdown uint64
	Queued, InFlight           int
	Workers, QueueDepth        int
	// Degraded counts answers produced by the numerical fallback
	// chain; BreakerShortCircuits counts queries an open breaker
	// routed straight to Cube without attempting the requested
	// solver. Breakers maps each (algorithm/dim-bucket) key to its
	// current state ("closed", "open", "half-open").
	Degraded             uint64
	BreakerShortCircuits uint64
	Breakers             map[string]string
	// Self-healing counters. ShedAtDequeue is the subset of
	// ShedDeadline dropped after admission (see serve.Stats); Retries
	// counts transparent re-attempts under WithRetryBudget and
	// RetrySuccesses the queries rescued by one; WatchdogStuck counts
	// in-flight queries the watchdog found running past their
	// deadline (each quarantines its breaker key). DrainDuration is
	// how long the shutdown drain took, zero until it has completed.
	ShedAtDequeue  uint64
	Retries        uint64
	RetrySuccesses uint64
	WatchdogStuck  uint64
	DrainDuration  time.Duration
	// SnapshotRebuilt reports that startup found the snapshot file
	// missing, corrupt or mismatched and rebuilt the index.
	SnapshotRebuilt bool
	// Mutation counters. Epoch is the serving epoch number (1 at
	// startup, +1 per fold); MutationsApplied counts mutations
	// durably applied through Engine.Apply; Rebuilds counts epoch
	// folds; PendingMutations is the gauge of applied-but-not-yet-
	// folded mutations (always below WithRebuildThreshold).
	Epoch            uint64
	MutationsApplied uint64
	Rebuilds         uint64
	PendingMutations int
	// Sharded serving gauges (WithShardedServing), all from the
	// current epoch: Shards is the effective shard count (0 when
	// unsharded or fallen back), CoreSize the merged core size,
	// CoresetBuildTime the partition–merge build cost.
	// ShardFallbacks counts epochs whose shard build failed and served
	// unsharded instead.
	Shards           int
	CoreSize         int
	CoresetBuildTime time.Duration
	ShardFallbacks   uint64
}

// Engine is the production serving layer around a Dataset: a bounded
// worker pool with admission control and load shedding, per-query
// wall-clock budgets, circuit breakers around the numerical fallback
// chain, and optional crash-safe index snapshots. One Engine is meant
// to serve many concurrent callers; all methods are safe for
// concurrent use.
//
//	eng, err := kregret.NewEngine(ds, kregret.WithWorkers(8))
//	defer eng.Shutdown(context.Background())
//	ans, err := eng.Query(ctx, 10)
type Engine struct {
	// base is the live, mutable dataset Engine.Apply writes through
	// (and the WAL behind it, when one is attached). Queries never
	// touch it: they run against the epoch below.
	base *Dataset
	// epoch is the immutable serving state: a Snapshot of base plus
	// its index, swapped atomically by Apply once enough mutations
	// accumulate. In-flight queries finish on the epoch they loaded;
	// new queries see the new one. Copy-on-write, no read locks.
	epoch    atomic.Pointer[engineEpoch]
	pool     *serve.Pool
	breakers *serve.BreakerSet
	opts     engineOptions
	// perQueryWorkers is the intra-query parallelism injected into
	// every query (overridable via options): the engine's parallelism
	// budget divided by the pool's worker count.
	perQueryWorkers int

	degraded        atomic.Uint64
	breakerShorts   atomic.Uint64
	retries         atomic.Uint64
	retrySuccesses  atomic.Uint64
	watchdogStuck   atomic.Uint64
	applied         atomic.Uint64
	rebuilds        atomic.Uint64
	shardFallbacks  atomic.Uint64
	stopping        atomic.Bool
	snapshotRebuilt bool

	// muApply serializes mutation application and epoch folds;
	// pending counts applied-but-not-yet-folded mutations.
	muApply sync.Mutex
	pending int

	// Watchdog lifecycle: nil channels when disabled. Shutdown closes
	// watchdogStop (once) and joins watchdogDone.
	watchdogStop chan struct{}
	watchdogDone chan struct{}
	watchdogOnce sync.Once

	// muInflight guards the in-flight query registry the watchdog
	// scans.
	muInflight sync.Mutex
	inflight   map[uint64]*inflightEntry
	inflightID uint64
}

// engineEpoch is one immutable generation of serving state: a
// read-only view of the dataset (pinned by Dataset.Snapshot) and the
// index built over it. Queries load the pointer once and use only the
// epoch for the rest of the attempt, so a concurrent Apply can swap
// in a successor without ever making a reader mix generations.
type engineEpoch struct {
	num uint64
	ds  *Dataset
	idx *Index // non-nil only with WithSnapshot

	// Sharded serving view (WithShardedServing), nil/zero when the
	// engine is unsharded or the shard build for this epoch fell back:
	// serveDS holds the merged per-shard core as its own dataset,
	// coreMap translates its indices to ds indices, shards is the
	// effective shard count and coresetBuild the partition–merge cost.
	serveDS      *Dataset
	coreMap      []int
	shards       int
	coresetBuild time.Duration
}

// inflightEntry is one running query as the watchdog sees it: the
// breaker key it would quarantine and the deadline it must respect
// (zero when the request is unbounded — such work is never "stuck").
type inflightEntry struct {
	key      string
	deadline time.Time
	flagged  bool
}

// NewEngine builds a serving engine over ds. With WithSnapshot it
// also loads (or rebuilds) the StoredList index and serves default
// queries from it in O(k).
func NewEngine(ds *Dataset, opts ...EngineOption) (*Engine, error) {
	return NewEngineContext(context.Background(), ds, opts...)
}

// NewEngineContext is NewEngine with the startup work bounded by a
// context: the sharded partition–merge build and the snapshot index
// load/rebuild can be expensive at scale, and cancellation stops them
// at the same granularity as queries. The context bounds construction
// only — the engine itself (and its watchdog goroutine, which Shutdown
// stops and joins) lives until Shutdown, not until ctx ends.
//
//kregret:allow ctxflow: the watchdog goroutine is engine-lifetime, stopped and joined by Shutdown, not request-scoped
func NewEngineContext(ctx context.Context, ds *Dataset, opts ...EngineOption) (*Engine, error) {
	if ds == nil {
		return nil, errors.New("kregret: engine needs a dataset")
	}
	var o engineOptions
	for _, f := range opts {
		f(&o)
	}
	if err := o.validateSharding(); err != nil {
		return nil, err
	}
	e := &Engine{
		base: ds,
		opts: o,
		breakers: serve.NewBreakerSet(serve.BreakerConfig{
			Threshold: o.breakerThreshold,
			Cooldown:  o.breakerCooldown,
		}),
	}
	ep := &engineEpoch{num: 1, ds: ds.Snapshot()}
	e.shardEpoch(ctx, ep)
	if o.snapshotPath != "" {
		var (
			idx     *Index
			rebuilt bool
			err     error
		)
		if ep.serveDS != nil {
			idx, rebuilt, err = loadOrRebuildShardedIndex(ctx, ep.ds, ep.serveDS, ep.coreMap, o.snapshotPath)
		} else {
			idx, rebuilt, err = loadOrRebuildIndex(ep.ds, o.snapshotPath)
		}
		if err != nil {
			return nil, err
		}
		ep.idx, e.snapshotRebuilt = idx, rebuilt
	}
	e.epoch.Store(ep)
	e.pool = serve.NewPool(serve.Config{Workers: o.workers, QueueDepth: o.queueDepth})
	e.perQueryWorkers = derivePerQueryWorkers(o.parallelismBudget, e.pool.Stats().Workers)
	if o.watchdogInterval > 0 {
		e.muInflight.Lock()
		e.inflight = map[uint64]*inflightEntry{}
		e.muInflight.Unlock()
		e.watchdogStop = make(chan struct{})
		e.watchdogDone = make(chan struct{})
		go e.watchdog(o.watchdogInterval)
	}
	return e, nil
}

// derivePerQueryWorkers splits the engine-wide parallelism budget
// (0 = the process default) evenly over the pool workers; every query
// gets at least the sequential path.
func derivePerQueryWorkers(budget, poolWorkers int) int {
	budget = parallel.Resolve(budget)
	if poolWorkers < 1 {
		poolWorkers = 1
	}
	if per := budget / poolWorkers; per > 1 {
		return per
	}
	return 1
}

// loadOrRebuildIndex implements the crash-safe startup path: a
// loadable snapshot wins; a missing, corrupt or mismatched one is
// replaced by a fresh build written back atomically. Only unexpected
// failures (I/O errors, a numerically failing build) propagate.
func loadOrRebuildIndex(ds *Dataset, path string) (*Index, bool, error) {
	idx, err := LoadFile(path, ds)
	if err == nil && idx.core == nil {
		return idx, false, nil
	}
	if err == nil {
		// A sharded engine persisted this snapshot: its StoredList was
		// built over a coreset, so an unsharded engine serving it would
		// silently return approximate answers. Rebuild instead.
		err = fmt.Errorf("%w: snapshot carries a sharded core", ErrIndexMismatch)
	}
	if !loadFailureRebuildable(err) {
		return nil, false, fmt.Errorf("kregret: engine snapshot: %w", err)
	}
	idx, berr := ds.BuildIndex()
	if berr != nil {
		return nil, false, fmt.Errorf("kregret: engine snapshot unusable (%v) and rebuild failed: %w", err, berr)
	}
	if serr := idx.SaveFile(path, ds); serr != nil {
		return nil, false, fmt.Errorf("kregret: rewriting engine snapshot: %w", serr)
	}
	return idx, true, nil
}

// loadFailureRebuildable reports whether a snapshot load failure is
// one the startup path recovers from by rebuilding: missing, corrupt
// or built from different data. I/O errors and the like propagate.
func loadFailureRebuildable(err error) bool {
	return errors.Is(err, ErrCorruptIndex) || errors.Is(err, ErrIndexMismatch) || errors.Is(err, os.ErrNotExist)
}

// Query answers a k-regret query through the serving pipeline:
// admission (shed on overload or a dead deadline), a per-query
// wall-clock budget, then either the snapshot index (default-config
// queries on an engine built WithSnapshot) or the full solver behind
// its circuit breaker. While a breaker is open the query is routed
// straight to the Cube fallback and the answer is marked Degraded
// with the breaker named in FallbackReason.
func (e *Engine) Query(ctx context.Context, k int, opts ...Option) (*Answer, error) {
	if k < 1 {
		return nil, ErrBadK
	}
	// The derived per-query parallelism goes first so WithQueryDefaults
	// and per-call options can both override it.
	all := make([]Option, 0, len(e.opts.queryOpts)+len(opts)+1)
	all = append(all, WithParallelism(e.perQueryWorkers))
	all = append(all, e.opts.queryOpts...)
	all = append(all, opts...)
	var (
		ans *Answer
		err error
	)
	perr := e.pool.Do(ctx, func(jctx context.Context) {
		ans, err = e.serve(jctx, k, all)
	})
	if perr != nil {
		return nil, fmt.Errorf("kregret: %w", perr)
	}
	return ans, err
}

// serve runs one admitted query on a worker goroutine: the per-query
// wall-clock budget, then serveOnce under the retry budget — a failed
// attempt with a transient numerical cause is re-run after a capped,
// jittered, context-aware backoff, and never past the deadline.
func (e *Engine) serve(ctx context.Context, k int, opts []Option) (*Answer, error) {
	if e.opts.maxQueryTime > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.opts.maxQueryTime)
		defer cancel()
	}
	o := defaultOptions()
	for _, f := range opts {
		f(&o)
	}

	var (
		ans *Answer
		err error
	)
	for attempt := 0; ; attempt++ {
		ans, err = e.serveOnce(ctx, k, &o, opts)
		if err == nil && attempt > 0 {
			e.retrySuccesses.Add(1)
		}
		if err == nil || attempt >= e.opts.retryBudget || !transientError(err) {
			return ans, err
		}
		delay := retryDelay(e.opts.retryBackoff, attempt)
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= delay {
			// The deadline ends before the backoff would: retrying
			// could only burn a worker on doomed work.
			return ans, err
		}
		e.retries.Add(1)
		if !waitBackoff(ctx, delay) {
			return ans, err
		}
	}
}

// transientError reports whether a failed attempt is worth retrying:
// only numerical failures are — cancellation and validation errors
// say the request (not the solver's luck) was the problem. Both forms
// count: the typed *NumericalError (fallback chain exhausted, or a
// recovered panic) and the bare core degeneracy error that
// WithoutFallback queries surface directly.
func transientError(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if core.IsNumerical(err) {
		return true
	}
	var ne *NumericalError
	return errors.As(err, &ne)
}

// retryDelay is the capped exponential backoff with jitter: the n-th
// retry waits base·2ⁿ (capped at 64·base), jittered into [d/2, d) so
// concurrent failing queries do not re-converge in lockstep.
func retryDelay(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		base = time.Millisecond
	}
	if attempt > 6 {
		attempt = 6
	}
	d := base << uint(attempt)
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// waitBackoff blocks for d or until ctx ends, whichever comes first,
// and reports whether the full wait elapsed — the context-aware wait
// shape the sleepctx analyzer enforces for every retry loop.
func waitBackoff(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// serveOnce runs one attempt of an admitted query. It loads the
// serving epoch exactly once, up front: every read below — index,
// breaker key, solver — comes from that one generation, so an epoch
// swap mid-attempt cannot hand the attempt a mixed view.
func (e *Engine) serveOnce(ctx context.Context, k int, o *options, opts []Option) (*Answer, error) {
	ep := e.epoch.Load()
	if e.watchdogDone != nil {
		deadline, _ := ctx.Deadline() // zero when unbounded: never stuck
		id := e.registerInflight(breakerKey(o.algorithm, ep.ds.Dim()), deadline)
		defer e.unregisterInflight(id)
	}

	// Default-config queries on a snapshot-backed engine are served
	// from the materialized list in O(k) — no breaker needed, the
	// index cannot fail numerically. (A sharded index already answers
	// in global indices: buildShardedIndex composed the maps.)
	if ep.idx != nil && o.algorithm == AlgoGeoGreedy && o.candidates == CandidatesHappy {
		if ans, err := ep.idx.Query(k); err == nil {
			return ans, nil
		}
		// Partial index (BuildIndexUpTo) or k beyond it: fall through
		// to the live solver.
	}

	// Live solvers run against the serving view: the sharded merged
	// core for happy-candidate queries (answers remapped to global
	// indices below), the full dataset otherwise.
	serveDS, coreMap := ep.ds, []int(nil)
	if ep.serveDS != nil && o.candidates == CandidatesHappy {
		serveDS, coreMap = ep.serveDS, ep.coreMap
	}
	serveQuery := func(extra ...Option) (*Answer, error) {
		ans, err := serveDS.QueryContext(ctx, k, append(opts, extra...)...)
		if err == nil && coreMap != nil {
			for i, ci := range ans.Indices {
				ans.Indices[i] = coreMap[ci]
			}
		}
		return ans, err
	}

	br := e.breakers.For(breakerKey(o.algorithm, ep.ds.Dim()))
	if o.algorithm == AlgoCube {
		// Cube is the floor of the fallback chain — non-adaptive
		// arithmetic with nothing to break.
		return serveQuery()
	}
	if !br.Allow() {
		ans, err := serveQuery(WithAlgorithm(AlgoCube))
		if err != nil {
			return nil, err
		}
		e.breakerShorts.Add(1)
		e.degraded.Add(1)
		ans.Degraded = true
		ans.FallbackReason = fmt.Sprintf("circuit breaker open for %s: served by Cube without attempting %v",
			breakerKey(o.algorithm, ep.ds.Dim()), o.algorithm)
		return ans, nil
	}

	ans, err := serveQuery()
	switch {
	case err == nil && !ans.Degraded:
		br.Record(true)
	case err == nil: // degraded: the requested solver failed numerically
		br.Record(false)
		e.degraded.Add(1)
	default:
		var ne *NumericalError
		if errors.As(err, &ne) {
			br.Record(false)
		}
		// Cancellation and validation errors say nothing about the
		// solver's numerical health; leave the breaker untouched.
	}
	return ans, err
}

// breakerKey buckets breakers by requested algorithm and dimension:
// numerical degeneracy risk grows with dimension, so a storm at d=7
// must not open the breaker for well-conditioned low-d traffic when
// one engine serves heterogeneous query options.
func breakerKey(alg Algorithm, dim int) string {
	bucket := dim
	if bucket > 8 {
		bucket = 8
	}
	return fmt.Sprintf("%v/d%d", alg, bucket)
}

// Stats snapshots the serving counters.
func (e *Engine) Stats() EngineStats {
	ps := e.pool.Stats()
	states := e.breakers.States()
	breakers := make(map[string]string, len(states))
	for k, s := range states {
		breakers[k] = s.String()
	}
	e.muApply.Lock()
	pending := e.pending
	e.muApply.Unlock()
	ep := e.epoch.Load()
	return EngineStats{
		Shards:               ep.shards,
		CoreSize:             len(ep.coreMap),
		CoresetBuildTime:     ep.coresetBuild,
		ShardFallbacks:       e.shardFallbacks.Load(),
		Epoch:                ep.num,
		MutationsApplied:     e.applied.Load(),
		Rebuilds:             e.rebuilds.Load(),
		PendingMutations:     pending,
		Admitted:             ps.Admitted,
		Completed:            ps.Completed,
		ShedOverload:         ps.ShedOverload,
		ShedDeadline:         ps.ShedDeadline,
		Canceled:             ps.Canceled,
		RejectedShutdown:     ps.RejectedShutdown,
		Queued:               ps.Queued,
		InFlight:             ps.InFlight,
		Workers:              ps.Workers,
		QueueDepth:           ps.QueueDepth,
		Degraded:             e.degraded.Load(),
		BreakerShortCircuits: e.breakerShorts.Load(),
		Breakers:             breakers,
		ShedAtDequeue:        ps.ShedAtDequeue,
		Retries:              e.retries.Load(),
		RetrySuccesses:       e.retrySuccesses.Load(),
		WatchdogStuck:        e.watchdogStuck.Load(),
		DrainDuration:        ps.DrainDuration,
		SnapshotRebuilt:      e.snapshotRebuilt,
	}
}

// watchdog periodically scans the in-flight registry for stuck work.
// It runs for the engine's lifetime and is joined by Shutdown.
func (e *Engine) watchdog(interval time.Duration) {
	defer close(e.watchdogDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-e.watchdogStop:
			return
		case now := <-t.C:
			e.scanInflight(now, interval)
		}
	}
}

// scanInflight flags every in-flight query running more than grace
// past its deadline — once per query — and quarantines its breaker
// key so follow-up traffic for the same regime short-circuits instead
// of piling onto a stuck solver.
func (e *Engine) scanInflight(now time.Time, grace time.Duration) {
	var stuck []string
	e.muInflight.Lock()
	for _, entry := range e.inflight {
		if entry.flagged || entry.deadline.IsZero() || now.Sub(entry.deadline) <= grace {
			continue
		}
		entry.flagged = true
		stuck = append(stuck, entry.key)
	}
	e.muInflight.Unlock()
	for _, key := range stuck {
		e.watchdogStuck.Add(1)
		e.breakers.For(key).Trip()
	}
}

// registerInflight records a starting attempt for the watchdog.
func (e *Engine) registerInflight(key string, deadline time.Time) uint64 {
	e.muInflight.Lock()
	defer e.muInflight.Unlock()
	e.inflightID++
	id := e.inflightID
	e.inflight[id] = &inflightEntry{key: key, deadline: deadline}
	return id
}

// unregisterInflight removes a finished attempt from the registry.
func (e *Engine) unregisterInflight(id uint64) {
	e.muInflight.Lock()
	defer e.muInflight.Unlock()
	delete(e.inflight, id)
}

// Shutdown stops admissions (new queries return ErrShuttingDown),
// drains the queued and in-flight queries, and returns once the
// engine is idle — or ctx.Err() if ctx ends first, in which case the
// drain continues in the background and Shutdown may be called again.
// Once the drain completes the watchdog goroutine is stopped and
// joined, so a fully shut-down engine leaves no goroutine behind.
// Safe to call multiple times; a post-shutdown Query never blocks.
func (e *Engine) Shutdown(ctx context.Context) error {
	// Stop accepting mutations before the query drain: an Apply
	// admitted after this point could swap an epoch no query will
	// ever see. One already inside Apply finishes its fold — the
	// drain below does not race it, epoch swaps are atomic.
	e.stopping.Store(true)
	if err := e.pool.Shutdown(ctx); err != nil {
		return err
	}
	if e.watchdogDone != nil {
		e.watchdogOnce.Do(func() { close(e.watchdogStop) })
		<-e.watchdogDone
	}
	return nil
}

// Index returns the current epoch's snapshot-backed index, or nil
// when the engine was built without WithSnapshot.
func (e *Engine) Index() *Index { return e.epoch.Load().idx }

// Dataset returns the current serving epoch's read-only dataset view.
// It is pinned: later mutations through Apply never change it.
func (e *Engine) Dataset() *Dataset { return e.epoch.Load().ds }

// Mutation is one dataset change submitted to Engine.Apply: build
// them with InsertMutation and DeleteMutation.
type Mutation struct {
	point  Point
	index  int
	insert bool
}

// InsertMutation appends a point (in the dataset's current normalized
// coordinate space — see Dataset.Insert). The coordinates are copied:
// the caller may reuse p.
func InsertMutation(p Point) Mutation {
	return Mutation{point: append(Point(nil), p...), insert: true}
}

// DeleteMutation removes the point at index i (later indices shift
// down by one — see Dataset.Delete).
func DeleteMutation(i int) Mutation { return Mutation{index: i} }

// Apply durably applies mutations to the engine's dataset and, once
// WithRebuildThreshold mutations have accumulated, folds them into a
// fresh serving epoch: warm candidate caches arrive pre-seeded by the
// per-mutation incremental fold (DESIGN.md §16; cold caches stay cold
// and compute lazily), the index (WithSnapshot) is rebuilt eagerly, and
// the epoch pointer is swapped atomically — queries already running
// finish on the old epoch, new queries see the fold. After the swap
// the engine persists best-effort: the rebuilt index is written back
// to the snapshot path and a WAL-backed dataset is compacted.
//
// Mutations are applied in order and each is durable (WAL-appended
// and fsynced per the dataset's WithSyncEvery) before the next is
// attempted. On error, every mutation before the failing one remains
// applied and durable; the error says which one failed. An error
// from the post-swap persistence or rebuild step does not undo any
// mutation — re-applying is never the right response to it, the next
// fold retries. After Shutdown has begun, Apply returns
// ErrShuttingDown without applying anything.
func (e *Engine) Apply(ctx context.Context, muts ...Mutation) error {
	if len(muts) == 0 {
		return nil
	}
	e.muApply.Lock()
	defer e.muApply.Unlock()
	if e.stopping.Load() {
		return fmt.Errorf("kregret: apply: %w", ErrShuttingDown)
	}
	for i, m := range muts {
		var err error
		if m.insert {
			_, err = e.base.Insert(m.point)
		} else {
			err = e.base.Delete(m.index)
		}
		if err != nil {
			// The prefix before i is durable. Fold it in now rather
			// than leaving applied mutations invisible until an
			// arbitrarily later Apply.
			e.pending += i
			var ferr error
			if e.pending > 0 {
				ferr = e.foldLocked(ctx)
			}
			return errors.Join(fmt.Errorf("kregret: apply mutation %d: %w", i, err), ferr)
		}
		e.applied.Add(1)
	}
	e.pending += len(muts)
	threshold := e.opts.rebuildEvery
	if threshold < 1 {
		threshold = 1
	}
	if e.pending < threshold {
		return nil
	}
	return e.foldLocked(ctx)
}

// foldLocked builds the successor epoch from the live dataset and
// swaps it in, then persists best-effort. Callers hold muApply.
func (e *Engine) foldLocked(ctx context.Context) error {
	old := e.epoch.Load()
	ep := &engineEpoch{num: old.num + 1, ds: e.base.Snapshot()}
	e.shardEpoch(ctx, ep)
	if e.opts.snapshotPath != "" {
		var (
			idx *Index
			err error
		)
		if ep.serveDS != nil {
			idx, err = buildShardedIndex(ctx, ep.serveDS, ep.coreMap)
		} else {
			idx, err = ep.ds.BuildIndexContext(ctx)
		}
		if err != nil {
			// Mutations stay pending; the next Apply retries the
			// fold. Queries keep answering from the old epoch.
			return fmt.Errorf("kregret: epoch %d index rebuild: %w", ep.num, err)
		}
		ep.idx = idx
	}
	e.epoch.Store(ep)
	e.rebuilds.Add(1)
	e.pending = 0

	// Persistence rides behind the swap: serving switches to the new
	// epoch immediately, disk writes only bound restart/recovery
	// time. Both failures are reported but change nothing in memory —
	// the WAL already holds every mutation durably.
	var errs []error
	if ep.idx != nil {
		if err := ep.idx.SaveFile(e.opts.snapshotPath, ep.ds); err != nil {
			errs = append(errs, fmt.Errorf("kregret: persisting epoch %d index: %w", ep.num, err))
		}
	}
	if e.base.WALBacked() {
		if err := e.base.Compact(); err != nil {
			errs = append(errs, fmt.Errorf("kregret: post-fold compaction: %w", err))
		}
	}
	return errors.Join(errs...)
}
