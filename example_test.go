package kregret_test

import (
	"fmt"
	"log"

	kregret "repro"
)

// The paper's Table I car database: normalized MPG and HP.
func paperCars() []kregret.Point {
	return []kregret.Point{
		{0.94, 0.80}, // BMW M3 GTS
		{0.76, 0.93}, // Chevrolet Camaro SS
		{0.67, 1.00}, // Ford Shelby GT500
		{1.00, 0.72}, // Nissan 370Z coupe
	}
}

func ExampleDataset_Query() {
	ds, err := kregret.NewDataset(paperCars())
	if err != nil {
		log.Fatal(err)
	}
	ans, err := ds.Query(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected %d cars, regret %.3f\n", len(ans.Indices), ans.MRR)
	// Output:
	// selected 2 cars, regret 0.018
}

func ExampleDataset_Skyline() {
	points := append(paperCars(), kregret.Point{0.60, 0.60}) // dominated
	ds, err := kregret.NewDataset(points)
	if err != nil {
		log.Fatal(err)
	}
	sky, err := ds.Skyline()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("skyline rows:", sky)
	// Output:
	// skyline rows: [0 1 2 3]
}

func ExampleDataset_RegretOf() {
	ds, err := kregret.NewDataset(paperCars())
	if err != nil {
		log.Fatal(err)
	}
	// The paper's example: S = {p2, p3}, utility weights (0.7, 0.3).
	r, err := ds.RegretOf([]int{1, 2}, kregret.Point{0.7, 0.3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("regret %.3f\n", r)
	// Output:
	// regret 0.115
}

func ExampleIndex() {
	ds, err := kregret.NewDataset(paperCars())
	if err != nil {
		log.Fatal(err)
	}
	idx, err := ds.BuildIndex()
	if err != nil {
		log.Fatal(err)
	}
	for _, k := range []int{1, 2, 3} {
		ans, err := idx.Query(k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("k=%d regret %.3f\n", k, ans.MRR)
	}
	// Output:
	// k=1 regret 0.280
	// k=2 regret 0.018
	// k=3 regret 0.000
}
