package kregret

// Benchmarks mirroring the paper's evaluation section. Each table
// and figure of Section V has a corresponding Benchmark* here; the
// cmd/experiments binary runs the same code at full dataset sizes and
// prints the tables (see DESIGN.md §5 and EXPERIMENTS.md).
//
// Benchmarks run on size-capped stand-ins so that `go test -bench=.`
// finishes in minutes; the shapes under study (GeoGreedy ≪ Greedy,
// StoredList query ≈ O(k), growth with n, d and k) are present at
// these sizes too.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exp"
	"repro/internal/geom"
	"repro/internal/happy"
	"repro/internal/skyline"
)

// benchCap caps the real stand-ins for benchmarking.
const benchCap = 20000

type preparedReal struct {
	pipe *exp.RealPipeline
	cand []geom.Vector // happy candidates
	sky  []geom.Vector // skyline candidates
	list *core.StoredList
}

var (
	prepMu   sync.Mutex
	prepared = map[dataset.RealName]*preparedReal{}
)

func prepReal(b *testing.B, name dataset.RealName) *preparedReal {
	b.Helper()
	prepMu.Lock()
	defer prepMu.Unlock()
	if p, ok := prepared[name]; ok {
		return p
	}
	pipe, err := exp.PrepareReal(name, benchCap)
	if err != nil {
		b.Fatal(err)
	}
	cand, err := pipe.CandidatePoints(pipe.Happy)
	if err != nil {
		b.Fatal(err)
	}
	skyPts, err := pipe.CandidatePoints(pipe.Sky)
	if err != nil {
		b.Fatal(err)
	}
	list, err := core.BuildStoredList(cand)
	if err != nil {
		b.Fatal(err)
	}
	p := &preparedReal{pipe: pipe, cand: cand, sky: skyPts, list: list}
	prepared[name] = p
	return p
}

// BenchmarkTable3 measures the full candidate-set pipeline (skyline →
// happy → hull extreme points) per dataset: the preprocessing cost
// behind Table III.
func BenchmarkTable3(b *testing.B) {
	for _, name := range dataset.RealNames {
		b.Run(string(name), func(b *testing.B) {
			pts, err := dataset.RealScaled(name, benchCap)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sky, err := skyline.Of(pts)
				if err != nil {
					b.Fatal(err)
				}
				hp := happy.ComputeAmongSkyline(pts, sky)
				if _, err := core.ConvexAmongHappy(pts, hp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7 measures GeoGreedy answer computation over happy
// candidates across the paper's k sweep (regret values themselves are
// printed by cmd/experiments -exp fig7).
func BenchmarkFig7(b *testing.B) {
	for _, name := range dataset.RealNames {
		p := prepReal(b, name)
		for _, k := range []int{10, 50, 100} {
			b.Run(fmt.Sprintf("%s/k=%d", name, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.GeoGreedy(p.cand, k); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig8 is the skyline-candidate variant (Figure 8 / 10).
func BenchmarkFig8(b *testing.B) {
	for _, name := range dataset.RealNames {
		p := prepReal(b, name)
		b.Run(fmt.Sprintf("%s/k=10", name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.GeoGreedy(p.sky, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9 compares the three algorithms' query time on happy
// candidates (Figure 9): Greedy vs GeoGreedy vs StoredList.
func BenchmarkFig9(b *testing.B) {
	const k = 20
	for _, name := range dataset.RealNames {
		p := prepReal(b, name)
		b.Run(fmt.Sprintf("%s/Greedy", name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Greedy(p.cand, k); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("%s/GeoGreedy", name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.GeoGreedy(p.cand, k); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("%s/StoredList", name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.list.Query(k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig10 compares Greedy and GeoGreedy over skyline
// candidates (Figure 10).
func BenchmarkFig10(b *testing.B) {
	const k = 20
	for _, name := range []dataset.RealName{dataset.NBA, dataset.Color} {
		p := prepReal(b, name)
		b.Run(fmt.Sprintf("%s/Greedy", name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Greedy(p.sky, k); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("%s/GeoGreedy", name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.GeoGreedy(p.sky, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig11 measures the total-time components (Figure 11):
// preprocessing (skyline + happy) and StoredList materialization.
func BenchmarkFig11(b *testing.B) {
	for _, name := range []dataset.RealName{dataset.NBA, dataset.Stocks} {
		b.Run(fmt.Sprintf("%s/preprocess", name), func(b *testing.B) {
			pts, err := dataset.RealScaled(name, benchCap)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sky, err := skyline.Of(pts)
				if err != nil {
					b.Fatal(err)
				}
				happy.ComputeAmongSkyline(pts, sky)
			}
		})
		p := prepReal(b, name)
		b.Run(fmt.Sprintf("%s/materialize", name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildStoredList(p.cand); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// synthCands prepares happy candidates for one synthetic
// anti-correlated instance.
func synthCands(b *testing.B, n, d int) []geom.Vector {
	b.Helper()
	pts, err := dataset.AntiCorrelated(n, d, 20140331)
	if err != nil {
		b.Fatal(err)
	}
	sky, err := skyline.Of(pts)
	if err != nil {
		b.Fatal(err)
	}
	hp := happy.ComputeAmongSkyline(pts, sky)
	cand, err := core.Select(pts, hp)
	if err != nil {
		b.Fatal(err)
	}
	return cand
}

// BenchmarkFig12a_13a: vary dimensionality (Figures 12(a)/13(a)).
func BenchmarkFig12a_13a(b *testing.B) {
	for _, d := range []int{2, 4, 6, 8} {
		cand := synthCands(b, exp.DefaultSynthN, d)
		b.Run(fmt.Sprintf("GeoGreedy/d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.GeoGreedy(cand, exp.DefaultSynthK); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Greedy/d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Greedy(cand, exp.DefaultSynthK); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig12b_13b: vary dataset size (Figures 12(b)/13(b)).
func BenchmarkFig12b_13b(b *testing.B) {
	for _, n := range []int{2500, 10000, 40000} {
		cand := synthCands(b, n, exp.DefaultSynthD)
		b.Run(fmt.Sprintf("GeoGreedy/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.GeoGreedy(cand, exp.DefaultSynthK); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig12c_13c: vary k (Figures 12(c)/13(c)).
func BenchmarkFig12c_13c(b *testing.B) {
	cand := synthCands(b, exp.DefaultSynthN, exp.DefaultSynthD)
	for _, k := range []int{10, 40, 70, 100} {
		b.Run(fmt.Sprintf("GeoGreedy/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.GeoGreedy(cand, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig12d_13d: very large k (Figures 12(d)/13(d)).
func BenchmarkFig12d_13d(b *testing.B) {
	cand := synthCands(b, exp.DefaultSynthN, exp.DefaultSynthD)
	for _, k := range []int{200, 800} {
		b.Run(fmt.Sprintf("GeoGreedy/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.GeoGreedy(cand, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHeadline is the §V-C comparison at bench scale: all three
// algorithms on the same anti-correlated instance, k = 100.
func BenchmarkHeadline(b *testing.B) {
	cand := synthCands(b, 50000, exp.DefaultSynthD)
	// Materialize enough to serve k = 100 (matching exp.Headline);
	// the full build over a 10k+-point anti-correlated hull is its
	// own experiment (Figure 11), not a fixture.
	list, err := core.BuildStoredListUpTo(cand, 1000)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Greedy(cand, 100); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("GeoGreedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.GeoGreedy(cand, 100); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("StoredListQuery", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := list.Query(100); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- micro-benchmarks of the substrates -------------------------------

func BenchmarkSkylineAlgorithms(b *testing.B) {
	pts, err := dataset.AntiCorrelated(20000, 5, 7)
	if err != nil {
		b.Fatal(err)
	}
	for _, algo := range []skyline.Algorithm{skyline.BNL, skyline.SFS, skyline.DC} {
		b.Run(algo.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := skyline.Compute(pts, algo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkHappyFilter(b *testing.B) {
	pts, err := dataset.AntiCorrelated(20000, 5, 7)
	if err != nil {
		b.Fatal(err)
	}
	sky, err := skyline.Of(pts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		happy.ComputeAmongSkyline(pts, sky)
	}
}

func BenchmarkMRREvaluation(b *testing.B) {
	cand := synthCands(b, 10000, 5)
	res, err := core.GeoGreedy(cand, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Geometric", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MRRGeometric(cand, res.Indices); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("LP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MRRByLP(cand, res.Indices); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Sampled1k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MRRSampled(cand, res.Indices, 1000, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}
