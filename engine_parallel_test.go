package kregret

import (
	"context"
	"reflect"
	"sync"
	"testing"
)

// TestEngineParallelismDeterminism race-stresses intra-query
// parallelism under inter-query concurrency: a 2-worker engine whose
// parallelism budget gives every query a 4-wide fan-out serves
// overlapping queries from 8 goroutines, and every answer must be
// byte-identical to the sequential (WithParallelism(1)) reference.
// Run with -race (the Makefile's test-race target does): the chunk
// claims, per-slot writes and argmax merges in internal/parallel are
// exactly the state this test hammers.
func TestEngineParallelismDeterminism(t *testing.T) {
	ds, err := NewDataset(testPoints(900, 3, 19))
	if err != nil {
		t.Fatal(err)
	}
	ks := []int{3, 5, 8}
	ref := make(map[int]*Answer, len(ks))
	for _, k := range ks {
		ans, err := ds.Query(k, WithCandidates(CandidatesAll), WithParallelism(1))
		if err != nil {
			t.Fatal(err)
		}
		ref[k] = ans
	}

	eng, err := NewEngine(ds, WithWorkers(2), WithQueueDepth(32),
		WithParallelismBudget(8),
		WithQueryDefaults(WithCandidates(CandidatesAll)))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := eng.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()
	if eng.perQueryWorkers != 4 {
		t.Fatalf("perQueryWorkers = %d, want 8/2 = 4", eng.perQueryWorkers)
	}

	const goroutines = 8
	const rounds = 3
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := ks[(g+r)%len(ks)]
				ans, err := eng.Query(context.Background(), k)
				if err != nil {
					t.Errorf("goroutine %d k=%d: %v", g, k, err)
					continue
				}
				want := ref[k]
				if !reflect.DeepEqual(ans.Indices, want.Indices) {
					t.Errorf("goroutine %d k=%d: indices %v, want %v", g, k, ans.Indices, want.Indices)
				}
				if ans.MRR != want.MRR {
					t.Errorf("goroutine %d k=%d: MRR %.17g, want %.17g", g, k, ans.MRR, want.MRR)
				}
				if ans.Degraded {
					t.Errorf("goroutine %d k=%d: unexpected degradation: %s", g, k, ans.FallbackReason)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestEngineParallelismBudgetDerivation pins the budget → per-query
// worker split at the unit level, including the default (budget =
// process parallelism, which a saturated default pool consumes
// entirely) and the floor of one.
func TestEngineParallelismBudgetDerivation(t *testing.T) {
	cases := []struct {
		budget, poolWorkers, want int
	}{
		{8, 2, 4},
		{8, 8, 1},
		{2, 8, 1},
		{9, 2, 4},
		{1, 1, 1},
	}
	for _, c := range cases {
		if got := derivePerQueryWorkers(c.budget, c.poolWorkers); got != c.want {
			t.Errorf("derivePerQueryWorkers(%d, %d) = %d, want %d",
				c.budget, c.poolWorkers, got, c.want)
		}
	}
}
