# Development entry points. `make check` is the extended verify chain
# CI runs; see ROADMAP.md.

GO ?= go

.PHONY: build vet kregret-vet test test-race test-debug check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Domain-aware static analysis: floatcmp, slicealias, naninf, errdrop.
kregret-vet:
	$(GO) run ./cmd/kregret-vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Same tests with the runtime invariant layer compiled in: violated
# geometric invariants (Lemma 1 ranges, downward-closedness, simplex
# feasibility) panic instead of passing silently.
test-debug:
	$(GO) test -tags kregretdebug ./...

check: build vet kregret-vet test-race test-debug
