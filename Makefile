# Development entry points. `make check` is the extended verify chain
# CI runs; see ROADMAP.md.

GO ?= go

.PHONY: build vet kregret-vet test test-race test-debug test-fault test-serve test-chaos test-crash fuzz-smoke bench bench-diff bench-smoke bench-shard check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Domain-aware static analysis: floatcmp, slicealias, naninf, errdrop,
# ctxflow, poolscope, atomicguard, wireguard, sleepctx.
kregret-vet:
	$(GO) run ./cmd/kregret-vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Same tests with the runtime invariant layer compiled in: violated
# geometric invariants (Lemma 1 ranges, downward-closedness, simplex
# feasibility) panic instead of passing silently.
test-debug:
	$(GO) test -tags kregretdebug ./...

# Same tests with the fault-injection harness compiled in; includes
# the fallback_test.go suite that forces each degradation edge
# (GeoGreedy → perturbed retry → Greedy → Cube).
test-fault:
	$(GO) test -tags kregretfault ./...

# Serving-engine stress: the admission/breaker/persistence layer under
# the race detector with the fault-injection harness compiled in —
# concurrent query storms, forced queue overflow, breaker trips and
# torn snapshot writes.
test-serve:
	$(GO) test -race -tags kregretfault -count=1 \
		-run 'Engine|Pool|Breaker|Snapshot|SaveFile|LoadFile|Fault' \
		./internal/serve .

# Seeded chaos soak: 20 consecutive fault schedules, each arming a
# randomized combination of injection sites against a live engine
# under concurrent mixed load, checked against the five global
# invariants (request conservation, breaker reclose, snapshot
# rebuild, leak-free shutdown, byte-identical non-degraded answers).
# Replay one failing seed with:
#   go test -race -tags kregretfault ./internal/chaos \
#       -chaos.seed <seed> -chaos.runs 1
test-chaos:
	$(GO) test -race -tags kregretfault -count=1 ./internal/chaos -chaos.runs 20

# Durability proof: the crash-point-exact recovery matrix. First the
# torn-tail sweep — a scripted mutation history whose WAL is truncated
# at EVERY byte offset, each cut recovering bit-for-bit to an
# acknowledged state (plain and across a mid-history compaction) —
# then the fault-site sweep, arming each durability injection point
# (wal.append, wal.sync, wal.rotate, persist.sync) at every execution
# it has in the script, plus the 20-seed chaos soak whose storm now
# includes the durable-mutation client class and the post-drain
# recovery invariant.
test-crash:
	$(GO) test -race -count=1 -run 'CrashPointSweep' .
	$(GO) test -race -tags kregretfault -count=1 \
		-run 'CrashFaultSiteSweep|InjectedFsync|EngineFoldSurvives' .
	$(GO) test -race -tags kregretfault -count=1 ./internal/chaos -chaos.runs 20

# Short native-fuzzing pass over the public constructors, the query
# path, the snapshot decoder and the flat-matrix kernels: degenerate
# datasets must produce an error or a valid Answer, corrupt snapshots
# a typed error — never a panic — and the kernels must match the
# scalar reference bit-for-bit on arbitrary float bit patterns.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzNewDataset -fuzztime=10s .
	$(GO) test -run=^$$ -fuzz=FuzzQuery -fuzztime=10s .
	$(GO) test -run=^$$ -fuzz=FuzzCoresetBound -fuzztime=10s .
	$(GO) test -run=^$$ -fuzz=FuzzLoadIndex -fuzztime=10s .
	$(GO) test -run=^$$ -fuzz=FuzzKernels -fuzztime=10s ./internal/mat
	$(GO) test -run=^$$ -fuzz=FuzzWALReplay -fuzztime=10s ./internal/wal

# Performance baseline: runs BenchmarkPaper at parallelism 1 and 4,
# three passes each (keeping the per-benchmark noise floor), and
# writes BENCH_<rev>.json (ns/op, allocs/op, speedup). Compare the
# json against the previous revision's before merging perf work; the
# interesting regressions are allocs/op (the scratch pools) and the
# sequential ns/op (parallelism must not tax workers=1).
bench:
	$(GO) run ./cmd/benchbaseline -parallelism 4 -count 3

# Baseline plus comparison: records the same report, then diffs it
# against the most recent earlier BENCH_*.json and fails on a >10%
# sequential ns/op regression (when n and benchtime match).
bench-diff:
	$(GO) run ./cmd/benchbaseline -parallelism 4 -count 3 -diff latest

# Same harness at toy size: proves the flag plumbing, the bench run
# and the json writer end to end in seconds, then asserts sequential
# and parallel runs return identical answers (the differential
# determinism suite). Part of `make check`; the ns/op numbers
# themselves are meaningless at this scale.
bench-smoke:
	$(GO) run ./cmd/benchbaseline -n 4000 -benchtime 1x -parallelism 4 \
		-out /tmp/kregret_bench_smoke.json
	$(GO) test -count=1 -run 'ParallelMatch|ParallelExhaustion|EngineParallelism' \
		./internal/core .

# Sharded serving smoke: the cold-query pair (unsharded baseline vs
# partition–merge) through the benchbaseline harness at toy size, then
# the differential suite proving S=1/eps=0 byte-identity and the eps
# bound. Part of `make check`; the ns/op numbers are meaningless at
# this scale — the point is that the sharded path builds, serves and
# stays within its contract.
bench-shard:
	$(GO) run ./cmd/benchbaseline -n 4000 -benchtime 1x -parallelism 4 \
		-bench 'Paper/(ColdQuery|ShardedColdQuery)' \
		-out /tmp/kregret_bench_shard.json
	$(GO) test -count=1 -run 'Sharded|MergeShardCores|CoresetDifferential' .

check: build vet kregret-vet test-race test-debug test-fault test-serve test-chaos test-crash bench-smoke bench-shard
