package kregret

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"testing"
)

func shutdownEngine(t *testing.T, eng *Engine) {
	t.Helper()
	if err := eng.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestShardedS1Eps0ByteIdentical is the acceptance differential: one
// shard with eps = 0 must serve answers byte-identical to the
// unsharded engine — same indices in the same order, bit-equal MRR —
// because the merged core is exactly the happy set and GeoGreedy sees
// the identical candidate sequence.
func TestShardedS1Eps0ByteIdentical(t *testing.T) {
	for _, d := range []int{2, 3, 4} {
		ds, err := NewDataset(testPoints(500, d, int64(100+d)))
		if err != nil {
			t.Fatal(err)
		}
		plain, err := NewEngine(ds)
		if err != nil {
			t.Fatal(err)
		}
		sharded, err := NewEngine(ds, WithShardedServing(1, 0))
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, d, 7, 15} {
			want, err := plain.Query(context.Background(), k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sharded.Query(context.Background(), k)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(got.MRR) != math.Float64bits(want.MRR) {
				t.Fatalf("d=%d k=%d: sharded MRR %v != unsharded %v (bits differ)", d, k, got.MRR, want.MRR)
			}
			if len(got.Indices) != len(want.Indices) {
				t.Fatalf("d=%d k=%d: sharded selected %d, unsharded %d", d, k, len(got.Indices), len(want.Indices))
			}
			for i := range got.Indices {
				if got.Indices[i] != want.Indices[i] {
					t.Fatalf("d=%d k=%d: sharded indices %v != unsharded %v", d, k, got.Indices, want.Indices)
				}
			}
		}
		shutdownEngine(t, plain)
		shutdownEngine(t, sharded)
	}
}

// TestShardedEpsZeroExact: with several shards and eps = 0 the merged
// core still contains every hull-extreme point, so answers may differ
// in selection but their regret over the full dataset must equal the
// reported value (the measure is exact, not ε-approximate).
func TestShardedEpsZeroExact(t *testing.T) {
	ds, err := NewDataset(testPoints(600, 3, 105))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(ds, WithShardedServing(4, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownEngine(t, eng)
	for _, k := range []int{3, 8} {
		ans, err := eng.Query(context.Background(), k)
		if err != nil {
			t.Fatal(err)
		}
		trueMRR, err := ds.EvaluateMRR(ans.Indices)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(trueMRR-ans.MRR) > 1e-9 {
			t.Fatalf("k=%d: eps=0 sharded reported %v, true regret %v", k, ans.MRR, trueMRR)
		}
	}
}

// TestShardedEpsBound: with eps > 0 every answer's true regret over
// the full dataset stays within eps of the reported (core-measured)
// value — the per-shard kernel bound composing over the union.
func TestShardedEpsBound(t *testing.T) {
	const eps = 0.15
	ds, err := NewDataset(testPoints(800, 4, 106))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(ds, WithShardedServing(5, eps))
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownEngine(t, eng)
	for _, k := range []int{4, 10, 20} {
		ans, err := eng.Query(context.Background(), k)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range ans.Indices {
			if i < 0 || i >= ds.Len() {
				t.Fatalf("k=%d: index %d outside the full dataset", k, i)
			}
		}
		trueMRR, err := ds.EvaluateMRR(ans.Indices)
		if err != nil {
			t.Fatal(err)
		}
		if trueMRR > ans.MRR+eps+1e-9 {
			t.Fatalf("k=%d: true regret %v exceeds reported %v + eps", k, trueMRR, ans.MRR)
		}
	}
}

func TestShardedStats(t *testing.T) {
	ds, err := NewDataset(testPoints(400, 3, 107))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(ds, WithShardedServing(4, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownEngine(t, eng)
	s := eng.Stats()
	if s.Shards != 4 {
		t.Fatalf("Shards = %d, want 4", s.Shards)
	}
	if s.CoreSize <= 0 || s.CoreSize > ds.Len() {
		t.Fatalf("CoreSize = %d", s.CoreSize)
	}
	if s.CoresetBuildTime <= 0 {
		t.Fatalf("CoresetBuildTime = %v", s.CoresetBuildTime)
	}
	if s.ShardFallbacks != 0 {
		t.Fatalf("ShardFallbacks = %d on a healthy build", s.ShardFallbacks)
	}

	// Unsharded engines keep the gauges zero.
	plain, err := NewEngine(ds)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownEngine(t, plain)
	if ps := plain.Stats(); ps.Shards != 0 || ps.CoreSize != 0 || ps.CoresetBuildTime != 0 {
		t.Fatalf("unsharded engine reports shard gauges: %+v", ps)
	}
}

// TestShardedShardsExceedN: S > n clamps to one-point shards and still
// answers correctly.
func TestShardedShardsExceedN(t *testing.T) {
	const n = 40
	ds, err := NewDataset(testPoints(n, 3, 108))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(ds, WithShardedServing(10*n, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownEngine(t, eng)
	if s := eng.Stats(); s.Shards != n {
		t.Fatalf("Shards = %d, want clamp to n = %d", s.Shards, n)
	}
	ans, err := eng.Query(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	trueMRR, err := ds.EvaluateMRR(ans.Indices)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(trueMRR-ans.MRR) > 1e-9 {
		t.Fatalf("one-point shards: reported %v, true %v", ans.MRR, trueMRR)
	}
}

func TestShardedValidation(t *testing.T) {
	ds, err := NewDataset(testPoints(30, 3, 109))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		shards int
		eps    float64
	}{
		{0, 0},
		{-1, 0.1},
		{2, math.NaN()},
		{2, -0.1},
		{2, 1},
	} {
		eng, err := NewEngine(ds, WithShardedServing(tc.shards, tc.eps))
		if err == nil {
			shutdownEngine(t, eng)
			t.Fatalf("shards=%d eps=%v accepted", tc.shards, tc.eps)
		}
	}
}

func TestMergeShardCores(t *testing.T) {
	got := mergeShardCores([][]int{{0, 3}, nil, {}, {7, 9}, {12}})
	want := []int{0, 3, 7, 9, 12}
	if len(got) != len(want) {
		t.Fatalf("merged %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged %v, want %v", got, want)
		}
	}
	if out := mergeShardCores(nil); len(out) != 0 {
		t.Fatalf("nil shards merged to %v", out)
	}
}

// TestShardedSnapshotRoundTrip: a sharded engine persists its index
// with the core recorded (payload v3); a restart with the same
// configuration adopts it without a rebuild, a restart whose plan
// builds a different core rebuilds, and an UNSHARDED engine refuses
// the core-carrying snapshot and rebuilds its exact index.
func TestShardedSnapshotRoundTrip(t *testing.T) {
	ds, err := NewDataset(testPoints(300, 3, 110))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "idx.snap")

	eng1, err := NewEngine(ds, WithShardedServing(3, 0.1), WithSnapshot(path))
	if err != nil {
		t.Fatal(err)
	}
	if !eng1.Stats().SnapshotRebuilt {
		t.Fatal("first sharded startup should rebuild")
	}
	ans1, err := eng1.Query(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	shutdownEngine(t, eng1)

	// Same configuration: adopt, answers identical.
	eng2, err := NewEngine(ds, WithShardedServing(3, 0.1), WithSnapshot(path))
	if err != nil {
		t.Fatal(err)
	}
	if eng2.Stats().SnapshotRebuilt {
		t.Fatal("identical sharded config rebuilt a valid snapshot")
	}
	ans2, err := eng2.Query(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(ans1.MRR) != math.Float64bits(ans2.MRR) {
		t.Fatalf("adopted snapshot answers %v, fresh build answered %v", ans2.MRR, ans1.MRR)
	}
	shutdownEngine(t, eng2)

	// A plan whose core genuinely differs — the exact plan keeps every
	// happy point, far more than an ε-trimmed core — must rebuild.
	// (Matching is by core, not by plan: two plans that converge to the
	// same serving set may share a snapshot.)
	eng3, err := NewEngine(ds, WithShardedServing(5, 0), WithSnapshot(path))
	if err != nil {
		t.Fatal(err)
	}
	if !eng3.Stats().SnapshotRebuilt {
		t.Fatal("changed shard plan adopted a stale core snapshot")
	}
	shutdownEngine(t, eng3)

	// Unsharded engine on the sharded snapshot: must rebuild (an
	// ε-approximate index must never silently serve an exact engine)
	// and then answer exactly.
	eng4, err := NewEngine(ds, WithSnapshot(path))
	if err != nil {
		t.Fatal(err)
	}
	if !eng4.Stats().SnapshotRebuilt {
		t.Fatal("unsharded engine adopted a core-carrying snapshot")
	}
	want, err := ds.Query(5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng4.Query(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.MRR) != math.Float64bits(want.MRR) {
		t.Fatalf("post-rebuild unsharded answer %v != dataset answer %v", got.MRR, want.MRR)
	}
	shutdownEngine(t, eng4)

	// And back: the unsharded engine rewrote an exact snapshot, which
	// the sharded engine must in turn refuse and replace.
	eng5, err := NewEngine(ds, WithShardedServing(3, 0.1), WithSnapshot(path))
	if err != nil {
		t.Fatal(err)
	}
	if !eng5.Stats().SnapshotRebuilt {
		t.Fatal("sharded engine adopted an unsharded snapshot")
	}
	shutdownEngine(t, eng5)
}

// TestSnapshotRejectsBadCore: persisted cores are validated like the
// extreme set — out-of-range or unsorted entries are ErrCorruptIndex,
// never a panic or a silently wrong serving set.
func TestSnapshotRejectsBadCore(t *testing.T) {
	ds, err := NewDataset(testPoints(60, 3, 111))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := ds.BuildIndex()
	if err != nil {
		t.Fatal(err)
	}
	for _, core := range [][]int{
		{5, 3},            // unsorted
		{2, 2},            // duplicate
		{-1, 4},           // negative
		{0, ds.Len()},     // out of range
		{0, 1, ds.Len() * 2}, // far out of range
	} {
		tampered := &Index{list: idx.list, cand: idx.cand, core: core}
		path := filepath.Join(t.TempDir(), "bad.snap")
		if err := tampered.SaveFile(path, ds); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadFile(path, ds); !errors.Is(err, ErrCorruptIndex) {
			t.Fatalf("core %v: got %v, want ErrCorruptIndex", core, err)
		}
	}
}

// TestShardedFoldReshards: Engine.Apply folds a new epoch that must be
// re-sharded — the gauges stay populated and answers keep the eps
// bound against the mutated dataset.
func TestShardedFoldReshards(t *testing.T) {
	const eps = 0.1
	ds, err := NewDataset(testPoints(300, 3, 112))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(ds, WithShardedServing(3, eps))
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownEngine(t, eng)
	if err := eng.Apply(context.Background(), InsertMutation(Point{1.5, 1.5, 1.5})); err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	if s.Epoch != 2 {
		t.Fatalf("Apply did not fold: epoch %d", s.Epoch)
	}
	if s.Shards != 3 || s.CoreSize <= 0 {
		t.Fatalf("successor epoch lost sharding: %+v", s)
	}
	ans, err := eng.Query(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// The inserted point dominates everything; the core must have
	// picked it up.
	found := false
	for _, i := range ans.Indices {
		found = found || i == 300
	}
	if !found {
		t.Fatalf("post-fold core misses the dominating insert: %v", ans.Indices)
	}
	trueMRR, err := eng.Dataset().EvaluateMRR(ans.Indices)
	if err != nil {
		t.Fatal(err)
	}
	if trueMRR > ans.MRR+eps+1e-9 {
		t.Fatalf("post-fold regret %v exceeds reported %v + eps", trueMRR, ans.MRR)
	}
}

// TestShardedPerQueryCandidateOverride: per-query CandidatesSkyline /
// CandidatesAll run on the full dataset even on a sharded engine, so
// their indices are global and their answers match the plain dataset.
func TestShardedPerQueryCandidateOverride(t *testing.T) {
	ds, err := NewDataset(testPoints(300, 3, 113))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(ds, WithShardedServing(4, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownEngine(t, eng)
	for _, c := range []CandidateSet{CandidatesSkyline, CandidatesAll} {
		want, err := ds.Query(5, WithCandidates(c))
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Query(context.Background(), 5, WithCandidates(c))
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got.MRR) != math.Float64bits(want.MRR) {
			t.Fatalf("%v on sharded engine: MRR %v != dataset %v", c, got.MRR, want.MRR)
		}
		for i := range got.Indices {
			if got.Indices[i] != want.Indices[i] {
				t.Fatalf("%v on sharded engine: indices %v != dataset %v", c, got.Indices, want.Indices)
			}
		}
	}
}
