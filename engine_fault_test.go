//go:build kregretfault

// Fault-injection tests for the serving engine: the breaker
// trip → half-open → close cycle driven by an injected numerical
// storm, the forced queue overflow, and the torn-write → startup
// rebuild path. They compile only under the kregretfault tag
// (`make test-serve`).
package kregret

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
)

// TestEngineBreakerCycleUnderNumericalStorm drives the full breaker
// lifecycle through the public API: an armed NaN site makes every
// GeoGreedy attempt fail (each query degrades through the fallback
// chain), the per-(algorithm, dim) breaker trips open and routes
// queries straight to Cube, and once the storm stops the half-open
// probe closes it again.
func TestEngineBreakerCycleUnderNumericalStorm(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	ds := faultDataset(t)
	const cooldown = 100 * time.Millisecond
	eng, err := NewEngine(ds, WithWorkers(1), WithBreaker(3, cooldown),
		WithQueryDefaults(WithCandidates(CandidatesAll)))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := eng.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()
	key := breakerKey(AlgoGeoGreedy, ds.Dim())

	// Storm: every GeoGreedy support value is NaN, so each query pays
	// the full retry ladder and comes back degraded.
	fault.Arm(fault.SiteGeoGreedySupport, -1)
	for i := 0; i < 3; i++ {
		ans, err := eng.Query(context.Background(), 5)
		if err != nil {
			t.Fatalf("storm query %d failed outright: %v", i, err)
		}
		if !ans.Degraded {
			t.Fatalf("storm query %d not degraded: %+v", i, ans)
		}
	}
	if state := eng.Stats().Breakers[key]; state != "open" {
		t.Fatalf("breaker %s is %q after the storm, want open", key, state)
	}

	// Open breaker: the next query must not pay the retry ladder — it
	// goes straight to Cube, still labeled degraded.
	before := fault.Fired(fault.SiteGeoGreedySupport)
	ans, err := eng.Query(context.Background(), 5)
	if err != nil {
		t.Fatalf("short-circuited query failed: %v", err)
	}
	if ans.Algorithm != AlgoCube || !ans.Degraded {
		t.Fatalf("open breaker did not route to Cube: %+v", ans)
	}
	if !strings.Contains(ans.FallbackReason, "circuit breaker open") {
		t.Fatalf("reason does not name the breaker: %q", ans.FallbackReason)
	}
	if fault.Fired(fault.SiteGeoGreedySupport) != before {
		t.Fatal("open breaker still ran GeoGreedy (NaN site fired)")
	}
	if eng.Stats().BreakerShortCircuits == 0 {
		t.Fatal("short circuit not counted")
	}

	// Storm over: after the cooldown the half-open probe runs the real
	// solver, succeeds, and closes the breaker.
	fault.Reset()
	time.Sleep(cooldown + 20*time.Millisecond)
	ans, err = eng.Query(context.Background(), 5)
	if err != nil {
		t.Fatalf("probe query failed: %v", err)
	}
	if ans.Degraded || ans.Algorithm != AlgoGeoGreedy {
		t.Fatalf("probe did not run the real solver: %+v", ans)
	}
	if state := eng.Stats().Breakers[key]; state != "closed" {
		t.Fatalf("breaker %s is %q after a healthy probe, want closed", key, state)
	}
}

func TestEngineQueueFullInjection(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	ds := faultDataset(t)
	eng, err := NewEngine(ds, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := eng.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()
	fault.Arm(fault.SiteServeQueueFull, 1)
	if _, err := eng.Query(context.Background(), 3); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded from armed queue-full site, got %v", err)
	}
	if got := fault.Fired(fault.SiteServeQueueFull); got != 1 {
		t.Fatalf("queue-full site fired %d times, want 1", got)
	}
	if eng.Stats().ShedOverload != 1 {
		t.Fatalf("shed not counted: %+v", eng.Stats())
	}
	if _, err := eng.Query(context.Background(), 3); err != nil {
		t.Fatalf("post-injection query failed: %v", err)
	}
}

// TestSaveFileTornWriteRecovery proves the crash-safety story end to
// end: a torn write (injected after the atomic rename) yields a file
// LoadFile rejects as ErrCorruptIndex, and engine startup on that
// file rebuilds the index and repairs the snapshot instead of
// failing.
func TestSaveFileTornWriteRecovery(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	ds := faultDataset(t)
	idx, err := ds.BuildIndex()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "idx.snap")

	fault.Arm(fault.SitePersistTornWrite, 1)
	if err := idx.SaveFile(path, ds); err != nil {
		t.Fatalf("torn save reported an error: %v", err)
	}
	if got := fault.Fired(fault.SitePersistTornWrite); got != 1 {
		t.Fatalf("torn-write site fired %d times, want 1", got)
	}
	if _, err := LoadFile(path, ds); !errors.Is(err, ErrCorruptIndex) {
		t.Fatalf("torn snapshot: want ErrCorruptIndex, got %v", err)
	}

	eng, err := NewEngine(ds, WithSnapshot(path))
	if err != nil {
		t.Fatalf("startup on torn snapshot failed: %v", err)
	}
	if !eng.Stats().SnapshotRebuilt {
		t.Fatal("torn snapshot not reported as rebuilt")
	}
	if err := eng.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The rebuild repaired the file.
	if _, err := LoadFile(path, ds); err != nil {
		t.Fatalf("snapshot not repaired: %v", err)
	}
}
