package kregret

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"
)

// spherePoints places n points on the positive unit sphere. Every
// point is then a convex-hull extreme point, so GeoGreedy does the
// maximum amount of dual-hull work — at d=7 a full query takes
// several seconds, which is what the cancellation tests need.
func spherePoints(n, d int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		p := make(Point, d)
		var norm float64
		for j := range p {
			p[j] = 0.05 + math.Abs(rng.NormFloat64())
			norm += p[j] * p[j]
		}
		norm = math.Sqrt(norm)
		for j := range p {
			p[j] /= norm
		}
		pts[i] = p
	}
	return pts
}

func TestQueryContextAlreadyCanceled(t *testing.T) {
	ds, err := NewDataset(spherePoints(2000, 7, 1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	ans, err := ds.QueryContext(ctx, 80, WithCandidates(CandidatesAll))
	elapsed := time.Since(start)
	if ans != nil {
		t.Fatalf("canceled query returned an answer: %+v", ans)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The same query runs for seconds; a pre-canceled context must
	// return before any geometry work starts.
	if elapsed > 500*time.Millisecond {
		t.Fatalf("pre-canceled query took %v", elapsed)
	}
}

func TestQueryContextDeadlineMidRun(t *testing.T) {
	// ~4–5s of GeoGreedy work on this machine class; the 100ms
	// deadline therefore always expires mid-run, and the cooperative
	// checks inside the hull insertions and candidate scans must
	// surface it long before the query would have finished.
	ds, err := NewDataset(spherePoints(2000, 7, 1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	ans, err := ds.QueryContext(ctx, 80, WithCandidates(CandidatesAll))
	elapsed := time.Since(start)
	if ans != nil {
		t.Fatalf("deadline-exceeded query returned an answer: %+v", ans)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("cancellation took %v to propagate", elapsed)
	}
}

func TestBuildIndexContextCanceled(t *testing.T) {
	ds, err := NewDataset(testPoints(300, 4, 7))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ds.BuildIndexContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, err := ds.BuildIndexUpToContext(ctx, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("UpTo: want context.Canceled, got %v", err)
	}
}

func TestEvaluateContextCanceled(t *testing.T) {
	ds, err := NewDataset(testPoints(300, 4, 7))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := ds.Query(4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ds.EvaluateMRRContext(ctx, ans.Indices); !errors.Is(err, context.Canceled) {
		t.Fatalf("EvaluateMRR: want context.Canceled, got %v", err)
	}
	if _, _, err := ds.WorstUtilityContext(ctx, ans.Indices); !errors.Is(err, context.Canceled) {
		t.Fatalf("WorstUtility: want context.Canceled, got %v", err)
	}
}

// Regression: weight vectors of the wrong dimension or with
// non-finite components must come back as errors, never reach the
// core's dot products (which panic on dimension mismatch) and never
// produce a silent NaN regret.
func TestRegretOfWeightValidation(t *testing.T) {
	ds, err := NewDataset(testPoints(50, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	sel := []int{0, 1, 2}
	cases := map[string]Point{
		"short":    {1, 1},
		"long":     {1, 1, 1, 1},
		"nan":      {1, math.NaN(), 1},
		"inf":      {1, math.Inf(1), 1},
		"negative": {1, -1, 1},
	}
	for name, w := range cases {
		r, err := ds.RegretOf(sel, w)
		if err == nil {
			t.Errorf("%s weights accepted, regret %v", name, r)
		}
		if math.IsNaN(r) {
			t.Errorf("%s weights produced NaN", name)
		}
	}
	// Sanity: valid weights still work.
	if _, err := ds.RegretOf(sel, Point{1, 1, 1}); err != nil {
		t.Fatalf("valid weights rejected: %v", err)
	}
}

func TestSelectionValidation(t *testing.T) {
	ds, err := NewDataset(testPoints(50, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	for name, sel := range map[string][]int{
		"empty":    {},
		"negative": {-1},
		"beyond":   {0, 50},
	} {
		if _, err := ds.EvaluateMRR(sel); err == nil {
			t.Errorf("EvaluateMRR accepted %s selection", name)
		}
		if _, _, err := ds.WorstUtility(sel); err == nil {
			t.Errorf("WorstUtility accepted %s selection", name)
		}
		if _, err := ds.RegretOf(sel, Point{1, 1, 1}); err == nil {
			t.Errorf("RegretOf accepted %s selection", name)
		}
	}
}

// The panic boundary converts a geometry-core panic into a typed
// *NumericalError instead of unwinding into the caller.
func TestPanicBoundary(t *testing.T) {
	ds, err := NewDataset(testPoints(20, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err = ds.protect("TestOp", func() error { panic(boom) })
	var ne *NumericalError
	if !errors.As(err, &ne) {
		t.Fatalf("want *NumericalError, got %T: %v", err, err)
	}
	if ne.Op != "TestOp" || ne.PanicValue != boom {
		t.Fatalf("boundary lost context: %+v", ne)
	}
	if ne.Error() == "" {
		t.Fatal("empty error message")
	}
	// Non-panicking functions pass through untouched.
	if err := ds.protect("TestOp", func() error { return nil }); err != nil {
		t.Fatalf("clean run reported %v", err)
	}
	sentinel := errors.New("sentinel")
	if err := ds.protect("TestOp", func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("error passthrough broken: %v", err)
	}
}

func TestRetriableClassification(t *testing.T) {
	if retriable(context.Canceled) {
		t.Fatal("context.Canceled must never enter the fallback chain")
	}
	if retriable(context.DeadlineExceeded) {
		t.Fatal("context.DeadlineExceeded must never enter the fallback chain")
	}
	if retriable(errors.New("kregret: some validation error")) {
		t.Fatal("plain errors must not be retried")
	}
	if !retriable(&NumericalError{PanicValue: "boom"}) {
		t.Fatal("recovered panics must be retriable")
	}
}

// The degradation retry must be reproducible and must not move any
// point by more than float noise.
func TestPerturbedDeterministicAndTiny(t *testing.T) {
	ds, err := NewDataset(testPoints(100, 4, 9))
	if err != nil {
		t.Fatal(err)
	}
	pts := ds.snap().pts
	a, b := perturbed(pts), perturbed(pts)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("perturbation not deterministic at [%d][%d]", i, j)
			}
			if a[i][j] <= 0 {
				t.Fatalf("perturbation lost positivity at [%d][%d]: %v", i, j, a[i][j])
			}
			rel := math.Abs(a[i][j]-pts[i][j]) / pts[i][j]
			if rel > 2e-9 {
				t.Fatalf("perturbation too large at [%d][%d]: rel=%v", i, j, rel)
			}
		}
	}
	// Originals untouched.
	if &a[0][0] == &pts[0][0] {
		t.Fatal("perturbed aliases the input")
	}
}

// A normal QueryContext must behave exactly like Query, including the
// degradation metadata staying zero.
func TestQueryContextMatchesQuery(t *testing.T) {
	ds, err := NewDataset(testPoints(200, 3, 5))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ds.Query(6)
	if err != nil {
		t.Fatal(err)
	}
	ctxAns, err := ds.QueryContext(context.Background(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if plain.MRR != ctxAns.MRR || len(plain.Indices) != len(ctxAns.Indices) {
		t.Fatalf("answers diverge: %+v vs %+v", plain, ctxAns)
	}
	if ctxAns.Degraded || ctxAns.FallbackReason != "" {
		t.Fatalf("healthy query marked degraded: %+v", ctxAns)
	}
	if ctxAns.Algorithm != AlgoGeoGreedy {
		t.Fatalf("algorithm mislabeled: %v", ctxAns.Algorithm)
	}
}

// Engine lifecycle: Shutdown drains in-flight queries, rejects new
// ones with ErrShuttingDown, and a post-shutdown Query returns
// immediately — it must never deadlock (guarded by a watchdog).
func TestEngineShutdownLifecycle(t *testing.T) {
	ds, err := NewDataset(spherePoints(2000, 7, 1))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(ds, WithWorkers(2), WithQueueDepth(4))
	if err != nil {
		t.Fatal(err)
	}

	// Launch in-flight work that takes real time (seconds of GeoGreedy
	// on this dataset, bounded by its own deadline).
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	inflight := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := eng.Query(ctx, 80, WithCandidates(CandidatesAll))
			inflight <- err
		}()
	}
	// Wait until both queries are actually running.
	deadline := time.Now().Add(5 * time.Second)
	for eng.Stats().InFlight < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queries never started: %+v", eng.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	if err := eng.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown did not drain cleanly: %v", err)
	}
	// Drained means the in-flight queries finished (here: hit their
	// own deadline) by the time Shutdown returned; the callers may
	// need a scheduler beat to observe it.
	for i := 0; i < 2; i++ {
		select {
		case err := <-inflight:
			if err != nil && !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("drained query returned %v", err)
			}
		case <-time.After(time.Second):
			t.Fatal("Shutdown returned before an in-flight query finished")
		}
	}

	// New queries are rejected, and never block.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := eng.Query(context.Background(), 5); !errors.Is(err, ErrShuttingDown) {
			t.Errorf("post-shutdown query: want ErrShuttingDown, got %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("post-shutdown Query deadlocked")
	}
	if eng.Stats().RejectedShutdown == 0 {
		t.Fatalf("rejection not counted: %+v", eng.Stats())
	}
	// Shutdown is idempotent.
	if err := eng.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}
