package kregret

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/geom"
)

// Errors returned by the persistence layer.
var (
	// ErrIndexMismatch is returned by LoadIndex when the serialized
	// index was built from a different dataset than the one supplied.
	ErrIndexMismatch = errors.New("kregret: index does not match dataset")

	// ErrCorruptIndex is returned by LoadIndex/LoadFile when the
	// snapshot bytes are damaged — truncated, bit-flipped, or not a
	// snapshot at all. A corrupt snapshot is always reported as this
	// typed error (never a panic, never a silently-wrong index), so
	// callers can fall back to rebuilding the StoredList.
	ErrCorruptIndex = errors.New("kregret: corrupt index snapshot")
)

// Snapshot wire format v2 (the current write format):
//
//	offset 0  magic "KRGX" (4 bytes)
//	       4  format version (1 byte, currently 2)
//	       5  payload length (uint64 little-endian)
//	      13  payload: the v1 body — gob(indexWire) ++ gob(StoredList)
//	  13+len  CRC-32C over bytes [0, 13+len) (uint32 little-endian)
//
// The CRC trailer covers the header and both gob streams together, so
// a truncation or bit flip anywhere in the file — including inside
// the second stream, which v1 could not protect — surfaces as
// ErrCorruptIndex before any gob decoding happens. Version 1 files
// (bare concatenated gob streams, no frame) are still readable: they
// cannot begin with the magic because a gob stream's first byte is a
// small message length, and 'K' (0x4b) would imply a 75-byte first
// message where the indexWire type definition is longer.
const (
	snapshotMagic   = "KRGX"
	snapshotVersion = 2
	snapshotHdrLen  = 4 + 1 + 8
	// maxSnapshotPayload caps the framed payload length so a corrupt
	// length field cannot drive an allocation of attacker-chosen size.
	maxSnapshotPayload = 1 << 32
)

var snapshotCRC = crc32.MakeTable(crc32.Castagnoli)

// indexWire is the gob envelope around a stored list: the happy
// candidate mapping plus a checksum binding the index to the dataset
// it was built from. Its Version field versions the payload schema,
// independent of the outer frame version.
//
// Payload v2 adds Ext — the skyline (extreme set) indices computed
// during preprocessing — so loading a snapshot also seeds the
// dataset's evaluation pruning without recomputing the skyline pass.
// v1 payloads (no Ext; gob omits absent fields, so the field decodes
// as nil) still load, they just skip the seeding.
//
// Payload v3 adds Core — the sharded engine's merged coreset (global
// indices, ascending) — so reload can tell a core-built StoredList
// apart from an exact one and match it against the current shard
// configuration. Ext and Core are mutually exclusive: a core-built
// snapshot skips the full-dataset skyline (recomputing it at scale
// would defeat the sharding). v1/v2 payloads decode with Core nil.
type indexWire struct {
	Version  int
	Checksum uint64
	N, Dim   int
	Cand     []int
	Ext      []int
	Core     []int
}

const indexVersion = 3

// wireManifest pins the gob wire layout of every struct this package
// persists (checked by the wireguard analyzer): changing a field
// means rewriting the entry on this line, which is where the version
// bump and the decoder's compat path get reviewed together.
var wireManifest = map[string]string{
	"indexWire":   "v3 Version int; Checksum uint64; N int; Dim int; Cand []int; Ext []int; Core []int",
	"datasetWire": "v1 Version int; Seq uint64; N int; Dim int; Coords []float64",
}

// checksum fingerprints the (normalized) dataset contents.
func (d *Dataset) checksum() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range d.snap().pts {
		for _, x := range p {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
			//kregret:allow errdrop: hash.Hash.Write never returns an error
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

// Save serializes the index so later processes can skip the expensive
// StoredList preprocessing. The dataset itself is not stored; load
// with LoadIndex against an identically-constructed Dataset. The
// stream is framed with a CRC-32C trailer (format v2) so corruption
// is detectable on load; use SaveFile for crash-safe writes to disk.
func (x *Index) Save(w io.Writer, d *Dataset) error {
	// The skyline is already cached on any dataset that built an index
	// (happy-point extraction runs it); persisting it lets the loader
	// seed evaluation pruning for free. A core-built index (sharded
	// engine) persists the core instead: its dataset never ran a
	// full-dataset skyline and must not start now.
	var sky []int
	if x.core == nil {
		var err error
		sky, err = d.Skyline()
		if err != nil {
			return fmt.Errorf("kregret: saving index: %w", err)
		}
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(indexWire{
		Version:  indexVersion,
		Checksum: d.checksum(),
		N:        d.Len(),
		Dim:      d.Dim(),
		Cand:     x.cand,
		Ext:      sky,
		Core:     x.core,
	}); err != nil {
		return fmt.Errorf("kregret: saving index: %w", err)
	}
	if err := x.list.Save(&payload); err != nil {
		return fmt.Errorf("kregret: saving index list: %w", err)
	}

	frame := make([]byte, snapshotHdrLen, snapshotHdrLen+payload.Len()+4)
	copy(frame, snapshotMagic)
	frame[4] = snapshotVersion
	binary.LittleEndian.PutUint64(frame[5:], uint64(payload.Len()))
	frame = append(frame, payload.Bytes()...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(frame, snapshotCRC))
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("kregret: saving index: %w", err)
	}
	return nil
}

// LoadIndex restores an index saved with Index.Save, verifying both
// the snapshot integrity (CRC trailer; damage comes back as
// ErrCorruptIndex) and that it was built from exactly the given
// dataset (content checksum; mismatch comes back as
// ErrIndexMismatch). Version-1 snapshots written before the CRC frame
// existed still load.
func LoadIndex(r io.Reader, d *Dataset) (*Index, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(snapshotMagic))
	if err != nil {
		// Not even a magic's worth of bytes: neither format can be
		// this short.
		return nil, fmt.Errorf("%w: truncated header: %v", ErrCorruptIndex, err)
	}
	if string(head) == snapshotMagic {
		return loadFramed(br, d)
	}
	// Legacy v1: two bare gob streams, no integrity trailer.
	return decodeIndexPayload(br, d)
}

// loadFramed reads a v2 frame, verifies the CRC trailer, and decodes
// the payload. Any framing or integrity violation is ErrCorruptIndex.
func loadFramed(br *bufio.Reader, d *Dataset) (*Index, error) {
	hdr := make([]byte, snapshotHdrLen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrCorruptIndex, err)
	}
	if v := hdr[4]; v != snapshotVersion {
		return nil, fmt.Errorf("kregret: index snapshot format v%d, want v%d", v, snapshotVersion)
	}
	n := binary.LittleEndian.Uint64(hdr[5:])
	if n > maxSnapshotPayload {
		return nil, fmt.Errorf("%w: implausible payload length %d", ErrCorruptIndex, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated payload: %v", ErrCorruptIndex, err)
	}
	var trailer [4]byte
	if _, err := io.ReadFull(br, trailer[:]); err != nil {
		return nil, fmt.Errorf("%w: missing CRC trailer: %v", ErrCorruptIndex, err)
	}
	crc := crc32.Checksum(hdr, snapshotCRC)
	crc = crc32.Update(crc, snapshotCRC, payload)
	if got := binary.LittleEndian.Uint32(trailer[:]); got != crc {
		return nil, fmt.Errorf("%w: CRC mismatch (stored %08x, computed %08x)", ErrCorruptIndex, got, crc)
	}
	return decodeIndexPayload(bytes.NewReader(payload), d)
}

// decodeIndexPayload decodes the two gob streams shared by both
// formats and validates them against the dataset. Decode failures are
// corruption; a clean decode that names a different dataset is
// ErrIndexMismatch.
func decodeIndexPayload(r io.Reader, d *Dataset) (*Index, error) {
	var wire indexWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("%w: decoding index: %v", ErrCorruptIndex, err)
	}
	if wire.Version < 1 || wire.Version > indexVersion {
		return nil, fmt.Errorf("kregret: index version %d, want 1..%d", wire.Version, indexVersion)
	}
	if wire.N != d.Len() || wire.Dim != d.Dim() || wire.Checksum != d.checksum() {
		return nil, ErrIndexMismatch
	}
	for _, c := range wire.Cand {
		if c < 0 || c >= d.Len() {
			return nil, fmt.Errorf("%w: index candidate %d out of range", ErrCorruptIndex, c)
		}
	}
	// The extreme set rides along since payload v2. Validate before
	// seeding: a snapshot that passed the CRC can still carry garbage
	// if it was written by a buggy or hostile producer.
	for k, e := range wire.Ext {
		if e < 0 || e >= d.Len() {
			return nil, fmt.Errorf("%w: extreme index %d out of range", ErrCorruptIndex, e)
		}
		if k > 0 && e <= wire.Ext[k-1] {
			return nil, fmt.Errorf("%w: extreme set not strictly ascending at position %d", ErrCorruptIndex, k)
		}
	}
	// The sharded core (payload v3) gets the same treatment: global
	// indices, strictly ascending. Ext is never persisted alongside it.
	for k, c := range wire.Core {
		if c < 0 || c >= d.Len() {
			return nil, fmt.Errorf("%w: core index %d out of range", ErrCorruptIndex, c)
		}
		if k > 0 && c <= wire.Core[k-1] {
			return nil, fmt.Errorf("%w: core not strictly ascending at position %d", ErrCorruptIndex, k)
		}
	}
	list, err := core.LoadStoredList(r)
	if err != nil {
		return nil, fmt.Errorf("%w: loading index list: %v", ErrCorruptIndex, err)
	}
	if len(wire.Ext) > 0 {
		d.seedSkyline(wire.Ext)
	}
	return &Index{list: list, cand: wire.Cand, core: wire.Core}, nil
}

// SaveFile writes the index snapshot to path crash-safely: the bytes
// go to a temporary file in the same directory, are fsynced, and the
// temp file is atomically renamed over path (whose directory is then
// fsynced). A crash at any point leaves either the old file or the
// complete new one — never a torn snapshot — and a torn write that
// slips through anyway (disk lying about sync) is caught by the CRC
// on load.
func (x *Index) SaveFile(path string, d *Dataset) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".kregret-index-*")
	if err != nil {
		return fmt.Errorf("kregret: saving index snapshot: %w", err)
	}
	if err := x.Save(tmp, d); err != nil {
		return errors.Join(err, tmp.Close(), os.Remove(tmp.Name()))
	}
	if err := syncTemp(tmp); err != nil {
		err = fmt.Errorf("kregret: syncing index snapshot: %w", err)
		return errors.Join(err, tmp.Close(), os.Remove(tmp.Name()))
	}
	if err := tmp.Close(); err != nil {
		err = fmt.Errorf("kregret: closing index snapshot: %w", err)
		return errors.Join(err, os.Remove(tmp.Name()))
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		err = fmt.Errorf("kregret: publishing index snapshot: %w", err)
		return errors.Join(err, os.Remove(tmp.Name()))
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("kregret: syncing snapshot directory: %w", err)
	}
	if fault.Enabled && fault.Active(fault.SitePersistTornWrite) {
		tearFile(path)
	}
	return nil
}

// syncTemp fsyncs a snapshot temp file, honoring the persist.sync
// fault site: an injected failure behaves exactly like a full disk or
// a dying device reporting the fsync error, and the caller's cleanup
// must remove the temp file and leave the previous snapshot loadable.
func syncTemp(f *os.File) error {
	if fault.Enabled && fault.Active(fault.SitePersistSync) {
		return errors.New("fsync failed (injected)")
	}
	return f.Sync()
}

// syncDir fsyncs a directory so the rename that published a snapshot
// is itself durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}

// tearFile truncates a published snapshot to half its size — the
// fault-injection model of a crash that tore the write despite the
// atomic-rename protocol (e.g. a device that acknowledged the sync
// without persisting). Only reachable under the kregretfault tag.
func tearFile(path string) {
	info, err := os.Stat(path)
	if err != nil {
		return
	}
	//kregret:allow errdrop: fault injection is best-effort by design
	os.Truncate(path, info.Size()/2)
}

// LoadFile restores an index snapshot written by SaveFile (or any
// Save output on disk). Corruption is ErrCorruptIndex, a snapshot of
// a different dataset is ErrIndexMismatch, and a missing file is the
// underlying fs error (check with os.IsNotExist / errors.Is).
func LoadFile(path string, d *Dataset) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("kregret: loading index snapshot: %w", err)
	}
	idx, err := LoadIndex(f, d)
	if cerr := f.Close(); err == nil && cerr != nil {
		return nil, fmt.Errorf("kregret: closing index snapshot: %w", cerr)
	}
	return idx, err
}

// ErrCorruptSnapshot is returned by Recover (via loadDatasetFile)
// when the dataset base snapshot bytes are damaged — truncated,
// bit-flipped, or not a dataset snapshot at all. Like ErrCorruptIndex
// it is always a typed error, never a panic or a silently-wrong
// dataset.
var ErrCorruptSnapshot = errors.New("kregret: corrupt dataset snapshot")

// Dataset base snapshot format v1 — the durable half of the
// (snapshot, WAL) pair behind WithWAL/Recover. Same framing as index
// snapshots, with its own magic:
//
//	offset 0  magic "KRGD" (4 bytes)
//	       4  format version (1 byte, currently 1)
//	       5  payload length (uint64 little-endian)
//	      13  payload: gob(datasetWire)
//	  13+len  CRC-32C over bytes [0, 13+len) (uint32 little-endian)
const (
	dsSnapMagic   = "KRGD"
	dsSnapVersion = 1
)

// datasetWire is the gob envelope of a dataset base snapshot: the
// (already normalized) points flattened row-major, plus the sequence
// number of the last mutation folded in — the watermark Recover's
// replay skips WAL records by.
type datasetWire struct {
	Version int
	Seq     uint64
	N, Dim  int
	Coords  []float64
}

const datasetWireVersion = 1

// saveDatasetFile writes st as a base snapshot to path with the same
// crash-safe protocol as Index.SaveFile: temp file in the target
// directory, fsync (the persist.sync fault site), atomic rename, and
// a directory sync. A failure at any step removes the temp file and
// leaves a previous snapshot at path untouched.
func saveDatasetFile(path string, st *dsState) error {
	wire := datasetWire{
		Version: datasetWireVersion,
		Seq:     st.seq,
		N:       len(st.pts),
		Dim:     len(st.pts[0]),
		Coords:  make([]float64, 0, len(st.pts)*len(st.pts[0])),
	}
	for _, p := range st.pts {
		wire.Coords = append(wire.Coords, p...)
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(wire); err != nil {
		return fmt.Errorf("kregret: saving dataset snapshot: %w", err)
	}
	frame := make([]byte, snapshotHdrLen, snapshotHdrLen+payload.Len()+4)
	copy(frame, dsSnapMagic)
	frame[4] = dsSnapVersion
	binary.LittleEndian.PutUint64(frame[5:], uint64(payload.Len()))
	frame = append(frame, payload.Bytes()...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(frame, snapshotCRC))

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".kregret-dataset-*")
	if err != nil {
		return fmt.Errorf("kregret: saving dataset snapshot: %w", err)
	}
	if _, err := tmp.Write(frame); err != nil {
		err = fmt.Errorf("kregret: saving dataset snapshot: %w", err)
		return errors.Join(err, tmp.Close(), os.Remove(tmp.Name()))
	}
	if err := syncTemp(tmp); err != nil {
		err = fmt.Errorf("kregret: syncing dataset snapshot: %w", err)
		return errors.Join(err, tmp.Close(), os.Remove(tmp.Name()))
	}
	if err := tmp.Close(); err != nil {
		err = fmt.Errorf("kregret: closing dataset snapshot: %w", err)
		return errors.Join(err, os.Remove(tmp.Name()))
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		err = fmt.Errorf("kregret: publishing dataset snapshot: %w", err)
		return errors.Join(err, os.Remove(tmp.Name()))
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("kregret: syncing snapshot directory: %w", err)
	}
	if fault.Enabled && fault.Active(fault.SitePersistTornWrite) {
		tearFile(path)
	}
	return nil
}

// loadDatasetFile reads a base snapshot back: the points and the
// sequence watermark. Any framing, integrity or structural violation
// is ErrCorruptSnapshot; a missing file is the underlying fs error.
func loadDatasetFile(path string) ([]geom.Vector, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("kregret: loading dataset snapshot: %w", err)
	}
	if len(data) < snapshotHdrLen+4 {
		return nil, 0, fmt.Errorf("%w: %d bytes is shorter than the frame", ErrCorruptSnapshot, len(data))
	}
	if string(data[:4]) != dsSnapMagic {
		return nil, 0, fmt.Errorf("%w: bad magic %q", ErrCorruptSnapshot, data[:4])
	}
	if v := data[4]; v != dsSnapVersion {
		return nil, 0, fmt.Errorf("kregret: dataset snapshot format v%d, want v%d", v, dsSnapVersion)
	}
	n := binary.LittleEndian.Uint64(data[5:])
	if n > maxSnapshotPayload || snapshotHdrLen+n+4 != uint64(len(data)) {
		return nil, 0, fmt.Errorf("%w: payload length %d does not match file size %d", ErrCorruptSnapshot, n, len(data))
	}
	body := data[:len(data)-4]
	stored := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc := crc32.Checksum(body, snapshotCRC); stored != crc {
		return nil, 0, fmt.Errorf("%w: CRC mismatch (stored %08x, computed %08x)", ErrCorruptSnapshot, stored, crc)
	}
	var wire datasetWire
	if err := gob.NewDecoder(bytes.NewReader(body[snapshotHdrLen:])).Decode(&wire); err != nil {
		return nil, 0, fmt.Errorf("%w: decoding payload: %v", ErrCorruptSnapshot, err)
	}
	if wire.Version != datasetWireVersion {
		return nil, 0, fmt.Errorf("kregret: dataset snapshot payload v%d, want v%d", wire.Version, datasetWireVersion)
	}
	if wire.N < 1 || wire.Dim < 1 || len(wire.Coords) != wire.N*wire.Dim {
		return nil, 0, fmt.Errorf("%w: %d coordinates for %d×%d points", ErrCorruptSnapshot, len(wire.Coords), wire.N, wire.Dim)
	}
	pts := make([]geom.Vector, wire.N)
	for i := range pts {
		pts[i] = geom.Vector(wire.Coords[i*wire.Dim : (i+1)*wire.Dim : (i+1)*wire.Dim])
	}
	if err := validateVectors(pts); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrCorruptSnapshot, err)
	}
	return pts, wire.Seq, nil
}
