package kregret

import (
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"repro/internal/core"
)

// ErrIndexMismatch is returned by LoadIndex when the serialized index
// was built from a different dataset than the one supplied.
var ErrIndexMismatch = errors.New("kregret: index does not match dataset")

// indexWire is the gob envelope around a stored list: the happy
// candidate mapping plus a checksum binding the index to the dataset
// it was built from.
type indexWire struct {
	Version  int
	Checksum uint64
	N, Dim   int
	Cand     []int
}

const indexVersion = 1

// checksum fingerprints the (normalized) dataset contents.
func (d *Dataset) checksum() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range d.pts {
		for _, x := range p {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
			//kregret:allow errdrop: hash.Hash.Write never returns an error
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

// Save serializes the index so later processes can skip the expensive
// StoredList preprocessing. The dataset itself is not stored; load
// with LoadIndex against an identically-constructed Dataset.
func (x *Index) Save(w io.Writer, d *Dataset) error {
	if err := gob.NewEncoder(w).Encode(indexWire{
		Version:  indexVersion,
		Checksum: d.checksum(),
		N:        d.Len(),
		Dim:      d.Dim(),
		Cand:     x.cand,
	}); err != nil {
		return fmt.Errorf("kregret: saving index: %w", err)
	}
	if err := x.list.Save(w); err != nil {
		return fmt.Errorf("kregret: saving index list: %w", err)
	}
	return nil
}

// LoadIndex restores an index saved with Index.Save, verifying that
// it was built from exactly the given dataset (content checksum).
func LoadIndex(r io.Reader, d *Dataset) (*Index, error) {
	var wire indexWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("kregret: loading index: %w", err)
	}
	if wire.Version != indexVersion {
		return nil, fmt.Errorf("kregret: index version %d, want %d", wire.Version, indexVersion)
	}
	if wire.N != d.Len() || wire.Dim != d.Dim() || wire.Checksum != d.checksum() {
		return nil, ErrIndexMismatch
	}
	for _, c := range wire.Cand {
		if c < 0 || c >= d.Len() {
			return nil, fmt.Errorf("kregret: index candidate %d out of range", c)
		}
	}
	list, err := core.LoadStoredList(r)
	if err != nil {
		return nil, fmt.Errorf("kregret: loading index: %w", err)
	}
	return &Index{list: list, cand: wire.Cand}, nil
}
