package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	kregret "repro"
	"repro/internal/dataset"
)

func writeTestCSV(t *testing.T) string {
	t.Helper()
	pts, err := dataset.AntiCorrelated(300, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/pts.csv"
	if err := dataset.WriteCSVFile(path, pts, []string{"a", "b", "c"}); err != nil {
		t.Fatal(err)
	}
	return path
}

func queryCfg(in string) runConfig {
	// del mirrors the -delete flag default: negative = no delete.
	return runConfig{in: in, k: 5, algo: "geogreedy", cand: "happy", del: -1}
}

// capture runs f with stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := f()
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	var sb strings.Builder
	buf := make([]byte, 8192)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

func TestRunQuery(t *testing.T) {
	path := writeTestCSV(t)
	for _, algo := range []string{"geogreedy", "greedy"} {
		cfg := queryCfg(path)
		cfg.algo = algo
		out := capture(t, func() error { return run(cfg) })
		if !strings.Contains(out, "maximum regret ratio") {
			t.Fatalf("%s: missing regret line in %q", algo, out)
		}
	}
	for _, cand := range []string{"skyline", "all"} {
		cfg := queryCfg(path)
		cfg.cand = cand
		out := capture(t, func() error { return run(cfg) })
		if !strings.Contains(out, "selected") {
			t.Fatalf("%s: missing selection in %q", cand, out)
		}
	}
}

func TestRunStats(t *testing.T) {
	path := writeTestCSV(t)
	cfg := queryCfg(path)
	cfg.stats = true
	out := capture(t, func() error { return run(cfg) })
	for _, want := range []string{"skyline points:", "happy points:", "hull points:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q: %q", want, out)
		}
	}
}

// -concurrency routes the query through the serving engine and
// reports the admission counters on exit.
func TestRunConcurrency(t *testing.T) {
	path := writeTestCSV(t)
	cfg := queryCfg(path)
	cfg.concurrency = 2
	out := capture(t, func() error { return run(cfg) })
	if !strings.Contains(out, "maximum regret ratio") {
		t.Fatalf("engine run missing answer: %q", out)
	}
	if !strings.Contains(out, "engine: admitted=1 completed=1") {
		t.Fatalf("engine run missing stats report: %q", out)
	}
}

// -save-index builds and persists the snapshot; -load-index serves
// from it; a corrupted snapshot is rebuilt, not fatal.
func TestRunSaveAndLoadIndex(t *testing.T) {
	path := writeTestCSV(t)
	snap := filepath.Join(t.TempDir(), "idx.snap")

	cfg := queryCfg(path)
	cfg.saveIndex = snap
	out := capture(t, func() error { return run(cfg) })
	if !strings.Contains(out, "maximum regret ratio") {
		t.Fatalf("save-index run missing answer: %q", out)
	}
	if !strings.Contains(out, "has been rebuilt") {
		t.Fatalf("first save-index run should report a build: %q", out)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}

	cfg = queryCfg(path)
	cfg.loadIndex = snap
	out = capture(t, func() error { return run(cfg) })
	if !strings.Contains(out, "maximum regret ratio") {
		t.Fatalf("load-index run missing answer: %q", out)
	}
	if strings.Contains(out, "has been rebuilt") {
		t.Fatalf("valid snapshot reported as rebuilt: %q", out)
	}

	// Corrupt the snapshot: the engine must rebuild and answer anyway.
	info, err := os.Stat(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(snap, info.Size()/2); err != nil {
		t.Fatal(err)
	}
	out = capture(t, func() error { return run(cfg) })
	if !strings.Contains(out, "maximum regret ratio") {
		t.Fatalf("corrupt-snapshot run missing answer: %q", out)
	}
	if !strings.Contains(out, "has been rebuilt") {
		t.Fatalf("corrupt snapshot not reported as rebuilt: %q", out)
	}
}

// -wal makes the dataset durably mutable: the first run builds the
// (snapshot, log) pair from the CSV, later runs recover from it and
// replay -insert/-delete history instead of reloading the CSV.
func TestRunWAL(t *testing.T) {
	path := writeTestCSV(t)
	wal := filepath.Join(t.TempDir(), "pts.wal")

	cfg := queryCfg(path)
	cfg.wal = wal
	out := capture(t, func() error { return run(cfg) })
	if !strings.Contains(out, "wal: new durable dataset") {
		t.Fatalf("first -wal run should build the pair: %q", out)
	}

	cfg = queryCfg(path)
	cfg.wal = wal
	cfg.insert = "0.5, 0.5, 0.5"
	cfg.compact = true
	out = capture(t, func() error { return run(cfg) })
	if !strings.Contains(out, "wal: recovered 300 tuples at seq 0") {
		t.Fatalf("second -wal run should recover the base: %q", out)
	}
	if !strings.Contains(out, "wal: inserted row 300 at seq 1") {
		t.Fatalf("-insert not applied: %q", out)
	}
	if !strings.Contains(out, "wal: compacted log into base snapshot at seq 1") {
		t.Fatalf("-compact not applied: %q", out)
	}

	cfg = queryCfg(path)
	cfg.wal = wal
	cfg.del = 300
	out = capture(t, func() error { return run(cfg) })
	if !strings.Contains(out, "wal: recovered 301 tuples at seq 1") {
		t.Fatalf("third -wal run should recover the insert: %q", out)
	}
	if !strings.Contains(out, "wal: deleted row 300 at seq 2") {
		t.Fatalf("-delete not applied: %q", out)
	}

	cfg = queryCfg(path)
	cfg.wal = wal
	out = capture(t, func() error { return run(cfg) })
	if !strings.Contains(out, "wal: recovered 300 tuples at seq 2") {
		t.Fatalf("final -wal run should recover the full history: %q", out)
	}

	// Mutation flags demand durability.
	cfg = queryCfg(path)
	cfg.insert = "0.5,0.5,0.5"
	if err := run(cfg); err == nil || !strings.Contains(err.Error(), "require -wal") {
		t.Fatalf("-insert without -wal: want guard error, got %v", err)
	}
	cfg = queryCfg(path)
	cfg.wal = wal
	cfg.insert = "0.5,bogus"
	if err := run(cfg); err == nil || !strings.Contains(err.Error(), "-insert") {
		t.Fatalf("malformed -insert: want parse error, got %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTestCSV(t)
	missing := queryCfg(path + ".missing")
	if err := run(missing); err == nil {
		t.Fatal("missing file accepted")
	}
	badAlgo := queryCfg(path)
	badAlgo.algo = "bogus"
	if err := run(badAlgo); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
	badCand := queryCfg(path)
	badCand.cand = "bogus"
	if err := run(badCand); err == nil {
		t.Fatal("bogus candidate set accepted")
	}
	// A timeout too short for any work must surface the deadline as an
	// error, not an answer. The direct path reports the deadline; the
	// engine sheds the doomed request at admission instead of wasting
	// a worker on it.
	short := queryCfg(path)
	short.timeout = time.Nanosecond
	if err := run(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("1ns timeout: want context.DeadlineExceeded, got %v", err)
	}
	short.concurrency = 2
	if err := run(short); !errors.Is(err, kregret.ErrShed) {
		t.Fatalf("1ns engine timeout: want ErrShed, got %v", err)
	}
}
