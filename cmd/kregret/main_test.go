package main

import (
	"context"
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
)

func writeTestCSV(t *testing.T) string {
	t.Helper()
	pts, err := dataset.AntiCorrelated(300, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/pts.csv"
	if err := dataset.WriteCSVFile(path, pts, []string{"a", "b", "c"}); err != nil {
		t.Fatal(err)
	}
	return path
}

// capture runs f with stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := f()
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	var sb strings.Builder
	buf := make([]byte, 8192)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

func TestRunQuery(t *testing.T) {
	path := writeTestCSV(t)
	for _, algo := range []string{"geogreedy", "greedy"} {
		out := capture(t, func() error { return run(path, 5, algo, "happy", false, 0) })
		if !strings.Contains(out, "maximum regret ratio") {
			t.Fatalf("%s: missing regret line in %q", algo, out)
		}
	}
	for _, cand := range []string{"skyline", "all"} {
		out := capture(t, func() error { return run(path, 5, "geogreedy", cand, false, 0) })
		if !strings.Contains(out, "selected") {
			t.Fatalf("%s: missing selection in %q", cand, out)
		}
	}
}

func TestRunStats(t *testing.T) {
	path := writeTestCSV(t)
	out := capture(t, func() error { return run(path, 5, "geogreedy", "happy", true, 0) })
	for _, want := range []string{"skyline points:", "happy points:", "hull points:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q: %q", want, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTestCSV(t)
	if err := run(path+".missing", 5, "geogreedy", "happy", false, 0); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run(path, 5, "bogus", "happy", false, 0); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
	if err := run(path, 5, "geogreedy", "bogus", false, 0); err == nil {
		t.Fatal("bogus candidate set accepted")
	}
	// A timeout too short for any work must surface the deadline as an
	// error, not an answer.
	if err := run(path, 5, "geogreedy", "happy", false, time.Nanosecond); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("1ns timeout: want context.DeadlineExceeded, got %v", err)
	}
}
