// Command kregret answers k-regret queries over CSV data from the
// command line.
//
// Usage:
//
//	kregret -k 10 -in cars.csv                  # GeoGreedy over happy points
//	kregret -k 10 -in cars.csv -algo greedy     # the LP baseline
//	kregret -k 10 -in cars.csv -cand skyline    # prior work's candidates
//	kregret -in cars.csv -stats                 # candidate-set statistics
//	kregret -k 10 -in cars.csv -timeout 30s     # bound the query wall-clock
//	kregret -k 10 -in cars.csv -save-index i.snap   # persist the StoredList
//	kregret -k 10 -in cars.csv -load-index i.snap   # serve from the snapshot
//	kregret -k 10 -in cars.csv -concurrency 4       # serve through the engine
//	kregret -k 10 -in cars.csv -concurrency 4 \
//	    -retries 2 -watchdog 50ms                   # + self-healing
//	kregret -k 10 -in cars.csv -wal cars.wal        # durable mutable dataset
//	kregret -k 10 -in cars.csv -wal cars.wal \
//	    -insert 0.62,0.48 -compact                  # durable insert, then compact
//
// The -wal flag makes the dataset durably mutable: the first run
// builds it from the CSV, writes a base snapshot next to the log
// (override with -wal-snap), and appends every -insert/-delete to the
// write-ahead log before applying it. Later runs find the snapshot
// and recover the full mutation history from the (snapshot, log) pair
// — the CSV is then only a fallback for a missing pair, never
// reloaded over live history. A run killed at any byte of a log write
// recovers exactly the acknowledged mutations. -compact folds the log
// into a fresh snapshot when it grows.
//
// The -save-index/-load-index/-concurrency flags route the query
// through kregret.Engine: admission control, per-query budgets,
// circuit breaking, and crash-safe snapshot files (a corrupt or
// mismatched snapshot is rebuilt, not fatal). -retries grants each
// query a budget of transparent re-attempts after transient numerical
// failures (exponential backoff from -retry-backoff, never past the
// deadline); -watchdog scans in-flight queries at the given interval
// and quarantines the breaker key of any found running past its
// deadline. Engine counters are reported on exit.
//
// Input: one tuple per CSV record, numeric fields only, optional
// header row; every attribute is treated as larger-is-better (negate
// columns where smaller is better before loading). Output: the
// selected row indices (0-based, header excluded), their values and
// the answer's maximum regret ratio.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	kregret "repro"
	"repro/internal/dataset"
)

// runConfig carries the parsed flags.
type runConfig struct {
	in           string
	k            int
	algo, cand   string
	stats        bool
	timeout      time.Duration
	concurrency  int
	saveIndex    string
	loadIndex    string
	retries      int
	retryBackoff time.Duration
	watchdog     time.Duration
	wal          string
	walSnap      string
	insert       string
	del          int
	compact      bool
}

func main() {
	var cfg runConfig
	flag.StringVar(&cfg.in, "in", "", "input CSV file (required)")
	flag.IntVar(&cfg.k, "k", 10, "maximum number of tuples to return")
	flag.StringVar(&cfg.algo, "algo", "geogreedy", "algorithm: geogreedy or greedy")
	flag.StringVar(&cfg.cand, "cand", "happy", "candidate set: happy, skyline or all")
	flag.BoolVar(&cfg.stats, "stats", false, "print candidate-set statistics instead of answering a query")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "abort the query after this long (e.g. 30s; 0 = no limit)")
	flag.IntVar(&cfg.concurrency, "concurrency", 0, "serve through the engine with this many workers (0 = direct query)")
	flag.StringVar(&cfg.saveIndex, "save-index", "", "build the StoredList index and save it to this file (atomic write)")
	flag.StringVar(&cfg.loadIndex, "load-index", "", "serve from this index snapshot (rebuilt if missing or corrupt)")
	flag.IntVar(&cfg.retries, "retries", 0, "engine mode: transparent retries per query after a transient numerical failure")
	flag.DurationVar(&cfg.retryBackoff, "retry-backoff", time.Millisecond, "engine mode: base backoff between retries (doubles per attempt, jittered)")
	flag.DurationVar(&cfg.watchdog, "watchdog", 0, "engine mode: scan interval for stuck in-flight queries (0 = no watchdog)")
	flag.StringVar(&cfg.wal, "wal", "", "write-ahead log path: makes the dataset durably mutable (recovered from <wal>+snapshot when they exist)")
	flag.StringVar(&cfg.walSnap, "wal-snap", "", "base snapshot path for -wal (default <wal>.snap)")
	flag.StringVar(&cfg.insert, "insert", "", "durably insert this point (comma-separated normalized coordinates; requires -wal)")
	flag.IntVar(&cfg.del, "delete", -1, "durably delete the tuple at this index (requires -wal)")
	flag.BoolVar(&cfg.compact, "compact", false, "fold the WAL into a fresh base snapshot after applying mutations (requires -wal)")
	flag.Parse()
	if cfg.in == "" {
		fmt.Fprintln(os.Stderr, "kregret: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "kregret: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg runConfig) error {
	ds, err := openDataset(cfg)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := ds.Close(); cerr != nil {
			fmt.Fprintf(os.Stderr, "kregret: closing WAL: %v\n", cerr)
		}
	}()
	if err := applyMutations(cfg, ds); err != nil {
		return err
	}

	if cfg.stats {
		sky, err := ds.Skyline()
		if err != nil {
			return err
		}
		hp, err := ds.HappyPoints()
		if err != nil {
			return err
		}
		conv, err := ds.ConvexPoints()
		if err != nil {
			return err
		}
		fmt.Printf("tuples:         %d\n", ds.Len())
		fmt.Printf("attributes:     %d\n", ds.Dim())
		fmt.Printf("skyline points: %d\n", len(sky))
		fmt.Printf("happy points:   %d\n", len(hp))
		fmt.Printf("hull points:    %d\n", len(conv))
		return nil
	}

	var opts []kregret.Option
	switch cfg.algo {
	case "geogreedy":
		opts = append(opts, kregret.WithAlgorithm(kregret.AlgoGeoGreedy))
	case "greedy":
		opts = append(opts, kregret.WithAlgorithm(kregret.AlgoGreedy))
	default:
		return fmt.Errorf("unknown algorithm %q", cfg.algo)
	}
	switch cfg.cand {
	case "happy":
		opts = append(opts, kregret.WithCandidates(kregret.CandidatesHappy))
	case "skyline":
		opts = append(opts, kregret.WithCandidates(kregret.CandidatesSkyline))
	case "all":
		opts = append(opts, kregret.WithCandidates(kregret.CandidatesAll))
	default:
		return fmt.Errorf("unknown candidate set %q", cfg.cand)
	}

	ctx := context.Background()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}

	var ans *kregret.Answer
	if cfg.concurrency > 0 || cfg.saveIndex != "" || cfg.loadIndex != "" {
		ans, err = runEngine(ctx, cfg, ds, opts)
	} else {
		ans, err = ds.QueryContext(ctx, cfg.k, opts...)
	}
	if err != nil {
		return err
	}
	return printAnswer(ds, ans)
}

// openDataset builds the dataset the run serves from. Without -wal
// that is a plain in-memory load of the CSV. With -wal, an existing
// (snapshot, log) pair wins: it carries durable history the CSV knows
// nothing about, so the CSV is only consulted when the pair does not
// exist yet (the first run, which also writes the base snapshot).
func openDataset(cfg runConfig) (*kregret.Dataset, error) {
	if cfg.wal == "" {
		if cfg.insert != "" || cfg.del >= 0 || cfg.compact {
			return nil, fmt.Errorf("-insert/-delete/-compact require -wal")
		}
		return loadCSVDataset(cfg)
	}
	walSnap := cfg.walSnap
	if walSnap == "" {
		walSnap = cfg.wal + ".snap"
	}
	if _, err := os.Stat(walSnap); err == nil {
		ds, err := kregret.Recover(walSnap, cfg.wal)
		if err != nil {
			return nil, fmt.Errorf("recovering durable dataset: %w", err)
		}
		fmt.Printf("wal: recovered %d tuples at seq %d from %s\n", ds.Len(), ds.Seq(), walSnap)
		return ds, nil
	}
	ds, err := loadCSVDataset(cfg, kregret.WithWAL(cfg.wal, walSnap))
	if err != nil {
		return nil, err
	}
	fmt.Printf("wal: new durable dataset, base snapshot %s\n", walSnap)
	return ds, nil
}

func loadCSVDataset(cfg runConfig, opts ...kregret.Option) (*kregret.Dataset, error) {
	raw, err := dataset.ReadCSVFile(cfg.in)
	if err != nil {
		return nil, err
	}
	points := make([]kregret.Point, len(raw))
	for i, p := range raw {
		points[i] = kregret.Point(p)
	}
	return kregret.NewDataset(points, opts...)
}

// applyMutations performs the -insert/-delete/-compact flags in that
// order, each one durably logged before it is acknowledged.
func applyMutations(cfg runConfig, ds *kregret.Dataset) error {
	if cfg.insert == "" && cfg.del < 0 && !cfg.compact {
		return nil
	}
	if cfg.insert != "" {
		pt, err := parsePoint(cfg.insert)
		if err != nil {
			return fmt.Errorf("-insert: %w", err)
		}
		idx, err := ds.Insert(pt)
		if err != nil {
			return err
		}
		fmt.Printf("wal: inserted row %d at seq %d\n", idx, ds.Seq())
	}
	if cfg.del >= 0 {
		if err := ds.Delete(cfg.del); err != nil {
			return err
		}
		fmt.Printf("wal: deleted row %d at seq %d\n", cfg.del, ds.Seq())
	}
	if cfg.compact {
		if err := ds.Compact(); err != nil {
			return err
		}
		fmt.Printf("wal: compacted log into base snapshot at seq %d\n", ds.Seq())
	}
	return nil
}

// parsePoint parses "-insert 0.62,0.48" into a Point. Coordinates are
// taken verbatim in the dataset's normalized space, as Insert
// documents.
func parsePoint(s string) (kregret.Point, error) {
	fields := strings.Split(s, ",")
	pt := make(kregret.Point, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("coordinate %d: %w", i, err)
		}
		pt[i] = v
	}
	return pt, nil
}

// runEngine answers the query through the serving engine, handling
// the snapshot flags and reporting the engine counters on exit.
func runEngine(ctx context.Context, cfg runConfig, ds *kregret.Dataset, opts []kregret.Option) (*kregret.Answer, error) {
	engOpts := []kregret.EngineOption{kregret.WithWorkers(cfg.concurrency)}
	// -load-index serves from (and repairs) an existing snapshot;
	// -save-index alone builds one at the target path. Either way the
	// engine owns the snapshot lifecycle, atomically.
	snapshot := cfg.loadIndex
	if snapshot == "" {
		snapshot = cfg.saveIndex
	}
	if snapshot != "" {
		engOpts = append(engOpts, kregret.WithSnapshot(snapshot))
	}
	if cfg.retries > 0 {
		engOpts = append(engOpts, kregret.WithRetryBudget(cfg.retries, cfg.retryBackoff))
	}
	if cfg.watchdog > 0 {
		engOpts = append(engOpts, kregret.WithWatchdog(cfg.watchdog))
	}
	eng, err := kregret.NewEngine(ds, engOpts...)
	if err != nil {
		return nil, err
	}
	defer func() {
		if err := eng.Shutdown(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "kregret: engine shutdown: %v\n", err)
		}
		printEngineStats(eng.Stats())
	}()
	if cfg.saveIndex != "" && cfg.saveIndex != snapshot {
		// Loaded from one path, saving to another.
		if err := eng.Index().SaveFile(cfg.saveIndex, ds); err != nil {
			return nil, err
		}
	}
	return eng.Query(ctx, cfg.k, opts...)
}

func printEngineStats(s kregret.EngineStats) {
	fmt.Printf("engine: admitted=%d completed=%d shed=%d (overload=%d, deadline=%d) canceled=%d degraded=%d breaker-short-circuits=%d\n",
		s.Admitted, s.Completed, s.ShedOverload+s.ShedDeadline, s.ShedOverload, s.ShedDeadline,
		s.Canceled, s.Degraded, s.BreakerShortCircuits)
	if s.Retries > 0 || s.WatchdogStuck > 0 {
		fmt.Printf("engine: retries=%d (rescued=%d) watchdog-stuck=%d\n",
			s.Retries, s.RetrySuccesses, s.WatchdogStuck)
	}
	if s.DrainDuration > 0 {
		fmt.Printf("engine: drain took %v\n", s.DrainDuration)
	}
	if s.SnapshotRebuilt {
		fmt.Println("engine: index snapshot was missing, corrupt or mismatched and has been rebuilt")
	}
}

func printAnswer(ds *kregret.Dataset, ans *kregret.Answer) error {
	fmt.Printf("selected %d of %d tuples, maximum regret ratio %.4f\n",
		len(ans.Indices), ds.Len(), ans.MRR)
	if ans.Degraded {
		fmt.Printf("note: answer is degraded (%s answered after a numerical failure: %s)\n",
			ans.Algorithm, ans.FallbackReason)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "row\tnormalized values")
	for _, idx := range ans.Indices {
		fmt.Fprintf(w, "%d\t%v\n", idx, ds.Point(idx))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if ans.MRR > 0 {
		weights, witness, err := ds.WorstUtility(ans.Indices)
		if err == nil && witness >= 0 {
			fmt.Printf("worst-case utility weights: %v (a user with these weights would prefer row %d)\n",
				weights, witness)
		}
	}
	return nil
}
