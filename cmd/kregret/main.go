// Command kregret answers k-regret queries over CSV data from the
// command line.
//
// Usage:
//
//	kregret -k 10 -in cars.csv                  # GeoGreedy over happy points
//	kregret -k 10 -in cars.csv -algo greedy     # the LP baseline
//	kregret -k 10 -in cars.csv -cand skyline    # prior work's candidates
//	kregret -in cars.csv -stats                 # candidate-set statistics
//	kregret -k 10 -in cars.csv -timeout 30s     # bound the query wall-clock
//
// Input: one tuple per CSV record, numeric fields only, optional
// header row; every attribute is treated as larger-is-better (negate
// columns where smaller is better before loading). Output: the
// selected row indices (0-based, header excluded), their values and
// the answer's maximum regret ratio.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	kregret "repro"
	"repro/internal/dataset"
)

func main() {
	var (
		in      = flag.String("in", "", "input CSV file (required)")
		k       = flag.Int("k", 10, "maximum number of tuples to return")
		algo    = flag.String("algo", "geogreedy", "algorithm: geogreedy or greedy")
		cand    = flag.String("cand", "happy", "candidate set: happy, skyline or all")
		stats   = flag.Bool("stats", false, "print candidate-set statistics instead of answering a query")
		timeout = flag.Duration("timeout", 0, "abort the query after this long (e.g. 30s; 0 = no limit)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "kregret: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *k, *algo, *cand, *stats, *timeout); err != nil {
		fmt.Fprintf(os.Stderr, "kregret: %v\n", err)
		os.Exit(1)
	}
}

func run(in string, k int, algo, cand string, stats bool, timeout time.Duration) error {
	raw, err := dataset.ReadCSVFile(in)
	if err != nil {
		return err
	}
	points := make([]kregret.Point, len(raw))
	for i, p := range raw {
		points[i] = kregret.Point(p)
	}
	ds, err := kregret.NewDataset(points)
	if err != nil {
		return err
	}

	if stats {
		sky, err := ds.Skyline()
		if err != nil {
			return err
		}
		hp, err := ds.HappyPoints()
		if err != nil {
			return err
		}
		conv, err := ds.ConvexPoints()
		if err != nil {
			return err
		}
		fmt.Printf("tuples:         %d\n", ds.Len())
		fmt.Printf("attributes:     %d\n", ds.Dim())
		fmt.Printf("skyline points: %d\n", len(sky))
		fmt.Printf("happy points:   %d\n", len(hp))
		fmt.Printf("hull points:    %d\n", len(conv))
		return nil
	}

	var opts []kregret.Option
	switch algo {
	case "geogreedy":
		opts = append(opts, kregret.WithAlgorithm(kregret.AlgoGeoGreedy))
	case "greedy":
		opts = append(opts, kregret.WithAlgorithm(kregret.AlgoGreedy))
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
	switch cand {
	case "happy":
		opts = append(opts, kregret.WithCandidates(kregret.CandidatesHappy))
	case "skyline":
		opts = append(opts, kregret.WithCandidates(kregret.CandidatesSkyline))
	case "all":
		opts = append(opts, kregret.WithCandidates(kregret.CandidatesAll))
	default:
		return fmt.Errorf("unknown candidate set %q", cand)
	}

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	ans, err := ds.QueryContext(ctx, k, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("selected %d of %d tuples, maximum regret ratio %.4f\n",
		len(ans.Indices), ds.Len(), ans.MRR)
	if ans.Degraded {
		fmt.Printf("note: answer is degraded (%s answered after a numerical failure: %s)\n",
			ans.Algorithm, ans.FallbackReason)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "row\tnormalized values")
	for _, idx := range ans.Indices {
		fmt.Fprintf(w, "%d\t%v\n", idx, ds.Point(idx))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if ans.MRR > 0 {
		weights, witness, err := ds.WorstUtility(ans.Indices)
		if err == nil && witness >= 0 {
			fmt.Printf("worst-case utility weights: %v (a user with these weights would prefer row %d)\n",
				weights, witness)
		}
	}
	return nil
}
