// Command datagen writes the repository's synthetic datasets to CSV:
// the Börzsönyi-style generators used by the paper's Section V-C and
// the four real-dataset stand-ins of Table III.
//
// Usage:
//
//	datagen -kind anticorrelated -n 10000 -d 6 -seed 1 -out anti.csv
//	datagen -kind nba -out nba.csv             # full-size stand-in
//	datagen -kind household -n 50000 -out h.csv # scaled stand-in
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/geom"
)

func main() {
	var (
		kind = flag.String("kind", "anticorrelated", "independent, correlated, anticorrelated, clustered, or a stand-in: household, nba, color, stocks")
		n    = flag.Int("n", 10000, "number of tuples (stand-ins: 0 = full size)")
		d    = flag.Int("d", 6, "dimensionality (ignored for stand-ins)")
		c    = flag.Int("clusters", 5, "cluster count (clustered only)")
		seed = flag.Int64("seed", 1, "random seed (ignored for stand-ins, which are fixed)")
		out  = flag.String("out", "", "output CSV path (default stdout)")
	)
	flag.Parse()
	if err := run(*kind, *n, *d, *c, *seed, *out); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}

func run(kind string, n, d, c int, seed int64, out string) error {
	var pts []geom.Vector
	var err error
	switch kind {
	case "independent":
		pts, err = dataset.Independent(n, d, seed)
	case "correlated":
		pts, err = dataset.Correlated(n, d, seed)
	case "anticorrelated":
		pts, err = dataset.AntiCorrelated(n, d, seed)
	case "clustered":
		pts, err = dataset.Clustered(n, d, c, seed)
	case "household", "nba", "color", "stocks":
		pts, err = dataset.RealScaled(dataset.RealName(kind), n)
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	if err != nil {
		return err
	}
	if out == "" {
		return dataset.WriteCSV(os.Stdout, pts, nil)
	}
	if err := dataset.WriteCSVFile(out, pts, nil); err != nil {
		return err
	}
	s, err := dataset.Summarize(pts)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d tuples × %d attributes to %s (median coordinate sum %.3f)\n",
		s.N, s.D, out, s.MedianSum)
	return nil
}
