package main

import (
	"os"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestRunGeneratorsToFile(t *testing.T) {
	dir := t.TempDir()
	for _, kind := range []string{"independent", "correlated", "anticorrelated", "clustered"} {
		out := dir + "/" + kind + ".csv"
		if err := run(kind, 200, 3, 4, 7, out); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		pts, err := dataset.ReadCSVFile(out)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(pts) != 200 || len(pts[0]) != 3 {
			t.Fatalf("%s: wrong shape %dx%d", kind, len(pts), len(pts[0]))
		}
	}
}

func TestRunStandIn(t *testing.T) {
	out := t.TempDir() + "/nba.csv"
	if err := run("nba", 500, 0, 0, 0, out); err != nil {
		t.Fatal(err)
	}
	pts, err := dataset.ReadCSVFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 500 || len(pts[0]) != 5 {
		t.Fatalf("wrong shape %dx%d", len(pts), len(pts[0]))
	}
}

func TestRunUnknownKind(t *testing.T) {
	if err := run("nope", 10, 2, 2, 1, ""); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestRunStdout(t *testing.T) {
	// Redirect stdout to capture the CSV.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run("independent", 5, 2, 0, 1, "")
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	buf := make([]byte, 4096)
	n, _ := r.Read(buf)
	lines := strings.Count(strings.TrimSpace(string(buf[:n])), "\n") + 1
	if lines != 5 {
		t.Fatalf("%d CSV lines, want 5", lines)
	}
}
