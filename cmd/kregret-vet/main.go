// Command kregret-vet runs this repository's domain-specific static
// analyzers (internal/analysis) over the module. The suite covers the
// hazard classes that break the floating-point geometry invariants of
// Peng & Wong (ICDE 2014) and the concurrency contracts of the
// serving layers built on top of them:
//
//   - floatcmp:    raw ==/!= on floats outside the epsilon helpers
//   - slicealias:  caller slices stored or returned without copying,
//     and writes through PointMatrix.Row views
//   - naninf:      unguarded math.Sqrt/Log/... calls and divisions
//   - errdrop:     silently discarded error returns
//   - ctxflow:     context must flow caller → callee, never minted
//     mid-stack or stored in struct fields
//   - poolscope:   sync.Pool borrows returned on every path, never
//     used after Put, never aliasing a Row view
//   - atomicguard: atomic fields never plain-accessed, mu-guarded
//     fields only touched under the lock
//   - wireguard:   gob wire structs registered in a wireManifest
//     pinning version and field layout
//   - sleepctx:    bare time.Sleep inside loops — retry/backoff and
//     polling waits must select on ctx.Done()
//
// Usage:
//
//	go run ./cmd/kregret-vet ./...
//	go run ./cmd/kregret-vet ./internal/... ./cmd/kregret-vet
//	go run ./cmd/kregret-vet -run floatcmp,errdrop ./...
//	go run ./cmd/kregret-vet -tags kregretdebug ./...
//	go run ./cmd/kregret-vet -list
//
// Package patterns are resolved against the module root (the -root
// directory): "./..." selects every package, "./x/..." a subtree,
// "./x" (or ".") a single package. A pattern that selects no packages
// is an error — a typo'd path must not report a silently-clean run.
// With no patterns the whole module is analyzed. Findings are printed
// as file:line:col: [analyzer] message and the exit status is 1 when
// any finding is reported, 2 on load failure or an empty pattern
// match, 0 when clean — so the command slots directly into CI.
//
// Intentional, reviewed exceptions are suppressed in source with a
// justification directive on or directly above the offending line:
//
//	n := math.Sqrt(s) //kregret:allow naninf: s is a sum of squares
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	var (
		root     = flag.String("root", ".", "module root directory to analyze")
		run      = flag.String("run", "", "comma-separated analyzers to run (default: all)")
		tags     = flag.String("tags", "", "comma-separated build tags to apply")
		list     = flag.Bool("list", false, "list analyzers and exit")
		verbose  = flag.Bool("v", false, "print per-package progress")
		exitCode = 0
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *run != "" {
		var err error
		analyzers, err = analysis.ByName(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	var buildTags []string
	if *tags != "" {
		buildTags = strings.Split(*tags, ",")
	}

	pkgs, err := analysis.LoadModule(*root, buildTags)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kregret-vet: %v\n", err)
		os.Exit(2)
	}
	if patterns := flag.Args(); len(patterns) > 0 {
		modPath, err := analysis.ModulePath(*root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kregret-vet: %v\n", err)
			os.Exit(2)
		}
		pkgs = selectPackages(pkgs, modPath, patterns)
		if len(pkgs) == 0 {
			fmt.Fprintf(os.Stderr, "kregret-vet: no packages match %s\n", strings.Join(patterns, " "))
			os.Exit(2)
		}
	}
	if *verbose {
		for _, p := range pkgs {
			fmt.Fprintf(os.Stderr, "kregret-vet: loaded %s (%d files)\n", p.Path, len(p.Files))
		}
	}

	findings := analysis.Run(pkgs, analyzers)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "kregret-vet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		exitCode = 1
	}
	os.Exit(exitCode)
}

// selectPackages filters the loaded module to the packages matched by
// any of the go-style patterns, resolved against the module root.
func selectPackages(pkgs []*analysis.Package, modPath string, patterns []string) []*analysis.Package {
	var out []*analysis.Package
	for _, p := range pkgs {
		for _, pat := range patterns {
			if matchPattern(modPath, pat, p.Path) {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

// matchPattern resolves one pattern against a package import path.
// "./x" forms are relative to the module root; bare forms ("repro/x",
// "x/...") are matched as import paths for familiarity.
func matchPattern(modPath, pattern, pkgPath string) bool {
	pattern = strings.TrimSuffix(pattern, "/")
	switch pattern {
	case ".", "./":
		return pkgPath == modPath
	case "./...", "...", "all":
		return true
	}
	full := pattern
	if rest, ok := strings.CutPrefix(pattern, "./"); ok {
		full = modPath + "/" + rest
	}
	if prefix, ok := strings.CutSuffix(full, "/..."); ok {
		return pkgPath == prefix || strings.HasPrefix(pkgPath, prefix+"/")
	}
	return pkgPath == full
}
