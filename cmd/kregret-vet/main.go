// Command kregret-vet runs this repository's domain-specific static
// analyzers (internal/analysis) over the whole module: floatcmp,
// slicealias, naninf and errdrop — the hazard classes that break the
// floating-point geometry invariants of Peng & Wong (ICDE 2014).
//
// Usage:
//
//	go run ./cmd/kregret-vet ./...
//	go run ./cmd/kregret-vet -run floatcmp,errdrop ./...
//	go run ./cmd/kregret-vet -tags kregretdebug ./...
//	go run ./cmd/kregret-vet -list
//
// The package pattern argument is accepted for familiarity but the
// tool always analyzes the entire module containing the working
// directory (or the -root directory). Findings are printed as
// file:line:col: [analyzer] message and the exit status is 1 when any
// finding is reported, 2 on load/type-check failure, 0 when clean —
// so the command slots directly into CI.
//
// Intentional, reviewed exceptions are suppressed in source with a
// justification directive on or directly above the offending line:
//
//	n := math.Sqrt(s) //kregret:allow naninf: s is a sum of squares
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	var (
		root     = flag.String("root", ".", "module root directory to analyze")
		run      = flag.String("run", "", "comma-separated analyzers to run (default: all)")
		tags     = flag.String("tags", "", "comma-separated build tags to apply")
		list     = flag.Bool("list", false, "list analyzers and exit")
		verbose  = flag.Bool("v", false, "print per-package progress")
		exitCode = 0
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *run != "" {
		var err error
		analyzers, err = analysis.ByName(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	var buildTags []string
	if *tags != "" {
		buildTags = strings.Split(*tags, ",")
	}

	pkgs, err := analysis.LoadModule(*root, buildTags)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kregret-vet: %v\n", err)
		os.Exit(2)
	}
	if *verbose {
		for _, p := range pkgs {
			fmt.Fprintf(os.Stderr, "kregret-vet: loaded %s (%d files)\n", p.Path, len(p.Files))
		}
	}

	findings := analysis.Run(pkgs, analyzers)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "kregret-vet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		exitCode = 1
	}
	os.Exit(exitCode)
}
