// Command probe is a development tool for calibrating the real-data
// stand-ins and sizing the geometric structures: it reports |D_sky|,
// |D_happy| and |D_conv| for a named stand-in or an explicit
// star/plate mixture, and can time StoredList preprocessing.
package main

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/happy"
	"repro/internal/skyline"
)

func report(pts []geom.Vector) {
	t0 := time.Now()
	sky, err := skyline.Of(pts)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  sky=%d (%v)\n", len(sky), time.Since(t0))
	t0 = time.Now()
	hp := happy.ComputeAmongSkyline(pts, sky)
	fmt.Printf("  happy=%d (%v)\n", len(hp), time.Since(t0))
	t0 = time.Now()
	conv, err := core.ConvexAmongHappy(pts, hp)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  conv=%d (%v)\n", len(conv), time.Since(t0))
}

func main() {
	switch os.Args[1] {
	case "tune":
		// probe tune n d stars jitter plate alphaLo alphaHi bulk
		geti := func(i int) int { v, _ := strconv.Atoi(os.Args[i]); return v }
		getf := func(i int) float64 { v, _ := strconv.ParseFloat(os.Args[i], 64); return v }
		n, d := geti(2), geti(3)
		cfg := dataset.StarPlateConfig{
			Stars: geti(4), Jitter: getf(5), Plate: geti(6), Bulk: getf(9),
		}
		for a := getf(7); a <= getf(8)+1e-9; a += 0.1 {
			cfg.Alpha = a
			pts, err := dataset.StarPlate(n, d, 12345, cfg)
			if err != nil {
				panic(err)
			}
			fmt.Printf("alpha=%.2f\n", a)
			report(pts)
		}
	case "stored":
		// probe stored <dataset> <n>: time StoredList preprocessing
		// over the happy points.
		n, _ := strconv.Atoi(os.Args[3])
		pts, err := dataset.RealScaled(dataset.RealName(os.Args[2]), n)
		if err != nil {
			panic(err)
		}
		sky, _ := skyline.Of(pts)
		hp := happy.ComputeAmongSkyline(pts, sky)
		cand, _ := core.Select(pts, hp)
		fmt.Printf("happy=%d\n", len(cand))
		t0 := time.Now()
		list, err := core.BuildStoredList(cand)
		if err != nil {
			panic(err)
		}
		fmt.Printf("stored list len=%d built in %v\n", list.Len(), time.Since(t0))
	default:
		n, _ := strconv.Atoi(os.Args[2])
		name := dataset.RealName(os.Args[1])
		t0 := time.Now()
		pts, err := dataset.RealScaled(name, n)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s n=%d gen=%v\n", name, len(pts), time.Since(t0))
		report(pts)
	}
}
