// Command experiments regenerates every table and figure of the
// paper's evaluation section (Section V) on the synthetic stand-ins
// and the Börzsönyi-style synthetic workloads.
//
// Usage:
//
//	experiments -exp all                 # everything (slow: full sizes)
//	experiments -exp table3              # candidate set sizes
//	experiments -exp fig7 -n 50000       # regret vs k, capped dataset size
//	experiments -exp fig12c              # synthetic sweep over k
//	experiments -exp headline -n 200000  # Greedy vs GeoGreedy vs StoredList
//
// Every experiment prints an aligned table to stdout; timings are
// wall-clock on the current machine. Absolute numbers will differ
// from the paper's 2014 workstation — the shapes (who wins, by what
// factor, and how curves move with k, n and d) are the reproduction
// target. See EXPERIMENTS.md for recorded paper-vs-measured results.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"text/tabwriter"
	"time"

	"repro/internal/exp"
)

func main() {
	var (
		expName  = flag.String("exp", "all", "experiment: all, table3, fig7, fig8, fig9, fig10, fig11, fig12a, fig12b, fig12c, fig12d, fig13 (alias of fig12*), headline")
		n        = flag.Int("n", 0, "cap the real datasets at n tuples (0 = full Table III sizes); for -exp headline, the dataset size (default 200000)")
		kmax     = flag.Int("kmax", 100, "largest k in the k sweeps")
		noGreedy = flag.Bool("nogreedy", false, "skip the (slow) Greedy baseline in timing experiments")
		csvDir   = flag.String("csv", "", "also write machine-readable CSV files into this directory")
	)
	flag.Parse()
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
	csvOut = *csvDir

	ks := sweepKs(*kmax)
	run := func(name string, f func() error) {
		fmt.Printf("=== %s ===\n", name)
		t0 := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s finished in %v)\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	all := *expName == "all"
	ran := false
	if all || *expName == "table3" {
		run("Table III: candidate set sizes", func() error { return table3(*n) })
		ran = true
	}
	if all || *expName == "fig7" {
		run("Figure 7: maximum regret ratio vs k (candidates = happy points)", func() error { return figMRR(*n, ks, true) })
		ran = true
	}
	if all || *expName == "fig8" {
		run("Figure 8: maximum regret ratio vs k (candidates = skyline)", func() error { return figMRR(*n, ks, false) })
		ran = true
	}
	if all || *expName == "fig9" || *expName == "fig11" {
		run("Figures 9+11: query and total time vs k (candidates = happy points)", func() error { return figTime(*n, ks, true) })
		ran = true
	}
	if all || *expName == "fig10" {
		run("Figure 10: query time vs k (candidates = skyline)", func() error { return figTime(*n, ks, false) })
		ran = true
	}
	if all || *expName == "fig12a" || *expName == "fig13" {
		run("Figures 12(a)/13(a): vary dimensionality d", func() error {
			rows, err := exp.SweepDim([]int{2, 3, 4, 5, 6, 7, 8, 9, 10}, exp.DefaultSynthN, exp.DefaultSynthK)
			printSynth(rows, "d", "fig12a_13a.csv")
			return err
		})
		ran = true
	}
	if all || *expName == "fig12b" || *expName == "fig13" {
		run("Figures 12(b)/13(b): vary dataset size n", func() error {
			rows, err := exp.SweepN([]int{2500, 5000, 10000, 20000, 40000}, exp.DefaultSynthD, exp.DefaultSynthK)
			printSynth(rows, "n", "fig12b_13b.csv")
			return err
		})
		ran = true
	}
	if all || *expName == "fig12c" || *expName == "fig13" {
		run("Figures 12(c)/13(c): vary k", func() error {
			rows, err := exp.SweepK(ks, exp.DefaultSynthN, exp.DefaultSynthD)
			printSynth(rows, "k", "fig12c_13c.csv")
			return err
		})
		ran = true
	}
	if all || *expName == "fig12d" || *expName == "fig13" {
		run("Figures 12(d)/13(d): very large k", func() error {
			rows, err := exp.SweepLargeK([]int{100, 200, 400, 800, 1600}, exp.DefaultSynthN, exp.DefaultSynthD)
			printSynth(rows, "k", "fig12d_13d.csv")
			return err
		})
		ran = true
	}
	if all || *expName == "headline" {
		run("Section V-C headline: large dataset, k = 100", func() error {
			size := *n
			if size <= 0 {
				size = 200000
			}
			return headline(size, !*noGreedy)
		})
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *expName)
		os.Exit(2)
	}
}

// csvOut is the -csv directory ("" disables CSV output).
var csvOut string

// writeCSV writes one CSV artifact when -csv is set.
func writeCSV(name string, write func(io.Writer) error) error {
	if csvOut == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(csvOut, name))
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}

func sweepKs(kmax int) []int {
	var ks []int
	for k := 10; k <= kmax; k += 10 {
		ks = append(ks, k)
	}
	if len(ks) == 0 {
		ks = []int{kmax}
	}
	return ks
}

func newTab() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func table3(n int) error {
	rows, err := exp.Table3(n)
	if err != nil {
		return err
	}
	if err := writeCSV("table3.csv", func(out io.Writer) error { return exp.WriteTable3CSV(out, rows) }); err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "dataset\tdims\tsize\t|Dsky|\t|Dhappy|\t|Dconv|\tpaper sky\tpaper happy\tpaper conv")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r.Name, r.Dims, r.N, r.Sky, r.Happy, r.Conv, r.PaperSky, r.PaperHappy, r.PaperConv)
	}
	return w.Flush()
}

func figMRR(n int, ks []int, useHappy bool) error {
	var rows []exp.MRRRow
	var err error
	if useHappy {
		rows, err = exp.Fig7(n, ks)
	} else {
		rows, err = exp.Fig8(n, ks)
	}
	if err != nil {
		return err
	}
	name := "fig7.csv"
	if !useHappy {
		name = "fig8.csv"
	}
	if err := writeCSV(name, func(out io.Writer) error { return exp.WriteMRRCSV(out, rows) }); err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "dataset\tk\tmax regret ratio")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.4f\n", r.Dataset, r.K, r.MRR)
	}
	return w.Flush()
}

func figTime(n int, ks []int, useHappy bool) error {
	var rows []exp.TimeRow
	var err error
	if useHappy {
		rows, err = exp.Fig9(n, ks)
	} else {
		rows, err = exp.Fig10(n, ks)
	}
	if err != nil {
		return err
	}
	name := "fig9_fig11.csv"
	if !useHappy {
		name = "fig10.csv"
	}
	if err := writeCSV(name, func(out io.Writer) error { return exp.WriteTimeCSV(out, rows) }); err != nil {
		return err
	}
	w := newTab()
	if useHappy {
		fmt.Fprintln(w, "dataset\tk\tGreedy query\tGeoGreedy query\tStoredList query\tGreedy total\tGeoGreedy total\tStoredList total")
		for _, r := range rows {
			pre := r.PreSky + r.PreHappy
			fmt.Fprintf(w, "%s\t%d\t%v\t%v\t%v\t%v\t%v\t%v\n",
				r.Dataset, r.K,
				r.Greedy.Round(time.Microsecond),
				r.GeoGreedy.Round(time.Microsecond),
				r.StoredQuery.Round(time.Microsecond),
				(pre + r.Greedy).Round(time.Millisecond),
				(pre + r.GeoGreedy).Round(time.Millisecond),
				(pre + r.StoredBuild + r.StoredQuery).Round(time.Millisecond))
		}
	} else {
		fmt.Fprintln(w, "dataset\tk\tGreedy query\tGeoGreedy query")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%d\t%v\t%v\n",
				r.Dataset, r.K,
				r.Greedy.Round(time.Microsecond),
				r.GeoGreedy.Round(time.Microsecond))
		}
	}
	return w.Flush()
}

func printSynth(rows []exp.SynthRow, param, csvName string) {
	if err := writeCSV(csvName, func(out io.Writer) error { return exp.WriteSynthCSV(out, param, rows) }); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: csv: %v\n", err)
	}
	w := newTab()
	fmt.Fprintf(w, "%s\tn\td\tk\t|Dhappy|\tmax regret ratio\tGreedy query\tGeoGreedy query\n", param)
	for _, r := range rows {
		greedy := "-"
		if r.Greedy > 0 {
			greedy = r.Greedy.Round(time.Microsecond).String()
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%.4f\t%s\t%v\n",
			r.Param, r.N, r.D, r.K, r.Happy, r.MRR, greedy,
			r.GeoGreedy.Round(time.Microsecond))
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
	}
}

func headline(n int, withGreedy bool) error {
	res, err := exp.Headline(n, exp.DefaultSynthD, 100, withGreedy)
	if err != nil {
		return err
	}
	if err := writeCSV("headline.csv", func(out io.Writer) error { return exp.WriteHeadlineCSV(out, res) }); err != nil {
		return err
	}
	fmt.Printf("dataset: anti-correlated, n=%d, d=%d, k=%d\n", res.N, res.D, res.K)
	fmt.Printf("|Dsky|=%d  |Dhappy|=%d  preprocessing=%v\n", res.SkyCount, res.HappyCount, res.PreTime.Round(time.Millisecond))
	if withGreedy {
		fmt.Printf("Greedy query:      %v\n", res.Greedy.Round(time.Millisecond))
	} else {
		fmt.Printf("Greedy query:      (skipped)\n")
	}
	fmt.Printf("GeoGreedy query:   %v\n", res.GeoGreedy.Round(time.Millisecond))
	fmt.Printf("StoredList build:  %v\n", res.StoredBuild.Round(time.Millisecond))
	fmt.Printf("StoredList query:  %v\n", res.StoredQuery.Round(time.Microsecond))
	fmt.Printf("answer max regret ratio: %.4f\n", res.MRR)
	return nil
}
