// Command benchbaseline records a performance baseline for the
// parallel geometric core: it runs the BenchmarkPaper suite twice —
// once at parallelism 1 (the exact sequential path) and once at the
// requested width — parses the `go test -bench` output, and writes a
// BENCH_<rev>.json with ns/op, B/op, allocs/op and the per-benchmark
// speedup. CI and `make bench` both go through this binary so every
// revision's numbers land in the same machine-readable shape.
//
// Usage:
//
//	go run ./cmd/benchbaseline [-parallelism N] [-n 100000] \
//	    [-benchtime 2x] [-bench Paper] [-out BENCH_<rev>.json]
//
// The -n flag feeds the suite's -kregret.benchn dataset size; smoke
// runs (make bench-smoke) lower it so the suite finishes in seconds
// and merely proves the harness end to end.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

type measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type entry struct {
	Name string      `json:"name"`
	Seq  measurement `json:"sequential"`
	Par  measurement `json:"parallel"`
	// Speedup is seq ns/op over par ns/op (>1 means the fan-out won).
	Speedup float64 `json:"speedup"`
	// AllocRatio is par allocs/op over seq allocs/op (the scratch
	// pools should keep this near 1).
	AllocRatio float64 `json:"alloc_ratio"`
}

type report struct {
	Revision    string  `json:"revision"`
	Date        string  `json:"date"`
	GoVersion   string  `json:"go_version"`
	CPU         string  `json:"cpu"`
	MaxProcs    int     `json:"gomaxprocs"`
	N           int     `json:"n"`
	Parallelism int     `json:"parallelism"`
	Benchtime   string  `json:"benchtime"`
	Benchmarks  []entry `json:"benchmarks"`
}

// benchLine matches one `go test -bench -benchmem` result row, e.g.
// BenchmarkPaper/GeoGreedy-8  2  512345678 ns/op  123456 B/op  789 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func main() {
	var (
		parallelism = flag.Int("parallelism", runtime.GOMAXPROCS(0),
			"worker count for the parallel pass (the sequential pass is always 1)")
		n         = flag.Int("n", 100000, "BenchmarkPaper dataset size")
		benchtime = flag.String("benchtime", "2x", "go test -benchtime value")
		bench     = flag.String("bench", "Paper", "go test -bench regexp")
		out       = flag.String("out", "", "output path (default BENCH_<rev>.json)")
	)
	flag.Parse()
	if *parallelism < 2 {
		// A 1-vs-1 diff is meaningless; still record it, but say so.
		fmt.Fprintf(os.Stderr, "benchbaseline: parallel pass width %d — speedups will be ~1 on this machine\n",
			*parallelism)
	}

	rev := gitRev()
	seq, cpu, err := runPass(1, *n, *benchtime, *bench)
	if err != nil {
		fatal(err)
	}
	par, _, err := runPass(*parallelism, *n, *benchtime, *bench)
	if err != nil {
		fatal(err)
	}

	rep := report{
		Revision:    rev,
		Date:        time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		CPU:         cpu,
		MaxProcs:    runtime.GOMAXPROCS(0),
		N:           *n,
		Parallelism: *parallelism,
		Benchtime:   *benchtime,
	}
	for _, name := range sortedKeys(seq) {
		s := seq[name]
		p, ok := par[name]
		if !ok {
			continue
		}
		e := entry{Name: name, Seq: s, Par: p}
		if p.NsPerOp > 0 {
			e.Speedup = s.NsPerOp / p.NsPerOp
		}
		if s.AllocsPerOp > 0 {
			e.AllocRatio = float64(p.AllocsPerOp) / float64(s.AllocsPerOp)
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmarks matched -bench=%s in both passes", *bench))
	}

	path := *out
	if path == "" {
		path = "BENCH_" + rev + ".json"
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}

	fmt.Printf("wrote %s (rev %s, n=%d, parallelism 1 vs %d)\n", path, rev, *n, *parallelism)
	fmt.Printf("%-40s %14s %14s %8s %7s\n", "benchmark", "seq ns/op", "par ns/op", "speedup", "allocΔ")
	for _, e := range rep.Benchmarks {
		fmt.Printf("%-40s %14.0f %14.0f %7.2fx %6.2fx\n",
			e.Name, e.Seq.NsPerOp, e.Par.NsPerOp, e.Speedup, e.AllocRatio)
	}
}

// runPass executes one `go test -bench` invocation at the given
// worker width and returns the parsed measurements keyed by benchmark
// name (the -cpu suffix stripped), plus the reported cpu model.
func runPass(workers, n int, benchtime, bench string) (map[string]measurement, string, error) {
	args := []string{
		"test", "-run=^$", "-bench=" + bench, "-benchmem", "-count=1",
		"-benchtime=" + benchtime, "-timeout=60m", ".",
		"-args",
		fmt.Sprintf("-kregret.parallelism=%d", workers),
		fmt.Sprintf("-kregret.benchn=%d", n),
	}
	fmt.Fprintf(os.Stderr, "benchbaseline: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return nil, "", fmt.Errorf("pass at parallelism %d: %w\n%s", workers, err, outBytes)
	}
	res := make(map[string]measurement)
	cpu := ""
	for _, line := range strings.Split(string(outBytes), "\n") {
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		var mem measurement
		mem.NsPerOp = ns
		if m[3] != "" {
			mem.BytesPerOp, _ = strconv.ParseInt(m[3], 10, 64)
			mem.AllocsPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		res[strings.TrimPrefix(m[1], "Benchmark")] = mem
	}
	if len(res) == 0 {
		return nil, "", fmt.Errorf("pass at parallelism %d produced no benchmark lines:\n%s", workers, outBytes)
	}
	return res, cpu, nil
}

func sortedKeys(m map[string]measurement) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchbaseline:", err)
	os.Exit(1)
}
