// Command benchbaseline records a performance baseline for the
// parallel geometric core: it runs the BenchmarkPaper suite at
// parallelism 1 (the exact sequential path) and at the requested
// width — alternating the two so host drift cancels out of the
// speedup ratio — parses the `go test -bench` output, and writes a
// BENCH_<rev>.json with ns/op, B/op, allocs/op and the per-benchmark
// speedup. CI and `make bench` both go through this binary so every
// revision's numbers land in the same machine-readable shape.
//
// Usage:
//
//	go run ./cmd/benchbaseline [-parallelism N] [-n 100000] \
//	    [-benchtime 2x] [-bench Paper] [-count 1] \
//	    [-out BENCH_<rev>.json] [-diff latest|path]
//
// The -n flag feeds the suite's -kregret.benchn dataset size; smoke
// runs (make bench-smoke) lower it so the suite finishes in seconds
// and merely proves the harness end to end.
//
// -count repeats the alternating pass pairs and keeps the
// per-benchmark minimum of every measurement — the noise floor,
// which is what a baseline should record on a shared machine.
//
// -diff compares the freshly-recorded report against an earlier
// BENCH_*.json ("latest" picks the most recent one by recorded date,
// excluding the file just written) and prints per-benchmark
// sequential ns/op and allocs/op deltas. When the baseline was taken
// with the same -n and -benchtime, a sequential ns/op regression
// above 10% or an allocs/op growth above 25% on any benchmark exits
// nonzero so CI can gate on both time and allocation behavior; for
// benchmarks whose name contains "Sharded" the parallel ns/op is
// gated at 10% as well (the partition–merge path exists to win at
// width, so its parallel time is the one that must not rot). With
// mismatched parameters the diff is advisory and the gates are
// skipped.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

type measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type entry struct {
	Name string      `json:"name"`
	Seq  measurement `json:"sequential"`
	Par  measurement `json:"parallel"`
	// Speedup is seq ns/op over par ns/op (>1 means the fan-out won).
	Speedup float64 `json:"speedup"`
	// AllocRatio is par allocs/op over seq allocs/op (the scratch
	// pools should keep this near 1).
	AllocRatio float64 `json:"alloc_ratio"`
}

type report struct {
	Revision    string  `json:"revision"`
	Date        string  `json:"date"`
	GoVersion   string  `json:"go_version"`
	CPU         string  `json:"cpu"`
	MaxProcs    int     `json:"gomaxprocs"`
	N           int     `json:"n"`
	Parallelism int     `json:"parallelism"`
	Benchtime   string  `json:"benchtime"`
	Benchmarks  []entry `json:"benchmarks"`
}

// benchLine matches one `go test -bench -benchmem` result row, e.g.
// BenchmarkPaper/GeoGreedy-8  2  512345678 ns/op  123456 B/op  789 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func main() {
	var (
		parallelism = flag.Int("parallelism", runtime.GOMAXPROCS(0),
			"worker count for the parallel pass (the sequential pass is always 1)")
		n         = flag.Int("n", 100000, "BenchmarkPaper dataset size")
		benchtime = flag.String("benchtime", "2x", "go test -benchtime value")
		bench     = flag.String("bench", "Paper", "go test -bench regexp")
		count     = flag.Int("count", 1, "passes per width; the minimum of each measurement is kept")
		out       = flag.String("out", "", "output path (default BENCH_<rev>.json)")
		diff      = flag.String("diff", "", "compare against a BENCH_*.json (\"latest\" = newest by date)")
	)
	flag.Parse()
	if *parallelism < 2 {
		// A 1-vs-1 diff is meaningless; still record it, but say so.
		fmt.Fprintf(os.Stderr, "benchbaseline: parallel pass width %d — speedups will be ~1 on this machine\n",
			*parallelism)
	}

	if *count < 1 {
		fatal(fmt.Errorf("-count must be at least 1, got %d", *count))
	}

	rev := gitRev()
	seq, par, cpu, err := runInterleaved(1, *parallelism, *n, *count, *benchtime, *bench)
	if err != nil {
		fatal(err)
	}

	rep := report{
		Revision:    rev,
		Date:        time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		CPU:         cpu,
		MaxProcs:    runtime.GOMAXPROCS(0),
		N:           *n,
		Parallelism: *parallelism,
		Benchtime:   *benchtime,
	}
	for _, name := range sortedKeys(seq) {
		s := seq[name]
		p, ok := par[name]
		if !ok {
			continue
		}
		e := entry{Name: name, Seq: s, Par: p}
		if p.NsPerOp > 0 {
			e.Speedup = s.NsPerOp / p.NsPerOp
		}
		if s.AllocsPerOp > 0 {
			e.AllocRatio = float64(p.AllocsPerOp) / float64(s.AllocsPerOp)
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmarks matched -bench=%s in both passes", *bench))
	}

	path := *out
	if path == "" {
		path = "BENCH_" + rev + ".json"
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}

	fmt.Printf("wrote %s (rev %s, n=%d, parallelism 1 vs %d, count %d)\n", path, rev, *n, *parallelism, *count)
	fmt.Printf("%-40s %14s %14s %8s %7s\n", "benchmark", "seq ns/op", "par ns/op", "speedup", "allocΔ")
	for _, e := range rep.Benchmarks {
		fmt.Printf("%-40s %14.0f %14.0f %7.2fx %6.2fx\n",
			e.Name, e.Seq.NsPerOp, e.Par.NsPerOp, e.Speedup, e.AllocRatio)
	}

	if *diff != "" {
		basePath := *diff
		if basePath == "latest" {
			basePath, err = latestBaseline(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchbaseline: no baseline to diff against: %v\n", err)
				return
			}
		}
		base, err := readReport(basePath)
		if err != nil {
			fatal(err)
		}
		if regressed := diffReports(rep, base, basePath); regressed {
			os.Exit(1)
		}
	}
}

// latestBaseline picks the most recent BENCH_*.json in the working
// directory by its recorded date (RFC3339 strings order lexically),
// skipping the report just written.
func latestBaseline(exclude string) (string, error) {
	matches, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		return "", err
	}
	best, bestDate := "", ""
	for _, m := range matches {
		if filepath.Clean(m) == filepath.Clean(exclude) {
			continue
		}
		r, err := readReport(m)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchbaseline: skipping %s: %v\n", m, err)
			continue
		}
		if r.Date > bestDate {
			best, bestDate = m, r.Date
		}
	}
	if best == "" {
		return "", fmt.Errorf("no other BENCH_*.json found")
	}
	return best, nil
}

func readReport(path string) (report, error) {
	var r report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("parsing %s: %w", path, err)
	}
	return r, nil
}

// regressionThreshold is the sequential ns/op increase (relative to
// the baseline) above which the diff exits nonzero.
const regressionThreshold = 0.10

// allocRegressionThreshold is the sequential allocs/op increase above
// which the diff exits nonzero. Allocation counts are deterministic
// (no noise floor), but pooled hot paths legitimately jitter by a few
// pool misses per op, so the gate is looser than the ns/op one.
const allocRegressionThreshold = 0.25

// diffReports prints the per-benchmark delta table and reports
// whether any benchmark regressed past the ns/op or allocs/op
// threshold under comparable parameters.
func diffReports(cur, base report, basePath string) bool {
	comparable := cur.N == base.N && cur.Benchtime == base.Benchtime
	fmt.Printf("\ndiff vs %s (rev %s)\n", basePath, base.Revision)
	if !comparable {
		fmt.Printf("  parameters differ (n=%d benchtime=%s vs n=%d benchtime=%s): advisory only, regression gate skipped\n",
			cur.N, cur.Benchtime, base.N, base.Benchtime)
	}
	baseBy := make(map[string]entry, len(base.Benchmarks))
	for _, e := range base.Benchmarks {
		baseBy[e.Name] = e
	}
	fmt.Printf("%-40s %14s %14s %8s %8s\n", "benchmark", "base ns/op", "new ns/op", "Δns/op", "Δallocs")
	regressed, allocRegressed, parRegressed := false, false, false
	seen := make(map[string]bool, len(cur.Benchmarks))
	for _, e := range cur.Benchmarks {
		seen[e.Name] = true
		b, ok := baseBy[e.Name]
		if !ok {
			fmt.Printf("%-40s %14s %14.0f %8s %8s\n", e.Name, "(new)", e.Seq.NsPerOp, "", "")
			continue
		}
		nsDelta := ratioDelta(e.Seq.NsPerOp, b.Seq.NsPerOp)
		allocDelta := ratioDelta(float64(e.Seq.AllocsPerOp), float64(b.Seq.AllocsPerOp))
		mark := ""
		if comparable && nsDelta > regressionThreshold {
			mark = "  << regression"
			regressed = true
		}
		if comparable && allocDelta > allocRegressionThreshold {
			mark += "  << alloc regression"
			allocRegressed = true
		}
		// Sharded entries exist to beat their unsharded counterpart at
		// width, so their PARALLEL ns/op is the number that must not
		// rot; the other entries' parallel times stay advisory (they
		// are pure noise at width 1).
		if comparable && strings.Contains(e.Name, "Sharded") {
			if parDelta := ratioDelta(e.Par.NsPerOp, b.Par.NsPerOp); parDelta > regressionThreshold {
				mark += fmt.Sprintf("  << parallel regression (%+.1f%%)", 100*parDelta)
				parRegressed = true
			}
		}
		fmt.Printf("%-40s %14.0f %14.0f %+7.1f%% %+7.1f%%%s\n",
			e.Name, b.Seq.NsPerOp, e.Seq.NsPerOp, 100*nsDelta, 100*allocDelta, mark)
	}
	for _, e := range base.Benchmarks {
		if !seen[e.Name] {
			fmt.Printf("%-40s %14.0f %14s\n", e.Name, e.Seq.NsPerOp, "(gone)")
		}
	}
	if regressed {
		fmt.Printf("sequential ns/op regressed more than %.0f%% against %s\n", 100*regressionThreshold, basePath)
	}
	if allocRegressed {
		fmt.Printf("sequential allocs/op regressed more than %.0f%% against %s\n", 100*allocRegressionThreshold, basePath)
	}
	if parRegressed {
		fmt.Printf("sharded parallel ns/op regressed more than %.0f%% against %s\n", 100*regressionThreshold, basePath)
	}
	return regressed || allocRegressed || parRegressed
}

// ratioDelta is (new-old)/old, with a zero baseline treated as no
// delta (B/op-less rows and zero-alloc benchmarks).
func ratioDelta(cur, base float64) float64 {
	if base <= 0 {
		return 0
	}
	return (cur - base) / base
}

// runInterleaved alternates sequential and parallel passes —
// 1, N, 1, N, … for `count` rounds — and folds each side's
// per-benchmark minimum of every measurement field (the noise floor).
// Interleaving matters on shared machines: host throughput drifts
// over the minutes a full run takes, and running all sequential
// passes first would hand whichever width runs last a systematic
// handicap that the min fold cannot remove. Alternating exposes both
// widths to the same drift so it cancels out of the speedup ratio.
// Benchmarks must appear in every pass to survive the fold.
func runInterleaved(seqWorkers, parWorkers, n, count int, benchtime, bench string) (seq, par map[string]measurement, cpu string, err error) {
	for pass := 0; pass < count; pass++ {
		if seq, cpu, err = foldPass(seq, cpu, seqWorkers, n, benchtime, bench); err != nil {
			return nil, nil, "", err
		}
		if par, cpu, err = foldPass(par, cpu, parWorkers, n, benchtime, bench); err != nil {
			return nil, nil, "", err
		}
	}
	return seq, par, cpu, nil
}

// foldPass runs one pass at the given width and folds it into acc by
// per-benchmark minimum.
func foldPass(acc map[string]measurement, cpu string, workers, n int, benchtime, bench string) (map[string]measurement, string, error) {
	res, c, err := runPass(workers, n, benchtime, bench)
	if err != nil {
		return nil, "", err
	}
	if c != "" {
		cpu = c
	}
	if acc == nil {
		return res, cpu, nil
	}
	for name, m := range res {
		b, ok := acc[name]
		if !ok {
			acc[name] = m
			continue
		}
		if m.NsPerOp < b.NsPerOp {
			b.NsPerOp = m.NsPerOp
		}
		if m.BytesPerOp < b.BytesPerOp {
			b.BytesPerOp = m.BytesPerOp
		}
		if m.AllocsPerOp < b.AllocsPerOp {
			b.AllocsPerOp = m.AllocsPerOp
		}
		acc[name] = b
	}
	return acc, cpu, nil
}

// runPass executes one `go test -bench` invocation at the given
// worker width and returns the parsed measurements keyed by benchmark
// name (the -cpu suffix stripped), plus the reported cpu model.
func runPass(workers, n int, benchtime, bench string) (map[string]measurement, string, error) {
	args := []string{
		"test", "-run=^$", "-bench=" + bench, "-benchmem", "-count=1",
		"-benchtime=" + benchtime, "-timeout=60m", ".",
		"-args",
		fmt.Sprintf("-kregret.parallelism=%d", workers),
		fmt.Sprintf("-kregret.benchn=%d", n),
	}
	fmt.Fprintf(os.Stderr, "benchbaseline: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return nil, "", fmt.Errorf("pass at parallelism %d: %w\n%s", workers, err, outBytes)
	}
	res := make(map[string]measurement)
	cpu := ""
	for _, line := range strings.Split(string(outBytes), "\n") {
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		var mem measurement
		mem.NsPerOp = ns
		if m[3] != "" {
			mem.BytesPerOp, _ = strconv.ParseInt(m[3], 10, 64)
			mem.AllocsPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		res[strings.TrimPrefix(m[1], "Benchmark")] = mem
	}
	if len(res) == 0 {
		return nil, "", fmt.Errorf("pass at parallelism %d produced no benchmark lines:\n%s", workers, outBytes)
	}
	return res, cpu, nil
}

func sortedKeys(m map[string]measurement) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchbaseline:", err)
	os.Exit(1)
}
