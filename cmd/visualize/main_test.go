package main

import (
	"os"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestRunDefaultScene(t *testing.T) {
	out := t.TempDir() + "/scene.svg"
	if err := run("", out, 3, 2, 400); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	svg := string(data)
	for _, want := range []string{"<svg", "</svg>", "Conv(D) boundary", "GeoGreedy answer", "tent Y(p3)"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("scene missing %q", want)
		}
	}
}

func TestRunFromCSV(t *testing.T) {
	pts, err := dataset.AntiCorrelated(150, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	csvPath := t.TempDir() + "/pts.csv"
	if err := dataset.WriteCSVFile(csvPath, pts, nil); err != nil {
		t.Fatal(err)
	}
	out := t.TempDir() + "/data.svg"
	if err := run(csvPath, out, 5, -1, 500); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() < 500 {
		t.Fatalf("suspicious output: %v, %v", fi, err)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir+"/missing.csv", dir+"/x.svg", 3, -1, 400); err == nil {
		t.Fatal("missing CSV accepted")
	}
	// 3-d data is rejected.
	pts, err := dataset.AntiCorrelated(20, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	csvPath := dir + "/3d.csv"
	if err := dataset.WriteCSVFile(csvPath, pts, nil); err != nil {
		t.Fatal(err)
	}
	if err := run(csvPath, dir+"/x.svg", 3, -1, 400); err == nil {
		t.Fatal("3-d data accepted")
	}
	// Tent index out of range.
	if err := run("", dir+"/x.svg", 0, 99, 400); err == nil {
		t.Fatal("tent index out of range accepted")
	}
}
