// Command visualize renders the paper's two-dimensional geometry to
// SVG: the dataset, the orthotope convex hull, the candidate sets,
// the k-regret answer and (optionally) one point's subjugation tent.
//
// Usage:
//
//	visualize -out scene.svg                 # the Figure 1 running example
//	visualize -in data.csv -k 5 -out q.svg   # your own 2-d CSV data
//	visualize -tent 2 -out tent.svg          # draw Y(p3) like Figure 5
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/happy"
	"repro/internal/skyline"
	"repro/internal/viz"
)

// runningExample mirrors internal/core's reconstruction of the
// paper's Figure 1 configuration.
var runningExample = []geom.Vector{
	{0.55, 0.90}, {0.65, 0.72}, {0.75, 0.70}, {0.82, 0.55},
	{0.90, 0.45}, {1.00, 0.10}, {0.20, 1.00},
}

func main() {
	var (
		in   = flag.String("in", "", "2-d CSV input (default: the paper's running example)")
		out  = flag.String("out", "scene.svg", "output SVG path")
		k    = flag.Int("k", 3, "answer size to highlight (0 disables)")
		tent = flag.Int("tent", -1, "draw the subjugation tent Y(p) of this point index (-1 disables)")
		size = flag.Int("size", 640, "canvas size in pixels")
	)
	flag.Parse()
	if err := run(*in, *out, *k, *tent, *size); err != nil {
		fmt.Fprintf(os.Stderr, "visualize: %v\n", err)
		os.Exit(1)
	}
}

func run(in, out string, k, tent, size int) error {
	pts := runningExample
	if in != "" {
		raw, err := dataset.ReadCSVFile(in)
		if err != nil {
			return err
		}
		norm, err := dataset.Normalize(raw)
		if err != nil {
			return err
		}
		pts = norm
	}
	if len(pts) == 0 || len(pts[0]) != 2 {
		return fmt.Errorf("need non-empty 2-dimensional data, got %d-d", len(pts[0]))
	}

	scene := viz.NewScene(size)
	scene.AddAxes()

	sky, err := skyline.Of(pts)
	if err != nil {
		return err
	}
	hp := happy.ComputeAmongSkyline(pts, sky)
	inHappy := map[int]bool{}
	for _, i := range hp {
		inHappy[i] = true
	}

	if err := scene.AddHullBoundary(pts, "#7aa6c2"); err != nil {
		return err
	}
	scene.AddLegend("#7aa6c2", "Conv(D) boundary")

	var plain, skyOnly, happyPts []geom.Vector
	for i, p := range pts {
		switch {
		case inHappy[i]:
			happyPts = append(happyPts, p)
		case contains(sky, i):
			skyOnly = append(skyOnly, p)
		default:
			plain = append(plain, p)
		}
	}
	if err := scene.AddPoints(plain, "#bbbbbb", 2.5, false); err != nil {
		return err
	}
	scene.AddLegend("#bbbbbb", "dominated points")
	if err := scene.AddPoints(skyOnly, "#e6a23c", 3.5, false); err != nil {
		return err
	}
	scene.AddLegend("#e6a23c", "skyline, not happy")
	if err := scene.AddPoints(happyPts, "#2b8a3e", 4, len(pts) <= 12); err != nil {
		return err
	}
	scene.AddLegend("#2b8a3e", "happy points")

	if tent >= 0 {
		if tent >= len(pts) {
			return fmt.Errorf("tent index %d out of range (n=%d)", tent, len(pts))
		}
		planes, err := happy.EnumeratePlanes(pts[tent])
		if err != nil {
			return err
		}
		scene.AddTent(planes, "#c0392b")
		scene.AddLegend("#c0392b", fmt.Sprintf("tent Y(p%d)", tent+1))
	}

	if k > 0 {
		res, err := core.GeoGreedy(pts, k)
		if err != nil {
			return err
		}
		var sel []geom.Vector
		for _, i := range res.Indices {
			sel = append(sel, pts[i])
			if err := scene.AddRay(pts[i], "#845ef7"); err != nil {
				return err
			}
		}
		if err := scene.AddPoints(sel, "#845ef7", 6, false); err != nil {
			return err
		}
		scene.AddLegend("#845ef7", fmt.Sprintf("GeoGreedy answer (k=%d, mrr %.3f)", k, res.MRR))
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if _, err := scene.WriteTo(f); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
