package kregret

// Durable mutations: Insert/Delete over copy-on-write epochs, the
// write-ahead log attachment, crash recovery (Recover) and log
// compaction (Compact). See DESIGN.md §15 for the durability model.

import (
	"errors"
	"fmt"

	"repro/internal/geom"
	"repro/internal/happy"
	"repro/internal/skyline"
	"repro/internal/wal"
)

// ErrWALRequired is returned by Compact and Sync on a dataset built
// without WithWAL: there is no log to compact or flush.
var ErrWALRequired = errors.New("kregret: dataset has no write-ahead log (see WithWAL)")

// WithWAL attaches a write-ahead log to the dataset: every Insert and
// Delete is appended (and, per WithSyncEvery, fsynced) to walPath
// before it is applied, and a base snapshot of the freshly constructed
// dataset is written to snapshotPath so the (snapshot, log) pair alone
// reconstructs the full state. After a crash, Recover(snapshotPath,
// walPath) returns the exact acknowledged state.
//
// NewDataset with WithWAL requires walPath to hold no records (a fresh
// or fully compacted log): refusing to build a new dataset over an
// existing mutation history is what prevents silently orphaning it.
// Use Recover to resume a previous history.
//
// Only a NewDataset option; as a Query option it has no effect.
func WithWAL(walPath, snapshotPath string) Option {
	return func(o *options) { o.walPath, o.walSnap = walPath, snapshotPath }
}

// WithSyncEvery sets the WAL's fsync batching: the log syncs after
// every n appends. The default 1 makes every acknowledged mutation
// durable before Insert/Delete returns; larger values trade that for
// mutation throughput, risking at most the last n−1 acknowledged
// mutations on a crash (never a torn or reordered log). Only
// meaningful together with WithWAL.
func WithSyncEvery(n int) Option { return func(o *options) { o.syncEvery = n } }

// attachWAL opens (and requires empty) the configured log and writes
// the seq-0 base snapshot. Called from NewDataset after the state is
// built.
func (d *Dataset) attachWAL(o options) error {
	if o.walSnap == "" {
		return errors.New("kregret: WithWAL requires a snapshot path")
	}
	log, recs, err := wal.Open(o.walPath, wal.Config{SyncEvery: o.syncEvery})
	if err != nil {
		return fmt.Errorf("kregret: opening WAL: %w", err)
	}
	if len(recs) > 0 {
		return errors.Join(
			fmt.Errorf("kregret: WAL %s already holds %d records; use Recover to resume it", o.walPath, len(recs)),
			log.Close())
	}
	if err := saveDatasetFile(o.walSnap, d.snap()); err != nil {
		return errors.Join(err, log.Close())
	}
	d.muMut.Lock()
	d.wal, d.walSnap = log, o.walSnap
	d.muMut.Unlock()
	return nil
}

// WALBacked reports whether the dataset currently has a write-ahead
// log attached (false after Close).
func (d *Dataset) WALBacked() bool {
	d.muMut.Lock()
	defer d.muMut.Unlock()
	return d.wal != nil
}

// Seq returns the sequence number of the last mutation folded into
// the current epoch (zero for a freshly constructed dataset). It is
// the dataset's logical clock: strictly increasing across mutations
// and preserved by compaction, recovery and Snapshot.
func (d *Dataset) Seq() uint64 { return d.snap().seq }

// Snapshot returns a Dataset pinned to the current epoch: a cheap
// read view sharing the epoch's points and candidate caches, immune
// to later mutations of the parent. The snapshot has no WAL — it is
// a view, not a fork of the durable history.
func (d *Dataset) Snapshot() *Dataset {
	nd := &Dataset{workers: d.workers, pruning: d.pruning}
	nd.state.Store(d.snap())
	return nd
}

// validateInsert checks an inserted point against the epoch's
// invariants. Inserted coordinates are taken verbatim in the
// dataset's current (normalized) coordinate space — mutation never
// renormalizes, because rescaling every existing point would silently
// change answers and break replay determinism.
func validateInsert(st *dsState, v geom.Vector) error {
	if len(v) != len(st.pts[0]) {
		return fmt.Errorf("kregret: inserted point: %w: %d vs %d",
			geom.ErrDimensionMismatch, len(st.pts[0]), len(v))
	}
	if !v.IsFinite() || !v.AllPositive() {
		return fmt.Errorf("kregret: inserted point (%v) must be finite and strictly positive", v)
	}
	return nil
}

// Insert appends a tuple to the dataset and returns its index (always
// Len() of the previous epoch — existing indices never move). The
// coordinates are interpreted in the dataset's current (normalized)
// space and are not renormalized. With a WAL attached, the mutation
// is durable before Insert returns; on error nothing changed, on disk
// or in memory.
//
// The new epoch is published atomically: queries already running
// finish on the epoch they started with, later calls see the insert.
// Candidate sets and indexes are recomputed lazily per epoch; for
// serving workloads, Engine.Apply batches that cost across mutations.
func (d *Dataset) Insert(p Point) (int, error) {
	d.muMut.Lock()
	defer d.muMut.Unlock()
	if d.walClosed {
		return 0, ErrClosed
	}
	st := d.snap()
	v := geom.Vector(p).Clone()
	if err := validateInsert(st, v); err != nil {
		return 0, err
	}
	seq := st.seq + 1
	if d.wal != nil {
		if err := d.wal.Append(wal.Record{Seq: seq, Op: wal.OpInsert, Point: v}); err != nil {
			return 0, fmt.Errorf("kregret: insert not durable: %w", err)
		}
	}
	pts := make([]geom.Vector, len(st.pts)+1)
	copy(pts, st.pts)
	pts[len(st.pts)] = v
	ns := newState(pts, seq, st.workers, st.pruning, st.coresetEps)
	seedAfterInsert(st, ns)
	d.state.Store(ns)
	return len(pts) - 1, nil
}

// seedAfterInsert folds the previous epoch's READY candidate caches
// into the successor epoch with the incremental operators — an
// O(|sky|·d) patch instead of the O(n²·d²) from-scratch preprocess —
// before the successor is published. Cold caches stay cold: delta
// maintenance never triggers a computation the previous epoch did not
// already pay for, so purely write-heavy workloads keep O(1)
// mutations. The successor is unpublished here, so the Once.Do calls
// cannot race a reader.
func seedAfterInsert(st, ns *dsState) {
	if !st.skyDone.Load() {
		return
	}
	skyNew, removed, inserted, err := skyline.UpdateInsert(ns.pts, st.sky)
	if err != nil {
		return // impossible for a consistent cache; fall back to lazy recompute
	}
	ns.skyOnce.Do(func() { ns.sky = skyNew })
	ns.skyDone.Store(true)
	if !st.happyDone.Load() || st.cert == nil {
		return
	}
	cert := happy.UpdateInsert(ns.pts, st.cert, skyNew, removed, inserted)
	ns.happyOnce.Do(func() {
		ns.cert = cert
		ns.happy = cert.HappyPoints()
	})
	ns.happyDone.Store(true)
}

// seedAfterDelete is seedAfterInsert's counterpart for Delete: st is
// the pre-delete epoch (whose caches use pre-delete indices), ns the
// shifted successor.
func seedAfterDelete(st, ns *dsState, delIdx int) {
	if !st.skyDone.Load() {
		return
	}
	skyNew, entrants, wasSky, err := skyline.UpdateDelete(st.pts, st.sky, delIdx)
	if err != nil {
		return
	}
	ns.skyOnce.Do(func() { ns.sky = skyNew })
	ns.skyDone.Store(true)
	if !st.happyDone.Load() || st.cert == nil {
		return
	}
	cert := happy.UpdateDelete(ns.pts, st.cert, delIdx, skyNew, entrants, wasSky)
	ns.happyOnce.Do(func() {
		ns.cert = cert
		ns.happy = cert.HappyPoints()
	})
	ns.happyDone.Store(true)
}

// Delete removes the tuple at index i; tuples after it shift down by
// one (the WAL records the index, so replay shifts identically).
// Deleting the last remaining tuple is an error — an empty dataset
// is not a valid state. With a WAL attached, the mutation is durable
// before Delete returns; on error nothing changed.
func (d *Dataset) Delete(i int) error {
	d.muMut.Lock()
	defer d.muMut.Unlock()
	if d.walClosed {
		return ErrClosed
	}
	st := d.snap()
	if i < 0 || i >= len(st.pts) {
		return fmt.Errorf("kregret: delete index %d out of range (n=%d)", i, len(st.pts))
	}
	if len(st.pts) == 1 {
		return fmt.Errorf("kregret: delete would leave the dataset empty: %w", ErrNoPoints)
	}
	seq := st.seq + 1
	if d.wal != nil {
		if err := d.wal.Append(wal.Record{Seq: seq, Op: wal.OpDelete, Index: i}); err != nil {
			return fmt.Errorf("kregret: delete not durable: %w", err)
		}
	}
	var pts []geom.Vector
	if i == len(st.pts)-1 {
		// Deleting the tail needs no clone: epochs are immutable, so the
		// predecessor keeps reading its longer view of the same backing
		// array, and the capacity cap forces any future growth to
		// reallocate instead of writing into the shared tail. This turns
		// the insert-then-undo round trip (the Engine fold's probe
		// pattern) from two O(n) copies into one.
		pts = st.pts[:i:i]
	} else {
		pts = make([]geom.Vector, 0, len(st.pts)-1)
		pts = append(pts, st.pts[:i]...)
		pts = append(pts, st.pts[i+1:]...)
	}
	ns := newState(pts, seq, st.workers, st.pruning, st.coresetEps)
	seedAfterDelete(st, ns, i)
	d.state.Store(ns)
	return nil
}

// Compact folds the mutation history into a fresh base snapshot and
// truncates the log: the current epoch is written (atomically) to the
// snapshot path, then the WAL is reset. Every crash point is safe —
// the snapshot records the sequence number it contains, and replay
// skips log records at or below it, so a crash between the snapshot
// write and the truncation merely replays zero records from a stale
// log. A failed snapshot write leaves the previous (snapshot, log)
// pair fully intact.
func (d *Dataset) Compact() error {
	d.muMut.Lock()
	defer d.muMut.Unlock()
	if d.walClosed {
		return ErrClosed
	}
	if d.wal == nil {
		return ErrWALRequired
	}
	if err := saveDatasetFile(d.walSnap, d.snap()); err != nil {
		return err
	}
	if err := d.wal.Reset(); err != nil {
		return fmt.Errorf("kregret: compacting WAL: %w", err)
	}
	return nil
}

// SyncWAL forces any fsync-batched mutations (WithSyncEvery > 1) to
// disk, bounding the acknowledgment lag explicitly.
func (d *Dataset) SyncWAL() error {
	d.muMut.Lock()
	defer d.muMut.Unlock()
	if d.wal == nil {
		return ErrWALRequired
	}
	return d.wal.Sync()
}

// ErrClosed is returned by mutations on a dataset whose WAL was
// closed: accepting them would silently drop durability.
var ErrClosed = errors.New("kregret: dataset closed")

// Close syncs and closes the WAL (a no-op on a dataset that never had
// one). The dataset remains queryable after Close; further mutations
// return ErrClosed.
func (d *Dataset) Close() error {
	d.muMut.Lock()
	defer d.muMut.Unlock()
	if d.wal == nil {
		return nil
	}
	err := d.wal.Close()
	d.wal = nil
	d.walClosed = true
	return err
}

// replayRecord applies one WAL record to the point slice. Records
// were validated when appended, so any violation here means the log
// does not belong to this snapshot (or was corrupted in a way the
// CRC cannot see): it surfaces as wal.ErrCorruptRecord, never as a
// silently-wrong dataset.
func replayRecord(pts []geom.Vector, rec wal.Record) ([]geom.Vector, error) {
	switch rec.Op {
	case wal.OpInsert:
		v := geom.Vector(rec.Point)
		if len(pts) > 0 && len(v) != len(pts[0]) {
			return nil, fmt.Errorf("%w: replayed insert (seq %d) has dimension %d, want %d",
				wal.ErrCorruptRecord, rec.Seq, len(v), len(pts[0]))
		}
		if !v.IsFinite() || !v.AllPositive() {
			return nil, fmt.Errorf("%w: replayed insert (seq %d) is not finite and strictly positive",
				wal.ErrCorruptRecord, rec.Seq)
		}
		return append(pts, v), nil
	case wal.OpDelete:
		if rec.Index < 0 || rec.Index >= len(pts) {
			return nil, fmt.Errorf("%w: replayed delete (seq %d) index %d out of range (n=%d)",
				wal.ErrCorruptRecord, rec.Seq, rec.Index, len(pts))
		}
		if len(pts) == 1 {
			return nil, fmt.Errorf("%w: replayed delete (seq %d) would empty the dataset",
				wal.ErrCorruptRecord, rec.Seq)
		}
		return append(pts[:rec.Index], pts[rec.Index+1:]...), nil
	}
	return nil, fmt.Errorf("%w: replayed record (seq %d) has unknown op %d", wal.ErrCorruptRecord, rec.Seq, rec.Op)
}

// Recover rebuilds a WAL-backed dataset after a crash: the base
// snapshot is loaded, the log's torn tail (a crash mid-append) is
// truncated away, records already folded into the snapshot (a crash
// mid-compaction) are skipped by sequence number, and the remaining
// acknowledged mutations are replayed in order. The result is the
// exact acknowledged pre-crash state — the crash-point sweep in
// crash_test.go proves query answers are byte-identical to an
// uninterrupted control for every possible crash offset.
//
// The returned dataset keeps the same WAL attached, ready for further
// durable mutations. Corruption beyond a torn tail is typed:
// ErrCorruptSnapshot for the snapshot, wal.ErrCorruptRecord for the
// log.
func Recover(snapshotPath, walPath string, opts ...Option) (*Dataset, error) {
	o := defaultOptions()
	for _, f := range opts {
		f(&o)
	}
	if err := o.validateCoreset(); err != nil {
		return nil, err
	}
	pts, seq, err := loadDatasetFile(snapshotPath)
	if err != nil {
		return nil, err
	}
	log, recs, err := wal.Open(walPath, wal.Config{SyncEvery: o.syncEvery})
	if err != nil {
		return nil, fmt.Errorf("kregret: recovering WAL: %w", err)
	}
	for _, rec := range recs {
		if rec.Seq <= seq {
			continue // already folded into the snapshot by a compaction
		}
		if pts, err = replayRecord(pts, rec); err != nil {
			return nil, errors.Join(err, log.Close())
		}
		seq = rec.Seq
	}
	if len(pts) == 0 {
		return nil, errors.Join(ErrNoPoints, log.Close())
	}
	d := newDatasetFromVectors(pts, seq, o)
	d.muMut.Lock()
	d.wal, d.walSnap = log, snapshotPath
	d.muMut.Unlock()
	return d, nil
}
