//go:build kregretfault

// Fault-injection tests for the degradation chain. They compile only
// with the kregretfault build tag (`make test-fault`), arming named
// injection sites inside the geometry core and proving each fallback
// edge — GeoGreedy → perturbed retry → Greedy → Cube — end to end
// through the public API.
package kregret

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/fault"
	"repro/internal/lp"
)

// faultDataset builds a small well-conditioned dataset. Fault tests
// query it with CandidatesAll so the armed sites fire inside the
// solvers, not inside the happy-point preprocessing.
func faultDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := NewDataset(testPoints(60, 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func armed(t *testing.T) {
	t.Helper()
	fault.Reset()
	t.Cleanup(fault.Reset)
}

// Edge 1: a single NaN critical ratio fails the first GeoGreedy run;
// the deterministic epsilon-perturbed retry succeeds.
func TestFallbackPerturbedRetry(t *testing.T) {
	armed(t)
	ds := faultDataset(t)
	fault.Arm(fault.SiteGeoGreedySupport, 1)
	ans, err := ds.Query(5, WithCandidates(CandidatesAll))
	if err != nil {
		t.Fatalf("perturbed retry did not recover: %v", err)
	}
	if !ans.Degraded {
		t.Fatalf("answer not marked degraded: %+v", ans)
	}
	if ans.Algorithm != AlgoGeoGreedy {
		t.Fatalf("retry should stay on GeoGreedy, got %v", ans.Algorithm)
	}
	if !strings.Contains(ans.FallbackReason, "perturbation") {
		t.Fatalf("reason does not mention the perturbed retry: %q", ans.FallbackReason)
	}
	if got := fault.Fired(fault.SiteGeoGreedySupport); got != 1 {
		t.Fatalf("NaN site fired %d times, want 1", got)
	}
	if ans.MRR < 0 || ans.MRR > 1 {
		t.Fatalf("degraded answer has MRR %v", ans.MRR)
	}
}

// Edge 2: persistent dual-description degeneracy fails GeoGreedy and
// its perturbed retry; the LP-based Greedy (which never touches the
// dd machinery) answers.
func TestFallbackToGreedy(t *testing.T) {
	armed(t)
	ds := faultDataset(t)
	fault.Arm(fault.SiteDDAddHalfspace, -1)
	ans, err := ds.Query(5, WithCandidates(CandidatesAll))
	if err != nil {
		t.Fatalf("Greedy fallback did not recover: %v", err)
	}
	if !ans.Degraded || ans.Algorithm != AlgoGreedy {
		t.Fatalf("want degraded Greedy answer, got %+v", ans)
	}
	if !strings.Contains(ans.FallbackReason, "Greedy") {
		t.Fatalf("reason does not name the fallback solver: %q", ans.FallbackReason)
	}
	if fault.Fired(fault.SiteDDAddHalfspace) < 2 {
		t.Fatalf("dd site fired only %d times; perturbed retry was skipped", fault.Fired(fault.SiteDDAddHalfspace))
	}
}

// Edge 3: a Greedy query whose LPs persistently hit the iteration cap
// falls through to Cube (pure arithmetic, no LP).
func TestFallbackToCube(t *testing.T) {
	armed(t)
	ds := faultDataset(t)
	fault.Arm(fault.SiteLPIterationCap, -1)
	ans, err := ds.Query(5, WithAlgorithm(AlgoGreedy), WithCandidates(CandidatesAll))
	if err != nil {
		t.Fatalf("Cube fallback did not recover: %v", err)
	}
	if !ans.Degraded || ans.Algorithm != AlgoCube {
		t.Fatalf("want degraded Cube answer, got %+v", ans)
	}
}

// The acceptance path: GeoGreedy fails (NaN, both attempts), Greedy
// fails (LP iteration cap), Cube answers. One query walks the entire
// chain.
func TestFullChainGeoGreedyToCube(t *testing.T) {
	armed(t)
	ds := faultDataset(t)
	fault.Arm(fault.SiteGeoGreedySupport, -1)
	fault.Arm(fault.SiteLPIterationCap, -1)
	ans, err := ds.Query(5, WithCandidates(CandidatesAll))
	if err != nil {
		t.Fatalf("full chain did not recover: %v", err)
	}
	if !ans.Degraded || ans.Algorithm != AlgoCube {
		t.Fatalf("want degraded Cube answer at the end of the chain, got %+v", ans)
	}
	for _, stage := range []string{"GeoGreedy", "Greedy"} {
		if !strings.Contains(ans.FallbackReason, stage) {
			t.Fatalf("reason %q does not record the %s failure", ans.FallbackReason, stage)
		}
	}
	if fault.Fired(fault.SiteGeoGreedySupport) < 2 || fault.Fired(fault.SiteLPIterationCap) < 1 {
		t.Fatalf("chain skipped stages: geogreedy=%d lp=%d",
			fault.Fired(fault.SiteGeoGreedySupport), fault.Fired(fault.SiteLPIterationCap))
	}
	if ans.MRR < 0 || ans.MRR > 1 {
		t.Fatalf("degraded answer has MRR %v", ans.MRR)
	}
}

// When every stage fails — dd degeneracy kills GeoGreedy and Cube's
// exact evaluation, the LP cap kills Greedy — the query surfaces one
// *NumericalError joining every per-stage failure.
func TestChainExhausted(t *testing.T) {
	armed(t)
	ds := faultDataset(t)
	fault.Arm(fault.SiteDDAddHalfspace, -1)
	fault.Arm(fault.SiteLPIterationCap, -1)
	ans, err := ds.Query(5, WithCandidates(CandidatesAll))
	if ans != nil || err == nil {
		t.Fatalf("exhausted chain returned ans=%v err=%v", ans, err)
	}
	var ne *NumericalError
	if !errors.As(err, &ne) {
		t.Fatalf("want *NumericalError, got %T: %v", err, err)
	}
	if ne.Op != "Query" || ne.K != 5 || ne.Algorithm != AlgoGeoGreedy {
		t.Fatalf("error lost query context: %+v", ne)
	}
	if !errors.Is(err, dd.ErrEmpty) || !errors.Is(err, lp.ErrIterationCap) {
		t.Fatalf("joined error misses per-stage causes: %v", err)
	}
}

// WithoutFallback surfaces the first numerical failure untouched.
func TestWithoutFallbackSurfacesError(t *testing.T) {
	armed(t)
	ds := faultDataset(t)
	// One shot: were the fallback chain to run despite the option, the
	// perturbed retry would find the site disarmed and succeed — so an
	// error here proves the chain never started.
	fault.Arm(fault.SiteGeoGreedySupport, 1)
	ans, err := ds.Query(5, WithCandidates(CandidatesAll), WithoutFallback())
	if ans != nil || err == nil {
		t.Fatalf("want error, got ans=%v err=%v", ans, err)
	}
	if !errors.Is(err, core.ErrDegenerate) {
		t.Fatalf("want core.ErrDegenerate, got %v", err)
	}
	if got := fault.Fired(fault.SiteGeoGreedySupport); got != 1 {
		t.Fatalf("site fired %d times, want exactly 1", got)
	}
}

// A panic inside the geometry core becomes a *NumericalError with
// WithoutFallback, and a degraded answer with the chain enabled.
func TestPanicRecovery(t *testing.T) {
	armed(t)
	ds := faultDataset(t)

	fault.Arm(fault.SiteGeoGreedyPanic, -1)
	ans, err := ds.Query(5, WithCandidates(CandidatesAll), WithoutFallback())
	if ans != nil || err == nil {
		t.Fatalf("want error, got ans=%v err=%v", ans, err)
	}
	var ne *NumericalError
	if !errors.As(err, &ne) {
		t.Fatalf("want *NumericalError, got %T: %v", err, err)
	}
	if ne.PanicValue == nil {
		t.Fatalf("recovered panic lost its value: %+v", ne)
	}

	fault.Reset()
	fault.Arm(fault.SiteGeoGreedyPanic, 1)
	ans, err = ds.Query(5, WithCandidates(CandidatesAll))
	if err != nil {
		t.Fatalf("chain did not recover from a single panic: %v", err)
	}
	if !ans.Degraded || ans.Algorithm != AlgoGeoGreedy {
		t.Fatalf("want degraded perturbed-retry answer, got %+v", ans)
	}
}

// Cancellation beats fallback: a context that expires mid-solve stops
// the chain immediately instead of burning the deadline on weaker
// algorithms.
func TestCancellationDuringSlowPivots(t *testing.T) {
	armed(t)
	ds := faultDataset(t)
	fault.ArmSleep(fault.SiteLPSlowPivot, -1, 50*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
	defer cancel()
	start := time.Now()
	ans, err := ds.QueryContext(ctx, 5, WithAlgorithm(AlgoGreedy), WithCandidates(CandidatesAll))
	elapsed := time.Since(start)
	if ans != nil {
		t.Fatalf("canceled query returned an answer: %+v", ans)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v with slow pivots armed", elapsed)
	}
	if fault.Fired(fault.SiteLPSlowPivot) == 0 {
		t.Fatal("slow-pivot site never fired")
	}
}
