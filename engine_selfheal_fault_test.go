//go:build kregretfault

// Fault-injection tests for the engine's self-healing layer: the
// per-request retry budget rescuing a transiently failing solver, the
// deadline cap that forbids retrying doomed work, and the stuck-query
// watchdog quarantining a pathological breaker key. They compile only
// under the kregretfault tag (`make test-serve`).
package kregret

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
)

// TestEngineRetryRescuesTransientFault arms exactly one NaN shot: the
// first attempt fails with a *NumericalError (fallback disabled), the
// retry runs clean, and the caller sees a non-degraded answer it
// could not have gotten without the budget.
func TestEngineRetryRescuesTransientFault(t *testing.T) {
	defer fault.Reset()
	eng, ds := testEngine(t, WithWorkers(1), WithRetryBudget(2, time.Millisecond))
	defer func() {
		if err := eng.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()

	// Control: the same query without faults.
	want, err := ds.Query(3)
	if err != nil {
		t.Fatal(err)
	}

	fault.Arm(fault.SiteGeoGreedySupport, 1)
	ans, err := eng.Query(context.Background(), 3, WithoutFallback())
	if err != nil {
		t.Fatalf("retry did not rescue the query: %v", err)
	}
	if ans.Degraded {
		t.Fatalf("rescued answer is degraded: %+v", ans)
	}
	if len(ans.Indices) != len(want.Indices) {
		t.Fatalf("rescued answer differs from control: %v vs %v", ans.Indices, want.Indices)
	}
	for i := range ans.Indices {
		if ans.Indices[i] != want.Indices[i] {
			t.Fatalf("rescued answer differs from control: %v vs %v", ans.Indices, want.Indices)
		}
	}
	s := eng.Stats()
	if s.Retries < 1 || s.RetrySuccesses < 1 {
		t.Fatalf("retry not counted: retries=%d successes=%d", s.Retries, s.RetrySuccesses)
	}
}

// TestEngineRetryNeverPastDeadline arms a permanent failure and gives
// the query a deadline shorter than the first backoff: the engine
// must return the failure without sleeping into the dead zone.
func TestEngineRetryNeverPastDeadline(t *testing.T) {
	defer fault.Reset()
	eng, _ := testEngine(t, WithWorkers(1), WithRetryBudget(3, 200*time.Millisecond))
	defer func() {
		if err := eng.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()

	fault.Arm(fault.SiteGeoGreedySupport, -1)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := eng.Query(ctx, 3, WithoutFallback())
	elapsed := time.Since(start)

	if !core.IsNumerical(err) {
		t.Fatalf("want the numerical failure back, got %v", err)
	}
	if s := eng.Stats(); s.Retries != 0 {
		t.Fatalf("engine retried into a dead deadline: retries=%d", s.Retries)
	}
	// The first backoff draw is at least 100ms; finishing well under
	// it proves no wait was attempted.
	if elapsed >= 100*time.Millisecond {
		t.Fatalf("query held a worker %v despite a 50ms budget", elapsed)
	}
}

// TestEngineWatchdogQuarantinesStuckQuery turns the LP solver into a
// slow loop that outlives its deadline by an order of magnitude: the
// watchdog must flag the in-flight query and trip the breaker for its
// (algorithm, dim) key, so follow-up traffic short-circuits to Cube
// instead of piling onto the stuck regime.
func TestEngineWatchdogQuarantinesStuckQuery(t *testing.T) {
	defer fault.Reset()
	eng, _ := testEngine(t,
		WithWorkers(1),
		WithWatchdog(3*time.Millisecond),
		WithBreaker(5, time.Second))
	defer func() {
		if err := eng.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()

	// Every simplex pivot batch stalls 60ms; the query budget is
	// 10ms, so the worker runs ~50ms past its deadline — far beyond
	// the watchdog's one-interval grace.
	fault.ArmSleep(fault.SiteLPSlowPivot, -1, 60*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := eng.Query(ctx, 2, WithAlgorithm(AlgoGreedy)); err == nil {
		t.Fatal("stalled query returned no error")
	}
	fault.Reset()

	s := eng.Stats()
	if s.WatchdogStuck == 0 {
		t.Fatalf("watchdog missed the stuck query: %+v", s)
	}
	key := breakerKey(AlgoGreedy, 3)
	if state := s.Breakers[key]; state != "open" {
		t.Fatalf("breaker %s = %q, want open (quarantined): %v", key, state, s.Breakers)
	}

	// The quarantine redirects the next query for the key to Cube.
	ans, err := eng.Query(context.Background(), 2, WithAlgorithm(AlgoGreedy))
	if err != nil {
		t.Fatalf("quarantined key stopped serving: %v", err)
	}
	if !ans.Degraded || ans.Algorithm != AlgoCube {
		t.Fatalf("quarantined key not short-circuited to Cube: %+v", ans)
	}
	if s := eng.Stats(); s.BreakerShortCircuits == 0 {
		t.Fatalf("short-circuit not counted: %+v", s)
	}
}
