//go:build kregretfault

package kregret

// Fault regression for delta maintenance (DESIGN.md §16): the crash
// sweep in crash_fault_test.go runs its script on COLD candidate
// caches, so every durability failure lands before any incremental
// fold. Here the caches are warmed first, so each mutation takes the
// seedAfterInsert/seedAfterDelete path — and the armed failures probe
// the boundary between the two: a rejected mutation must leave the
// served epoch and its caches untouched (no partially patched
// certificate may leak), an acknowledged one must fold exactly, and
// recovery — which recomputes candidates from scratch — must agree
// with the incrementally folded live state, set for set.

import (
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

// checkFoldedCaches compares the dataset's (incrementally folded)
// skyline and happy caches against a from-scratch recompute over the
// same points. Index equality is exact: the fold is defined to be
// decision-identical to the full preprocess, not merely set-similar.
func checkFoldedCaches(t *testing.T, ds *Dataset, when string) {
	t.Helper()
	pts := make([]Point, ds.Len())
	for i := range pts {
		pts[i] = ds.Point(i)
	}
	fresh, err := NewDataset(pts, WithoutNormalization())
	if err != nil {
		t.Fatalf("%s: from-scratch rebuild: %v", when, err)
	}
	foldSky, err := ds.Skyline()
	if err != nil {
		t.Fatalf("%s: folded skyline: %v", when, err)
	}
	freshSky, err := fresh.Skyline()
	if err != nil {
		t.Fatalf("%s: from-scratch skyline: %v", when, err)
	}
	equalIndexSets(t, when+" skyline", 0, foldSky, freshSky)
	foldHappy, err := ds.HappyPoints()
	if err != nil {
		t.Fatalf("%s: folded happy: %v", when, err)
	}
	freshHappy, err := fresh.HappyPoints()
	if err != nil {
		t.Fatalf("%s: from-scratch happy: %v", when, err)
	}
	equalIndexSets(t, when+" happy", 0, foldHappy, freshHappy)
}

// runWarmFoldScript is runFaultedScript's warm-cache counterpart: the
// candidate caches are computed up front, every mutation thereafter
// folds them incrementally, and after every attempt — acknowledged or
// rejected — the caches must match a from-scratch recompute. A nil
// return means construction itself absorbed the injected failure.
func runWarmFoldScript(t *testing.T, dir string) *Dataset {
	t.Helper()
	ds, err := NewDataset([]Point{
		{1.0, 0.1}, {0.1, 1.0}, {0.8, 0.8}, {0.5, 0.5}, {0.3, 0.9}, {0.9, 0.3},
	}, WithoutNormalization(), WithWAL(filepath.Join(dir, "fold.wal"), filepath.Join(dir, "fold.snap")))
	if err != nil {
		return nil
	}
	// Warm both caches: every mutation below takes the fold path.
	if _, err := ds.Skyline(); err != nil {
		t.Fatalf("warming skyline: %v", err)
	}
	if _, err := ds.HappyPoints(); err != nil {
		t.Fatalf("warming happy: %v", err)
	}
	for i, op := range crashScript() {
		before := ds.Seq()
		if op.pt != nil {
			if _, err := ds.Insert(op.pt); err != nil && ds.Seq() != before {
				t.Fatalf("op %d: rejected insert advanced the epoch (seq %d -> %d)", i, before, ds.Seq())
			}
		} else {
			if err := ds.Delete(op.del); err != nil && ds.Seq() != before {
				t.Fatalf("op %d: rejected delete advanced the epoch (seq %d -> %d)", i, before, ds.Seq())
			}
		}
		checkFoldedCaches(t, ds, "after op")
		if i == 3 {
			// Mid-script compaction exercises persist.sync while the
			// caches are warm; success or failure, it must not disturb
			// the in-memory epoch (Reset also heals a torn log so the
			// script regains write access).
			//kregret:allow errdrop: a failed compaction leaves the previous pair intact; the cache check below is the invariant
			ds.Compact()
			checkFoldedCaches(t, ds, "after compact")
		}
	}
	return ds
}

// TestIncrementalFoldFaultSweep arms each durability site at every one
// of its execution points in the warm-cache script and proves two
// invariants at every shot: (1) the live caches, patched only by
// incremental folds, never drift from a from-scratch recompute even
// when mutations are rejected mid-script; (2) recovery from the
// on-disk pair — which recomputes candidates cold — serves exactly the
// same skyline and happy sets as the folded live dataset.
func TestIncrementalFoldFaultSweep(t *testing.T) {
	sites := []string{
		fault.SiteWALAppend,
		fault.SiteWALSync,
		fault.SiteWALRotate,
		fault.SitePersistSync,
	}
	for _, site := range sites {
		site := site
		t.Run(site, func(t *testing.T) {
			fault.Reset()
			t.Cleanup(fault.Reset)
			fault.Observe(site)
			clean := runWarmFoldScript(t, t.TempDir())
			if clean == nil {
				t.Fatal("clean run failed to build its dataset")
			}
			total := fault.Fired(site)
			if total == 0 {
				t.Fatalf("site %s never executes in the script — the sweep would prove nothing", site)
			}
			if err := clean.Close(); err != nil {
				t.Fatal(err)
			}

			for shot := 0; shot < total; shot++ {
				fault.Reset()
				fault.ArmAfter(site, shot, 1)
				dir := t.TempDir()
				ds := runWarmFoldScript(t, dir)
				if fault.Fired(site) == 0 {
					t.Fatalf("shot %d/%d never fired", shot, total)
				}
				if ds == nil {
					continue // construction failure; crash_fault_test.go owns the snapshot assertions
				}
				fault.Reset() // recovery runs on healthy hardware
				rec, err := Recover(filepath.Join(dir, "fold.snap"), filepath.Join(dir, "fold.wal"))
				if err != nil {
					t.Fatalf("shot %d/%d: recovery failed: %v", shot, total, err)
				}
				if rec.Seq() != ds.Seq() {
					t.Fatalf("shot %d/%d: recovered seq %d, acknowledged %d", shot, total, rec.Seq(), ds.Seq())
				}
				recSky, err := rec.Skyline()
				if err != nil {
					t.Fatalf("shot %d/%d: recovered skyline: %v", shot, total, err)
				}
				liveSky, err := ds.Skyline()
				if err != nil {
					t.Fatalf("shot %d/%d: live skyline: %v", shot, total, err)
				}
				equalIndexSets(t, "recovered skyline", shot, recSky, liveSky)
				recHappy, err := rec.HappyPoints()
				if err != nil {
					t.Fatalf("shot %d/%d: recovered happy: %v", shot, total, err)
				}
				liveHappy, err := ds.HappyPoints()
				if err != nil {
					t.Fatalf("shot %d/%d: live happy: %v", shot, total, err)
				}
				equalIndexSets(t, "recovered happy", shot, recHappy, liveHappy)
				if err := rec.Close(); err != nil {
					t.Fatalf("shot %d/%d: closing recovered: %v", shot, total, err)
				}
				//kregret:allow errdrop: the live log may be mid-failure by design; its close error is not the invariant
				ds.Close()
			}
		})
	}
}
