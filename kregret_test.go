package kregret

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func testPoints(n, d int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		p := make(Point, d)
		var sum float64
		for j := range p {
			p[j] = 0.05 + rng.ExpFloat64()
			sum += p[j]
		}
		for j := range p {
			p[j] = p[j] / sum * (0.8 + 0.4*rng.Float64())
		}
		pts[i] = p
	}
	return pts
}

func TestNewDatasetValidation(t *testing.T) {
	if _, err := NewDataset(nil); err != ErrNoPoints {
		t.Fatalf("empty: %v", err)
	}
	if _, err := NewDataset([]Point{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged accepted")
	}
	if _, err := NewDataset([]Point{{1, math.NaN()}}); err == nil {
		t.Fatal("NaN accepted")
	}
	// Negative coordinates fail even with normalization (scaling
	// cannot make them positive).
	if _, err := NewDataset([]Point{{-1, 2}, {3, 4}}); err == nil {
		t.Fatal("negative accepted")
	}
	// Without normalization, zero coordinates are rejected.
	if _, err := NewDataset([]Point{{0, 1}}, WithoutNormalization()); err == nil {
		t.Fatal("zero without normalization accepted")
	}
}

func TestNormalizationDefaults(t *testing.T) {
	ds, err := NewDataset([]Point{{10, 1}, {5, 4}})
	if err != nil {
		t.Fatal(err)
	}
	p := ds.Point(0)
	if math.Abs(p[0]-1) > 1e-12 || math.Abs(p[1]-0.25) > 1e-12 {
		t.Fatalf("normalized point 0 = %v", p)
	}
	// Input slice is copied.
	raw := []Point{{3, 4}}
	ds2, _ := NewDataset(raw)
	raw[0][0] = 99
	if ds2.Point(0)[0] == 99 {
		t.Fatal("NewDataset aliases input")
	}
	// Point returns a copy.
	q := ds2.Point(0)
	q[0] = -5
	if ds2.Point(0)[0] == -5 {
		t.Fatal("Point aliases internal state")
	}
}

func TestQueryBasics(t *testing.T) {
	ds, err := NewDataset(testPoints(200, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := ds.Query(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Indices) > 5 || len(ans.Indices) < 3 {
		t.Fatalf("answer size %d", len(ans.Indices))
	}
	if ans.MRR < 0 || ans.MRR >= 1 {
		t.Fatalf("MRR %v out of range", ans.MRR)
	}
	if ans.Algorithm != AlgoGeoGreedy || ans.Candidates != CandidatesHappy {
		t.Fatalf("defaults: %v %v", ans.Algorithm, ans.Candidates)
	}
	// Evaluating the answer reproduces the reported regret.
	mrr, err := ds.EvaluateMRR(ans.Indices)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mrr-ans.MRR) > 1e-6 {
		t.Fatalf("EvaluateMRR %v vs reported %v", mrr, ans.MRR)
	}
	if _, err := ds.Query(0); err != ErrBadK {
		t.Fatalf("k=0: %v", err)
	}
}

func TestQueryAlgorithmsAgree(t *testing.T) {
	ds, err := NewDataset(testPoints(150, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	geo, err := ds.Query(6)
	if err != nil {
		t.Fatal(err)
	}
	grd, err := ds.Query(6, WithAlgorithm(AlgoGreedy))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(geo.MRR-grd.MRR) > 1e-6 {
		t.Fatalf("algorithms disagree: %v vs %v", geo.MRR, grd.MRR)
	}
	if grd.Algorithm != AlgoGreedy {
		t.Fatalf("answer records %v", grd.Algorithm)
	}
}

func TestQueryCandidateSets(t *testing.T) {
	ds, err := NewDataset(testPoints(300, 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []CandidateSet{CandidatesHappy, CandidatesSkyline, CandidatesAll} {
		ans, err := ds.Query(5, WithCandidates(c))
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if ans.Candidates != c {
			t.Fatalf("answer records %v, want %v", ans.Candidates, c)
		}
		// All three candidate sets contain the hull extreme points,
		// so the measured regret of any answer is exact; happy
		// candidates must be at least as good as the others.
	}
}

func TestCandidateSetInclusions(t *testing.T) {
	ds, err := NewDataset(testPoints(400, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	sky, err := ds.Skyline()
	if err != nil {
		t.Fatal(err)
	}
	hp, err := ds.HappyPoints()
	if err != nil {
		t.Fatal(err)
	}
	conv, err := ds.ConvexPoints()
	if err != nil {
		t.Fatal(err)
	}
	inSky := map[int]bool{}
	for _, i := range sky {
		inSky[i] = true
	}
	inHp := map[int]bool{}
	for _, i := range hp {
		inHp[i] = true
	}
	for _, i := range hp {
		if !inSky[i] {
			t.Fatalf("happy %d not skyline", i)
		}
	}
	for _, i := range conv {
		if !inHp[i] {
			t.Fatalf("conv %d not happy", i)
		}
	}
	// Accessors return copies.
	sky[0] = -1
	sky2, _ := ds.Skyline()
	if sky2[0] == -1 {
		t.Fatal("Skyline aliases cache")
	}
}

func TestIndexMatchesQuery(t *testing.T) {
	ds, err := NewDataset(testPoints(250, 3, 5))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := ds.BuildIndex()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{3, 5, 8} {
		fromIdx, err := idx.Query(k)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := ds.Query(k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fromIdx.Indices, direct.Indices) {
			t.Fatalf("k=%d: index %v vs direct %v", k, fromIdx.Indices, direct.Indices)
		}
		if math.Abs(fromIdx.MRR-direct.MRR) > 1e-9 {
			t.Fatalf("k=%d: index MRR %v vs direct %v", k, fromIdx.MRR, direct.MRR)
		}
	}
	if _, err := idx.Query(0); err != ErrBadK {
		t.Fatalf("k=0: %v", err)
	}
	if idx.Len() < 3 {
		t.Fatalf("index length %d", idx.Len())
	}
}

func TestRegretHelpers(t *testing.T) {
	ds, err := NewDataset(testPoints(100, 3, 6))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := ds.Query(4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ds.RegretOf(ans.Indices, Point{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if r < 0 || r > ans.MRR+1e-9 {
		t.Fatalf("pointwise regret %v vs MRR %v", r, ans.MRR)
	}
	avg, err := ds.AverageRegret(ans.Indices, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if avg < 0 || avg > ans.MRR+1e-9 {
		t.Fatalf("average regret %v vs MRR %v", avg, ans.MRR)
	}
	if ans.MRR > 1e-6 {
		w, witness, err := ds.WorstUtility(ans.Indices)
		if err != nil {
			t.Fatal(err)
		}
		if witness < 0 {
			t.Fatal("no witness despite positive regret")
		}
		wr, err := ds.RegretOf(ans.Indices, w)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(wr-ans.MRR) > 1e-6 {
			t.Fatalf("worst utility regret %v vs MRR %v", wr, ans.MRR)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	if AlgoGeoGreedy.String() != "GeoGreedy" || AlgoGreedy.String() != "Greedy" {
		t.Fatal("algorithm strings")
	}
	if CandidatesHappy.String() != "happy" || CandidatesSkyline.String() != "skyline" || CandidatesAll.String() != "all" {
		t.Fatal("candidate strings")
	}
	if Algorithm(9).String() == "" || CandidateSet(9).String() == "" {
		t.Fatal("unknown enums")
	}
}

func TestQueryMonotonicity(t *testing.T) {
	ds, err := NewDataset(testPoints(300, 3, 7))
	if err != nil {
		t.Fatal(err)
	}
	prev := 2.0
	for k := 3; k <= 15; k += 2 {
		ans, err := ds.Query(k)
		if err != nil {
			t.Fatal(err)
		}
		if ans.MRR > prev+1e-9 {
			t.Fatalf("regret increased with k at %d: %v > %v", k, ans.MRR, prev)
		}
		prev = ans.MRR
	}
}

func TestBigKReturnsZeroRegret(t *testing.T) {
	ds, err := NewDataset(testPoints(100, 2, 8))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := ds.Query(100)
	if err != nil {
		t.Fatal(err)
	}
	if ans.MRR > 1e-9 {
		t.Fatalf("k=n regret %v", ans.MRR)
	}
}

func TestQueryCube(t *testing.T) {
	ds, err := NewDataset(testPoints(200, 3, 21))
	if err != nil {
		t.Fatal(err)
	}
	cube, err := ds.Query(12, WithAlgorithm(AlgoCube))
	if err != nil {
		t.Fatal(err)
	}
	if cube.Algorithm != AlgoCube {
		t.Fatalf("answer records %v", cube.Algorithm)
	}
	geo, err := ds.Query(12)
	if err != nil {
		t.Fatal(err)
	}
	// CUBE is a valid answer (bounded regret) but the greedy should
	// not be beaten by a wide margin.
	if geo.MRR > cube.MRR+1e-9 {
		t.Fatalf("greedy %v worse than CUBE %v", geo.MRR, cube.MRR)
	}
	if AlgoCube.String() != "Cube" {
		t.Fatal("AlgoCube String")
	}
}

func TestWithParallelismParity(t *testing.T) {
	pts := testPoints(600, 4, 22)
	seq, err := NewDataset(pts)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewDataset(pts, WithParallelism(0))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := seq.Skyline()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := par.Skyline()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("parallel skyline differs")
	}
	h1, err := seq.HappyPoints()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := par.HappyPoints()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h1, h2) {
		t.Fatal("parallel happy points differ")
	}
}
