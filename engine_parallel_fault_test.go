//go:build kregretfault

// Fault-injection tests for intra-query parallelism: a panic inside a
// parallel.For worker goroutine must be recaptured, re-raised on the
// query goroutine, converted by the runSolver panic boundary into a
// typed *NumericalError, and from there either surfaced (without
// fallback) or absorbed by the degradation chain — exactly like a
// panic on the sequential path. The dataset is large enough
// (n > 2×grain) that the solver scans genuinely split into multiple
// chunks; with WithParallelism(1) the same site must be inert.
package kregret

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/fault"
)

// parallelFaultDataset is faultDataset scaled up past every fan-out
// threshold (`n < 2·grain` runs inline): GeoGreedy's support scan
// chunks at a 256-index grain and Greedy's LP sweep at 1024, so 2500
// points split every solver stage into ≥ 2 chunks and the worker
// loop — where SiteParallelWorker fires — actually runs in each.
func parallelFaultDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := NewDataset(testPoints(2500, 3, 5))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestParallelWorkerPanicTyped: one armed shot, no fallback — the
// worker panic surfaces as a *NumericalError carrying the original
// panic value.
func TestParallelWorkerPanicTyped(t *testing.T) {
	armed(t)
	ds := parallelFaultDataset(t)
	fault.Arm(fault.SiteParallelWorker, 1)
	ans, err := ds.Query(5, WithCandidates(CandidatesAll), WithParallelism(4), WithoutFallback())
	if ans != nil || err == nil {
		t.Fatalf("want error, got ans=%v err=%v", ans, err)
	}
	var ne *NumericalError
	if !errors.As(err, &ne) {
		t.Fatalf("want *NumericalError, got %T: %v", err, err)
	}
	if ne.PanicValue == nil {
		t.Fatalf("recovered worker panic lost its value: %+v", ne)
	}
	if !strings.Contains(fmt.Sprint(ne.PanicValue), "injected panic in parallel worker") {
		t.Fatalf("panic value %v is not the injected one", ne.PanicValue)
	}
	if got := fault.Fired(fault.SiteParallelWorker); got != 1 {
		t.Fatalf("site fired %d times, want exactly 1", got)
	}
}

// TestEngineParallelWorkerPanicDegrades: the site armed forever kills
// every parallel solver stage — GeoGreedy, its perturbed retry, and
// Greedy all fan out and panic — and the engine-served query lands on
// Cube (whose arithmetic never enters a parallel region), degraded
// but answered. The engine's parallelism budget, not a per-call
// option, is what switches the solvers onto the fan-out path.
func TestEngineParallelWorkerPanicDegrades(t *testing.T) {
	armed(t)
	ds := parallelFaultDataset(t)
	eng, err := NewEngine(ds, WithWorkers(1), WithParallelismBudget(4),
		WithQueryDefaults(WithCandidates(CandidatesAll)))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := eng.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()

	fault.Arm(fault.SiteParallelWorker, -1)
	ans, err := eng.Query(context.Background(), 5)
	if err != nil {
		t.Fatalf("query failed outright instead of degrading: %v", err)
	}
	if !ans.Degraded || ans.Algorithm != AlgoCube {
		t.Fatalf("want degraded Cube answer, got %+v", ans)
	}
	for _, stage := range []string{"GeoGreedy", "Greedy"} {
		if !strings.Contains(ans.FallbackReason, stage) {
			t.Fatalf("reason %q does not record the %s failure", ans.FallbackReason, stage)
		}
	}
	if fault.Fired(fault.SiteParallelWorker) < 3 {
		t.Fatalf("site fired only %d times; chain skipped parallel stages",
			fault.Fired(fault.SiteParallelWorker))
	}
	if ans.MRR < 0 || ans.MRR > 1 {
		t.Fatalf("degraded answer has MRR %v", ans.MRR)
	}

	// Storm over: the same engine answers cleanly again.
	fault.Reset()
	ans, err = eng.Query(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Degraded {
		t.Fatalf("post-storm query still degraded: %s", ans.FallbackReason)
	}
}

// TestParallelWorkerSiteInertSequential: with the exact sequential
// path (WithParallelism(1)) the armed site must never fire — the
// fault hook lives only in the concurrent worker loop, so sequential
// queries cannot pay for it even under the fault build tag.
func TestParallelWorkerSiteInertSequential(t *testing.T) {
	armed(t)
	ds := parallelFaultDataset(t)
	fault.Arm(fault.SiteParallelWorker, -1)
	ans, err := ds.Query(5, WithCandidates(CandidatesAll), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	if ans.Degraded {
		t.Fatalf("sequential query degraded: %s", ans.FallbackReason)
	}
	if got := fault.Fired(fault.SiteParallelWorker); got != 0 {
		t.Fatalf("site fired %d times on the sequential path", got)
	}
}
