// Cars: the paper's motivating scenario at realistic scale.
//
// A dealer site (the paper cites autotrader.co.uk with 350,000+ cars)
// wants to show each visitor a single small page of cars such that
// every visitor — whatever trade-off they make between price,
// economy, power, comfort and safety — finds something close to their
// personal optimum. This example generates a synthetic inventory,
// compares page sizes k = 4..20, and contrasts the happy-point
// candidate set with the classical skyline.
//
// Run with: go run ./examples/cars
package main

import (
	"fmt"
	"log"
	"math/rand"

	kregret "repro"
)

const (
	inventory = 40000
	attrs     = 5 // economy, power, comfort, safety, value-for-money
)

func main() {
	cars := generateInventory(inventory)
	ds, err := kregret.NewDataset(cars)
	if err != nil {
		log.Fatal(err)
	}

	sky, err := ds.Skyline()
	if err != nil {
		log.Fatal(err)
	}
	hp, err := ds.HappyPoints()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inventory: %d cars × %d attributes\n", ds.Len(), ds.Dim())
	fmt.Printf("skyline: %d cars — too many to show a visitor\n", len(sky))
	fmt.Printf("happy points: %d cars — the only ones a regret-optimal page ever needs\n\n", len(hp))

	fmt.Println("page size vs worst-case visitor regret:")
	fmt.Println("   k   regret(happy)   regret(skyline candidates)")
	for k := 4; k <= 20; k += 4 {
		ansHappy, err := ds.Query(k)
		if err != nil {
			log.Fatal(err)
		}
		ansSky, err := ds.Query(k, kregret.WithCandidates(kregret.CandidatesSkyline))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d   %6.2f%%         %6.2f%%\n", k, 100*ansHappy.MRR, 100*ansSky.MRR)
	}

	// A concrete page.
	ans, err := ds.Query(8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthe k=8 page (economy, power, comfort, safety, value):\n")
	for _, i := range ans.Indices {
		p := ds.Point(i)
		fmt.Printf("  car #%05d  [%.2f %.2f %.2f %.2f %.2f]\n", i, p[0], p[1], p[2], p[3], p[4])
	}
	fmt.Printf("worst-case regret of the page: %.2f%%\n", 100*ans.MRR)
}

// generateInventory builds a synthetic car inventory: a few families
// (city cars, sports cars, SUVs, premium) with intra-family
// correlation and global trade-offs (power vs economy).
func generateInventory(n int) []kregret.Point {
	rng := rand.New(rand.NewSource(42))
	type family struct {
		base   [attrs]float64
		spread float64
	}
	families := []family{
		{base: [attrs]float64{0.85, 0.25, 0.45, 0.55, 0.80}, spread: 0.08}, // city
		{base: [attrs]float64{0.30, 0.90, 0.50, 0.50, 0.40}, spread: 0.10}, // sports
		{base: [attrs]float64{0.45, 0.60, 0.75, 0.80, 0.50}, spread: 0.09}, // SUV
		{base: [attrs]float64{0.55, 0.70, 0.90, 0.85, 0.30}, spread: 0.07}, // premium
		{base: [attrs]float64{0.60, 0.45, 0.55, 0.60, 0.65}, spread: 0.15}, // everything else
	}
	cars := make([]kregret.Point, n)
	for i := range cars {
		f := families[rng.Intn(len(families))]
		p := make(kregret.Point, attrs)
		for j := range p {
			v := f.base[j] + rng.NormFloat64()*f.spread
			if v < 0.01 {
				v = 0.01
			}
			if v > 1 {
				v = 1
			}
			p[j] = v
		}
		cars[i] = p
	}
	return cars
}
