// Quickstart: the smallest useful kregret program.
//
// It builds a tiny car database (the paper's Table I plus a few
// dominated cars), asks for a 2-tuple representative set and shows
// the guarantee the answer carries: no matter which linear utility
// function a user has, the best of the two returned cars is within
// the printed regret of the best car overall.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	kregret "repro"
)

func main() {
	// Rows: [miles-per-gallon, horsepower] — larger is better on
	// both. Values need not be normalized; NewDataset does that.
	cars := []kregret.Point{
		{47, 400},   // BMW M3 GTS
		{38, 465},   // Chevrolet Camaro SS
		{33.5, 500}, // Ford Shelby GT500
		{50, 360},   // Nissan 370Z coupe
		{30, 330},   // dominated: worse than the M3 on both axes
		{28, 280},   // dominated
	}
	names := []string{
		"BMW M3 GTS", "Chevrolet Camaro SS", "Ford Shelby GT500",
		"Nissan 370Z coupe", "Mid trim", "Base trim",
	}

	ds, err := kregret.NewDataset(cars)
	if err != nil {
		log.Fatal(err)
	}

	ans, err := ds.Query(2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("show these %d cars to every customer:\n", len(ans.Indices))
	for _, i := range ans.Indices {
		fmt.Printf("  - %s (mpg=%.1f, hp=%.0f)\n", names[i], cars[i][0], cars[i][1])
	}
	fmt.Printf("maximum regret ratio: %.1f%%\n", 100*ans.MRR)
	fmt.Println("→ whatever weights a customer puts on MPG vs HP, the best")
	fmt.Printf("  of these is within %.1f%% of their true favourite's utility.\n", 100*ans.MRR)

	// Which customer is worst served, and what would they have wanted?
	if weights, witness, err := ds.WorstUtility(ans.Indices); err == nil && witness >= 0 {
		fmt.Printf("worst served: a customer weighting (mpg, hp) ≈ (%.2f, %.2f),\n",
			weights[0], weights[1])
		fmt.Printf("who would have preferred the %s.\n", names[witness])
	}
}
