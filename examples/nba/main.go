// NBA: regret-bounded shortlists over the paper's nba dataset.
//
// The paper evaluates on a 21,962-row table of NBA player seasons
// with 5 performance statistics. This example uses the repository's
// synthetic stand-in of that table (same size and structure; the
// original is not redistributable) and shows the full pipeline a
// sports site would run:
//
//  1. build the dataset once,
//  2. materialize the StoredList index (preprocessing),
//  3. answer shortlist queries of any size in microseconds,
//  4. audit the answer: regret for specific "scout profiles"
//     (utility weight vectors) and the exact worst case.
//
// Run with: go run ./examples/nba
package main

import (
	"fmt"
	"log"
	"time"

	kregret "repro"
	"repro/internal/dataset"
)

func main() {
	raw, err := dataset.Real(dataset.NBA)
	if err != nil {
		log.Fatal(err)
	}
	points := make([]kregret.Point, len(raw))
	for i, p := range raw {
		points[i] = kregret.Point(p)
	}
	// Already normalized by the generator.
	ds, err := kregret.NewDataset(points, kregret.WithoutNormalization())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("player seasons: %d × %d stats\n", ds.Len(), ds.Dim())

	t0 := time.Now()
	idx, err := ds.BuildIndex()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index materialized in %v (list length %d)\n\n", time.Since(t0).Round(time.Millisecond), idx.Len())

	fmt.Println("shortlist size vs worst-case regret (answered from the index):")
	for _, k := range []int{5, 10, 20, 40} {
		t0 = time.Now()
		ans, err := idx.Query(k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k=%2d  regret %5.2f%%  (query took %v)\n", k, 100*ans.MRR, time.Since(t0).Round(time.Microsecond))
	}

	// Audit the k=10 shortlist against concrete scout profiles.
	ans, err := idx.Query(10)
	if err != nil {
		log.Fatal(err)
	}
	profiles := map[string]kregret.Point{
		"scoring-first":  {0.60, 0.10, 0.10, 0.10, 0.10},
		"all-rounder":    {0.20, 0.20, 0.20, 0.20, 0.20},
		"defense-minded": {0.10, 0.15, 0.15, 0.30, 0.30},
	}
	fmt.Println("\nregret of the k=10 shortlist for specific scout profiles:")
	for name, w := range profiles {
		r, err := ds.RegretOf(ans.Indices, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-15s %5.2f%%\n", name, 100*r)
	}
	avg, err := ds.AverageRegret(ans.Indices, 20000, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-15s %5.2f%%  (Monte-Carlo over random profiles)\n", "average", 100*avg)
	fmt.Printf("  %-15s %5.2f%%  (exact, Lemma 1)\n", "worst case", 100*ans.MRR)
}
