// Stocks: algorithm comparison on the stocks stand-in.
//
// The paper's headline is that GeoGreedy computes exactly the same
// answer as the best-known Greedy baseline but orders of magnitude
// faster, because it replaces one linear program per candidate per
// iteration with an incrementally maintained convex hull. This
// example demonstrates that equivalence and the speed gap on the
// stocks dataset (122,574 rows × 5 attributes, synthetic stand-in),
// and shows the candidate-set effect: running over happy points
// yields an answer at least as good as over the skyline, on a far
// smaller candidate set.
//
// Run with: go run ./examples/stocks
package main

import (
	"fmt"
	"log"
	"time"

	kregret "repro"
	"repro/internal/dataset"
)

func main() {
	raw, err := dataset.Real(dataset.Stocks)
	if err != nil {
		log.Fatal(err)
	}
	points := make([]kregret.Point, len(raw))
	for i, p := range raw {
		points[i] = kregret.Point(p)
	}
	ds, err := kregret.NewDataset(points, kregret.WithoutNormalization())
	if err != nil {
		log.Fatal(err)
	}
	sky, err := ds.Skyline()
	if err != nil {
		log.Fatal(err)
	}
	hp, err := ds.HappyPoints()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stocks: %d rows × %d attributes; |skyline|=%d, |happy|=%d\n\n",
		ds.Len(), ds.Dim(), len(sky), len(hp))

	const k = 30

	t0 := time.Now()
	geo, err := ds.Query(k) // GeoGreedy over happy points
	if err != nil {
		log.Fatal(err)
	}
	geoTime := time.Since(t0)

	t0 = time.Now()
	grd, err := ds.Query(k, kregret.WithAlgorithm(kregret.AlgoGreedy))
	if err != nil {
		log.Fatal(err)
	}
	grdTime := time.Since(t0)

	fmt.Printf("k=%d over happy points:\n", k)
	fmt.Printf("  GeoGreedy: regret %.3f%% in %v\n", 100*geo.MRR, geoTime.Round(time.Millisecond))
	slowdown := 0.0
	if geoTime > 0 {
		slowdown = float64(grdTime) / float64(geoTime)
	}
	fmt.Printf("  Greedy:    regret %.3f%% in %v  (%.0f× slower, same answer quality)\n",
		100*grd.MRR, grdTime.Round(time.Millisecond), slowdown)

	same := len(geo.Indices) == len(grd.Indices)
	if same {
		m := make(map[int]bool, len(geo.Indices))
		for _, i := range geo.Indices {
			m[i] = true
		}
		for _, i := range grd.Indices {
			if !m[i] {
				same = false
				break
			}
		}
	}
	fmt.Printf("  identical selections: %v\n\n", same)

	t0 = time.Now()
	skyAns, err := ds.Query(k, kregret.WithCandidates(kregret.CandidatesSkyline))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k=%d over the skyline (%d candidates, prior work): regret %.3f%% in %v\n",
		k, len(sky), 100*skyAns.MRR, time.Since(t0).Round(time.Millisecond))
	fmt.Printf("k=%d over happy points (%d candidates, the paper):  regret %.3f%%\n",
		k, len(hp), 100*geo.MRR)
}
