// Interactive: learn one user's utility through comparisons.
//
// The k-regret query serves all users at once; the paper's second
// future direction (after Nanongkai et al., SIGMOD 2012) is the
// complementary interactive setting — converse with ONE user:
// repeatedly show a few tuples, let them pick a favourite, and narrow
// down their hidden utility function until a single tuple can be
// recommended with a small personal regret guarantee.
//
// This example simulates such a user on a hotel-booking scenario
// (price inverted so larger = better, location, rating, amenities)
// and prints how the regret guarantee tightens round by round.
//
// Run with: go run ./examples/interactive
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	kregret "repro"
)

func main() {
	hotels := generateHotels(5000)
	ds, err := kregret.NewDataset(hotels)
	if err != nil {
		log.Fatal(err)
	}

	session, err := ds.NewInteractiveSession()
	if err != nil {
		log.Fatal(err)
	}

	// The "user": hidden linear utility the system never sees. It
	// only observes which displayed hotel the user clicks.
	hidden := []float64{0.45, 0.30, 0.15, 0.10} // value, location, rating, amenities
	pick := func(shown []int) int {
		best, bestU := 0, math.Inf(-1)
		for i, idx := range shown {
			p := ds.Point(idx)
			var u float64
			for j := range p {
				u += hidden[j] * p[j]
			}
			if u > bestU {
				best, bestU = i, u
			}
		}
		return best
	}

	fmt.Println("round  regret guarantee   recommended hotel")
	for round := 0; round < 10; round++ {
		rec, bound, err := session.Recommend()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d  %8.2f%%          #%04d %v\n", round, 100*bound, rec, short(ds.Point(rec)))
		if bound < 0.02 {
			fmt.Println("\nguarantee below 2% — stopping.")
			break
		}
		shown, err := session.Show(4)
		if err != nil {
			log.Fatal(err)
		}
		if err := session.Choose(pick(shown)); err != nil {
			log.Fatal(err)
		}
	}

	est, err := session.EstimatedUtility()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlearned utility direction: %v\n", short(est))
	fmt.Printf("hidden utility direction:  %v (up to scale)\n", short(normalize(hidden)))
}

func short(p kregret.Point) string {
	s := "["
	for i, x := range p {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.2f", x)
	}
	return s + "]"
}

func normalize(w []float64) kregret.Point {
	var n float64
	for _, x := range w {
		n += x * x
	}
	n = math.Sqrt(n)
	out := make(kregret.Point, len(w))
	if n <= 0 {
		return out // degenerate all-zero weights
	}
	for i, x := range w {
		out[i] = x / n
	}
	return out
}

// generateHotels builds a synthetic hotel table with the usual
// trade-offs: central hotels cost more, high ratings cost more.
func generateHotels(n int) []kregret.Point {
	rng := rand.New(rand.NewSource(99))
	hs := make([]kregret.Point, n)
	for i := range hs {
		location := rng.Float64()
		rating := 0.3 + 0.7*rng.Float64()
		amenities := rng.Float64()
		cost := 0.2 + 0.45*location + 0.25*rating + 0.1*amenities + 0.15*rng.NormFloat64()
		value := 1.2 - cost // larger = cheaper
		if value < 0.05 {
			value = 0.05
		}
		hs[i] = kregret.Point{value, location + 0.01, rating, amenities + 0.01}
	}
	return hs
}
