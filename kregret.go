// Package kregret answers k-regret queries (maximum regret ratio
// minimization): given a database of d-dimensional tuples where
// larger is better on every attribute, select at most k tuples so
// that, for every linear utility function a user might hold, the best
// selected tuple is almost as good as the best tuple in the whole
// database.
//
// The package implements "Geometry Approach for k-Regret Query"
// (Peng Peng and Raymond Chi-Wing Wong, ICDE 2014): the happy-point
// candidate set, the GeoGreedy algorithm, and its materialized
// variant StoredList, together with the LP-based Greedy baseline of
// Nanongkai et al. (VLDB 2010) that the paper compares against.
//
// # Quick start
//
//	ds, err := kregret.NewDataset(points)        // normalizes to (0,1]
//	ans, err := ds.Query(10)                     // GeoGreedy over happy points
//	fmt.Println(ans.Indices, ans.MRR)            // ≤ 10 tuples, their regret
//
// For repeated queries over the same data, build the materialized
// index once:
//
//	idx, err := ds.BuildIndex()                  // StoredList preprocessing
//	ans, err := idx.Query(10)                    // O(k) per query
//
// See the examples directory for complete programs and DESIGN.md for
// the geometry behind the implementation.
package kregret

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/happy"
	"repro/internal/skyline"
)

// Point is one tuple: its coordinates on the d attributes, larger
// preferred on each.
type Point []float64

// Errors returned by the public API.
var (
	ErrNoPoints = errors.New("kregret: dataset has no points")
	ErrBadK     = errors.New("kregret: k must be at least 1")
)

// Algorithm selects which solver answers a query.
type Algorithm int

// Available algorithms.
const (
	// AlgoGeoGreedy is the paper's geometric greedy (default).
	AlgoGeoGreedy Algorithm = iota
	// AlgoGreedy is the LP-based baseline of Nanongkai et al. —
	// same answers, much slower; exists for benchmarking.
	AlgoGreedy
	// AlgoCube is the non-adaptive CUBE baseline of Nanongkai et al.:
	// essentially free to compute, provable (d−1)/(t+d−1) regret
	// bound, but much worse answers in practice.
	AlgoCube
)

func (a Algorithm) String() string {
	switch a {
	case AlgoGeoGreedy:
		return "GeoGreedy"
	case AlgoGreedy:
		return "Greedy"
	case AlgoCube:
		return "Cube"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// CandidateSet selects which filtered subset of the data the solver
// searches.
type CandidateSet int

// Available candidate sets.
const (
	// CandidatesHappy restricts the search to happy points — the
	// paper's contribution, optimal by its Lemma 2 and the smallest
	// of the three sets (default).
	CandidatesHappy CandidateSet = iota
	// CandidatesSkyline restricts to skyline points, the candidate
	// set of all pre-2014 work.
	CandidatesSkyline
	// CandidatesAll searches the raw dataset.
	CandidatesAll
)

func (c CandidateSet) String() string {
	switch c {
	case CandidatesHappy:
		return "happy"
	case CandidatesSkyline:
		return "skyline"
	case CandidatesAll:
		return "all"
	}
	return fmt.Sprintf("CandidateSet(%d)", int(c))
}

// Option customizes NewDataset or Query.
type Option func(*options)

type options struct {
	normalize  bool
	algorithm  Algorithm
	candidates CandidateSet
	workers    int
}

func defaultOptions() options {
	return options{normalize: true, algorithm: AlgoGeoGreedy, candidates: CandidatesHappy, workers: 1}
}

// WithParallelism makes the candidate-set preprocessing (skyline and
// happy-point extraction) use up to `workers` goroutines (0 means
// GOMAXPROCS). The query algorithms themselves stay sequential,
// mirroring the paper's implementation; preprocessing dominates the
// total time on large datasets and parallelizes exactly. Only
// meaningful as a NewDataset option.
func WithParallelism(workers int) Option { return func(o *options) { o.workers = workers } }

// WithoutNormalization makes NewDataset keep coordinates as given.
// The data must then already be strictly positive; the paper's
// max-per-dimension-equals-one convention is recommended but not
// required.
func WithoutNormalization() Option { return func(o *options) { o.normalize = false } }

// WithAlgorithm selects the query solver.
func WithAlgorithm(a Algorithm) Option { return func(o *options) { o.algorithm = a } }

// WithCandidates selects the candidate set the solver searches.
func WithCandidates(c CandidateSet) Option { return func(o *options) { o.candidates = c } }

// Dataset is an immutable collection of tuples prepared for k-regret
// queries. Candidate sets (skyline, happy, hull) are computed lazily
// and cached; a Dataset is not safe for concurrent use while those
// caches are still being filled — share it only after a first Query
// or after calling the accessor you need, or guard it externally.
type Dataset struct {
	pts     []geom.Vector
	sky     []int
	happy   []int
	conv    []int
	workers int
}

// NewDataset validates and (by default) normalizes the tuples so
// every attribute maximum is 1 and every coordinate is strictly
// positive, per the paper's conventions. The input is copied.
func NewDataset(points []Point, opts ...Option) (*Dataset, error) {
	o := defaultOptions()
	for _, f := range opts {
		f(&o)
	}
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	pts := make([]geom.Vector, len(points))
	for i, p := range points {
		pts[i] = geom.Vector(p).Clone()
	}
	if o.normalize {
		norm, err := dataset.Normalize(pts)
		if err != nil {
			return nil, fmt.Errorf("kregret: %w", err)
		}
		pts = norm
	}
	d := len(pts[0])
	for i, p := range pts {
		if len(p) != d {
			return nil, fmt.Errorf("kregret: point %d has dimension %d, want %d", i, len(p), d)
		}
		if !p.IsFinite() || !p.AllPositive() {
			return nil, fmt.Errorf("kregret: point %d (%v) must be finite and strictly positive (use normalization or shift your data)", i, p)
		}
	}
	return &Dataset{pts: pts, workers: o.workers}, nil
}

// Len returns the number of tuples.
func (d *Dataset) Len() int { return len(d.pts) }

// Dim returns the number of attributes.
func (d *Dataset) Dim() int { return len(d.pts[0]) }

// Point returns the (normalized) coordinates of tuple i.
func (d *Dataset) Point(i int) Point {
	return Point(d.pts[i].Clone())
}

// Skyline returns the indices of the skyline tuples (not dominated by
// any other tuple), computed once and cached.
func (d *Dataset) Skyline() ([]int, error) {
	if d.sky == nil {
		var sky []int
		var err error
		if d.workers == 1 {
			sky, err = skyline.Of(d.pts)
		} else {
			sky, err = skyline.ComputeParallel(d.pts, d.workers)
		}
		if err != nil {
			return nil, fmt.Errorf("kregret: %w", err)
		}
		d.sky = sky
	}
	return append([]int(nil), d.sky...), nil
}

// HappyPoints returns the indices of the happy tuples — the paper's
// candidate set, a subset of the skyline that still contains an
// optimal answer for every k (Lemma 2) — computed once and cached.
func (d *Dataset) HappyPoints() ([]int, error) {
	if d.happy == nil {
		if _, err := d.Skyline(); err != nil {
			return nil, err
		}
		if d.workers == 1 {
			d.happy = happy.ComputeAmongSkyline(d.pts, d.sky)
		} else {
			d.happy = happy.ComputeAmongSkylineParallel(d.pts, d.sky, d.workers)
		}
	}
	return append([]int(nil), d.happy...), nil
}

// ConvexPoints returns the indices of the tuples that are extreme
// points of the convex hull (D_conv in the paper), computed once and
// cached.
func (d *Dataset) ConvexPoints() ([]int, error) {
	if d.conv == nil {
		if _, err := d.HappyPoints(); err != nil {
			return nil, err
		}
		conv, err := core.ConvexAmongHappy(d.pts, d.happy)
		if err != nil {
			return nil, fmt.Errorf("kregret: %w", err)
		}
		d.conv = conv
	}
	return append([]int(nil), d.conv...), nil
}

// Answer is the result of a k-regret query.
type Answer struct {
	// Indices of the selected tuples in the original dataset, in
	// selection order.
	Indices []int
	// MRR is the maximum regret ratio of the selection over the
	// whole dataset and all linear utility functions.
	MRR float64
	// Algorithm and Candidates record how the answer was produced.
	Algorithm  Algorithm
	Candidates CandidateSet
}

// candidateIndices resolves the configured candidate set to dataset
// indices.
func (d *Dataset) candidateIndices(c CandidateSet) ([]int, error) {
	switch c {
	case CandidatesHappy:
		return d.HappyPoints()
	case CandidatesSkyline:
		return d.Skyline()
	case CandidatesAll:
		idx := make([]int, len(d.pts))
		for i := range idx {
			idx[i] = i
		}
		return idx, nil
	default:
		return nil, fmt.Errorf("kregret: unknown candidate set %v", c)
	}
}

// Query answers a k-regret query: at most k tuples minimizing (to
// the greedy heuristic's quality, matching the paper) the maximum
// regret ratio. The default configuration is GeoGreedy over happy
// points; use WithAlgorithm / WithCandidates to change it.
func (d *Dataset) Query(k int, opts ...Option) (*Answer, error) {
	o := defaultOptions()
	for _, f := range opts {
		f(&o)
	}
	if k < 1 {
		return nil, ErrBadK
	}
	cand, err := d.candidateIndices(o.candidates)
	if err != nil {
		return nil, err
	}
	candPts, err := core.Select(d.pts, cand)
	if err != nil {
		return nil, fmt.Errorf("kregret: %w", err)
	}
	var res *core.Result
	switch o.algorithm {
	case AlgoGeoGreedy:
		res, err = core.GeoGreedy(candPts, k)
	case AlgoGreedy:
		res, err = core.Greedy(candPts, k)
	case AlgoCube:
		res, err = core.Cube(candPts, k)
	default:
		return nil, fmt.Errorf("kregret: unknown algorithm %v", o.algorithm)
	}
	if err != nil {
		return nil, fmt.Errorf("kregret: %w", err)
	}
	ans := &Answer{
		Indices:    make([]int, len(res.Indices)),
		MRR:        res.MRR,
		Algorithm:  o.algorithm,
		Candidates: o.candidates,
	}
	for i, ci := range res.Indices {
		ans.Indices[i] = cand[ci]
	}
	return ans, nil
}

// EvaluateMRR computes the exact maximum regret ratio of an arbitrary
// selection (dataset indices) over the whole dataset, using the
// paper's Lemma 1.
func (d *Dataset) EvaluateMRR(selection []int) (float64, error) {
	mrr, err := core.MRRGeometric(d.pts, selection)
	if err != nil {
		return 0, fmt.Errorf("kregret: %w", err)
	}
	return mrr, nil
}

// RegretOf computes the regret ratio of a selection for one specific
// linear utility function given by its non-negative weight vector.
func (d *Dataset) RegretOf(selection []int, weights Point) (float64, error) {
	r, err := core.RegretOf(d.pts, selection, geom.Vector(weights))
	if err != nil {
		return 0, fmt.Errorf("kregret: %w", err)
	}
	return r, nil
}

// AverageRegret estimates the mean regret ratio of a selection over
// utility functions drawn uniformly from the non-negative unit
// sphere (a Monte-Carlo extension beyond the paper).
func (d *Dataset) AverageRegret(selection []int, samples int, seed int64) (float64, error) {
	r, err := core.AverageRegretSampled(d.pts, selection, samples, seed)
	if err != nil {
		return 0, fmt.Errorf("kregret: %w", err)
	}
	return r, nil
}

// WorstUtility returns a linear utility function (unit weight vector)
// achieving the selection's maximum regret ratio, together with the
// dataset index of the witness tuple the user would have preferred.
// Witness is −1 when the regret is zero.
func (d *Dataset) WorstUtility(selection []int) (weights Point, witness int, err error) {
	w, wit, err := core.WorstUtility(d.pts, selection)
	if err != nil {
		return nil, -1, fmt.Errorf("kregret: %w", err)
	}
	return Point(w), wit, nil
}

// Index is the materialized StoredList of the paper's Section IV-B:
// one expensive preprocessing pass, then O(k) per query.
type Index struct {
	list *core.StoredList
	cand []int
}

// BuildIndex runs the StoredList preprocessing over the happy points.
// The returned Index is immutable and safe for concurrent queries.
func (d *Dataset) BuildIndex() (*Index, error) {
	return d.buildIndex(0)
}

// BuildIndexUpTo materializes the index only up to queries of size
// maxK — a fraction of the full preprocessing cost on large frontier
// sets. Queries with k > maxK return an error unless the greedy
// exhausted the hull earlier (zero regret reached).
func (d *Dataset) BuildIndexUpTo(maxK int) (*Index, error) {
	if maxK < 1 {
		return nil, ErrBadK
	}
	return d.buildIndex(maxK)
}

func (d *Dataset) buildIndex(maxK int) (*Index, error) {
	cand, err := d.HappyPoints()
	if err != nil {
		return nil, err
	}
	candPts, err := core.Select(d.pts, cand)
	if err != nil {
		return nil, fmt.Errorf("kregret: %w", err)
	}
	var list *core.StoredList
	if maxK <= 0 {
		list, err = core.BuildStoredList(candPts)
	} else {
		list, err = core.BuildStoredListUpTo(candPts, maxK)
	}
	if err != nil {
		return nil, fmt.Errorf("kregret: %w", err)
	}
	return &Index{list: list, cand: cand}, nil
}

// Query answers a k-regret query from the materialized list. The
// answer equals Dataset.Query with GeoGreedy over happy points.
func (x *Index) Query(k int) (*Answer, error) {
	if k < 1 {
		return nil, ErrBadK
	}
	sel, err := x.list.Query(k)
	if err != nil {
		return nil, fmt.Errorf("kregret: %w", err)
	}
	mrr, err := x.list.MRRFor(k)
	if err != nil {
		return nil, fmt.Errorf("kregret: %w", err)
	}
	ans := &Answer{
		Indices:    make([]int, len(sel)),
		MRR:        mrr,
		Algorithm:  AlgoGeoGreedy,
		Candidates: CandidatesHappy,
	}
	for i, ci := range sel {
		ans.Indices[i] = x.cand[ci]
	}
	return ans, nil
}

// Len returns the materialized list length (the k beyond which every
// answer has zero regret).
func (x *Index) Len() int { return x.list.Len() }

// MinSize answers the min-size dual query: the smallest k such that
// Query(k) has maximum regret ratio at most eps. The second return
// value is false when even the full index exceeds eps (only possible
// for partially materialized indexes built with BuildIndexUpTo).
func (x *Index) MinSize(eps float64) (int, bool) {
	return x.list.MinK(eps)
}
