// Package kregret answers k-regret queries (maximum regret ratio
// minimization): given a database of d-dimensional tuples where
// larger is better on every attribute, select at most k tuples so
// that, for every linear utility function a user might hold, the best
// selected tuple is almost as good as the best tuple in the whole
// database.
//
// The package implements "Geometry Approach for k-Regret Query"
// (Peng Peng and Raymond Chi-Wing Wong, ICDE 2014): the happy-point
// candidate set, the GeoGreedy algorithm, and its materialized
// variant StoredList, together with the LP-based Greedy baseline of
// Nanongkai et al. (VLDB 2010) that the paper compares against.
//
// # Quick start
//
//	ds, err := kregret.NewDataset(points)        // normalizes to (0,1]
//	ans, err := ds.Query(10)                     // GeoGreedy over happy points
//	fmt.Println(ans.Indices, ans.MRR)            // ≤ 10 tuples, their regret
//
// For repeated queries over the same data, build the materialized
// index once:
//
//	idx, err := ds.BuildIndex()                  // StoredList preprocessing
//	ans, err := idx.Query(10)                    // O(k) per query
//
// # Robustness
//
// Every query runs inside a hardened execution layer. QueryContext
// and the other *Context variants thread a context.Context through
// the geometric hot loops, so deadlines and cancellation stop even
// pathological hulls within one scan batch. Residual panics in the
// geometry core are converted into a typed *NumericalError instead of
// killing the process, and when GeoGreedy's hull machinery fails
// numerically the query degrades gracefully — a deterministic
// epsilon-perturbed retry, then the LP Greedy baseline, then Cube —
// with the degradation recorded in Answer.Degraded and
// Answer.FallbackReason (opt out with WithoutFallback). See
// DESIGN.md §9 for the full failure model.
//
// # Serving
//
// For many concurrent callers, NewEngine wraps a Dataset in a serving
// layer: a bounded worker pool with a bounded wait queue sheds
// over-capacity work (ErrOverloaded) and deadline-doomed work
// (ErrShed) before any geometry runs, per-query wall-clock budgets
// ride the context plumbing, and per-(algorithm, dimension) circuit
// breakers route repeated numerical degradations straight to the Cube
// fallback until a cooldown probe succeeds. Index snapshots persist
// crash-safely (SaveFile/LoadFile: atomic rename + fsync + CRC-32C
// trailer, damage surfacing as ErrCorruptIndex), and an Engine built
// with WithSnapshot falls back from a corrupt snapshot to a rebuild.
// See DESIGN.md §10 for the serving model.
//
// See the examples directory for complete programs and DESIGN.md for
// the geometry behind the implementation.
package kregret

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/coreset"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/happy"
	"repro/internal/parallel"
	"repro/internal/skyline"
	"repro/internal/wal"
)

// Point is one tuple: its coordinates on the d attributes, larger
// preferred on each.
type Point []float64

// Errors returned by the public API.
var (
	ErrNoPoints = errors.New("kregret: dataset has no points")
	ErrBadK     = errors.New("kregret: k must be at least 1")
)

// NumericalError reports that the geometry core failed numerically —
// a NaN critical ratio, a degenerate dual polytope, a cycling simplex
// tableau, or a recovered panic — while answering a query. It carries
// enough context to reproduce the failure. When the degradation chain
// is enabled (the default) a NumericalError surfaces only after every
// fallback stage failed too; Unwrap then yields the joined per-stage
// errors.
type NumericalError struct {
	// Op names the public operation that failed ("Query",
	// "EvaluateMRR", "BuildIndex", …).
	Op string
	// Algorithm, K and Candidates record the query configuration.
	Algorithm  Algorithm
	K          int
	Candidates CandidateSet
	// NumCandidates is the size of the candidate set the solver ran
	// on (0 when the failure happened outside a solver run).
	NumCandidates int
	// PanicValue holds the recovered panic value when the failure was
	// a panic in the geometry core, nil otherwise.
	PanicValue any
	// Err is the underlying error (nil for a bare recovered panic).
	Err error
}

func (e *NumericalError) Error() string {
	head := fmt.Sprintf("kregret: %s with %v (k=%d, %d %v candidates)",
		e.Op, e.Algorithm, e.K, e.NumCandidates, e.Candidates)
	switch {
	case e.PanicValue != nil:
		return fmt.Sprintf("%s panicked: %v", head, e.PanicValue)
	case e.Err != nil:
		return fmt.Sprintf("%s failed numerically: %v", head, e.Err)
	}
	return head + " failed numerically"
}

// Unwrap exposes the underlying error chain for errors.Is/As.
func (e *NumericalError) Unwrap() error { return e.Err }

// Algorithm selects which solver answers a query.
type Algorithm int

// Available algorithms.
const (
	// AlgoGeoGreedy is the paper's geometric greedy (default).
	AlgoGeoGreedy Algorithm = iota
	// AlgoGreedy is the LP-based baseline of Nanongkai et al. —
	// same answers, much slower; exists for benchmarking.
	AlgoGreedy
	// AlgoCube is the non-adaptive CUBE baseline of Nanongkai et al.:
	// essentially free to compute, provable (d−1)/(t+d−1) regret
	// bound, but much worse answers in practice.
	AlgoCube
)

func (a Algorithm) String() string {
	switch a {
	case AlgoGeoGreedy:
		return "GeoGreedy"
	case AlgoGreedy:
		return "Greedy"
	case AlgoCube:
		return "Cube"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// CandidateSet selects which filtered subset of the data the solver
// searches.
type CandidateSet int

// Available candidate sets.
const (
	// CandidatesHappy restricts the search to happy points — the
	// paper's contribution, optimal by its Lemma 2 and the smallest
	// of the three sets (default).
	CandidatesHappy CandidateSet = iota
	// CandidatesSkyline restricts to skyline points, the candidate
	// set of all pre-2014 work.
	CandidatesSkyline
	// CandidatesAll searches the raw dataset.
	CandidatesAll
)

func (c CandidateSet) String() string {
	switch c {
	case CandidatesHappy:
		return "happy"
	case CandidatesSkyline:
		return "skyline"
	case CandidatesAll:
		return "all"
	}
	return fmt.Sprintf("CandidateSet(%d)", int(c))
}

// Option customizes NewDataset or Query.
type Option func(*options)

type options struct {
	normalize  bool
	algorithm  Algorithm
	candidates CandidateSet
	workers    int
	fallback   bool
	pruning    bool
	coresetEps float64
	walPath    string
	walSnap    string
	syncEvery  int
}

// validateCoreset rejects ε-kernel tolerances outside [0, 1) before
// any state is built (0 keeps the coreset layer disabled).
func (o *options) validateCoreset() error {
	if math.IsNaN(o.coresetEps) || o.coresetEps < 0 || o.coresetEps >= 1 {
		return fmt.Errorf("kregret: coreset eps must be in [0, 1), got %v", o.coresetEps)
	}
	return nil
}

func defaultOptions() options {
	return options{normalize: true, algorithm: AlgoGeoGreedy, candidates: CandidatesHappy, workers: 0, fallback: true, pruning: true}
}

// WithParallelism bounds the intra-query parallelism at `workers`
// goroutines: the candidate-set preprocessing (skyline and happy-point
// extraction) and the solvers' hot loops — GeoGreedy's support scans
// and re-location passes, Greedy's per-candidate LP solves, the exact
// and sampled regret evaluations — all fan out up to this width. The
// default 0 means the process default (GOMAXPROCS, overridable once
// via the KREGRET_PARALLELISM environment variable); 1 is the exact
// sequential path. Answers are byte-identical for every setting — the
// fan-out uses deterministic index-ordered reductions — so the knob
// trades only wall-clock against CPU.
//
// As a NewDataset option it sets the dataset-wide default; as a Query
// option it overrides that default for one query.
func WithParallelism(workers int) Option { return func(o *options) { o.workers = workers } }

// WithoutNormalization makes NewDataset keep coordinates as given.
// The data must then already be strictly positive; the paper's
// max-per-dimension-equals-one convention is recommended but not
// required.
func WithoutNormalization() Option { return func(o *options) { o.normalize = false } }

// WithAlgorithm selects the query solver.
func WithAlgorithm(a Algorithm) Option { return func(o *options) { o.algorithm = a } }

// WithCandidates selects the candidate set the solver searches.
func WithCandidates(c CandidateSet) Option { return func(o *options) { o.candidates = c } }

// WithPruning toggles extreme-set pruning in the evaluators
// (EvaluateMRR, RegretOf, AverageRegret, WorstUtility): when on (the
// default), the "max over the dataset" side of every evaluation scans
// only the skyline points. The results are bit-identical — for any
// non-negative utility the dataset maximum is attained at a skyline
// point with the same float64 value (DESIGN.md §12) — so the toggle
// exists for the differential test suite and for measuring the
// pruning win itself, not because the answers differ.
//
// It is a NewDataset option; as a Query option it has no effect
// (queries already run over filtered candidate sets).
func WithPruning(on bool) Option { return func(o *options) { o.pruning = on } }

// WithCoreset makes the dataset serve happy-point queries from an
// ε-kernel coreset: a subset of the happy points whose maximum regret
// ratio against the full candidate set is at most eps (see DESIGN.md
// §17). Query (with the default CandidatesHappy), BuildIndex and the
// samplers then search the core instead of the full candidate set, so
// their cost depends on eps and the hull geometry rather than on n —
// the scale knob for very large datasets. The price is bounded
// approximation: a selection's true regret over the whole dataset
// exceeds the reported (core-measured) value by at most eps.
//
// eps = 0 (the default) disables the layer — every answer is exactly
// the full happy-point answer. eps outside [0, 1) is rejected by
// NewDataset. CandidatesSkyline and CandidatesAll queries ignore the
// core (they exist to reproduce the paper's exact baselines).
//
// Only a NewDataset/Recover option; as a Query option it has no
// effect. The core is built lazily per epoch — mutations invalidate it
// like every other candidate cache — and can be inspected with
// Dataset.Coreset.
func WithCoreset(eps float64) Option { return func(o *options) { o.coresetEps = eps } }

// WithoutFallback disables the degradation chain: a numerical failure
// of the configured algorithm surfaces as a *NumericalError instead
// of being retried with perturbed candidates and weaker algorithms.
// Use it when a degraded answer is worse than no answer (e.g. when
// measuring the algorithms themselves).
func WithoutFallback() Option { return func(o *options) { o.fallback = false } }

// Dataset is a collection of tuples prepared for k-regret queries.
// Reads are served from an immutable epoch: the points plus their
// lazily computed candidate sets (skyline, happy, hull), each behind
// its own sync.Once, so a Dataset is safe for concurrent use by
// multiple goroutines from the moment NewDataset returns — concurrent
// first calls simply share one computation.
//
// Insert and Delete mutate by copy-on-write: each publishes a fresh
// epoch atomically, so readers that started earlier keep computing on
// the epoch they loaded and never observe a half-applied mutation.
// With WithWAL, every mutation is appended to a write-ahead log (and
// fsynced) before it is applied, and Recover rebuilds the exact
// pre-crash state from the last snapshot plus the log.
type Dataset struct {
	workers int
	pruning bool

	// state is the current epoch. Readers load it once per operation
	// (see snap) and do all their work against that one epoch.
	state atomic.Pointer[dsState]

	// muMut serializes mutations: WAL append order, sequence numbers
	// and epoch publication all agree because only one mutation is in
	// flight at a time.
	muMut     sync.Mutex
	wal       *wal.Log // nil without WithWAL
	walSnap   string   // dataset snapshot path for Compact
	walClosed bool     // Close was called; mutations return ErrClosed
}

// dsState is one immutable epoch of a Dataset: the points plus every
// lazily computed candidate-set cache. A published state is never
// modified again — mutations build a new one — so the caches stay
// valid for as long as any reader holds the epoch.
type dsState struct {
	pts        []geom.Vector
	seq        uint64 // last mutation folded into this epoch
	workers    int
	pruning    bool
	coresetEps float64 // 0 = coreset layer disabled

	evalOnce sync.Once
	eval     *core.EvalIndex
	evalErr  error

	skyOnce sync.Once
	sky     []int
	skyErr  error
	// skyDone is set (after skyOnce completes without error) so the
	// mutation path can tell "cache ready" apart from "never asked
	// for" without triggering the computation itself — only ready
	// caches are folded incrementally into the successor epoch.
	skyDone atomic.Bool

	happyOnce sync.Once
	happy     []int
	cert      *happy.Cert // witness certificate backing the happy set
	happyErr  error
	happyDone atomic.Bool

	convOnce sync.Once
	conv     []int
	convErr  error

	coreOnce sync.Once
	coreIdx  []int
	coreMRR  float64
	coreErr  error
}

func newState(pts []geom.Vector, seq uint64, workers int, pruning bool, coresetEps float64) *dsState {
	return &dsState{pts: pts, seq: seq, workers: workers, pruning: pruning, coresetEps: coresetEps}
}

// snap returns the current epoch. Every public operation loads it
// exactly once and works against that one state, so a concurrent
// mutation can never split a query across two epochs.
func (d *Dataset) snap() *dsState { return d.state.Load() }

// newDatasetFromVectors finishes Dataset construction from validated,
// already-normalized vectors (shared by NewDataset and Recover).
func newDatasetFromVectors(pts []geom.Vector, seq uint64, o options) *Dataset {
	d := &Dataset{workers: o.workers, pruning: o.pruning}
	d.state.Store(newState(pts, seq, o.workers, o.pruning, o.coresetEps))
	return d
}

// validateVectors checks the dataset invariants every epoch must hold:
// uniform dimension, finite and strictly positive coordinates.
func validateVectors(pts []geom.Vector) error {
	d := len(pts[0])
	for i, p := range pts {
		if len(p) != d {
			return fmt.Errorf("kregret: point %d has dimension %d, want %d", i, len(p), d)
		}
		if !p.IsFinite() || !p.AllPositive() {
			return fmt.Errorf("kregret: point %d (%v) must be finite and strictly positive (use normalization or shift your data)", i, p)
		}
	}
	return nil
}

// NewDataset validates and (by default) normalizes the tuples so
// every attribute maximum is 1 and every coordinate is strictly
// positive, per the paper's conventions. The input is copied.
func NewDataset(points []Point, opts ...Option) (*Dataset, error) {
	o := defaultOptions()
	for _, f := range opts {
		f(&o)
	}
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	pts := make([]geom.Vector, len(points))
	for i, p := range points {
		pts[i] = geom.Vector(p).Clone()
	}
	if o.normalize {
		norm, err := dataset.Normalize(pts)
		if err != nil {
			return nil, fmt.Errorf("kregret: %w", err)
		}
		pts = norm
	}
	if err := validateVectors(pts); err != nil {
		return nil, err
	}
	if err := o.validateCoreset(); err != nil {
		return nil, err
	}
	d := newDatasetFromVectors(pts, 0, o)
	if o.walPath != "" {
		if err := d.attachWAL(o); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// evalIndex lazily builds the epoch's evaluation index: the points
// flattened into one contiguous matrix plus (with pruning on) the
// skyline as the extreme set the evaluators scan. Built once behind a
// sync.Once; concurrent first callers share the computation, and the
// skyline itself is reused from — or seeds — the skyline cache.
func (s *dsState) evalIndex() (*core.EvalIndex, error) {
	s.evalOnce.Do(func() {
		x, err := core.NewEvalIndex(s.pts)
		if err != nil {
			s.evalErr = fmt.Errorf("kregret: %w", err)
			return
		}
		if s.pruning {
			sky, err := s.skyline()
			if err != nil {
				s.evalErr = err
				return
			}
			if err := x.SetExtreme(sky); err != nil {
				s.evalErr = fmt.Errorf("kregret: %w", err)
				return
			}
		}
		s.eval = x
	})
	return s.eval, s.evalErr
}

// seedSkyline installs precomputed skyline indices (from a snapshot)
// into the current epoch's lazy cache, so loading an index does not
// recompute the skyline pass. A no-op if the skyline was already
// computed.
func (d *Dataset) seedSkyline(sky []int) {
	s := d.snap()
	s.skyOnce.Do(func() {
		s.sky = append([]int(nil), sky...)
		s.skyDone.Store(true)
	})
}

// Len returns the number of tuples.
func (d *Dataset) Len() int { return len(d.snap().pts) }

// Dim returns the number of attributes.
func (d *Dataset) Dim() int { return len(d.snap().pts[0]) }

// Point returns the (normalized) coordinates of tuple i.
func (d *Dataset) Point(i int) Point {
	return Point(d.snap().pts[i].Clone())
}

// skyline returns the epoch's cached skyline indices (shared, not
// copied — callers must not modify the slice).
func (s *dsState) skyline() ([]int, error) {
	s.skyOnce.Do(func() {
		if parallel.Resolve(s.workers) == 1 {
			s.sky, s.skyErr = skyline.Of(s.pts)
		} else {
			s.sky, s.skyErr = skyline.ComputeParallel(s.pts, s.workers)
		}
		if s.skyErr != nil {
			s.skyErr = fmt.Errorf("kregret: %w", s.skyErr)
			return
		}
		s.skyDone.Store(true)
	})
	if s.skyErr != nil {
		return nil, s.skyErr
	}
	return s.sky, nil
}

// Skyline returns the indices of the skyline tuples (not dominated by
// any other tuple), computed once per epoch and cached; concurrent
// callers share the computation.
func (d *Dataset) Skyline() ([]int, error) {
	sky, err := d.snap().skyline()
	if err != nil {
		return nil, err
	}
	return append([]int(nil), sky...), nil
}

// happyPoints returns the epoch's cached happy indices (shared, not
// copied).
func (s *dsState) happyPoints() ([]int, error) {
	s.happyOnce.Do(func() {
		sky, err := s.skyline()
		if err != nil {
			s.happyErr = err
			return
		}
		s.cert = happy.ComputeAmongSkylineCertParallel(s.pts, sky, parallel.Resolve(s.workers))
		s.happy = s.cert.HappyPoints()
		s.happyDone.Store(true)
	})
	if s.happyErr != nil {
		return nil, s.happyErr
	}
	return s.happy, nil
}

// HappyPoints returns the indices of the happy tuples — the paper's
// candidate set, a subset of the skyline that still contains an
// optimal answer for every k (Lemma 2) — computed once per epoch and
// cached; concurrent callers share the computation.
func (d *Dataset) HappyPoints() ([]int, error) {
	h, err := d.snap().happyPoints()
	if err != nil {
		return nil, err
	}
	return append([]int(nil), h...), nil
}

// coreset returns the epoch's cached ε-kernel indices and the
// kernel's regret ratio against the happy points (shared slice, not
// copied). With the layer disabled it is exactly the happy set.
func (s *dsState) coreset() ([]int, float64, error) {
	return s.coresetCtx(context.Background())
}

// coresetCtx is coreset with the (first) construction bounded by ctx.
// Like every per-epoch cache it computes once: a canceled first build
// poisons the cache with the cancellation error, exactly as a
// numerical failure would.
func (s *dsState) coresetCtx(ctx context.Context) ([]int, float64, error) {
	s.coreOnce.Do(func() {
		hp, err := s.happyPoints()
		if err != nil {
			s.coreErr = err
			return
		}
		idx, mrr, err := coreset.Build(ctx, s.pts, hp, s.coresetEps, parallel.Resolve(s.workers))
		if err != nil {
			s.coreErr = fmt.Errorf("kregret: %w", err)
			return
		}
		s.coreIdx, s.coreMRR = idx, mrr
	})
	if s.coreErr != nil {
		return nil, 0, s.coreErr
	}
	return s.coreIdx, s.coreMRR, nil
}

// Coreset returns the indices of the ε-kernel core the dataset serves
// happy-point queries from, together with the core's maximum regret
// ratio measured against the full happy-point candidate set (≤ the
// configured eps). Without WithCoreset it returns the happy points and
// a zero ratio. Computed once per epoch and cached; concurrent callers
// share the computation.
func (d *Dataset) Coreset() ([]int, float64, error) {
	idx, mrr, err := d.snap().coreset()
	if err != nil {
		return nil, 0, err
	}
	return append([]int(nil), idx...), mrr, nil
}

// convexPoints returns the epoch's cached hull-extreme indices
// (shared, not copied).
func (s *dsState) convexPoints() ([]int, error) {
	s.convOnce.Do(func() {
		h, err := s.happyPoints()
		if err != nil {
			s.convErr = err
			return
		}
		conv, err := core.ConvexAmongHappy(s.pts, h)
		if err != nil {
			s.convErr = fmt.Errorf("kregret: %w", err)
			return
		}
		s.conv = conv
	})
	if s.convErr != nil {
		return nil, s.convErr
	}
	return s.conv, nil
}

// ConvexPoints returns the indices of the tuples that are extreme
// points of the convex hull (D_conv in the paper), computed once per
// epoch and cached; concurrent callers share the computation.
func (d *Dataset) ConvexPoints() ([]int, error) {
	conv, err := d.snap().convexPoints()
	if err != nil {
		return nil, err
	}
	return append([]int(nil), conv...), nil
}

// Answer is the result of a k-regret query.
type Answer struct {
	// Indices of the selected tuples in the original dataset, in
	// selection order.
	Indices []int
	// MRR is the maximum regret ratio of the selection over the
	// whole dataset and all linear utility functions.
	MRR float64
	// Algorithm and Candidates record how the answer was produced.
	// After a degraded query, Algorithm is the solver that actually
	// answered, not the one requested.
	Algorithm  Algorithm
	Candidates CandidateSet
	// Degraded reports that the requested solver failed numerically
	// and the answer came from the degradation chain (perturbed
	// retry, then Greedy, then Cube). FallbackReason says which stage
	// answered and why the earlier stages failed.
	Degraded       bool
	FallbackReason string
}

// candidateIndices resolves the configured candidate set to epoch
// indices.
func (s *dsState) candidateIndices(c CandidateSet) ([]int, error) {
	switch c {
	case CandidatesHappy:
		if s.coresetEps > 0 {
			idx, _, err := s.coreset()
			return idx, err
		}
		return s.happyPoints()
	case CandidatesSkyline:
		return s.skyline()
	case CandidatesAll:
		idx := make([]int, len(s.pts))
		for i := range idx {
			idx[i] = i
		}
		return idx, nil
	default:
		return nil, fmt.Errorf("kregret: unknown candidate set %v", c)
	}
}

// Query answers a k-regret query: at most k tuples minimizing (to
// the greedy heuristic's quality, matching the paper) the maximum
// regret ratio. The default configuration is GeoGreedy over happy
// points; use WithAlgorithm / WithCandidates to change it.
func (d *Dataset) Query(k int, opts ...Option) (*Answer, error) {
	return d.QueryContext(context.Background(), k, opts...)
}

// QueryContext is Query bounded by a context: cancellation and
// deadlines propagate into the geometric hot loops (hull insertions,
// candidate scans, simplex pivot batches), so the call returns an
// error wrapping ctx.Err() shortly after the context ends instead of
// running to completion. An already-expired context returns before
// any work is done.
func (d *Dataset) QueryContext(ctx context.Context, k int, opts ...Option) (*Answer, error) {
	o := defaultOptions()
	o.workers = d.workers // dataset-wide default, overridable per query
	for _, f := range opts {
		f(&o)
	}
	if k < 1 {
		return nil, ErrBadK
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("kregret: query canceled: %w", err)
	}
	st := d.snap()
	cand, err := st.candidateIndices(o.candidates)
	if err != nil {
		return nil, err
	}
	candPts, err := core.Select(st.pts, cand)
	if err != nil {
		return nil, fmt.Errorf("kregret: %w", err)
	}
	res, deg, err := solveWithFallback(ctx, &o, candPts, k)
	if err != nil {
		return nil, err
	}
	ans := &Answer{
		Indices:        make([]int, len(res.Indices)),
		MRR:            res.MRR,
		Algorithm:      deg.algorithm,
		Candidates:     o.candidates,
		Degraded:       deg.degraded,
		FallbackReason: deg.reason,
	}
	for i, ci := range res.Indices {
		ans.Indices[i] = cand[ci]
	}
	return ans, nil
}

// degradation records which solver finally answered and why earlier
// stages failed.
type degradation struct {
	algorithm Algorithm
	degraded  bool
	reason    string
}

// solveWithFallback runs the configured solver behind the panic
// boundary and, when it fails numerically and fallback is enabled,
// walks the degradation chain: one deterministic epsilon-perturbed
// retry of the same solver, then each strictly more robust (and
// strictly weaker or slower) algorithm below it — Greedy, then Cube.
// Cancellation and invalid-input errors are never retried.
func solveWithFallback(ctx context.Context, o *options, candPts []geom.Vector, k int) (*core.Result, degradation, error) {
	res, err := runSolver(ctx, o.algorithm, candPts, k, o.candidates, o.workers)
	if err == nil {
		return res, degradation{algorithm: o.algorithm}, nil
	}
	if !o.fallback || !retriable(err) {
		return nil, degradation{}, err
	}
	failures := []error{fmt.Errorf("%v: %w", o.algorithm, err)}

	// Stage 1: same solver over deterministically perturbed
	// candidates — a ~1e-9 relative nudge resolves exact-degeneracy
	// ties (coplanar points, duplicate coordinates) without moving
	// any regret ratio beyond float noise.
	if res, err2 := runSolver(ctx, o.algorithm, perturbed(candPts), k, o.candidates, o.workers); err2 == nil {
		return res, degradation{
			algorithm: o.algorithm,
			degraded:  true,
			reason:    fmt.Sprintf("%v retried with epsilon perturbation after: %v", o.algorithm, err),
		}, nil
	} else if !retriable(err2) {
		return nil, degradation{}, err2
	} else {
		failures = append(failures, fmt.Errorf("%v (perturbed): %w", o.algorithm, err2))
	}

	// Stage 2: progressively cheaper/more robust algorithms. The
	// chain preserves answer semantics (same candidate set, same k)
	// at decreasing answer quality: Greedy reaches the same selection
	// through LPs with no incremental hull state; Cube is non-
	// adaptive arithmetic that cannot fail numerically.
	for _, alg := range fallbackChain(o.algorithm) {
		res, err2 := runSolver(ctx, alg, candPts, k, o.candidates, o.workers)
		if err2 == nil {
			return res, degradation{
				algorithm: alg,
				degraded:  true,
				reason:    fmt.Sprintf("fell back to %v after: %v", alg, errors.Join(failures...)),
			}, nil
		}
		if !retriable(err2) {
			return nil, degradation{}, err2
		}
		failures = append(failures, fmt.Errorf("%v: %w", alg, err2))
	}
	return nil, degradation{}, &NumericalError{
		Op:            "Query",
		Algorithm:     o.algorithm,
		K:             k,
		Candidates:    o.candidates,
		NumCandidates: len(candPts),
		Err:           errors.Join(failures...),
	}
}

// fallbackChain lists the algorithms tried after alg fails, in order.
func fallbackChain(alg Algorithm) []Algorithm {
	switch alg {
	case AlgoGeoGreedy:
		return []Algorithm{AlgoGreedy, AlgoCube}
	case AlgoGreedy:
		return []Algorithm{AlgoCube}
	}
	return nil
}

// retriable reports whether the degradation chain may continue past
// err: numerical failures and recovered panics qualify; cancellation
// and invalid input never do.
func retriable(err error) bool {
	if core.IsNumerical(err) {
		return true
	}
	var ne *NumericalError
	return errors.As(err, &ne) && ne.PanicValue != nil &&
		!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// runSolver executes one solver over the candidate points inside the
// panic boundary: a panic anywhere in the geometry core — including
// one recaptured from a parallel worker goroutine and re-raised here —
// surfaces as a *NumericalError instead of unwinding into the caller's
// goroutine.
func runSolver(ctx context.Context, alg Algorithm, candPts []geom.Vector, k int, cs CandidateSet, workers int) (res *core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = &NumericalError{
				Op:            "Query",
				Algorithm:     alg,
				K:             k,
				Candidates:    cs,
				NumCandidates: len(candPts),
				PanicValue:    r,
			}
		}
	}()
	switch alg {
	case AlgoGeoGreedy:
		res, err = core.GeoGreedyParCtx(ctx, candPts, k, workers)
	case AlgoGreedy:
		res, err = core.GreedyParCtx(ctx, candPts, k, workers)
	case AlgoCube:
		res, err = core.CubeCtx(ctx, candPts, k)
	default:
		return nil, fmt.Errorf("kregret: unknown algorithm %v", alg)
	}
	if err != nil {
		return nil, fmt.Errorf("kregret: %w", err)
	}
	return res, nil
}

// perturbed returns a copy of pts with every coordinate scaled by
// 1 + ε·h(i,j), where h is a fixed integer hash mapped into [−1, 1]
// and ε = 1e-9. The perturbation is deterministic (retries are
// reproducible), preserves strict positivity and finiteness, and is
// far below every tolerance used by the solvers — it exists only to
// break exact ties that trip degenerate code paths.
func perturbed(pts []geom.Vector) []geom.Vector {
	const eps = 1e-9
	out := make([]geom.Vector, len(pts))
	for i, p := range pts {
		q := make(geom.Vector, len(p))
		for j, x := range p {
			h := float64((i*2654435761+j*40503)%2047-1023) / 1023
			q[j] = x * (1 + eps*h)
		}
		out[i] = q
	}
	return out
}

// protect runs fn inside the panic boundary, converting a panic in
// the geometry core into a *NumericalError for the named operation.
func (d *Dataset) protect(op string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &NumericalError{Op: op, PanicValue: r}
		}
	}()
	return fn()
}

// EvaluateMRR computes the exact maximum regret ratio of an arbitrary
// selection (dataset indices) over the whole dataset, using the
// paper's Lemma 1.
func (d *Dataset) EvaluateMRR(selection []int) (float64, error) {
	return d.EvaluateMRRContext(context.Background(), selection)
}

// EvaluateMRRContext is EvaluateMRR bounded by a context (see
// QueryContext for the cancellation granularity). The per-point
// support scan fans out over the dataset's parallelism (see
// WithParallelism); the result is identical for every width.
func (d *Dataset) EvaluateMRRContext(ctx context.Context, selection []int) (float64, error) {
	x, err := d.snap().evalIndex()
	if err != nil {
		return 0, err
	}
	var mrr float64
	err = d.protect("EvaluateMRR", func() error {
		m, err := x.MRRGeometricParCtx(ctx, selection, d.workers)
		if err != nil {
			return fmt.Errorf("kregret: %w", err)
		}
		mrr = m
		return nil
	})
	if err != nil {
		return 0, err
	}
	return mrr, nil
}

// RegretOf computes the regret ratio of a selection for one specific
// linear utility function given by its non-negative weight vector.
func (d *Dataset) RegretOf(selection []int, weights Point) (float64, error) {
	if err := d.validateWeights(weights); err != nil {
		return 0, err
	}
	x, err := d.snap().evalIndex()
	if err != nil {
		return 0, err
	}
	var ratio float64
	err = d.protect("RegretOf", func() error {
		r, err := x.RegretOf(selection, geom.Vector(weights))
		if err != nil {
			return fmt.Errorf("kregret: %w", err)
		}
		ratio = r
		return nil
	})
	if err != nil {
		return 0, err
	}
	return ratio, nil
}

// validateWeights rejects weight vectors of the wrong dimension or
// with non-finite components before they reach the geometry core —
// the core's dot products assume validated input and panic on
// dimension mismatches.
func (d *Dataset) validateWeights(weights Point) error {
	if len(weights) != d.Dim() {
		return fmt.Errorf("kregret: utility weights: %w: %d vs %d",
			geom.ErrDimensionMismatch, d.Dim(), len(weights))
	}
	if !geom.Vector(weights).IsFinite() {
		return fmt.Errorf("kregret: utility weights must be finite, got %v", geom.Vector(weights))
	}
	return nil
}

// AverageRegret estimates the mean regret ratio of a selection over
// utility functions drawn uniformly from the non-negative unit
// sphere (a Monte-Carlo extension beyond the paper).
func (d *Dataset) AverageRegret(selection []int, samples int, seed int64) (float64, error) {
	return d.AverageRegretContext(context.Background(), selection, samples, seed)
}

// AverageRegretContext is AverageRegret bounded by a context (see
// QueryContext for the cancellation granularity).
func (d *Dataset) AverageRegretContext(ctx context.Context, selection []int, samples int, seed int64) (float64, error) {
	x, err := d.snap().evalIndex()
	if err != nil {
		return 0, err
	}
	r, err := x.AverageRegretSampledParCtx(ctx, selection, samples, seed, d.workers)
	if err != nil {
		return 0, fmt.Errorf("kregret: %w", err)
	}
	return r, nil
}

// WorstUtility returns a linear utility function (unit weight vector)
// achieving the selection's maximum regret ratio, together with the
// dataset index of the witness tuple the user would have preferred.
// Witness is −1 when the regret is zero.
func (d *Dataset) WorstUtility(selection []int) (weights Point, witness int, err error) {
	return d.WorstUtilityContext(context.Background(), selection)
}

// WorstUtilityContext is WorstUtility bounded by a context (see
// QueryContext for the cancellation granularity). The support scan
// fans out over the dataset's parallelism (see WithParallelism); the
// answer is identical for every width.
func (d *Dataset) WorstUtilityContext(ctx context.Context, selection []int) (weights Point, witness int, err error) {
	x, err := d.snap().evalIndex()
	if err != nil {
		return nil, -1, err
	}
	witness = -1
	err = d.protect("WorstUtility", func() error {
		w, wit, err := x.WorstUtilityParCtx(ctx, selection, d.workers)
		if err != nil {
			return fmt.Errorf("kregret: %w", err)
		}
		weights, witness = Point(w), wit
		return nil
	})
	if err != nil {
		return nil, -1, err
	}
	return weights, witness, nil
}

// Index is the materialized StoredList of the paper's Section IV-B:
// one expensive preprocessing pass, then O(k) per query.
type Index struct {
	list *core.StoredList
	cand []int
	// core, when non-nil, records that this index was built by a
	// sharded engine over the merged partition–merge core (global
	// indices, ascending). It rides in snapshot payload v3 so reload
	// can match the index against the engine's shard configuration;
	// cand is already in global coordinates either way.
	core []int
}

// BuildIndex runs the StoredList preprocessing over the happy points.
// The returned Index is immutable and safe for concurrent queries.
func (d *Dataset) BuildIndex() (*Index, error) {
	return d.buildIndex(context.Background(), 0)
}

// BuildIndexContext is BuildIndex bounded by a context: the StoredList
// preprocessing is one full GeoGreedy run and honors cancellation at
// the same granularity as QueryContext.
func (d *Dataset) BuildIndexContext(ctx context.Context) (*Index, error) {
	return d.buildIndex(ctx, 0)
}

// BuildIndexUpTo materializes the index only up to queries of size
// maxK — a fraction of the full preprocessing cost on large frontier
// sets. Queries with k > maxK return an error unless the greedy
// exhausted the hull earlier (zero regret reached).
func (d *Dataset) BuildIndexUpTo(maxK int) (*Index, error) {
	if maxK < 1 {
		return nil, ErrBadK
	}
	return d.buildIndex(context.Background(), maxK)
}

// BuildIndexUpToContext is BuildIndexUpTo bounded by a context.
func (d *Dataset) BuildIndexUpToContext(ctx context.Context, maxK int) (*Index, error) {
	if maxK < 1 {
		return nil, ErrBadK
	}
	return d.buildIndex(ctx, maxK)
}

func (d *Dataset) buildIndex(ctx context.Context, maxK int) (*Index, error) {
	st := d.snap()
	hp, err := st.candidateIndices(CandidatesHappy)
	if err != nil {
		return nil, err
	}
	cand := append([]int(nil), hp...)
	candPts, err := core.Select(st.pts, cand)
	if err != nil {
		return nil, fmt.Errorf("kregret: %w", err)
	}
	var list *core.StoredList
	err = d.protect("BuildIndex", func() error {
		var err error
		if maxK <= 0 {
			list, err = core.BuildStoredListParCtx(ctx, candPts, d.workers)
		} else {
			list, err = core.BuildStoredListUpToParCtx(ctx, candPts, maxK, d.workers)
		}
		if err != nil {
			return fmt.Errorf("kregret: %w", err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Index{list: list, cand: cand}, nil
}

// Query answers a k-regret query from the materialized list. The
// answer equals Dataset.Query with GeoGreedy over happy points.
func (x *Index) Query(k int) (*Answer, error) {
	if k < 1 {
		return nil, ErrBadK
	}
	sel, err := x.list.Query(k)
	if err != nil {
		return nil, fmt.Errorf("kregret: %w", err)
	}
	mrr, err := x.list.MRRFor(k)
	if err != nil {
		return nil, fmt.Errorf("kregret: %w", err)
	}
	ans := &Answer{
		Indices:    make([]int, len(sel)),
		MRR:        mrr,
		Algorithm:  AlgoGeoGreedy,
		Candidates: CandidatesHappy,
	}
	for i, ci := range sel {
		ans.Indices[i] = x.cand[ci]
	}
	return ans, nil
}

// Len returns the materialized list length (the k beyond which every
// answer has zero regret).
func (x *Index) Len() int { return x.list.Len() }

// MinSize answers the min-size dual query: the smallest k such that
// Query(k) has maximum regret ratio at most eps. The second return
// value is false when even the full index exceeds eps (only possible
// for partially materialized indexes built with BuildIndexUpTo).
func (x *Index) MinSize(eps float64) (int, bool) {
	return x.list.MinK(eps)
}
