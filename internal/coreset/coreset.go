// Package coreset builds ε-kernel coresets over the candidate points
// of a k-regret query — the scale layer between preprocessing and the
// greedy solvers (ROADMAP item 2, following Agarwal et al.'s ε-kernel
// framing of regret-minimizing sets).
//
// A coreset here is a subset C of the candidates such that for every
// nonnegative preference w,
//
//	max over C of w·p  ≥  (1−ε) · max over cand of w·p,
//
// equivalently MRR(C, measured against cand) ≤ ε. Because the
// full-dataset maximum of any nonnegative linear preference is
// attained inside D_conv ⊆ D_happy, a coreset of the happy points
// carries the same guarantee against the entire dataset, and any
// selection computed on C has its true regret within ε of the regret
// it reports on C (DESIGN.md §17 gives the composition argument).
//
// Construction is two-phase on top of the existing geometry core:
//
//  1. Direction-net seeding: a simplex lattice of nonnegative
//     directions (compositions of a resolution r into d parts, count
//     capped at maxNetDirections) is swept with the blocked
//     mat.PointMatrix argmax kernel; the per-direction supports form
//     the initial kernel.
//  2. Greedy tightening: core.EpsKernelParCtx runs the GeoGreedy dual
//     hull with the stop threshold relaxed to 1/(1−ε), adding
//     candidates until every remaining one contributes at most ε of
//     regret — so the bound holds by construction, not by sampling
//     luck.
//
// The resulting core size depends on ε and the hull geometry, not on
// n, which is what lets the sharded partition–merge path in package
// kregret union per-shard cores and solve on the merged core.
package coreset

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/mat"
	"repro/internal/parallel"
)

// maxNetDirections caps the simplex direction lattice. The lattice
// resolution is the largest r with C(r+d−1, d−1) ≤ this cap, so low
// dimensions get a fine net (d=2: 511 directions) and high dimensions
// degrade gracefully to the axis directions already covered by the
// boundary seeds.
const maxNetDirections = 512

// grainNet is the parallel grain for the per-direction argmax sweep:
// each item is an O(|cand|·d) kernel pass, heavy enough that small
// chunks amortize scheduling immediately.
const grainNet = 8

// Build selects an ε-kernel coreset of pts[cand]. It returns the
// chosen subset as ascending indices into pts (a subset of cand) and
// the kernel's maximum regret ratio measured against the full
// candidate set (≤ eps up to geometric tolerance).
//
// eps ≤ 0 disables approximation: the result is a copy of cand with
// regret 0. Candidates should be the happy (or at least skyline)
// points so the ε bound transfers to the whole dataset; Build itself
// only promises the bound against cand.
func Build(ctx context.Context, pts []geom.Vector, cand []int, eps float64, workers int) ([]int, float64, error) {
	if eps <= 0 || len(cand) == 0 {
		out := make([]int, len(cand))
		copy(out, cand)
		return out, 0, nil
	}
	if fault.Enabled {
		if err := fault.Err(fault.SiteCoresetBuild); err != nil {
			return nil, 0, fmt.Errorf("%w: coreset construction failed: %v", core.ErrDegenerate, err)
		}
	}
	sub, err := core.Select(pts, cand)
	if err != nil {
		return nil, 0, err
	}
	seeds, err := netSeeds(ctx, sub, workers)
	if err != nil {
		return nil, 0, err
	}
	res, err := core.EpsKernelParCtx(ctx, sub, eps, seeds, workers)
	if err != nil {
		return nil, 0, err
	}
	out := make([]int, len(res.Indices))
	for i, li := range res.Indices {
		out[i] = cand[li]
	}
	sort.Ints(out)
	return out, res.MRR, nil
}

// netSeeds sweeps the direction net over the candidate matrix and
// returns the deduplicated per-direction argmax indices (first
// occurrence order). Each seed maximizes some nonnegative preference,
// so it lies on the convex boundary of the candidates — exactly the
// points the greedy tightening phase would otherwise spend iterations
// rediscovering.
func netSeeds(ctx context.Context, sub []geom.Vector, workers int) ([]int, error) {
	d := len(sub[0])
	dirs := directionNet(d, maxNetDirections)
	m := mat.FromVectors(sub)
	arg := make([]int, len(dirs))
	err := parallel.For(ctx, len(dirs), workers, grainNet, func(start, end int) error {
		for i := start; i < end; i++ {
			j, _ := m.MaxDotRows(dirs[i], 0, m.Rows())
			if j < 0 {
				return fmt.Errorf("%w: direction net found no support", core.ErrDegenerate)
			}
			arg[i] = j
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	seen := make(map[int]bool, len(arg))
	seeds := make([]int, 0, len(arg))
	for _, j := range arg {
		if !seen[j] {
			seen[j] = true
			seeds = append(seeds, j)
		}
	}
	return seeds, nil
}

// directionNet enumerates the simplex lattice {c/r : c ∈ ℕ^d, Σc = r}
// for the largest resolution r whose composition count C(r+d−1, d−1)
// stays within cap, always including r = 1 (the axis directions).
// Scaling a direction does not move its argmax, so the lattice points
// are emitted with integer coordinates.
func directionNet(d, cap int) [][]float64 {
	if d == 1 {
		// One dimension has a single direction; every resolution is the
		// same ray (and the composition count is constant, so the
		// resolution search below would never stop).
		return [][]float64{{1}}
	}
	r := 1
	for compositionCount(r+1, d) <= cap {
		r++
	}
	var dirs [][]float64
	comp := make([]int, d)
	var walk func(pos, left int)
	walk = func(pos, left int) {
		if pos == d-1 {
			comp[pos] = left
			dir := make([]float64, d)
			for j, c := range comp {
				dir[j] = float64(c)
			}
			dirs = append(dirs, dir)
			return
		}
		for c := left; c >= 0; c-- {
			comp[pos] = c
			walk(pos+1, left-c)
		}
	}
	walk(0, r)
	return dirs
}

// compositionCount returns C(r+d−1, d−1) — the number of ways to
// write r as an ordered sum of d nonnegative integers — saturating at
// a large sentinel on overflow so the resolution search always stops.
func compositionCount(r, d int) int {
	const sentinel = 1 << 40
	n := 1
	for i := 1; i < d; i++ {
		n = n * (r + i) / i
		if n >= sentinel {
			return sentinel
		}
	}
	return n
}
