package coreset

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/happy"
	"repro/internal/skyline"
)

// antiCorrelated mirrors the generator the core tests use: points near
// the simplex Σx = 1, which makes large skylines and non-trivial hulls.
func antiCorrelated(rng *rand.Rand, n, d int) []geom.Vector {
	pts := make([]geom.Vector, n)
	for i := range pts {
		p := make(geom.Vector, d)
		var sum float64
		for j := range p {
			p[j] = 0.05 + rng.ExpFloat64()
			sum += p[j]
		}
		scale := (0.8 + 0.4*rng.Float64()) / sum
		for j := range p {
			p[j] = math.Min(1, math.Max(0.01, p[j]*scale))
		}
		pts[i] = p
	}
	return pts
}

// happySet computes the paper's candidate set (skyline → happy) the
// same way package kregret feeds Build.
func happySet(t *testing.T, pts []geom.Vector) []int {
	t.Helper()
	sky, err := skyline.Of(pts)
	if err != nil {
		t.Fatal(err)
	}
	return happy.ComputeAmongSkyline(pts, sky)
}

func TestBuildDisabledCopiesCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	pts := antiCorrelated(rng, 50, 3)
	cand := happySet(t, pts)
	out, mrr, err := Build(context.Background(), pts, cand, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mrr != 0 {
		t.Fatalf("disabled build reports MRR %v", mrr)
	}
	if len(out) != len(cand) {
		t.Fatalf("disabled build returned %d of %d candidates", len(out), len(cand))
	}
	for i := range out {
		if out[i] != cand[i] {
			t.Fatalf("disabled build reordered candidates: %v vs %v", out, cand)
		}
	}
	// The result must not alias the caller's slice.
	out[0] = -1
	if cand[0] == -1 {
		t.Fatal("Build aliases its cand argument")
	}
	// Empty candidate sets are legal (degenerate shard).
	empty, mrr, err := Build(context.Background(), pts, nil, 0.1, 1)
	if err != nil || len(empty) != 0 || mrr != 0 {
		t.Fatalf("empty cand: %v %v %v", empty, mrr, err)
	}
}

func TestBuildRejectsBadEps(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	pts := antiCorrelated(rng, 30, 3)
	cand := happySet(t, pts)
	for _, eps := range []float64{math.NaN(), 1, 2} {
		if _, _, err := Build(context.Background(), pts, cand, eps, 1); !errors.Is(err, core.ErrBadEps) {
			t.Fatalf("eps=%v: got %v, want ErrBadEps", eps, err)
		}
	}
}

// TestBuildKernelBound is the package's contract: the returned core is
// an ascending subset of cand whose independently re-measured regret
// against the candidate set stays within eps, for every worker count.
func TestBuildKernelBound(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for _, d := range []int{2, 3, 4} {
		pts := antiCorrelated(rng, 600, d)
		cand := happySet(t, pts)
		for _, eps := range []float64{0.05, 0.2} {
			for _, w := range []int{1, 4} {
				out, mrr, err := Build(context.Background(), pts, cand, eps, w)
				if err != nil {
					t.Fatalf("d=%d eps=%v w=%d: %v", d, eps, w, err)
				}
				if mrr > eps+geom.Eps {
					t.Fatalf("d=%d eps=%v w=%d: reported MRR %v", d, eps, w, mrr)
				}
				if !sort.IntsAreSorted(out) {
					t.Fatalf("core not ascending: %v", out)
				}
				inCand := make(map[int]bool, len(cand))
				for _, c := range cand {
					inCand[c] = true
				}
				for _, c := range out {
					if !inCand[c] {
						t.Fatalf("core index %d is not a candidate", c)
					}
				}
				// Independent verification: regret of the core against
				// the candidate subset, via the geometric evaluator.
				sub, err := core.Select(pts, cand)
				if err != nil {
					t.Fatal(err)
				}
				local := make(map[int]int, len(cand))
				for li, gi := range cand {
					local[gi] = li
				}
				sel := make([]int, len(out))
				for i, gi := range out {
					sel[i] = local[gi]
				}
				got, err := core.MRRGeometric(sub, sel)
				if err != nil {
					t.Fatal(err)
				}
				if got > eps+1e-9 {
					t.Fatalf("d=%d eps=%v w=%d: independent MRR %v exceeds bound", d, eps, w, got)
				}
			}
		}
	}
}

// TestBuildSizeIndependentOfN: doubling n must not double the core —
// the size tracks the hull geometry, not the dataset. A loose factor-2
// slack keeps the assertion robust to the extra hull detail more
// points genuinely add.
func TestBuildSizeIndependentOfN(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	sizes := make([]int, 0, 2)
	for _, n := range []int{1000, 4000} {
		pts := antiCorrelated(rng, n, 3)
		cand := happySet(t, pts)
		out, _, err := Build(context.Background(), pts, cand, 0.1, 1)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, len(out))
	}
	if sizes[1] > 2*sizes[0]+8 {
		t.Fatalf("core grew with n: %v", sizes)
	}
}

func TestDirectionNetInvariants(t *testing.T) {
	for _, d := range []int{1, 2, 3, 4, 7} {
		dirs := directionNet(d, maxNetDirections)
		if len(dirs) == 0 || len(dirs) > maxNetDirections {
			t.Fatalf("d=%d: %d directions", d, len(dirs))
		}
		// Every direction is a nonnegative integer composition of the
		// same resolution r ≥ 1.
		r := 0.0
		for _, c := range dirs[0] {
			r += c
		}
		if r < 1 {
			t.Fatalf("d=%d: resolution %v", d, r)
		}
		seen := make(map[string]bool, len(dirs))
		for _, dir := range dirs {
			if len(dir) != d {
				t.Fatalf("d=%d: direction of dimension %d", d, len(dir))
			}
			sum, key := 0.0, ""
			for _, c := range dir {
				if c < 0 || c != math.Trunc(c) {
					t.Fatalf("d=%d: non-integer coordinate %v", d, c)
				}
				sum += c
				key += string(rune(int(c))) + ","
			}
			if sum != r {
				t.Fatalf("d=%d: direction %v sums to %v, want %v", d, dir, sum, r)
			}
			if seen[key] {
				t.Fatalf("d=%d: duplicate direction %v", d, dir)
			}
			seen[key] = true
		}
		// Exactly the composition count, and the next resolution must
		// not have fit.
		rInt := int(r)
		if len(dirs) != compositionCount(rInt, d) {
			t.Fatalf("d=%d: %d directions, composition count %d", d, len(dirs), compositionCount(rInt, d))
		}
		if d > 1 && compositionCount(rInt+1, d) <= maxNetDirections {
			t.Fatalf("d=%d: resolution %d is not maximal", d, rInt)
		}
	}
}

func TestCompositionCount(t *testing.T) {
	cases := []struct{ r, d, want int }{
		{1, 1, 1},
		{5, 1, 1},
		{3, 2, 4},    // C(4,1)
		{2, 3, 6},    // C(4,2)
		{4, 4, 35},   // C(7,3)
		{511, 2, 512}, // C(512,1)
	}
	for _, c := range cases {
		if got := compositionCount(c.r, c.d); got != c.want {
			t.Fatalf("compositionCount(%d,%d) = %d, want %d", c.r, c.d, got, c.want)
		}
	}
	// Overflowing resolutions saturate instead of wrapping.
	if got := compositionCount(1 << 30, 8); got < 1<<39 {
		t.Fatalf("overflow did not saturate: %d", got)
	}
}

// TestNetSeedsOnSimplexCorners: with candidates at the axis corners
// plus an interior point, every direction's support is a corner, so the
// seeds are exactly the corners and never the interior point.
func TestNetSeedsOnSimplexCorners(t *testing.T) {
	pts := []geom.Vector{
		{1, 0.01, 0.01},
		{0.01, 1, 0.01},
		{0.01, 0.01, 1},
		{0.2, 0.2, 0.2}, // interior
	}
	seeds, err := netSeeds(context.Background(), pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) == 0 || len(seeds) > 3 {
		t.Fatalf("seeds %v", seeds)
	}
	for _, s := range seeds {
		if s == 3 {
			t.Fatalf("interior point seeded: %v", seeds)
		}
	}
}
