//go:build kregretfault

package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

// TestInjectedAppendCrashLeavesTornTail arms wal.append: the frame is
// half-written (the process "died" inside the syscall), the log object
// refuses further use, and a reopen truncates the torn residue so the
// interrupted mutation simply never happened.
func TestInjectedAppendCrashLeavesTornTail(t *testing.T) {
	defer fault.Reset()
	path := filepath.Join(t.TempDir(), "mut.wal")
	l, _, err := Open(path, Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	first := Record{Seq: 1, Op: OpInsert, Point: []float64{0.25, 0.5}}
	if err := l.Append(first); err != nil {
		t.Fatalf("Append: %v", err)
	}
	durable := l.Size()

	fault.Arm(fault.SiteWALAppend, 1)
	if err := l.Append(Record{Seq: 2, Op: OpDelete, Index: 0}); err == nil {
		t.Fatal("armed Append succeeded, want error")
	}
	if fault.Fired(fault.SiteWALAppend) == 0 {
		t.Fatal("wal.append site never fired")
	}
	// The torn bytes are on disk and the in-process log is unusable.
	if fi, err := os.Stat(path); err != nil || fi.Size() <= durable {
		t.Fatalf("no torn tail on disk: size=%v err=%v", fi, err)
	}
	if err := l.Append(Record{Seq: 3, Op: OpDelete, Index: 0}); !errors.Is(err, ErrLogUnusable) {
		t.Fatalf("post-crash Append = %v, want ErrLogUnusable", err)
	}
	l.Close()

	// "Restart": recovery truncates the torn tail and replays exactly
	// the acknowledged history.
	l2, recs, err := Open(path, Config{})
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	defer l2.Close()
	sameRecords(t, recs, []Record{first})
	if fi, err := os.Stat(path); err != nil || fi.Size() != durable {
		t.Fatalf("torn tail not truncated: size=%v err=%v", fi, err)
	}
	// The interrupted mutation can be retried with the same seq — it
	// was never acknowledged, so the seq was never consumed.
	if err := l2.Append(Record{Seq: 2, Op: OpDelete, Index: 0}); err != nil {
		t.Fatalf("retry Append: %v", err)
	}
}

// TestInjectedSyncFailureUndoesSuffix arms wal.sync: the append's
// fsync fails, the unsynced suffix is rewound away, and the log keeps
// working — the failed mutation leaves no trace and its seq is reused.
func TestInjectedSyncFailureUndoesSuffix(t *testing.T) {
	defer fault.Reset()
	path := filepath.Join(t.TempDir(), "mut.wal")
	l, _, err := Open(path, Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	first := Record{Seq: 1, Op: OpInsert, Point: []float64{0.25, 0.5}}
	if err := l.Append(first); err != nil {
		t.Fatalf("Append: %v", err)
	}
	durable := l.Size()

	fault.Arm(fault.SiteWALSync, 1)
	if err := l.Append(Record{Seq: 2, Op: OpDelete, Index: 0}); err == nil {
		t.Fatal("armed Append succeeded, want error")
	}
	if fault.Fired(fault.SiteWALSync) == 0 {
		t.Fatal("wal.sync site never fired")
	}
	// The rewind restored the last durable state: same size, same
	// LastSeq, and the log is immediately usable again.
	if got := l.Size(); got != durable {
		t.Fatalf("Size after failed sync = %d, want %d", got, durable)
	}
	if got := l.LastSeq(); got != 1 {
		t.Fatalf("LastSeq after failed sync = %d, want 1", got)
	}
	retry := Record{Seq: 2, Op: OpDelete, Index: 0}
	if err := l.Append(retry); err != nil {
		t.Fatalf("retry Append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, recs, err := Open(path, Config{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	sameRecords(t, recs, []Record{first, retry})
}

// TestInjectedRotateFailureKeepsRecords arms wal.rotate: the Reset
// half of compaction fails, and every record is still in the log — a
// failed truncation after the compacted snapshot was published only
// costs disk space, never history.
func TestInjectedRotateFailureKeepsRecords(t *testing.T) {
	defer fault.Reset()
	recs := testRecords()
	path, _ := buildLog(t, recs)
	l, _, err := Open(path, Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	fault.Arm(fault.SiteWALRotate, 1)
	if err := l.Reset(); err == nil {
		t.Fatal("armed Reset succeeded, want error")
	}
	if fault.Fired(fault.SiteWALRotate) == 0 {
		t.Fatal("wal.rotate site never fired")
	}
	// Nothing was lost and the log still appends.
	if err := l.Append(Record{Seq: 9, Op: OpDelete, Index: 0}); err != nil {
		t.Fatalf("Append after failed Reset: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, got, err := Open(path, Config{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(got) != len(recs)+1 {
		t.Fatalf("got %d records, want %d", len(got), len(recs)+1)
	}
	// A later, un-armed Reset heals the log.
	l2, _, err := Open(path, Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l2.Close()
	if err := l2.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if l2.Size() != headerLen {
		t.Fatalf("Size after Reset = %d, want %d", l2.Size(), headerLen)
	}
}
