package wal

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to Replay and holds it to the
// log's two-regime contract: the result is either a typed error
// (ErrCorruptRecord — a fully-present record that fails validation)
// or a valid record sequence a torn-tail truncation can explain.
// Never a panic, never a structurally invalid record, never an
// attacker-chosen allocation from a corrupt length prefix.
func FuzzWALReplay(f *testing.F) {
	header := []byte(logMagic + string(rune(logVersion)))
	valid := append([]byte(nil), header...)
	valid = append(valid, encodeFrame(Record{Seq: 1, Op: OpInsert, Point: []float64{0.5, math.SmallestNonzeroFloat64}})...)
	valid = append(valid, encodeFrame(Record{Seq: 2, Op: OpDelete, Index: 0})...)
	valid = append(valid, encodeFrame(Record{Seq: 7, Op: OpInsert, Point: []float64{1e300}})...)

	f.Add([]byte{})
	f.Add(header)
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[headerLen+2] ^= 0x40 // corrupt a length prefix
	f.Add(flipped)
	f.Add([]byte("KRGWx\xff\xff\xff\x7fgarbage")) // implausible length
	f.Add([]byte("KRGX\x01"))                     // foreign magic
	f.Add([]byte("KRGW\x09"))                     // future version

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := Replay(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorruptRecord) && !errors.Is(err, ErrLogVersion) {
				t.Fatalf("Replay returned an untyped error: %v", err)
			}
			return
		}
		// Whatever decoded must satisfy every append-time invariant:
		// replaying it into a fresh log must succeed record by record.
		lastSeq := uint64(0)
		for i, rec := range recs {
			if verr := validate(rec); verr != nil {
				t.Fatalf("record %d fails validation after clean replay: %+v: %v", i, rec, verr)
			}
			if rec.Seq <= lastSeq {
				t.Fatalf("record %d breaks seq monotonicity: %d after %d", i, rec.Seq, lastSeq)
			}
			lastSeq = rec.Seq
			if len(rec.Point) > maxDim {
				t.Fatalf("record %d exceeds maxDim: %d", i, len(rec.Point))
			}
		}
		// And the accepted prefix must re-encode to a log Replay
		// accepts identically — decode/encode is a fixed point.
		round := append([]byte(nil), header...)
		for _, rec := range recs {
			round = append(round, encodeFrame(rec)...)
		}
		again, err := Replay(bytes.NewReader(round))
		if err != nil {
			t.Fatalf("re-encoded log does not replay: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("re-encoded log replays %d records, want %d", len(again), len(recs))
		}
	})
}
