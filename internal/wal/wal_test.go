package wal

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// testRecords is a small mutation history covering both ops and
// awkward float bit patterns (negative zero, subnormal, huge).
func testRecords() []Record {
	return []Record{
		{Seq: 1, Op: OpInsert, Point: []float64{0.25, 0.75, 0.5}},
		{Seq: 2, Op: OpInsert, Point: []float64{math.Copysign(0, -1), 5e-324, 1e300}},
		{Seq: 3, Op: OpDelete, Index: 0},
		{Seq: 5, Op: OpInsert, Point: []float64{0.125}},
		{Seq: 8, Op: OpDelete, Index: 2},
	}
}

func sameRecords(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Seq != w.Seq || g.Op != w.Op || g.Index != w.Index || len(g.Point) != len(w.Point) {
			t.Fatalf("record %d: got %+v, want %+v", i, g, w)
		}
		for j := range w.Point {
			if math.Float64bits(g.Point[j]) != math.Float64bits(w.Point[j]) {
				t.Fatalf("record %d coordinate %d: got bits %016x, want %016x",
					i, j, math.Float64bits(g.Point[j]), math.Float64bits(w.Point[j]))
			}
		}
	}
}

// buildLog writes recs into a fresh log file and returns its path and
// raw bytes.
func buildLog(t *testing.T, recs []Record) (string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "mut.wal")
	l, prior, err := Open(path, Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(prior) != 0 {
		t.Fatalf("fresh log replayed %d records", len(prior))
	}
	for _, rec := range recs {
		if err := l.Append(rec); err != nil {
			t.Fatalf("Append(%+v): %v", rec, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	return path, data
}

func TestAppendReopenRoundTrip(t *testing.T) {
	recs := testRecords()
	path, _ := buildLog(t, recs)

	l, got, err := Open(path, Config{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()
	sameRecords(t, got, recs)
	if l.LastSeq() != 8 {
		t.Fatalf("LastSeq = %d, want 8", l.LastSeq())
	}

	// The log must keep accepting appends after a reopen.
	next := Record{Seq: 9, Op: OpInsert, Point: []float64{0.5, 0.5}}
	if err := l.Append(next); err != nil {
		t.Fatalf("post-reopen Append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, got, err = Open(path, Config{})
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	sameRecords(t, got, append(recs, next))
}

// TestTornTailEveryByte is the kill-at-every-byte matrix: for every
// possible crash offset — the file cut to each prefix length — Open
// must recover exactly the records whose frames are complete, truncate
// the torn residue, and leave a log that accepts new appends. No
// offset may produce an error or a garbage record.
func TestTornTailEveryByte(t *testing.T) {
	recs := testRecords()
	_, data := buildLog(t, recs)

	// Record the byte boundary after each frame so every prefix length
	// maps to its expected replay.
	bounds := []int64{headerLen}
	{
		r, good, err := scan(data)
		if err != nil || good != int64(len(data)) {
			t.Fatalf("scan of intact log: good=%d err=%v", good, err)
		}
		off := int64(headerLen)
		for i := range r {
			off += int64(len(encodeFrame(recs[i])))
			bounds = append(bounds, off)
		}
	}
	completeAt := func(cut int) int {
		n := 0
		for i := 1; i < len(bounds); i++ {
			if int64(cut) >= bounds[i] {
				n = i
			}
		}
		return n
	}

	for cut := 0; cut <= len(data); cut++ {
		path := filepath.Join(t.TempDir(), "cut.wal")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatalf("cut=%d: WriteFile: %v", cut, err)
		}
		l, got, err := Open(path, Config{})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		want := recs[:completeAt(cut)]
		sameRecords(t, got, want)

		// The torn residue must be gone from disk and the log must
		// accept the very mutation the crash interrupted.
		if fi, err := os.Stat(path); err != nil {
			t.Fatalf("cut=%d: Stat: %v", cut, err)
		} else if cut >= headerLen && fi.Size() > int64(cut) {
			t.Fatalf("cut=%d: file grew to %d bytes on open", cut, fi.Size())
		}
		retry := Record{Seq: 100, Op: OpInsert, Point: []float64{0.5}}
		if err := l.Append(retry); err != nil {
			t.Fatalf("cut=%d: post-recovery Append: %v", cut, err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("cut=%d: Close: %v", cut, err)
		}
		_, again, err := Open(path, Config{})
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		sameRecords(t, again, append(append([]Record(nil), want...), retry))
	}
}

// TestBitFlipNeverGarbage flips every bit of a complete log and
// checks the failure is always contained: Open either reports a typed
// error (ErrCorruptRecord, or a version mismatch when the flip lands
// in the header) or recovers a strict prefix of the original records —
// never a record that was not written, never a panic.
func TestBitFlipNeverGarbage(t *testing.T) {
	recs := testRecords()
	_, data := buildLog(t, recs)

	for pos := 0; pos < len(data); pos++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), data...)
			mut[pos] ^= 1 << bit
			path := filepath.Join(t.TempDir(), "flip.wal")
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatalf("pos=%d bit=%d: WriteFile: %v", pos, bit, err)
			}
			l, got, err := Open(path, Config{})
			if err != nil {
				if pos >= headerLen && !errors.Is(err, ErrCorruptRecord) {
					t.Fatalf("pos=%d bit=%d: error not ErrCorruptRecord: %v", pos, bit, err)
				}
				continue
			}
			l.Close()
			if len(got) > len(recs) {
				t.Fatalf("pos=%d bit=%d: recovered %d records from a %d-record log", pos, bit, len(got), len(recs))
			}
			sameRecords(t, got, recs[:len(got)])
		}
	}
}

func TestReplayMatchesOpen(t *testing.T) {
	recs := testRecords()
	_, data := buildLog(t, recs)

	got, err := Replay(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	sameRecords(t, got, recs)

	// Torn tails replay the complete prefix, silently.
	got, err = Replay(bytes.NewReader(data[:len(data)-3]))
	if err != nil {
		t.Fatalf("Replay(torn): %v", err)
	}
	sameRecords(t, got, recs[:len(recs)-1])

	// Empty and torn-header images carry no acknowledged records.
	for _, img := range [][]byte{nil, data[:3]} {
		got, err = Replay(bytes.NewReader(img))
		if err != nil || len(got) != 0 {
			t.Fatalf("Replay(%d bytes): got %d records, err %v", len(img), len(got), err)
		}
	}

	// A foreign file is corruption, not an empty log.
	if _, err := Replay(bytes.NewReader([]byte("GIF89a-definitely-not-a-wal"))); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("Replay(foreign) = %v, want ErrCorruptRecord", err)
	}
}

func TestAppendRejectsInvalidRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mut.wal")
	l, _, err := Open(path, Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if err := l.Append(Record{Seq: 1, Op: OpInsert, Point: []float64{0.5}}); err != nil {
		t.Fatalf("seed append: %v", err)
	}

	bad := []Record{
		{Seq: 2, Op: OpInsert},                         // no coordinates
		{Seq: 2, Op: OpDelete, Index: -1},              // negative index
		{Seq: 2, Op: Op(9), Index: 1},                  // unknown op
		{Seq: 1, Op: OpDelete, Index: 0},               // seq replay
		{Seq: 0, Op: OpInsert, Point: []float64{0.25}}, // seq regression
	}
	for _, rec := range bad {
		if err := l.Append(rec); err == nil {
			t.Fatalf("Append(%+v) succeeded, want error", rec)
		}
	}
	// Rejections must leave the log fully usable.
	if err := l.Append(Record{Seq: 2, Op: OpDelete, Index: 0}); err != nil {
		t.Fatalf("append after rejections: %v", err)
	}
}

func TestResetTruncatesAndPreservesSeq(t *testing.T) {
	recs := testRecords()
	path, _ := buildLog(t, recs)
	l, _, err := Open(path, Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := l.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if l.Size() != headerLen {
		t.Fatalf("Size after Reset = %d, want %d", l.Size(), headerLen)
	}
	// Sequence numbers survive the reset: re-using a compacted seq
	// must fail, the next fresh one must work.
	if err := l.Append(Record{Seq: 8, Op: OpDelete, Index: 0}); err == nil {
		t.Fatal("Append with compacted seq succeeded, want error")
	}
	next := Record{Seq: 9, Op: OpInsert, Point: []float64{0.75}}
	if err := l.Append(next); err != nil {
		t.Fatalf("Append after Reset: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, got, err := Open(path, Config{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	sameRecords(t, got, []Record{next})
}

// TestSyncBatching checks SyncEvery > 1 defers the fsync: the unsynced
// suffix is still in the file (written, not yet durable) and an
// explicit Sync acknowledges it.
func TestSyncBatching(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mut.wal")
	l, _, err := Open(path, Config{SyncEvery: 3})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	for seq := uint64(1); seq <= 2; seq++ {
		if err := l.Append(Record{Seq: seq, Op: OpInsert, Point: []float64{0.5}}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	l.mu.Lock()
	pending, synced, off := l.pending, l.synced, l.off
	l.mu.Unlock()
	if pending != 2 || synced != headerLen || off <= synced {
		t.Fatalf("pending=%d synced=%d off=%d, want 2 pending past header", pending, synced, off)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	l.mu.Lock()
	pending, synced, off = l.pending, l.synced, l.off
	l.mu.Unlock()
	if pending != 0 || synced != off {
		t.Fatalf("after Sync: pending=%d synced=%d off=%d", pending, synced, off)
	}
}

func TestOpenRejectsForeignAndFutureFiles(t *testing.T) {
	dir := t.TempDir()

	foreign := filepath.Join(dir, "foreign.wal")
	if err := os.WriteFile(foreign, []byte("PNG\x89 not a log"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(foreign, Config{}); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("Open(foreign) = %v, want ErrCorruptRecord", err)
	}

	future := filepath.Join(dir, "future.wal")
	if err := os.WriteFile(future, append([]byte(logMagic), 99), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(future, Config{}); err == nil {
		t.Fatal("Open(future version) succeeded, want error")
	}
}
