// Package wal is the write-ahead log behind mutable datasets: an
// append-only file of insert/delete records, each length-prefixed and
// protected by its own CRC-32C, so the durable mutation history can be
// replayed over the last compacted snapshot after a crash.
//
// File layout:
//
//	offset 0  magic "KRGW" (4 bytes)
//	       4  format version (1 byte, currently 1)
//	       5  records, back to back
//
// Each record is framed as
//
//	uint32 payload length (little-endian)
//	payload
//	uint32 CRC-32C over the length prefix and the payload
//
// and the payload is op-specific binary (see Record.appendWire). The
// two corruption regimes are deliberately distinguished on open:
//
//   - a record cut short by end-of-file is a torn tail — the residue
//     of a crash mid-append — and is silently truncated away, because
//     a record that never finished writing was never acknowledged;
//   - a fully-present record whose CRC or structure is wrong is
//     ErrCorruptRecord — bit rot or a foreign file — and fails the
//     open loudly, because dropping it could silently lose a mutation
//     that WAS acknowledged.
//
// Appends are acknowledged only after the configured sync policy ran:
// with SyncEvery=1 (the default) every Append fsyncs before returning,
// so an acknowledged mutation survives any crash; larger batches trade
// that for throughput, losing at most the unsynced suffix. A failed
// write or sync rewinds the file to the last synced offset so a failed
// Append leaves no trace — the caller's in-memory state and the log
// never disagree about which mutations happened.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"

	"repro/internal/fault"
)

// Errors returned by the log.
var (
	// ErrCorruptRecord reports a fully-present record that fails its
	// CRC or structural validation — corruption that truncation cannot
	// explain, so it is never silently dropped.
	ErrCorruptRecord = errors.New("wal: corrupt record")

	// ErrLogUnusable reports that an earlier failed append or sync
	// could not be rewound; the log refuses further appends until a
	// Reset (compaction) gives it a fresh tail.
	ErrLogUnusable = errors.New("wal: log unusable after earlier failure")

	// ErrLogVersion reports a log written by a format version this
	// build does not know — not corruption, but a file that must be
	// read by the build that wrote it.
	ErrLogVersion = errors.New("wal: unsupported log format version")
)

const (
	logMagic   = "KRGW"
	logVersion = 1
	headerLen  = 5
	// maxRecordLen caps a record payload so a corrupt length prefix
	// cannot drive an attacker-chosen allocation.
	maxRecordLen = 1 << 20
	// maxDim bounds the per-record point dimensionality; it matches
	// maxRecordLen (a coordinate is 8 bytes plus framing).
	maxDim = 1 << 16
)

var logCRC = crc32.MakeTable(crc32.Castagnoli)

// Op is the mutation kind a record carries.
type Op uint8

// Record operations.
const (
	// OpInsert appends Point to the dataset.
	OpInsert Op = 1
	// OpDelete removes the point at Index.
	OpDelete Op = 2
)

func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Record is one durable mutation. Seq is the mutation's position in
// the dataset's total order: strictly increasing across the life of
// the dataset (compaction does not reset it), which is what lets
// replay skip records already folded into a snapshot.
type Record struct {
	Seq   uint64
	Op    Op
	Index int       // delete target (OpDelete only)
	Point []float64 // inserted coordinates (OpInsert only)
}

// wireManifest pins the hand-rolled binary wire layout of every
// record struct this package persists (checked by the wireguard
// analyzer via the appendWire convention): changing a field means
// rewriting the entry on this line, which is where the format-version
// bump and the decoder's compat path get reviewed together.
var wireManifest = map[string]string{
	"Record": "v1 Seq uint64; Op Op; Index int; Point []float64",
}

// appendWire encodes the record payload: op tag, sequence number,
// then the op-specific body (dimension-prefixed coordinates for an
// insert, the target index for a delete).
func (r Record) appendWire(dst []byte) []byte {
	dst = append(dst, byte(r.Op))
	dst = binary.LittleEndian.AppendUint64(dst, r.Seq)
	switch r.Op {
	case OpInsert:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Point)))
		for _, x := range r.Point {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
		}
	case OpDelete:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Index))
	}
	return dst
}

// decodeWire is appendWire's strict inverse: every byte of payload
// must be consumed and every field must be structurally plausible, so
// a CRC collision on garbage still cannot smuggle in a bogus record.
func decodeWire(payload []byte) (Record, error) {
	if len(payload) < 1+8 {
		return Record{}, fmt.Errorf("%w: payload of %d bytes", ErrCorruptRecord, len(payload))
	}
	rec := Record{Op: Op(payload[0]), Seq: binary.LittleEndian.Uint64(payload[1:])}
	body := payload[9:]
	switch rec.Op {
	case OpInsert:
		if len(body) < 4 {
			return Record{}, fmt.Errorf("%w: insert record missing dimension", ErrCorruptRecord)
		}
		dim := binary.LittleEndian.Uint32(body)
		if dim == 0 || dim > maxDim {
			return Record{}, fmt.Errorf("%w: insert record dimension %d", ErrCorruptRecord, dim)
		}
		if len(body) != 4+int(dim)*8 {
			return Record{}, fmt.Errorf("%w: insert record has %d body bytes for dimension %d", ErrCorruptRecord, len(body), dim)
		}
		rec.Point = make([]float64, dim)
		for i := range rec.Point {
			rec.Point[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[4+i*8:]))
		}
	case OpDelete:
		if len(body) != 4 {
			return Record{}, fmt.Errorf("%w: delete record has %d body bytes", ErrCorruptRecord, len(body))
		}
		rec.Index = int(binary.LittleEndian.Uint32(body))
	default:
		return Record{}, fmt.Errorf("%w: unknown op %d", ErrCorruptRecord, payload[0])
	}
	return rec, nil
}

// encodeFrame wraps the record payload in its length prefix and CRC
// trailer.
func encodeFrame(rec Record) []byte {
	payload := rec.appendWire(make([]byte, 0, 64))
	frame := make([]byte, 4, 4+len(payload)+4)
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	return binary.LittleEndian.AppendUint32(frame, crc32.Checksum(frame, logCRC))
}

// validate rejects records that must never reach the file: they would
// decode as corruption, so failing the append is the honest move.
func validate(rec Record) error {
	switch rec.Op {
	case OpInsert:
		if len(rec.Point) == 0 || len(rec.Point) > maxDim {
			return fmt.Errorf("wal: insert record with %d coordinates", len(rec.Point))
		}
	case OpDelete:
		if rec.Index < 0 || int64(rec.Index) > int64(^uint32(0)) {
			return fmt.Errorf("wal: delete record with index %d", rec.Index)
		}
	default:
		return fmt.Errorf("wal: unknown op %d", rec.Op)
	}
	return nil
}

// scan parses the record region of a log image. It returns the parsed
// records, the offset just past the last complete record (the torn
// tail, if any, lies beyond it), and ErrCorruptRecord for damage that
// truncation cannot explain.
func scan(data []byte) (recs []Record, good int64, err error) {
	off := headerLen
	var lastSeq uint64
	for off < len(data) {
		if len(data)-off < 4 {
			break // torn length prefix
		}
		n := binary.LittleEndian.Uint32(data[off:])
		if n == 0 || n > maxRecordLen {
			return nil, int64(off), fmt.Errorf("%w: implausible record length %d at offset %d", ErrCorruptRecord, n, off)
		}
		end := off + 4 + int(n) + 4
		if end > len(data) {
			break // torn payload or CRC
		}
		stored := binary.LittleEndian.Uint32(data[off+4+int(n):])
		if computed := crc32.Checksum(data[off:off+4+int(n)], logCRC); stored != computed {
			return nil, int64(off), fmt.Errorf("%w: CRC mismatch at offset %d (stored %08x, computed %08x)", ErrCorruptRecord, off, stored, computed)
		}
		rec, derr := decodeWire(data[off+4 : off+4+int(n)])
		if derr != nil {
			return nil, int64(off), derr
		}
		if rec.Seq <= lastSeq {
			return nil, int64(off), fmt.Errorf("%w: sequence regressed %d -> %d at offset %d", ErrCorruptRecord, lastSeq, rec.Seq, off)
		}
		lastSeq = rec.Seq
		recs = append(recs, rec)
		off = end
	}
	return recs, int64(off), nil
}

// Replay parses a complete log image from r: the records of every
// fully-written frame, in order. A torn tail (the residue of a crash
// mid-append) is ignored exactly as Open would truncate it; structural
// corruption is ErrCorruptRecord. An empty or header-only image yields
// no records and no error.
func Replay(r io.Reader) ([]Record, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("wal: reading log: %w", err)
	}
	if len(data) == 0 {
		return nil, nil
	}
	if len(data) < headerLen {
		return nil, nil // torn header: the crash predates the first record
	}
	if string(data[:4]) != logMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorruptRecord, data[:4])
	}
	if v := data[4]; v != logVersion {
		return nil, fmt.Errorf("%w: v%d, want v%d", ErrLogVersion, v, logVersion)
	}
	recs, _, err := scan(data)
	return recs, err
}

// Config shapes a Log.
type Config struct {
	// SyncEvery fsyncs after this many appends; 0 or 1 syncs every
	// append (full durability), larger values batch the syncs and may
	// lose the unsynced suffix on a crash.
	SyncEvery int
}

// Log is an open write-ahead log. Appends are serialized internally;
// a Log is safe for concurrent use, though the dataset layer already
// serializes mutations.
type Log struct {
	path      string
	syncEvery int

	mu        sync.Mutex
	f         *os.File
	off       int64  // logical end of the file (all written frames)
	synced    int64  // end of the last fsynced frame
	pending   int    // appends since the last sync
	lastSeq   uint64 // seq of the last written record
	syncedSeq uint64 // seq of the last synced record
	broken    error  // sticky: a failure that could not be rewound
}

// Open opens (creating if absent) the log at path, truncates any torn
// tail left by a crash, and returns the log together with the records
// of every complete frame, ready to be replayed over a snapshot.
// Structural corruption — a full record that fails its CRC — is
// ErrCorruptRecord, never a silent drop.
func Open(path string, cfg Config) (*Log, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: opening log: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, nil, errors.Join(fmt.Errorf("wal: reading log: %w", err), f.Close())
	}
	syncEvery := cfg.SyncEvery
	if syncEvery < 1 {
		syncEvery = 1
	}

	switch {
	case len(data) < headerLen:
		// Empty file, or a crash tore the header write itself: no
		// record can have been acknowledged, start fresh.
		if err := initHeader(f); err != nil {
			return nil, nil, errors.Join(err, f.Close())
		}
		return &Log{path: path, syncEvery: syncEvery, f: f, off: headerLen, synced: headerLen}, nil, nil
	case string(data[:4]) != logMagic:
		return nil, nil, errors.Join(fmt.Errorf("%w: bad magic %q", ErrCorruptRecord, data[:4]), f.Close())
	case data[4] != logVersion:
		return nil, nil, errors.Join(fmt.Errorf("%w: v%d, want v%d", ErrLogVersion, data[4], logVersion), f.Close())
	}

	recs, good, err := scan(data)
	if err != nil {
		return nil, nil, errors.Join(err, f.Close())
	}
	if good < int64(len(data)) {
		// Torn tail: the residue of a crash mid-append. Truncating it
		// is safe — an unfinished frame was never acknowledged.
		if terr := f.Truncate(good); terr != nil {
			return nil, nil, errors.Join(fmt.Errorf("wal: truncating torn tail: %w", terr), f.Close())
		}
		if serr := f.Sync(); serr != nil {
			return nil, nil, errors.Join(fmt.Errorf("wal: syncing truncated log: %w", serr), f.Close())
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		return nil, nil, errors.Join(fmt.Errorf("wal: seeking log end: %w", err), f.Close())
	}
	var last uint64
	if n := len(recs); n > 0 {
		last = recs[n-1].Seq
	}
	return &Log{
		path: path, syncEvery: syncEvery, f: f,
		off: good, synced: good, lastSeq: last, syncedSeq: last,
	}, recs, nil
}

// initHeader initializes a fresh (or torn-header) log file.
func initHeader(f *os.File) error {
	if err := f.Truncate(0); err != nil {
		return fmt.Errorf("wal: initializing log: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: initializing log: %w", err)
	}
	hdr := append([]byte(logMagic), logVersion)
	if _, err := f.Write(hdr); err != nil {
		return fmt.Errorf("wal: writing log header: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing log header: %w", err)
	}
	return nil
}

// Append writes one record and runs the sync policy. On return with a
// nil error and SyncEvery <= 1 the record is durable; on any error the
// record is guaranteed absent from the log (the file was rewound), so
// the caller must not apply the mutation either.
func (l *Log) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return fmt.Errorf("%w: %v", ErrLogUnusable, l.broken)
	}
	if err := validate(rec); err != nil {
		return err
	}
	if rec.Seq <= l.lastSeq {
		return fmt.Errorf("wal: non-monotonic sequence %d (last %d)", rec.Seq, l.lastSeq)
	}
	frame := encodeFrame(rec)

	if fault.Enabled && fault.Active(fault.SiteWALAppend) {
		// Simulated crash inside the write syscall: a prefix of the
		// frame lands on disk and the "process" is gone — the log
		// object refuses further use until compaction resets it, and
		// recovery must truncate the torn tail.
		//kregret:allow errdrop: the injected crash abandons the write mid-flight by design
		l.f.Write(frame[:len(frame)/2])
		l.broken = errors.New("injected crash mid-append")
		return fmt.Errorf("wal: append: %v", l.broken)
	}

	if _, err := l.f.Write(frame); err != nil {
		l.rewindLocked(fmt.Errorf("wal: append: %w", err))
		return fmt.Errorf("wal: append: %w", err)
	}
	l.off += int64(len(frame))
	l.pending++
	l.lastSeq = rec.Seq
	if l.pending >= l.syncEvery {
		return l.syncLocked()
	}
	return nil
}

// Sync forces the unsynced suffix to disk (a no-op when nothing is
// pending). Batching callers use it to bound the acknowledgment lag.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return fmt.Errorf("%w: %v", ErrLogUnusable, l.broken)
	}
	if l.pending == 0 {
		return nil
	}
	return l.syncLocked()
}

// syncLocked fsyncs the file. On failure the unsynced suffix is in an
// unknown on-disk state, so it is rewound away: the log stays exactly
// at its last known-durable frame and the failed mutations report
// errors instead of maybe-persisting.
func (l *Log) syncLocked() error {
	var err error
	if fault.Enabled && fault.Active(fault.SiteWALSync) {
		err = errors.New("wal: sync failed (injected)")
	} else if serr := l.f.Sync(); serr != nil {
		err = fmt.Errorf("wal: sync: %w", serr)
	}
	if err == nil {
		l.synced = l.off
		l.syncedSeq = l.lastSeq
		l.pending = 0
		return nil
	}
	l.rewindLocked(err)
	return err
}

// rewindLocked restores the file to the last synced offset after a
// failed write or sync. If the rewind itself fails the log is marked
// unusable: its tail is in an unknown state and appending after it
// would corrupt the record stream.
func (l *Log) rewindLocked(cause error) {
	if err := l.f.Truncate(l.synced); err != nil {
		l.broken = errors.Join(cause, fmt.Errorf("rewind truncate: %w", err))
		return
	}
	if _, err := l.f.Seek(l.synced, io.SeekStart); err != nil {
		l.broken = errors.Join(cause, fmt.Errorf("rewind seek: %w", err))
		return
	}
	if err := l.f.Sync(); err != nil {
		l.broken = errors.Join(cause, fmt.Errorf("rewind sync: %w", err))
		return
	}
	l.off = l.synced
	l.pending = 0
	l.lastSeq = l.syncedSeq
}

// Reset truncates the log back to its header — the second half of
// compaction, run after the mutations have been folded into a durable
// snapshot. Sequence numbers keep rising across resets, so stale
// records from a crash between the snapshot and the reset are skipped
// by replay. A Reset also heals a log marked unusable: the fresh tail
// is a known-good state.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if fault.Enabled && fault.Active(fault.SiteWALRotate) {
		return errors.New("wal: rotate failed (injected)")
	}
	if err := l.f.Truncate(headerLen); err != nil {
		l.broken = fmt.Errorf("reset truncate: %w", err)
		return fmt.Errorf("wal: reset: %w", err)
	}
	if _, err := l.f.Seek(headerLen, io.SeekStart); err != nil {
		l.broken = fmt.Errorf("reset seek: %w", err)
		return fmt.Errorf("wal: reset: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		l.broken = fmt.Errorf("reset sync: %w", err)
		return fmt.Errorf("wal: reset: %w", err)
	}
	l.off, l.synced = headerLen, headerLen
	l.pending = 0
	l.syncedSeq = l.lastSeq
	l.broken = nil
	return nil
}

// Close syncs any pending suffix and closes the file. The error joins
// both failures; a closed log must not be used again.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var serr error
	if l.pending > 0 && l.broken == nil {
		serr = l.syncLocked()
	}
	return errors.Join(serr, l.f.Close())
}

// LastSeq returns the sequence number of the last written record
// (zero for an empty log). Callers derive the next mutation's seq
// from it.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// Size returns the logical end of the log in bytes — the boundary
// after the last written frame. Crash-point tests use it to learn
// every record boundary.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.off
}

// Path returns the file path the log was opened at.
func (l *Log) Path() string { return l.path }
