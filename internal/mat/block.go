// Blocked-kernel helpers shared by the preprocessing sweeps in
// internal/skyline and internal/happy: indexed gathers, exact row
// sums, componentwise block maxima, dominance on raw rows, and a
// radix sort keyed by float64.
//
// The block-max discipline: a kernel that partitions rows into blocks
// may summarize each block by its componentwise maximum and test the
// summary INSTEAD of the members only when the member test is
// monotone in the summarized point (dominance and the happy-point
// membership bound both are — see DESIGN.md §16). Block summaries are
// plain []float64 scratch owned by the sweep, never PointMatrix row
// views; views handed out by Row remain consume-immediately.
package mat

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// FromVectorsIndexed gathers pts[idx[0]], pts[idx[1]], ... into a
// fresh row-major matrix, in the given order. It is FromVectors
// composed with a gather, without the intermediate copy. Indices out
// of range return an error (they may come from a persisted cache).
func FromVectorsIndexed(pts []geom.Vector, idx []int) (*PointMatrix, error) {
	if len(idx) == 0 {
		return &PointMatrix{}, nil
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("mat: FromVectorsIndexed: %d indices over an empty point set", len(idx))
	}
	d := len(pts[0])
	m := &PointMatrix{data: make([]float64, len(idx)*d), n: len(idx), d: d}
	for k, r := range idx {
		if r < 0 || r >= len(pts) {
			return nil, fmt.Errorf("mat: FromVectorsIndexed row %d out of range (n=%d)", r, len(pts))
		}
		if len(pts[r]) != d {
			return nil, fmt.Errorf("mat: FromVectorsIndexed row %d has dimension %d, want %d", r, len(pts[r]), d)
		}
		copy(m.data[k*d:(k+1)*d], pts[r])
	}
	return m, nil
}

// RowSums writes the coordinate sum of every row into dst (allocating
// when dst is too small) and returns it. Each sum accumulates in
// ascending coordinate order with a single accumulator — bit-identical
// to geom.Vector.Sum on the same row.
func (m *PointMatrix) RowSums(dst []float64) []float64 {
	if cap(dst) < m.n {
		dst = make([]float64, m.n)
	}
	dst = dst[:m.n]
	d := m.d
	for i := 0; i < m.n; i++ {
		row := m.data[i*d : (i+1)*d]
		var s float64
		for _, x := range row {
			s += x
		}
		dst[i] = s
	}
	return dst
}

// ComponentMaxInto writes the componentwise maximum of rows [lo, hi)
// into dst (length Dim). The range must be non-empty and in bounds;
// NaN coordinates never win the max (strict `>` against the running
// value, seeded from row lo).
func (m *PointMatrix) ComponentMaxInto(lo, hi int, dst []float64) {
	if lo < 0 || hi > m.n || lo >= hi {
		panic(fmt.Sprintf("mat: ComponentMaxInto range [%d,%d) out of bounds (n=%d)", lo, hi, m.n))
	}
	if len(dst) != m.d {
		panic(fmt.Sprintf("mat: ComponentMaxInto dst has length %d, want %d", len(dst), m.d))
	}
	d := m.d
	copy(dst, m.data[lo*d:(lo+1)*d])
	for i := lo + 1; i < hi; i++ {
		row := m.data[i*d : (i+1)*d]
		for j := 0; j < d; j++ {
			if row[j] > dst[j] {
				dst[j] = row[j]
			}
		}
	}
}

// DominatesRows reports whether row a dominates row b: a ≥ b on every
// coordinate and a > b on at least one — the raw-row form of
// geom.Dominates, bit-identical decisions on the same coordinates
// (both use exact comparisons, no tolerance). The two rows must have
// equal length; the d=4 fast path is branch-free because dominance
// scans are the inner loop of every skyline kernel.
func DominatesRows(a, b []float64) bool {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: DominatesRows dimension mismatch %d vs %d", len(a), len(b)))
	}
	if len(a) == 4 {
		d0 := a[0] - b[0]
		d1 := a[1] - b[1]
		d2 := a[2] - b[2]
		d3 := a[3] - b[3]
		// min ≥ 0 ⟺ no coordinate of a is below b (a NaN difference
		// poisons the min, correctly failing the test); max > 0 ⟺ at
		// least one strict improvement.
		return min(min(d0, d1), min(d2, d3)) >= 0 && max(max(d0, d1), max(d2, d3)) > 0
	}
	strict := false
	for i := range a {
		if a[i] < b[i] || math.IsNaN(a[i]) || math.IsNaN(b[i]) {
			return false
		}
		if a[i] > b[i] {
			strict = true
		}
	}
	return strict
}

// SortIdxByFloatDesc stably sorts idxs so that vals[idxs[k]] is
// non-increasing in k, equal values keeping their prior relative
// order. It is an LSD radix sort on the monotone uint64 image of
// float64 (sign-flipped two's-complement trick), so it handles
// negative values and ±0 correctly; NaN keys are rejected because no
// total order containing them matches a comparison sort. Runs in four
// 16-bit passes — O(n) with small constants, which matters because the
// skyline kernel sorts the full dataset by coordinate sum on every
// from-scratch preprocess.
func SortIdxByFloatDesc(vals []float64, idxs []int32) error {
	n := len(idxs)
	if n < 2 {
		return nil
	}
	keys := make([]uint64, n)
	for k, i := range idxs {
		v := vals[i]
		if math.IsNaN(v) {
			return fmt.Errorf("mat: SortIdxByFloatDesc: NaN key at index %d", i)
		}
		b := math.Float64bits(v)
		if b == 1<<63 {
			// −0 keys as +0: the two compare equal, so a comparison
			// sort would keep their prior order — match it.
			b = 0
		}
		// Monotone image: non-negative floats map above negatives and
		// both halves order correctly as unsigned integers.
		if b&(1<<63) != 0 {
			b = ^b
		} else {
			b |= 1 << 63
		}
		keys[k] = b
	}
	tmpK := make([]uint64, n)
	tmpI := make([]int32, n)
	var cnt [1 << 16]int32
	for shift := 0; shift < 64; shift += 16 {
		for i := range cnt {
			cnt[i] = 0
		}
		for _, k := range keys {
			cnt[(k>>shift)&0xffff]++
		}
		// Descending result: offsets accumulate from the top bucket
		// down, each pass remaining stable.
		var sum int32
		for b := len(cnt) - 1; b >= 0; b-- {
			c := cnt[b]
			cnt[b] = sum
			sum += c
		}
		for i := 0; i < n; i++ {
			b := (keys[i] >> shift) & 0xffff
			pos := cnt[b]
			cnt[b]++
			tmpK[pos] = keys[i]
			tmpI[pos] = idxs[i]
		}
		copy(keys, tmpK)
		copy(idxs, tmpI)
	}
	return nil
}
