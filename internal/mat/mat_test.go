package mat

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// randVec draws coordinates from a mix of regimes — ordinary
// positives, negatives, zeros, subnormals and huge magnitudes — so
// the bit-identity checks cover rounding behavior, not just the happy
// path of normalized [0,1] data.
func randVec(rng *rand.Rand, d int) geom.Vector {
	v := make(geom.Vector, d)
	for i := range v {
		switch rng.Intn(6) {
		case 0:
			v[i] = 0
		case 1:
			v[i] = -rng.Float64()
		case 2:
			v[i] = rng.Float64() * 1e12
		case 3:
			v[i] = rng.Float64() * 1e-12
		default:
			v[i] = rng.Float64()
		}
	}
	return v
}

// TestDotRowBitIdentical is the core kernel contract: DotRow must
// reproduce geom.Vector.Dot to the last bit for every dimension the
// solvers use (and beyond the unroll width).
func TestDotRowBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 13, 16, 31} {
		pts := make([]geom.Vector, 50)
		for i := range pts {
			pts[i] = randVec(rng, d)
		}
		m := FromVectors(pts)
		if m.Rows() != len(pts) || m.Dim() != d {
			t.Fatalf("d=%d: matrix is %dx%d, want %dx%d", d, m.Rows(), m.Dim(), len(pts), d)
		}
		for trial := 0; trial < 20; trial++ {
			w := randVec(rng, d)
			for i, p := range pts {
				want := w.Dot(p)
				got := m.DotRow(w, i)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("d=%d row=%d: DotRow = %x, Vector.Dot = %x", d, i, math.Float64bits(got), math.Float64bits(want))
				}
				if rv := dot(w, m.Row(i)); math.Float64bits(rv) != math.Float64bits(want) {
					t.Fatalf("d=%d row=%d: dot over Row view = %x, want %x", d, i, math.Float64bits(rv), math.Float64bits(want))
				}
			}
		}
	}
}

// TestMaxDotRowsMatchesSequential checks value, argmax, lowest-index
// tie-break and NaN skipping against the reference scan the evaluators
// used before the kernels.
func TestMaxDotRowsMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, d := range []int{1, 2, 4, 6, 9} {
		pts := make([]geom.Vector, 200)
		for i := range pts {
			pts[i] = randVec(rng, d)
		}
		// Deliberate duplicates so ties occur.
		copy(pts[150], pts[10])
		copy(pts[151], pts[10])
		m := FromVectors(pts)
		for trial := 0; trial < 30; trial++ {
			w := randVec(rng, d)
			start := rng.Intn(len(pts))
			end := start + rng.Intn(len(pts)-start+1)

			wantArg, wantBest := -1, math.Inf(-1)
			for i := start; i < end; i++ {
				if u := w.Dot(pts[i]); u > wantBest {
					wantBest, wantArg = u, i
				}
			}
			arg, best := m.MaxDotRows(w, start, end)
			if arg != wantArg || math.Float64bits(best) != math.Float64bits(wantBest) {
				t.Fatalf("d=%d [%d,%d): kernel = (%d, %v), reference = (%d, %v)", d, start, end, arg, best, wantArg, wantBest)
			}
		}
	}
}

func TestMaxDotRowsNaN(t *testing.T) {
	pts := []geom.Vector{{1, 2}, {math.NaN(), 1}, {3, 1}}
	m := FromVectors(pts)
	w := geom.Vector{1, 1}
	arg, best := m.MaxDotRows(w, 0, 3)
	if arg != 2 || best != 4 {
		t.Fatalf("NaN row must be skipped: got (%d, %v), want (2, 4)", arg, best)
	}
	// All-NaN range yields the sentinel, never a NaN max.
	arg, best = m.MaxDotRows(w, 1, 2)
	if arg != -1 || !math.IsInf(best, -1) {
		t.Fatalf("all-NaN range = (%d, %v), want (-1, -Inf)", arg, best)
	}
	// Empty range too.
	arg, best = m.MaxDotRows(w, 2, 2)
	if arg != -1 || !math.IsInf(best, -1) {
		t.Fatalf("empty range = (%d, %v), want (-1, -Inf)", arg, best)
	}
}

// TestMaxDotColsBitIdentical: the transposed support kernel must
// reproduce, per column, geom.Vector.Dot(col, q) bit for bit, and its
// reduction must agree with a first-max sequential scan in column
// order — the exact semantics of dd.Polytope.MaxDot.
func TestMaxDotColsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, d := range []int{1, 2, 4, 6} {
		for _, nCols := range []int{0, 1, 2, 3, 4, 5, 8, 17, 64} {
			cols := make([]geom.Vector, nCols)
			for c := range cols {
				cols[c] = randVec(rng, d)
			}
			tm := TransposeVectors(d, cols)
			if tm.Cols() != nCols || tm.Dim() != d {
				t.Fatalf("transposed is %dx%d, want %dx%d", tm.Dim(), tm.Cols(), d, nCols)
			}
			acc := make([]float64, nCols)
			for trial := 0; trial < 20; trial++ {
				q := randVec(rng, d)
				wantArg, wantBest := -1, math.Inf(-1)
				for c, v := range cols {
					if u := v.Dot(q); u > wantBest {
						wantBest, wantArg = u, c
					}
				}
				arg, best := tm.MaxDotCols(q, acc)
				if arg != wantArg || math.Float64bits(best) != math.Float64bits(wantBest) {
					t.Fatalf("d=%d m=%d: kernel = (%d, %x), reference = (%d, %x)",
						d, nCols, arg, math.Float64bits(best), wantArg, math.Float64bits(wantBest))
				}
			}
		}
	}
}

func TestGather(t *testing.T) {
	pts := []geom.Vector{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
	m := FromVectors(pts)
	g, err := m.Gather([]int{3, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows() != 3 || g.Dim() != 2 {
		t.Fatalf("gathered matrix is %dx%d, want 3x2", g.Rows(), g.Dim())
	}
	for i, want := range []geom.Vector{{7, 8}, {1, 2}, {7, 8}} {
		for j, x := range want {
			if g.Row(i)[j] != x {
				t.Fatalf("gathered row %d = %v, want %v", i, g.Row(i), want)
			}
		}
	}
	if _, err := m.Gather([]int{4}); err == nil {
		t.Fatal("Gather with out-of-range row must error")
	}
	if _, err := m.Gather([]int{-1}); err == nil {
		t.Fatal("Gather with negative row must error")
	}
}

// TestGobRoundTrip: the matrix must survive gob encode/decode exactly,
// including non-finite and signed-zero payloads (raw bit transport).
func TestGobRoundTrip(t *testing.T) {
	pts := []geom.Vector{
		{1.5, math.Inf(1), 0},
		{math.Copysign(0, -1), -2.25, math.NaN()},
	}
	m := FromVectors(pts)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		t.Fatal(err)
	}
	var back PointMatrix
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if back.Rows() != m.Rows() || back.Dim() != m.Dim() {
		t.Fatalf("round trip is %dx%d, want %dx%d", back.Rows(), back.Dim(), m.Rows(), m.Dim())
	}
	for i := range m.data {
		if math.Float64bits(back.data[i]) != math.Float64bits(m.data[i]) {
			t.Fatalf("element %d: %x != %x after round trip", i, math.Float64bits(back.data[i]), math.Float64bits(m.data[i]))
		}
	}
	// Empty matrix round-trips too.
	var ebuf bytes.Buffer
	if err := gob.NewEncoder(&ebuf).Encode(&PointMatrix{}); err != nil {
		t.Fatal(err)
	}
	var empty PointMatrix
	if err := gob.NewDecoder(&ebuf).Decode(&empty); err != nil {
		t.Fatal(err)
	}
	if empty.Rows() != 0 || empty.Dim() != 0 {
		t.Fatalf("empty round trip is %dx%d", empty.Rows(), empty.Dim())
	}
}

func TestGobDecodeRejectsInconsistentPayload(t *testing.T) {
	m := FromVectors([]geom.Vector{{1, 2}, {3, 4}})
	good, err := m.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	// Re-encode with a lying row count: decode must reject it.
	var bad PointMatrix
	forged := forgeHeader(t, good, 3, 2)
	if err := bad.GobDecode(forged); err == nil {
		t.Fatal("decode accepted a payload whose length contradicts its dimensions")
	}
}

// forgeHeader rebuilds a GobEncode payload with altered n/d but the
// original raw coordinate bytes.
func forgeHeader(t *testing.T, payload []byte, n, d int) []byte {
	t.Helper()
	dec := gob.NewDecoder(bytes.NewReader(payload))
	var on, od int
	var raw []byte
	if err := dec.Decode(&on); err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(&od); err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(&raw); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for _, v := range []any{n, d, raw} {
		if err := enc.Encode(v); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestDimensionMismatchPanics(t *testing.T) {
	m := FromVectors([]geom.Vector{{1, 2, 3}})
	for name, fn := range map[string]func(){
		"DotRow":     func() { m.DotRow([]float64{1, 2}, 0) },
		"MaxDotRows": func() { m.MaxDotRows([]float64{1}, 0, 1) },
		"FromVectors": func() {
			FromVectors([]geom.Vector{{1, 2}, {1, 2, 3}})
		},
		"TransposeVectors": func() {
			TransposeVectors(2, []geom.Vector{{1, 2, 3}})
		},
		"MaxDotCols": func() {
			TransposeVectors(2, []geom.Vector{{1, 2}}).MaxDotCols([]float64{1}, make([]float64, 1))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: dimension mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// FuzzKernels is the bit-for-bit differential fuzz target from the
// issue: arbitrary coordinate bytes (including NaN/Inf patterns) must
// never produce a kernel result that differs from geom.Vector.Dot.
func FuzzKernels(f *testing.F) {
	f.Add(uint8(4), []byte{0, 0, 0, 0, 0, 0, 240, 63, 0, 0, 0, 0, 0, 0, 0, 64})
	f.Add(uint8(1), []byte{0, 0, 0, 0, 0, 0, 248, 127}) // NaN
	f.Add(uint8(3), make([]byte, 8*9))
	f.Fuzz(func(t *testing.T, dRaw uint8, raw []byte) {
		d := int(dRaw)%8 + 1
		vals := make([]float64, len(raw)/8)
		for i := range vals {
			var bits uint64
			for b := 0; b < 8; b++ {
				bits |= uint64(raw[i*8+b]) << (8 * b)
			}
			vals[i] = math.Float64frombits(bits)
		}
		if len(vals) < 2*d {
			return
		}
		w := geom.Vector(vals[:d])
		rows := (len(vals) - d) / d
		pts := make([]geom.Vector, rows)
		for i := range pts {
			pts[i] = geom.Vector(vals[d+i*d : d+(i+1)*d])
		}
		m := FromVectors(pts)
		wantArg, wantBest := -1, math.Inf(-1)
		for i, p := range pts {
			want := w.Dot(p)
			got := m.DotRow(w, i)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("row %d: DotRow %x != Dot %x", i, math.Float64bits(got), math.Float64bits(want))
			}
			if want > wantBest {
				wantBest, wantArg = want, i
			}
		}
		arg, best := m.MaxDotRows(w, 0, rows)
		if arg != wantArg || math.Float64bits(best) != math.Float64bits(wantBest) {
			t.Fatalf("MaxDotRows = (%d, %x), reference = (%d, %x)", arg, math.Float64bits(best), wantArg, math.Float64bits(wantBest))
		}

		tm := TransposeVectors(d, pts)
		acc := make([]float64, len(pts))
		cArg, cBest := tm.MaxDotCols(w, acc)
		if cArg != wantArg || math.Float64bits(cBest) != math.Float64bits(wantBest) {
			t.Fatalf("MaxDotCols = (%d, %x), reference = (%d, %x)", cArg, math.Float64bits(cBest), wantArg, math.Float64bits(wantBest))
		}
	})
}
