// Package mat is the flat-memory numeric substrate of the evaluation
// hot paths: row-major point matrices, column-major (transposed)
// vertex matrices, and the blocked dot/argmax kernels every scan in
// internal/core and internal/dd runs on.
//
// Why it exists: the geometric evaluators spend their time computing
// w·p over thousands of points and v·q over dozens of dual vertices,
// and before this package each point was its own heap-allocated
// geom.Vector dotted one scalar at a time through a pointer chase.
// PointMatrix backs n×d points with ONE contiguous []float64, so a
// row range handed to a kernel streams through the cache line by
// line; Transposed stores an m-column vertex matrix column-major so a
// support evaluation accumulates all m dot products per coordinate
// with independent accumulator chains (instruction-level parallelism
// the serial dot cannot have, since Go does not auto-vectorize).
//
// Bit-exactness contract: every kernel reproduces geom.Vector.Dot to
// the last bit.
//
//   - DotRow/MaxDotRows unroll the accumulation 4-way but keep ONE
//     accumulator updated in ascending index order — the identical
//     sequence of fused-nothing float64 operations as Vector.Dot's
//     `s += x * w[i]` loop, so the result is the same bits.
//   - MaxDotCols accumulates acc[c] += q[j]·col[c] with j ascending;
//     per column that is the same addition order as Vector.Dot, and
//     float64 multiplication commutes exactly (rounding is applied to
//     the same real product), so each column's support matches
//     v.Dot(q) bit for bit.
//   - Both argmax kernels reduce with strict `>` in ascending index
//     order: ties break to the lowest index and NaN never wins a
//     comparison — the same semantics as the sequential scans they
//     replace (dd.Polytope.MaxDot, core's regretOf), preserving the
//     determinism contract of DESIGN.md §11.
//
// The cross-validation tests and the FuzzKernels target assert this
// bit-identity on the dimensions the solvers actually use and on
// adversarial inputs (negatives, zeros, infinities, NaN).
//
// Aliasing discipline: Row returns a view into the backing array.
// Views must be consumed immediately (as a kernel or Dot argument) —
// never written through, returned, or stored past the expression that
// produced them. The slicealias analyzer enforces this discipline
// statically (see internal/analysis, fixture testdata/src/matrow).
package mat

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"

	"repro/internal/geom"
)

// PointMatrix is an n×d row-major matrix of points: row i occupies
// data[i*d : (i+1)*d]. Built once per dataset (or per solver run) and
// immutable afterwards; the zero value is an empty 0×0 matrix.
type PointMatrix struct {
	data []float64
	n, d int
}

// FromVectors copies pts into a fresh row-major matrix. All vectors
// must share one dimension (callers validate points before building);
// a mismatch panics like geom.Vector.Dot does.
func FromVectors(pts []geom.Vector) *PointMatrix {
	if len(pts) == 0 {
		return &PointMatrix{}
	}
	d := len(pts[0])
	m := &PointMatrix{data: make([]float64, len(pts)*d), n: len(pts), d: d}
	for i, p := range pts {
		if len(p) != d {
			panic(fmt.Sprintf("mat: FromVectors row %d has dimension %d, want %d", i, len(p), d))
		}
		copy(m.data[i*d:(i+1)*d], p)
	}
	return m
}

// FromVectorsInto is FromVectors backed by buf when buf has the
// capacity (allocating otherwise), for callers that recycle the
// backing across queries — GeoGreedy flattens the full candidate set
// per query, which dominated its footprint before pooling. The
// returned matrix aliases buf; the caller must not release buf to a
// pool before the matrix's last use.
func FromVectorsInto(pts []geom.Vector, buf []float64) *PointMatrix {
	if len(pts) == 0 {
		return &PointMatrix{}
	}
	d := len(pts[0])
	if cap(buf) < len(pts)*d {
		buf = make([]float64, len(pts)*d)
	}
	m := &PointMatrix{data: buf[:len(pts)*d], n: len(pts), d: d}
	for i, p := range pts {
		if len(p) != d {
			panic(fmt.Sprintf("mat: FromVectorsInto row %d has dimension %d, want %d", i, len(p), d))
		}
		copy(m.data[i*d:(i+1)*d], p)
	}
	return m
}

// Rows returns the number of points.
func (m *PointMatrix) Rows() int { return m.n }

// Dim returns the point dimension.
func (m *PointMatrix) Dim() int { return m.d }

// Row returns row i as a capacity-trimmed view into the backing
// array. The view is read-only by contract: consume it immediately
// (pass it to a kernel or Dot), never write through it, return it, or
// retain it — a later matrix rebuild would silently invalidate it.
// The slicealias analyzer flags violations.
func (m *PointMatrix) Row(i int) []float64 {
	return m.data[i*m.d : (i+1)*m.d : (i+1)*m.d]
}

// DotRow returns w·row(i), bit-identical to geom.Vector.Dot(w, row):
// one accumulator, ascending index order, unrolled 4-way.
func (m *PointMatrix) DotRow(w []float64, i int) float64 {
	if len(w) != m.d {
		panic(fmt.Sprintf("mat: DotRow dimension mismatch %d vs %d", len(w), m.d))
	}
	return dot(w, m.data[i*m.d:(i+1)*m.d])
}

// dot is the shared kernel: Σ a[i]·b[i] with a single accumulator in
// ascending order — the exact operation sequence of geom.Vector.Dot,
// so the result is the same bits. The 4-way unroll only removes loop
// overhead; it does not reassociate the sum.
func dot(a, b []float64) float64 {
	var s float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s += a[i] * b[i]
		s += a[i+1] * b[i+1]
		s += a[i+2] * b[i+2]
		s += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// MaxDotRows returns the argmax and maximum of w·row over rows
// [start, end): strict `>` in ascending row order, so ties break to
// the lowest row and NaN products never win (matching the sequential
// scans in core and dd). Returns (-1, -Inf) on an empty range or when
// every dot is NaN.
func (m *PointMatrix) MaxDotRows(w []float64, start, end int) (int, float64) {
	if len(w) != m.d {
		panic(fmt.Sprintf("mat: MaxDotRows dimension mismatch %d vs %d", len(w), m.d))
	}
	best, arg := math.Inf(-1), -1
	d := m.d
	for i := start; i < end; i++ {
		if u := dot(w, m.data[i*d:(i+1)*d]); u > best {
			best, arg = u, i
		}
	}
	return arg, best
}

// Gather copies the given rows (in order) into a compact new matrix —
// how the pruned extreme-set submatrix is built, so the skyline scan
// is contiguous regardless of how sparse the skyline indices are.
// Rows out of range return an error rather than panicking: indices
// may come from a persisted snapshot.
func (m *PointMatrix) Gather(rows []int) (*PointMatrix, error) {
	out := &PointMatrix{data: make([]float64, len(rows)*m.d), n: len(rows), d: m.d}
	for k, r := range rows {
		if r < 0 || r >= m.n {
			return nil, fmt.Errorf("mat: Gather row %d out of range (n=%d)", r, m.n)
		}
		copy(out.data[k*m.d:(k+1)*m.d], m.data[r*m.d:(r+1)*m.d])
	}
	return out, nil
}

// GobEncode serializes the matrix (dimensions + raw coordinates), so
// a PointMatrix can ride inside the gob-based snapshot format of the
// persistence layer.
func (m *PointMatrix) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(m.n); err != nil {
		return nil, err
	}
	if err := enc.Encode(m.d); err != nil {
		return nil, err
	}
	raw := make([]byte, 8*len(m.data))
	for i, x := range m.data {
		binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(x))
	}
	if err := enc.Encode(raw); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode restores a matrix written by GobEncode, validating the
// dimensions against the payload length (a corrupt stream surfaces as
// an error, never an inconsistent matrix).
func (m *PointMatrix) GobDecode(p []byte) error {
	dec := gob.NewDecoder(bytes.NewReader(p))
	var n, d int
	if err := dec.Decode(&n); err != nil {
		return err
	}
	if err := dec.Decode(&d); err != nil {
		return err
	}
	var raw []byte
	if err := dec.Decode(&raw); err != nil {
		return err
	}
	if n < 0 || d < 0 || (d != 0 && n > math.MaxInt/d/8) || len(raw) != 8*n*d {
		return fmt.Errorf("mat: gob payload is %d bytes, want %d for a %d×%d matrix", len(raw), 8*n*d, n, d)
	}
	m.n, m.d = n, d
	m.data = make([]float64, n*d)
	for i := range m.data {
		m.data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return nil
}

// Transposed is a d×m column-major matrix: column c is a d-vector
// and coordinate j of every column is contiguous in
// data[j*m : (j+1)*m]. It stores the dual-hull vertex set so a
// support evaluation max_c col(c)·q streams each coordinate across
// all columns with independent accumulators.
type Transposed struct {
	data []float64
	d, m int
}

// TransposeVectors copies the m column vectors (each of dimension d)
// into a fresh column-major matrix. cols may be empty; a dimension
// mismatch panics like geom.Vector.Dot does.
func TransposeVectors(d int, cols []geom.Vector) *Transposed {
	t := &Transposed{data: make([]float64, d*len(cols)), d: d, m: len(cols)}
	for c, v := range cols {
		if len(v) != d {
			panic(fmt.Sprintf("mat: TransposeVectors column %d has dimension %d, want %d", c, len(v), d))
		}
		for j, x := range v {
			t.data[j*t.m+c] = x
		}
	}
	return t
}

// SetCols refills t in place from the m column vectors, reusing the
// backing array when it has the capacity — the dual hull rebuilds its
// vertex matrix after every insertion, and incremental callers rebuild
// a cap matrix per greedy iteration, so the refill is on the per-query
// allocation path.
func (t *Transposed) SetCols(d int, cols []geom.Vector) {
	if cap(t.data) < d*len(cols) {
		t.data = make([]float64, d*len(cols))
	}
	t.data = t.data[:d*len(cols)]
	t.d, t.m = d, len(cols)
	for c, v := range cols {
		if len(v) != d {
			panic(fmt.Sprintf("mat: SetCols column %d has dimension %d, want %d", c, len(v), d))
		}
		for j, x := range v {
			t.data[j*t.m+c] = x
		}
	}
}

// Cols returns the number of columns (vertices).
func (t *Transposed) Cols() int { return t.m }

// Dim returns the column dimension.
func (t *Transposed) Dim() int { return t.d }

// MaxDotCols returns the argmax and maximum of col(c)·q over all
// columns. acc is caller-provided scratch of capacity ≥ Cols() (so
// batch callers pay one allocation per chunk, not per point); its
// prior contents are ignored. Per column the accumulation runs in
// ascending coordinate order with commuted multiplications, which is
// bit-identical to geom.Vector.Dot(col, q); the reduction is strict
// `>` in ascending column order (lowest-index ties, NaN never wins).
// Returns (-1, -Inf) when there are no columns or every dot is NaN.
func (t *Transposed) MaxDotCols(q []float64, acc []float64) (int, float64) {
	if len(q) != t.d {
		panic(fmt.Sprintf("mat: MaxDotCols dimension mismatch %d vs %d", len(q), t.d))
	}
	m := t.m
	if m == 0 {
		return -1, math.Inf(-1)
	}
	acc = acc[:m]
	for c := range acc {
		acc[c] = 0
	}
	for j := 0; j < t.d; j++ {
		qj := q[j]
		col := t.data[j*m : (j+1)*m]
		c := 0
		for ; c+4 <= m; c += 4 {
			acc[c] += qj * col[c]
			acc[c+1] += qj * col[c+1]
			acc[c+2] += qj * col[c+2]
			acc[c+3] += qj * col[c+3]
		}
		for ; c < m; c++ {
			acc[c] += qj * col[c]
		}
	}
	best, arg := math.Inf(-1), -1
	for c := 0; c < m; c++ {
		if acc[c] > best {
			best, arg = acc[c], c
		}
	}
	return arg, best
}
