package mat

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func TestFromVectorsIndexed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := make([]geom.Vector, 20)
	for i := range pts {
		pts[i] = randVec(rng, 3)
	}
	idx := []int{5, 0, 19, 5, 7}
	m, err := FromVectorsIndexed(pts, idx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != len(idx) || m.Dim() != 3 {
		t.Fatalf("shape %dx%d, want %dx3", m.Rows(), m.Dim(), len(idx))
	}
	for k, r := range idx {
		row := m.Row(k)
		for j := range row {
			if math.Float64bits(row[j]) != math.Float64bits(pts[r][j]) {
				t.Fatalf("row %d (src %d) coord %d: %v vs %v", k, r, j, row[j], pts[r][j])
			}
		}
	}
	if _, err := FromVectorsIndexed(pts, []int{20}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := FromVectorsIndexed(pts, []int{-1}); err == nil {
		t.Fatal("negative index accepted")
	}
	if m, err := FromVectorsIndexed(pts, nil); err != nil || m.Rows() != 0 {
		t.Fatalf("empty gather: %v, %d rows", err, m.Rows())
	}
	ragged := []geom.Vector{{1, 2, 3}, {1, 2}}
	if _, err := FromVectorsIndexed(ragged, []int{0, 1}); err == nil {
		t.Fatal("ragged dimensions accepted")
	}
}

// TestRowSumsBitIdentical pins the contract the happy sweep depends
// on: RowSums equals geom.Vector.Sum bit for bit on every row.
func TestRowSumsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		d := 1 + rng.Intn(7)
		pts := make([]geom.Vector, 1+rng.Intn(30))
		for i := range pts {
			pts[i] = randVec(rng, d)
		}
		m := FromVectors(pts)
		sums := m.RowSums(nil)
		for i, p := range pts {
			if math.Float64bits(sums[i]) != math.Float64bits(p.Sum()) {
				t.Fatalf("trial %d row %d: RowSums %v vs Sum %v", trial, i, sums[i], p.Sum())
			}
		}
		// Reuse path: a big-enough dst must be used in place.
		scratch := make([]float64, len(pts)+5)
		out := m.RowSums(scratch)
		if &out[0] != &scratch[0] {
			t.Fatal("RowSums reallocated over a sufficient dst")
		}
	}
}

func TestComponentMaxInto(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := make([]geom.Vector, 12)
	for i := range pts {
		pts[i] = randVec(rng, 4)
	}
	m := FromVectors(pts)
	dst := make([]float64, 4)
	m.ComponentMaxInto(3, 9, dst)
	for j := 0; j < 4; j++ {
		want := pts[3][j]
		for i := 4; i < 9; i++ {
			if pts[i][j] > want {
				want = pts[i][j]
			}
		}
		if math.Float64bits(dst[j]) != math.Float64bits(want) {
			t.Fatalf("coord %d: %v vs %v", j, dst[j], want)
		}
	}
	for _, fn := range []func(){
		func() { m.ComponentMaxInto(5, 5, dst) },
		func() { m.ComponentMaxInto(-1, 3, dst) },
		func() { m.ComponentMaxInto(0, 13, dst) },
		func() { m.ComponentMaxInto(0, 3, dst[:2]) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad range/dst accepted")
				}
			}()
			fn()
		}()
	}
}

// TestDominatesRowsMatchesGeom pins decision-identity with
// geom.Dominates across dimensions, including the branch-free d=4
// fast path, on adversarial values (negatives, zeros, huge, tiny).
func TestDominatesRowsMatchesGeom(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20000; trial++ {
		d := 1 + rng.Intn(6)
		a, b := randVec(rng, d), randVec(rng, d)
		if rng.Intn(3) == 0 {
			copy(b, a) // force equal prefixes to hit tie paths
			if rng.Intn(2) == 0 && d > 1 {
				b[rng.Intn(d)] = a[0]
			}
		}
		want := geom.Dominates(a, b)
		if got := DominatesRows(a, b); got != want {
			t.Fatalf("d=%d a=%v b=%v: DominatesRows %v, geom.Dominates %v", d, a, b, got, want)
		}
	}
}

// TestDominatesRowsNaN: NaN coordinates must never let a row dominate
// (matching geom.Dominates' comparison semantics where every NaN
// comparison is false), in both the generic and d=4 paths.
func TestDominatesRowsNaN(t *testing.T) {
	nan := math.NaN()
	for _, d := range []int{3, 4} {
		a := make([]float64, d)
		b := make([]float64, d)
		for i := range a {
			a[i], b[i] = 2, 1
		}
		a[d-1] = nan
		if DominatesRows(a, b) {
			t.Fatalf("d=%d: NaN dominator won", d)
		}
		a[d-1] = 2
		b[d-1] = nan
		if DominatesRows(a, b) {
			t.Fatalf("d=%d: NaN dominated lost", d)
		}
	}
}

func TestDominatesRowsDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch accepted")
		}
	}()
	DominatesRows([]float64{1, 2}, []float64{1})
}

// TestSortIdxByFloatDesc checks the radix order against sort.SliceStable
// on mixed-sign data, including ±0 and equal keys (stability).
func TestSortIdxByFloatDesc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(300)
		vals := make([]float64, n)
		for i := range vals {
			switch rng.Intn(5) {
			case 0:
				vals[i] = 0
			case 1:
				vals[i] = math.Copysign(0, -1)
			case 2:
				vals[i] = -rng.Float64() * 1e6
			default:
				vals[i] = rng.Float64() * 1e6
			}
			if rng.Intn(4) == 0 && i > 0 {
				vals[i] = vals[rng.Intn(i)] // force duplicates
			}
		}
		got := make([]int32, n)
		want := make([]int32, n)
		for i := range got {
			got[i] = int32(i)
			want[i] = int32(i)
		}
		if err := SortIdxByFloatDesc(vals, got); err != nil {
			t.Fatal(err)
		}
		sort.SliceStable(want, func(a, b int) bool { return vals[want[a]] > vals[want[b]] })
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d pos %d: %d vs %d (vals %v vs %v)",
					trial, i, got[i], want[i], vals[got[i]], vals[want[i]])
			}
		}
	}
	vals := []float64{1, math.NaN(), 2}
	idxs := []int32{0, 1, 2}
	if err := SortIdxByFloatDesc(vals, idxs); err == nil {
		t.Fatal("NaN key accepted")
	}
}
