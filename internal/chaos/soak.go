//go:build kregretfault

package chaos

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	kregret "repro"
	"repro/internal/core"
	"repro/internal/fault"
)

// Config shapes one soak run. Everything observable is derived from
// Seed; Duration only bounds wall-clock (every client always finishes
// at least one full pass of its script, so short durations do not
// silently skip coverage).
type Config struct {
	Seed     int64
	Duration time.Duration
	// Clients and PerClient size the schedule; zero values default to
	// 6 clients × 40 requests.
	Clients, PerClient int
	// Dir holds the snapshot file; it is seeded with garbage bytes so
	// every run exercises the corrupt-snapshot rebuild path.
	Dir string
}

// Report summarizes a soak run's observed outcomes.
type Report struct {
	Seed      int64
	Issued    uint64
	OK        uint64 // non-degraded answers, byte-checked against control
	Degraded  uint64
	Shed      uint64 // ErrShed + ErrOverloaded + ErrShuttingDown
	Canceled  uint64 // context errors surfaced to the client
	Numerical uint64 // fallback-disabled numerical failures
	Mutations uint64 // durable inserts applied through Engine.Apply
	// MutationsFailed counts Apply errors other than shutdown — an
	// injected WAL fsync or compaction failure. Each is individually
	// harmless (the mutation was cleanly rejected or applied with its
	// persistence deferred); invariant 6 proves so collectively.
	MutationsFailed uint64
	Stats           kregret.EngineStats
}

// outcome counters shared by the soak clients.
type tally struct {
	issued, ok, degraded, shed, canceled, numerical atomic.Uint64
	mutations, mutationsFailed                      atomic.Uint64
}

// violation collection: the soak never fails fast — it records every
// invariant breach and reports them joined, so one bad seed yields
// the full picture in a single run.
type violations struct {
	mu   sync.Mutex
	errs []error
}

func (v *violations) addf(format string, args ...any) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.errs) < 32 {
		v.errs = append(v.errs, fmt.Errorf(format, args...))
	}
}

func (v *violations) join() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return errors.Join(v.errs...)
}

// profile returns the query options of a request class. Classes that
// differ only in context handling (short deadlines, pre-canceled)
// reuse a solver profile, so their control answers exist too.
func profile(c RequestClass) []kregret.Option {
	switch c {
	case ClassHealthyLive, ClassShortDeadline:
		return []kregret.Option{kregret.WithCandidates(kregret.CandidatesSkyline)}
	case ClassNoFallback:
		return []kregret.Option{kregret.WithCandidates(kregret.CandidatesSkyline), kregret.WithoutFallback()}
	case ClassSkewed:
		return []kregret.Option{kregret.WithAlgorithm(kregret.AlgoGreedy)}
	default: // ClassHealthy, ClassPreCanceled: engine defaults (index path)
		return nil
	}
}

// sameAnswer is the byte-identity check of invariant 5: identical
// selection in identical order and bit-identical regret ratio. The
// bit comparison (not ==) is deliberate — it is exact, NaN-safe and
// analyzer-clean.
func sameAnswer(a, b *kregret.Answer) bool {
	if len(a.Indices) != len(b.Indices) {
		return false
	}
	for i := range a.Indices {
		if a.Indices[i] != b.Indices[i] {
			return false
		}
	}
	return math.Float64bits(a.MRR) == math.Float64bits(b.MRR)
}

// waitCtx pauses for d or until ctx ends — the ctx-aware wait shape
// used by every polling loop below (the sleepctx discipline).
func waitCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// soakPoints builds the deterministic dataset of a run: n points on a
// jittered simplex slice, the same shape the engine test corpus uses,
// so every class of query has a non-trivial skyline to chew on.
func soakPoints(seed int64, n, d int) []kregret.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]kregret.Point, n)
	for i := range pts {
		p := make(kregret.Point, d)
		var sum float64
		for j := range p {
			p[j] = 0.05 + rng.ExpFloat64()
			sum += p[j]
		}
		for j := range p {
			p[j] = p[j] / sum * (0.8 + 0.4*rng.Float64())
		}
		pts[i] = p
	}
	return pts
}

// Run executes one seeded soak: corrupt-snapshot startup, fault-free
// control answers, the armed storm under concurrent mixed load,
// disarm, breaker-reclose convergence, drain, and the conservation
// and leak checks. The returned error joins every invariant
// violation; a nil error is a fully clean run.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 6
	}
	if cfg.PerClient <= 0 {
		cfg.PerClient = 40
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 250 * time.Millisecond
	}
	fault.Reset()
	defer fault.Reset()
	baseline := runtime.NumGoroutine()
	v := &violations{}

	// The dataset is WAL-backed: mutation traffic must be durable so
	// the post-drain recovery invariant has an on-disk pair to check.
	walPath := filepath.Join(cfg.Dir, "chaos.wal")
	baseSnap := filepath.Join(cfg.Dir, "chaos.base")
	ds, err := kregret.NewDataset(soakPoints(cfg.Seed, 160, 3),
		kregret.WithWAL(walPath, baseSnap))
	if err != nil {
		return nil, fmt.Errorf("chaos: dataset: %w", err)
	}
	// The mutation class inserts this strictly-dominated point (half
	// of tuple 0, already normalized): it can never join a skyline,
	// happy or convex candidate set, so control answers survive every
	// fold untouched.
	mutPt := ds.Point(0)
	for j := range mutPt {
		mutPt[j] *= 0.5
	}

	// Invariant 3 setup: the snapshot the engine finds is garbage; it
	// must detect the corruption, rebuild, and say so.
	snap := filepath.Join(cfg.Dir, "chaos.snap")
	if err := os.WriteFile(snap, []byte("torn snapshot garbage"), 0o644); err != nil {
		return nil, fmt.Errorf("chaos: seeding corrupt snapshot: %w", err)
	}
	eng, err := kregret.NewEngine(ds,
		kregret.WithWorkers(4),
		kregret.WithQueueDepth(8),
		kregret.WithBreaker(3, 40*time.Millisecond),
		kregret.WithRetryBudget(2, time.Millisecond),
		kregret.WithWatchdog(5*time.Millisecond),
		kregret.WithQueryTimeout(250*time.Millisecond),
		kregret.WithSnapshot(snap),
		// Folds every other mutation: both the pending-mutation state
		// and the swap-under-load path stay exercised.
		kregret.WithRebuildThreshold(2),
	)
	if err != nil {
		return nil, fmt.Errorf("chaos: engine: %w", err)
	}
	if !eng.Stats().SnapshotRebuilt {
		v.addf("invariant 3: corrupt snapshot was not rebuilt")
	}

	// Fault-free control answers, one per (class profile, k) — served
	// through the same engine so invariant 5 compares like with like.
	type ckey struct {
		class RequestClass
		k     int
	}
	control := map[ckey]*kregret.Answer{}
	for class := RequestClass(0); class < numClasses; class++ {
		if class == ClassMutation {
			continue // writes have no control answer
		}
		for k := 1; k <= 4; k++ {
			ans, err := eng.Query(ctx, k, profile(class)...)
			if err != nil {
				return nil, fmt.Errorf("chaos: control query class %d k=%d: %w", class, k, err)
			}
			if ans.Degraded {
				return nil, fmt.Errorf("chaos: control query class %d k=%d degraded before any fault: %s",
					class, k, ans.FallbackReason)
			}
			control[ckey{class, k}] = ans
		}
	}

	// Arm the storm.
	sched := Generate(cfg.Seed, cfg.Clients, cfg.PerClient)
	for _, f := range sched.Faults {
		if f.Sleep > 0 {
			fault.ArmRandSleep(f.Site, f.Seed, f.P, f.Sleep)
		} else {
			fault.ArmRand(f.Site, f.Seed, f.P)
		}
	}

	var tl tally
	var wg sync.WaitGroup
	start := time.Now()
	for c := range sched.Requests {
		wg.Add(1)
		go func(script []Request) {
			defer wg.Done()
			for pass := 0; pass == 0 || time.Since(start) < cfg.Duration; pass++ {
				for _, req := range script {
					issueOne(ctx, eng, req, control[ckey{req.Class, req.K}], mutPt, &tl, v)
				}
			}
		}(sched.Requests[c])
	}
	wg.Wait()

	// Disarm and converge: invariant 2 says every breaker the storm
	// tripped recloses once probes succeed again. Probe each live
	// profile until the breaker map reads all-closed (the 40ms
	// cooldown admits a half-open probe quickly; 5s is generous).
	fault.Reset()
	convergeCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	for {
		for _, class := range []RequestClass{ClassHealthyLive, ClassSkewed} {
			if ans, err := eng.Query(convergeCtx, 2, profile(class)...); err == nil && !ans.Degraded {
				if want := control[ckey{class, 2}]; !sameAnswer(ans, want) {
					v.addf("invariant 5: post-storm class %d answer diverged: got %v mrr=%x, want %v mrr=%x",
						class, ans.Indices, math.Float64bits(ans.MRR), want.Indices, math.Float64bits(want.MRR))
				}
			}
		}
		open := 0
		for _, state := range eng.Stats().Breakers {
			if state != "closed" {
				open++
			}
		}
		if open == 0 {
			break
		}
		if convergeCtx.Err() != nil {
			v.addf("invariant 2: breakers never reclosed after faults cleared: %v", eng.Stats().Breakers)
			break
		}
		waitCtx(convergeCtx, 5*time.Millisecond)
	}

	// Drain, then settle the books.
	if err := eng.Shutdown(ctx); err != nil {
		v.addf("shutdown: %v", err)
	}
	stats := eng.Stats()
	if got, want := tl.issued.Load(), tl.ok.Load()+tl.degraded.Load()+tl.shed.Load()+tl.canceled.Load()+tl.numerical.Load()+tl.mutations.Load()+tl.mutationsFailed.Load(); got != want {
		v.addf("invariant 1: %d requests issued but only %d classified", got, want)
	}
	// Mutation conservation: the engine's applied counter is exactly
	// the dataset's logical clock — no mutation double-counted, none
	// half-applied.
	if stats.MutationsApplied != ds.Seq() {
		v.addf("invariant 1: engine applied %d mutations but the dataset clock reads %d",
			stats.MutationsApplied, ds.Seq())
	}

	// Invariant 6: recovering from the on-disk pair — without closing
	// the live log, the crash model — reproduces the acknowledged
	// in-memory state bit-for-bit, however many injected fsync or
	// compaction failures the storm landed.
	rec, rerr := kregret.Recover(baseSnap, walPath)
	switch {
	case rerr != nil:
		v.addf("invariant 6: recovery failed: %v", rerr)
	case rec.Len() != ds.Len() || rec.Seq() != ds.Seq():
		v.addf("invariant 6: recovered len/seq %d/%d, in-memory %d/%d",
			rec.Len(), rec.Seq(), ds.Len(), ds.Seq())
	default:
		mismatches := 0
		for i := 0; i < ds.Len() && mismatches < 8; i++ {
			livePt, recPt := ds.Point(i), rec.Point(i)
			for j := range livePt {
				if math.Float64bits(livePt[j]) != math.Float64bits(recPt[j]) {
					v.addf("invariant 6: recovered tuple %d differs at coordinate %d: %x vs %x",
						i, j, math.Float64bits(recPt[j]), math.Float64bits(livePt[j]))
					mismatches++
					break
				}
			}
		}
	}
	if rec != nil {
		if cerr := rec.Close(); cerr != nil {
			v.addf("invariant 6: closing recovered dataset: %v", cerr)
		}
	}
	if cerr := ds.Close(); cerr != nil {
		v.addf("invariant 6: closing live dataset: %v", cerr)
	}
	if stats.Admitted != stats.Completed+stats.Canceled+stats.ShedAtDequeue {
		v.addf("invariant 1: pool counters do not balance: admitted %d != completed %d + canceled %d + shedAtDequeue %d",
			stats.Admitted, stats.Completed, stats.Canceled, stats.ShedAtDequeue)
	}
	if stats.Queued != 0 || stats.InFlight != 0 {
		v.addf("invariant 1: gauges non-zero after drain: queued=%d inflight=%d", stats.Queued, stats.InFlight)
	}

	// Invariant 4: every engine goroutine (workers, watchdog, drain
	// recorder) is gone. The runtime count is noisy, so poll briefly.
	leakCtx, cancelLeak := context.WithTimeout(ctx, 5*time.Second)
	defer cancelLeak()
	for runtime.NumGoroutine() > baseline {
		if !waitCtx(leakCtx, 2*time.Millisecond) {
			v.addf("invariant 4: goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
			break
		}
	}

	rep := &Report{
		Seed:            cfg.Seed,
		Issued:          tl.issued.Load(),
		OK:              tl.ok.Load(),
		Degraded:        tl.degraded.Load(),
		Shed:            tl.shed.Load(),
		Canceled:        tl.canceled.Load(),
		Numerical:       tl.numerical.Load(),
		Mutations:       tl.mutations.Load(),
		MutationsFailed: tl.mutationsFailed.Load(),
		Stats:           stats,
	}
	return rep, v.join()
}

// issueOne sends one scripted request and classifies its outcome
// against the invariants.
func issueOne(ctx context.Context, eng *kregret.Engine, req Request, want *kregret.Answer, mutPt kregret.Point, tl *tally, v *violations) {
	tl.issued.Add(1)
	if req.Class == ClassMutation {
		// A durable write: the dominated insert folds a new epoch
		// (every other one, per the rebuild threshold) under the
		// readers' feet. Failures beyond shutdown are injected
		// durability faults — tolerated here, settled by invariant 6.
		switch err := eng.Apply(ctx, kregret.InsertMutation(mutPt)); {
		case err == nil:
			tl.mutations.Add(1)
		case errors.Is(err, kregret.ErrShuttingDown):
			tl.shed.Add(1)
		default:
			tl.mutationsFailed.Add(1)
		}
		return
	}
	qctx := ctx
	var cancel context.CancelFunc
	switch {
	case req.Class == ClassPreCanceled:
		qctx, cancel = context.WithCancel(ctx)
		cancel()
	case req.Timeout > 0:
		qctx, cancel = context.WithTimeout(ctx, req.Timeout)
		defer cancel()
	}

	ans, err := eng.Query(qctx, req.K, profile(req.Class)...)
	switch {
	case err == nil && !ans.Degraded:
		tl.ok.Add(1)
		// Invariant 5: a response the engine did not label degraded
		// must be indistinguishable from the fault-free answer.
		if !sameAnswer(ans, want) {
			v.addf("invariant 5: class %d k=%d non-degraded answer diverged: got %v mrr=%x, want %v mrr=%x",
				req.Class, req.K, ans.Indices, math.Float64bits(ans.MRR), want.Indices, math.Float64bits(want.MRR))
		}
	case err == nil:
		tl.degraded.Add(1)
		// Degraded answers may differ from control but must still be
		// well-formed: a k-selection with a sane regret ratio.
		if len(ans.Indices) == 0 || len(ans.Indices) > req.K {
			v.addf("degraded answer has %d indices for k=%d", len(ans.Indices), req.K)
		}
		if !(ans.MRR >= 0 && ans.MRR <= 1) {
			v.addf("degraded answer has regret ratio %v outside [0,1]", ans.MRR)
		}
	case errors.Is(err, kregret.ErrOverloaded),
		errors.Is(err, kregret.ErrShed),
		errors.Is(err, kregret.ErrShuttingDown):
		tl.shed.Add(1)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		tl.canceled.Add(1)
	case transientNumerical(err):
		// Legitimate for every class, not only ClassNoFallback: the
		// injected degeneracies also land inside the regret evaluation
		// that Cube shares, so a sustained storm can exhaust the whole
		// fallback chain.
		tl.numerical.Add(1)
	default:
		v.addf("class %d k=%d: unclassifiable outcome: %v", req.Class, req.K, err)
	}
}

// transientNumerical recognizes both error shapes a fallback-disabled
// query can surface: the bare core degeneracy error and the typed
// *kregret.NumericalError a recovered panic produces.
func transientNumerical(err error) bool {
	if core.IsNumerical(err) {
		return true
	}
	var ne *kregret.NumericalError
	return errors.As(err, &ne)
}
