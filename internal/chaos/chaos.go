// Package chaos is the seeded fault-schedule soak harness for the
// serving engine. A Schedule — generated deterministically from a
// single int64 seed — pairs a randomized combination of
// internal/fault injection sites (each armed on an independent
// probabilistic trigger) with per-client request scripts mixing
// healthy, short-deadline, pre-canceled, fallback-disabled,
// breaker-key-skewed and durable-mutation traffic. The tagged half of
// the package (soak.go, build tag kregretfault) drives a
// kregret.Engine with the schedule and checks six global invariants:
//
//  1. request conservation — every issued request is answered, shed
//     or canceled, none lost, and the pool counters balance exactly;
//  2. breaker convergence — every breaker that tripped during the
//     storm recloses (trip → half-open → closed) once the faults are
//     disarmed;
//  3. corrupt-snapshot recovery — the engine rebuilds a snapshot it
//     finds torn and serves from the rebuilt index;
//  4. leak-free shutdown — the goroutine count returns to its
//     pre-engine baseline after drain;
//  5. answer fidelity — every non-degraded response is byte-identical
//     (indices and math.Float64bits of the regret ratio) to the
//     fault-free control answer for its request shape, even as
//     mutation traffic swaps serving epochs underneath the readers;
//  6. durable recovery — after the drain, Recover over the on-disk
//     (snapshot, WAL) pair reproduces the final acknowledged
//     in-memory dataset bit-for-bit, injected fsync and compaction
//     failures included.
//
// Everything is a pure function of the seed, so any failing soak run
// is replayed exactly with
//
//	go test -race -tags kregretfault ./internal/chaos \
//	    -chaos.seed <seed> -chaos.runs 1
package chaos

import (
	"hash/fnv"
	"math/rand"
	"time"

	"repro/internal/fault"
)

// RequestClass labels the traffic mix of a soak run. Each class pins
// a distinct (algorithm, candidate set, context) shape so the storm
// exercises the index fast path, the live solvers, the retry budget
// and both admission shed paths at once.
type RequestClass int

const (
	// ClassHealthy is a default-option query: served from the
	// snapshot index in O(k), immune to solver faults.
	ClassHealthy RequestClass = iota
	// ClassHealthyLive forces the live GeoGreedy solver over skyline
	// candidates, bypassing the index so solver faults land on it.
	ClassHealthyLive
	// ClassNoFallback disables the degradation chain: injected
	// numerical faults surface as errors, which is what makes the
	// engine's retry budget observable.
	ClassNoFallback
	// ClassSkewed routes to the Greedy solver, concentrating load on
	// a second breaker key so per-key isolation is visible.
	ClassSkewed
	// ClassShortDeadline runs the live solver under a deadline of a
	// few milliseconds — the shed-at-dequeue, mid-solve cancellation
	// and watchdog paths.
	ClassShortDeadline
	// ClassPreCanceled arrives already canceled and must be shed at
	// admission without touching a solver.
	ClassPreCanceled
	// ClassMutation is a durable write: Engine.Apply inserting a
	// strictly-dominated point. Dominated inserts never change any
	// candidate set, so every other class's control answer stays
	// byte-identical across the folds — mutation traffic is free to
	// interleave with the answer-fidelity invariant. Deletes are
	// excluded for the same reason: shifting indices would invalidate
	// the controls.
	ClassMutation

	numClasses = 7
)

// FaultArm describes one probabilistic injection: Site fires on each
// execution with probability P, drawn from a per-site deterministic
// stream seeded by Seed. A non-zero Sleep stalls the site instead of
// failing it (only meaningful for duration sites like lp.slow-pivot).
type FaultArm struct {
	Site  string
	P     float64
	Sleep time.Duration
	Seed  int64
}

// Request is one scripted query.
type Request struct {
	Class RequestClass
	K     int
	// Timeout overrides the engine's default query budget when > 0
	// (used by ClassShortDeadline).
	Timeout time.Duration
}

// Schedule is a fully deterministic soak plan: which sites are armed
// (and how hard), and what every client will send.
type Schedule struct {
	Seed     int64
	Faults   []FaultArm
	Requests [][]Request // one script per client
}

// siteSeed derives the per-site RNG seed: the schedule seed folded
// with an FNV-1a hash of the site name, so two sites armed by the
// same schedule fire on independent streams and a replay re-arms each
// site identically.
func siteSeed(seed int64, site string) int64 {
	h := fnv.New64a()
	//kregret:allow errdrop: hash.Hash.Write is documented to never return an error
	h.Write([]byte(site))
	return seed ^ int64(h.Sum64())
}

// Generate builds the schedule for one soak run: clients scripts of
// perClient requests each, plus a randomized arming of the fault
// catalog. Two calls with the same arguments return identical
// schedules.
func Generate(seed int64, clients, perClient int) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := &Schedule{Seed: seed}

	// Error-injecting sites: each joins the storm with probability
	// 1/2, firing per execution at a rate drawn from [0.05, 0.35).
	for _, site := range []string{
		fault.SiteGeoGreedySupport,
		fault.SiteDDAddHalfspace,
		fault.SiteLPIterationCap,
		fault.SiteGeoGreedyPanic,
		fault.SiteParallelWorker,
	} {
		if rng.Intn(2) == 0 {
			continue
		}
		s.Faults = append(s.Faults, FaultArm{
			Site: site,
			P:    0.05 + 0.30*rng.Float64(),
			Seed: siteSeed(seed, site),
		})
	}
	// Admission-layer sites fire rarely — they shed whole requests,
	// and a high rate would starve the solver paths of traffic.
	for _, site := range []string{fault.SiteServeQueueFull, fault.SiteServeBreakerTrip} {
		if rng.Intn(2) == 0 {
			continue
		}
		s.Faults = append(s.Faults, FaultArm{
			Site: site,
			P:    0.02 + 0.08*rng.Float64(),
			Seed: siteSeed(seed, site),
		})
	}
	// Durability sites fire rarely too: an injected WAL fsync,
	// compaction or snapshot-fsync failure must surface as a clean
	// mutation error (the soak's recovery invariant proves no torn
	// acknowledged state), and mutation traffic is itself a small
	// slice of the mix. wal.append is deliberately absent — it models
	// a mid-write process death and bricks the log until compaction,
	// which the crash-point sweep covers exhaustively instead.
	for _, site := range []string{fault.SiteWALSync, fault.SiteWALRotate, fault.SitePersistSync} {
		if rng.Intn(2) == 0 {
			continue
		}
		s.Faults = append(s.Faults, FaultArm{
			Site: site,
			P:    0.02 + 0.08*rng.Float64(),
			Seed: siteSeed(seed, site),
		})
	}
	// The slow-pivot stall turns the LP into a sluggish loop; kept to
	// low-millisecond stalls so a soak run stays short while still
	// overshooting the short-deadline class's budget.
	if rng.Intn(2) == 1 {
		s.Faults = append(s.Faults, FaultArm{
			Site:  fault.SiteLPSlowPivot,
			P:     0.10 + 0.20*rng.Float64(),
			Sleep: 200*time.Microsecond + time.Duration(rng.Int63n(int64(2*time.Millisecond))),
			Seed:  siteSeed(seed, fault.SiteLPSlowPivot),
		})
	}
	// A storm with nothing armed is a control run, not a chaos run.
	if len(s.Faults) == 0 {
		s.Faults = append(s.Faults, FaultArm{
			Site: fault.SiteGeoGreedySupport,
			P:    0.20,
			Seed: siteSeed(seed, fault.SiteGeoGreedySupport),
		})
	}

	// Client scripts: a weighted class mix, k in [1, 4].
	for c := 0; c < clients; c++ {
		script := make([]Request, perClient)
		for i := range script {
			req := Request{K: 1 + rng.Intn(4)}
			switch p := rng.Float64(); {
			case p < 0.24:
				req.Class = ClassHealthy
			case p < 0.43:
				req.Class = ClassHealthyLive
			case p < 0.61:
				req.Class = ClassNoFallback
			case p < 0.76:
				req.Class = ClassSkewed
			case p < 0.86:
				req.Class = ClassShortDeadline
				req.Timeout = time.Millisecond + time.Duration(rng.Int63n(int64(4*time.Millisecond)))
			case p < 0.93:
				req.Class = ClassMutation
			default:
				req.Class = ClassPreCanceled
			}
			script[i] = req
		}
		s.Requests = append(s.Requests, script)
	}
	return s
}
