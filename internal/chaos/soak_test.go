//go:build kregretfault

package chaos

import (
	"context"
	"flag"
	"fmt"
	"testing"
	"time"
)

// The soak is seed-swept by default and replayable by flag:
//
//	make test-chaos                                     # 20 seeds
//	go test -race -tags kregretfault ./internal/chaos \
//	    -chaos.seed 1337 -chaos.runs 1                  # replay one
var (
	chaosSeed     = flag.Int64("chaos.seed", 1, "first soak seed; each run uses seed, seed+1, ...")
	chaosRuns     = flag.Int("chaos.runs", 20, "number of consecutive seeds to soak")
	chaosDuration = flag.Duration("chaos.duration", 250*time.Millisecond, "wall-clock floor per soak run (every client always finishes one full script pass)")
)

// TestChaosSoak runs the full seeded storm once per seed. Every seed
// is its own subtest so a violation names the exact replay command.
func TestChaosSoak(t *testing.T) {
	for i := 0; i < *chaosRuns; i++ {
		seed := *chaosSeed + int64(i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rep, err := Run(context.Background(), Config{
				Seed:     seed,
				Duration: *chaosDuration,
				Dir:      t.TempDir(),
			})
			if err != nil {
				t.Fatalf("soak violated invariants (replay: go test -race -tags kregretfault ./internal/chaos -chaos.seed %d -chaos.runs 1):\n%v",
					seed, err)
			}
			if rep.Issued == 0 || rep.OK == 0 {
				t.Fatalf("soak issued %d requests with %d clean answers — the storm starved the load", rep.Issued, rep.OK)
			}
			t.Logf("seed %d: issued=%d ok=%d degraded=%d shed=%d canceled=%d numerical=%d mutations=%d mutfail=%d retries=%d rescued=%d watchdog=%d epoch=%d drain=%v",
				seed, rep.Issued, rep.OK, rep.Degraded, rep.Shed, rep.Canceled, rep.Numerical,
				rep.Mutations, rep.MutationsFailed,
				rep.Stats.Retries, rep.Stats.RetrySuccesses, rep.Stats.WatchdogStuck, rep.Stats.Epoch, rep.Stats.DrainDuration)
		})
	}
}
