package chaos

import (
	"reflect"
	"testing"
)

// TestGenerateDeterministicPerSeed pins the replay contract: the
// schedule is a pure function of (seed, clients, perClient), and
// different seeds genuinely vary the plan.
func TestGenerateDeterministicPerSeed(t *testing.T) {
	a := Generate(42, 6, 30)
	b := Generate(42, 6, 30)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a.Faults) == 0 {
		t.Fatal("schedule armed no faults")
	}
	if len(a.Requests) != 6 || len(a.Requests[0]) != 30 {
		t.Fatalf("schedule shape wrong: %d clients × %d requests", len(a.Requests), len(a.Requests[0]))
	}

	// Across a handful of seeds the plans must differ and every
	// request class must appear somewhere — the generator covers the
	// whole traffic mix, not a lucky subset.
	seen := map[RequestClass]bool{}
	distinct := false
	for seed := int64(1); seed <= 8; seed++ {
		s := Generate(seed, 6, 30)
		if !reflect.DeepEqual(s, a) {
			distinct = true
		}
		for _, script := range s.Requests {
			for _, r := range script {
				seen[r.Class] = true
				if r.K < 1 || r.K > 4 {
					t.Fatalf("seed %d generated k=%d outside [1,4]", seed, r.K)
				}
				if (r.Class == ClassShortDeadline) != (r.Timeout > 0) {
					t.Fatalf("seed %d: timeout %v inconsistent with class %d", seed, r.Timeout, r.Class)
				}
			}
		}
	}
	if !distinct {
		t.Fatal("eight seeds all produced the same schedule")
	}
	if len(seen) != numClasses {
		t.Fatalf("8 seeds × 180 requests covered only %d of %d classes", len(seen), numClasses)
	}
}
