package happy

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
)

func TestComputeParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 8; trial++ {
		d := 2 + rng.Intn(4)
		n := 200 + rng.Intn(800)
		pts := make([]geom.Vector, n)
		for i := range pts {
			p := make(geom.Vector, d)
			for j := range p {
				p[j] = 0.05 + 0.95*rng.Float64()
			}
			pts[i] = p
		}
		for j := 0; j < d; j++ {
			maxv := 0.0
			for _, p := range pts {
				maxv = math.Max(maxv, p[j])
			}
			for _, p := range pts {
				p[j] /= maxv
			}
		}
		sky := skylineFilter(pts)
		want := ComputeAmongSkyline(pts, sky)
		for _, workers := range []int{0, 1, 3, 8} {
			got := ComputeAmongSkylineParallel(pts, sky, workers)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d workers=%d: %v vs %v", trial, workers, got, want)
			}
		}
	}
}
