package happy

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/dd"
	"repro/internal/geom"
	"repro/internal/skyline"
)

// planesViaDualHull is an independent oracle for EnumeratePlanes: the
// non-origin facets of Conv({p} ∪ VC) are the vertices of the cube
// cap Q(p) = [0,1]^d ∩ {ω·p ≤ 1} that are tight on the p-constraint,
// computed here with the double-description engine.
func planesViaDualHull(t *testing.T, p geom.Vector) []geom.Vector {
	t.Helper()
	d := len(p)
	upper := make([]float64, d)
	for i := range upper {
		upper[i] = 1
	}
	poly, err := dd.NewBox(upper)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := poly.AddHalfspace(p, 1); err != nil {
		t.Fatal(err)
	}
	var normals []geom.Vector
	for _, v := range poly.Vertices() {
		if math.Abs(v.Point.Dot(p)-1) < 1e-9 {
			normals = append(normals, v.Point.Clone())
		}
	}
	// When Σp < 1 the constraint is redundant and the only non-origin
	// facet of Conv({p} ∪ VC) is the simplex.
	if len(normals) == 0 {
		ones := make(geom.Vector, d)
		for i := range ones {
			ones[i] = 1
		}
		normals = append(normals, ones)
	}
	return normals
}

func sortNormals(ns []geom.Vector) {
	sort.Slice(ns, func(a, b int) bool {
		for j := range ns[a] {
			if ns[a][j] != ns[b][j] {
				return ns[a][j] < ns[b][j]
			}
		}
		return false
	})
}

func TestEnumeratePlanesPaperExample(t *testing.T) {
	// p3 = (0.67, 1.00) from the paper's Table I example: Y(p3) is
	// the line through vc1 and p3 plus the line through p3 and vc2.
	planes, err := EnumeratePlanes(geom.Vector{0.67, 1.00})
	if err != nil {
		t.Fatal(err)
	}
	if len(planes) != 2 {
		t.Fatalf("|Y(p3)| = %d, want 2: %v", len(planes), planes)
	}
	var ns []geom.Vector
	for _, h := range planes {
		ns = append(ns, h.Normal)
	}
	sortNormals(ns)
	// x2 = 1 (through p3 and vc2) and x1 + 0.33·x2 = 1 (through vc1
	// and p3).
	if !ns[0].Equal(geom.Vector{0, 1}, 1e-9) {
		t.Fatalf("first normal %v", ns[0])
	}
	if !ns[1].Equal(geom.Vector{1, 0.33}, 1e-9) {
		t.Fatalf("second normal %v", ns[1])
	}
}

func TestEnumeratePlanesBeyondPaperCount(t *testing.T) {
	// The paper assumes |Y(p)| = d; this point has 4 > 3 facets
	// (see package documentation).
	planes, err := EnumeratePlanes(geom.Vector{0.1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(planes) != 4 {
		t.Fatalf("|Y(p)| = %d, want 4: %v", len(planes), planes)
	}
}

func TestEnumeratePlanesMatchesDualHull(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		d := 2 + rng.Intn(4)
		p := make(geom.Vector, d)
		for j := range p {
			p[j] = 0.05 + 0.95*rng.Float64()
		}
		planes, err := EnumeratePlanes(p)
		if err != nil {
			t.Fatal(err)
		}
		var got []geom.Vector
		for _, h := range planes {
			got = append(got, h.Normal)
		}
		want := planesViaDualHull(t, p)
		sortNormals(got)
		sortNormals(want)
		if len(got) != len(want) {
			t.Fatalf("trial %d p=%v: %d facets, oracle %d\n got: %v\nwant: %v",
				trial, p, len(got), len(want), got, want)
		}
		for i := range got {
			if !got[i].Equal(want[i], 1e-7) {
				t.Fatalf("trial %d p=%v: facet %d = %v, oracle %v", trial, p, i, got[i], want[i])
			}
		}
	}
}

func TestSubjugatesMatchesPlaneOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 500; trial++ {
		d := 2 + rng.Intn(4)
		p := make(geom.Vector, d)
		q := make(geom.Vector, d)
		for j := range p {
			p[j] = 0.05 + 0.95*rng.Float64()
			q[j] = 0.05 + 0.95*rng.Float64()
		}
		if rng.Intn(4) == 0 {
			// Force boundary-ish configurations.
			copy(q, p)
			q[rng.Intn(d)] *= 0.7
		}
		fast, err := Subjugates(p, q)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := SubjugatesByPlanes(p, q)
		if err != nil {
			t.Fatal(err)
		}
		if fast != oracle {
			t.Fatalf("trial %d: Subjugates(%v, %v) = %v, oracle %v", trial, p, q, fast, oracle)
		}
	}
}

func TestSubjugatesBasics(t *testing.T) {
	// Paper's running example logic: a dominated point is subjugated
	// by its dominator.
	sub, err := Subjugates(geom.Vector{0.9, 0.9}, geom.Vector{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !sub {
		t.Fatal("dominator must subjugate dominated point")
	}
	// No self-subjugation.
	sub, err = Subjugates(geom.Vector{0.9, 0.9}, geom.Vector{0.9, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if sub {
		t.Fatal("point subjugates itself")
	}
	// Two incomparable extreme points do not subjugate each other.
	sub, _ = Subjugates(geom.Vector{1, 0.1}, geom.Vector{0.1, 1})
	if sub {
		t.Fatal("extreme points must not subjugate each other")
	}
}

func TestSubjugatesSumBelowOne(t *testing.T) {
	// Both points strictly inside the VC simplex subjugate each other
	// (both are strictly inside Conv(D) and thus useless candidates).
	a := geom.Vector{0.5, 0.1}
	b := geom.Vector{0.5, 0.2}
	s1, _ := Subjugates(a, b)
	s2, _ := Subjugates(b, a)
	if !s1 || !s2 {
		t.Fatalf("mutual subjugation of sub-simplex points: %v, %v", s1, s2)
	}
}

func TestSubjugatesErrors(t *testing.T) {
	if _, err := Subjugates(geom.Vector{1}, geom.Vector{1, 2}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := Subjugates(geom.Vector{0, 1}, geom.Vector{1, 1}); err == nil {
		t.Fatal("zero coordinate accepted")
	}
	if _, err := Subjugates(geom.Vector{1, 1}, geom.Vector{math.NaN(), 1}); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestComputeSmall(t *testing.T) {
	// Configuration in the spirit of the paper's Figure 1: extreme
	// points, a "happy but not convex" point, a subjugated skyline
	// point and dominated points.
	pts := []geom.Vector{
		{1.00, 0.10}, // 0: boundary dim 1 — happy
		{0.10, 1.00}, // 1: boundary dim 2 — happy
		{0.70, 0.70}, // 2: extreme — happy
		{0.88, 0.40}, // 3: skyline, between 0 and 2 but close to hull — check below
		{0.30, 0.30}, // 4: dominated — not even skyline
	}
	got, err := Compute(pts)
	if err != nil {
		t.Fatal(err)
	}
	// Regardless of point 3's status, 0..2 must be happy and 4 not.
	want := map[int]bool{0: true, 1: true, 2: true}
	gotSet := map[int]bool{}
	for _, i := range got {
		gotSet[i] = true
	}
	for i := range want {
		if !gotSet[i] {
			t.Fatalf("point %d missing from happy set %v", i, got)
		}
	}
	if gotSet[4] {
		t.Fatalf("dominated point reported happy: %v", got)
	}
}

func TestComputeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		d := 2 + rng.Intn(3)
		n := 5 + rng.Intn(40)
		pts := make([]geom.Vector, n)
		for i := range pts {
			p := make(geom.Vector, d)
			for j := range p {
				p[j] = 0.05 + 0.95*rng.Float64()
			}
			pts[i] = p
		}
		// Normalize per dimension so boundary points exist.
		for j := 0; j < d; j++ {
			maxv := 0.0
			for _, p := range pts {
				maxv = math.Max(maxv, p[j])
			}
			for _, p := range pts {
				p[j] /= maxv
			}
		}
		got, err := Compute(pts)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force over ALL adversaries (no skyline filter) with
		// the plane oracle.
		var want []int
		for qi, q := range pts {
			isHappy := true
			for pi, p := range pts {
				if pi == qi {
					continue
				}
				s, err := SubjugatesByPlanes(p, q)
				if err != nil {
					t.Fatal(err)
				}
				if s {
					isHappy = false
					break
				}
			}
			if isHappy {
				want = append(want, qi)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: Compute = %v, brute force = %v", trial, got, want)
		}
	}
}

func TestHappySubsetOfSkyline(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 20; trial++ {
		d := 2 + rng.Intn(4)
		n := 50 + rng.Intn(100)
		pts := make([]geom.Vector, n)
		for i := range pts {
			p := make(geom.Vector, d)
			for j := range p {
				p[j] = 0.05 + 0.95*rng.Float64()
			}
			pts[i] = p
		}
		hp, err := Compute(pts)
		if err != nil {
			t.Fatal(err)
		}
		sky, err := skyline.Of(pts)
		if err != nil {
			t.Fatal(err)
		}
		inSky := map[int]bool{}
		for _, i := range sky {
			inSky[i] = true
		}
		for _, i := range hp {
			if !inSky[i] {
				t.Fatalf("trial %d: happy point %d not a skyline point", trial, i)
			}
		}
		if len(hp) > len(sky) {
			t.Fatalf("trial %d: |happy| = %d > |sky| = %d", trial, len(hp), len(sky))
		}
	}
}

func TestComputeErrors(t *testing.T) {
	if out, err := Compute(nil); err != nil || out != nil {
		t.Fatalf("empty Compute = %v, %v", out, err)
	}
	if _, err := Compute([]geom.Vector{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged input accepted")
	}
	if _, err := Compute([]geom.Vector{{0, 1}}); err == nil {
		t.Fatal("zero coordinate accepted")
	}
}

func TestMembershipGeometry(t *testing.T) {
	p := geom.Vector{1, 1}
	// Inside the unit square: member with slack.
	if m := Membership(p, geom.Vector{0.5, 0.5}); m >= 1 {
		t.Fatalf("interior membership %v", m)
	}
	// The point itself: on boundary.
	if m := Membership(p, p); math.Abs(m-1) > 1e-9 {
		t.Fatalf("self membership %v", m)
	}
	// Outside.
	if m := Membership(geom.Vector{0.5, 0.5}, geom.Vector{0.9, 0.9}); m <= 1 {
		t.Fatalf("outside membership %v", m)
	}
}

func TestEnumeratePlanesDimensionCap(t *testing.T) {
	p := make(geom.Vector, 17)
	for i := range p {
		p[i] = 0.5
	}
	if _, err := EnumeratePlanes(p); err == nil {
		t.Fatal("d=17 accepted")
	}
}
