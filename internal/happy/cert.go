package happy

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/parallel"
)

// Cert is a witness certificate for the happy-point computation over
// a skyline: Wit[i] is the original index of some point subjugating
// pts[Sky[i]], or -1 when Sky[i] is happy. The certificate is what
// makes delta maintenance exact (see update.go): after a mutation,
// a surviving witness still proves non-happiness without any rescan,
// because subjugation is a pure function of the two points' values.
//
// Sky aliases the slice the certificate was built from; treat a Cert
// as immutable once published (the dsState cache shares certs across
// epochs).
type Cert struct {
	Sky []int
	Wit []int32
}

// HappyPoints returns the happy indices (ascending), exactly the
// slice ComputeAmongSkyline returns for the same inputs.
func (c *Cert) HappyPoints() []int {
	out := make([]int, 0, len(c.Sky))
	for i, w := range c.Wit {
		if w == -1 {
			out = append(out, c.Sky[i])
		}
	}
	sort.Ints(out)
	return out
}

// certGrain: candidates per parallel work unit. Per-candidate cost is
// skewed (subjugated candidates exit on the first witness), so units
// stay small to balance.
const certGrain = 8

// ComputeAmongSkylineCert computes the witness certificate for the
// candidates sky against adversaries sky, via the blocked kernel when
// the set is large enough to amortize the sweep build and the scalar
// scan otherwise. The caller is responsible for sky being the true
// skyline of pts (ascending) and pts being validated.
func ComputeAmongSkylineCert(pts []geom.Vector, sky []int) *Cert {
	return ComputeAmongSkylineCertParallel(pts, sky, 1)
}

// ComputeAmongSkylineCertParallel is ComputeAmongSkylineCert with the
// candidate loop fanned out over `workers` goroutines (0 means the
// process default). The certificate is identical for every width:
// both paths share one sweep, and each candidate's witness depends
// only on that read-only sweep.
func ComputeAmongSkylineCertParallel(pts []geom.Vector, sky []int, workers int) *Cert {
	c, err := ComputeAmongSkylineCertParallelCtx(context.Background(), pts, sky, workers)
	if err != nil {
		// Unreachable: the background context is never canceled.
		return &Cert{Sky: sky, Wit: witnessesScalar(pts, sky)}
	}
	return c
}

// ComputeAmongSkylineCertParallelCtx is ComputeAmongSkylineCertParallel
// with cooperative cancellation, checked between work units. The
// returned error wraps ctx.Err() when canceled; the certificate is
// identical to the sequential one whenever the error is nil.
func ComputeAmongSkylineCertParallelCtx(ctx context.Context, pts []geom.Vector, sky []int, workers int) (*Cert, error) {
	return computeCertCtx(ctx, pts, sky, workers)
}

func computeCertCtx(ctx context.Context, pts []geom.Vector, sky []int, workers int) (*Cert, error) {
	if len(sky) == 0 {
		return &Cert{Sky: sky}, nil
	}
	if len(sky) < kernelMinSky {
		return &Cert{Sky: sky, Wit: witnessesScalar(pts, sky)}, nil
	}
	s := newSubjSweep(pts, sky)
	wit := make([]int32, len(sky))
	workers = parallel.Resolve(workers)
	if workers == 1 {
		for i := range sky {
			if i%1024 == 0 && ctx.Err() != nil {
				return nil, fmt.Errorf("happy: canceled during happy-point preprocessing: %w", ctx.Err())
			}
			wit[i] = s.firstSubjugator(int(s.pos[i]))
		}
		return &Cert{Sky: sky, Wit: wit}, nil
	}
	err := parallel.For(ctx, len(sky), workers, certGrain, func(start, end int) error {
		for i := start; i < end; i++ {
			wit[i] = s.firstSubjugator(int(s.pos[i]))
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("happy: canceled during happy-point preprocessing: %w", err)
	}
	return &Cert{Sky: sky, Wit: wit}, nil
}
