package happy

import (
	"sort"

	"repro/internal/geom"
)

// Incremental happy-set maintenance over the witness certificate.
// The exactness argument (pinned differentially in update_test.go):
//
//   - subjugates is a pure function of the two points' coordinate
//     values, so every decision recorded in the previous certificate
//     — "w subjugates s" and, implicitly for happy points, "no old
//     adversary subjugates s" — stays byte-for-byte valid as long as
//     both points' values survive the mutation.
//   - The from-scratch computation tests each candidate against the
//     NEW skyline. For a previously happy candidate, decisions
//     against adversaries shared with the old skyline are already
//     known (all negative), so only adversaries the mutation ADDED
//     need testing.
//   - A witness that left the new skyline is discarded and the
//     candidate rescanned, even though the witness point may still
//     exist and subjugate it: reusing it would lean on the
//     "dominator inherits subjugation" lemma, which is exact in real
//     arithmetic but not at the eps boundary in floats — the rescan
//     keeps incremental == from-scratch bit-identical rather than
//     merely set-equal in the limit.
//
// Certificates therefore maintain the invariant Wit[i] ∈ Sky ∪ {-1}:
// every witness is a member of the same epoch's skyline.

// scanWitness returns the first member of sky (ascending) subjugating
// pts[qi], or -1 — the scalar rescan used for new and orphaned
// candidates.
func scanWitness(pts []geom.Vector, sky []int, qi int) int32 {
	q := pts[qi]
	for _, pi := range sky {
		if pi == qi {
			continue
		}
		if subjugates(pts[pi], q) {
			return int32(pi)
		}
	}
	return -1
}

// witnessOf looks up the previous certificate's witness for original
// index s. prev.Sky is ascending, so this is a binary search.
func witnessOf(prev *Cert, s int) (int32, bool) {
	i := sort.SearchInts(prev.Sky, s)
	if i < len(prev.Sky) && prev.Sky[i] == s {
		return prev.Wit[i], true
	}
	return 0, false
}

// UpdateInsert patches certificate prev — computed over the
// pre-insert skyline — after appending a point at index len(pts)-1.
// skyNew, removed, and inserted are skyline.UpdateInsert's outputs
// for the same mutation. When the new point did not join the skyline
// the adversary and candidate sets are unchanged and prev is returned
// AS-IS (shared) — the O(1) fast path.
func UpdateInsert(pts []geom.Vector, prev *Cert, skyNew, removed []int, inserted bool) *Cert {
	if !inserted {
		return prev
	}
	newIdx := len(pts) - 1
	removedSet := make(map[int]bool, len(removed))
	for _, r := range removed {
		removedSet[r] = true
	}
	wit := make([]int32, len(skyNew))
	for i, s := range skyNew {
		if s == newIdx {
			wit[i] = scanWitness(pts, skyNew, s)
			continue
		}
		w, ok := witnessOf(prev, s)
		switch {
		case !ok:
			// Unreachable for consistent inputs (skyNew − {newIdx} ⊆
			// prev.Sky); rescan rather than corrupt the certificate.
			wit[i] = scanWitness(pts, skyNew, s)
		case w == -1:
			// Was happy: no old adversary subjugates it, and removal
			// only shrinks the adversary set — test the one addition.
			if subjugates(pts[newIdx], pts[s]) {
				wit[i] = int32(newIdx)
			} else {
				wit[i] = -1
			}
		case removedSet[int(w)]:
			// Witness left the skyline: rescan (see package comment).
			wit[i] = scanWitness(pts, skyNew, s)
		default:
			wit[i] = w
		}
	}
	return &Cert{Sky: skyNew, Wit: wit}
}

// UpdateDelete patches certificate prev after deleting oldIdx delIdx
// under the shift-down convention. skyNew, entrants, and wasSky are
// skyline.UpdateDelete's outputs for the same mutation (post-delete
// indices). pts is the post-delete point set.
func UpdateDelete(pts []geom.Vector, prev *Cert, delIdx int, skyNew, entrants []int, wasSky bool) *Cert {
	unshift := func(s int) int {
		// Post-delete index back to the pre-delete index prev knows.
		if s >= delIdx {
			return s + 1
		}
		return s
	}
	entrantSet := make(map[int]bool, len(entrants))
	for _, e := range entrants {
		entrantSet[e] = true
	}
	wit := make([]int32, len(skyNew))
	for i, s := range skyNew {
		if entrantSet[s] {
			wit[i] = scanWitness(pts, skyNew, s)
			continue
		}
		w, ok := witnessOf(prev, unshift(s))
		switch {
		case !ok:
			wit[i] = scanWitness(pts, skyNew, s) // unreachable backstop, as in UpdateInsert
		case w == -1:
			// Was happy: only the entrants are new adversaries.
			wit[i] = -1
			for _, e := range entrants {
				if subjugates(pts[e], pts[s]) {
					wit[i] = int32(e)
					break
				}
			}
		case int(w) == delIdx:
			// Witness was deleted: rescan against the new skyline.
			wit[i] = scanWitness(pts, skyNew, s)
		default:
			// Witness survives (a non-deleted skyline member stays in
			// the skyline when points are only removed); shift it.
			if int(w) > delIdx {
				wit[i] = w - 1
			} else {
				wit[i] = w
			}
		}
	}
	return &Cert{Sky: skyNew, Wit: wit}
}
