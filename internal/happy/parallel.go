package happy

import (
	"context"
	"runtime"

	"repro/internal/geom"
)

// ComputeAmongSkylineParallel is ComputeAmongSkyline with the
// per-candidate subjugation scans fanned out over `workers`
// goroutines (0 means GOMAXPROCS). Results are identical to the
// sequential version; only the wall-clock changes. Both widths share
// one read-only subjSweep (see kernel.go), so the parallel path pays
// the banded layout once and splits only the candidate loop.
func ComputeAmongSkylineParallel(pts []geom.Vector, sky []int, workers int) []int {
	out, err := ComputeAmongSkylineParallelCtx(context.Background(), pts, sky, workers)
	if err != nil {
		// Unreachable: the background context is never canceled. Keep
		// the sequential answer as the correctness backstop anyway.
		return computeAmong(pts, sky, sky)
	}
	return out
}

// ComputeAmongSkylineParallelCtx is ComputeAmongSkylineParallel with
// cooperative cancellation: the context is checked between work
// units, so a deadline stops the preprocessing within one unit of
// work per goroutine. The returned error wraps ctx.Err() when
// canceled; the result is identical to the sequential version
// whenever the error is nil.
func ComputeAmongSkylineParallelCtx(ctx context.Context, pts []geom.Vector, sky []int, workers int) ([]int, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	c, err := computeCertCtx(ctx, pts, sky, workers)
	if err != nil {
		return nil, err
	}
	return c.HappyPoints(), nil
}
