package happy

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/geom"
)

// ComputeAmongSkylineParallel is ComputeAmongSkyline with the
// per-candidate subjugation scans fanned out over `workers`
// goroutines (0 means GOMAXPROCS). Results are identical to the
// sequential version; only the wall-clock changes. The candidate
// loop dominates the O(d²·|sky|²) preprocessing cost on large
// datasets (≈16 s sequentially on the 903k-tuple household stand-in),
// and parallelizes embarrassingly because the adversary set is
// read-only.
func ComputeAmongSkylineParallel(pts []geom.Vector, sky []int, workers int) []int {
	out, err := ComputeAmongSkylineParallelCtx(context.Background(), pts, sky, workers)
	if err != nil {
		// Unreachable: the background context is never canceled. Keep
		// the sequential answer as the correctness backstop anyway.
		return computeAmong(pts, sky, sky)
	}
	return out
}

// ComputeAmongSkylineParallelCtx is ComputeAmongSkylineParallel with
// cooperative cancellation: the context is checked before each chunk
// claim, so a deadline stops the preprocessing within one chunk of
// work per goroutine. The returned error wraps ctx.Err() when
// canceled; the result is identical to the sequential version
// whenever the error is nil.
func ComputeAmongSkylineParallelCtx(ctx context.Context, pts []geom.Vector, sky []int, workers int) ([]int, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(sky) < 64 {
		return computeAmong(pts, sky, sky), nil
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		out  []int
		next int
	)
	const chunk = 16
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]int, 0, len(sky)/workers+1)
			for ctx.Err() == nil {
				mu.Lock()
				start := next
				next += chunk
				mu.Unlock()
				if start >= len(sky) {
					break
				}
				end := min(start+chunk, len(sky))
				for _, qi := range sky[start:end] {
					q := pts[qi]
					isHappy := true
					for _, pi := range sky {
						if pi == qi {
							continue
						}
						if subjugates(pts[pi], q) {
							isHappy = false
							break
						}
					}
					if isHappy {
						local = append(local, qi)
					}
				}
			}
			mu.Lock()
			out = append(out, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("happy: canceled during happy-point preprocessing: %w", err)
	}
	sort.Ints(out)
	return out, nil
}
