package happy

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/skyline"
)

// checkCert asserts the certificate invariants against the CURRENT
// point set: Wit[i] ∈ Sky ∪ {-1}, every witness actually subjugates
// its candidate, every -1 candidate is genuinely happy, and the
// induced happy set equals a from-scratch recompute.
func checkCert(t *testing.T, ctxt string, pts []geom.Vector, c *Cert) {
	t.Helper()
	inSky := make(map[int]bool, len(c.Sky))
	for _, s := range c.Sky {
		inSky[s] = true
	}
	for i, w := range c.Wit {
		s := c.Sky[i]
		if w == -1 {
			for _, p := range c.Sky {
				if p != s && subjugates(pts[p], pts[s]) {
					t.Fatalf("%s: %d marked happy but %d subjugates it", ctxt, s, p)
				}
			}
			continue
		}
		if !inSky[int(w)] || int(w) == s {
			t.Fatalf("%s: witness %d for %d violates Wit ∈ Sky \\ {self}", ctxt, w, s)
		}
		if !subjugates(pts[w], pts[s]) {
			t.Fatalf("%s: witness %d does not subjugate %d", ctxt, w, s)
		}
	}
	got := c.HappyPoints()
	want := computeAmong(pts, c.Sky, c.Sky)
	if len(got) != len(want) {
		t.Fatalf("%s: happy |%d| vs from-scratch |%d|\ngot  %v\nwant %v", ctxt, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: happy[%d] = %d, want %d", ctxt, i, got[i], want[i])
		}
	}
}

// TestUpdateCertDifferential drives randomized insert/delete sequences
// through skyline.Update* + happy.Update* exactly as the Dataset epoch
// fold does, checking after every mutation that the patched
// certificate is valid and its happy set equals a from-scratch
// recompute over the new skyline.
func TestUpdateCertDifferential(t *testing.T) {
	for _, g := range kernelGens {
		for d := 2; d <= 6; d++ {
			pool, err := g.fn(360, d, int64(d*13+len(g.name)))
			if err != nil {
				t.Fatal(err)
			}
			pts := append([]geom.Vector(nil), pool[:60]...)
			pool = pool[60:]
			sky := skylineFilter(pts)
			cert := &Cert{Sky: sky, Wit: witnessesScalar(pts, sky)}
			rng := rand.New(rand.NewSource(int64(d * 3)))
			for step := 0; step < 150; step++ {
				if len(pool) > 0 && (len(pts) < 15 || rng.Intn(2) == 0) {
					pts = append(pts, pool[0])
					pool = pool[1:]
					skyNew, removed, inserted, err := skyline.UpdateInsert(pts, cert.Sky)
					if err != nil {
						t.Fatal(err)
					}
					next := UpdateInsert(pts, cert, skyNew, removed, inserted)
					if !inserted && next != cert {
						t.Fatalf("%s d=%d step %d: no-op insert rebuilt the certificate", g.name, d, step)
					}
					cert = next
				} else {
					delIdx := rng.Intn(len(pts))
					skyNew, entrants, wasSky, err := skyline.UpdateDelete(pts, cert.Sky, delIdx)
					if err != nil {
						t.Fatal(err)
					}
					pts = append(pts[:delIdx], pts[delIdx+1:]...)
					cert = UpdateDelete(pts, cert, delIdx, skyNew, entrants, wasSky)
				}
				checkCert(t, g.name, pts, cert)
			}
		}
	}
}

// TestUpdateInsertWitnessEvicted pins the rescan rule: when an insert
// evicts a candidate's witness from the skyline, the candidate must be
// re-scanned rather than inheriting a stale (possibly still-existing)
// witness — the certificate may never point outside the current sky.
func TestUpdateInsertWitnessEvicted(t *testing.T) {
	// 0 subjugates 1 without dominating it (1 stays on the skyline);
	// inserting a point that dominates 0 but not 1 evicts the witness.
	pts := []geom.Vector{
		{0.6, 0.6},
		{0.65, 0.3},
		{0.1, 0.9},
	}
	sky := skylineFilter(pts)
	cert := &Cert{Sky: sky, Wit: witnessesScalar(pts, sky)}
	w, ok := witnessOf(cert, 1)
	if !ok || w != 0 {
		t.Fatalf("setup: expected witness 0 for point 1, got %d (%v)", w, ok)
	}
	pts = append(pts, geom.Vector{0.62, 0.95})
	skyNew, removed, inserted, err := skyline.UpdateInsert(pts, cert.Sky)
	if err != nil {
		t.Fatal(err)
	}
	if !inserted {
		t.Fatal("setup: dominating insert did not join the skyline")
	}
	next := UpdateInsert(pts, cert, skyNew, removed, inserted)
	checkCert(t, "witness-evicted", pts, next)
	if w, ok := witnessOf(next, 1); !ok || int(w) == 0 {
		t.Fatalf("orphaned witness not replaced: got %d (%v)", w, ok)
	}
}

// TestUpdateDeleteWitnessDeleted: deleting the witness itself forces a
// rescan under the shift-down convention.
func TestUpdateDeleteWitnessDeleted(t *testing.T) {
	pts := []geom.Vector{
		{0.6, 0.6},
		{0.55, 0.55},
		{0.1, 0.9},
		{0.9, 0.1},
	}
	sky := skylineFilter(pts)
	cert := &Cert{Sky: sky, Wit: witnessesScalar(pts, sky)}
	skyNew, entrants, wasSky, err := skyline.UpdateDelete(pts, cert.Sky, 0)
	if err != nil {
		t.Fatal(err)
	}
	pts = append(pts[:0], pts[1:]...)
	next := UpdateDelete(pts, cert, 0, skyNew, entrants, wasSky)
	checkCert(t, "witness-deleted", pts, next)
}
