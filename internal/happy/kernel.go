// Blocked subjugation kernel: the happy-point filter reorganized as a
// banded row-sweep over a packed mat.PointMatrix, decision-equal to
// the scalar subjugates path.
//
// # Why decision-equality (not value-equality) suffices
//
// subjugates(p, q) depends on m(q) = min over the fixed value set
// V = {g(0), g(1)} ∪ {g(q_j/p_j) : q_j/p_j ∈ (0,1)} only through the
// three-way classification m < 1−eps / m > 1+eps / boundary, and the
// boundary branch ignores m's exact value. So a kernel that computes
// each MEMBER of V with bit-identical arithmetic may evaluate them in
// any order, stop as soon as one value proves m < 1−eps, and skip any
// value it can PROVE exceeds 1+eps — the classification, and hence
// the happy set, is unchanged. Three sound skip rules are used, each
// derived in real arithmetic and applied with a guard band
// (subjGuard = 1e-6) that exceeds the accumulated float64 rounding of
// the quantities involved by many orders of magnitude:
//
//  1. Sum prefix: g(λ) ≥ λ(1−Σp) + Σq for every λ∈[0,1] (dropping
//     the positive-part clamps), so m ≥ Σq − max(0, Σp−1). An
//     adversary with Σp < Σq − guard cannot subjugate a candidate
//     with Σq > 1 + eps + 2·guard. Adversaries are sorted by
//     descending sum, so this prunes a whole suffix per candidate —
//     the "likely subjugators come first" ordering.
//  2. Block max: g is non-increasing in p, so for the componentwise
//     block maximum bx of a block, m_p(q) ≥ m_bx(q) for every member
//     p. One decide call on bx with threshold 1+eps+guard skips the
//     whole block.
//  3. Pass skip: the same linear bound at one breakpoint,
//     g(λ_j) ≥ λ_j(1−Σp) + Σq, rearranged division-free as
//     q_j·(Σp−1) < (Σq − thresh − guard)·p_j, skips the breakpoint's
//     O(d) evaluation pass entirely. Breakpoints with λ_j ∉ (0,1)
//     are skipped exactly as the scalar path skips them (q_j ≥ p_j
//     implies fl(q_j/p_j) ≥ 1 by monotonicity of rounding).
//
// Anything the rules cannot resolve falls back to the scalar
// subjugates on the original vectors, so eps-boundary inputs take the
// exact legacy path. The differential and fuzz suites in
// kernel_test.go pin all of this the way FuzzKernels pins DotRow.
package happy

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/mat"
)

const (
	// subjGuard is the guard band separating the real-arithmetic skip
	// bounds from the float64 values the scalar path computes. The
	// bounds' rounding error is ≤ a few ulps of the coordinate sums
	// (≈1e-13 for sums up to ~1e3); 1e-6 dwarfs it while pruning
	// nothing that matters statistically.
	subjGuard = 1e-6
	// sweepBand: adversaries are partitioned into contiguous bands of
	// the descending-sum order; within a band rows are re-clustered by
	// argmax coordinate so block maxima stay tight. Band boundaries
	// preserve the sum-prefix exit at band granularity.
	sweepBand = 256
	// sweepBlock is the block-max granularity inside a band.
	sweepBlock = 16
	// kernelMinSky: below this many skyline points the banded setup
	// costs more than the scalar scan it saves.
	kernelMinSky = 64
)

// decideRow classifies subjugation of candidate q by adversary p from
// packed rows: 1 means proven (some member of V is < 1−eps), -1 means
// refuted (every member of V exceeds thresh ≥ 1+eps), 0 means
// unresolved — the caller must fall back to the scalar subjugates.
// sq and sp are the rows' coordinate sums; margin is
// sq − thresh − subjGuard, precomputed by the caller; thresh is
// 1+eps for a real adversary and 1+eps+subjGuard for a block maximum.
func decideRow(p, q []float64, sq, sp, margin, thresh float64) int {
	d := len(q)
	spm1 := sp - 1
	bnd := margin > 0 && spm1 > 0
	// Branch-free common case: g(1) and the all-passes-skipped test.
	acc1 := 1.0
	skipAll := true
	for j := 0; j < d; j++ {
		acc1 += max(0, q[j]-p[j])
		if !(q[j] >= p[j] || (bnd && q[j]*spm1 < margin*p[j])) {
			skipAll = false
		}
	}
	if skipAll && acc1 > thresh && sq > thresh {
		return -1
	}
	if sq < 1-eps {
		return 1
	}
	boundary := sq <= thresh || acc1 <= thresh
	for j := 0; j < d; j++ {
		if bnd && q[j]*spm1 < margin*p[j] {
			continue
		}
		lam := q[j] / p[j]
		if lam <= 0 || lam >= 1 {
			continue
		}
		acc := lam
		for k := 0; k < d; k++ {
			acc += max(0, q[k]-lam*p[k])
		}
		if acc < 1-eps {
			return 1
		}
		if acc <= thresh {
			boundary = true
		}
	}
	if boundary {
		return 0
	}
	return -1
}

// decide4 is decideRow specialized to d=4 — the bench dimension —
// with every row element scalarized into registers. Must remain
// decision-identical to decideRow (fuzz-pinned in kernel_test.go).
func decide4(p []float64, q0, q1, q2, q3, sq, sp, margin, thresh float64) int {
	p0, p1, p2, p3 := p[0], p[1], p[2], p[3]
	spm1 := sp - 1
	bnd := margin > 0 && spm1 > 0
	acc1 := 1.0 + max(0, q0-p0) + max(0, q1-p1) + max(0, q2-p2) + max(0, q3-p3)
	skipAll := (q0 >= p0 || (bnd && q0*spm1 < margin*p0)) &&
		(q1 >= p1 || (bnd && q1*spm1 < margin*p1)) &&
		(q2 >= p2 || (bnd && q2*spm1 < margin*p2)) &&
		(q3 >= p3 || (bnd && q3*spm1 < margin*p3))
	if skipAll && acc1 > thresh && sq > thresh {
		return -1
	}
	if sq < 1-eps {
		return 1
	}
	boundary := sq <= thresh || acc1 <= thresh
	for j := 0; j < 4; j++ {
		var qj, pj float64
		switch j {
		case 0:
			qj, pj = q0, p0
		case 1:
			qj, pj = q1, p1
		case 2:
			qj, pj = q2, p2
		case 3:
			qj, pj = q3, p3
		}
		if bnd && qj*spm1 < margin*pj {
			continue
		}
		lam := qj / pj
		if lam <= 0 || lam >= 1 {
			continue
		}
		acc := lam + max(0, q0-lam*p0) + max(0, q1-lam*p1) + max(0, q2-lam*p2) + max(0, q3-lam*p3)
		if acc < 1-eps {
			return 1
		}
		if acc <= thresh {
			boundary = true
		}
	}
	if boundary {
		return 0
	}
	return -1
}

// subjSweep is the banded adversary layout: skyline rows gathered
// into a packed matrix in descending-sum band order with argmax
// clustering inside each band, plus the block/band summaries the skip
// rules need. Built once per preprocess (or per epoch) and shared
// read-only by every candidate scan, including parallel ones.
type subjSweep struct {
	pts  []geom.Vector // original points, for the scalar fallback
	m    *mat.PointMatrix
	sums []float64 // row sums, sweep order
	orig []int32   // sweep position -> original point index
	pos  []int32   // i -> sweep position of sky[i]
	sky  []int

	bandMaxSum []float64 // per band: max member sum (non-increasing)
	blockMax   []float64 // per block: componentwise max, d floats each
	blockSum   []float64 // per block: coordinate sum of blockMax
}

// newSubjSweep builds the sweep for adversary set sky over pts. The
// caller guarantees sky is sorted ascending and pts are validated
// (finite, strictly positive, one dimension).
func newSubjSweep(pts []geom.Vector, sky []int) *subjSweep {
	n := len(sky)
	d := len(pts[sky[0]])
	sums := make([]float64, n)
	for i, idx := range sky {
		sums[i] = pts[idx].Sum()
	}
	ord := make([]int32, n)
	for i := range ord {
		ord[i] = int32(i)
	}
	// Descending sum, stable — ties keep ascending sky order.
	if err := mat.SortIdxByFloatDesc(sums, ord); err != nil {
		// Unreachable for validated inputs (finite positive coords);
		// degrade to a comparison sort rather than panic.
		sort.SliceStable(ord, func(a, b int) bool { return sums[ord[a]] > sums[ord[b]] })
	}
	// Cluster each band by argmax coordinate (specialists together),
	// descending on that coordinate, so block maxima are tight.
	argmax := func(v geom.Vector) int {
		best := 0
		for j := 1; j < d; j++ {
			if v[j] > v[best] {
				best = j
			}
		}
		return best
	}
	for lo := 0; lo < n; lo += sweepBand {
		hi := min(lo+sweepBand, n)
		seg := ord[lo:hi]
		sort.SliceStable(seg, func(a, b int) bool {
			va, vb := pts[sky[seg[a]]], pts[sky[seg[b]]]
			ga, gb := argmax(va), argmax(vb)
			if ga != gb {
				return ga < gb
			}
			return va[ga] > vb[gb]
		})
	}
	gather := make([]int, n)
	orig := make([]int32, n)
	pos := make([]int32, n)
	sweepSums := make([]float64, n)
	for p, o := range ord {
		gather[p] = sky[o]
		orig[p] = int32(sky[o])
		pos[o] = int32(p)
		sweepSums[p] = sums[o]
	}
	m, err := mat.FromVectorsIndexed(pts, gather)
	if err != nil {
		// Unreachable: indices come straight from sky.
		panic("happy: sweep gather: " + err.Error())
	}
	nBands := (n + sweepBand - 1) / sweepBand
	bandMaxSum := make([]float64, nBands)
	for b := 0; b < nBands; b++ {
		mx := sweepSums[b*sweepBand]
		for i := b*sweepBand + 1; i < min((b+1)*sweepBand, n); i++ {
			if sweepSums[i] > mx {
				mx = sweepSums[i]
			}
		}
		bandMaxSum[b] = mx
	}
	nBlocks := (n + sweepBlock - 1) / sweepBlock
	blockMax := make([]float64, nBlocks*d)
	blockSum := make([]float64, nBlocks)
	for b := 0; b < nBlocks; b++ {
		lo, hi := b*sweepBlock, min((b+1)*sweepBlock, n)
		bm := blockMax[b*d : (b+1)*d]
		m.ComponentMaxInto(lo, hi, bm)
		var s float64
		for _, x := range bm {
			s += x
		}
		blockSum[b] = s
	}
	return &subjSweep{
		pts: pts, m: m, sums: sweepSums, orig: orig, pos: pos, sky: sky,
		bandMaxSum: bandMaxSum, blockMax: blockMax, blockSum: blockSum,
	}
}

// firstSubjugator scans the sweep for an adversary subjugating the
// candidate at sweep position qpos, returning its original point
// index, or -1 when the candidate is happy. The witness is the first
// subjugator in SWEEP order — deterministic, though generally a
// different (equally valid) witness than the scalar scan's.
func (s *subjSweep) firstSubjugator(qpos int) int32 {
	n := len(s.orig)
	d := s.m.Dim()
	q := s.m.Row(qpos)
	sq := s.sums[qpos]
	if sq < 1-eps {
		// g(0) = Σq < 1−eps: every adversary subjugates q.
		if n == 1 {
			return -1
		}
		if qpos == 0 {
			return s.orig[1]
		}
		return s.orig[0]
	}
	const threshPair = 1 + eps
	const threshBlock = 1 + eps + subjGuard
	marginPair := sq - threshPair - subjGuard
	marginBlock := sq - threshBlock - subjGuard
	// Sum skips need Σq clear of the boundary zone (rule 1's Σp<1 case
	// needs Σq > 1+eps with slack); inside the zone scan everything.
	sumSkipOK := sq > 1+eps+2*subjGuard
	var q0, q1, q2, q3 float64
	is4 := d == 4
	if is4 {
		q0, q1, q2, q3 = q[0], q[1], q[2], q[3]
	}
	nBands := len(s.bandMaxSum)
	blocksPerBand := sweepBand / sweepBlock
	for band := 0; band < nBands; band++ {
		if sumSkipOK && s.bandMaxSum[band] < sq-subjGuard {
			break // bands are sum-sorted: nothing later can subjugate
		}
		bStart := band * blocksPerBand
		bEnd := min(bStart+blocksPerBand, (n+sweepBlock-1)/sweepBlock)
		for b := bStart; b < bEnd; b++ {
			bm := s.blockMax[b*d : (b+1)*d]
			var probe int
			if is4 {
				probe = decide4(bm, q0, q1, q2, q3, sq, s.blockSum[b], marginBlock, threshBlock)
			} else {
				probe = decideRow(bm, q, sq, s.blockSum[b], marginBlock, threshBlock)
			}
			if probe == -1 {
				continue // no member of the block can subjugate q
			}
			lo, hi := b*sweepBlock, min((b+1)*sweepBlock, n)
			for i := lo; i < hi; i++ {
				if i == qpos {
					continue
				}
				sp := s.sums[i]
				if sumSkipOK && sp < sq-subjGuard {
					continue // rule 1, per element (band order is clustered)
				}
				var v int
				if is4 {
					v = decide4(s.m.Row(i), q0, q1, q2, q3, sq, sp, marginPair, threshPair)
				} else {
					v = decideRow(s.m.Row(i), q, sq, sp, marginPair, threshPair)
				}
				switch v {
				case 1:
					return s.orig[i]
				case 0:
					// eps-boundary: exact legacy path on the originals.
					if subjugates(s.pts[s.orig[i]], s.pts[s.orig[qpos]]) {
						return s.orig[i]
					}
				}
			}
		}
	}
	return -1
}

// witnessesKernel computes the witness array for candidates == sky
// via the sweep: wit[i] is a subjugator of pts[sky[i]] (original
// index) or -1 when sky[i] is happy.
func witnessesKernel(pts []geom.Vector, sky []int) []int32 {
	s := newSubjSweep(pts, sky)
	wit := make([]int32, len(sky))
	for i := range sky {
		wit[i] = s.firstSubjugator(int(s.pos[i]))
	}
	return wit
}

// witnessesScalar is the scalar reference: the legacy per-pair scan,
// witness being the first subjugator in ascending sky order.
func witnessesScalar(pts []geom.Vector, sky []int) []int32 {
	wit := make([]int32, len(sky))
	for i, qi := range sky {
		wit[i] = -1
		q := pts[qi]
		for _, pi := range sky {
			if pi == qi {
				continue
			}
			if subjugates(pts[pi], q) {
				wit[i] = int32(pi)
				break
			}
		}
	}
	return wit
}
