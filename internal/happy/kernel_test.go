package happy

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

var kernelGens = []struct {
	name string
	fn   func(n, d int, seed int64) ([]geom.Vector, error)
}{
	{"independent", dataset.Independent},
	{"correlated", dataset.Correlated},
	{"anticorrelated", dataset.AntiCorrelated},
}

// happySetOf extracts the happy originals from a witness array.
func happySetOf(sky []int, wit []int32) map[int]bool {
	h := make(map[int]bool)
	for i, w := range wit {
		if w == -1 {
			h[sky[i]] = true
		}
	}
	return h
}

// TestKernelMatchesScalarDifferential is the decision-equality pin for
// the blocked sweep: across dimensions and distributions, the kernel
// and the scalar scan must agree on exactly which skyline points are
// happy, and every kernel witness must really subjugate its candidate.
// Witness IDENTITY may differ (sweep order vs ascending order) — only
// validity and the induced happy set are the contract.
func TestKernelMatchesScalarDifferential(t *testing.T) {
	for _, g := range kernelGens {
		for d := 2; d <= 6; d++ {
			pts, err := g.fn(800, d, int64(41*d+len(g.name)))
			if err != nil {
				t.Fatal(err)
			}
			sky := skylineFilter(pts)
			wk := witnessesKernel(pts, sky)
			ws := witnessesScalar(pts, sky)
			if len(wk) != len(sky) || len(ws) != len(sky) {
				t.Fatalf("%s d=%d: witness lengths %d/%d vs sky %d", g.name, d, len(wk), len(ws), len(sky))
			}
			hk, hs := happySetOf(sky, wk), happySetOf(sky, ws)
			if len(hk) != len(hs) {
				t.Fatalf("%s d=%d: kernel happy |%d| vs scalar |%d|", g.name, d, len(hk), len(hs))
			}
			for p := range hs {
				if !hk[p] {
					t.Fatalf("%s d=%d: point %d happy per scalar, subjugated per kernel", g.name, d, p)
				}
			}
			inSky := make(map[int]bool, len(sky))
			for _, s := range sky {
				inSky[s] = true
			}
			for i, w := range wk {
				if w == -1 {
					continue
				}
				if !inSky[int(w)] {
					t.Fatalf("%s d=%d: witness %d for %d is not a skyline member", g.name, d, w, sky[i])
				}
				if int(w) == sky[i] {
					t.Fatalf("%s d=%d: candidate %d is its own witness", g.name, d, sky[i])
				}
				if !subjugates(pts[w], pts[sky[i]]) {
					t.Fatalf("%s d=%d: claimed witness %d does not subjugate %d", g.name, d, w, sky[i])
				}
			}
		}
	}
}

// TestCertMatchesLegacyCompute ties the certificate path to the
// legacy entry points: HappyPoints() must equal computeAmong on the
// same skyline, for sets on both sides of the kernelMinSky cutoff.
func TestCertMatchesLegacyCompute(t *testing.T) {
	for _, n := range []int{30, 900} {
		for _, g := range kernelGens {
			pts, err := g.fn(n, 4, int64(n))
			if err != nil {
				t.Fatal(err)
			}
			sky := skylineFilter(pts)
			want := computeAmong(pts, sky, sky)
			got := ComputeAmongSkylineCert(pts, sky).HappyPoints()
			if len(got) != len(want) {
				t.Fatalf("%s n=%d: cert happy |%d| vs legacy |%d|", g.name, n, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s n=%d: happy[%d] = %d, want %d", g.name, n, i, got[i], want[i])
				}
			}
		}
	}
}

// TestCertParallelDeterministic: the witness array is a pure function
// of (pts, sky) — identical across worker counts, not merely
// set-equal, because every candidate scans the same shared sweep.
func TestCertParallelDeterministic(t *testing.T) {
	pts, err := dataset.AntiCorrelated(1500, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	sky := skylineFilter(pts)
	if len(sky) < kernelMinSky {
		t.Fatalf("skyline %d too small to exercise the kernel", len(sky))
	}
	base := ComputeAmongSkylineCertParallel(pts, sky, 1)
	for _, w := range []int{2, 4, 8} {
		c := ComputeAmongSkylineCertParallel(pts, sky, w)
		if len(c.Wit) != len(base.Wit) {
			t.Fatalf("workers=%d: wit length %d vs %d", w, len(c.Wit), len(base.Wit))
		}
		for i := range c.Wit {
			if c.Wit[i] != base.Wit[i] {
				t.Fatalf("workers=%d: wit[%d] = %d, sequential %d", w, i, c.Wit[i], base.Wit[i])
			}
		}
	}
}

// TestCertParallelCtxCanceled: cancellation surfaces as an error, on
// both the sequential and the fanned-out path.
func TestCertParallelCtxCanceled(t *testing.T) {
	pts, err := dataset.AntiCorrelated(1500, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	sky := skylineFilter(pts)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, w := range []int{1, 4} {
		if _, err := ComputeAmongSkylineCertParallelCtx(ctx, pts, sky, w); err == nil {
			t.Fatalf("workers=%d: canceled context accepted", w)
		}
	}
}

// randPositive fills a strictly positive vector with mixed magnitudes
// so the decide fuzzing hits sums far from AND near the 1±eps zone.
func randPositive(rng *rand.Rand, d int, scale float64) geom.Vector {
	v := make(geom.Vector, d)
	for j := range v {
		v[j] = (1e-3 + rng.Float64()) * scale
	}
	return v
}

// TestDecideContractRandom pins the three-way contract of decideRow on
// random pairs: 1 must imply subjugation, -1 must imply its absence;
// 0 is unconstrained (the sweep falls back to the scalar path).
// Scales are chosen so candidate sums straddle the decision boundary.
func TestDecideContractRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	checked := [3]int{}
	for trial := 0; trial < 200000; trial++ {
		d := 1 + rng.Intn(6)
		scaleQ := []float64{0.2, 1.0 / float64(d), 0.5, 2}[rng.Intn(4)]
		scaleP := []float64{0.2, 1.0 / float64(d), 0.5, 2}[rng.Intn(4)]
		q := randPositive(rng, d, scaleQ)
		p := randPositive(rng, d, scaleP)
		if rng.Intn(16) == 0 {
			copy(q, p) // g(1) = 1 exactly: the unresolved boundary verdict
		}
		sq, sp := q.Sum(), p.Sum()
		const thresh = 1 + eps
		margin := sq - thresh - subjGuard
		v := decideRow(p, q, sq, sp, margin, thresh)
		checked[v+1]++
		want := subjugates(p, q)
		if v == 1 && !want {
			t.Fatalf("decideRow=1 but subjugates=false: p=%v q=%v", p, q)
		}
		if v == -1 && want {
			t.Fatalf("decideRow=-1 but subjugates=true: p=%v q=%v", p, q)
		}
	}
	for i, c := range checked {
		if c == 0 {
			t.Fatalf("verdict %d never produced — fuzz scales degenerate", i-1)
		}
	}
}

// TestDecide4MatchesDecideRow: the scalarized d=4 body must be
// decision-identical to the generic one on the same inputs, including
// the block-probe threshold.
func TestDecide4MatchesDecideRow(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200000; trial++ {
		scale := []float64{0.2, 0.25, 0.5, 2}[rng.Intn(4)]
		q := randPositive(rng, 4, scale)
		p := randPositive(rng, 4, []float64{0.2, 0.25, 0.5, 2}[rng.Intn(4)])
		sq, sp := q.Sum(), p.Sum()
		thresh := 1 + eps
		if rng.Intn(2) == 0 {
			thresh = 1 + eps + subjGuard // block-probe mode
		}
		margin := sq - thresh - subjGuard
		a := decideRow(p, q, sq, sp, margin, thresh)
		b := decide4(p, q[0], q[1], q[2], q[3], sq, sp, margin, thresh)
		if a != b {
			t.Fatalf("decideRow=%d decide4=%d: p=%v q=%v thresh=%v", a, b, p, q, thresh)
		}
	}
}

// TestBlockProbeSound: rule 2 end to end — when decideRow on a block's
// componentwise maximum (blocked threshold) says -1, no member of the
// block may subjugate the candidate.
func TestBlockProbeSound(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 20000; trial++ {
		d := 2 + rng.Intn(4)
		q := randPositive(rng, d, []float64{0.3, 1.0 / float64(d), 0.6}[rng.Intn(3)])
		block := make([]geom.Vector, 1+rng.Intn(sweepBlock))
		bx := make(geom.Vector, d)
		for i := range block {
			block[i] = randPositive(rng, d, []float64{0.3, 1.0 / float64(d), 0.6}[rng.Intn(3)])
			for j := range bx {
				bx[j] = math.Max(bx[j], block[i][j])
			}
		}
		sq := q.Sum()
		const thresh = 1 + eps + subjGuard
		margin := sq - thresh - subjGuard
		if decideRow(bx, q, sq, bx.Sum(), margin, thresh) != -1 {
			continue
		}
		for _, p := range block {
			if subjugates(p, q) {
				t.Fatalf("block probe refuted but member %v subjugates %v (bx=%v)", p, q, bx)
			}
		}
	}
}

// FuzzDecideContract extends the random pinning to the fuzzer: any
// positive finite 4+4 coordinates must keep decideRow sound against
// subjugates and identical to decide4.
func FuzzDecideContract(f *testing.F) {
	f.Add(0.3, 0.4, 0.2, 0.6, 0.25, 0.25, 0.25, 0.25)
	f.Add(1.0, 1.0, 1.0, 1.0, 0.9, 0.9, 0.9, 0.9)
	f.Add(0.01, 0.99, 0.5, 0.5, 0.5, 0.5, 0.01, 0.99)
	f.Fuzz(func(t *testing.T, p0, p1, p2, p3, q0, q1, q2, q3 float64) {
		clamp := func(x float64) float64 {
			x = math.Abs(x)
			if !(x > 1e-6) || x > 1e3 || math.IsNaN(x) {
				return 0.5
			}
			return x
		}
		p := geom.Vector{clamp(p0), clamp(p1), clamp(p2), clamp(p3)}
		q := geom.Vector{clamp(q0), clamp(q1), clamp(q2), clamp(q3)}
		sq, sp := q.Sum(), p.Sum()
		const thresh = 1 + eps
		margin := sq - thresh - subjGuard
		v := decideRow(p, q, sq, sp, margin, thresh)
		if v4 := decide4(p, q[0], q[1], q[2], q[3], sq, sp, margin, thresh); v4 != v {
			t.Fatalf("decideRow=%d decide4=%d: p=%v q=%v", v, v4, p, q)
		}
		want := subjugates(p, q)
		if (v == 1 && !want) || (v == -1 && want) {
			t.Fatalf("decideRow=%d subjugates=%v: p=%v q=%v", v, want, p, q)
		}
	})
}
