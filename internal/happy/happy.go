// Package happy computes the paper's happy points (Section III-B):
// the candidate set for the k-regret query that is provably
// sandwiched between the hull extreme points and the skyline,
// D_conv ⊆ D_happy ⊆ D_sky (Lemma 3), and that suffices for the
// optimal solution (Lemma 2).
//
// # Definition
//
// For a point p, let P_p = Conv({p} ∪ VC) be the convex hull of the
// orthotope closures of p and of the d virtual corner points vc_i
// (standard basis vectors), and let Y(p) be the hyperplanes
// containing the facets of P_p that avoid the origin. A point q is
// subjugated by p when q lies on or below every hyperplane in Y(p)
// and strictly below at least one. Happy points are the points
// subjugated by nobody.
//
// # A correction to the paper's facet count
//
// The paper's complexity analysis assumes |Y(p)| = d ("we first
// construct d hyperplanes in Y(p′)"). That holds for d = 2 and for
// points with small coordinate sums, but in general P_p has up to
// d·2^(d−1) non-origin facets: by polar duality they are the vertices
// of the cube cap {ω ∈ [0,1]^d : ω·p = 1}, i.e. all
//
//	ω(i, T):  ω_j = 1 (j ∈ T),  ω_j = 0 (j ∉ T ∪ {i}),
//	          ω_i = (1 − Σ_{j∈T} p_j)/p_i ∈ [0, 1]
//
// over i and T ⊆ [d]\{i}. (Example: p = (0.1, 1, 1) has the four
// facet normals (0,1,0), (0,0,1), (1,0.9,0), (1,0,0.9).) Enumerating
// them is exponential, so Subjugates does not enumerate: it decides
// the equivalent membership condition directly.
//
// # The O(d²) test actually used
//
// "q on or below every hyperplane of Y(p)" is exactly q ∈ P_p, and
// P_p is the downward closure of conv({p} ∪ VC ∪ {0}) inside the
// positive orthant, so membership is the one-dimensional convex
// minimization
//
//	m(q) = min_{λ∈[0,1]} [ λ + Σ_j max(0, q_j − λ·p_j) ]  ≤ 1 ,
//
// evaluated at its ≤ d+2 breakpoints λ = q_j/p_j. If m(q) < 1, q is
// interior to P_p, hence strictly below every facet: subjugated.
// Otherwise q is on the boundary and "strictly below at least one
// facet" fails only when ω·q = 1 for every facet normal, which is
// decided by the fractional-knapsack LP
//
//	v(q) = min{ ω·q : ω ∈ [0,1]^d, ω·p = 1 }   (when Σ_j p_j ≥ 1),
//
// whose optimum is attained at a Y(p) normal: q is subjugated iff
// v(q) < 1. When Σ_j p_j < 1 the only facet is the simplex
// Σ_j x_j = 1 and the test degenerates to Σ_j q_j < 1. Both steps are
// O(d²)/O(d log d), matching the per-pair cost the paper claims.
// Tests cross-validate this against explicit facet enumeration
// (EnumeratePlanes) on small dimensions.
package happy

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// Tolerance for the on/below classifications.
const eps = 1e-9

// ErrBadInput flags inconsistent dimensions or non-positive inputs.
var ErrBadInput = errors.New("happy: bad input")

func checkPoint(i int, p geom.Vector) error {
	if len(p) == 0 {
		return fmt.Errorf("%w: point %d is empty", ErrBadInput, i)
	}
	if !p.IsFinite() || !p.AllPositive() {
		return fmt.Errorf("%w: point %d (%v) must be finite and strictly positive", ErrBadInput, i, p)
	}
	return nil
}

// Membership returns m(q) for the polytope P_p (see package doc):
// q ∈ P_p iff Membership(p, q) ≤ 1.
func Membership(p, q geom.Vector) float64 {
	g := func(lambda float64) float64 {
		s := lambda
		for j := range q {
			if excess := q[j] - lambda*p[j]; excess > 0 {
				s += excess
			}
		}
		return s
	}
	best := math.Min(g(0), g(1))
	for j := range q {
		if lambda := q[j] / p[j]; lambda > 0 && lambda < 1 {
			if v := g(lambda); v < best {
				best = v
			}
		}
	}
	return best
}

// minFacetDot returns v(q) = min{ω·q : ω ∈ [0,1]^d, ω·p = 1} by the
// greedy fractional-knapsack rule. It requires Σ_j p_j ≥ 1 (otherwise
// the feasible set is empty) — callers check first.
func minFacetDot(p, q geom.Vector) float64 {
	d := len(p)
	idx := make([]int, d)
	for j := range idx {
		idx[j] = j
	}
	// Cheapest cost-per-unit-budget first: q_j/p_j ascending.
	sort.Slice(idx, func(a, b int) bool {
		return q[idx[a]]*p[idx[b]] < q[idx[b]]*p[idx[a]]
	})
	budget := 1.0
	var val float64
	for _, j := range idx {
		if budget <= 0 {
			break
		}
		if p[j] <= budget {
			val += q[j]
			budget -= p[j]
		} else {
			val += q[j] * budget / p[j]
			budget = 0
		}
	}
	return val
}

// Subjugates reports whether p subjugates q per Definition 4. Both
// points must be finite and strictly positive.
func Subjugates(p, q geom.Vector) (bool, error) {
	if err := geom.CheckSameDim(p, q); err != nil {
		return false, fmt.Errorf("happy: %w", err)
	}
	if err := checkPoint(0, p); err != nil {
		return false, err
	}
	if err := checkPoint(1, q); err != nil {
		return false, err
	}
	return subjugates(p, q), nil
}

func subjugates(p, q geom.Vector) bool {
	m := Membership(p, q)
	if m > 1+eps {
		return false // q above some facet of P_p
	}
	if m < 1-eps {
		return true // q interior: strictly below every facet
	}
	// Boundary case.
	if p.Sum() < 1-eps {
		return q.Sum() < 1-eps
	}
	return minFacetDot(p, q) < 1-eps
}

// EnumeratePlanes returns every hyperplane of Y(p) explicitly, i.e.
// all facet normals ω(i, T) from the package documentation, deduped,
// each as ω·x = 1. The output size can reach d·2^(d−1); the function
// is intended for small d (tests, 2-D visualization) and refuses
// d > 16.
func EnumeratePlanes(p geom.Vector) ([]geom.Hyperplane, error) {
	if err := checkPoint(0, p); err != nil {
		return nil, err
	}
	d := len(p)
	if d > 16 {
		return nil, fmt.Errorf("%w: EnumeratePlanes limited to d ≤ 16, got %d", ErrBadInput, d)
	}
	if p.Sum() < 1-eps {
		n := make(geom.Vector, d)
		for j := range n {
			n[j] = 1
		}
		return []geom.Hyperplane{{Normal: n, Offset: 1}}, nil
	}
	var planes []geom.Hyperplane
	seen := make(map[string]bool)
	for i := 0; i < d; i++ {
		rest := make([]int, 0, d-1)
		for j := 0; j < d; j++ {
			if j != i {
				rest = append(rest, j)
			}
		}
		for mask := 0; mask < 1<<len(rest); mask++ {
			var sigma float64
			for b, j := range rest {
				if mask&(1<<b) != 0 {
					sigma += p[j]
				}
			}
			wi := (1 - sigma) / p[i]
			if wi < -eps || wi > 1+eps {
				continue
			}
			wi = geom.Clamp01(wi)
			n := make(geom.Vector, d)
			for b, j := range rest {
				if mask&(1<<b) != 0 {
					n[j] = 1
				}
			}
			n[i] = wi
			key := fmt.Sprintf("%.9f", []float64(n))
			if !seen[key] {
				seen[key] = true
				planes = append(planes, geom.Hyperplane{Normal: n, Offset: 1})
			}
		}
	}
	return planes, nil
}

// SubjugatesByPlanes decides subjugation by explicitly testing q
// against every enumerated hyperplane of Y(p). Exponential in d;
// used as the oracle in tests.
func SubjugatesByPlanes(p, q geom.Vector) (bool, error) {
	planes, err := EnumeratePlanes(p)
	if err != nil {
		return false, err
	}
	strict := false
	for _, h := range planes {
		switch h.Side(q, eps) {
		case 1:
			return false, nil
		case -1:
			strict = true
		}
	}
	return strict, nil
}

// Compute returns the indices of the happy points of pts, sorted
// ascending. All coordinates must be strictly positive (the paper's
// standing assumption; callers normalize first). Matching the
// paper's algorithm, the cost is one O(d²) subjugation test per pair,
// after a skyline pre-filter: happy points are skyline points
// (Lemma 3), and a skyline point fails to be happy iff some skyline
// point subjugates it (if p subjugates q and p* dominates p, then p*
// subjugates q — proof in the package tests' oracle comparison).
func Compute(pts []geom.Vector) ([]int, error) {
	if len(pts) == 0 {
		return nil, nil
	}
	d := len(pts[0])
	for i, p := range pts {
		if len(p) != d {
			return nil, fmt.Errorf("%w: point %d has dimension %d, want %d", ErrBadInput, i, len(p), d)
		}
		if err := checkPoint(i, p); err != nil {
			return nil, err
		}
	}
	sky := skylineFilter(pts)
	return ComputeAmongSkyline(pts, sky), nil
}

// ComputeAmongSkyline is Compute for callers that already hold the
// skyline index set (avoids recomputing it in pipelines that need
// both, e.g. Table III). The caller is responsible for sky being the
// true skyline of pts. Large candidate sets go through the blocked
// subjugation kernel (kernel.go); small ones through the scalar scan
// — the returned set is identical either way (pinned by the
// differential suite in kernel_test.go).
func ComputeAmongSkyline(pts []geom.Vector, sky []int) []int {
	return ComputeAmongSkylineCert(pts, sky).HappyPoints()
}

// computeAmong returns the members of candidates subjugated by no
// member of adversaries.
func computeAmong(pts []geom.Vector, candidates, adversaries []int) []int {
	out := make([]int, 0, len(candidates))
	for _, qi := range candidates {
		q := pts[qi]
		isHappy := true
		for _, pi := range adversaries {
			if pi == qi {
				continue
			}
			if subjugates(pts[pi], q) {
				isHappy = false
				break
			}
		}
		if isHappy {
			out = append(out, qi)
		}
	}
	sort.Ints(out)
	return out
}

// skylineFilter returns the skyline indices with a sort-filter pass
// (duplicated minimally from package skyline to keep the dependency
// graph flat; the full operators live in internal/skyline).
func skylineFilter(pts []geom.Vector) []int {
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	sums := make([]float64, len(pts))
	for i, p := range pts {
		sums[i] = p.Sum()
	}
	sort.Slice(order, func(a, b int) bool {
		// Exact ordered comparisons keep the order transitive.
		sa, sb := sums[order[a]], sums[order[b]]
		if sa > sb {
			return true
		}
		if sa < sb {
			return false
		}
		return order[a] < order[b]
	})
	var sky []int
	for _, i := range order {
		dominated := false
		for _, si := range sky {
			if geom.Dominates(pts[si], pts[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, i)
		}
	}
	sort.Ints(sky)
	return sky
}
