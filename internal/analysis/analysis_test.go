package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// Fixture files mark expected findings with trailing comments:
//
//	return a == b // want: floatcmp
//
// Multiple analyzers may be listed comma-separated. Every annotated
// line must produce exactly the listed findings and every unannotated
// line must produce none — so fixtures prove both that each analyzer
// catches its seeded violation and that the clean counterexamples
// (and the //kregret:allow directive) stay silent.
var wantRe = regexp.MustCompile(`// want: ([a-z, ]+)`)

func fixtureWants(t *testing.T, dir string) map[string][]string {
	t.Helper()
	wants := map[string][]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", e.Name(), i+1)
			for _, name := range strings.Split(m[1], ",") {
				if name = strings.TrimSpace(name); name != "" {
					wants[key] = append(wants[key], name)
				}
			}
		}
	}
	return wants
}

// runFixture loads testdata/src/<fixture> under importPath, runs the
// full analyzer suite over it and matches findings line-for-line
// against the // want annotations.
func runFixture(t *testing.T, fixture, importPath, analyzer string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	findings := Run([]*Package{pkg}, All())

	got := map[string][]string{}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)
		got[key] = append(got[key], f.Analyzer)
	}
	want := fixtureWants(t, dir)

	seeded := false
	for _, names := range want {
		for _, n := range names {
			if n == analyzer {
				seeded = true
			}
		}
	}
	if !seeded {
		t.Fatalf("fixture %s seeds no %s violation", fixture, analyzer)
	}

	keys := map[string]bool{}
	for k := range got {
		keys[k] = true
	}
	for k := range want {
		keys[k] = true
	}
	for k := range keys {
		g, w := append([]string(nil), got[k]...), append([]string(nil), want[k]...)
		sort.Strings(g)
		sort.Strings(w)
		if strings.Join(g, ",") != strings.Join(w, ",") {
			t.Errorf("%s: got findings [%s], want [%s]", k, strings.Join(g, ","), strings.Join(w, ","))
		}
	}
}

func TestFloatCmpFixture(t *testing.T) {
	runFixture(t, "floatcmp", "floatcmpfix", "floatcmp")
}

func TestSliceAliasFixture(t *testing.T) {
	// The import path must not contain "/internal/": the analyzer
	// exempts internal packages.
	runFixture(t, "slicealias", "slicealiasfix", "slicealias")
}

func TestParallelForFixture(t *testing.T) {
	// The import path deliberately contains "/internal/": the
	// parallel-body check must run before the internal-package
	// exemption of the aliasing check.
	runFixture(t, "parfor", "repro/internal/parforfix", "slicealias")
}

func TestMatRowFixture(t *testing.T) {
	// The import path deliberately contains "/internal/": the Row-view
	// check must run before the internal-package exemption of the
	// aliasing check, because the PointMatrix hot paths are internal.
	runFixture(t, "matrow", "repro/internal/matrowfix", "slicealias")
}

func TestNaNInfFixture(t *testing.T) {
	runFixture(t, "naninf", "naninffix", "naninf")
}

func TestErrDropFixture(t *testing.T) {
	runFixture(t, "errdrop", "errdropfix", "errdrop")
}

func TestCtxFlowFixture(t *testing.T) {
	runFixture(t, "ctxflow", "ctxflowfix", "ctxflow")
}

func TestPoolScopeFixture(t *testing.T) {
	// The import path deliberately contains "/internal/": pooled
	// buffers are internal scratch, and the Row-view Put check must
	// fire regardless of the slicealias internal-package exemption.
	runFixture(t, "poolscope", "repro/internal/poolscopefix", "poolscope")
}

func TestAtomicGuardFixture(t *testing.T) {
	runFixture(t, "atomicguard", "atomicguardfix", "atomicguard")
}

func TestWireGuardFixture(t *testing.T) {
	runFixture(t, "wireguard", "wireguardfix", "wireguard")
}

func TestSleepCtxFixture(t *testing.T) {
	runFixture(t, "sleepctx", "sleepctxfix", "sleepctx")
}

// TestAllowFixture covers the //kregret:allow grammar: comma lists,
// trailing vs line-above placement, stacked block directives, and the
// malformed forms reported under the "allow" pseudo-analyzer.
func TestAllowFixture(t *testing.T) {
	runFixture(t, "allowfix", "allowfixfix", "allow")
}

// TestAllowNames pins the directive parser itself: prefix detection,
// comma splitting, block-comment trimming and the justification cut.
func TestAllowNames(t *testing.T) {
	cases := []struct {
		in    string
		names []string
		just  string
		ok    bool
	}{
		{"//kregret:allow floatcmp: reason here", []string{"floatcmp"}, "reason here", true},
		{"//kregret:allow floatcmp, naninf: shared reason", []string{"floatcmp", "naninf"}, "shared reason", true},
		{"//kregret:allow floatcmp,naninf,errdrop: tight list", []string{"floatcmp", "naninf", "errdrop"}, "tight list", true},
		{"/*kregret:allow errdrop: block form*/", []string{"errdrop"}, "block form", true},
		{"//kregret:allow floatcmp", []string{"floatcmp"}, "", true},
		{"//kregret:allow : nameless", nil, "nameless", true},
		{"// an ordinary comment", nil, "", false},
		{"//kregret:allowfloatcmp: missing space", nil, "", false},
	}
	for _, c := range cases {
		names, just, ok := allowNames(c.in)
		if ok != c.ok {
			t.Errorf("allowNames(%q) ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if strings.Join(names, "|") != strings.Join(c.names, "|") || just != c.just {
			t.Errorf("allowNames(%q) = (%v, %q), want (%v, %q)", c.in, names, just, c.names, c.just)
		}
	}
}

// TestEveryAnalyzerAllowlistable guards the directive validator
// against drift: a directive naming any registered analyzer must pass
// validation, so adding an analyzer without teaching the allowlist
// about it is impossible (the names share one registry, All()).
func TestEveryAnalyzerAllowlistable(t *testing.T) {
	var b strings.Builder
	b.WriteString("package allowall\n\n")
	for _, a := range All() {
		fmt.Fprintf(&b, "//kregret:allow %s: every registered analyzer must be allowlistable\n", a.Name)
	}
	b.WriteString("\nfunc unused() {}\n")
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "allowall.go"), []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, "allowall")
	if err != nil {
		t.Fatalf("loading generated package: %v", err)
	}
	for _, f := range Run([]*Package{pkg}, All()) {
		t.Errorf("unexpected finding: %s", f)
	}
}

func TestByName(t *testing.T) {
	as, err := ByName("floatcmp, errdrop")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].Name != "floatcmp" || as[1].Name != "errdrop" {
		t.Fatalf("ByName returned %v", as)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}

// TestRepositoryIsVetClean runs the full analyzer suite over the
// repository itself: the working tree must stay kregret-vet clean.
// This is the same check `go run ./cmd/kregret-vet ./...` performs.
func TestRepositoryIsVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	pkgs, err := LoadModule(filepath.Join("..", ".."), nil)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, f := range Run(pkgs, All()) {
		t.Errorf("unexpected finding: %s", f)
	}
}
