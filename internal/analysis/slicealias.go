package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SliceAlias flags exported functions and methods of the public API
// that store or return a caller-provided []float64 (or a named float
// slice such as Point / geom.Vector, or a slice of those) without
// copying it. A retained alias lets the caller mutate coordinates
// after validation/normalization, corrupting every cached candidate
// set under concurrent queries — the exact bug class reported by
// other k-regret implementations.
//
// The analyzer runs a small intraprocedural taint analysis: the float
// slice parameters are tainted; taint flows through conversions,
// slicing, indexing, `append(tainted, …)`, local assignment and
// range; calling any function or method on a tainted value (e.g.
// `p.Clone()`) launders it, since callees in this codebase copy.
// A violation is a tainted value that is returned, stored into a
// composite literal, or assigned to anything other than a plain local
// variable.
//
// Internal packages (import path containing "/internal/") are exempt:
// they deliberately share immutable views for speed, and the API
// boundary above them is where the copying contract lives.
var SliceAlias = &Analyzer{
	Name: "slicealias",
	Doc:  "flag exported API functions that retain caller-provided float slices without copying",
	Run:  runSliceAlias,
}

func runSliceAlias(pass *Pass) {
	if strings.Contains(pass.Pkg.Path+"/", "/internal/") {
		return
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			checkAliasing(pass, fn)
		}
	}
}

func checkAliasing(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info

	tainted := map[types.Object]bool{}
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			for _, name := range field.Names {
				obj := info.Defs[name]
				if obj != nil && isFloatSliceLike(obj.Type()) {
					tainted[obj] = true
				}
			}
		}
	}
	if len(tainted) == 0 {
		return
	}

	// taintedExpr reports whether e may alias a tainted parameter's
	// backing array.
	var taintedExpr func(e ast.Expr) bool
	taintedExpr = func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.Ident:
			return tainted[info.Uses[e]]
		case *ast.ParenExpr:
			return taintedExpr(e.X)
		case *ast.CallExpr:
			if isConversion(info, e) && len(e.Args) == 1 {
				return taintedExpr(e.Args[0])
			}
			// append aliases its first argument when capacity allows.
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && info.Uses[id] != nil {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "append" && len(e.Args) > 0 {
					return taintedExpr(e.Args[0])
				}
			}
			// Other calls (p.Clone(), core.Select, make, copy helpers)
			// return fresh storage by this codebase's convention.
			return false
		case *ast.IndexExpr:
			// Element of a tainted [][]float64 is itself an alias.
			if tv, ok := info.Types[e]; ok && !isFloatSliceLike(tv.Type) {
				return false
			}
			return taintedExpr(e.X)
		case *ast.SliceExpr:
			return taintedExpr(e.X)
		case *ast.StarExpr:
			return taintedExpr(e.X)
		case *ast.UnaryExpr:
			return taintedExpr(e.X)
		}
		return false
	}

	isLocalVar := func(e ast.Expr) (types.Object, bool) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil, false
		}
		if obj := info.Defs[id]; obj != nil {
			return obj, true
		}
		if obj, ok := info.Uses[id].(*types.Var); ok {
			// Package-level variables are escape targets, not locals.
			if obj.Parent() == obj.Pkg().Scope() {
				return nil, false
			}
			return obj, true
		}
		return nil, false
	}

	// Propagate taint through local assignments and ranges until the
	// tainted set stops growing, then report violations in one final
	// pass (so stores that happen textually before a later `x := p`
	// are still caught).
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					var rhs ast.Expr
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					}
					if rhs == nil || !taintedExpr(rhs) {
						continue
					}
					if obj, ok := isLocalVar(lhs); ok && !tainted[obj] {
						tainted[obj] = true
						changed = true
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil && taintedExpr(n.X) {
					if obj, ok := isLocalVar(n.Value); ok && isFloatSliceLike(obj.Type()) && !tainted[obj] {
						tainted[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if taintedExpr(res) {
					pass.Reportf(res.Pos(), "%s returns caller-provided float slice without copying; clone it at the API boundary", fn.Name.Name)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				if rhs == nil || !taintedExpr(rhs) {
					continue
				}
				if _, ok := isLocalVar(lhs); ok {
					continue // handled by propagation
				}
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				pass.Reportf(rhs.Pos(), "%s stores caller-provided float slice without copying; clone it at the API boundary", fn.Name.Name)
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if taintedExpr(v) {
					pass.Reportf(v.Pos(), "%s stores caller-provided float slice in composite literal without copying", fn.Name.Name)
				}
			}
		}
		return true
	})
}
