package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SliceAlias flags exported functions and methods of the public API
// that store or return a caller-provided []float64 (or a named float
// slice such as Point / geom.Vector, or a slice of those) without
// copying it. A retained alias lets the caller mutate coordinates
// after validation/normalization, corrupting every cached candidate
// set under concurrent queries — the exact bug class reported by
// other k-regret implementations.
//
// The analyzer runs a small intraprocedural taint analysis: the float
// slice parameters are tainted; taint flows through conversions,
// slicing, indexing, `append(tainted, …)`, local assignment and
// range; calling any function or method on a tainted value (e.g.
// `p.Clone()`) launders it, since callees in this codebase copy.
// A violation is a tainted value that is returned, stored into a
// composite literal, or assigned to anything other than a plain local
// variable.
//
// Internal packages (import path containing "/internal/") are exempt:
// they deliberately share immutable views for speed, and the API
// boundary above them is where the copying contract lives.
var SliceAlias = &Analyzer{
	Name: "slicealias",
	Doc:  "flag exported API functions that retain caller-provided float slices without copying",
	Run:  runSliceAlias,
}

func runSliceAlias(pass *Pass) {
	// The parallel-body and Row-view checks run everywhere — internal
	// packages are exactly where the parallel.For call sites and the
	// mat.PointMatrix hot paths live.
	checkParallelFor(pass)
	checkMatRow(pass)
	if strings.Contains(pass.Pkg.Path+"/", "/internal/") {
		return
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			checkAliasing(pass, fn)
		}
	}
}

func checkAliasing(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info

	tainted := map[types.Object]bool{}
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			for _, name := range field.Names {
				obj := info.Defs[name]
				if obj != nil && isFloatSliceLike(obj.Type()) {
					tainted[obj] = true
				}
			}
		}
	}
	if len(tainted) == 0 {
		return
	}

	// taintedExpr reports whether e may alias a tainted parameter's
	// backing array.
	var taintedExpr func(e ast.Expr) bool
	taintedExpr = func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.Ident:
			return tainted[info.Uses[e]]
		case *ast.ParenExpr:
			return taintedExpr(e.X)
		case *ast.CallExpr:
			if isConversion(info, e) && len(e.Args) == 1 {
				return taintedExpr(e.Args[0])
			}
			// append aliases its first argument when capacity allows.
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && info.Uses[id] != nil {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "append" && len(e.Args) > 0 {
					return taintedExpr(e.Args[0])
				}
			}
			// Other calls (p.Clone(), core.Select, make, copy helpers)
			// return fresh storage by this codebase's convention.
			return false
		case *ast.IndexExpr:
			// Element of a tainted [][]float64 is itself an alias.
			if tv, ok := info.Types[e]; ok && !isFloatSliceLike(tv.Type) {
				return false
			}
			return taintedExpr(e.X)
		case *ast.SliceExpr:
			return taintedExpr(e.X)
		case *ast.StarExpr:
			return taintedExpr(e.X)
		case *ast.UnaryExpr:
			return taintedExpr(e.X)
		}
		return false
	}

	isLocalVar := func(e ast.Expr) (types.Object, bool) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil, false
		}
		if obj := info.Defs[id]; obj != nil {
			return obj, true
		}
		if obj, ok := info.Uses[id].(*types.Var); ok {
			// Package-level variables are escape targets, not locals.
			if obj.Parent() == obj.Pkg().Scope() {
				return nil, false
			}
			return obj, true
		}
		return nil, false
	}

	// Propagate taint through local assignments and ranges until the
	// tainted set stops growing, then report violations in one final
	// pass (so stores that happen textually before a later `x := p`
	// are still caught).
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					var rhs ast.Expr
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					}
					if rhs == nil || !taintedExpr(rhs) {
						continue
					}
					if obj, ok := isLocalVar(lhs); ok && !tainted[obj] {
						tainted[obj] = true
						changed = true
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil && taintedExpr(n.X) {
					if obj, ok := isLocalVar(n.Value); ok && isFloatSliceLike(obj.Type()) && !tainted[obj] {
						tainted[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if taintedExpr(res) {
					pass.Reportf(res.Pos(), "%s returns caller-provided float slice without copying; clone it at the API boundary", fn.Name.Name)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				if rhs == nil || !taintedExpr(rhs) {
					continue
				}
				if _, ok := isLocalVar(lhs); ok {
					continue // handled by propagation
				}
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				pass.Reportf(rhs.Pos(), "%s stores caller-provided float slice without copying; clone it at the API boundary", fn.Name.Name)
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if taintedExpr(v) {
					pass.Reportf(v.Pos(), "%s stores caller-provided float slice in composite literal without copying", fn.Name.Name)
				}
			}
		}
		return true
	})
}

// checkMatRow enforces the aliasing discipline of PointMatrix.Row
// (package mat): Row returns a capacity-trimmed window into the
// matrix's shared backing array, valid only as a transient read-only
// view. Writing through a view mutates the dataset under every
// concurrent reader, and a view that escapes its function — returned,
// stored in a field or global, kept in a composite literal, or
// retained by `append(dst, view)` — outlives the read-only bargain.
// The check keys on the named type PointMatrix, so linalg.Matrix.Row,
// whose row views are mutable by design, is unaffected; appending TO
// a view (`append(view, x)`) is also fine, because the trimmed
// capacity forces a reallocation.
//
// Like the parallel-body check, this runs before the
// internal-package exemption: the discipline protects the hot paths
// themselves, not just the API boundary.
func checkMatRow(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkMatRowFunc(pass, fn)
		}
	}
}

func checkMatRowFunc(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info

	// isRowCall matches `x.Row(i)` where x is a PointMatrix or a
	// pointer to one, by the receiver's named type.
	isRowCall := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Row" {
			return false
		}
		tv, ok := info.Types[sel.X]
		if !ok {
			return false
		}
		t := tv.Type
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		return ok && named.Obj().Name() == "PointMatrix"
	}

	// views holds locals known to alias a Row view.
	views := map[types.Object]bool{}
	var viewExpr func(e ast.Expr) bool
	viewExpr = func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.Ident:
			return views[info.Uses[e]]
		case *ast.ParenExpr:
			return viewExpr(e.X)
		case *ast.SliceExpr:
			return viewExpr(e.X)
		case *ast.CallExpr:
			return isRowCall(e)
		}
		return false
	}

	isLocal := func(e ast.Expr) (types.Object, bool) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil, false
		}
		if obj := info.Defs[id]; obj != nil {
			return obj, true
		}
		if obj, ok := info.Uses[id].(*types.Var); ok && obj.Parent() != obj.Pkg().Scope() {
			return obj, true
		}
		return nil, false
	}

	// Propagate view-ness through local assignments to fixpoint.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for i, lhs := range assign.Lhs {
				if !viewExpr(assign.Rhs[i]) {
					continue
				}
				if obj, ok := isLocal(lhs); ok && !views[obj] {
					views[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && viewExpr(idx.X) {
					pass.Reportf(lhs.Pos(),
						"%s writes through a PointMatrix.Row view; views are read-only windows into the shared matrix", fn.Name.Name)
					continue
				}
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				if rhs == nil || !viewExpr(rhs) {
					continue
				}
				if _, ok := isLocal(lhs); ok {
					continue // tracked by propagation
				}
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				pass.Reportf(rhs.Pos(),
					"%s stores a PointMatrix.Row view beyond the local scope; copy the row instead", fn.Name.Name)
			}
		case *ast.IncDecStmt:
			if idx, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok && viewExpr(idx.X) {
				pass.Reportf(n.X.Pos(),
					"%s writes through a PointMatrix.Row view; views are read-only windows into the shared matrix", fn.Name.Name)
			}
		case *ast.CallExpr:
			id, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			switch {
			case id.Name == "copy" && len(n.Args) == 2 && viewExpr(n.Args[0]):
				pass.Reportf(n.Args[0].Pos(),
					"%s copies into a PointMatrix.Row view; views are read-only windows into the shared matrix", fn.Name.Name)
			case id.Name == "append" && len(n.Args) > 1:
				for _, a := range n.Args[1:] {
					if viewExpr(a) {
						pass.Reportf(a.Pos(),
							"%s appends a PointMatrix.Row view to a slice, retaining the alias; copy the row instead", fn.Name.Name)
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if viewExpr(res) {
					pass.Reportf(res.Pos(),
						"%s returns a PointMatrix.Row view; the view aliases the matrix backing array — copy the row instead", fn.Name.Name)
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if viewExpr(v) {
					pass.Reportf(v.Pos(),
						"%s stores a PointMatrix.Row view in a composite literal; copy the row instead", fn.Name.Name)
				}
			}
		case *ast.FuncLit:
			// The kernel-block discipline (internal/mat): a Row view is
			// consume-immediately — capturing one in a closure lets it
			// escape its window (sort comparators run later, parallel
			// bodies run concurrently, and a rebuild of the matrix
			// backing would leave the closure reading freed rows).
			// Calling Row inside the closure is fine: the view is then
			// taken fresh at run time, inside the closure's own scope.
			for obj := range views {
				if obj.Pos() >= n.Pos() && obj.Pos() < n.End() {
					continue // the closure's own local, tracked separately
				}
				captured, reported := obj, false
				ast.Inspect(n.Body, func(m ast.Node) bool {
					if _, nested := m.(*ast.FuncLit); nested {
						return false // reported when the walk reaches the nested literal
					}
					id, ok := m.(*ast.Ident)
					if !ok || reported || info.Uses[id] != captured {
						return !reported
					}
					reported = true
					pass.Reportf(id.Pos(),
						"%s captures a PointMatrix.Row view in a closure; views are consume-immediately — copy the row before the closure, or call Row inside it", fn.Name.Name)
					return false
				})
			}
		}
		return true
	})
}

// checkParallelFor enforces the sharing discipline of the
// internal/parallel fan-out idiom: a closure passed as the body of
// parallel.For (or the value function of parallel.ArgMax) runs
// concurrently on several goroutines, so the only captured state it
// may write is a per-index slot — an element of a captured slice (or
// map, or a field of such an element) addressed by an index derived
// from the body's own chunk parameters. A write to a bare captured
// variable (`sum += x`, `out = append(out, v)`) or to a captured
// container at a chunk-independent index (`hits[total]`, `m[key]`) is
// a data race that -race only catches when the schedule cooperates;
// this check catches it statically at every call site.
//
// "Chunk-derived" is a taint set: the body's parameters (start/end,
// or ArgMax's index) seed it, and any local whose initializer or
// assignment mentions a chunk-derived identifier joins it — covering
// the canonical `for i := start; i < end; i++` loop variable and
// offsets computed from it.
func checkParallelFor(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, body := parallelBodyArg(call); body != nil {
				checkParallelBody(pass, name, body)
			}
			return true
		})
	}
}

// parallelBodyArg recognizes parallel.For / parallel.ArgMax calls
// whose final argument is a function literal and returns the callee
// name and that literal. The match is syntactic on the selector
// `parallel.<name>` so it also covers fixtures and future wrappers
// that mimic the package's shape.
func parallelBodyArg(call *ast.CallExpr) (string, *ast.FuncLit) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok || x.Name != "parallel" {
		return "", nil
	}
	if sel.Sel.Name != "For" && sel.Sel.Name != "ArgMax" {
		return "", nil
	}
	if len(call.Args) == 0 {
		return "", nil
	}
	body, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
	if !ok {
		return "", nil
	}
	return "parallel." + sel.Sel.Name, body
}

func checkParallelBody(pass *Pass, callee string, body *ast.FuncLit) {
	info := pass.Pkg.Info

	// Seed the chunk-derived taint set with the body's parameters.
	chunk := map[types.Object]bool{}
	if body.Type.Params != nil {
		for _, field := range body.Type.Params.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					chunk[obj] = true
				}
			}
		}
	}

	mentionsChunk := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && chunk[info.Uses[id]] {
				found = true
			}
			return !found
		})
		return found
	}

	// Propagate: a local defined or reassigned from a chunk-derived
	// expression is chunk-derived (loop variables, offsets).
	for changed := true; changed; {
		changed = false
		ast.Inspect(body.Body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for i, lhs := range assign.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil || chunk[obj] || !mentionsChunk(assign.Rhs[i]) {
					continue
				}
				chunk[obj] = true
				changed = true
			}
			return true
		})
	}

	localToBody := func(obj types.Object) bool {
		return obj != nil && body.Pos() <= obj.Pos() && obj.Pos() < body.End()
	}

	// checkWrite walks one write target: unwrap the selector/index
	// chain to its root identifier; a captured root is a violation
	// unless some slice/array index along the chain is chunk-derived.
	// A captured map is a violation at ANY key — concurrent map writes
	// race even on distinct keys.
	checkWrite := func(target ast.Expr) {
		indexed, chunkIndexed, mapWrite := false, false, false
		e := target
	unwrap:
		for {
			switch t := e.(type) {
			case *ast.ParenExpr:
				e = t.X
			case *ast.SelectorExpr:
				e = t.X
			case *ast.StarExpr:
				e = t.X
			case *ast.IndexExpr:
				indexed = true
				if tv, ok := info.Types[t.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						mapWrite = true
					}
				}
				if !mapWrite && mentionsChunk(t.Index) {
					chunkIndexed = true
				}
				e = t.X
			default:
				break unwrap
			}
		}
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if info.Defs[id] != nil {
			return // := definition of a body-local
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || localToBody(obj) || (chunkIndexed && !mapWrite) {
			return
		}
		switch {
		case mapWrite:
			pass.Reportf(target.Pos(),
				"%s body writes captured map %q; concurrent map writes race at any key — collect per-chunk and merge after the join", callee, id.Name)
		case indexed:
			pass.Reportf(target.Pos(),
				"%s body writes captured %q at a chunk-independent index; concurrent chunks race — derive the index from the body parameters", callee, id.Name)
		default:
			pass.Reportf(target.Pos(),
				"%s body writes captured variable %q; concurrent chunks race — give each index its own slot and reduce after the join", callee, id.Name)
		}
	}

	ast.Inspect(body.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(n.X)
		}
		return true
	})
}
