package analysis

import (
	"go/ast"
)

// SleepCtx flags bare time.Sleep calls lexically inside a for or
// range loop. A sleeping loop is almost always a retry/backoff or
// polling loop, and a bare Sleep cannot be interrupted: it holds its
// goroutine (and, in the serving path, a worker slot) for the full
// duration after the caller's context has already expired. The
// sanctioned shape is a context-aware wait —
//
//	t := time.NewTimer(d)
//	defer t.Stop()
//	select {
//	case <-t.C:
//	case <-ctx.Done():
//		return ctx.Err()
//	}
//
// — which wakes up the moment the request is dead. The rule is
// lexical: a Sleep inside a func literal that is itself inside a loop
// is still flagged (the literal usually runs on the loop's iteration
// path), and a one-shot Sleep outside any loop is left alone.
// Deliberate uninterruptible stalls (e.g. fault injection) carry a
// //kregret:allow sleepctx directive with a justification.
var SleepCtx = &Analyzer{
	Name: "sleepctx",
	Doc:  "flag bare time.Sleep inside loops; waits in retry/poll loops must select on ctx.Done()",
	Run:  runSleepCtx,
}

func runSleepCtx(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		var stack []ast.Node
		depth := 0
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				switch top.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					depth--
				}
				return true
			}
			stack = append(stack, n)
			switch n := n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				depth++
			case *ast.CallExpr:
				if depth > 0 && isPkgFunc(pass.Pkg.Info, n, "time", "Sleep") {
					pass.Reportf(n.Pos(), "time.Sleep in a loop cannot be canceled; use a time.Timer and select on ctx.Done()")
				}
			}
			return true
		})
	}
}
