package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NaNInf flags floating-point expressions that can silently produce
// NaN or ±Inf — math.Sqrt/Log/Acos/… calls and float divisions —
// inside functions that never guard the inputs or the result. A NaN
// critical ratio poisons every comparison after it (all compare
// false), which is how wrong regret ratios appear at d ≥ 6 without
// any crash.
//
// The guard heuristic is function-scoped and deliberately coarse: an
// operand is considered guarded when any identifier it is built from
// (or the variable the result is assigned to) also appears in an
// ordered comparison (if/for/switch-case condition), or as an
// argument to math.IsNaN / math.IsInf / math.Abs / math.Max /
// math.Min, or to any helper of the geom package (the epsilon
// vocabulary), or in a call to a method named IsFinite. This errs
// toward missing sophisticated guards rather than drowning real
// hazards in noise.
var NaNInf = &Analyzer{
	Name: "naninf",
	Doc:  "flag unguarded math.Sqrt/Log/Acos calls and float divisions that can produce NaN/Inf",
	Run:  runNaNInf,
}

// riskyMathFuncs produce NaN or ±Inf for inputs outside their domain.
var riskyMathFuncs = map[string]bool{
	"Sqrt": true, "Log": true, "Log2": true, "Log10": true, "Log1p": true,
	"Acos": true, "Asin": true, "Pow": true,
}

// guardFuncs (package math) mentioning an identifier count as a guard.
var guardMathFuncs = map[string]bool{
	"IsNaN": true, "IsInf": true, "Abs": true, "Max": true, "Min": true,
}

func runNaNInf(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkNaNInf(pass, fn)
		}
	}
}

func checkNaNInf(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info

	// Pass 1: collect the guarded identifier set.
	guarded := map[types.Object]bool{}
	addGuards := func(e ast.Expr) {
		if e != nil {
			rootIdents(info, e, guarded)
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if containsComparison(n.Cond) {
				addGuards(n.Cond)
			}
		case *ast.ForStmt:
			if n.Cond != nil && containsComparison(n.Cond) {
				addGuards(n.Cond)
			}
		case *ast.CaseClause:
			for _, e := range n.List {
				if containsComparison(e) {
					addGuards(e)
				}
			}
		case *ast.CallExpr:
			if isGuardCall(info, n) {
				for _, arg := range n.Args {
					addGuards(arg)
				}
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					addGuards(sel.X)
				}
			}
		}
		return true
	})

	isGuarded := func(e ast.Expr) bool {
		roots := map[types.Object]bool{}
		rootIdents(info, e, roots)
		for obj := range roots {
			if guarded[obj] {
				return true
			}
		}
		return false
	}

	// resultGuarded: the expression's value is assigned to a variable
	// that is itself in the guarded set (checked after production).
	resultGuarded := func(assignees []ast.Expr) bool {
		for _, lhs := range assignees {
			if isGuarded(lhs) {
				return true
			}
		}
		return false
	}

	// Pass 2: flag risky producers. Track the nearest enclosing
	// assignment so `v := math.Sqrt(x)` with a later check on v counts.
	var visit func(n ast.Node, assignees []ast.Expr)
	visit = func(n ast.Node, assignees []ast.Expr) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				visit(rhs, n.Lhs)
			}
			return
		case *ast.CallExpr:
			if fnObj, name := mathCallee(info, n); fnObj && riskyMathFuncs[name] {
				argsGuarded := true
				for _, arg := range n.Args {
					if tv, ok := info.Types[arg]; ok && tv.Value != nil {
						continue // constant argument
					}
					if !isGuarded(arg) {
						argsGuarded = false
					}
				}
				allConst := true
				for _, arg := range n.Args {
					if tv, ok := info.Types[arg]; !ok || tv.Value == nil {
						allConst = false
					}
				}
				if !allConst && !argsGuarded && !resultGuarded(assignees) {
					pass.Reportf(n.Pos(), "result of math.%s is never guarded with math.IsNaN/IsInf or an eps check", name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.QUO {
				if tv, ok := info.Types[n]; ok && isFloat(tv.Type) && tv.Value == nil {
					if dtv, ok := info.Types[n.Y]; ok && dtv.Value == nil {
						if !isGuarded(n.Y) && !resultGuarded(assignees) {
							pass.Reportf(n.OpPos, "floating-point division by unguarded value; check the divisor (or result) against NaN/Inf or an eps bound")
						}
					}
				}
			}
		}
		// Recurse generically, dropping the assignee context inside
		// sub-expressions of calls/conditions (the direct RHS keeps it).
		for _, child := range childNodes(n) {
			visit(child, assignees)
		}
	}
	for _, stmt := range fn.Body.List {
		visit(stmt, nil)
	}
}

// childNodes returns the direct AST children of n.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}

// mathCallee reports whether call is math.<Name>(...) and returns the
// name.
func mathCallee(info *types.Info, call *ast.CallExpr) (bool, string) {
	obj := calleeObj(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "math" {
		return false, ""
	}
	return true, fn.Name()
}

// isGuardCall reports whether the call is one of the recognized guard
// forms: math.IsNaN/IsInf/Abs/Max/Min, any function from the geom
// package, or a method named IsFinite.
func isGuardCall(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObj(info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	if fn.Name() == "IsFinite" {
		return true
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	if pkg.Path() == "math" && guardMathFuncs[fn.Name()] {
		return true
	}
	return pkg.Name() == "geom"
}

// containsComparison reports whether e contains an ordered or
// (in)equality comparison.
func containsComparison(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok {
			switch b.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
				found = true
				return false
			}
		}
		return !found
	})
	return found
}
