package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AtomicGuard checks the two synchronization conventions the serving
// layer is written against:
//
//   - A field synchronized through sync/atomic — either a typed
//     atomic (atomic.Uint64, atomic.Int32, ...) or an integer passed
//     by address to the atomic.Load*/Store*/Add*/Swap*/CompareAndSwap*
//     functions — must never also be read or written plainly: mixing
//     the two silently drops the synchronization on the plain side.
//   - A struct field declared in the line-contiguous group directly
//     below a mutex field named "mu"/"muXxx" (the tree's convention,
//     see serve.Breaker) is guarded by that mutex: accessing it in a
//     method without holding Lock/RLock is a finding. A blank line
//     ends the guarded group (serve.Pool keeps its lock-free atomics
//     below a separating blank). Helpers that run under a caller-held
//     lock are named with a "Locked" suffix, which exempts them.
//
// Lock tracking is lexical per function: Lock/RLock raises the held
// depth at its position, a non-deferred Unlock/RUnlock lowers it, and
// a deferred unlock holds to the end of the function. Construction
// through composite literals is not field access and stays exempt.
var AtomicGuard = &Analyzer{
	Name: "atomicguard",
	Doc:  "atomic fields never plain-accessed; mu-guarded fields only touched under the lock",
	Run:  runAtomicGuard,
}

func runAtomicGuard(pass *Pass) {
	info := pass.Pkg.Info
	guarded := collectGuardedFields(pass)
	atomicFns := collectAtomicFnFields(pass)

	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkAtomicAccess(pass, info, fd, atomicFns)
			if !strings.HasSuffix(fd.Name.Name, "Locked") {
				checkGuardedAccess(pass, info, fd, guarded)
			}
		}
	}
}

// isAtomicValueType reports whether t is one of sync/atomic's typed
// atomics (Bool, Int32, Uint64, Pointer[T], Value, ...).
func isAtomicValueType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) (rw bool, ok bool) {
	n, isNamed := t.(*types.Named)
	if !isNamed {
		return false, false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

// collectGuardedFields maps each convention-guarded struct field to
// its mutex field, per the mu-prefix + line-contiguity rule.
func collectGuardedFields(pass *Pass) map[types.Object]types.Object {
	info := pass.Pkg.Info
	fset := pass.Pkg.Fset
	out := map[types.Object]types.Object{}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			var mu types.Object
			prevEnd := 0
			for _, f := range st.Fields.List {
				start := fset.Position(f.Pos()).Line
				if f.Doc != nil {
					start = fset.Position(f.Doc.Pos()).Line
				}
				contiguous := mu != nil && start == prevEnd+1
				prevEnd = fset.Position(f.End()).Line

				if len(f.Names) > 0 && isMuName(f.Names[0].Name) {
					if tv, ok := info.Types[f.Type]; ok {
						if _, isMu := isMutexType(tv.Type); isMu {
							mu = info.Defs[f.Names[0]]
							continue
						}
					}
				}
				if !contiguous {
					mu = nil
					continue
				}
				for _, name := range f.Names {
					if obj := info.Defs[name]; obj != nil {
						out[obj] = mu
					}
				}
			}
			return true
		})
	}
	return out
}

func isMuName(name string) bool {
	if name == "mu" {
		return true
	}
	return strings.HasPrefix(name, "mu") && len(name) > 2 && name[2] >= 'A' && name[2] <= 'Z'
}

// collectAtomicFnFields finds struct fields whose address is passed
// to a sync/atomic function (atomic.AddInt64(&s.n, 1), ...): those
// fields belong to the atomic domain even though their type is plain.
func collectAtomicFnFields(pass *Pass) map[types.Object]bool {
	info := pass.Pkg.Info
	out := map[types.Object]bool{}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := calleeObj(info, call).(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr); ok {
					if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
						out[s.Obj()] = true
					}
				}
			}
			return true
		})
	}
	return out
}

// checkAtomicAccess flags plain accesses of atomic-domain fields.
func checkAtomicAccess(pass *Pass, info *types.Info, fd *ast.FuncDecl, atomicFns map[types.Object]bool) {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(fd, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		field := s.Obj()
		parent := parents[sel]

		if isAtomicValueType(field.Type()) {
			// Sanctioned shape: the selector is the receiver of a
			// method call (c.hits.Add(1)) or has its address taken for
			// one (&c.hits handed to a helper).
			if p, ok := parent.(*ast.SelectorExpr); ok && p.X == sel {
				return true
			}
			if u, ok := parent.(*ast.UnaryExpr); ok && u.Op == token.AND {
				return true
			}
			pass.Reportf(sel.Sel.Pos(), "typed atomic %s accessed without its Load/Store/Add methods", field.Name())
			return true
		}
		if atomicFns[field] {
			// Sanctioned shape: &f as an argument of a sync/atomic call.
			if u, ok := parent.(*ast.UnaryExpr); ok && u.Op == token.AND {
				if call, ok := parents[u].(*ast.CallExpr); ok {
					if fn, ok := calleeObj(info, call).(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
						return true
					}
				}
			}
			pass.Reportf(sel.Sel.Pos(), "field %s is managed with sync/atomic but accessed plainly here", field.Name())
		}
		return true
	})
}

// lockEvent is a Lock/Unlock call or a guarded access, in source
// order.
type lockEvent struct {
	pos    token.Pos
	mu     types.Object
	delta  int          // +1 Lock/RLock, -1 Unlock/RUnlock, 0 access
	field  types.Object // for accesses
	name   string
	defers bool
}

// checkGuardedAccess verifies that convention-guarded fields are only
// touched while their mutex is lexically held.
func checkGuardedAccess(pass *Pass, info *types.Info, fd *ast.FuncDecl, guarded map[types.Object]types.Object) {
	var events []lockEvent
	inDefer := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			inDefer[d.Call] = true
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			var delta int
			switch sel.Sel.Name {
			case "Lock", "RLock":
				delta = 1
			case "Unlock", "RUnlock":
				delta = -1
			default:
				return true
			}
			muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := info.Selections[muSel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			mu := s.Obj()
			if _, isMu := isMutexType(mu.Type()); !isMu {
				return true
			}
			events = append(events, lockEvent{pos: n.Pos(), mu: mu, delta: delta, defers: inDefer[n]})
		case *ast.SelectorExpr:
			s, ok := info.Selections[n]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			if mu, ok := guarded[s.Obj()]; ok {
				events = append(events, lockEvent{pos: n.Sel.Pos(), mu: mu, field: s.Obj(), name: n.Sel.Name})
			}
		}
		return true
	})

	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	depth := map[types.Object]int{}
	for _, e := range events {
		switch {
		case e.delta > 0:
			depth[e.mu]++
		case e.delta < 0:
			if e.defers {
				break // deferred unlock releases at return, not here
			}
			if depth[e.mu] > 0 {
				depth[e.mu]--
			}
		default:
			if depth[e.mu] == 0 {
				pass.Reportf(e.pos, "field %s is guarded by %s but accessed without holding it (rename the helper with a Locked suffix if the caller holds the lock)", e.name, e.mu.Name())
			}
		}
	}
}
