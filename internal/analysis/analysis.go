// Package analysis is a stdlib-only static-analysis framework with
// domain-specific analyzers for this repository's floating-point
// geometry kernel. It is the engine behind cmd/kregret-vet.
//
// The entire correctness story of the reproduction rests on numeric
// invariants — downward-closed hulls, non-negative facet normals,
// critical ratios in [0,1] — that a single raw `==` on a float64, an
// aliased coordinate slice or a silently dropped error can break
// without any test noticing. The analyzers here encode those hazard
// classes as machine-checked rules:
//
//   - floatcmp:   no ==/!=/switch on floating-point operands outside
//     the epsilon helpers in internal/geom/eps.go
//   - slicealias: the public API must not store or return a
//     caller-provided []float64 (or Point) without copying
//   - naninf:     results of math.Sqrt/Log/Acos/… and float divisions
//     must be guarded against NaN/Inf
//   - errdrop:    no discarded error returns in non-test files
//
// PR 6 added the concurrency and lifecycle invariants the serving
// layers (PRs 2–5) depend on:
//
//   - ctxflow:     context flows caller → callee: no fresh
//     Background/TODO outside package main and compat wrappers, ctx
//     is the first parameter, contexts never live in struct fields
//   - poolscope:   sync.Pool borrows are returned on every path,
//     never used after Put, and never alias a PointMatrix.Row view
//   - atomicguard: atomic fields are never plain-accessed and
//     mu-guarded fields are only touched under the lock
//   - wireguard:   gob wire structs are registered in a wireManifest
//     pinning their version and field layout
//
// PR 7 added the self-healing wait discipline:
//
//   - sleepctx:    no bare time.Sleep inside loops — retry/backoff
//     and polling waits must run through a time.Timer selected
//     against ctx.Done() so dead requests release their goroutine
//
// Only go/ast, go/parser, go/types, go/token and go/build are used;
// there is no dependency on golang.org/x/tools.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Pass is the per-package unit of work handed to each analyzer.
type Pass struct {
	Pkg *Package

	analyzer string
	findings []Finding
	allowed  map[string]map[int]bool // filename -> line -> suppressed (for this analyzer)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns the full analyzer suite in deterministic order.
func All() []*Analyzer {
	return []*Analyzer{FloatCmp, SliceAlias, NaNInf, ErrDrop, CtxFlow, PoolScope, AtomicGuard, WireGuard, SleepCtx}
}

// ByName resolves a comma-separated analyzer list ("floatcmp,errdrop").
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
	}
	return out, nil
}

// Reportf records a finding at pos unless a //kregret:allow directive
// suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if lines, ok := p.allowed[position.Filename]; ok {
		// A directive on line L suppresses findings on L (trailing
		// comment) and L+1 (comment on its own line above the code).
		if lines[position.Line] || lines[position.Line-1] {
			return
		}
	}
	p.findings = append(p.findings, Finding{
		Pos:      position,
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies the analyzers to every package and returns all findings
// sorted by position. Malformed //kregret:allow directives (unknown
// analyzer names, missing justifications) are findings in their own
// right, reported under the pseudo-analyzer name "allow" — a typo'd
// directive must fail loudly, not silently suppress nothing.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var all []Finding
	for _, pkg := range pkgs {
		all = append(all, validateAllows(pkg)...)
		for _, a := range analyzers {
			pass := &Pass{
				Pkg:      pkg,
				analyzer: a.Name,
				allowed:  collectAllows(pkg, a.Name),
			}
			a.Run(pass)
			all = append(all, pass.findings...)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all
}

// allowPrefix marks an intentional, reviewed exception:
//
//	x := v.Norm() //kregret:allow naninf: sum of squares is non-negative
//
// The directive names one or more comma-separated analyzers and must
// carry a justification after a colon. It applies to its own line and
// the following line. A directive naming an unknown analyzer or
// missing its justification is itself a finding (see validateAllows).
const allowPrefix = "kregret:allow "

// allowNames parses the comma-separated analyzer list of one
// directive comment, or ok=false if the comment is not a directive.
// The justification (everything after the first colon) rides along
// for validation.
func allowNames(text string) (names []string, justification string, ok bool) {
	text = strings.TrimSuffix(strings.TrimPrefix(strings.TrimPrefix(text, "//"), "/*"), "*/")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, allowPrefix) {
		return nil, "", false
	}
	rest := strings.TrimPrefix(text, allowPrefix)
	list, just, _ := strings.Cut(rest, ":")
	for _, n := range strings.Split(list, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, strings.TrimSpace(just), true
}

func collectAllows(pkg *Package, analyzer string) map[string]map[int]bool {
	out := map[string]map[int]bool{}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				names, _, ok := allowNames(c.Text)
				if !ok {
					continue
				}
				match := false
				for _, n := range names {
					if n == analyzer {
						match = true
						break
					}
				}
				if !match {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = map[int]bool{}
				}
				out[pos.Filename][pos.Line] = true
			}
		}
	}
	return out
}

// validateAllows checks every //kregret:allow directive of a package:
// each listed name must be a registered analyzer and the directive
// must justify itself after a colon. Violations come back as findings
// under the pseudo-analyzer "allow" (which is not itself
// allowlistable — a broken directive cannot vouch for itself).
func validateAllows(pkg *Package) []Finding {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	var out []Finding
	report := func(pos token.Position, format string, args ...any) {
		out = append(out, Finding{Pos: pos, Analyzer: "allow", Message: fmt.Sprintf(format, args...)})
	}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				names, justification, ok := allowNames(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if len(names) == 0 {
					report(pos, "//kregret:allow names no analyzer")
				}
				for _, n := range names {
					if !known[n] {
						report(pos, "//kregret:allow names unknown analyzer %q", n)
					}
				}
				if justification == "" {
					report(pos, "//kregret:allow must justify the exception after a colon")
				}
			}
		}
	}
	return out
}

// ---- shared type helpers used by several analyzers ----

// isFloat reports whether t's underlying type is a floating-point
// basic kind (including untyped float).
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

// isFloatSliceLike reports whether t is (or whose underlying is) a
// []float64, a named float slice like geom.Vector / kregret.Point, or
// a slice of such ([]Point). These are the types whose aliasing
// corrupts datasets.
func isFloatSliceLike(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	if isFloat(s.Elem()) {
		return true
	}
	inner, ok := s.Elem().Underlying().(*types.Slice)
	return ok && isFloat(inner.Elem())
}

// calleeObj resolves the called function/method object of a call, or
// nil for indirect calls and conversions.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// isPkgFunc reports whether the call is pkgPath.name(...) for a
// package-level function.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	obj := calleeObj(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// isConversion reports whether the call expression is a type
// conversion rather than a function call.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// rootIdents collects every identifier inside e that resolves to a
// variable (use or definition), keyed by object. Used by guard
// heuristics: `lambda := a/b` followed by `lambda > 0 && lambda < 1`
// must connect the defining and using occurrences of lambda.
func rootIdents(info *types.Info, e ast.Expr, into map[types.Object]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj, ok := info.Uses[id].(*types.Var); ok {
				into[obj] = true
			}
			if obj, ok := info.Defs[id].(*types.Var); ok {
				into[obj] = true
			}
		}
		return true
	})
}
