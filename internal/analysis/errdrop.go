package analysis

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags discarded error returns in non-test files: bare call
// statements (including defer/go) whose callee returns an error, and
// assignments that throw every result away (`_ = f()`). The LP
// solver, persistence layer and dataset readers all signal numeric
// failure through error values; a dropped one turns an infeasible
// tableau or a truncated file into a silently wrong regret ratio.
//
// Calls that are documented to never return a meaningful error are
// exempt: fmt.Print/Printf/Println, fmt.Fprint* to os.Stdout /
// os.Stderr, to an in-memory writer (*strings.Builder,
// *bytes.Buffer) or to a *tabwriter.Writer (whose write errors are
// deferred to Flush — Flush itself is not exempt), and the Write*
// methods of the in-memory writers.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "flag discarded error returns (`_ =` and bare calls) in non-test files",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				reportDroppedCall(pass, n.X, "")
			case *ast.DeferStmt:
				reportDroppedCall(pass, n.Call, "deferred ")
			case *ast.GoStmt:
				reportDroppedCall(pass, n.Call, "go ")
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				for _, lhs := range n.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); !ok || id.Name != "_" {
						return true
					}
				}
				reportDroppedCall(pass, n.Rhs[0], "")
			}
			return true
		})
	}
}

func reportDroppedCall(pass *Pass, e ast.Expr, kind string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	info := pass.Pkg.Info
	if isConversion(info, call) || !callReturnsError(info, call) || isErrDropExempt(info, call) {
		return
	}
	name := calleeName(info, call)
	pass.Reportf(call.Pos(), "%serror return of %s is discarded; handle it or assign it explicitly", kind, name)
}

func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(tv.Type)
	}
}

func calleeName(info *types.Info, call *ast.CallExpr) string {
	if obj := calleeObj(info, call); obj != nil {
		if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return fn.Name()
			}
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return obj.Name()
	}
	return "call"
}

// isErrDropExempt recognizes best-effort writes whose errors are
// conventionally ignored.
func isErrDropExempt(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObj(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	// Methods of in-memory writers never fail.
	if sig != nil && sig.Recv() != nil {
		if isInMemoryWriter(sig.Recv().Type()) {
			return true
		}
		return false
	}
	if fn.Pkg().Path() != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Print", "Printf", "Println":
		return true
	case "Fprint", "Fprintf", "Fprintln":
		if len(call.Args) == 0 {
			return false
		}
		dst := ast.Unparen(call.Args[0])
		if sel, ok := dst.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok {
				if pkg, ok := info.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "os" {
					return sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr"
				}
			}
		}
		if tv, ok := info.Types[dst]; ok && (isInMemoryWriter(tv.Type) || isNamedType(tv.Type, "text/tabwriter", "Writer")) {
			return true
		}
	}
	return false
}

func isInMemoryWriter(t types.Type) bool {
	return isNamedType(t, "strings", "Builder") || isNamedType(t, "bytes", "Buffer")
}

func isNamedType(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}
