package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolScope checks the sync.Pool scratch discipline the hot paths
// rely on (internal/core/scratch.go, internal/lp, internal/dd): a
// pooled value is borrowed for the duration of one lexical scope and
// handed back exactly once.
//
// The analyzer recognizes both direct pool.Get()/pool.Put(x) calls
// and the package's own accessor pairs (a get-wrapper contains a
// direct Get and returns the value; a put-wrapper contains a direct
// Put), then checks each function body:
//
//   - a Get whose value is neither Put back, returned to the caller,
//     nor covered by a deferred Put leaks the allocation;
//   - a return statement between a Get and its (non-deferred) Put
//     leaks on that path — `defer put(x)` is the sanctioned idiom;
//   - using the pooled value after a non-deferred Put in the same
//     block races with the next borrower;
//   - putting a mat.PointMatrix.Row view returns a window of the
//     shared backing array to the pool as if it were owned scratch.
//
// The checks are lexical, not path-sensitive: branches that Put on
// one arm only are modeled by the earliest Put position. That is
// exactly strict enough for the tree's get/defer-put idiom.
var PoolScope = &Analyzer{
	Name: "poolscope",
	Doc:  "sync.Pool values: every Get matched by a Put on all return paths, no use after Put, no pooled Row views",
	Run:  runPoolScope,
}

// poolWrapper classifies a package function as a pool accessor.
type poolWrapper struct {
	pool types.Object // the sync.Pool variable it touches
	get  bool         // returns a pooled value
	put  bool         // hands a parameter/receiver back
}

// poolEvent is one borrow/return event in a function scope, in
// lexical order.
type poolEvent struct {
	pos      token.Pos
	pool     types.Object
	get      bool
	deferred bool
	val      types.Object // the borrowed/returned variable, if identifiable
	isRow    bool         // put argument is a PointMatrix.Row view
}

func runPoolScope(pass *Pass) {
	info := pass.Pkg.Info
	wrappers := classifyPoolWrappers(pass)

	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			self := wrappers[funcObj(info, fd)]
			for _, scope := range poolScopes(fd.Body) {
				checkPoolScope(pass, info, wrappers, scope, self)
			}
		}
	}
}

// poolScopes splits a function body into independently-checked
// lexical scopes: the body itself plus every nested function literal
// (parallel.For bodies borrow their own scratch). A FuncLit that is
// immediately deferred stays part of its enclosing scope, so
// `defer func() { pool.Put(x) }()` counts as a deferred Put.
func poolScopes(body *ast.BlockStmt) []ast.Node {
	scopes := []ast.Node{body}
	skip := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if fl, ok := d.Call.Fun.(*ast.FuncLit); ok {
				skip[fl] = true
			}
		}
		if fl, ok := n.(*ast.FuncLit); ok && !skip[fl] {
			scopes = append(scopes, fl.Body)
		}
		return true
	})
	return scopes
}

// classifyPoolWrappers finds the package's accessor functions around
// direct sync.Pool calls.
func classifyPoolWrappers(pass *Pass) map[types.Object]*poolWrapper {
	info := pass.Pkg.Info
	out := map[types.Object]*poolWrapper{}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var w poolWrapper
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if pool, kind := directPoolCall(info, call); pool != nil {
					w.pool = pool
					if kind == "Get" {
						w.get = true
					} else {
						w.put = true
					}
				}
				return true
			})
			// A function with both a Get and a Put manages the value
			// itself and is checked as a plain scope, not a wrapper.
			if w.pool == nil || (w.get && w.put) {
				continue
			}
			if w.get && fd.Type.Results == nil {
				continue // consumes the value itself; checked as a scope
			}
			out[funcObj(info, fd)] = &w
		}
	}
	return out
}

// directPoolCall matches expr.Get() / expr.Put(x) on a sync.Pool and
// returns the pool variable's object and the method name.
func directPoolCall(info *types.Info, call *ast.CallExpr) (types.Object, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Get" && sel.Sel.Name != "Put") {
		return nil, ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, ""
	}
	return lastIdentObj(info, sel.X), sel.Sel.Name
}

// lastIdentObj resolves the variable at the end of a selector chain
// (accPool, p.pool, ...).
func lastIdentObj(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		return info.Uses[x.Sel]
	}
	return nil
}

// funcObj resolves a declaration to its types.Object.
func funcObj(info *types.Info, fd *ast.FuncDecl) types.Object {
	return info.Defs[fd.Name]
}

func checkPoolScope(pass *Pass, info *types.Info, wrappers map[types.Object]*poolWrapper, scope ast.Node, self *poolWrapper) {
	events := collectPoolEvents(info, wrappers, scope)
	if len(events) == 0 {
		return
	}

	// Returned pooled variables: the scope hands ownership upward
	// (transitive get-wrapper), which exempts the matching Get.
	returned := map[types.Object]bool{}
	var returns []token.Pos
	walkScope(scope, func(n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		returns = append(returns, ret.Pos())
		for _, res := range ret.Results {
			if obj := lastIdentObj(info, res); obj != nil {
				returned[obj] = true
			}
		}
	})

	for _, pool := range poolsOf(events) {
		var gets, puts []poolEvent
		hasDeferredPut := false
		for _, e := range events {
			if e.pool != pool {
				continue
			}
			if e.get {
				gets = append(gets, e)
			} else {
				puts = append(puts, e)
				if e.deferred {
					hasDeferredPut = true
				}
			}
		}

		for _, p := range puts {
			if p.isRow {
				pass.Reportf(p.pos, "Put of a PointMatrix.Row view: row views window the shared backing array and must never enter a pool")
			}
		}

		for _, g := range gets {
			if g.get && self != nil && self.get && self.pool == pool {
				continue // the accessor's own Get is returned by contract
			}
			if g.val != nil && returned[g.val] {
				continue
			}
			if len(puts) == 0 {
				pass.Reportf(g.pos, "sync.Pool Get without a matching Put in this scope: the borrowed value leaks")
				continue
			}
			if !hasDeferredPut {
				firstPut := puts[0].pos
				for _, p := range puts {
					if p.pos < firstPut {
						firstPut = p.pos
					}
				}
				for _, rpos := range returns {
					if rpos > g.pos && rpos < firstPut {
						pass.Reportf(rpos, "return between Pool.Get and Put leaks the pooled value: use `defer put(...)`")
					}
				}
			}
		}

		// Use after a non-deferred Put, within the Put's own block.
		for _, p := range puts {
			if p.deferred || p.val == nil {
				continue
			}
			checkUseAfterPut(pass, info, scope, p)
		}
	}
}

// poolsOf returns the distinct pools of the event list in order.
func poolsOf(events []poolEvent) []types.Object {
	var out []types.Object
	seen := map[types.Object]bool{}
	for _, e := range events {
		if !seen[e.pool] {
			seen[e.pool] = true
			out = append(out, e.pool)
		}
	}
	return out
}

// collectPoolEvents gathers Get/Put events (direct or through the
// package's accessor pairs) of one scope in lexical order.
func collectPoolEvents(info *types.Info, wrappers map[types.Object]*poolWrapper, scope ast.Node) []poolEvent {
	var events []poolEvent
	inDefer := map[ast.Node]bool{}
	walkScope(scope, func(n ast.Node) {
		if d, ok := n.(*ast.DeferStmt); ok {
			inDefer[d.Call] = true
			if fl, ok := d.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(fl.Body, func(m ast.Node) bool {
					if c, ok := m.(*ast.CallExpr); ok {
						inDefer[c] = true
					}
					return true
				})
			}
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if pool, kind := directPoolCall(info, call); pool != nil {
			e := poolEvent{pos: call.Pos(), pool: pool, get: kind == "Get", deferred: inDefer[call]}
			if kind == "Put" && len(call.Args) == 1 {
				e.val = lastIdentObj(info, sliceRoot(call.Args[0]))
				e.isRow = isRowViewExpr(info, call.Args[0])
			} else if kind == "Get" {
				e.val = boundVar(info, call)
			}
			events = append(events, e)
			return
		}
		obj := calleeObj(info, call)
		if obj == nil {
			return
		}
		w, ok := wrappers[obj]
		if !ok {
			return
		}
		e := poolEvent{pos: call.Pos(), pool: w.pool, get: w.get, deferred: inDefer[call]}
		if w.put {
			// t.release() hands back the receiver; put(x) the argument.
			if len(call.Args) >= 1 {
				e.val = lastIdentObj(info, sliceRoot(call.Args[0]))
				e.isRow = isRowViewExpr(info, call.Args[0])
			} else if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				e.val = lastIdentObj(info, sel.X)
			}
		} else {
			e.val = boundVar(info, call)
		}
		events = append(events, e)
	})
	return events
}

// boundVar finds the variable a Get-shaped call is assigned to:
// v := pool.Get().(T), v := floatScratch(n).
func boundVar(info *types.Info, call *ast.CallExpr) types.Object {
	// The call may sit under a type assertion; the assignment is the
	// nearest enclosing AssignStmt — recovered lexically by the caller
	// walking statements. Here we only handle the common direct forms
	// via the parent links the walker records.
	if parent := poolParents[call]; parent != nil {
		for p := parent; p != nil; p = poolParents[p] {
			if as, ok := p.(*ast.AssignStmt); ok {
				if len(as.Lhs) >= 1 {
					if id, ok := as.Lhs[0].(*ast.Ident); ok {
						if obj := info.Defs[id]; obj != nil {
							return obj
						}
						return info.Uses[id]
					}
				}
				return nil
			}
		}
	}
	return nil
}

// poolParents maps each node of the scope currently being walked to
// its parent. Rebuilt per scope by walkScope; package-scoped to keep
// the helper signatures small (analysis passes are single-threaded).
var poolParents map[ast.Node]ast.Node

// walkScope traverses the scope in lexical order without descending
// into nested non-deferred function literals (they are scopes of
// their own), recording parent links for boundVar.
func walkScope(scope ast.Node, visit func(ast.Node)) {
	poolParents = map[ast.Node]ast.Node{}
	deferredLits := map[*ast.FuncLit]bool{}
	ast.Inspect(scope, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if fl, ok := d.Call.Fun.(*ast.FuncLit); ok {
				deferredLits[fl] = true
			}
		}
		return true
	})
	var parent ast.Node
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != scope && !deferredLits[fl] {
			return false
		}
		poolParents[n] = parent
		visit(n)
		saved := parent
		parent = n
		for _, c := range childNodes(n) {
			walk(c)
		}
		parent = saved
		return true
	}
	walk(scope)
}

// sliceRoot unwraps slice/index expressions (b[:0], (*acc)) to the
// underlying variable expression.
func sliceRoot(e ast.Expr) ast.Expr {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				e = x.X
				continue
			}
			return e
		default:
			return e
		}
	}
}

// isRowViewExpr reports whether e is (or is a slice of) a call to the
// Row method of a type named PointMatrix — matched by name, like the
// slicealias Row-view checks, so fixtures need not import the real
// mat package.
func isRowViewExpr(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(sliceRoot(e)).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Row" {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "PointMatrix"
}

// checkUseAfterPut flags uses of the put variable after the Put call
// within the same immediate block (statement list).
func checkUseAfterPut(pass *Pass, info *types.Info, scope ast.Node, put poolEvent) {
	var enclosing *ast.BlockStmt
	ast.Inspect(scope, func(n ast.Node) bool {
		if b, ok := n.(*ast.BlockStmt); ok {
			for _, st := range b.List {
				if st.Pos() <= put.pos && put.pos < st.End() {
					// Keep descending: the innermost block wins.
					enclosing = b
				}
			}
		}
		return true
	})
	if enclosing == nil {
		if b, ok := scope.(*ast.BlockStmt); ok {
			enclosing = b
		} else {
			return
		}
	}
	for _, st := range enclosing.List {
		if st.Pos() <= put.pos {
			continue
		}
		ast.Inspect(st, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if info.Uses[id] == put.val {
				pass.Reportf(id.Pos(), "%s used after it was returned to its pool: the next borrower may already own it", id.Name)
			}
			return true
		})
	}
}
