package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces the repository's context-plumbing discipline. The
// serving engine cancels work through context.Context, so every layer
// between the HTTP-ish edge and the geometry kernels must pass the
// caller's context down instead of minting fresh roots:
//
//   - context.Background()/context.TODO() are confined to package main
//     and to compat wrappers: a function may delegate a background
//     context only into its own context-taking counterpart (same
//     package, same receiver, name + "Context"/"Ctx"/"ParCtx") — the
//     Query → QueryContext / GeoGreedy → GeoGreedyCtx idiom.
//   - A function that already receives a context must use it; a
//     background context inside it is always a finding.
//   - An exported function that spawns goroutines must accept a
//     context (the spawner decides the lifetime, so it needs the
//     caller's cancellation signal).
//   - A context parameter must be the first parameter.
//   - context.Context must not be stored in struct fields — contexts
//     are call-scoped, not object-scoped (request carriers that never
//     outlive the call may be allowlisted).
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "context must flow from caller to callee: no fresh Background/TODO outside main and compat wrappers, ctx first, never stored",
	Run:  runCtxFlow,
}

// ctxSuffixes are the sanctioned names for the context-taking
// counterpart of a compat wrapper, in the order the tree uses them.
var ctxSuffixes = [...]string{"Context", "Ctx", "ParCtx"}

func runCtxFlow(pass *Pass) {
	if pass.Pkg.Types.Name() == "main" {
		// Binaries own their root contexts: main() legitimately mints
		// Background and wires signal handling onto it.
		return
	}
	info := pass.Pkg.Info

	// Index package-level functions by (receiver base type, name) so
	// the compat-wrapper exemption can look up counterparts.
	declared := map[string]bool{}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				declared[funcKey(fd)] = true
			}
		}
	}

	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkCtxFunc(pass, info, d, declared)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, f := range st.Fields.List {
						if tv, ok := info.Types[f.Type]; ok && isContextType(tv.Type) {
							pass.Reportf(f.Pos(), "context.Context stored in struct %s: contexts are call-scoped, pass them as parameters", ts.Name.Name)
						}
					}
				}
			}
		}
	}
}

func checkCtxFunc(pass *Pass, info *types.Info, fd *ast.FuncDecl, declared map[string]bool) {
	hasCtx, ctxIndex := ctxParam(info, fd)
	if hasCtx && ctxIndex > 0 {
		pass.Reportf(fd.Type.Params.List[0].Pos(), "context.Context must be the first parameter of %s", fd.Name.Name)
	}

	hasCounterpart := false
	for _, suf := range ctxSuffixes {
		if declared[funcKeyNamed(fd, fd.Name.Name+suf)] {
			hasCounterpart = true
			break
		}
	}

	if fd.Body == nil {
		return
	}

	spawns := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			spawns = true
		case *ast.CallExpr:
			if isPkgFunc(info, n, "context", "Background") || isPkgFunc(info, n, "context", "TODO") {
				switch {
				case hasCtx:
					pass.Reportf(n.Pos(), "%s already receives a context: use it instead of a fresh background context", fd.Name.Name)
				case !hasCounterpart:
					pass.Reportf(n.Pos(), "fresh background context in %s: accept a context or delegate to a %s{Context,Ctx,ParCtx} counterpart", fd.Name.Name, fd.Name.Name)
				}
			}
		}
		return true
	})

	if spawns && fd.Name.IsExported() && !hasCtx {
		pass.Reportf(fd.Name.Pos(), "exported %s spawns goroutines but takes no context.Context: the caller must own their lifetime", fd.Name.Name)
	}
}

// ctxParam reports whether the function declares a context.Context
// parameter and at which parameter index it sits.
func ctxParam(info *types.Info, fd *ast.FuncDecl) (bool, int) {
	if fd.Type.Params == nil {
		return false, 0
	}
	index := 0
	for _, f := range fd.Type.Params.List {
		tv, ok := info.Types[f.Type]
		if ok && isContextType(tv.Type) {
			return true, index
		}
		// Unnamed parameter groups still occupy one slot each.
		if n := len(f.Names); n > 0 {
			index += n
		} else {
			index++
		}
	}
	return false, 0
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// funcKey identifies a declaration as "RecvType.Name" (or "Name" for
// plain functions), so wrappers and counterparts pair up per receiver.
func funcKey(fd *ast.FuncDecl) string {
	return funcKeyNamed(fd, fd.Name.Name)
}

func funcKeyNamed(fd *ast.FuncDecl, name string) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return name
	}
	return recvBaseName(fd.Recv.List[0].Type) + "." + name
}

// recvBaseName unwraps a receiver type expression ("*Dataset",
// "Dataset", "list[T]") to its base type name.
func recvBaseName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		case *ast.ParenExpr:
			e = t.X
		default:
			return ""
		}
	}
}
