package analysis

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// FloatCmp flags exact equality on floating-point values. Lemma 1 of
// the paper only holds when hull membership, facet incidence and
// critical-ratio ties are decided with a tolerance; a single raw `==`
// (typically `x == 0` or a switch on a float) silently reintroduces
// the numeric fragility the geom epsilon helpers exist to remove.
//
// Flagged: `==` and `!=` where either operand is floating-point, and
// `switch` statements whose tag is floating-point. Comparisons where
// both operands are compile-time constants are exempt, as is the file
// that defines the tolerance vocabulary itself, internal/geom/eps.go.
// Ordered comparisons (<, <=, >, >=) are not flagged: they are
// well-defined on floats and epsilon-free orderings (e.g. sort
// comparators) must stay exact to remain transitive.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flag ==/!=/switch on floating-point operands outside internal/geom/eps.go",
	Run:  runFloatCmp,
}

// floatCmpExemptFile is the one file allowed to compare floats
// directly: it defines the epsilon helpers everything else must use.
var floatCmpExemptFile = filepath.Join("internal", "geom", "eps.go")

func runFloatCmp(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		name := pass.Pkg.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, floatCmpExemptFile) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				xt, xok := info.Types[n.X]
				yt, yok := info.Types[n.Y]
				if !xok || !yok || (!isFloat(xt.Type) && !isFloat(yt.Type)) {
					return true
				}
				if xt.Value != nil && yt.Value != nil {
					return true // constant-folded: exact by definition
				}
				pass.Reportf(n.OpPos, "floating-point %s comparison; use the geom epsilon helpers (ApproxEqual/Zero) instead", n.Op)
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				if tv, ok := info.Types[n.Tag]; ok && isFloat(tv.Type) {
					pass.Reportf(n.Switch, "switch on floating-point value compares cases with ==; restructure with epsilon comparisons")
				}
			}
			return true
		})
	}
}
