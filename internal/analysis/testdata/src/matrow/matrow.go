// Package matrow seeds violations of the PointMatrix.Row aliasing
// discipline (checked by the slicealias analyzer): Row returns a
// capacity-trimmed read-only window into the matrix's shared backing
// array, so writing through a view or letting one escape the
// function corrupts (or races with) every concurrent reader. The
// stub below mirrors internal/mat's shape — fixture packages may
// import only the standard library, and the analyzer matches the
// named receiver type PointMatrix.
package matrow

// PointMatrix is the fixture stand-in for mat.PointMatrix.
type PointMatrix struct {
	data []float64
	n, d int
}

// Row mirrors mat's capacity-trimmed view accessor.
func (m *PointMatrix) Row(i int) []float64 {
	return m.data[i*m.d : (i+1)*m.d : (i+1)*m.d]
}

// Rows reports the number of points.
func (m *PointMatrix) Rows() int { return m.n }

// Matrix mirrors linalg.Matrix: its row views are mutable by design,
// so writes through Matrix.Row must stay unflagged.
type Matrix struct {
	data []float64
	cols int
}

// Row returns a mutable row view (the linalg contract).
func (m *Matrix) Row(i int) []float64 {
	return m.data[i*m.cols : (i+1)*m.cols]
}

// writeThroughCall writes straight through a fresh view expression.
func writeThroughCall(m *PointMatrix) {
	m.Row(0)[0] = 1 // want: slicealias
}

// writeThroughLocal stores the view first; the taint must follow the
// local through the assignment, the compound write, and the IncDec.
func writeThroughLocal(m *PointMatrix) {
	v := m.Row(1)
	v[2] = 9  // want: slicealias
	v[0] += 1 // want: slicealias
	v[1]++    // want: slicealias
}

// copyIntoView scribbles over the shared backing array via the copy
// builtin's destination argument.
func copyIntoView(m *PointMatrix, src []float64) {
	copy(m.Row(0), src) // want: slicealias
}

// returnView leaks the view to the caller, who has no way to know it
// aliases the matrix.
func returnView(m *PointMatrix) []float64 {
	return m.Row(2) // want: slicealias
}

// returnLocalView leaks it through a local and a re-slice.
func returnLocalView(m *PointMatrix) []float64 {
	v := m.Row(2)
	return v[1:] // want: slicealias
}

type holder struct {
	row  []float64
	rows [][]float64
}

// storeField retains the view past the function's lifetime.
func storeField(m *PointMatrix, h *holder) {
	h.row = m.Row(0) // want: slicealias
}

// appendRetains keeps the alias alive inside a slice of slices.
func appendRetains(m *PointMatrix) {
	var rows [][]float64
	for i := 0; i < m.Rows(); i++ {
		rows = append(rows, m.Row(i)) // want: slicealias
	}
	_ = rows
}

// compositeRetains embeds the view in a literal that outlives it.
func compositeRetains(m *PointMatrix) holder {
	return holder{rows: [][]float64{m.Row(0)}} // want: slicealias
}

// readOnlyUses is the sanctioned idiom: views are read in place,
// passed as call arguments, copied OUT of, or appended TO (the
// trimmed capacity forces a reallocation) — none of it flagged.
func readOnlyUses(m *PointMatrix, w []float64) float64 {
	v := m.Row(0)
	s := 0.0
	for j, x := range v {
		s += x * w[j]
	}
	s += dot(m.Row(1), w)
	dst := make([]float64, len(v))
	copy(dst, m.Row(0))
	grown := append(m.Row(0), 1.0)
	grown[0] = 7 // fresh backing array, not the matrix
	return s + dst[0] + grown[0]
}

// mutableMatrix writes through linalg-style Matrix.Row views, which
// are mutable by contract and must not be flagged.
func mutableMatrix(m *Matrix, src []float64) {
	m.Row(0)[0] = 1
	r := m.Row(1)
	r[0] += 2
	copy(m.Row(2), src)
}

// closureCaptures captures a view in a func literal — the kernel-block
// discipline says views are consume-immediately, and a closure (sort
// comparator, goroutine body, deferred cleanup) runs outside that
// window, possibly after the backing matrix has been rebuilt.
func closureCaptures(m *PointMatrix, idx []int) {
	v := m.Row(0)
	less := func(i, j int) bool {
		return v[idx[i]] < v[idx[j]] // want: slicealias
	}
	_ = less
}

// closureCapturesDeferred leaks the view into a deferred closure that
// runs after the sweep has moved on.
func closureCapturesDeferred(m *PointMatrix) {
	v := m.Row(1)
	defer func() {
		_ = v[0] // want: slicealias
	}()
}

// closureFreshRow is the sanctioned form: the closure calls Row itself,
// taking the view fresh inside its own scope, and a copied block
// summary (plain []float64 scratch owned by the sweep) may be captured
// freely.
func closureFreshRow(m *PointMatrix, idx []int) {
	summary := make([]float64, len(m.Row(0)))
	copy(summary, m.Row(0))
	less := func(i, j int) bool {
		return m.Row(idx[i])[0] < summary[j]
	}
	_ = less
}

// allowedEscape shows the reviewed-exception hatch.
func allowedEscape(m *PointMatrix) []float64 {
	return m.Row(0) //kregret:allow slicealias: caller is the matrix owner and reads only
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
