// Package sleepctx seeds violations of the cancellable-wait
// discipline (checked by the sleepctx analyzer): bare time.Sleep
// calls inside for and range loops, including one hidden in a func
// literal spawned from a loop body. The clean counterexamples pin
// down the sanctioned shapes: the timer+select ctx-aware backoff, a
// one-shot Sleep outside any loop, and an allowlisted deliberate
// stall.
package sleepctx

import (
	"context"
	"time"
)

// Poll busy-waits with an uninterruptible sleep: the classic shape
// the analyzer exists to catch.
func Poll(ready func() bool) {
	for !ready() {
		time.Sleep(10 * time.Millisecond) // want: sleepctx
	}
}

// DrainAll sleeps between items of a range loop.
func DrainAll(keys []string, drain func(string)) {
	for _, k := range keys {
		drain(k)
		time.Sleep(time.Millisecond) // want: sleepctx
	}
}

// RetryAsync hides the sleep inside a goroutine literal, but the
// literal is spawned per iteration — the wait is still on the loop's
// path and still uninterruptible.
func RetryAsync(ctx context.Context, attempts int, try func()) {
	for i := 0; i < attempts; i++ {
		go func() {
			time.Sleep(time.Second) // want: sleepctx
			if ctx.Err() == nil {
				try()
			}
		}()
	}
}

// RetryCtx is the sanctioned backoff: the wait selects on ctx.Done()
// so a dead request releases its goroutine immediately. Stays clean.
func RetryCtx(ctx context.Context, attempts int, try func() error) error {
	for i := 0; i < attempts; i++ {
		if err := try(); err == nil {
			return nil
		}
		t := time.NewTimer(time.Duration(i+1) * time.Millisecond)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
		t.Stop()
	}
	return context.DeadlineExceeded
}

// WarmUp sleeps once, outside any loop — a startup delay, not a
// polling loop. Stays clean.
func WarmUp() {
	time.Sleep(50 * time.Millisecond)
}

// Throttle is a reviewed exception: a deliberate fixed-rate pacer
// that must not be cut short. The directive keeps it clean.
func Throttle(ticks int, tick func()) {
	for i := 0; i < ticks; i++ {
		tick()
		//kregret:allow sleepctx: fixed-rate pacer, the stall is the feature
		time.Sleep(time.Millisecond)
	}
}
