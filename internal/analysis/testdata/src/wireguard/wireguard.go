// Package wireguard seeds violations of the gob wire-format manifest
// convention (checked by the wireguard analyzer): every gob-encoded
// struct must have a wireManifest entry pinning its version and field
// layout on one reviewed line. recordWire is the registered happy
// path; the others drift from their entries in each way the analyzer
// distinguishes.
package wireguard

import (
	"encoding/gob"
	"io"
)

// recordWire is registered and consistent: fields and pinned version
// both match its manifest entry.
type recordWire struct {
	Version int
	N       int
	Tags    []string
}

const recordVersion = 3

// orphanWire is gob-encoded but missing from the manifest.
type orphanWire struct {
	Version int
}

// driftWire gained a Count field without its manifest entry (and so
// its version) being touched.
type driftWire struct {
	Version int
	Name    string
	Count   int
}

// skewWire's manifest entry claims v2 while Save pins Version to 1.
type skewWire struct {
	Version int
}

// scratchWire is a debug-only dump with no compat promise; its encode
// site is allowlisted instead of registered.
type scratchWire struct{ X int }

// rawWire is a hand-rolled binary format: no gob anywhere, but its
// appendWire method marks it as a wire struct and its manifest entry
// matches — the registered happy path of the appendWire convention.
type rawWire struct {
	Seq  uint64
	Data []float64
}

func (r rawWire) appendWire(dst []byte) []byte {
	for range r.Data {
		dst = append(dst, 0)
	}
	return dst
}

// looseWire hand-serializes like rawWire but was never registered:
// its wire layout could drift without any reviewed manifest line.
type looseWire struct {
	Tag byte
}

func (l looseWire) appendWire(dst []byte) []byte { // want: wireguard
	return append(dst, l.Tag)
}

var wireManifest = map[string]string{
	"recordWire": "v3 Version int; N int; Tags []string",
	"driftWire":  "v1 Version int; Name string", // want: wireguard
	"skewWire":   "v2 Version int",              // want: wireguard
	"ghostWire":  "v1 Version int",              // want: wireguard
	"rawWire":    "v1 Seq uint64; Data []float64",
}

func saveRecord(w io.Writer, n int, tags []string) error {
	return gob.NewEncoder(w).Encode(recordWire{Version: recordVersion, N: n, Tags: tags})
}

func saveOrphan(w io.Writer) error {
	return gob.NewEncoder(w).Encode(orphanWire{Version: 1}) // want: wireguard
}

func loadDrift(r io.Reader) (driftWire, error) {
	var wire driftWire
	err := gob.NewDecoder(r).Decode(&wire)
	return wire, err
}

func saveSkew(w io.Writer) error {
	return gob.NewEncoder(w).Encode(skewWire{Version: 1})
}

func dumpScratch(w io.Writer, v scratchWire) error {
	//kregret:allow wireguard: debug-only dump, no compat promise to keep
	return gob.NewEncoder(w).Encode(v)
}
