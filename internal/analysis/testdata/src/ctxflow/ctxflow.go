// Package ctxflow seeds violations of the context-plumbing
// discipline (checked by the ctxflow analyzer): fresh
// Background/TODO roots outside package main and compat wrappers,
// goroutine spawners that give the caller no cancellation handle,
// contexts hiding in struct fields, and contexts demoted from the
// first parameter slot. The clean counterexamples pin down the
// sanctioned shapes: the Find → FindCtx compat wrapper and the two
// allowlisted lifecycle exceptions.
package ctxflow

import (
	"context"
	"sync"
)

// Fetch spawns a worker goroutine but accepts no context, so the
// caller cannot bound the spawned work's lifetime.
func Fetch(addr string) { // want: ctxflow
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = addr
	}()
	wg.Wait()
}

// Lookup mints a background root and hands it to a helper that is
// not its counterpart ("lookupCtx" differs in case from "LookupCtx"),
// so the compat-wrapper exemption must not apply.
func Lookup(addr string) int {
	ctx := context.Background() // want: ctxflow
	return lookupCtx(ctx, addr)
}

func lookupCtx(ctx context.Context, addr string) int {
	_ = ctx
	return len(addr)
}

// Find delegates its background root into its own Ctx counterpart —
// the sanctioned Query → QueryContext compat idiom; stays clean.
func Find(addr string) int {
	return FindCtx(context.Background(), addr)
}

// FindCtx is the context-taking counterpart of Find.
func FindCtx(ctx context.Context, addr string) int {
	_ = ctx
	return len(addr)
}

// Process demotes the context to the second parameter.
func Process(n int, ctx context.Context) int { // want: ctxflow
	_ = ctx
	return n
}

// Refresh already receives a context but mints a fresh root anyway,
// detaching the work from its caller's deadline.
func Refresh(ctx context.Context) {
	_ = ctx
	other := context.TODO() // want: ctxflow
	_ = other
}

// session stores a context beyond any single call.
type session struct {
	ctx  context.Context // want: ctxflow
	name string
}

// carrier is the sanctioned exception to the struct-field rule: a
// request-scoped carrier that never outlives the call that made it.
type carrier struct {
	//kregret:allow ctxflow: request-scoped carrier, dies with the call that made it
	ctx context.Context
	fn  func()
}

// StartWorkers spawns workers whose lifetime is owned by the returned
// carrier rather than any request — the reviewed lifecycle exception.
//kregret:allow ctxflow: worker lifetime is bound to the carrier, not a request context
func StartWorkers(n int) *carrier {
	c := &carrier{fn: func() {}}
	for i := 0; i < n; i++ {
		go c.fn()
	}
	return c
}
