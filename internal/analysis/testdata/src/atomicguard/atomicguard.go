// Package atomicguard seeds violations of the two synchronization
// conventions checked by the atomicguard analyzer: fields in the
// atomic domain (typed atomics, or integers driven through the
// sync/atomic functions) must never be accessed plainly, and fields
// in the line-contiguous group under a mu-named mutex must only be
// touched while that mutex is held. The blank-line break and the
// "Locked" helper-suffix convention are exercised as clean cases.
package atomicguard

import (
	"sync"
	"sync/atomic"
)

// counter mixes the three synchronization domains the analyzer
// distinguishes.
type counter struct {
	// hits is a typed atomic: only its Load/Store/Add methods may
	// touch it.
	hits atomic.Int64
	// dropped is a plain int64 managed through atomic.AddInt64.
	dropped int64

	// mu guards the contiguous group below it.
	mu   sync.Mutex
	val  int
	name string

	// label sits after the blank line: outside the guarded group.
	label string
}

// Hit is the clean path: atomic methods for the atomic domain, the
// lock for the guarded group, plain access for the free tail.
func (c *counter) Hit(name string) {
	c.hits.Add(1)
	atomic.AddInt64(&c.dropped, 1)
	c.mu.Lock()
	c.val++
	c.name = name
	c.mu.Unlock()
	c.label = name
}

// snapshot reads the guarded group without holding mu.
func (c *counter) snapshot() (int, string) {
	v := c.val   // want: atomicguard
	n := c.name  // want: atomicguard
	return v, n
}

// copyAtomic copies the typed atomic by value instead of Load.
func (c *counter) copyAtomic() int64 {
	snap := c.hits // want: atomicguard
	return snap.Load()
}

// resetDropped writes the atomically-managed counter plainly,
// silently dropping the synchronization on this side.
func (c *counter) resetDropped() {
	c.dropped = 0 // want: atomicguard
}

// bumpLocked runs under a caller-held lock, which its name declares.
func (c *counter) bumpLocked() {
	c.val++
}

// approxVal is a sanctioned dirty read, reviewed and allowlisted.
func (c *counter) approxVal() int {
	//kregret:allow atomicguard: monitoring endpoint tolerates a stale read
	return c.val
}

// registry exercises the muXxx naming form and RWMutex read locking.
type registry struct {
	muIndex sync.RWMutex
	index   map[string]int
}

// Get reads the index under the read lock (deferred unlock holds to
// the end of the function).
func (r *registry) Get(k string) int {
	r.muIndex.RLock()
	defer r.muIndex.RUnlock()
	return r.index[k]
}

// size reads the guarded map without the lock.
func (r *registry) size() int {
	return len(r.index) // want: atomicguard
}
