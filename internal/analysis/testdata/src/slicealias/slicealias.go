// Package slicealiasfix seeds slicealias violations for the analyzer
// fixture tests. The fixture is loaded under a non-internal import
// path so the analyzer's internal-package exemption does not apply.
package slicealiasfix

// Vec is a named float slice, the fixture analogue of geom.Vector.
type Vec []float64

// Series is a container an exported function could leak an alias into.
type Series struct {
	Data []float64
}

var global []float64

// Return hands the caller's backing array straight back.
func Return(p []float64) []float64 {
	return p // want: slicealias
}

// StoreGlobal escapes the parameter into package state.
func StoreGlobal(p Vec) {
	global = p // want: slicealias
}

// WrapLiteral retains the alias inside a struct literal.
func WrapLiteral(p []float64) Series {
	return Series{Data: p} // want: slicealias
}

// FirstRow leaks a row of the caller's matrix through a range value.
func FirstRow(rows [][]float64) []float64 {
	for _, r := range rows {
		return r // want: slicealias
	}
	return nil
}

// ViaLocal reaches the return through a chain of local assignments.
func ViaLocal(p []float64) []float64 {
	q := p
	r := q[1:]
	return r // want: slicealias
}

// Cloned copies before returning: clean.
func Cloned(p []float64) []float64 {
	q := append([]float64(nil), p...)
	return q
}

// Laundered trusts callees to copy (the codebase's Clone convention):
// clean.
func Laundered(p Vec) Vec {
	return clone(p)
}

func clone(p Vec) Vec {
	q := make(Vec, len(p))
	copy(q, p)
	return q
}

// unexportedAlias is not part of the public API surface: clean.
func unexportedAlias(p []float64) []float64 {
	return p
}

// Scalar parameters carry no aliasing hazard: clean.
func Scalar(x float64) float64 {
	return x
}
