// Package poolscope seeds violations of the sync.Pool scratch
// discipline (checked by the poolscope analyzer): borrows that leak
// on a path or outright, uses after the value went back to the pool,
// and a PointMatrix.Row view handed to a pool as if it were owned
// scratch. getBuf/putBuf mirror the accessor-pair idiom of
// internal/core/scratch.go so the wrapper classification is exercised
// alongside direct Get/Put calls.
package poolscope

import "sync"

var bufPool = sync.Pool{New: func() any { return make([]float64, 0, 64) }}

// getBuf borrows a scratch buffer (get-wrapper: contains the direct
// Get and returns the value, so its own borrow is exempt by contract).
func getBuf() []float64 {
	return bufPool.Get().([]float64)[:0]
}

// putBuf hands a buffer back (put-wrapper).
func putBuf(b []float64) {
	bufPool.Put(b[:0])
}

func sum(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}

// leakNoPut borrows and never returns the buffer: every call grows
// the heap instead of recycling.
func leakNoPut(n int) float64 {
	b := getBuf() // want: poolscope
	for i := 0; i < n; i++ {
		b = append(b, float64(i))
	}
	return sum(b)
}

// leakEarlyReturn puts only on the success path; the early return
// leaks the borrow, which `defer putBuf(b)` would have covered.
func leakEarlyReturn(n int) float64 {
	b := getBuf()
	if n == 0 {
		return 0 // want: poolscope
	}
	for i := 0; i < n; i++ {
		b = append(b, float64(i))
	}
	t := sum(b)
	putBuf(b)
	return t
}

// useAfterPut touches the buffer after handing it back: the next
// borrower may already own it.
func useAfterPut(n int) float64 {
	b := getBuf()
	b = append(b, float64(n))
	t := sum(b)
	putBuf(b)
	t += b[0] // want: poolscope
	return t
}

// PointMatrix is the fixture stand-in for mat.PointMatrix (matched by
// type name, like the slicealias Row checks).
type PointMatrix struct {
	data []float64
	d    int
}

// Row mirrors mat's capacity-trimmed view accessor.
func (m *PointMatrix) Row(i int) []float64 {
	return m.data[i*m.d : (i+1)*m.d : (i+1)*m.d]
}

// putRowView feeds a window of the shared backing array to the pool:
// the next Get would hand out live matrix memory as scratch.
func putRowView(m *PointMatrix) {
	bufPool.Put(m.Row(0)) // want: poolscope
}

// cleanDefer is the sanctioned idiom: borrow once, defer the return,
// leak on no path.
func cleanDefer(n int) float64 {
	b := getBuf()
	defer func() { putBuf(b) }()
	for i := 0; i < n; i++ {
		b = append(b, float64(i))
	}
	return sum(b)
}

// passThrough returns the borrowed value to its caller: a transitive
// get-wrapper, exempt because ownership moves up, not away.
func passThrough() []float64 {
	b := getBuf()
	return b
}

// handOff moves the buffer into a channel whose drain loop returns it
// — invisible to the lexical checker, so reviewed and allowlisted.
func handOff(ch chan []float64) {
	b := getBuf() //kregret:allow poolscope: ownership transfers through the channel; drain returns it
	ch <- b
}

func drain(ch chan []float64) {
	putBuf(<-ch)
}
