// Package errdropfix seeds errdrop violations for the analyzer
// fixture tests: discarded error returns must be flagged, handled and
// conventionally-exempt calls must stay clean.
package errdropfix

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func fail() error { return errors.New("boom") }

func two() (int, error) { return 0, errors.New("boom") }

func dropBare() {
	fail() // want: errdrop
}

func dropBlank() {
	_ = fail() // want: errdrop
}

func dropDefer() {
	defer fail() // want: errdrop
}

func dropTuple() {
	_, _ = two() // want: errdrop
}

// handled propagates the error: clean.
func handled() error {
	if err := fail(); err != nil {
		return err
	}
	return nil
}

// partiallyUsed keeps the value and drops nothing: clean (the `n, _`
// form signals a deliberate choice, unlike all-blank assignments).
func partiallyUsed() int {
	n, _ := two()
	return n
}

// exemptWrites are best-effort prints whose errors are conventionally
// ignored: clean.
func exemptWrites(sb *strings.Builder) {
	fmt.Println("ok")
	fmt.Fprintf(os.Stdout, "ok\n")
	fmt.Fprintln(os.Stderr, "ok")
	fmt.Fprintf(sb, "ok\n")
	sb.WriteString("x")
}

// fallbackChain mirrors the degradation path of the public query
// layer: per-stage errors are accumulated into a slice and joined,
// and the whole batch is deliberately discarded when a later stage
// succeeds (only a summary string survives). Every error flows into
// a real variable, so nothing here is a drop: clean.
func fallbackChain() (string, error) {
	var failures []error
	for i := 0; i < 3; i++ {
		err := fail()
		if err == nil {
			return fmt.Sprintf("recovered after %v", errors.Join(failures...)), nil
		}
		failures = append(failures, err)
	}
	return "", errors.Join(failures...)
}

// joinDropped still counts: errors.Join returns an error like any
// other call.
func joinDropped(a, b error) {
	errors.Join(a, b) // want: errdrop
}

// atomicSaveCleanup mirrors the persistence layer's write-to-temp +
// atomic-rename idiom: on any failure the temp file is removed and
// the removal's own error is joined into the one returned, so neither
// the primary failure nor a leaked temp file goes unreported. Every
// error flows through errors.Join into the return value: clean.
func atomicSaveCleanup(path string, payload string) error {
	tmp, err := os.CreateTemp("", "snapshot-*")
	if err != nil {
		return err
	}
	if _, err := tmp.WriteString(payload); err != nil {
		return errors.Join(err, tmp.Close(), os.Remove(tmp.Name()))
	}
	if err := tmp.Sync(); err != nil {
		return errors.Join(err, tmp.Close(), os.Remove(tmp.Name()))
	}
	if err := tmp.Close(); err != nil {
		return errors.Join(err, os.Remove(tmp.Name()))
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return errors.Join(err, os.Remove(tmp.Name()))
	}
	return nil
}
