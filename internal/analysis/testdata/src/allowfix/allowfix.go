// Package allowfix exercises the //kregret:allow directive grammar:
// comma-separated analyzer lists, trailing vs line-above placement,
// several directives on one line, and the malformed forms that must
// fail loudly under the "allow" pseudo-analyzer instead of silently
// suppressing nothing.
package allowfix

// dualEOL suppresses two analyzers with one trailing comma-list
// directive: the unguarded division trips naninf and the float
// comparison trips floatcmp, on the same line.
func dualEOL(a, b, c float64) bool {
	return a/b == c //kregret:allow floatcmp, naninf: fixture exercises the trailing comma-list form
}

// dualLineAbove covers the line-below application of the same
// comma-list directive.
func dualLineAbove(a, b, c float64) bool {
	//kregret:allow floatcmp, naninf: fixture exercises the line-above comma-list form
	return a/b == c
}

// twoDirectives stacks two independent block-form directives on one
// line, each naming and justifying its own analyzer.
func twoDirectives(a, b, c float64) bool {
	return a/b == c /*kregret:allow floatcmp: constants compared exactly by design*/ /*kregret:allow naninf: divisor validated by the caller*/
}

// unknownName lists an analyzer that does not exist: the typo must
// surface as a finding, not silently vouch for nothing.
func unknownName(a, b float64) bool {
	//kregret:allow floatcmp, nosuchcheck: typo'd names must fail loudly // want: allow
	return a == b
}

// missingJustification omits the reason after the colon (the block
// form keeps the comment free of want-marker colons); the directive
// still parses but the omission is a finding of its own.
func missingJustification(a, b float64) bool {
	/*kregret:allow floatcmp*/ // want: allow
	return a == b
}

// namelessDirective names no analyzer at all.
func namelessDirective() {
	//kregret:allow : nobody named here // want: allow
}
