// Package naninffix seeds naninf violations for the analyzer fixture
// tests: unguarded math calls and float divisions must be flagged,
// guarded ones must stay clean.
package naninffix

import "math"

// BadSqrt never checks its argument or result.
func BadSqrt(x float64) float64 {
	return math.Sqrt(x) // want: naninf
}

// BadLogChain feeds a risky result onward without a guard.
func BadLogChain(x float64) float64 {
	v := math.Log(x) // want: naninf
	return v + 1
}

// BadDiv divides by an unchecked denominator.
func BadDiv(a, b float64) float64 {
	return a / b // want: naninf
}

// GoodSqrt guards the argument with an ordered comparison.
func GoodSqrt(x float64) float64 {
	if x < 0 {
		return 0
	}
	return math.Sqrt(x)
}

// GoodLog guards the result instead of the argument.
func GoodLog(x float64) float64 {
	v := math.Log(x)
	if math.IsNaN(v) {
		return 0
	}
	return v
}

// GoodDiv checks the denominator before dividing.
func GoodDiv(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

// ConstArgs is exact at compile time: clean.
func ConstArgs() float64 {
	return math.Sqrt(2)
}

// IntDiv is integer division — truncation, never NaN: clean.
func IntDiv(a, b int) int {
	if b == 0 {
		return 0
	}
	return a / b
}
