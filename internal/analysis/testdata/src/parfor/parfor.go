// Package parfor seeds violations of the parallel.For body-capture
// discipline (checked by the slicealias analyzer): bodies run
// concurrently, so captured state may only be written through
// per-index slots addressed by chunk-derived indices. The stub below
// mirrors internal/parallel's call shape — fixture packages may
// import only the standard library, and the analyzer matches the
// `parallel.For` / `parallel.ArgMax` selector syntactically.
package parfor

import "context"

type parallelStub struct{}

func (parallelStub) For(_ context.Context, n, _, _ int, body func(start, end int) error) error {
	return body(0, n)
}

func (parallelStub) ArgMax(_ context.Context, n, _, _ int, value func(i int) (float64, bool)) (int, float64, error) {
	best, bestVal := -1, 0.0
	for i := 0; i < n; i++ {
		v, ok := value(i)
		if ok && (best < 0 || v > bestVal) {
			best, bestVal = i, v
		}
	}
	return best, bestVal, nil
}

var parallel parallelStub

// capturedScalar accumulates into a variable shared by every chunk:
// the classic lost-update race a per-slot fill avoids.
func capturedScalar(ctx context.Context, xs []float64) (float64, error) {
	sum := 0.0
	err := parallel.For(ctx, len(xs), 0, 1, func(start, end int) error {
		for i := start; i < end; i++ {
			sum += xs[i] // want: slicealias
		}
		return nil
	})
	return sum, err
}

// capturedAppend grows a shared slice from concurrent chunks: both
// the length word and the backing array race.
func capturedAppend(ctx context.Context, xs []float64) ([]float64, error) {
	var out []float64
	err := parallel.For(ctx, len(xs), 0, 1, func(start, end int) error {
		for i := start; i < end; i++ {
			if xs[i] > 0.5 {
				out = append(out, xs[i]) // want: slicealias
			}
		}
		return nil
	})
	return out, err
}

// chunkIndependentIndex writes slots addressed by a shared cursor
// instead of the loop index: distinct chunks collide on the cursor
// and on each other's slots.
func chunkIndependentIndex(ctx context.Context, xs []float64) ([]float64, error) {
	hits := make([]float64, len(xs))
	cursor := 0
	err := parallel.For(ctx, len(xs), 0, 1, func(start, end int) error {
		for i := start; i < end; i++ {
			hits[cursor] = xs[i] // want: slicealias
			cursor++             // want: slicealias
		}
		return nil
	})
	return hits, err
}

// capturedMap writes a shared map: concurrent map writes race even at
// distinct chunk-derived keys.
func capturedMap(ctx context.Context, xs []float64) (map[int]float64, error) {
	seen := make(map[int]float64, len(xs))
	err := parallel.For(ctx, len(xs), 0, 1, func(start, end int) error {
		for i := start; i < end; i++ {
			seen[i] = xs[i] // want: slicealias
		}
		return nil
	})
	return seen, err
}

// argMaxSideEffect mutates shared state from an ArgMax value
// function, which must be a pure read.
func argMaxSideEffect(ctx context.Context, xs []float64) (int, error) {
	visits := 0
	best, _, err := parallel.ArgMax(ctx, len(xs), 0, 1, func(i int) (float64, bool) {
		visits++ // want: slicealias
		return xs[i], true
	})
	_ = visits
	return best, err
}

// perSlotFill is the sanctioned idiom: every write lands in a slot
// addressed by the chunk loop variable, locals stay inside the body,
// and derived offsets (i - start) inherit the chunk taint.
func perSlotFill(ctx context.Context, xs []float64) ([]float64, error) {
	res := make([]float64, len(xs))
	scratch := make([]float64, len(xs))
	err := parallel.For(ctx, len(xs), 0, 1, func(start, end int) error {
		local := 0.0
		for i := start; i < end; i++ {
			j := i - start
			local = xs[i] + 1
			scratch[start+j] = local
			res[i] = scratch[i]
		}
		return nil
	})
	return res, err
}

// reduceAfterJoin reads the per-slot results sequentially once the
// fan-out has returned: writes outside the body are not chunk writes.
func reduceAfterJoin(ctx context.Context, xs []float64) (float64, error) {
	res := make([]float64, len(xs))
	err := parallel.For(ctx, len(xs), 0, 1, func(start, end int) error {
		for i := start; i < end; i++ {
			res[i] = xs[i]
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, v := range res {
		sum += v
	}
	return sum, nil
}

// allowedSingleWriter documents the escape hatch: a body that the
// caller guarantees runs single-chunk may suppress the finding with
// the standard directive.
func allowedSingleWriter(ctx context.Context, xs []float64) (float64, error) {
	total := 0.0
	err := parallel.For(ctx, len(xs), 1, len(xs)+1, func(start, end int) error {
		for i := start; i < end; i++ {
			//kregret:allow slicealias: single chunk by construction (grain > n)
			total += xs[i]
		}
		return nil
	})
	return total, err
}
