// Package floatcmpfix seeds floatcmp violations for the analyzer
// fixture tests. Lines carrying a trailing "want" annotation must be
// flagged; every other line must stay clean.
package floatcmpfix

func exactEqual(a, b float64) bool {
	return a == b // want: floatcmp
}

func notEqualZero(x float64) bool {
	return x != 0 // want: floatcmp
}

func float32Too(a float32, b float64) bool {
	return float64(a) == b // want: floatcmp
}

func switchOnFloat(x float64) int {
	switch x { // want: floatcmp
	case 0:
		return 0
	default:
		return 1
	}
}

// Integer comparison is fine.
func intCompare(a, b int) bool {
	return a == b
}

// Ordered float comparisons are deliberately not flagged: sort
// comparators must stay exact to remain transitive.
func orderedIsFine(a, b float64) bool {
	return a < b || a > b
}

// Both operands constant: folded at compile time, exact by definition.
func constFolded() bool {
	const a, b = 1.5, 2.5
	return a == b
}

// A reviewed directive must suppress the finding on the next line —
// if suppression regresses, this line produces an unexpected finding
// and the fixture test fails.
func allowedByDirective(x float64) bool {
	//kregret:allow floatcmp: fixture: directive suppression must keep working
	return x == 1
}
