package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked (non-test) package of the
// module under analysis.
type Package struct {
	Path  string // import path, e.g. repro/internal/geom
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// LoadModule discovers, parses and type-checks every non-test package
// under the module rooted at root. Build constraints are honoured
// with the supplied extra build tags (e.g. "kregretdebug"). Standard
// library imports are type-checked from GOROOT source, so the loader
// needs no pre-compiled export data and no tooling beyond the stdlib.
func LoadModule(root string, tags []string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}

	ctx := build.Default
	ctx.BuildTags = append(append([]string(nil), ctx.BuildTags...), tags...)

	type rawPkg struct {
		dir     string
		path    string
		files   []string
		imports []string
	}
	var raws []*rawPkg
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor" || name == "results") {
			return filepath.SkipDir
		}
		bp, err := ctx.ImportDir(path, 0)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				return nil
			}
			return fmt.Errorf("analysis: scanning %s: %w", path, err)
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		raws = append(raws, &rawPkg{dir: path, path: importPath, files: bp.GoFiles, imports: bp.Imports})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(raws, func(i, j int) bool { return raws[i].path < raws[j].path })

	// Topologically order the module-local import graph so every
	// dependency is checked before its importers.
	byPath := make(map[string]*rawPkg, len(raws))
	for _, r := range raws {
		byPath[r.path] = r
	}
	var order []*rawPkg
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(*rawPkg) error
	visit = func(r *rawPkg) error {
		switch state[r.path] {
		case 1:
			return fmt.Errorf("analysis: import cycle through %s", r.path)
		case 2:
			return nil
		}
		state[r.path] = 1
		for _, imp := range r.imports {
			if dep, ok := byPath[imp]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[r.path] = 2
		order = append(order, r)
		return nil
	}
	for _, r := range raws {
		if err := visit(r); err != nil {
			return nil, err
		}
	}

	fset := token.NewFileSet()
	imp := &moduleImporter{
		std: importer.ForCompiler(fset, "source", nil),
		mod: map[string]*types.Package{},
	}
	var pkgs []*Package
	for _, r := range order {
		var files []*ast.File
		for _, f := range r.files {
			parsed, err := parser.ParseFile(fset, filepath.Join(r.dir, f), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysis: %w", err)
			}
			files = append(files, parsed)
		}
		pkg, err := check(r.path, fset, files, imp)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", r.path, err)
		}
		pkg.Dir = r.dir
		imp.mod[r.path] = pkg.Types
		pkgs = append(pkgs, pkg)
	}
	// Report packages in path order regardless of dependency order.
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir parses and type-checks the .go files of a single directory
// as one package. Used by the analyzer fixture tests; fixture
// packages may import only the standard library.
func LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		parsed, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, parsed)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	return check(importPath, fset, files, importer.ForCompiler(fset, "source", nil))
}

func check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// moduleImporter resolves module-local import paths to the packages
// this loader has already checked and everything else (the standard
// library) through the GOROOT source importer.
type moduleImporter struct {
	std types.Importer
	mod map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.mod[path]; ok {
		return pkg, nil
	}
	return m.std.Import(path)
}

// ModulePath reads the module declaration from root/go.mod — the
// import-path prefix against which cmd/kregret-vet resolves its
// "./..." style package patterns.
func ModulePath(root string) (string, error) {
	return modulePath(root)
}

// modulePath reads the module declaration from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: module root: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module declaration in %s/go.mod", root)
}
