package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// WireGuard protects the gob wire formats behind Index.Save and
// StoredList.Save (the v1/v2 compat promise): every named struct a
// package gob-encodes or gob-decodes must be registered in a package
// manifest that pins its version and field layout on one line:
//
//	var wireManifest = map[string]string{
//	    "indexWire": "v2 Version int; Checksum uint64; N int; Dim int; Cand []int; Ext []int",
//	}
//
// Hand-rolled binary formats opt in through the appendWire
// convention: a method named appendWire on a package-local struct
// (e.g. internal/wal's Record) marks it as a wire type with the same
// manifest obligation — its layout is a durability promise exactly
// like a gob stream's.
//
// The analyzer cross-checks three things:
//
//   - every wire struct type (gob-encoded, gob-decoded, or carrying
//     an appendWire method) has a manifest entry;
//   - the entry's field list matches the struct's current fields
//     (name and type, in declaration order) — adding, removing or
//     retyping a field without touching the manifest is a finding,
//     and touching the manifest puts the version bump on the same
//     reviewed line;
//   - the entry's "v<N>" prefix equals the version constant the
//     package assigns to the struct's Version field, so the manifest
//     can never drift from what Save actually writes.
//
// Stale manifest entries (naming no encoded struct) are findings too:
// a renamed wire struct must retire its old line explicitly.
var WireGuard = &Analyzer{
	Name: "wireguard",
	Doc:  "wire structs (gob or appendWire) registered in wireManifest with matching fields and version pin",
	Run:  runWireGuard,
}

const wireManifestName = "wireManifest"

func runWireGuard(pass *Pass) {
	info := pass.Pkg.Info

	// Every named struct of this package that flows through a gob
	// Encoder.Encode / Decoder.Decode call, with the first site for
	// reporting.
	wire := map[*types.TypeName]token.Pos{}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			if !isGobCodecCall(info, call) {
				return true
			}
			tn := localStructName(pass, info.Types[call.Args[0]].Type)
			if tn == nil {
				return true
			}
			if _, seen := wire[tn]; !seen {
				wire[tn] = call.Args[0].Pos()
			}
			return true
		})
	}
	// Plus every local struct carrying an appendWire method — the
	// convention marking a hand-rolled binary wire format (the WAL
	// record frame) with the same compat promise as a gob stream.
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "appendWire" || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			tn := localStructName(pass, info.TypeOf(fd.Recv.List[0].Type))
			if tn == nil {
				continue
			}
			if _, seen := wire[tn]; !seen {
				wire[tn] = fd.Name.Pos()
			}
		}
	}
	if len(wire) == 0 {
		return
	}

	manifest, entryPos := findWireManifest(pass)
	if manifest == nil {
		for tn, pos := range wire {
			pass.Reportf(pos, "wire struct %s has no %s: declare one pinning its version and field layout", tn.Name(), wireManifestName)
		}
		return
	}

	seen := map[string]bool{}
	for tn, pos := range wire {
		seen[tn.Name()] = true
		entry, ok := manifest[tn.Name()]
		if !ok {
			pass.Reportf(pos, "wire struct %s is not registered in %s", tn.Name(), wireManifestName)
			continue
		}
		version, fields, ok := splitWireEntry(entry)
		if !ok {
			pass.Reportf(entryPos[tn.Name()], "%s entry for %s must read \"v<N> <field list>\", got %q", wireManifestName, tn.Name(), entry)
			continue
		}
		actual := wireFieldSig(pass, tn)
		if fields != actual {
			pass.Reportf(entryPos[tn.Name()], "wire struct %s changed: manifest records %q, the struct has %q — update the entry and bump its version", tn.Name(), fields, actual)
		}
		if pinned, ok := versionPin(pass, tn); ok && pinned != version {
			pass.Reportf(entryPos[tn.Name()], "%s records v%d for %s but its Version field is pinned to %d", wireManifestName, version, tn.Name(), pinned)
		}
	}
	for name, pos := range entryPos {
		if !seen[name] {
			pass.Reportf(pos, "%s entry %q matches no wire struct in this package", wireManifestName, name)
		}
	}
}

// isGobCodecCall matches (*gob.Encoder).Encode and
// (*gob.Decoder).Decode calls.
func isGobCodecCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Encode" && sel.Sel.Name != "Decode") {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/gob" {
		return false
	}
	return true
}

// localStructName resolves t (through pointers) to the type name of a
// struct declared in the package under analysis.
func localStructName(pass *Pass, t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, isStruct := n.Underlying().(*types.Struct); !isStruct {
		return nil
	}
	obj := n.Obj()
	if obj.Pkg() != pass.Pkg.Types {
		return nil
	}
	return obj
}

// findWireManifest locates the package-level wireManifest map literal
// and parses its string-to-string entries.
func findWireManifest(pass *Pass) (entries map[string]string, entryPos map[string]token.Pos) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != wireManifestName || i >= len(vs.Values) {
						continue
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					entries = map[string]string{}
					entryPos = map[string]token.Pos{}
					for _, elt := range cl.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						k, okK := stringLit(kv.Key)
						v, okV := stringLit(kv.Value)
						if okK && okV {
							entries[k] = v
							entryPos[k] = kv.Pos()
						}
					}
					return entries, entryPos
				}
			}
		}
	}
	return nil, nil
}

func stringLit(e ast.Expr) (string, bool) {
	bl, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || bl.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(bl.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// splitWireEntry parses "v2 Version int; Cand []int" into (2,
// "Version int; Cand []int").
func splitWireEntry(entry string) (version int, fields string, ok bool) {
	head, rest, found := strings.Cut(entry, " ")
	if !found || !strings.HasPrefix(head, "v") {
		return 0, "", false
	}
	n, err := strconv.Atoi(head[1:])
	if err != nil {
		return 0, "", false
	}
	return n, rest, true
}

// wireFieldSig renders the struct's exported wire layout as
// "Name Type; ..." in declaration order, with package-local type
// names unqualified (gob only transmits exported fields, but
// unexported fields would silently vanish from the stream, so they
// are listed too and the mismatch surfaces in review).
func wireFieldSig(pass *Pass, tn *types.TypeName) string {
	st := tn.Type().Underlying().(*types.Struct)
	qual := func(p *types.Package) string {
		if p == pass.Pkg.Types {
			return ""
		}
		return p.Name()
	}
	parts := make([]string, 0, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		parts = append(parts, fmt.Sprintf("%s %s", f.Name(), types.TypeString(f.Type(), qual)))
	}
	return strings.Join(parts, "; ")
}

// versionPin finds the integer constant the package assigns to the
// struct's Version field in a composite literal (Save's
// `indexWire{Version: indexVersion, ...}`) — the value the wire
// actually carries.
func versionPin(pass *Pass, tn *types.TypeName) (int, bool) {
	info := pass.Pkg.Info
	pinned, found := 0, false
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok || found {
				return !found
			}
			if localStructName(pass, info.Types[cl].Type) != tn {
				return true
			}
			for _, elt := range cl.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || key.Name != "Version" {
					continue
				}
				tv, ok := info.Types[kv.Value]
				if !ok || tv.Value == nil {
					continue
				}
				if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
					pinned, found = int(v), true
				}
			}
			return true
		})
	}
	return pinned, found
}
