package hull2d

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestHullSquare(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}, {0.2, 0.8}}
	h := Hull(pts)
	if len(h) != 4 {
		t.Fatalf("hull size %d, want 4: %v", len(h), h)
	}
	for _, p := range h {
		if p.X != 0 && p.X != 1 && p.Y != 0 && p.Y != 1 {
			t.Fatalf("interior point %v on hull", p)
		}
	}
}

func TestHullCollinear(t *testing.T) {
	pts := []Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	h := Hull(pts)
	if len(h) != 2 {
		t.Fatalf("collinear hull size %d, want 2: %v", len(h), h)
	}
}

func TestHullSmall(t *testing.T) {
	if h := Hull(nil); len(h) != 0 {
		t.Fatalf("empty hull: %v", h)
	}
	if h := Hull([]Point{{1, 2}}); len(h) != 1 {
		t.Fatalf("singleton hull: %v", h)
	}
	if h := Hull([]Point{{1, 2}, {1, 2}, {3, 4}}); len(h) != 2 {
		t.Fatalf("duplicate-handling hull: %v", h)
	}
}

func TestHullCCWOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := make([]Point, 200)
	for i := range pts {
		pts[i] = Point{rng.Float64(), rng.Float64()}
	}
	h := Hull(pts)
	if len(h) < 3 {
		t.Fatalf("hull too small: %d", len(h))
	}
	// All turns counter-clockwise.
	for i := range h {
		a, b, c := h[i], h[(i+1)%len(h)], h[(i+2)%len(h)]
		if cross(a, b, c) <= 0 {
			t.Fatalf("non-CCW turn at %d: %v %v %v", i, a, b, c)
		}
	}
	// All input points inside or on the hull.
	for _, p := range pts {
		for i := range h {
			a, b := h[i], h[(i+1)%len(h)]
			if cross(a, b, p) < -1e-12 {
				t.Fatalf("point %v outside hull edge %v-%v", p, a, b)
			}
		}
	}
}

func TestFromVectors(t *testing.T) {
	ps, err := FromVectors([]geom.Vector{{1, 2}, {3, 4}})
	if err != nil || len(ps) != 2 || ps[1] != (Point{3, 4}) {
		t.Fatalf("FromVectors = %v, %v", ps, err)
	}
	if _, err := FromVectors([]geom.Vector{{1, 2, 3}}); err == nil {
		t.Fatal("3-d vector accepted")
	}
}

func TestUpperRightChain(t *testing.T) {
	// The paper's style of configuration: three extreme points, one
	// interior, one on the "staircase" but inside the hull.
	pts := []Point{
		{1.0, 0.2}, // extreme (max X)
		{0.8, 0.8}, // extreme
		{0.2, 1.0}, // extreme (max Y)
		{0.5, 0.5}, // interior
		{0.9, 0.3}, // inside the chain
	}
	chain := UpperRightChain(pts)
	want := []Point{{0.2, 1.0}, {0.8, 0.8}, {1.0, 0.2}}
	if len(chain) != len(want) {
		t.Fatalf("chain = %v, want %v", chain, want)
	}
	for i := range want {
		if chain[i] != want[i] {
			t.Fatalf("chain[%d] = %v, want %v", i, chain[i], want[i])
		}
	}
}

func TestUpperRightChainDominatedPoint(t *testing.T) {
	// A dominated point can never be on the chain.
	pts := []Point{{0.9, 0.9}, {0.5, 0.5}}
	chain := UpperRightChain(pts)
	if len(chain) != 1 || chain[0] != (Point{0.9, 0.9}) {
		t.Fatalf("chain = %v", chain)
	}
}

func TestCriticalRatioInside(t *testing.T) {
	pts := []Point{{1, 0.1}, {0.1, 1}, {0.7, 0.7}}
	// A point well inside the hull has critical ratio > 1.
	cr, err := CriticalRatio(pts, Point{0.3, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if cr <= 1 {
		t.Fatalf("interior cr = %v, want > 1", cr)
	}
	// A point on the hull boundary has cr = 1.
	cr, err = CriticalRatio(pts, Point{0.7, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cr-1) > 1e-9 {
		t.Fatalf("boundary cr = %v, want 1", cr)
	}
}

func TestCriticalRatioOutside(t *testing.T) {
	pts := []Point{{1, 0.1}, {0.1, 1}}
	// (0.9, 0.9) is far outside the hull of these two plus orthotopes.
	cr, err := CriticalRatio(pts, Point{0.9, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if cr >= 1 {
		t.Fatalf("outside cr = %v, want < 1", cr)
	}
}

func TestCriticalRatioRejectsNonPositive(t *testing.T) {
	if _, err := CriticalRatio([]Point{{1, 1}}, Point{0, 1}); err == nil {
		t.Fatal("non-positive query accepted")
	}
}

// TestCriticalRatioAxisAlignedExact: for a single point p = (a, b),
// the hull is the rectangle [0,a]×[0,b]; the critical ratio of q is
// min(a/qx, b/qy).
func TestCriticalRatioRectangleClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		a, b := 0.2+0.8*rng.Float64(), 0.2+0.8*rng.Float64()
		qx, qy := 0.05+rng.Float64(), 0.05+rng.Float64()
		cr, err := CriticalRatio([]Point{{a, b}}, Point{qx, qy})
		if err != nil {
			t.Fatal(err)
		}
		want := math.Min(a/qx, b/qy)
		if math.Abs(cr-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: cr = %v, want %v", trial, cr, want)
		}
	}
}
