// Package hull2d implements exact two-dimensional convex hull
// construction (Andrew's monotone chain) plus the specialized
// orthotope-hull operations the k-regret query needs when d = 2.
//
// In two dimensions everything the paper does with the general
// machinery has a closed form: the faces of Conv(S) not through the
// origin form a staircase-free upper-right chain, critical ratios are
// segment/ray intersections, and the set D_conv is the chain's vertex
// set. The package serves both as a fast path and as an independent
// oracle used in tests to validate the d-dimensional dual
// (package dd) on planar inputs.
package hull2d

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// ErrNeed2D is returned when an input point is not two-dimensional.
var ErrNeed2D = errors.New("hull2d: points must be 2-dimensional")

// Point is a 2-D point.
type Point struct{ X, Y float64 }

// cross returns the z-component of (b−a)×(c−a); positive when a→b→c
// turns counter-clockwise.
func cross(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// Hull returns the convex hull of pts in counter-clockwise order
// starting from the lexicographically smallest point. Collinear
// points on the hull boundary are excluded. Duplicate input points
// are tolerated. For fewer than 3 distinct points it returns the
// distinct points sorted lexicographically.
func Hull(pts []Point) []Point {
	ps := append([]Point(nil), pts...)
	sort.Slice(ps, func(i, j int) bool {
		// Exact ordered comparisons keep the order transitive.
		if ps[i].X < ps[j].X {
			return true
		}
		if ps[i].X > ps[j].X {
			return false
		}
		return ps[i].Y < ps[j].Y
	})
	// Dedupe.
	uniq := ps[:0]
	for i, p := range ps {
		if i == 0 || p != ps[i-1] {
			uniq = append(uniq, p)
		}
	}
	ps = uniq
	n := len(ps)
	if n < 3 {
		return append([]Point(nil), ps...)
	}
	hull := make([]Point, 0, 2*n)
	// Lower chain.
	for _, p := range ps {
		for len(hull) >= 2 && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper chain.
	lower := len(hull) + 1
	for i := n - 2; i >= 0; i-- {
		p := ps[i]
		for len(hull) >= lower && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull[:len(hull)-1]
}

// FromVectors converts 2-D geom.Vectors to Points.
func FromVectors(vs []geom.Vector) ([]Point, error) {
	out := make([]Point, len(vs))
	for i, v := range vs {
		if len(v) != 2 {
			return nil, fmt.Errorf("%w: point %d has dimension %d", ErrNeed2D, i, len(v))
		}
		out[i] = Point{v[0], v[1]}
	}
	return out, nil
}

// UpperRightChain returns the faces of Conv(S) (in the paper's sense:
// the convex hull of the orthotope closure of S) that do not pass
// through the origin, as the chain of extreme points ordered by
// decreasing Y / increasing X. The chain starts at (0, maxY) and ends
// at (maxX, 0) conceptually; the returned slice contains only the
// data points on it (the paper's D_conv when S = D).
//
// All coordinates must be positive.
func UpperRightChain(pts []Point) []Point {
	if len(pts) == 0 {
		return nil
	}
	var maxX, maxY float64
	for _, p := range pts {
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	// The orthotope closure adds the two axis projections and the
	// origin; the chain we need is the hull part strictly between
	// (0, maxY) and (maxX, 0).
	aug := append(append([]Point(nil), pts...), Point{0, 0}, Point{maxX, 0}, Point{0, maxY})
	h := Hull(aug)
	var chain []Point
	for _, p := range h {
		if p.X > 0 && p.Y > 0 {
			chain = append(chain, p)
		}
	}
	// Order by increasing X (decreasing Y) for deterministic output.
	sort.Slice(chain, func(i, j int) bool { return chain[i].X < chain[j].X })
	return chain
}

// CriticalRatio returns cr(q, S) for d = 2: the ratio ‖q′‖/‖q‖ where
// q′ is the intersection of ray 0→q with the boundary of the
// orthotope hull of chainPts (which must include the chain extremes).
// It returns +Inf if the ray never leaves the hull (cannot happen for
// positive q against a bounded hull) and an error for non-positive q.
func CriticalRatio(pts []Point, q Point) (float64, error) {
	if q.X <= 0 || q.Y <= 0 {
		return 0, fmt.Errorf("hull2d: query point (%g, %g) must be strictly positive", q.X, q.Y)
	}
	chain := UpperRightChain(pts)
	var maxX, maxY float64
	for _, p := range pts {
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	// Build the full boundary as segments: (0,maxY) → chain… → (maxX,0).
	bound := make([]Point, 0, len(chain)+2)
	bound = append(bound, Point{0, maxY})
	bound = append(bound, chain...)
	bound = append(bound, Point{maxX, 0})
	best := math.Inf(1)
	for i := 0; i+1 < len(bound); i++ {
		if t, ok := raySegment(q, bound[i], bound[i+1]); ok && t < best {
			best = t
		}
	}
	return best, nil
}

// raySegment returns t such that t·q lies on segment a–b, if the ray
// 0→q crosses it with t ≥ 0.
func raySegment(q, a, b Point) (float64, bool) {
	// Solve t·q = a + s(b−a), 0 ≤ s ≤ 1.
	dx, dy := b.X-a.X, b.Y-a.Y
	den := q.X*dy - q.Y*dx
	if math.Abs(den) < 1e-15 {
		return 0, false
	}
	t := (a.X*dy - a.Y*dx) / den
	if t < 0 {
		return 0, false
	}
	// Parameter along the segment, computed against the larger delta
	// (den ≠ 0 guarantees the segment is not a point).
	var s float64
	if math.Abs(dx) >= math.Abs(dy) {
		s = (t*q.X - a.X) / dx
	} else {
		s = (t*q.Y - a.Y) / dy
	}
	if s < -1e-9 || s > 1+1e-9 {
		return 0, false
	}
	return t, true
}
