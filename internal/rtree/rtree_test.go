package rtree

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
)

func randomPts(rng *rand.Rand, n, d int) []geom.Vector {
	pts := make([]geom.Vector, n)
	for i := range pts {
		p := make(geom.Vector, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, 0); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := Build([]geom.Vector{{1, 2}, {1}}, 0); err == nil {
		t.Fatal("ragged accepted")
	}
	if _, err := Build([]geom.Vector{{math.NaN()}}, 0); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := Build([]geom.Vector{{1}}, 1); err == nil {
		t.Fatal("fanout 1 accepted")
	}
}

// checkStructure verifies MBR containment, fanout bounds and point
// coverage.
func checkStructure(t *testing.T, tree *Tree) {
	t.Helper()
	seen := map[int]bool{}
	var visit func(n *Node)
	visit = func(n *Node) {
		if n.IsLeaf() {
			if len(n.Points) == 0 {
				t.Fatal("empty leaf")
			}
			for _, i := range n.Points {
				if seen[i] {
					t.Fatalf("point %d in two leaves", i)
				}
				seen[i] = true
				if !n.Box.Contains(tree.Point(i)) {
					t.Fatalf("leaf MBR misses point %d", i)
				}
			}
			return
		}
		if len(n.Children) == 0 {
			t.Fatal("internal node without children")
		}
		for _, c := range n.Children {
			if !n.Box.ContainsMBR(c.Box) {
				t.Fatal("child MBR escapes parent")
			}
			visit(c)
		}
	}
	visit(tree.Root)
	if len(seen) != tree.Len() {
		t.Fatalf("%d of %d points covered", len(seen), tree.Len())
	}
}

func TestBuildStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(3000)
		d := 1 + rng.Intn(5)
		fanout := 2 + rng.Intn(40)
		tree, err := Build(randomPts(rng, n, d), fanout)
		if err != nil {
			t.Fatal(err)
		}
		checkStructure(t, tree)
		if tree.Height() < 1 || tree.NumNodes() < 1 {
			t.Fatalf("height %d nodes %d", tree.Height(), tree.NumNodes())
		}
	}
}

func TestRangeQueryMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := randomPts(rng, 2000, 3)
	tree, err := Build(pts, 16)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		box := MBR{Min: make(geom.Vector, 3), Max: make(geom.Vector, 3)}
		for j := 0; j < 3; j++ {
			a, b := rng.Float64(), rng.Float64()
			box.Min[j], box.Max[j] = math.Min(a, b), math.Max(a, b)
		}
		got, err := tree.RangeQuery(box)
		if err != nil {
			t.Fatal(err)
		}
		var want []int
		for i, p := range pts {
			if box.Contains(p) {
				want = append(want, i)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: %d vs %d hits", trial, len(got), len(want))
		}
	}
	if _, err := tree.RangeQuery(MBR{Min: geom.Vector{0}, Max: geom.Vector{1}}); err == nil {
		t.Fatal("wrong-dimension query accepted")
	}
}
