// Package rtree implements an in-memory R-tree over d-dimensional
// points, bulk-loaded with the Sort-Tile-Recursive (STR) method.
//
// It exists as the index substrate for the branch-and-bound skyline
// algorithm (BBS) of Papadias, Tao, Fu and Seeger — the progressive
// skyline computation the paper cites as its skyline reference [10].
// BBS needs exactly what an R-tree provides: a hierarchy of minimum
// bounding rectangles that can be expanded best-first and pruned
// wholesale by dominance tests against the rectangle corners.
package rtree

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/geom"
)

// ErrBadInput flags invalid construction input.
var ErrBadInput = errors.New("rtree: bad input")

// DefaultFanout is the node capacity used by Build.
const DefaultFanout = 32

// MBR is an axis-aligned minimum bounding rectangle.
type MBR struct {
	Min, Max geom.Vector
}

// Contains reports whether p lies inside the rectangle (inclusive).
func (m MBR) Contains(p geom.Vector) bool {
	for j := range p {
		if p[j] < m.Min[j] || p[j] > m.Max[j] {
			return false
		}
	}
	return true
}

// ContainsMBR reports whether other is inside m (inclusive).
func (m MBR) ContainsMBR(other MBR) bool {
	for j := range m.Min {
		if other.Min[j] < m.Min[j] || other.Max[j] > m.Max[j] {
			return false
		}
	}
	return true
}

// Node is one R-tree node: either a leaf holding point indices or an
// internal node holding children.
type Node struct {
	Box      MBR
	Children []*Node
	Points   []int // leaf entries: indices into the tree's point slice
}

// IsLeaf reports whether the node holds points directly.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Tree is an immutable bulk-loaded R-tree.
type Tree struct {
	Root   *Node
	pts    []geom.Vector
	fanout int
	height int
	nodes  int
}

// Build bulk-loads an R-tree over pts with the STR method and the
// given fanout (≤ 0 uses DefaultFanout). The point slice is captured,
// not copied — callers must not mutate it afterwards.
func Build(pts []geom.Vector, fanout int) (*Tree, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("%w: no points", ErrBadInput)
	}
	d := len(pts[0])
	if d == 0 {
		return nil, fmt.Errorf("%w: zero-dimensional points", ErrBadInput)
	}
	for i, p := range pts {
		if len(p) != d {
			return nil, fmt.Errorf("%w: point %d has dimension %d, want %d", ErrBadInput, i, len(p), d)
		}
		if !p.IsFinite() {
			return nil, fmt.Errorf("%w: point %d has non-finite coordinates", ErrBadInput, i)
		}
	}
	if fanout <= 0 {
		fanout = DefaultFanout
	}
	if fanout < 2 {
		return nil, fmt.Errorf("%w: fanout %d too small", ErrBadInput, fanout)
	}
	t := &Tree{pts: pts, fanout: fanout}
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	leaves := t.strPack(idx, 0)
	level := leaves
	t.height = 1
	for len(level) > 1 {
		level = t.packNodes(level)
		t.height++
	}
	t.Root = level[0]
	return t, nil
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.pts) }

// Dim returns the dimensionality.
func (t *Tree) Dim() int { return len(t.pts[0]) }

// Height returns the number of levels (1 = a single leaf).
func (t *Tree) Height() int { return t.height }

// NumNodes returns the total node count.
func (t *Tree) NumNodes() int { return t.nodes }

// Point returns the coordinates of indexed point i.
func (t *Tree) Point(i int) geom.Vector { return t.pts[i] }

// strPack recursively tiles the index set by dimension `dim` into
// leaf nodes of at most fanout points.
func (t *Tree) strPack(idx []int, dim int) []*Node {
	d := t.Dim()
	if len(idx) <= t.fanout {
		return []*Node{t.newLeaf(idx)}
	}
	// STR: with `leaves` leaf nodes to produce and d−dim untiled
	// dimensions left, slice ceil(leaves^(1/(d−dim))) slabs along the
	// current dimension and recurse into each slab on the next one.
	leaves := (len(idx) + t.fanout - 1) / t.fanout
	slabs := intPow(leaves, d-dim)
	sort.Slice(idx, func(a, b int) bool {
		// Exact ordered comparisons keep the order transitive.
		pa, pb := t.pts[idx[a]][dim], t.pts[idx[b]][dim]
		if pa < pb {
			return true
		}
		if pa > pb {
			return false
		}
		return idx[a] < idx[b]
	})
	per := (len(idx) + slabs - 1) / slabs
	var out []*Node
	nextDim := (dim + 1) % d
	for start := 0; start < len(idx); start += per {
		end := min(start+per, len(idx))
		if d == 1 || len(idx[start:end]) <= t.fanout {
			out = append(out, t.newLeaf(idx[start:end]))
		} else {
			out = append(out, t.strPack(idx[start:end], nextDim)...)
		}
	}
	return out
}

// intPow returns ceil(n^(1/k)) for k ≥ 1 (slab count heuristic).
func intPow(n, k int) int {
	if k <= 1 {
		return n
	}
	s := 1
	for pow(s, k) < n {
		s++
	}
	return s
}

func pow(base, exp int) int {
	r := 1
	for i := 0; i < exp; i++ {
		r *= base
		if r < 0 { // overflow guard
			return 1 << 62
		}
	}
	return r
}

// newLeaf builds a leaf node over the given point indices.
func (t *Tree) newLeaf(idx []int) *Node {
	t.nodes++
	n := &Node{Points: append([]int(nil), idx...)}
	n.Box = t.mbrOfPoints(n.Points)
	return n
}

// packNodes groups a level of nodes into parents of at most fanout
// children, ordered by the first coordinate of their box centers.
func (t *Tree) packNodes(level []*Node) []*Node {
	sort.Slice(level, func(a, b int) bool {
		return level[a].Box.Min[0]+level[a].Box.Max[0] < level[b].Box.Min[0]+level[b].Box.Max[0]
	})
	var out []*Node
	for start := 0; start < len(level); start += t.fanout {
		end := min(start+t.fanout, len(level))
		t.nodes++
		parent := &Node{Children: level[start:end:end]}
		parent.Box = mbrOfNodes(parent.Children)
		out = append(out, parent)
	}
	return out
}

func (t *Tree) mbrOfPoints(idx []int) MBR {
	d := t.Dim()
	m := MBR{Min: make(geom.Vector, d), Max: make(geom.Vector, d)}
	copy(m.Min, t.pts[idx[0]])
	copy(m.Max, t.pts[idx[0]])
	for _, i := range idx[1:] {
		for j, x := range t.pts[i] {
			if x < m.Min[j] {
				m.Min[j] = x
			}
			if x > m.Max[j] {
				m.Max[j] = x
			}
		}
	}
	return m
}

func mbrOfNodes(ns []*Node) MBR {
	d := len(ns[0].Box.Min)
	m := MBR{Min: ns[0].Box.Min.Clone(), Max: ns[0].Box.Max.Clone()}
	for _, n := range ns[1:] {
		for j := 0; j < d; j++ {
			if n.Box.Min[j] < m.Min[j] {
				m.Min[j] = n.Box.Min[j]
			}
			if n.Box.Max[j] > m.Max[j] {
				m.Max[j] = n.Box.Max[j]
			}
		}
	}
	return m
}

// RangeQuery returns the indices of all points inside the query box,
// sorted ascending — the classic R-tree workload, provided for
// completeness and used by tests as a structural check.
func (t *Tree) RangeQuery(box MBR) ([]int, error) {
	if len(box.Min) != t.Dim() || len(box.Max) != t.Dim() {
		return nil, fmt.Errorf("%w: query box dimension", ErrBadInput)
	}
	var out []int
	var visit func(n *Node)
	visit = func(n *Node) {
		if !boxesIntersect(n.Box, box) {
			return
		}
		if n.IsLeaf() {
			for _, i := range n.Points {
				if box.Contains(t.pts[i]) {
					out = append(out, i)
				}
			}
			return
		}
		for _, c := range n.Children {
			visit(c)
		}
	}
	visit(t.Root)
	sort.Ints(out)
	return out, nil
}

func boxesIntersect(a, b MBR) bool {
	for j := range a.Min {
		if a.Max[j] < b.Min[j] || b.Max[j] < a.Min[j] {
			return false
		}
	}
	return true
}
