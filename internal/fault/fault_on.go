//go:build kregretfault

package fault

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"time"
)

// Enabled reports whether fault injection is compiled in.
const Enabled = true

// ErrInjected is the error produced by an armed Err site. Pipeline
// code never returns it verbatim — each site maps it onto the failure
// it simulates (lp.ErrIterationCap, dd.ErrEmpty, …).
var ErrInjected = errors.New("fault: injected failure")

// armed tracks, per site, how many future executions misbehave
// (negative = unlimited), how many are skipped before the first
// misbehaving one (ArmAfter), and, for Sleep sites, how long each
// stall lasts. A probabilistically armed site (ArmRand) instead
// carries its own seeded rng and per-execution trigger probability.
// Guarded by mu: tests arm sites from the test goroutine while
// solvers fire them from query goroutines.
type armed struct {
	shots   int
	skip    int
	observe bool
	delay   time.Duration
	prob    float64
	rng     *rand.Rand // non-nil only for ArmRand sites
}

var (
	mu    sync.Mutex
	sites = map[string]*armed{}
	fired = map[string]int{}
)

// Arm makes the next `shots` executions of the site misbehave
// (shots < 0 arms it until Reset).
func Arm(site string, shots int) {
	mu.Lock()
	defer mu.Unlock()
	sites[site] = &armed{shots: shots}
}

// ArmSleep makes the next `shots` executions of the site stall for d
// each; once the shot budget is spent the site runs at full speed
// again (shots < 0 stalls every execution until Reset).
func ArmSleep(site string, shots int, d time.Duration) {
	mu.Lock()
	defer mu.Unlock()
	sites[site] = &armed{shots: shots, delay: d}
}

// ArmRand arms the site probabilistically: every execution misbehaves
// independently with probability p, drawn from a private rng seeded
// with seed, so a randomized chaos schedule replays bit-identically
// from its logged seed. p <= 0 never fires, p >= 1 always fires. The
// draw happens under the package mutex, so concurrent executions of
// the site consume the rng stream in admission order and the mode is
// safe under -race.
func ArmRand(site string, seed int64, p float64) {
	mu.Lock()
	defer mu.Unlock()
	sites[site] = &armed{shots: -1, prob: p, rng: rand.New(rand.NewSource(seed))}
}

// ArmRandSleep is ArmRand for stall sites: each probabilistic trigger
// stalls the execution for d instead of misbehaving.
func ArmRandSleep(site string, seed int64, p float64, d time.Duration) {
	mu.Lock()
	defer mu.Unlock()
	sites[site] = &armed{shots: -1, prob: p, rng: rand.New(rand.NewSource(seed)), delay: d}
}

// ArmAfter lets the first `skip` executions of the site through
// untouched, then makes the next `shots` misbehave (shots < 0 =
// unlimited after the skip window). Combined with Observe it lets a
// test sweep an injection across every execution of a site: observe a
// clean run to count T, then ArmAfter(site, i, 1) for i in [0, T).
func ArmAfter(site string, skip, shots int) {
	mu.Lock()
	defer mu.Unlock()
	sites[site] = &armed{shots: shots, skip: skip}
}

// Observe counts executions of the site in Fired without making any
// of them misbehave — the reconnaissance half of the ArmAfter sweep.
func Observe(site string) {
	mu.Lock()
	defer mu.Unlock()
	sites[site] = &armed{observe: true}
}

// Reset disarms every site and clears the fired counters.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	sites = map[string]*armed{}
	fired = map[string]int{}
}

// Fired reports how many times the site actually triggered since the
// last Reset — tests use it to prove an injection point is wired.
func Fired(site string) int {
	mu.Lock()
	defer mu.Unlock()
	return fired[site]
}

// fire consumes one shot of the site if armed, returning whether the
// site misbehaves now and the configured stall duration.
func fire(site string) (bool, time.Duration) {
	mu.Lock()
	defer mu.Unlock()
	a := sites[site]
	if a == nil {
		return false, 0
	}
	if a.observe {
		fired[site]++
		return false, 0
	}
	if a.skip > 0 {
		a.skip--
		return false, 0
	}
	if a.rng != nil {
		if a.rng.Float64() >= a.prob {
			return false, 0
		}
		fired[site]++
		return true, a.delay
	}
	if a.shots == 0 {
		return false, 0
	}
	if a.shots > 0 {
		a.shots--
	}
	fired[site]++
	return true, a.delay
}

// Active reports (and consumes) one armed shot of the site.
func Active(site string) bool {
	on, _ := fire(site)
	return on
}

// NaN returns NaN when the site is armed, v otherwise.
func NaN(site string, v float64) float64 {
	if on, _ := fire(site); on {
		return math.NaN()
	}
	return v
}

// Err returns ErrInjected when the site is armed, nil otherwise.
func Err(site string) error {
	if on, _ := fire(site); on {
		return ErrInjected
	}
	return nil
}

// Sleep stalls for the armed duration when the site is armed.
func Sleep(site string) {
	if on, d := fire(site); on && d > 0 {
		time.Sleep(d)
	}
}
