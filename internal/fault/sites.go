// Package fault is the fault-injection layer of the query pipeline,
// compiled in only under the `kregretfault` build tag:
//
//	go test -tags kregretfault ./...
//
// Without the tag every hook is an empty stub and Enabled is a false
// constant, so guarded call sites such as
//
//	if fault.Enabled {
//		val = fault.NaN(fault.SiteGeoGreedySupport, val)
//	}
//
// compile to nothing in release builds. With the tag, tests arm a
// named site (Arm, ArmSleep) and the next executions of that site
// misbehave in a controlled way: a support value becomes NaN, the
// simplex solver reports its iteration cap, the double-description
// step reports degeneracy, or a pivot batch stalls. This is how the
// degradation chain (GeoGreedy → perturbed retry → Greedy → Cube) and
// every cancellation point are proven to fire without hunting for a
// naturally pathological input.
//
// The site names below are the complete set of injection points; they
// are referenced from internal/core, internal/lp and internal/dd.
package fault

// Injection site names. Each constant is used at exactly one place in
// the pipeline; tests reference sites only through these constants so
// renames stay mechanical.
const (
	// SiteGeoGreedySupport corrupts the dual support value GeoGreedy
	// caches for a candidate, producing a NaN critical ratio.
	SiteGeoGreedySupport = "core.geogreedy.support"

	// SiteDDAddHalfspace makes the next dd.Polytope.AddHalfspace
	// report ErrEmpty, i.e. a numerically empty polytope — the dd
	// degeneracy case of the fallback chain.
	SiteDDAddHalfspace = "dd.add-halfspace"

	// SiteLPIterationCap makes the next lp.Solve report
	// ErrIterationCap as if the simplex had cycled past its pivot
	// budget.
	SiteLPIterationCap = "lp.iteration-cap"

	// SiteLPSlowPivot stalls every simplex pivot batch for the armed
	// duration, turning the LP solver into a slow loop so cancellation
	// checks can be observed mid-solve.
	SiteLPSlowPivot = "lp.slow-pivot"

	// SiteGeoGreedyPanic panics inside the geometry core on the next
	// GeoGreedy iteration, exercising the public panic boundary.
	SiteGeoGreedyPanic = "core.geogreedy.panic"

	// SiteServeQueueFull makes the next serve.Pool admission behave as
	// if the wait queue were full, forcing the ErrOverloaded path
	// without actually saturating the pool.
	SiteServeQueueFull = "serve.queue-full"

	// SiteServeBreakerTrip forces the next serve.Breaker.Allow to trip
	// the breaker open, so the open → half-open → closed cycle can be
	// driven without a storm of real numerical failures.
	SiteServeBreakerTrip = "serve.breaker-trip"

	// SitePersistTornWrite truncates the snapshot file after
	// Index.SaveFile renames it into place, simulating a crash that
	// tore the write — the corruption LoadFile must detect as
	// ErrCorruptIndex.
	SitePersistTornWrite = "persist.torn-write"

	// SiteParallelWorker panics inside a parallel.For worker goroutine
	// before it runs its claimed chunk, proving the fan-out recaptures
	// worker panics and re-raises them on the caller's goroutine where
	// the public panic boundary converts them to *NumericalError.
	SiteParallelWorker = "parallel.worker"

	// SiteWALAppend crashes the next wal.Log.Append mid-record: only a
	// prefix of the frame reaches the file (the torn tail recovery must
	// truncate away) and the log is left unusable, exactly as if the
	// process died inside the write syscall.
	SiteWALAppend = "wal.append"

	// SiteWALSync makes the next wal.Log sync report failure; the log
	// undoes the unsynced suffix so a mutation whose append was never
	// acknowledged leaves no trace on disk.
	SiteWALSync = "wal.sync"

	// SiteWALRotate makes the next wal.Log.Reset (the truncation half
	// of compaction) fail after the compacted snapshot was already
	// published — the crash window where stale records must be skipped
	// by their sequence numbers on replay.
	SiteWALRotate = "wal.rotate"

	// SitePersistSync makes the next snapshot temp-file fsync in
	// SaveFile report failure, proving a failed sync removes the temp
	// file and leaves the previous snapshot loadable.
	SitePersistSync = "persist.sync"

	// SiteCoresetBuild makes the next ε-kernel coreset construction
	// report numerical degeneracy, proving callers fall back to the
	// full candidate set instead of serving from a broken core.
	SiteCoresetBuild = "coreset.build"

	// SiteShardMerge fails the next sharded partition–merge fold after
	// the per-shard cores were computed, proving the engine falls back
	// to the unsharded serving path and records the fallback.
	SiteShardMerge = "shard.merge"
)
