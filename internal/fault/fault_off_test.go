//go:build !kregretfault

package fault

import "testing"

// Without the kregretfault tag every hook must be inert: hot loops
// call them unconditionally behind `if fault.Enabled`, and the stubs
// are also what production binaries link.
func TestStubsAreInert(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false without the kregretfault tag")
	}
	if Active(SiteGeoGreedySupport) {
		t.Fatal("stub Active fired")
	}
	if v := NaN(SiteGeoGreedySupport, 0.25); v != 0.25 {
		t.Fatalf("stub NaN altered value: %v", v)
	}
	if err := Err(SiteLPIterationCap); err != nil {
		t.Fatalf("stub Err returned %v", err)
	}
	Sleep(SiteLPSlowPivot) // must not stall or panic
}
