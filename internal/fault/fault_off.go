//go:build !kregretfault

// Release-build stubs: every hook is an empty function and Enabled is
// a false constant, so `if fault.Enabled { … }` blocks are eliminated
// entirely by the compiler. See fault_on.go (built under the
// kregretfault tag) for the real implementations and sites.go for the
// package documentation.
package fault

// Enabled reports whether fault injection is compiled in.
const Enabled = false

// Active is a no-op without the kregretfault build tag.
func Active(string) bool { return false }

// NaN is a no-op without the kregretfault build tag.
func NaN(_ string, v float64) float64 { return v }

// Err is a no-op without the kregretfault build tag.
func Err(string) error { return nil }

// Sleep is a no-op without the kregretfault build tag.
func Sleep(string) {}
