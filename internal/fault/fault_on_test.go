//go:build kregretfault

package fault

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestArmConsumesShots(t *testing.T) {
	defer Reset()
	Arm(SiteGeoGreedySupport, 2)
	if !math.IsNaN(NaN(SiteGeoGreedySupport, 1.5)) {
		t.Fatal("first shot did not fire")
	}
	if !math.IsNaN(NaN(SiteGeoGreedySupport, 1.5)) {
		t.Fatal("second shot did not fire")
	}
	if v := NaN(SiteGeoGreedySupport, 1.5); v != 1.5 {
		t.Fatalf("disarmed site altered value: %v", v)
	}
	if got := Fired(SiteGeoGreedySupport); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
}

func TestUnlimitedShotsAndReset(t *testing.T) {
	defer Reset()
	Arm(SiteLPIterationCap, -1)
	for i := 0; i < 10; i++ {
		if Err(SiteLPIterationCap) == nil {
			t.Fatalf("unlimited site disarmed after %d shots", i)
		}
	}
	Reset()
	if Err(SiteLPIterationCap) != nil {
		t.Fatal("Reset did not disarm site")
	}
	if Fired(SiteLPIterationCap) != 0 {
		t.Fatal("Reset did not clear fired counter")
	}
}

func TestUnarmedSitesAreInert(t *testing.T) {
	defer Reset()
	if Active(SiteDDAddHalfspace) {
		t.Fatal("unarmed Active fired")
	}
	if Err(SiteDDAddHalfspace) != nil {
		t.Fatal("unarmed Err fired")
	}
	Sleep(SiteLPSlowPivot) // must not stall
}

func TestArmSleepStalls(t *testing.T) {
	defer Reset()
	ArmSleep(SiteLPSlowPivot, 1, 20*time.Millisecond)
	start := time.Now()
	Sleep(SiteLPSlowPivot)
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("armed Sleep returned after %v", d)
	}
	start = time.Now()
	Sleep(SiteLPSlowPivot)
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("spent Sleep still stalls: %v", d)
	}
}

// TestArmSleepHonorsShotBudget pins the documented contract: only the
// next `shots` executions stall; the (shots+1)-th runs at full speed.
func TestArmSleepHonorsShotBudget(t *testing.T) {
	defer Reset()
	const shots = 2
	ArmSleep(SiteLPSlowPivot, shots, 20*time.Millisecond)
	for i := 0; i < shots; i++ {
		start := time.Now()
		Sleep(SiteLPSlowPivot)
		if d := time.Since(start); d < 15*time.Millisecond {
			t.Fatalf("armed execution %d returned after %v", i+1, d)
		}
	}
	start := time.Now()
	Sleep(SiteLPSlowPivot)
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("(shots+1)-th execution still stalls: %v", d)
	}
	if got := Fired(SiteLPSlowPivot); got != shots {
		t.Fatalf("Fired = %d, want %d", got, shots)
	}
}

// TestArmRandDeterministicPerSeed proves the probabilistic arming
// mode replays: the same (seed, p) produces the same trigger pattern,
// a different seed a different one, and the p extremes degenerate to
// never/always.
func TestArmRandDeterministicPerSeed(t *testing.T) {
	defer Reset()
	draw := func(seed int64, p float64, n int) []bool {
		Reset()
		ArmRand(SiteDDAddHalfspace, seed, p)
		out := make([]bool, n)
		for i := range out {
			out[i] = Active(SiteDDAddHalfspace)
		}
		return out
	}
	same := func(a, b []bool) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	a, b := draw(42, 0.3, 200), draw(42, 0.3, 200)
	if !same(a, b) {
		t.Fatal("same seed produced different trigger patterns")
	}
	if c := draw(43, 0.3, 200); same(a, c) {
		t.Fatal("different seeds produced identical trigger patterns")
	}
	for _, on := range draw(1, 0, 100) {
		if on {
			t.Fatal("p=0 site fired")
		}
	}
	for _, on := range draw(1, 1, 100) {
		if !on {
			t.Fatal("p=1 site skipped an execution")
		}
	}
	if got := Fired(SiteDDAddHalfspace); got != 100 {
		t.Fatalf("Fired = %d, want 100 after the p=1 sweep", got)
	}
}

// TestArmRandConcurrent hammers a probabilistic site from many
// goroutines under -race: the rng draw is serialized by the package
// mutex and the fired counter stays consistent with what the callers
// observed.
func TestArmRandConcurrent(t *testing.T) {
	defer Reset()
	ArmRand(SiteLPIterationCap, 7, 0.5)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		hits int
	)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := 0
			for i := 0; i < 500; i++ {
				if Active(SiteLPIterationCap) {
					local++
				}
			}
			mu.Lock()
			hits += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	if got := Fired(SiteLPIterationCap); got != hits {
		t.Fatalf("Fired = %d, callers observed %d triggers", got, hits)
	}
	if hits == 0 || hits == 8*500 {
		t.Fatalf("p=0.5 site fired %d of %d executions", hits, 8*500)
	}
}
