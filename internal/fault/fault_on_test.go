//go:build kregretfault

package fault

import (
	"math"
	"testing"
	"time"
)

func TestArmConsumesShots(t *testing.T) {
	defer Reset()
	Arm(SiteGeoGreedySupport, 2)
	if !math.IsNaN(NaN(SiteGeoGreedySupport, 1.5)) {
		t.Fatal("first shot did not fire")
	}
	if !math.IsNaN(NaN(SiteGeoGreedySupport, 1.5)) {
		t.Fatal("second shot did not fire")
	}
	if v := NaN(SiteGeoGreedySupport, 1.5); v != 1.5 {
		t.Fatalf("disarmed site altered value: %v", v)
	}
	if got := Fired(SiteGeoGreedySupport); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
}

func TestUnlimitedShotsAndReset(t *testing.T) {
	defer Reset()
	Arm(SiteLPIterationCap, -1)
	for i := 0; i < 10; i++ {
		if Err(SiteLPIterationCap) == nil {
			t.Fatalf("unlimited site disarmed after %d shots", i)
		}
	}
	Reset()
	if Err(SiteLPIterationCap) != nil {
		t.Fatal("Reset did not disarm site")
	}
	if Fired(SiteLPIterationCap) != 0 {
		t.Fatal("Reset did not clear fired counter")
	}
}

func TestUnarmedSitesAreInert(t *testing.T) {
	defer Reset()
	if Active(SiteDDAddHalfspace) {
		t.Fatal("unarmed Active fired")
	}
	if Err(SiteDDAddHalfspace) != nil {
		t.Fatal("unarmed Err fired")
	}
	Sleep(SiteLPSlowPivot) // must not stall
}

func TestArmSleepStalls(t *testing.T) {
	defer Reset()
	ArmSleep(SiteLPSlowPivot, 1, 20*time.Millisecond)
	start := time.Now()
	Sleep(SiteLPSlowPivot)
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("armed Sleep returned after %v", d)
	}
	start = time.Now()
	Sleep(SiteLPSlowPivot)
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("spent Sleep still stalls: %v", d)
	}
}
