//go:build kregretfault

// Fault-injection tests for the serving layer: the queue-overflow and
// breaker-trip sites must be provably wired, since release builds
// compile them out.
package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/fault"
)

func TestFaultQueueFull(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	p := NewPool(Config{Workers: 2, QueueDepth: 8})
	defer func() {
		if err := p.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()

	fault.Arm(fault.SiteServeQueueFull, 1)
	err := p.Do(context.Background(), func(context.Context) { t.Error("job ran through a full queue") })
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded from armed queue-full site, got %v", err)
	}
	if got := fault.Fired(fault.SiteServeQueueFull); got != 1 {
		t.Fatalf("queue-full site fired %d times, want 1", got)
	}
	// The next request sails through an empty pool.
	if err := p.Do(context.Background(), func(context.Context) {}); err != nil {
		t.Fatalf("post-injection request failed: %v", err)
	}
}

func TestFaultBreakerTripCycle(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	clk := &fakeClock{t: time.Unix(2000, 0)}
	b := NewBreaker(BreakerConfig{Threshold: 100, Cooldown: time.Second, Now: clk.now})

	fault.Arm(fault.SiteServeBreakerTrip, 1)
	if b.Allow() {
		t.Fatal("armed trip site did not open the breaker")
	}
	if got := fault.Fired(fault.SiteServeBreakerTrip); got != 1 {
		t.Fatalf("breaker-trip site fired %d times, want 1", got)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after forced trip, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request")
	}
	// Forced trips heal the same way organic ones do.
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("half-open probe refused after forced trip")
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after probe success, want closed", b.State())
	}
}
