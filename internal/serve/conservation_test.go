package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolStatsConservationUnderLoad is the counter-conservation
// stress (run under -race by `make test-serve`): a mixed storm of
// healthy, pre-canceled, deadline-doomed and abandoned requests, then
// a drain, after which the identities must hold exactly:
//
//   - every request classifies client-side (none lost, none double
//     counted);
//   - issued = Admitted + ShedOverload + admission-time deadline
//     sheds + RejectedShutdown;
//   - Admitted = Completed + Canceled + ShedAtDequeue (queue empty);
//   - the gauges read zero and the drain metric is recorded.
func TestPoolStatsConservationUnderLoad(t *testing.T) {
	p := NewPool(Config{Workers: 4, QueueDepth: 8})
	const n = 600
	var (
		wg                                sync.WaitGroup
		ran                               atomic.Uint64
		okCount, overload, shed, canceled atomic.Uint64
		rejected, unclassified            atomic.Uint64
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			switch i % 5 {
			case 1: // pre-canceled: shed at admission
				c, cancel := context.WithCancel(ctx)
				cancel()
				ctx = c
			case 2: // tight deadline: sheds at admission, at dequeue, or cancels while queued
				c, cancel := context.WithTimeout(ctx, time.Duration(i%7)*100*time.Microsecond)
				defer cancel()
				ctx = c
			case 3: // abandoned while queued (sometimes)
				c, cancel := context.WithCancel(ctx)
				defer cancel()
				if i%2 == 1 {
					go func() {
						time.Sleep(time.Duration(i%11) * 50 * time.Microsecond)
						cancel()
					}()
				}
				ctx = c
			}
			err := p.Do(ctx, func(jctx context.Context) {
				ran.Add(1)
				// A sliver of real work so the queue backs up and the
				// dequeue-time shed path is exercised.
				select {
				case <-time.After(200 * time.Microsecond):
				case <-jctx.Done():
				}
			})
			switch {
			case err == nil:
				okCount.Add(1)
			case errors.Is(err, ErrOverloaded):
				overload.Add(1)
			case errors.Is(err, ErrShed):
				shed.Add(1)
			case errors.Is(err, ErrShuttingDown):
				rejected.Add(1)
			case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
				canceled.Add(1)
			default:
				unclassified.Add(1)
				t.Errorf("unclassified outcome: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("drain failed: %v", err)
	}

	s := p.Stats()
	if total := okCount.Load() + overload.Load() + shed.Load() + canceled.Load() + rejected.Load() + unclassified.Load(); total != n {
		t.Fatalf("classified %d of %d requests", total, n)
	}
	if s.Queued != 0 || s.InFlight != 0 {
		t.Fatalf("gauges not drained: queued=%d inflight=%d", s.Queued, s.InFlight)
	}
	if s.Admitted != s.Completed+s.Canceled+s.ShedAtDequeue {
		t.Fatalf("admitted %d != completed %d + canceled %d + shedAtDequeue %d",
			s.Admitted, s.Completed, s.Canceled, s.ShedAtDequeue)
	}
	admissionSheds := s.ShedDeadline - s.ShedAtDequeue
	if n != s.Admitted+s.ShedOverload+admissionSheds+s.RejectedShutdown {
		t.Fatalf("issued %d != admitted %d + overload %d + admission sheds %d + rejected %d",
			n, s.Admitted, s.ShedOverload, admissionSheds, s.RejectedShutdown)
	}
	if s.Completed != ran.Load() {
		t.Fatalf("Completed = %d but %d jobs ran", s.Completed, ran.Load())
	}
	if okCount.Load() == 0 {
		t.Fatal("no request completed under load")
	}
	// The drain metric is recorded by a background goroutine the
	// moment the last worker exits; give the scheduler a beat.
	deadline := time.Now().Add(time.Second)
	for p.Stats().DrainDuration <= 0 {
		if time.Now().After(deadline) {
			t.Fatal("drain duration never recorded")
		}
		time.Sleep(time.Millisecond)
	}
}
