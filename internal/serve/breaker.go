package serve

import (
	"sync"
	"time"

	"repro/internal/fault"
)

// BreakerState is the circuit-breaker state machine position.
type BreakerState int

// Breaker states.
const (
	// BreakerClosed lets requests through while counting failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen short-circuits requests until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets exactly one probe through; its outcome
	// decides between closing and re-opening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes a Breaker. The zero value is usable: Threshold
// defaults to 5 and Cooldown to 10s.
type BreakerConfig struct {
	// Threshold is the decayed failure score at which the breaker
	// trips open. Each failure adds one to the score; the score halves
	// for every Cooldown of quiet time between failures and halves on
	// every success, so only a sustained storm trips the breaker —
	// occasional degradations spread over time never accumulate.
	Threshold int
	// Cooldown is both how long the breaker stays open before
	// half-open probing and the half-life of the failure score.
	Cooldown time.Duration
	// Now is the clock (tests inject a fake one); nil means time.Now.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold < 1 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a circuit breaker with decayed failure counting. Callers
// ask Allow before the protected operation and Record the outcome
// after; while the breaker is open, Allow returns false and the
// caller is expected to take its cheap fallback path instead. Safe
// for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu          sync.Mutex
	state       BreakerState
	score       float64 // decayed failure count
	lastFailure time.Time
	openedAt    time.Time
	probing     bool      // a half-open probe is in flight
	probeStart  time.Time // when the in-flight probe was admitted
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether the protected operation may run now. In the
// half-open state only the first caller gets true (the probe); the
// rest short-circuit until the probe's outcome is recorded.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Now()
	if fault.Enabled && fault.Active(fault.SiteServeBreakerTrip) {
		b.tripLocked(now)
		return false
	}
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Sub(b.openedAt) >= b.cfg.Cooldown {
			b.state = BreakerHalfOpen
			b.probing = true
			b.probeStart = now
			return true
		}
		return false
	case BreakerHalfOpen:
		// The probe token is a lease, not a grant: a probe whose
		// outcome is never recorded (its caller was canceled before
		// the solver finished, so the outcome says nothing about
		// numerical health) forfeits the token after one cooldown.
		// Without the lease a single abandoned probe would pin the
		// breaker half-open forever.
		if !b.probing || now.Sub(b.probeStart) >= b.cfg.Cooldown {
			b.probing = true
			b.probeStart = now
			return true
		}
		return false
	}
	return true
}

// Record feeds the outcome of an operation that Allow admitted. A
// half-open probe success closes the breaker; a probe failure
// re-opens it for another full cooldown.
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Now()
	if success {
		if b.state == BreakerHalfOpen {
			b.state = BreakerClosed
			b.probing = false
			b.score = 0
			return
		}
		b.score /= 2
		return
	}
	b.decayScoreLocked(now)
	b.score++
	b.lastFailure = now
	if b.state == BreakerHalfOpen {
		b.tripLocked(now)
		return
	}
	if b.state == BreakerClosed && b.score >= float64(b.cfg.Threshold) {
		b.tripLocked(now)
	}
}

// Trip forces the breaker open now, as if a failure storm had just
// crossed the threshold: requests short-circuit for a full cooldown
// before half-open probing resumes. The engine's stuck-query watchdog
// uses it to quarantine a key whose in-flight work has run past its
// deadline — evidence of pathology that must not wait for Record
// calls that may never come.
func (b *Breaker) Trip() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tripLocked(b.cfg.Now())
}

// State returns the current state (resolving an elapsed open cooldown
// to half-open, so observers see what the next Allow would).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// tripLocked opens the breaker now. Callers hold b.mu.
func (b *Breaker) tripLocked(now time.Time) {
	b.state = BreakerOpen
	b.openedAt = now
	b.probing = false
}

// decayScoreLocked halves the failure score once per Cooldown elapsed since
// the last failure, so old storms do not keep the breaker trigger-
// happy forever. Callers hold b.mu.
func (b *Breaker) decayScoreLocked(now time.Time) {
	if b.lastFailure.IsZero() {
		return
	}
	elapsed := now.Sub(b.lastFailure)
	for elapsed >= b.cfg.Cooldown && b.score > 0 {
		b.score /= 2
		elapsed -= b.cfg.Cooldown
	}
	if b.score < 1e-3 {
		b.score = 0
	}
}

// BreakerSet is a keyed registry of breakers sharing one config — the
// engine keys them by (algorithm, dimension bucket) so a degenerate-
// input storm in one regime does not open the breaker for others.
type BreakerSet struct {
	cfg BreakerConfig

	mu sync.Mutex
	m  map[string]*Breaker
}

// NewBreakerSet returns an empty registry.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	return &BreakerSet{cfg: cfg.withDefaults(), m: map[string]*Breaker{}}
}

// For returns the breaker for key, creating it (closed) on first use.
func (s *BreakerSet) For(key string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.m[key]
	if b == nil {
		b = NewBreaker(s.cfg)
		s.m[key] = b
	}
	return b
}

// States snapshots every breaker's current state by key.
func (s *BreakerSet) States() map[string]BreakerState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]BreakerState, len(s.m))
	for k, b := range s.m {
		out[k] = b.State()
	}
	return out
}
