package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gatedPool returns a pool whose jobs block until release is closed,
// so tests can hold workers busy deterministically.
func gatedJob(release <-chan struct{}, ran *atomic.Int64) func(context.Context) {
	return func(ctx context.Context) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		ran.Add(1)
	}
}

func TestPoolRunsJobs(t *testing.T) {
	// QueueDepth covers every submission so none can race the workers
	// into a (legitimate) overload shed; overload behavior is
	// TestPoolOverload's job.
	p := NewPool(Config{Workers: 2, QueueDepth: 10})
	defer func() {
		if err := p.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Do(context.Background(), func(context.Context) { ran.Add(1) }); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := ran.Load(); got != 10 {
		t.Fatalf("ran %d jobs, want 10", got)
	}
	s := p.Stats()
	if s.Admitted != 10 || s.Completed != 10 {
		t.Fatalf("stats admitted=%d completed=%d, want 10/10", s.Admitted, s.Completed)
	}
}

func TestPoolOverload(t *testing.T) {
	p := NewPool(Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	var ran atomic.Int64

	// Occupy the single worker, then the single queue slot.
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := p.Do(context.Background(), func(ctx context.Context) {
			close(started)
			gatedJob(release, &ran)(ctx)
		}); err != nil {
			t.Error(err)
		}
	}()
	<-started
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := p.Do(context.Background(), gatedJob(release, &ran)); err != nil {
			t.Error(err)
		}
	}()
	// Wait for the queued task to actually sit in the queue.
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().Queued < 1 {
		if time.Now().After(deadline) {
			t.Fatal("queued job never showed up in the gauge")
		}
		time.Sleep(time.Millisecond)
	}

	err := p.Do(context.Background(), func(context.Context) { t.Error("overflow job ran") })
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("want *OverloadError, got %T", err)
	}
	if oe.Capacity != 1 || oe.Workers != 1 {
		t.Fatalf("overload context wrong: %+v", oe)
	}
	if p.Stats().ShedOverload != 1 {
		t.Fatalf("ShedOverload = %d, want 1", p.Stats().ShedOverload)
	}

	close(release)
	wg.Wait()
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 2 {
		t.Fatalf("ran %d gated jobs, want 2", got)
	}
}

func TestPoolShedsDeadlineDoomed(t *testing.T) {
	p := NewPool(Config{Workers: 1, QueueDepth: 1})
	defer func() {
		if err := p.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := p.Do(ctx, func(context.Context) { t.Error("doomed job ran") })
	if !errors.Is(err, ErrShed) {
		t.Fatalf("want ErrShed, got %v", err)
	}
	if p.Stats().ShedDeadline != 1 {
		t.Fatalf("ShedDeadline = %d, want 1", p.Stats().ShedDeadline)
	}
}

func TestPoolCancelWhileQueued(t *testing.T) {
	p := NewPool(Config{Workers: 1, QueueDepth: 2})
	release := make(chan struct{})
	var ran atomic.Int64

	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := p.Do(context.Background(), func(ctx context.Context) {
			close(started)
			gatedJob(release, &ran)(ctx)
		}); err != nil {
			t.Error(err)
		}
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- p.Do(ctx, func(context.Context) { t.Error("canceled job ran") })
	}()
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().Queued < 1 {
		if time.Now().After(deadline) {
			t.Fatal("job never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want wrapped context.Canceled, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled waiter did not return")
	}
	if p.Stats().Canceled != 1 {
		t.Fatalf("Canceled = %d, want 1", p.Stats().Canceled)
	}
	close(release)
	wg.Wait()
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestPoolShutdownDrainsAndRejects(t *testing.T) {
	p := NewPool(Config{Workers: 2, QueueDepth: 8})
	release := make(chan struct{})
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Do(context.Background(), gatedJob(release, &ran)); err != nil {
				t.Error(err)
			}
		}()
	}
	// Let the jobs reach the pool before shutting down.
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().Admitted < 6 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d admitted", p.Stats().Admitted)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	if got := ran.Load(); got != 6 {
		t.Fatalf("drained %d jobs, want 6", got)
	}

	// New work is rejected, immediately and forever.
	for i := 0; i < 2; i++ {
		start := time.Now()
		err := p.Do(context.Background(), func(context.Context) { t.Error("post-shutdown job ran") })
		if !errors.Is(err, ErrShuttingDown) {
			t.Fatalf("want ErrShuttingDown, got %v", err)
		}
		if time.Since(start) > time.Second {
			t.Fatal("post-shutdown Do blocked")
		}
	}
	if p.Stats().RejectedShutdown != 2 {
		t.Fatalf("RejectedShutdown = %d, want 2", p.Stats().RejectedShutdown)
	}
	// Shutdown is idempotent.
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

func TestPoolShutdownHonorsContext(t *testing.T) {
	p := NewPool(Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	var ran atomic.Int64
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := p.Do(context.Background(), func(ctx context.Context) {
			close(started)
			gatedJob(release, &ran)(ctx)
		}); err != nil {
			t.Error(err)
		}
	}()
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded from interrupted drain, got %v", err)
	}
	close(release)
	// A second Shutdown finishes the drain.
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("resumed shutdown: %v", err)
	}
	wg.Wait()
}

// TestPoolStress hammers a small pool from 200 goroutines with a mix
// of healthy, short-deadline and pre-canceled requests and proves the
// accounting identity: every request is answered, shed or canceled —
// none lost.
func TestPoolStress(t *testing.T) {
	p := NewPool(Config{Workers: 4, QueueDepth: 8})
	const n = 200
	var (
		answered, overloaded, shed, canceled, other atomic.Int64
		wg                                          sync.WaitGroup
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			switch i % 5 {
			case 3:
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(i%7)*100*time.Microsecond)
				defer cancel()
			case 4:
				var cancel context.CancelFunc
				ctx, cancel = context.WithCancel(ctx)
				cancel()
			}
			err := p.Do(ctx, func(ctx context.Context) {
				// A tiny slice of "solver" work that honors ctx.
				select {
				case <-time.After(200 * time.Microsecond):
				case <-ctx.Done():
				}
			})
			switch {
			case err == nil:
				answered.Add(1)
			case errors.Is(err, ErrOverloaded):
				overloaded.Add(1)
			case errors.Is(err, ErrShed):
				shed.Add(1)
			case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
				canceled.Add(1)
			default:
				other.Add(1)
				t.Errorf("unclassified outcome: %v", err)
			}
		}(i)
	}
	wg.Wait()
	total := answered.Load() + overloaded.Load() + shed.Load() + canceled.Load() + other.Load()
	if total != n {
		t.Fatalf("outcomes %d != requests %d", total, n)
	}
	s := p.Stats()
	accounted := s.Completed + s.ShedOverload + s.ShedDeadline + s.Canceled + s.RejectedShutdown
	if accounted != n {
		t.Fatalf("stats account for %d of %d requests: %+v", accounted, n, s)
	}
	if s.Queued != 0 || s.InFlight != 0 {
		t.Fatalf("pool not quiescent after stress: %+v", s)
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
