package serve

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock for breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	return NewBreaker(BreakerConfig{Threshold: threshold, Cooldown: cooldown, Now: clk.now}), clk
}

func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	b, _ := testBreaker(3, time.Second)
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Record(false)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after 3 failures, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request")
	}
}

func TestBreakerHalfOpenProbeCloses(t *testing.T) {
	b, clk := testBreaker(2, time.Second)
	b.Record(false)
	b.Record(false)
	if b.Allow() {
		t.Fatal("breaker should be open")
	}
	clk.advance(time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after cooldown %v, want half-open", b.State())
	}
	// Exactly one probe gets through.
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.Allow() {
		t.Fatal("second concurrent probe allowed")
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state after probe success %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused a request")
	}
}

// TestBreakerHalfOpenProbeLeaseExpires pins the probe-lease rule: a
// probe whose outcome is never recorded (its caller was canceled
// mid-solve) must not pin the breaker half-open forever — after one
// cooldown the token is forfeited and the next caller may probe.
func TestBreakerHalfOpenProbeLeaseExpires(t *testing.T) {
	b, clk := testBreaker(2, time.Second)
	b.Record(false)
	b.Record(false)
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	// The probe is abandoned: no Record ever arrives.
	if b.Allow() {
		t.Fatal("second probe allowed while the lease is live")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("expired probe lease not reissued")
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state after reissued probe success %v, want closed", b.State())
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	b, clk := testBreaker(2, time.Second)
	b.Record(false)
	b.Record(false)
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state after probe failure %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("re-opened breaker allowed a request")
	}
	// And the next cooldown yields another probe.
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("second probe refused")
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("want closed after successful second probe, got %v", b.State())
	}
}

// Failures spread far apart must never trip the breaker: the score
// halves every cooldown of quiet time.
func TestBreakerFailureScoreDecays(t *testing.T) {
	b, clk := testBreaker(3, time.Second)
	for i := 0; i < 20; i++ {
		if !b.Allow() {
			t.Fatalf("breaker tripped on slow failure drip at %d", i)
		}
		b.Record(false)
		clk.advance(3 * time.Second) // score decays to ~1/8 before the next failure
	}
	if b.State() != BreakerClosed {
		t.Fatalf("slow drip opened the breaker: %v", b.State())
	}
}

// Successes halve the score too, so mixed traffic keeps it closed.
func TestBreakerSuccessesDecayScore(t *testing.T) {
	b, _ := testBreaker(3, time.Second)
	for i := 0; i < 30; i++ {
		if !b.Allow() {
			t.Fatalf("breaker tripped on alternating traffic at %d", i)
		}
		b.Record(i%2 == 0)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("alternating traffic opened the breaker: %v", b.State())
	}
}

func TestBreakerSetKeysAreIndependent(t *testing.T) {
	s := NewBreakerSet(BreakerConfig{Threshold: 1, Cooldown: time.Hour})
	a, b := s.For("GeoGreedy/d7"), s.For("GeoGreedy/d3")
	if a == b {
		t.Fatal("distinct keys share a breaker")
	}
	if s.For("GeoGreedy/d7") != a {
		t.Fatal("same key returned a different breaker")
	}
	a.Record(false)
	if a.State() != BreakerOpen {
		t.Fatal("keyed breaker did not trip")
	}
	if b.State() != BreakerClosed {
		t.Fatal("storm on one key opened another key's breaker")
	}
	states := s.States()
	if states["GeoGreedy/d7"] != BreakerOpen || states["GeoGreedy/d3"] != BreakerClosed {
		t.Fatalf("snapshot wrong: %v", states)
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for s, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerOpen: "open", BreakerHalfOpen: "half-open",
	} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
