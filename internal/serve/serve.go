// Package serve is the admission-control layer of the serving engine:
// a bounded worker pool with a bounded wait queue, deadline-aware load
// shedding, and a graceful drain on shutdown. It is deliberately
// generic — jobs are plain closures — so the geometry layer above it
// (kregret.Engine) decides what a query is while this package decides
// only whether and when it may run.
//
// Admission is strict and happens before any expensive work:
//
//   - a request whose context is already dead is shed (ErrShed);
//   - a request that finds the wait queue full is shed (ErrOverloaded);
//   - a request arriving after Shutdown is rejected (ErrShuttingDown).
//
// Admitted requests wait in the queue; a worker re-checks the request
// context at dequeue time and sheds deadline-doomed work before it
// touches the job, so queue delay never converts into wasted solver
// time. Every outcome is counted in Stats.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
)

// Typed admission errors. Pool methods never return these bare — they
// are wrapped in an *OverloadError carrying queue-depth context — so
// match with errors.Is.
var (
	// ErrOverloaded reports that the wait queue was full at admission.
	ErrOverloaded = errors.New("serve: overloaded, wait queue full")
	// ErrShed reports that the request was dropped because its
	// deadline had already expired (at admission or at dequeue),
	// before any solver work was done.
	ErrShed = errors.New("serve: request shed, deadline unreachable")
	// ErrShuttingDown reports that the pool no longer accepts work.
	ErrShuttingDown = errors.New("serve: shutting down")
)

// OverloadError is the concrete error returned for shed or rejected
// admissions. It wraps one of the sentinels above and records the
// pool pressure at the moment of the decision.
type OverloadError struct {
	// Sentinel is ErrOverloaded, ErrShed or ErrShuttingDown.
	Sentinel error
	// Queued and Capacity are the wait-queue depth and limit at the
	// time of the decision; Workers is the pool size.
	Queued, Capacity, Workers int
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("%v (queue %d/%d, %d workers)", e.Sentinel, e.Queued, e.Capacity, e.Workers)
}

// Unwrap exposes the sentinel for errors.Is.
func (e *OverloadError) Unwrap() error { return e.Sentinel }

// Config sizes a Pool. The zero value is usable: Workers defaults to
// GOMAXPROCS and QueueDepth to twice the worker count.
type Config struct {
	// Workers is the number of goroutines executing jobs — the hard
	// bound on concurrent solver work.
	Workers int
	// QueueDepth bounds how many admitted jobs may wait for a worker.
	QueueDepth int
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 2 * c.Workers
	}
	return c
}

// Stats is a point-in-time snapshot of the pool counters.
type Stats struct {
	// Admitted counts requests that entered the wait queue.
	Admitted uint64
	// Completed counts jobs that a worker ran to completion
	// (successfully or not — job outcomes belong to the caller).
	Completed uint64
	// ShedOverload counts requests dropped at admission because the
	// queue was full.
	ShedOverload uint64
	// ShedDeadline counts requests dropped because their deadline had
	// expired — at admission or at dequeue, before the job ran.
	ShedDeadline uint64
	// ShedAtDequeue is the subset of ShedDeadline dropped by a worker
	// at dequeue time, i.e. after the request was Admitted. It makes
	// the conservation identity exact at any drain point:
	//
	//	Admitted = Completed + Canceled + ShedAtDequeue + Queued
	ShedAtDequeue uint64
	// Canceled counts admitted requests abandoned by their caller
	// (context done) while still waiting in the queue.
	Canceled uint64
	// RejectedShutdown counts requests refused after Shutdown.
	RejectedShutdown uint64
	// Queued and InFlight are current gauges; Workers and QueueDepth
	// echo the configuration.
	Queued, InFlight int
	Workers          int
	QueueDepth       int
	// DrainDuration is how long the shutdown drain took — from the
	// first Shutdown call to the last worker exiting. Zero until the
	// drain has completed.
	DrainDuration time.Duration
}

// task states: a task is claimed exactly once, by CAS, by whichever
// side (worker or waiting caller) acts first. This is what makes
// "every request is answered, shed or canceled — none lost" hold
// under the race between cancellation and dequeue.
const (
	taskPending int32 = iota
	taskRunning
	taskAbandoned
	taskShed
)

type task struct {
	// The request context rides in the task because the worker must
	// re-check the deadline at dequeue time; the task never outlives
	// the Do call that created it, so this is a request-scoped
	// carrier, not a stored context.
	//kregret:allow ctxflow: request-scoped carrier, dies with the Do call that made it
	ctx   context.Context
	fn    func(context.Context)
	state atomic.Int32
	// result is written by the claim winner before done is closed;
	// the channel close publishes it to the waiter.
	result error
	done   chan struct{}
}

// Pool is a bounded worker pool. Create with NewPool; safe for
// concurrent use.
type Pool struct {
	cfg   Config
	queue chan *task
	wg    sync.WaitGroup

	// mu guards state and serializes admissions against the queue
	// close in Shutdown (sends are non-blocking, so the read lock is
	// held only briefly).
	mu       sync.RWMutex
	shutdown bool

	admitted, completed        atomic.Uint64
	shedOverload, shedDeadline atomic.Uint64
	shedAtDequeue              atomic.Uint64
	canceled, rejectedShutdown atomic.Uint64
	queuedGauge, inFlightGauge atomic.Int64
	drainNanos                 atomic.Int64
}

// NewPool starts the workers and returns a running pool. The worker
// goroutines are bound to the pool's lifetime, not to any request:
// they exit when Shutdown closes the queue, which is the context-free
// lifecycle contract of a server-side pool.
//
//kregret:allow ctxflow: worker lifetime is governed by Shutdown, not a request context
func NewPool(cfg Config) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{cfg: cfg, queue: make(chan *task, cfg.QueueDepth)}
	p.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go p.worker()
	}
	return p
}

// Do admits fn, waits for a worker to run it, and returns nil once fn
// has returned. fn receives ctx and must honor its cancellation. Do
// returns a non-nil error only when fn never ran: an *OverloadError
// (ErrOverloaded, ErrShed or ErrShuttingDown) or a wrapped ctx error
// if the caller's context ended while the job was still queued. If
// fn has started, Do always waits for it to finish, so values written
// by fn are safe to read whenever Do returns nil.
func (p *Pool) Do(ctx context.Context, fn func(context.Context)) error {
	// Deadline-doomed work is shed before it costs anything.
	if ctx.Err() != nil {
		p.shedDeadline.Add(1)
		return p.overload(ErrShed)
	}
	t := &task{ctx: ctx, fn: fn, done: make(chan struct{})}

	p.mu.RLock()
	if p.shutdown {
		p.mu.RUnlock()
		p.rejectedShutdown.Add(1)
		return p.overload(ErrShuttingDown)
	}
	if fault.Enabled && fault.Active(fault.SiteServeQueueFull) {
		p.mu.RUnlock()
		p.shedOverload.Add(1)
		return p.overload(ErrOverloaded)
	}
	select {
	case p.queue <- t:
		p.mu.RUnlock()
		p.admitted.Add(1)
		p.queuedGauge.Add(1)
	default:
		p.mu.RUnlock()
		p.shedOverload.Add(1)
		return p.overload(ErrOverloaded)
	}

	select {
	case <-t.done:
		return t.result
	case <-ctx.Done():
		if t.state.CompareAndSwap(taskPending, taskAbandoned) {
			// Still queued: the worker will skip it.
			p.canceled.Add(1)
			return fmt.Errorf("serve: canceled while queued: %w", ctx.Err())
		}
		// A worker claimed it first — the job is running (or was
		// shed); wait for the authoritative outcome. fn sees the same
		// ctx and returns promptly on cancellation.
		<-t.done
		return t.result
	}
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for t := range p.queue {
		p.queuedGauge.Add(-1)
		if t.ctx.Err() != nil {
			// Deadline died in the queue: shed before the job runs.
			if t.state.CompareAndSwap(taskPending, taskShed) {
				p.shedDeadline.Add(1)
				p.shedAtDequeue.Add(1)
				t.result = p.overload(ErrShed)
				close(t.done)
			}
			continue
		}
		if !t.state.CompareAndSwap(taskPending, taskRunning) {
			continue // abandoned by its caller
		}
		p.inFlightGauge.Add(1)
		t.fn(t.ctx)
		p.inFlightGauge.Add(-1)
		p.completed.Add(1)
		close(t.done)
	}
}

// overload builds the typed error with current pressure context.
func (p *Pool) overload(sentinel error) error {
	return &OverloadError{
		Sentinel: sentinel,
		Queued:   int(p.queuedGauge.Load()),
		Capacity: p.cfg.QueueDepth,
		Workers:  p.cfg.Workers,
	}
}

// Shutdown stops admissions immediately (subsequent Do calls return
// ErrShuttingDown), lets the workers drain every already-queued job,
// and waits for in-flight jobs to finish. It returns nil once the
// pool is fully drained, or ctx.Err() if ctx ends first — in that
// case the drain continues in the background; Shutdown may be called
// again to keep waiting. Safe to call multiple times.
func (p *Pool) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	if !p.shutdown {
		p.shutdown = true
		close(p.queue)
		// Record the drain metric exactly once, from the moment
		// admissions stopped to the moment the last worker exits —
		// even when this Shutdown call gives up on its context first.
		start := time.Now()
		go func() {
			p.wg.Wait()
			p.drainNanos.Store(time.Since(start).Nanoseconds())
		}()
	}
	p.mu.Unlock()

	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown drain interrupted: %w", ctx.Err())
	}
}

// Stats returns a consistent-enough snapshot of the counters (each
// counter is read atomically; the set is not taken under one lock).
func (p *Pool) Stats() Stats {
	return Stats{
		Admitted:         p.admitted.Load(),
		Completed:        p.completed.Load(),
		ShedOverload:     p.shedOverload.Load(),
		ShedDeadline:     p.shedDeadline.Load(),
		ShedAtDequeue:    p.shedAtDequeue.Load(),
		Canceled:         p.canceled.Load(),
		RejectedShutdown: p.rejectedShutdown.Load(),
		Queued:           int(p.queuedGauge.Load()),
		InFlight:         int(p.inFlightGauge.Load()),
		Workers:          p.cfg.Workers,
		QueueDepth:       p.cfg.QueueDepth,
		DrainDuration:    time.Duration(p.drainNanos.Load()),
	}
}
