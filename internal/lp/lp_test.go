package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func TestMaximizeSimple(t *testing.T) {
	// max 3x + 2y s.t. x + y ≤ 4, x + 3y ≤ 6, x,y ≥ 0 → x=4, y=0, z=12.
	sol := solveOK(t, &Problem{
		Objective: []float64{3, 2},
		Maximize:  true,
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: LE, RHS: 4},
			{Coeffs: []float64{1, 3}, Rel: LE, RHS: 6},
		},
	})
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.Objective-12) > 1e-9 {
		t.Fatalf("objective %v, want 12", sol.Objective)
	}
	if math.Abs(sol.X[0]-4) > 1e-9 || math.Abs(sol.X[1]) > 1e-9 {
		t.Fatalf("x = %v", sol.X)
	}
}

func TestMinimizeWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y ≥ 10, x ≤ 8 → x=8, y=2, z=22.
	sol := solveOK(t, &Problem{
		Objective: []float64{2, 3},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: GE, RHS: 10},
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 8},
		},
	})
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.Objective-22) > 1e-8 {
		t.Fatalf("objective %v, want 22", sol.Objective)
	}
}

func TestEquality(t *testing.T) {
	// max x + y s.t. x + 2y = 4, x ≤ 3 → x=3, y=0.5, z=3.5.
	sol := solveOK(t, &Problem{
		Objective: []float64{1, 1},
		Maximize:  true,
		Constraints: []Constraint{
			{Coeffs: []float64{1, 2}, Rel: EQ, RHS: 4},
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 3},
		},
	})
	if sol.Status != Optimal || math.Abs(sol.Objective-3.5) > 1e-8 {
		t.Fatalf("got %v obj %v", sol.Status, sol.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	// x ≥ 5 and x ≤ 3.
	sol := solveOK(t, &Problem{
		Objective: []float64{1},
		Maximize:  true,
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: GE, RHS: 5},
			{Coeffs: []float64{1}, Rel: LE, RHS: 3},
		},
	})
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	sol := solveOK(t, &Problem{
		Objective:   []float64{1, 0},
		Maximize:    true,
		Constraints: []Constraint{{Coeffs: []float64{0, 1}, Rel: LE, RHS: 1}},
	})
	if sol.Status != Unbounded {
		t.Fatalf("status %v, want unbounded", sol.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// max x s.t. −x ≤ −2 (i.e. x ≥ 2), x ≤ 5 → 5.
	sol := solveOK(t, &Problem{
		Objective: []float64{1},
		Maximize:  true,
		Constraints: []Constraint{
			{Coeffs: []float64{-1}, Rel: LE, RHS: -2},
			{Coeffs: []float64{1}, Rel: LE, RHS: 5},
		},
	})
	if sol.Status != Optimal || math.Abs(sol.Objective-5) > 1e-9 {
		t.Fatalf("got %v obj %v", sol.Status, sol.Objective)
	}
}

func TestMinimizationUnboundedBelowIsFineWithNonNegVars(t *testing.T) {
	// min x with no constraints: x ≥ 0 implicit → optimum 0.
	sol := solveOK(t, &Problem{
		Objective:   []float64{1},
		Constraints: nil,
	})
	if sol.Status != Optimal || sol.Objective != 0 {
		t.Fatalf("got %v obj %v", sol.Status, sol.Objective)
	}
}

func TestDegenerateCycling(t *testing.T) {
	// A classically degenerate LP (Beale's example) that cycles under
	// naive Dantzig without anti-cycling protection.
	sol := solveOK(t, &Problem{
		Objective: []float64{0.75, -150, 0.02, -6},
		Maximize:  true,
		Constraints: []Constraint{
			{Coeffs: []float64{0.25, -60, -0.04, 9}, Rel: LE, RHS: 0},
			{Coeffs: []float64{0.5, -90, -0.02, 3}, Rel: LE, RHS: 0},
			{Coeffs: []float64{0, 0, 1, 0}, Rel: LE, RHS: 1},
		},
	})
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.Objective-0.05) > 1e-6 {
		t.Fatalf("objective %v, want 0.05", sol.Objective)
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := Solve(&Problem{}); err == nil {
		t.Fatal("empty objective accepted")
	}
	if _, err := Solve(&Problem{
		Objective:   []float64{1},
		Constraints: []Constraint{{Coeffs: []float64{1, 2}, Rel: LE, RHS: 1}},
	}); err == nil {
		t.Fatal("mismatched constraint accepted")
	}
	if _, err := Solve(&Problem{
		Objective:   []float64{math.NaN()},
		Constraints: nil,
	}); err == nil {
		t.Fatal("NaN objective accepted")
	}
	if _, err := Solve(&Problem{
		Objective:   []float64{1},
		Constraints: []Constraint{{Coeffs: []float64{math.Inf(1)}, Rel: LE, RHS: 1}},
	}); err == nil {
		t.Fatal("Inf coefficient accepted")
	}
	if _, err := Solve(&Problem{
		Objective:   []float64{1},
		Constraints: []Constraint{{Coeffs: []float64{1}, Rel: LE, RHS: math.NaN()}},
	}); err == nil {
		t.Fatal("NaN RHS accepted")
	}
}

// TestFeasibilityOfSolutions checks on random LPs that any Optimal
// answer actually satisfies every constraint and that its objective
// is not beaten by random feasible points (weak optimality check).
func TestFeasibilityOfSolutions(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(6)
		p := &Problem{Objective: make([]float64, n), Maximize: rng.Intn(2) == 0}
		for j := range p.Objective {
			p.Objective[j] = rng.NormFloat64()
		}
		for i := 0; i < m; i++ {
			c := Constraint{Coeffs: make([]float64, n), Rel: LE, RHS: 1 + rng.Float64()*5}
			for j := range c.Coeffs {
				c.Coeffs[j] = rng.Float64() // non-negative → bounded region w/ x ≥ 0? only if objective favours it
			}
			p.Constraints = append(p.Constraints, c)
		}
		sol, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status == Infeasible {
			t.Fatalf("trial %d: LE-with-positive-RHS system cannot be infeasible", trial)
		}
		if sol.Status != Optimal {
			continue // unbounded is legitimate here
		}
		for i, c := range p.Constraints {
			var lhs float64
			for j := range c.Coeffs {
				lhs += c.Coeffs[j] * sol.X[j]
			}
			if lhs > c.RHS+1e-6 {
				t.Fatalf("trial %d: constraint %d violated: %v > %v", trial, i, lhs, c.RHS)
			}
		}
		for j, x := range sol.X {
			if x < -1e-9 {
				t.Fatalf("trial %d: x[%d] = %v negative", trial, j, x)
			}
		}
		// Random feasible candidates must not beat the optimum.
		for probe := 0; probe < 20; probe++ {
			x := make([]float64, n)
			for j := range x {
				x[j] = rng.Float64()
			}
			feasible := true
			for _, c := range p.Constraints {
				var lhs float64
				for j := range c.Coeffs {
					lhs += c.Coeffs[j] * x[j]
				}
				if lhs > c.RHS {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			var obj float64
			for j := range x {
				obj += p.Objective[j] * x[j]
			}
			if p.Maximize && obj > sol.Objective+1e-6 {
				t.Fatalf("trial %d: random feasible point beats optimum: %v > %v", trial, obj, sol.Objective)
			}
			if !p.Maximize && obj < sol.Objective-1e-6 {
				t.Fatalf("trial %d: random feasible point beats minimum: %v < %v", trial, obj, sol.Objective)
			}
		}
	}
}

// TestLPDualityGap solves a random primal and its explicit dual and
// checks strong duality: max{c·x : Ax ≤ b, x ≥ 0} equals
// min{b·y : Aᵀy ≥ c, y ≥ 0}.
func TestLPDualityGap(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(4)
		A := make([][]float64, m)
		b := make([]float64, m)
		c := make([]float64, n)
		for i := range A {
			A[i] = make([]float64, n)
			for j := range A[i] {
				A[i][j] = 0.1 + rng.Float64()
			}
			b[i] = 0.5 + rng.Float64()
		}
		for j := range c {
			c[j] = 0.1 + rng.Float64()
		}
		primal := &Problem{Objective: c, Maximize: true}
		for i := 0; i < m; i++ {
			primal.Constraints = append(primal.Constraints, Constraint{Coeffs: A[i], Rel: LE, RHS: b[i]})
		}
		dual := &Problem{Objective: b}
		for j := 0; j < n; j++ {
			col := make([]float64, m)
			for i := 0; i < m; i++ {
				col[i] = A[i][j]
			}
			dual.Constraints = append(dual.Constraints, Constraint{Coeffs: col, Rel: GE, RHS: c[j]})
		}
		ps := solveOK(t, primal)
		dsol := solveOK(t, dual)
		if ps.Status != Optimal || dsol.Status != Optimal {
			t.Fatalf("trial %d: statuses %v / %v", trial, ps.Status, dsol.Status)
		}
		if math.Abs(ps.Objective-dsol.Objective) > 1e-6*(1+math.Abs(ps.Objective)) {
			t.Fatalf("trial %d: duality gap %v vs %v", trial, ps.Objective, dsol.Objective)
		}
	}
}

func TestStatusAndRelationStrings(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Fatal("Status strings wrong")
	}
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Fatal("Relation strings wrong")
	}
	if Status(9).String() == "" || Relation(9).String() == "" {
		t.Fatal("unknown enum Strings empty")
	}
}
