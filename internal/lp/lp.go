// Package lp implements a dense two-phase primal simplex solver for
// small linear programs, using only the standard library.
//
// It exists for two reasons:
//
//  1. The best-known baseline the paper compares against — Greedy from
//     Nanongkai et al. (VLDB 2010) — computes each candidate's regret
//     contribution by "time-consuming constrained programming", i.e.
//     one LP per candidate per iteration. Reproducing the baseline
//     faithfully requires an LP solver.
//  2. The LPs double as an independent oracle for the geometric
//     quantities: the critical ratio of Lemma 1 equals
//     1 / max{ω·q : ω ≥ 0, ω·p ≤ 1 ∀p∈S}, so every GeoGreedy result
//     can be cross-checked against simplex output in tests.
//
// The solver handles maximization and minimization, ≤ / = / ≥
// constraints and non-negative variables. Problems in this repository
// are tiny (≤ ~12 variables, ≤ ~few hundred constraints), so a dense
// tableau is the right tool. Dantzig's rule is used for speed with a
// switch to Bland's rule after a fixed number of iterations to
// guarantee termination under degeneracy.
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/assert"
	"repro/internal/fault"
)

// Relation is the sense of a linear constraint.
type Relation int

// Constraint senses.
const (
	LE Relation = iota // a·x ≤ b
	GE                 // a·x ≥ b
	EQ                 // a·x = b
)

func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return fmt.Sprintf("Relation(%d)", int(r))
}

// Constraint is a single linear constraint over the problem's
// variables. Coeffs must have length equal to the number of
// variables in the problem.
type Constraint struct {
	Coeffs []float64
	Rel    Relation
	RHS    float64
}

// Problem is a linear program over n non-negative variables.
type Problem struct {
	// Objective holds the objective coefficients c; the solver
	// optimizes c·x.
	Objective []float64
	// Maximize selects the optimization direction.
	Maximize    bool
	Constraints []Constraint
}

// Status is the outcome of solving a Problem.
type Status int

// Solver outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of Solve.
type Solution struct {
	Status Status
	// X is the optimal assignment of the original variables
	// (nil unless Status == Optimal).
	X []float64
	// Objective is the optimal objective value in the problem's own
	// direction (nil semantics: undefined unless Optimal).
	Objective float64
}

// Errors returned by Solve for malformed input or solver failure.
var (
	ErrBadProblem    = errors.New("lp: malformed problem")
	ErrIterationCap  = errors.New("lp: iteration limit exceeded")
	errNeedsPivoting = errors.New("lp: internal pivoting error")
)

const (
	pivotEps   = 1e-9
	feasEps    = 1e-7
	danzigCap  = 2000  // iterations before switching to Bland's rule
	maxPivots  = 50000 // hard cap; Bland guarantees finite termination well below this
	minPivotAb = 1e-11 // smallest acceptable pivot magnitude
	ctxBatch   = 64    // pivots between cancellation checks in SolveCtx
)

// Solve optimizes the problem with the two-phase primal simplex
// method. All variables are implicitly constrained to x ≥ 0.
func Solve(p *Problem) (*Solution, error) {
	return SolveCtx(context.Background(), p)
}

// SolveCtx is Solve with cooperative cancellation: the pivot loop
// checks the context every ctxBatch pivots, so a canceled or expired
// context stops even a degenerate, slowly-converging tableau within
// one pivot batch. The returned error wraps ctx.Err().
func SolveCtx(ctx context.Context, p *Problem) (*Solution, error) {
	n := len(p.Objective)
	if n == 0 {
		return nil, fmt.Errorf("%w: empty objective", ErrBadProblem)
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) != n {
			return nil, fmt.Errorf("%w: constraint %d has %d coefficients, want %d",
				ErrBadProblem, i, len(c.Coeffs), n)
		}
		for _, v := range c.Coeffs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: constraint %d has non-finite coefficient", ErrBadProblem, i)
			}
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return nil, fmt.Errorf("%w: constraint %d has non-finite RHS", ErrBadProblem, i)
		}
	}
	for _, v := range p.Objective {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: non-finite objective coefficient", ErrBadProblem)
		}
	}

	t := acquireTableau(p)
	defer t.release()
	if t.numArtificial > 0 {
		if err := t.phase1(ctx); err != nil {
			return nil, err
		}
		if t.infeasible {
			return &Solution{Status: Infeasible}, nil
		}
		if assert.Enabled {
			assert.Feasible("lp phase-1 basis", t.basicValues(), feasEps)
		}
	}
	status, err := t.phase2(ctx)
	if err != nil {
		return nil, err
	}
	if status != Optimal {
		return &Solution{Status: status}, nil
	}
	if assert.Enabled {
		assert.Feasible("lp phase-2 basis", t.basicValues(), feasEps)
	}
	x := t.extract()
	obj := dot(p.Objective, x)
	return &Solution{Status: Optimal, X: x, Objective: obj}, nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// tableau is the dense simplex tableau. Rows 0..m−1 hold the
// constraints [A | b]; row m is the objective row in the "row starts
// as −c, basic columns eliminated" convention, so cell (m, width)
// holds the current objective value and an entering column is any j
// with row[m][j] < −eps.
type tableau struct {
	m, nOrig      int
	width         int // total variables (orig + slack/surplus + artificial)
	rows          [][]float64
	basis         []int
	artStart      int // first artificial column index
	numArtificial int
	maximize      bool
	objective     []float64
	objScratch    []float64 // phase objective row, reused across solves
	pivots        int
	infeasible    bool
}

// tableauPool recycles tableaus across solves. The Greedy baseline
// solves one LP per candidate per iteration — tens of thousands of
// structurally identical problems — and with intra-query parallelism
// several goroutines solve at once, so per-solve tableau allocation
// is the dominant allocator pressure. Rows and basis keep their
// backing arrays between solves; init zero-fills what it reuses.
var tableauPool = sync.Pool{New: func() any { return new(tableau) }}

func acquireTableau(p *Problem) *tableau {
	t := tableauPool.Get().(*tableau)
	t.init(p)
	return t
}

// release returns the tableau to the pool. The objective slice is the
// caller's memory — drop the reference so the pool doesn't pin it.
func (t *tableau) release() {
	t.objective = nil
	tableauPool.Put(t)
}

// normalizedRel is the constraint sense after the RHS ≥ 0
// normalization: flipping a negative-RHS row swaps LE and GE.
func normalizedRel(c Constraint) Relation {
	rel := c.Rel
	if c.RHS < 0 {
		switch rel {
		case LE:
			rel = GE
		case GE:
			rel = LE
		}
	}
	return rel
}

// init loads the problem into the (possibly recycled) tableau. Row
// normalization (RHS ≥ 0) is folded into the row writes directly, so
// no intermediate per-constraint copies are made.
func (t *tableau) init(p *Problem) {
	m := len(p.Constraints)
	n := len(p.Objective)

	// Count extra columns: one slack/surplus per inequality, one
	// artificial per row whose normalized sense is GE or EQ.
	numSlack, numArt := 0, 0
	for _, c := range p.Constraints {
		if c.Rel != EQ {
			numSlack++
		}
		if normalizedRel(c) != LE {
			numArt++
		}
	}
	artStart := n + numSlack
	width := artStart + numArt

	t.m, t.nOrig, t.width = m, n, width
	t.artStart, t.numArtificial = artStart, numArt
	t.maximize = p.Maximize
	t.objective = p.Objective
	t.pivots = 0
	t.infeasible = false
	t.rows = growRows(t.rows, m+1, width+1)
	t.basis = growInts(t.basis, m)

	slackCol, artCol := n, artStart
	for i, c := range p.Constraints {
		row := t.rows[i]
		rhs := c.RHS
		if rhs < 0 {
			rhs = -rhs
			for j, v := range c.Coeffs {
				row[j] = -v
			}
		} else {
			copy(row, c.Coeffs)
		}
		row[width] = rhs
		switch normalizedRel(c) {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1 // surplus
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
	}
	// The objective row t.rows[m] is zeroed by growRows; phase1/phase2
	// overwrite it via setObjectiveRow.
}

// growRows resizes rows to nRows rows of rowLen zeroed entries,
// reusing prior backing arrays where capacity allows.
func growRows(rows [][]float64, nRows, rowLen int) [][]float64 {
	if cap(rows) < nRows {
		grown := make([][]float64, nRows)
		copy(grown, rows)
		rows = grown
	}
	rows = rows[:nRows]
	for i := range rows {
		if cap(rows[i]) < rowLen {
			rows[i] = make([]float64, rowLen)
			continue
		}
		rows[i] = rows[i][:rowLen]
		clear(rows[i])
	}
	return rows
}

// growInts resizes s to n entries, reusing capacity (values are fully
// overwritten by init, so no zeroing is needed).
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// setObjectiveRow loads row m with −c for the given full-width
// objective and eliminates the basic columns.
func (t *tableau) setObjectiveRow(c []float64) {
	obj := t.rows[t.m]
	for j := range obj {
		obj[j] = 0
	}
	for j, v := range c {
		obj[j] = -v
	}
	for i, b := range t.basis {
		addScaled(obj, t.rows[i], -obj[b])
	}
}

// phaseObjective returns the reusable width-sized zeroed scratch the
// phases load their objective coefficients into.
func (t *tableau) phaseObjective() []float64 {
	if cap(t.objScratch) < t.width {
		t.objScratch = make([]float64, t.width)
		return t.objScratch
	}
	t.objScratch = t.objScratch[:t.width]
	clear(t.objScratch)
	return t.objScratch
}

// addScaled does dst += f·src.
func addScaled(dst, src []float64, f float64) {
	// Most factors in a sparse pivot are exactly 0 and adding 0·src is
	// a bitwise no-op, so the exact-zero fast path is sound.
	//kregret:allow floatcmp: exact-zero fast path is a no-op
	if f == 0 {
		return
	}
	for j := range dst {
		dst[j] += f * src[j]
	}
}

// phase1 maximizes −Σ artificials; infeasible when the optimum is
// below −feasEps.
func (t *tableau) phase1(ctx context.Context) error {
	c := t.phaseObjective()
	for j := t.artStart; j < t.width; j++ {
		c[j] = -1
	}
	t.setObjectiveRow(c)
	status, err := t.iterate(ctx, func(int) bool { return true })
	if err != nil {
		return err
	}
	if status == Unbounded {
		// Phase-1 objective is bounded above by 0; reaching here
		// indicates a numerical failure.
		return errNeedsPivoting
	}
	if t.rows[t.m][t.width] < -feasEps {
		t.infeasible = true
		return nil
	}
	// Drive artificial variables out of the basis where possible.
	for i, b := range t.basis {
		if b < t.artStart {
			continue
		}
		row := t.rows[i]
		pivotCol := -1
		for j := 0; j < t.artStart; j++ {
			if math.Abs(row[j]) > pivotEps {
				pivotCol = j
				break
			}
		}
		if pivotCol >= 0 {
			t.pivot(i, pivotCol)
		}
		// If no pivot column exists the row is redundant; the
		// artificial stays basic at value ~0 and is harmless as long
		// as artificial columns are barred from entering in phase 2.
	}
	return nil
}

// phase2 optimizes the real objective, excluding artificial columns.
func (t *tableau) phase2(ctx context.Context) (Status, error) {
	c := t.phaseObjective()
	for j, v := range t.objective {
		if t.maximize {
			c[j] = v
		} else {
			c[j] = -v
		}
	}
	t.setObjectiveRow(c)
	return t.iterate(ctx, func(j int) bool { return j < t.artStart })
}

// iterate runs simplex pivots until optimality, unboundedness, the
// iteration cap or cancellation. allowed filters which columns may
// enter the basis.
func (t *tableau) iterate(ctx context.Context, allowed func(int) bool) (Status, error) {
	if fault.Enabled && fault.Active(fault.SiteLPIterationCap) {
		return Optimal, fmt.Errorf("%w (injected after %d pivots)", ErrIterationCap, t.pivots)
	}
	obj := t.rows[t.m]
	for {
		if t.pivots > maxPivots {
			return Optimal, ErrIterationCap
		}
		if t.pivots%ctxBatch == 0 {
			if fault.Enabled {
				fault.Sleep(fault.SiteLPSlowPivot)
			}
			if err := ctx.Err(); err != nil {
				return Optimal, fmt.Errorf("lp: solve canceled: %w", err)
			}
		}
		bland := t.pivots > danzigCap
		// Entering column.
		enter := -1
		best := -pivotEps
		for j := 0; j < t.width; j++ {
			if !allowed(j) {
				continue
			}
			if obj[j] < best {
				enter = j
				if bland {
					break // Bland: first eligible index
				}
				best = obj[j]
			}
		}
		if enter < 0 {
			return Optimal, nil
		}
		// Ratio test for the leaving row.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			a := t.rows[i][enter]
			if a <= pivotEps {
				continue
			}
			ratio := t.rows[i][t.width] / a
			if ratio < bestRatio-pivotEps {
				leave, bestRatio = i, ratio
			} else if ratio < bestRatio+pivotEps && leave >= 0 && t.basis[i] < t.basis[leave] {
				// Bland-style tie-break on the leaving variable index
				// prevents cycling under degeneracy.
				leave = i
			}
		}
		if leave < 0 {
			return Unbounded, nil
		}
		t.pivot(leave, enter)
	}
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	t.pivots++
	row := t.rows[leave]
	p := row[enter]
	if math.Abs(p) < minPivotAb {
		// Degenerate pivot on a near-zero element: skip scaling to
		// avoid blowing up the tableau; the caller's tolerance
		// handling treats this row as unchanged.
		return
	}
	inv := 1 / p
	for j := range row {
		row[j] *= inv
	}
	row[enter] = 1 // exact
	for i := range t.rows {
		if i == leave {
			continue
		}
		addScaled(t.rows[i], row, -t.rows[i][enter])
		t.rows[i][enter] = 0 // exact
	}
	t.basis[leave] = enter
}

// basicValues returns the current values of the basic variables (the
// RHS column). Simplex pivoting must keep them all non-negative; the
// kregretdebug feasibility assertion checks exactly that.
func (t *tableau) basicValues() []float64 {
	vals := make([]float64, t.m)
	for i := range vals {
		vals[i] = t.rows[i][t.width]
	}
	return vals
}

// extract reads the original variables from the final tableau.
func (t *tableau) extract() []float64 {
	x := make([]float64, t.nOrig)
	for i, b := range t.basis {
		if b < t.nOrig {
			x[b] = t.rows[i][t.width]
			if x[b] < 0 && x[b] > -feasEps {
				x[b] = 0
			}
		}
	}
	return x
}
