package exp

import (
	"math"
	"testing"

	"repro/internal/dataset"
)

// Experiments run at sharply reduced sizes here; the full-scale runs
// live in cmd/experiments and EXPERIMENTS.md. These tests pin the
// qualitative shapes the paper reports.

const testCap = 4000

func TestTable3Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Table3(testCap)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.N != testCap {
			t.Fatalf("%s: n=%d", r.Name, r.N)
		}
		// Lemma 3 ordering must hold on every stand-in at any scale.
		if !(r.Conv <= r.Happy && r.Happy <= r.Sky) {
			t.Fatalf("%s: conv=%d happy=%d sky=%d violates Lemma 3", r.Name, r.Conv, r.Happy, r.Sky)
		}
		if r.Sky == 0 || r.Happy == 0 {
			t.Fatalf("%s: empty candidate sets", r.Name)
		}
		// Happy points are a small fraction of the skyline (the
		// paper's headline observation: at most ~16% at full size;
		// allow slack at reduced size).
		if float64(r.Happy) > 0.7*float64(r.Sky) {
			t.Fatalf("%s: happy %d not a small fraction of sky %d", r.Name, r.Happy, r.Sky)
		}
	}
}

func TestFig7And8Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ks := []int{5, 10, 20}
	happyRows, err := Fig7(testCap, ks)
	if err != nil {
		t.Fatal(err)
	}
	skyRows, err := Fig8(testCap, ks)
	if err != nil {
		t.Fatal(err)
	}
	if len(happyRows) != 4*len(ks) || len(skyRows) != 4*len(ks) {
		t.Fatalf("row counts %d/%d", len(happyRows), len(skyRows))
	}
	// Within one dataset, regret is non-increasing in k.
	byDS := map[dataset.RealName][]MRRRow{}
	for _, r := range happyRows {
		byDS[r.Dataset] = append(byDS[r.Dataset], r)
	}
	for ds, rows := range byDS {
		for i := 1; i < len(rows); i++ {
			if rows[i].MRR > rows[i-1].MRR+1e-9 {
				t.Fatalf("%s: regret increases with k: %v", ds, rows)
			}
		}
	}
	// Figure 8 vs 7: skyline candidates are never meaningfully better
	// than happy candidates (the paper reports they are generally
	// worse).
	for i := range happyRows {
		if skyRows[i].MRR < happyRows[i].MRR-1e-6 {
			t.Fatalf("%s k=%d: skyline candidates beat happy candidates: %v < %v",
				happyRows[i].Dataset, happyRows[i].K, skyRows[i].MRR, happyRows[i].MRR)
		}
	}
}

func TestFig9TimingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Fig9(testCap, []int{10})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// StoredList answers from the prefix: strictly cheaper than
		// recomputing with GeoGreedy. (Greedy vs GeoGreedy ordering
		// is only asserted at realistic candidate counts — at this
		// reduced size the candidate sets are tiny and the fixed cost
		// of the d-dimensional hull can dominate; cmd/experiments and
		// EXPERIMENTS.md cover the full-scale comparison.)
		if r.StoredQuery > r.GeoGreedy {
			t.Fatalf("%s: stored query %v slower than GeoGreedy %v", r.Dataset, r.StoredQuery, r.GeoGreedy)
		}
		if r.Greedy <= 0 || r.GeoGreedy <= 0 {
			t.Fatalf("%s: missing timings %+v", r.Dataset, r)
		}
	}
}

func TestSweepsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := SweepDim([]int{2, 3, 4}, 1500, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.MRR < 0 || r.MRR >= 1 {
			t.Fatalf("d=%d: mrr %v", r.Param, r.MRR)
		}
	}
	// Figure 12(a): regret grows with dimensionality.
	if !(rows[0].MRR <= rows[2].MRR+0.02) {
		t.Fatalf("regret should grow with d: %v", rows)
	}

	nRows, err := SweepN([]int{500, 1500}, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(nRows) != 2 {
		t.Fatalf("%d rows", len(nRows))
	}

	kRows, err := SweepK([]int{4, 8, 16}, 1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(kRows); i++ {
		if kRows[i].MRR > kRows[i-1].MRR+1e-9 {
			t.Fatalf("regret should fall with k: %v", kRows)
		}
	}

	lRows, err := SweepLargeK([]int{50, 120}, 1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy must be skipped above k = 100.
	if lRows[1].Greedy != 0 {
		t.Fatalf("Greedy not skipped at k=%d", lRows[1].Param)
	}
	// At very large k the regret is tiny (paper: < 9%).
	if lRows[1].MRR > 0.09 {
		t.Fatalf("large-k regret %v", lRows[1].MRR)
	}
}

func TestHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Headline(6000, 4, 20, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.HappyCount == 0 || res.SkyCount < res.HappyCount {
		t.Fatalf("candidate counts %d/%d", res.SkyCount, res.HappyCount)
	}
	// The paper's ordering: StoredList query ≪ GeoGreedy ≤ Greedy.
	if res.StoredQuery > res.GeoGreedy {
		t.Fatalf("stored %v > geogreedy %v", res.StoredQuery, res.GeoGreedy)
	}
	if res.Greedy < res.GeoGreedy/8 {
		t.Fatalf("greedy %v implausibly fast vs geogreedy %v", res.Greedy, res.GeoGreedy)
	}
	if math.IsNaN(res.MRR) || res.MRR < 0 || res.MRR >= 1 {
		t.Fatalf("mrr %v", res.MRR)
	}
}

func TestPrepareRealErrors(t *testing.T) {
	if _, err := PrepareReal("bogus", 10); err == nil {
		t.Fatal("bogus dataset accepted")
	}
}
