package exp

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
)

func TestCSVWriters(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTable3CSV(&buf, []Table3Row{{
		Name: dataset.NBA, Dims: 5, N: 100, Sky: 10, Happy: 5, Conv: 4,
		PaperSky: 447, PaperHappy: 75, PaperConv: 65,
	}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "nba,5,100,10,5,4,447,75,65") {
		t.Fatalf("table3 csv: %q", buf.String())
	}

	buf.Reset()
	if err := WriteMRRCSV(&buf, []MRRRow{{Dataset: dataset.Color, K: 10, MRR: 0.25}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "color,10,0.25") {
		t.Fatalf("mrr csv: %q", buf.String())
	}

	buf.Reset()
	if err := WriteTimeCSV(&buf, []TimeRow{{
		Dataset: dataset.Stocks, K: 20,
		Greedy: 2 * time.Second, GeoGreedy: 100 * time.Millisecond,
	}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "stocks,20,2,0.1,") {
		t.Fatalf("time csv: %q", buf.String())
	}

	buf.Reset()
	if err := WriteSynthCSV(&buf, "d", []SynthRow{{
		Param: 6, N: 10000, D: 6, K: 10, Happy: 4000, MRR: 0.33,
	}}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "d,n,d,k,happy,mrr") {
		t.Fatalf("synth csv header: %q", buf.String())
	}

	buf.Reset()
	if err := WriteHeadlineCSV(&buf, &HeadlineResult{
		N: 200000, D: 6, K: 100, SkyCount: 30000, HappyCount: 25000, MRR: 0.028,
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "200000,6,100,30000,25000") {
		t.Fatalf("headline csv: %q", buf.String())
	}
}
