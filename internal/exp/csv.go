package exp

import (
	"encoding/csv"
	"io"
	"strconv"
	"time"
)

// CSV emitters for every experiment row type, so results can be fed
// straight into plotting tools. cmd/experiments writes these next to
// its human-readable tables when -csv is given.

func writeAll(w *csv.Writer, rows [][]string) error {
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

func secs(d time.Duration) string { return f(d.Seconds()) }

// WriteTable3CSV writes Table III rows.
func WriteTable3CSV(out io.Writer, rows []Table3Row) error {
	w := csv.NewWriter(out)
	recs := [][]string{{"dataset", "dims", "size", "sky", "happy", "conv", "paper_sky", "paper_happy", "paper_conv"}}
	for _, r := range rows {
		recs = append(recs, []string{
			string(r.Name), strconv.Itoa(r.Dims), strconv.Itoa(r.N),
			strconv.Itoa(r.Sky), strconv.Itoa(r.Happy), strconv.Itoa(r.Conv),
			strconv.Itoa(r.PaperSky), strconv.Itoa(r.PaperHappy), strconv.Itoa(r.PaperConv),
		})
	}
	return writeAll(w, recs)
}

// WriteMRRCSV writes Figure 7/8 rows.
func WriteMRRCSV(out io.Writer, rows []MRRRow) error {
	w := csv.NewWriter(out)
	recs := [][]string{{"dataset", "k", "mrr"}}
	for _, r := range rows {
		recs = append(recs, []string{string(r.Dataset), strconv.Itoa(r.K), f(r.MRR)})
	}
	return writeAll(w, recs)
}

// WriteTimeCSV writes Figure 9/10/11 rows (durations in seconds).
func WriteTimeCSV(out io.Writer, rows []TimeRow) error {
	w := csv.NewWriter(out)
	recs := [][]string{{
		"dataset", "k", "greedy_s", "geogreedy_s", "stored_query_s",
		"pre_sky_s", "pre_happy_s", "stored_build_s",
	}}
	for _, r := range rows {
		recs = append(recs, []string{
			string(r.Dataset), strconv.Itoa(r.K),
			secs(r.Greedy), secs(r.GeoGreedy), secs(r.StoredQuery),
			secs(r.PreSky), secs(r.PreHappy), secs(r.StoredBuild),
		})
	}
	return writeAll(w, recs)
}

// WriteSynthCSV writes Figure 12/13 sweep rows.
func WriteSynthCSV(out io.Writer, param string, rows []SynthRow) error {
	w := csv.NewWriter(out)
	recs := [][]string{{param, "n", "d", "k", "happy", "mrr", "greedy_s", "geogreedy_s"}}
	for _, r := range rows {
		recs = append(recs, []string{
			strconv.Itoa(r.Param), strconv.Itoa(r.N), strconv.Itoa(r.D), strconv.Itoa(r.K),
			strconv.Itoa(r.Happy), f(r.MRR), secs(r.Greedy), secs(r.GeoGreedy),
		})
	}
	return writeAll(w, recs)
}

// WriteHeadlineCSV writes the §V-C headline measurement.
func WriteHeadlineCSV(out io.Writer, res *HeadlineResult) error {
	w := csv.NewWriter(out)
	recs := [][]string{
		{"n", "d", "k", "sky", "happy", "pre_s", "greedy_s", "geogreedy_s", "stored_build_s", "stored_query_s", "mrr"},
		{
			strconv.Itoa(res.N), strconv.Itoa(res.D), strconv.Itoa(res.K),
			strconv.Itoa(res.SkyCount), strconv.Itoa(res.HappyCount),
			secs(res.PreTime), secs(res.Greedy), secs(res.GeoGreedy),
			secs(res.StoredBuild), secs(res.StoredQuery), f(res.MRR),
		},
	}
	return writeAll(w, recs)
}
