// Package exp implements the paper's evaluation section: every table
// and figure of Section V has a function here that generates the
// workload, runs the competing algorithms and returns the rows the
// paper plots. The cmd/experiments binary prints them; the root-level
// benchmarks wrap them in testing.B.
//
// Experiment index (see DESIGN.md §5 for the full mapping):
//
//	Table3        — candidate-set sizes on the four real stand-ins
//	Fig7/Fig8     — maximum regret ratio vs k on D_happy / D_sky
//	Fig9/Fig10    — query time vs k on D_happy / D_sky
//	Fig11         — total time (preprocessing + query) vs k
//	SweepDim ...  — Figures 12(a)–(d) and 13(a)–(d) on synthetic
//	               anti-correlated data (mrr and query time together)
//	Headline      — the §V-C large-dataset run (Greedy hours →
//	               GeoGreedy minutes → StoredList sub-second, scaled)
package exp

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/happy"
	"repro/internal/skyline"
)

// DefaultKs is the k sweep of the paper's real-data figures.
var DefaultKs = []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}

// RealPipeline holds a prepared real-dataset stand-in: the points and
// both candidate sets with their preprocessing times.
type RealPipeline struct {
	Name      dataset.RealName
	Pts       []geom.Vector
	Sky       []int
	Happy     []int
	SkyTime   time.Duration // skyline extraction from the raw data
	HappyTime time.Duration // happy extraction from the skyline
}

// PrepareReal generates the stand-in (n ≤ 0 means full Table III
// size) and runs the candidate-set preprocessing.
func PrepareReal(name dataset.RealName, n int) (*RealPipeline, error) {
	pts, err := dataset.RealScaled(name, n)
	if err != nil {
		return nil, err
	}
	p := &RealPipeline{Name: name, Pts: pts}
	t0 := time.Now()
	p.Sky, err = skyline.Of(pts)
	if err != nil {
		return nil, err
	}
	p.SkyTime = time.Since(t0)
	t0 = time.Now()
	p.Happy = happy.ComputeAmongSkyline(pts, p.Sky)
	p.HappyTime = time.Since(t0)
	return p, nil
}

// CandidatePoints gathers the candidate coordinate slice for a
// candidate index set.
func (p *RealPipeline) CandidatePoints(idx []int) ([]geom.Vector, error) {
	return core.Select(p.Pts, idx)
}

// Table3Row is one line of the paper's Table III, ours vs theirs.
type Table3Row struct {
	Name                            dataset.RealName
	Dims, N                         int
	Sky, Happy, Conv                int
	PaperSky, PaperHappy, PaperConv int
}

// Table3 reproduces Table III. n ≤ 0 runs the full dataset sizes;
// a positive n caps every dataset (used by fast tests).
func Table3(n int) ([]Table3Row, error) {
	var rows []Table3Row
	for _, spec := range dataset.Specs() {
		pipe, err := PrepareReal(spec.Name, n)
		if err != nil {
			return nil, err
		}
		conv, err := core.ConvexAmongHappy(pipe.Pts, pipe.Happy)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{
			Name: spec.Name, Dims: spec.Dims, N: len(pipe.Pts),
			Sky: len(pipe.Sky), Happy: len(pipe.Happy), Conv: len(conv),
			PaperSky: spec.PaperSky, PaperHappy: spec.PaperHappy, PaperConv: spec.PaperConv,
		})
	}
	return rows, nil
}

// MRRRow is one point of a regret-vs-k curve (Figures 7, 8).
type MRRRow struct {
	Dataset dataset.RealName
	K       int
	MRR     float64
}

// Fig7 reproduces Figure 7: maximum regret ratio vs k with the happy
// points as candidates. All three algorithms return the same answer
// set (same greedy skeleton), so one curve per dataset suffices; the
// equality itself is asserted by the test suite.
func Fig7(n int, ks []int) ([]MRRRow, error) { return mrrCurves(n, ks, true) }

// Fig8 reproduces Figure 8: the same curves with the skyline as the
// candidate set. Regrets are generally larger than Figure 7 because
// the greedy may pick skyline points that are not happy points.
func Fig8(n int, ks []int) ([]MRRRow, error) { return mrrCurves(n, ks, false) }

func mrrCurves(n int, ks []int, useHappy bool) ([]MRRRow, error) {
	var rows []MRRRow
	for _, name := range dataset.RealNames {
		pipe, err := PrepareReal(name, n)
		if err != nil {
			return nil, err
		}
		idx := pipe.Sky
		if useHappy {
			idx = pipe.Happy
		}
		cand, err := pipe.CandidatePoints(idx)
		if err != nil {
			return nil, err
		}
		for _, k := range ks {
			res, err := core.GeoGreedy(cand, k)
			if err != nil {
				return nil, err
			}
			rows = append(rows, MRRRow{Dataset: name, K: k, MRR: res.MRR})
		}
	}
	return rows, nil
}

// TimeRow is one point of a query-time curve (Figures 9, 10, 11).
// StoredQuery and StoredBuild are only set for happy-candidate runs
// (StoredList is defined over happy points, Figure 9/11).
type TimeRow struct {
	Dataset     dataset.RealName
	K           int
	Greedy      time.Duration
	GeoGreedy   time.Duration
	StoredQuery time.Duration
	// Totals (Figure 11) = preprocessing + query. Preprocessing is
	// skyline+happy extraction for Greedy/GeoGreedy and additionally
	// the list materialization for StoredList.
	PreSky      time.Duration
	PreHappy    time.Duration
	StoredBuild time.Duration
}

// Fig9 reproduces Figure 9 (query time vs k, happy candidates) and
// carries the preprocessing components so Figure 11 (total time) can
// be printed from the same rows.
func Fig9(n int, ks []int) ([]TimeRow, error) { return timeCurves(n, ks, true) }

// Fig10 reproduces Figure 10 (query time vs k, skyline candidates,
// Greedy vs GeoGreedy).
func Fig10(n int, ks []int) ([]TimeRow, error) { return timeCurves(n, ks, false) }

func timeCurves(n int, ks []int, useHappy bool) ([]TimeRow, error) {
	var rows []TimeRow
	for _, name := range dataset.RealNames {
		pipe, err := PrepareReal(name, n)
		if err != nil {
			return nil, err
		}
		idx := pipe.Sky
		if useHappy {
			idx = pipe.Happy
		}
		cand, err := pipe.CandidatePoints(idx)
		if err != nil {
			return nil, err
		}
		var list *core.StoredList
		var buildTime time.Duration
		if useHappy {
			t0 := time.Now()
			list, err = core.BuildStoredList(cand)
			if err != nil {
				return nil, err
			}
			buildTime = time.Since(t0)
		}
		for _, k := range ks {
			row := TimeRow{Dataset: name, K: k, PreSky: pipe.SkyTime, PreHappy: pipe.HappyTime, StoredBuild: buildTime}
			t0 := time.Now()
			if _, err := core.Greedy(cand, k); err != nil {
				return nil, err
			}
			row.Greedy = time.Since(t0)
			t0 = time.Now()
			if _, err := core.GeoGreedy(cand, k); err != nil {
				return nil, err
			}
			row.GeoGreedy = time.Since(t0)
			if list != nil {
				t0 = time.Now()
				if _, err := list.Query(k); err != nil {
					return nil, err
				}
				row.StoredQuery = time.Since(t0)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// SynthRow is one point of a synthetic-data sweep (Figures 12–13):
// the swept parameter value, the (shared) regret of the answer and
// the query times of both algorithms over the happy candidates.
type SynthRow struct {
	Param     int // the swept value: d, n or k
	N, D, K   int
	Happy     int
	MRR       float64
	Greedy    time.Duration
	GeoGreedy time.Duration
}

// SynthDefaults mirrors §V: anti-correlated data, n = 10,000, d = 6,
// k = 10.
const (
	DefaultSynthN = 10000
	DefaultSynthD = 6
	DefaultSynthK = 10
	synthSeed     = 20140331 // ICDE'14 conference date
)

// runSynth generates one anti-correlated instance, extracts the
// happy candidates and times both algorithms.
func runSynth(n, d, k int, withGreedy bool) (SynthRow, error) {
	pts, err := dataset.AntiCorrelated(n, d, synthSeed+int64(n*31+d*7+k))
	if err != nil {
		return SynthRow{}, err
	}
	sky, err := skyline.Of(pts)
	if err != nil {
		return SynthRow{}, err
	}
	hp := happy.ComputeAmongSkyline(pts, sky)
	cand, err := core.Select(pts, hp)
	if err != nil {
		return SynthRow{}, err
	}
	row := SynthRow{N: n, D: d, K: k, Happy: len(cand)}
	t0 := time.Now()
	res, err := core.GeoGreedy(cand, k)
	if err != nil {
		return SynthRow{}, err
	}
	row.GeoGreedy = time.Since(t0)
	row.MRR = res.MRR
	if withGreedy {
		t0 = time.Now()
		if _, err := core.Greedy(cand, k); err != nil {
			return SynthRow{}, err
		}
		row.Greedy = time.Since(t0)
	}
	return row, nil
}

// SweepDim reproduces Figures 12(a)/13(a): vary the dimensionality.
func SweepDim(dims []int, n, k int) ([]SynthRow, error) {
	var rows []SynthRow
	for _, d := range dims {
		row, err := runSynth(n, d, k, true)
		if err != nil {
			return nil, fmt.Errorf("exp: sweep d=%d: %w", d, err)
		}
		row.Param = d
		rows = append(rows, row)
	}
	return rows, nil
}

// SweepN reproduces Figures 12(b)/13(b): vary the dataset size.
func SweepN(ns []int, d, k int) ([]SynthRow, error) {
	var rows []SynthRow
	for _, n := range ns {
		row, err := runSynth(n, d, k, true)
		if err != nil {
			return nil, fmt.Errorf("exp: sweep n=%d: %w", n, err)
		}
		row.Param = n
		rows = append(rows, row)
	}
	return rows, nil
}

// SweepK reproduces Figures 12(c)/13(c): vary the result size.
func SweepK(ks []int, n, d int) ([]SynthRow, error) {
	var rows []SynthRow
	for _, k := range ks {
		row, err := runSynth(n, d, k, true)
		if err != nil {
			return nil, fmt.Errorf("exp: sweep k=%d: %w", k, err)
		}
		row.Param = k
		rows = append(rows, row)
	}
	return rows, nil
}

// SweepLargeK reproduces Figures 12(d)/13(d): very large k, where
// the regret drops below 9%. Greedy is skipped beyond k = 100 (the
// paper's own point: it is too slow there).
func SweepLargeK(ks []int, n, d int) ([]SynthRow, error) {
	var rows []SynthRow
	for _, k := range ks {
		row, err := runSynth(n, d, k, k <= 100)
		if err != nil {
			return nil, fmt.Errorf("exp: sweep large k=%d: %w", k, err)
		}
		row.Param = k
		rows = append(rows, row)
	}
	return rows, nil
}

// HeadlineResult is the §V-C showcase measurement.
type HeadlineResult struct {
	N, D, K     int
	SkyCount    int
	HappyCount  int
	PreTime     time.Duration // skyline + happy extraction
	Greedy      time.Duration
	GeoGreedy   time.Duration
	StoredBuild time.Duration
	StoredQuery time.Duration
	MRR         float64
}

// Headline reproduces the paper's large-data comparison ("Greedy took
// 3 hours, GeoGreedy a few minutes, StoredList within a second" on 5
// million tuples). n is configurable because the full 5M run is slow
// by design — the shape (orders of magnitude between the three
// algorithms) shows at much smaller n too.
func Headline(n, d, k int, withGreedy bool) (*HeadlineResult, error) {
	pts, err := dataset.AntiCorrelated(n, d, synthSeed)
	if err != nil {
		return nil, err
	}
	res := &HeadlineResult{N: n, D: d, K: k}
	t0 := time.Now()
	sky, err := skyline.Of(pts)
	if err != nil {
		return nil, err
	}
	hp := happy.ComputeAmongSkyline(pts, sky)
	res.PreTime = time.Since(t0)
	res.SkyCount, res.HappyCount = len(sky), len(hp)
	cand, err := core.Select(pts, hp)
	if err != nil {
		return nil, err
	}
	if withGreedy {
		t0 = time.Now()
		if _, err := core.Greedy(cand, k); err != nil {
			return nil, err
		}
		res.Greedy = time.Since(t0)
	}
	t0 = time.Now()
	geo, err := core.GeoGreedy(cand, k)
	if err != nil {
		return nil, err
	}
	res.GeoGreedy = time.Since(t0)
	res.MRR = geo.MRR
	// Materialize enough of the list to serve the experiment's k
	// (full materialization over a multi-thousand-point hull is the
	// paper's "StoredList total time is largest" regime and is
	// benchmarked separately in Figure 11).
	t0 = time.Now()
	list, err := core.BuildStoredListUpTo(cand, max(10*k, 1000))
	if err != nil {
		return nil, err
	}
	res.StoredBuild = time.Since(t0)
	t0 = time.Now()
	if _, err := list.Query(k); err != nil {
		return nil, err
	}
	res.StoredQuery = time.Since(t0)
	return res, nil
}
