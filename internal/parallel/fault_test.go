//go:build kregretfault

package parallel

import (
	"context"
	"strings"
	"testing"

	"repro/internal/fault"
)

// TestSiteParallelWorkerPanics proves the injection site fires inside
// a worker goroutine and the panic is re-raised on the caller — the
// low-level half of the Engine degradation test in the root package.
func TestSiteParallelWorkerPanics(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	fault.Arm(fault.SiteParallelWorker, 1)

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected the injected worker panic to be re-raised on the caller")
		}
		s, ok := r.(string)
		if !ok || !strings.Contains(s, "injected panic in parallel worker") {
			t.Fatalf("recovered %v (%T), want the injected panic value", r, r)
		}
		if fault.Fired(fault.SiteParallelWorker) != 1 {
			t.Fatalf("site fired %d times, want 1", fault.Fired(fault.SiteParallelWorker))
		}
	}()
	_ = For(context.Background(), 1<<16, 4, 1, func(start, end int) error { return nil })
	t.Fatal("For returned instead of panicking")
}

// TestSiteParallelWorkerInertSequential: the site lives in the worker
// chunk loop only, so the exact sequential path (workers == 1) never
// fires it — parallelism 1 stays byte-identical to the pre-parallel
// code even under the fault harness.
func TestSiteParallelWorkerInertSequential(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	fault.Arm(fault.SiteParallelWorker, -1)

	if err := For(context.Background(), 1<<16, 1, 1, func(start, end int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if n := fault.Fired(fault.SiteParallelWorker); n != 0 {
		t.Fatalf("sequential path fired the worker site %d times, want 0", n)
	}
}

// TestObserveAndArmAfter covers the new sweep primitives: Observe
// counts without misbehaving; ArmAfter skips the first k firings.
func TestObserveAndArmAfter(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)

	fault.Observe(fault.SiteParallelWorker)
	if err := For(context.Background(), 1<<16, 4, 1, func(start, end int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	total := fault.Fired(fault.SiteParallelWorker)
	if total == 0 {
		t.Fatal("Observe counted 0 executions of the worker site on a parallel run")
	}

	// Skip more executions than occur: nothing fires.
	fault.Reset()
	fault.ArmAfter(fault.SiteParallelWorker, total*4+16, 1)
	if err := For(context.Background(), 1<<16, 4, 1, func(start, end int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if n := fault.Fired(fault.SiteParallelWorker); n != 0 {
		t.Fatalf("ArmAfter with a large skip fired %d times, want 0", n)
	}

	// Skip zero: behaves like Arm(site, 1).
	fault.Reset()
	fault.ArmAfter(fault.SiteParallelWorker, 0, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("ArmAfter(0, 1) did not fire")
			}
		}()
		_ = For(context.Background(), 1<<16, 4, 1, func(start, end int) error { return nil })
	}()
}
