// Package parallel is the intra-query fan-out substrate of the
// geometry core: a chunked parallel-for with deterministic reductions,
// built only on the standard library.
//
// The paper's hot loops — candidate support scans, happy-point
// subjugation tests, sampled regret evaluation, the per-candidate LPs
// of the Greedy baseline — are embarrassingly parallel across
// candidates: every iteration reads shared immutable state (the dual
// hull, the point slice) and writes at most its own index. This
// package exploits exactly that shape while keeping three contracts
// the rest of the repository depends on:
//
//   - Determinism. Parallel results are byte-identical to the
//     sequential ones. For writes only disjoint indices; ArgMax
//     reduces with value-then-lowest-index ordering, which is
//     associative and commutative, so chunk scheduling cannot change
//     the winner. Differential tests in internal/core assert equality
//     of full query answers at parallelism 1 vs N.
//
//   - Failure transparency. A panic on a worker goroutine is captured
//     and re-raised on the caller's goroutine, so the public panic
//     boundary in package kregret converts it into a *NumericalError
//     exactly as it does for sequential panics. Body errors are
//     combined with errors.Join; cancellation is checked between
//     chunks so a dead context stops the fan-out within one chunk.
//
//   - NaN poisoning. ArgMax refuses to reduce across a NaN: the
//     sequential scans treat NaN supports as degeneracy (every ordered
//     comparison against NaN is false, which would silently lose the
//     candidate), and the parallel reduction must surface the same
//     failure instead of hiding it. The lowest poisoned index is
//     reported so the error message matches the sequential scan's.
//
// Parallelism is a knob, not a guarantee: Resolve(0) yields the
// process default (GOMAXPROCS, overridable once via the
// KREGRET_PARALLELISM environment variable), and workers == 1 — or any
// input smaller than the call site's grain — takes the exact
// sequential code path, so tests and small queries pay zero
// synchronization overhead.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
)

// EnvParallelism is the environment variable consulted once per
// process for the default worker count ("the KRegretParallelism
// knob"): a positive integer overrides GOMAXPROCS as the meaning of
// "workers = 0". Invalid or non-positive values are ignored.
const EnvParallelism = "KREGRET_PARALLELISM"

var (
	defaultOnce sync.Once
	defaultN    int
)

// DefaultWorkers returns the process-wide default parallelism:
// GOMAXPROCS(0) unless EnvParallelism names a positive integer. The
// value is computed once; later environment changes have no effect.
func DefaultWorkers() int {
	defaultOnce.Do(func() {
		defaultN = runtime.GOMAXPROCS(0)
		if n, ok := parseParallelismEnv(os.Getenv(EnvParallelism)); ok {
			defaultN = n
		}
	})
	return defaultN
}

// parseParallelismEnv parses the EnvParallelism override: a positive
// integer is accepted, everything else rejected.
func parseParallelismEnv(s string) (int, bool) {
	if s == "" {
		return 0, false
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, false
	}
	return n, true
}

// Resolve maps the caller-facing workers knob to a concrete worker
// count: 0 means DefaultWorkers, anything below 1 is clamped to the
// exact sequential path.
func Resolve(workers int) int {
	if workers == 0 {
		return DefaultWorkers()
	}
	if workers < 1 {
		return 1
	}
	return workers
}

// plan is one chunking decision: how [0, n) is cut and how many
// goroutines work on it. numChunks < 2 (or workers == 1) selects the
// inline sequential path.
type plan struct {
	n, workers, chunk, numChunks int
}

// newPlan sizes chunks for n items with the given per-site grain (the
// minimum chunk size, chosen by the call site to amortize scheduling
// over its per-item cost). Chunks grow beyond the grain so that each
// worker sees a handful of chunks — enough dynamic slack to balance
// skewed per-item cost without drowning in atomics.
func newPlan(n, workers, grain int) plan {
	w := Resolve(workers)
	if grain < 1 {
		grain = 1
	}
	// Minimum-total-work cutoff: a sweep too small to fill two grains
	// cannot amortize goroutine fan-out, so it takes the workers=1
	// inline path. This is what keeps tiny Greedy instances from paying
	// scheduling overhead for nothing (the 0.94x Paper/Greedy parallel
	// regression in BENCH_7f78352.json).
	if n < 1 || w == 1 || n < 2*grain {
		return plan{n: n, workers: 1, chunk: n, numChunks: 1}
	}
	chunk := grain
	if balanced := n / (w * 4); balanced > chunk {
		chunk = balanced
	}
	numChunks := (n + chunk - 1) / chunk
	if numChunks < 2 {
		return plan{n: n, workers: 1, chunk: n, numChunks: 1}
	}
	if w > numChunks {
		w = numChunks
	}
	return plan{n: n, workers: w, chunk: chunk, numChunks: numChunks}
}

// run executes body(c, start, end) for every chunk c covering
// [start, end) ⊂ [0, n), fanning chunks out over p.workers goroutines
// (the caller's goroutine participates as one of them). Workers pull
// chunks from an atomic counter; cancellation is checked before every
// chunk; the first body error stops further chunk claims and every
// error is combined with errors.Join. A worker panic is captured and
// re-raised on the caller's goroutine after all workers have stopped.
func run(ctx context.Context, p plan, body func(c, start, end int) error) error {
	if p.n < 1 {
		return nil
	}
	if p.numChunks < 2 {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("parallel: canceled before sequential run: %w", err)
		}
		return body(0, 0, p.n)
	}

	var (
		next     atomic.Int64
		stop     atomic.Bool
		errsMu   sync.Mutex
		errs     = make([]error, p.numChunks)
		panicMu  sync.Mutex
		panicked bool
		panicVal any
		wg       sync.WaitGroup
	)
	worker := func() {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if !panicked {
					panicked, panicVal = true, r
				}
				panicMu.Unlock()
				stop.Store(true)
			}
		}()
		for !stop.Load() {
			c := int(next.Add(1)) - 1
			if c >= p.numChunks {
				return
			}
			if err := ctx.Err(); err != nil {
				errsMu.Lock()
				errs[c] = fmt.Errorf("parallel: canceled before chunk %d/%d: %w", c, p.numChunks, err)
				errsMu.Unlock()
				stop.Store(true)
				return
			}
			if fault.Enabled && fault.Active(fault.SiteParallelWorker) {
				panic(fmt.Sprintf("fault: injected panic in parallel worker (chunk %d/%d)", c, p.numChunks))
			}
			start := c * p.chunk
			end := start + p.chunk
			if end > p.n {
				end = p.n
			}
			if err := body(c, start, end); err != nil {
				errsMu.Lock()
				errs[c] = err
				errsMu.Unlock()
				stop.Store(true)
				return
			}
		}
	}
	for i := 1; i < p.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker()
		}()
	}
	worker() // the caller participates
	wg.Wait()

	if panicked {
		// Re-raise on the caller's goroutine so the public panic
		// boundary (kregret.runSolver) sees it exactly like a
		// sequential panic. The original value is preserved.
		panic(panicVal)
	}
	return errors.Join(errs...)
}

// For splits [0, n) into chunks of at least grain indices and runs
// body(start, end) for each, concurrently on up to `workers`
// goroutines (0 = DefaultWorkers). With workers == 1 — or when n is
// too small to fill two chunks — body runs once, inline, as
// body(0, n): the exact sequential path.
//
// The body must confine writes to the chunk's own indices (or to
// state owned by the chunk index); reads of shared state must be
// free of concurrent writers. cmd/kregret-vet's slicealias analyzer
// flags chunk bodies that write captured variables outside that
// discipline.
func For(ctx context.Context, n, workers, grain int, body func(start, end int) error) error {
	return run(ctx, newPlan(n, workers, grain), func(_, start, end int) error {
		return body(start, end)
	})
}

// NaNError reports that a reduction met a NaN value. Index is the
// lowest poisoned index, matching what a sequential in-order scan
// would have reported first.
type NaNError struct{ Index int }

func (e *NaNError) Error() string {
	return fmt.Sprintf("parallel: NaN value at index %d poisons the reduction", e.Index)
}

// seqCtxBatch is how many items the inline sequential reduction scans
// between cancellation checks, mirroring the scan-batch granularity of
// the sequential core loops.
const seqCtxBatch = 4096

// ArgMax returns the index attaining the maximum of value(i) over all
// i in [0, n) for which value reports ok, together with that maximum.
// Ties are broken toward the lowest index and NaN values poison the
// whole reduction (returning *NaNError with the lowest poisoned
// index), so the result is byte-identical to the sequential scan
//
//	best := -1
//	for i := 0; i < n; i++ { if ok && v > bestVal { best, bestVal = i, v } }
//
// regardless of worker count or chunk boundaries. When no index is ok
// it returns (-1, 0, nil).
func ArgMax(ctx context.Context, n, workers, grain int, value func(i int) (float64, bool)) (int, float64, error) {
	p := newPlan(n, workers, grain)
	if p.numChunks < 2 {
		return argMaxRange(ctx, 0, n, value)
	}
	type local struct {
		idx    int
		val    float64
		nanIdx int
	}
	locals := make([]local, p.numChunks)
	err := run(ctx, p, func(c, start, end int) error {
		best, bestVal, nanIdx := -1, 0.0, -1
		for i := start; i < end; i++ {
			v, ok := value(i)
			if !ok {
				continue
			}
			if math.IsNaN(v) {
				nanIdx = i
				break // lower indices in this chunk are clean; chunks merge by min
			}
			if best < 0 || v > bestVal {
				best, bestVal = i, v
			}
		}
		locals[c] = local{idx: best, val: bestVal, nanIdx: nanIdx}
		return nil
	})
	if err != nil {
		return -1, 0, err
	}
	// Deterministic merge in chunk (= index) order: the lowest NaN
	// wins the poison check; otherwise strictly-greater keeps the
	// lowest index on value ties.
	best, bestVal := -1, 0.0
	for _, l := range locals {
		if l.nanIdx >= 0 {
			return -1, 0, &NaNError{Index: l.nanIdx}
		}
		if l.idx >= 0 && (best < 0 || l.val > bestVal) {
			best, bestVal = l.idx, l.val
		}
	}
	return best, bestVal, nil
}

// argMaxRange is the sequential reduction over [start, end), with the
// same NaN poisoning and cancellation granularity as the parallel
// path.
func argMaxRange(ctx context.Context, start, end int, value func(i int) (float64, bool)) (int, float64, error) {
	best, bestVal := -1, 0.0
	for i := start; i < end; i++ {
		if (i-start)%seqCtxBatch == 0 {
			if err := ctx.Err(); err != nil {
				return -1, 0, fmt.Errorf("parallel: canceled during reduction: %w", err)
			}
		}
		v, ok := value(i)
		if !ok {
			continue
		}
		if math.IsNaN(v) {
			return -1, 0, &NaNError{Index: i}
		}
		if best < 0 || v > bestVal {
			best, bestVal = i, v
		}
	}
	return best, bestVal, nil
}
