package parallel

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != DefaultWorkers() {
		t.Fatalf("Resolve(0) = %d, want DefaultWorkers() = %d", got, DefaultWorkers())
	}
	if got := Resolve(-3); got != 1 {
		t.Fatalf("Resolve(-3) = %d, want 1", got)
	}
	if got := Resolve(7); got != 7 {
		t.Fatalf("Resolve(7) = %d, want 7", got)
	}
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers() = %d, want >= 1", DefaultWorkers())
	}
}

func TestParseParallelismEnv(t *testing.T) {
	cases := []struct {
		in string
		n  int
		ok bool
	}{
		{"", 0, false},
		{"0", 0, false},
		{"-2", 0, false},
		{"abc", 0, false},
		{"3.5", 0, false},
		{"1", 1, true},
		{"16", 16, true},
	}
	for _, c := range cases {
		n, ok := parseParallelismEnv(c.in)
		if n != c.n || ok != c.ok {
			t.Errorf("parseParallelismEnv(%q) = (%d, %v), want (%d, %v)", c.in, n, ok, c.n, c.ok)
		}
	}
}

// TestForCoversAllIndices checks that every index in [0, n) is visited
// exactly once for a spread of sizes, worker counts and grains —
// including the degenerate n = 0 and the inline sequential path.
func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 4096, 10000} {
		for _, workers := range []int{1, 2, 4, 13} {
			for _, grain := range []int{1, 64, 5000} {
				visits := make([]int32, n)
				err := For(context.Background(), n, workers, grain, func(start, end int) error {
					if start < 0 || end > n || start > end {
						return fmt.Errorf("bad chunk [%d, %d) for n=%d", start, end, n)
					}
					for i := start; i < end; i++ {
						atomic.AddInt32(&visits[i], 1)
					}
					return nil
				})
				if err != nil {
					t.Fatalf("For(n=%d, w=%d, g=%d): %v", n, workers, grain, err)
				}
				for i, v := range visits {
					if v != 1 {
						t.Fatalf("For(n=%d, w=%d, g=%d): index %d visited %d times", n, workers, grain, i, v)
					}
				}
			}
		}
	}
}

// TestForSequentialIsInline proves workers == 1 makes exactly one
// body call spanning the whole range — the contract that lets call
// sites treat parallelism 1 as the untouched sequential path.
func TestForSequentialIsInline(t *testing.T) {
	calls := 0
	err := For(context.Background(), 100000, 1, 1, func(start, end int) error {
		calls++
		if start != 0 || end != 100000 {
			t.Fatalf("sequential chunk = [%d, %d), want [0, 100000)", start, end)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("sequential path made %d body calls, want 1", calls)
	}
}

func TestForPropagatesBodyError(t *testing.T) {
	boom := errors.New("boom")
	err := For(context.Background(), 10000, 4, 1, func(start, end int) error {
		if start == 0 {
			return fmt.Errorf("chunk zero: %w", boom)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("For error = %v, want wrapping %v", err, boom)
	}
}

func TestForJoinsMultipleErrors(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	// Every chunk fails; errors.Join must surface all of them that
	// were recorded before the stop flag won the race — at minimum
	// the first.
	err := For(context.Background(), 10000, 4, 1, func(start, end int) error {
		if start%2 == 0 {
			return errA
		}
		return errB
	})
	if err == nil {
		t.Fatal("want an error, got nil")
	}
	if !errors.Is(err, errA) && !errors.Is(err, errB) {
		t.Fatalf("joined error %v wraps neither input", err)
	}
}

func TestForCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := For(ctx, 10000, 4, 1, func(start, end int) error {
		t.Error("body ran under a canceled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("For error = %v, want context.Canceled", err)
	}
	// Sequential path too.
	err = For(ctx, 10, 1, 1, func(start, end int) error {
		t.Error("sequential body ran under a canceled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sequential For error = %v, want context.Canceled", err)
	}
}

func TestForCancellationMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := For(ctx, 1<<20, 4, 1, func(start, end int) error {
		if ran.Add(1) == 1 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("For error = %v, want context.Canceled", err)
	}
}

// TestForPanicReraisedOnCaller proves a worker panic crosses back to
// the calling goroutine with its original value, so the public panic
// boundary in kregret sees it exactly like a sequential panic.
func TestForPanicReraisedOnCaller(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected the worker panic to be re-raised on the caller")
		}
		if s, ok := r.(string); !ok || s != "worker exploded" {
			t.Fatalf("recovered %v (%T), want the original panic value", r, r)
		}
	}()
	_ = For(context.Background(), 10000, 4, 1, func(start, end int) error {
		if start >= 5000 {
			panic("worker exploded")
		}
		return nil
	})
	t.Fatal("For returned instead of panicking")
}

func TestArgMaxMatchesSequential(t *testing.T) {
	// Values with deliberate duplicates so the lowest-index tie-break
	// is exercised, across sizes and worker counts.
	for _, n := range []int{0, 1, 5, 1000, 10000} {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64((i * 7919) % 257) // many ties
		}
		value := func(i int) (float64, bool) { return vals[i], i%11 != 3 }

		wantIdx, wantVal := -1, 0.0
		for i := 0; i < n; i++ {
			v, ok := value(i)
			if ok && (wantIdx < 0 || v > wantVal) {
				wantIdx, wantVal = i, v
			}
		}
		for _, workers := range []int{1, 2, 4, 9} {
			idx, val, err := ArgMax(context.Background(), n, workers, 1, value)
			if err != nil {
				t.Fatalf("ArgMax(n=%d, w=%d): %v", n, workers, err)
			}
			if idx != wantIdx || val != wantVal {
				t.Fatalf("ArgMax(n=%d, w=%d) = (%d, %v), want (%d, %v)", n, workers, idx, val, wantIdx, wantVal)
			}
		}
	}
}

func TestArgMaxAllExcluded(t *testing.T) {
	for _, workers := range []int{1, 4} {
		idx, val, err := ArgMax(context.Background(), 1000, workers, 1, func(i int) (float64, bool) {
			return 42, false
		})
		if err != nil {
			t.Fatal(err)
		}
		if idx != -1 || val != 0 {
			t.Fatalf("ArgMax with no ok index = (%d, %v), want (-1, 0)", idx, val)
		}
	}
}

// TestArgMaxNaNPoisoning: a NaN anywhere must yield *NaNError with the
// lowest NaN index, independent of worker count and of higher values
// appearing after it.
func TestArgMaxNaNPoisoning(t *testing.T) {
	n := 10000
	for _, nanAt := range []int{0, 1, 4999, 5000, n - 1} {
		for _, workers := range []int{1, 2, 4, 16} {
			idx, _, err := ArgMax(context.Background(), n, workers, 1, func(i int) (float64, bool) {
				if i == nanAt || i == nanAt+137 { // a second NaN higher up must lose
					return math.NaN(), true
				}
				return float64(i), true
			})
			var nanErr *NaNError
			if !errors.As(err, &nanErr) {
				t.Fatalf("nanAt=%d w=%d: err = %v, want *NaNError", nanAt, workers, err)
			}
			if nanErr.Index != nanAt {
				t.Fatalf("nanAt=%d w=%d: reported index %d, want lowest NaN index %d", nanAt, workers, nanErr.Index, nanAt)
			}
			if idx != -1 {
				t.Fatalf("nanAt=%d w=%d: idx = %d, want -1 on poisoning", nanAt, workers, idx)
			}
		}
	}
}

func TestArgMaxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, _, err := ArgMax(ctx, 100000, workers, 1, func(i int) (float64, bool) { return float64(i), true })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("w=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestArgMaxNegativeInfinity: -Inf values are legal (they just never
// win against anything finite) and must not be confused with "no ok
// index" — a lone -Inf is still the argmax.
func TestArgMaxNegativeInfinity(t *testing.T) {
	for _, workers := range []int{1, 4} {
		idx, val, err := ArgMax(context.Background(), 100, workers, 1, func(i int) (float64, bool) {
			return math.Inf(-1), i == 37
		})
		if err != nil {
			t.Fatal(err)
		}
		if idx != 37 || !math.IsInf(val, -1) {
			t.Fatalf("w=%d: = (%d, %v), want (37, -Inf)", workers, idx, val)
		}
	}
}

func TestPlanThresholds(t *testing.T) {
	// Below-grain input collapses to the sequential plan.
	if p := newPlan(100, 8, 200); p.numChunks != 1 || p.workers != 1 {
		t.Fatalf("newPlan(100, 8, grain=200) = %+v, want sequential", p)
	}
	// Workers never exceed chunks.
	if p := newPlan(10, 64, 5); p.workers > p.numChunks {
		t.Fatalf("newPlan(10, 64, 5) = %+v: more workers than chunks", p)
	}
	// Chunks cover the range exactly.
	p := newPlan(100001, 4, 64)
	last := (p.numChunks - 1) * p.chunk
	if last >= p.n || p.numChunks*p.chunk < p.n {
		t.Fatalf("newPlan(100001, 4, 64) = %+v does not tile [0, n)", p)
	}
}

// TestPlanInlineCutoff asserts the minimum-total-work cutoff: any
// sweep with fewer than two grains of work must take the workers=1
// inline path — one body call spanning the whole range — no matter
// how many workers the caller requested. This is the fix for the
// Paper/Greedy parallel regression: small LP sweeps stop paying
// fan-out overhead.
func TestPlanInlineCutoff(t *testing.T) {
	if p := newPlan(300, 8, 200); p.numChunks != 1 || p.workers != 1 {
		t.Fatalf("newPlan(300, 8, grain=200) = %+v, want the sequential plan (300 < 2*200)", p)
	}
	// Exactly two grains of work is the smallest parallel plan.
	if p := newPlan(400, 8, 200); p.numChunks != 2 {
		t.Fatalf("newPlan(400, 8, grain=200) = %+v, want 2 chunks", p)
	}
	calls := 0
	err := For(context.Background(), 300, 8, 200, func(start, end int) error {
		calls++
		if start != 0 || end != 300 {
			t.Fatalf("inline cutoff chunk = [%d, %d), want [0, 300)", start, end)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("below-cutoff For made %d body calls, want 1 inline call", calls)
	}
	// ArgMax below the cutoff must use the sequential reduction too
	// (same result either way — this exercises the code path).
	idx, val, err := ArgMax(context.Background(), 300, 8, 200, func(i int) (float64, bool) {
		return float64(i % 100), true
	})
	if err != nil {
		t.Fatal(err)
	}
	if idx != 99 || val != 99 {
		t.Fatalf("ArgMax below cutoff = (%d, %v), want (99, 99)", idx, val)
	}
}

func BenchmarkForOverhead(b *testing.B) {
	sink := make([]float64, 1<<16)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				err := For(context.Background(), len(sink), workers, 1024, func(start, end int) error {
					for j := start; j < end; j++ {
						sink[j] = float64(j) * 1.0000001
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
