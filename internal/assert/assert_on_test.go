//go:build kregretdebug

package assert

import (
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
)

// mustPanic runs f and fails the test unless it panics with the
// invariant-violation prefix.
func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Errorf("%s: expected panic, got none", name)
			return
		}
		msg, ok := r.(string)
		if !ok || !strings.HasPrefix(msg, "kregret invariant violated: ") {
			t.Errorf("%s: unexpected panic value %v", name, r)
		}
	}()
	f()
}

// mustNotPanic runs f and fails the test if it panics.
func mustNotPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Errorf("%s: unexpected panic %v", name, r)
		}
	}()
	f()
}

func TestEnabledOn(t *testing.T) {
	if !Enabled {
		t.Fatal("Enabled must be true under the kregretdebug tag")
	}
}

func TestThat(t *testing.T) {
	mustNotPanic(t, "true cond", func() { That(true, "unused") })
	mustPanic(t, "false cond", func() { That(false, "value %d", 7) })
}

func TestFinite(t *testing.T) {
	mustNotPanic(t, "finite", func() { Finite("x", 1.5) })
	mustPanic(t, "nan", func() { Finite("x", math.NaN()) })
	mustPanic(t, "+inf", func() { Finite("x", math.Inf(1)) })
	mustPanic(t, "-inf", func() { Finite("x", math.Inf(-1)) })
}

func TestUnitRange(t *testing.T) {
	eps := 1e-9
	mustNotPanic(t, "interior", func() { UnitRange("r", 0.5, eps) })
	mustNotPanic(t, "lower tolerance", func() { UnitRange("r", -eps/2, eps) })
	mustNotPanic(t, "upper tolerance", func() { UnitRange("r", 1+eps/2, eps) })
	mustPanic(t, "below", func() { UnitRange("r", -2*eps, eps) })
	mustPanic(t, "above", func() { UnitRange("r", 1+2*eps, eps) })
	mustPanic(t, "nan", func() { UnitRange("r", math.NaN(), eps) })
	mustPanic(t, "+inf", func() { UnitRange("r", math.Inf(1), eps) })
}

func TestCriticalRatio(t *testing.T) {
	eps := 1e-9
	mustNotPanic(t, "boundary", func() { CriticalRatio(1, eps) })
	mustNotPanic(t, "interior >1", func() { CriticalRatio(3.5, eps) })
	mustNotPanic(t, "+inf legal", func() { CriticalRatio(math.Inf(1), eps) })
	mustNotPanic(t, "small negative within eps", func() { CriticalRatio(-eps/2, eps) })
	mustPanic(t, "negative", func() { CriticalRatio(-0.1, eps) })
	mustPanic(t, "nan", func() { CriticalRatio(math.NaN(), eps) })
}

func TestNonNegVector(t *testing.T) {
	eps := 1e-9
	mustNotPanic(t, "non-negative", func() { NonNegVector("n", geom.Vector{0, 0.3, 1}, eps) })
	mustNotPanic(t, "within tolerance", func() { NonNegVector("n", geom.Vector{-eps / 2, 1}, eps) })
	mustPanic(t, "negative component", func() { NonNegVector("n", geom.Vector{0.5, -0.5}, eps) })
	mustPanic(t, "nan component", func() { NonNegVector("n", geom.Vector{math.NaN()}, eps) })
}

func TestDownwardClosed(t *testing.T) {
	eps := 1e-9
	// Unit square hull: faces x ≤ 1 and y ≤ 1 contain (1, 0.5).
	normals := []geom.Vector{{1, 0}, {0, 1}}
	offsets := []float64{1, 1}
	inside := []geom.Vector{{1, 0.5}, {0.2, 0.2}}
	mustNotPanic(t, "contained", func() { DownwardClosed(normals, offsets, inside, eps) })
	mustPanic(t, "point outside face", func() {
		DownwardClosed(normals, offsets, []geom.Vector{{1.5, 0}}, eps)
	})
	mustPanic(t, "negative normal", func() {
		DownwardClosed([]geom.Vector{{-1, 0}}, []float64{1}, inside, eps)
	})
	mustPanic(t, "infinite offset", func() {
		DownwardClosed([]geom.Vector{{1, 0}}, []float64{math.Inf(1)}, inside, eps)
	})
}

func TestFeasible(t *testing.T) {
	eps := 1e-9
	mustNotPanic(t, "feasible basis", func() { Feasible("b", []float64{0, 1, 2.5, -eps / 2}, eps) })
	mustPanic(t, "negative basic value", func() { Feasible("b", []float64{1, -0.2}, eps) })
	mustPanic(t, "nan basic value", func() { Feasible("b", []float64{math.NaN()}, eps) })
}
