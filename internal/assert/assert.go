//go:build kregretdebug

// Package assert is the runtime invariant layer of the geometry
// kernel, compiled in only under the `kregretdebug` build tag:
//
//	go test -tags kregretdebug ./...
//
// Without the tag every function is an empty stub and Enabled is a
// false constant, so guarded call sites
//
//	if assert.Enabled {
//		assert.UnitRange("mrr", mrr, geom.LooseEps)
//	}
//
// compile to nothing in release builds. With the tag, a violated
// invariant panics immediately with a descriptive message, turning a
// silent numeric corruption (NaN critical ratio, negative facet
// normal, infeasible simplex basis) into a loud failure at the exact
// step that produced it.
//
// The checked invariants come straight from Peng & Wong (ICDE 2014):
// Conv(S) stays downward-closed, facet normals stay non-negative,
// critical ratios and regret ratios stay in [0,1] (up to tolerance),
// and the simplex tableau stays primal-feasible after each phase.
package assert

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Enabled reports whether invariant checking is compiled in.
const Enabled = true

// That panics with the formatted message when cond is false.
func That(cond bool, format string, args ...any) {
	if !cond {
		fail(format, args...)
	}
}

// Finite panics when x is NaN or ±Inf.
func Finite(name string, x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		fail("%s is not finite: %g", name, x)
	}
}

// UnitRange panics unless x ∈ [−eps, 1+eps] and finite. Regret
// ratios and the mrr of any selection must satisfy this (Lemma 1).
func UnitRange(name string, x, eps float64) {
	if math.IsNaN(x) || x < -eps || x > 1+eps {
		fail("%s = %g outside [0,1] ± %g", name, x, eps)
	}
}

// CriticalRatio panics unless cr is a valid critical ratio: not NaN
// and ≥ −eps. Values above 1 (interior points) and +Inf (the origin
// limit) are legal.
func CriticalRatio(cr, eps float64) {
	if math.IsNaN(cr) || cr < -eps {
		fail("critical ratio %g is negative or NaN", cr)
	}
}

// NonNegVector panics unless every component of v is ≥ −eps. Facet
// normals of the downward-closed hull must satisfy this.
func NonNegVector(name string, v geom.Vector, eps float64) {
	for i, x := range v {
		if math.IsNaN(x) || x < -eps {
			fail("%s has negative or NaN component %d: %g (vector %v)", name, i, x, v)
		}
	}
}

// DownwardClosed panics unless the faces (normals[i]·x = offsets[i])
// describe a downward-closed hull containing every selected point:
// all normals non-negative and n·p ≤ offset + tolerance for each
// point p. This is the geometric precondition of the paper's Lemma 1.
func DownwardClosed(normals []geom.Vector, offsets []float64, pts []geom.Vector, eps float64) {
	for i, n := range normals {
		NonNegVector(fmt.Sprintf("facet normal %d", i), n, eps)
		Finite(fmt.Sprintf("facet offset %d", i), offsets[i])
		for j, p := range pts {
			if d := n.Dot(p); d > offsets[i]+geom.RelEps(d, offsets[i], eps) {
				fail("hull not downward-closed: point %d (%v) violates face %v·x = %g by %g",
					j, p, n, offsets[i], d-offsets[i])
			}
		}
	}
}

// Feasible panics unless every value is ≥ −eps: the primal
// feasibility of a simplex basis (all basic variables non-negative).
func Feasible(name string, vals []float64, eps float64) {
	for i, v := range vals {
		if math.IsNaN(v) || v < -eps {
			fail("%s infeasible: basic value %d = %g", name, i, v)
		}
	}
}

func fail(format string, args ...any) {
	panic("kregret invariant violated: " + fmt.Sprintf(format, args...))
}
