//go:build !kregretdebug

// Release-build stubs: every assertion is an empty function and
// Enabled is a false constant, so `if assert.Enabled { … }` blocks
// are eliminated entirely by the compiler. See assert.go (built under
// the kregretdebug tag) for the real implementations and the package
// documentation.
package assert

import "repro/internal/geom"

// Enabled reports whether invariant checking is compiled in.
const Enabled = false

// That is a no-op without the kregretdebug build tag.
func That(bool, string, ...any) {}

// Finite is a no-op without the kregretdebug build tag.
func Finite(string, float64) {}

// UnitRange is a no-op without the kregretdebug build tag.
func UnitRange(string, float64, float64) {}

// CriticalRatio is a no-op without the kregretdebug build tag.
func CriticalRatio(float64, float64) {}

// NonNegVector is a no-op without the kregretdebug build tag.
func NonNegVector(string, geom.Vector, float64) {}

// DownwardClosed is a no-op without the kregretdebug build tag.
func DownwardClosed([]geom.Vector, []float64, []geom.Vector, float64) {}

// Feasible is a no-op without the kregretdebug build tag.
func Feasible(string, []float64, float64) {}
