//go:build !kregretdebug

package assert

import (
	"math"
	"testing"

	"repro/internal/geom"
)

// Without the kregretdebug tag every assertion must be a silent no-op
// even on wildly invalid inputs, and Enabled must be a false constant
// so `if assert.Enabled { … }` blocks vanish in release builds.
func TestDisabledStubsAreNoOps(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false without the kregretdebug tag")
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("release-build stub panicked: %v", r)
		}
	}()
	That(false, "would panic under kregretdebug")
	Finite("x", math.NaN())
	UnitRange("r", math.Inf(1), 1e-9)
	CriticalRatio(math.NaN(), 1e-9)
	NonNegVector("n", geom.Vector{-1, math.NaN()}, 1e-9)
	DownwardClosed([]geom.Vector{{-1}}, []float64{math.Inf(-1)}, []geom.Vector{{5}}, 1e-9)
	Feasible("b", []float64{-1}, 1e-9)
}
