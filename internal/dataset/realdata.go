package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/geom"
)

// RealName identifies one of the four real datasets of the paper's
// Table III, reproduced here as synthetic stand-ins (see the package
// documentation for why).
type RealName string

// The four datasets of Table III.
const (
	Household RealName = "household" // 6 dims, 903,077 tuples
	NBA       RealName = "nba"       // 5 dims,  21,962 tuples
	Color     RealName = "color"     // 9 dims,  68,040 tuples
	Stocks    RealName = "stocks"    // 5 dims, 122,574 tuples
)

// RealNames lists the stand-ins in the paper's Table III order.
var RealNames = []RealName{Household, NBA, Color, Stocks}

// RealSpec describes a stand-in's shape and the paper's measured
// candidate-set sizes (for reporting alongside ours in Table III).
type RealSpec struct {
	Name       RealName
	Dims       int
	Size       int
	PaperSky   int // |D_sky| reported by the paper
	PaperHappy int // |D_happy| reported by the paper
	PaperConv  int // |D_conv| reported by the paper
}

// Specs returns the Table III metadata for every stand-in.
func Specs() []RealSpec {
	return []RealSpec{
		{Household, 6, 903077, 9832, 1332, 927},
		{NBA, 5, 21962, 447, 75, 65},
		{Color, 9, 68040, 1023, 151, 124},
		{Stocks, 5, 122574, 3042, 449, 396},
	}
}

// Spec returns the metadata for one stand-in.
func Spec(name RealName) (RealSpec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return RealSpec{}, fmt.Errorf("%w: unknown real dataset %q", ErrBadParams, name)
}

// Real generates the named stand-in at its full Table III size.
// Generation is deterministic for a given name.
func Real(name RealName) ([]geom.Vector, error) { return RealScaled(name, 0) }

// RealScaled generates the named stand-in with n tuples (n ≤ 0 means
// the full Table III size). Scaling down keeps the distribution and
// is used by fast tests; Table III itself runs at full size.
func RealScaled(name RealName, n int) ([]geom.Vector, error) {
	spec, err := Spec(name)
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		n = spec.Size
	}
	var pts []geom.Vector
	switch name {
	case Household:
		pts = genStarPlateReal(n, spec.Dims, 0x4005e401d, realTuning{
			stars: 1335, demote: 408, jitter: 0.08, plate: 14700, alpha: 0.12, bulk: 0.33,
		})
	case NBA:
		pts = genStarPlateReal(n, spec.Dims, 0x0b5ba11, realTuning{
			stars: 77, demote: 16, jitter: 0.10, plate: 520, alpha: 0.12, bulk: 0.36,
		})
	case Color:
		pts = genStarPlateReal(n, spec.Dims, 0xc0105, realTuning{
			stars: 153, demote: 28, jitter: 0.05, plate: 1330, alpha: 0.12, bulk: 0.27, groups: 3,
		})
	case Stocks:
		pts = genStarPlateReal(n, spec.Dims, 0x570c5, realTuning{
			stars: 455, demote: 59, jitter: 0.05, plate: 4800, alpha: 0.12, bulk: 0.36,
		})
	}
	return Normalize(pts)
}

// realTuning shapes a stand-in's distribution through three direct
// knobs:
//
//   - stars is the number of "exceptional" tuples placed on a lightly
//     jittered L2 sphere octant: sphere points never dominate each
//     other and, jitter aside, are in convex position, so stars
//     calibrate |D_conv| and |D_happy|.
//   - jitter is the inward radial jitter of the stars; larger values
//     demote more stars from hull-extreme to merely happy (or below).
//   - plate is the number of frontier-hugging tuples sampled inside
//     the tent Conv({p} ∪ VC) of a random star p, as q = λ·p + μ·e_a
//     with λ + μ < 1: subjugated by construction (never happy), with
//     a single-axis boost that keeps p itself from dominating them,
//     so they mostly stay skyline points. plate therefore calibrates
//     |D_sky| − |D_happy|; alpha sets how deep below the frontier
//     they reach (λ ∈ [1 − 2α, 1 − α/4]).
//
// The remaining mass is a correlated bulk well inside the frontier
// that contributes (almost) nothing to any candidate set, exactly as
// the 99%+ of tuples in the paper's real datasets do.
type realTuning struct {
	stars  int
	jitter float64
	plate  int
	alpha  float64
	bulk   float64 // bulk coordinate ceiling; keep below the balanced
	//                star level ≈ 0.8/√d so the bulk stays subjugated
	groups int // >1 enables the product-structured frontier
	demote int // stars demoted from hull-extreme to merely happy
}

// splitDims partitions d dimensions into g nearly equal blocks.
func splitDims(d, g int) []int {
	sizes := make([]int, g)
	for i := range sizes {
		sizes[i] = d / g
	}
	for i := 0; i < d%g; i++ {
		sizes[i]++
	}
	return sizes
}

// StarPlateConfig is the exported form of realTuning for callers who
// want to build custom stand-ins with the same star/plate/bulk
// mixture (see realTuning for the meaning of each knob).
type StarPlateConfig struct {
	Stars  int
	Jitter float64
	Plate  int
	Alpha  float64
	Bulk   float64
}

// StarPlate generates n points of the star/plate/bulk mixture with
// explicit tuning, normalized to (0,1] with per-dimension maximum 1.
func StarPlate(n, d int, seed int64, cfg StarPlateConfig) ([]geom.Vector, error) {
	if err := checkND(n, d); err != nil {
		return nil, err
	}
	if cfg.Stars < 1 || cfg.Bulk <= 0.02 || cfg.Bulk > 1 || cfg.Alpha <= 0 {
		return nil, fmt.Errorf("%w: bad star/plate config %+v", ErrBadParams, cfg)
	}
	pts := genStarPlateReal(n, d, seed, realTuning{
		stars: cfg.Stars, jitter: cfg.Jitter, plate: cfg.Plate,
		alpha: cfg.Alpha, bulk: cfg.Bulk,
	})
	return Normalize(pts)
}

// genStarPlateReal builds the star/plate/bulk mixture described on
// realTuning. Stars are normalized to per-dimension maximum 1 first;
// plates and bulk are generated directly in that normalized space
// (all their coordinates stay below 1), so the final Normalize call
// is a near-no-op and the simplex guarantee for plates survives it.
func genStarPlateReal(n, d int, seed int64, t realTuning) []geom.Vector {
	rng := rand.New(rand.NewSource(seed))
	starN := min(t.stars, n/4)
	plateN := min(t.plate, n/2)

	demoteN := min(t.demote, starN-1)
	extremeN := starN - demoteN
	stars := make([]geom.Vector, 0, starN)
	if t.groups > 1 && d >= t.groups {
		// Product-structured frontier: split the dimensions into
		// `groups` blocks, draw a small convex-position profile set
		// per block and take all combinations at radius exactly 1.
		// Vertex counts multiply while facet counts only add, so
		// high-dimensional hulls stay tractable — and real high-d
		// attributes do come in loosely independent groups (e.g.
		// color moments per channel). Demoted stars are midpoints of
		// two grid stars differing in one block, pulled slightly
		// inward: on (just under) a hull face, hence never extreme,
		// but outside every single tent, hence still happy.
		sizes := splitDims(d, t.groups)
		per := int(math.Round(math.Pow(float64(extremeN), 1/float64(t.groups))))
		if per < 2 {
			per = 2
		}
		profiles := make([][]geom.Vector, t.groups)
		for g, gd := range sizes {
			profiles[g] = make([]geom.Vector, per)
			for i := range profiles[g] {
				v := make(geom.Vector, gd)
				var norm float64
				for j := range v {
					v[j] = 0.08 + math.Abs(rng.NormFloat64())
					norm += v[j] * v[j]
				}
				norm = math.Sqrt(norm)
				if norm <= 0 {
					norm = 1 // unreachable: every addend is ≥ 0.08²
				}
				for j := range v {
					v[j] /= norm
				}
				profiles[g][i] = v
			}
		}
		combo := make([]int, t.groups)
		total := 1
		for range combo {
			total *= per
		}
		for c := 0; c < total && len(stars) < extremeN; c++ {
			p := make(geom.Vector, 0, d)
			for g := range combo {
				p = append(p, profiles[g][combo[g]]...)
			}
			stars = append(stars, p)
			for g := 0; g < t.groups; g++ {
				combo[g]++
				if combo[g] < per {
					break
				}
				combo[g] = 0
			}
		}
		gridN := len(stars)
		for i := 0; i < demoteN && gridN > 1; i++ {
			a := rng.Intn(gridN)
			b := a
			for b == a {
				b = rng.Intn(gridN)
			}
			mid := stars[a].Add(stars[b]).Scale(0.5 * (1 - 0.002 - 0.01*rng.Float64()))
			stars = append(stars, mid)
		}
	} else {
		// Sphere-octant frontier: extreme stars at radius exactly 1
		// (mutually non-dominating, in convex position), demoted
		// stars jittered inward so they leave the hull but, in a
		// sparse high-dimensional frontier, stay un-subjugated.
		for i := 0; i < starN; i++ {
			p := make(geom.Vector, d)
			var norm float64
			for j := range p {
				p[j] = 0.08 + math.Abs(rng.NormFloat64())
				norm += p[j] * p[j]
			}
			norm = math.Sqrt(norm)
			if norm <= 0 {
				norm = 1 // unreachable: every addend is ≥ 0.08²
			}
			r := 1.0
			if i >= extremeN {
				r = 1 - t.jitter*(0.3+0.7*rng.Float64())
			}
			for j := range p {
				p[j] *= r / norm
			}
			stars = append(stars, p)
		}
	}
	norm, err := Normalize(stars)
	if err == nil {
		stars = norm
	}

	pts := make([]geom.Vector, 0, n)
	pts = append(pts, stars...)
	for i := 0; i < plateN && len(pts) < n; i++ {
		// A frontier-hugging point inside the tent of a random star
		// p: q = λ·p + μ·e_a with λ + μ < 1 (subjugated by p, hence
		// never happy) and q_a > p_a (so p itself does not dominate
		// it); λ near 1 keeps q high enough that other stars rarely
		// dominate it, so it stays a skyline point. The alpha knob
		// sets how deep the plate reaches (λ ∈ [1−2·alpha, 1−alpha/4]).
		p := stars[rng.Intn(len(stars))]
		lam := 1 - t.alpha/4 - 1.75*t.alpha*rng.Float64()
		a := rng.Intn(d)
		u := 0.05 + 0.95*rng.Float64()
		mu := 0.995 * (1 - lam) * (p[a] + u*(1-p[a]))
		q := make(geom.Vector, d)
		for j := range q {
			q[j] = math.Max(minCoord, lam*p[j])
		}
		q[a] += mu
		pts = append(pts, q)
	}
	for len(pts) < n {
		quality := rng.Float64()
		p := make(geom.Vector, d)
		for j := range p {
			p[j] = 0.02 + (t.bulk-0.02)*(0.5*quality+0.5*rng.Float64())
		}
		pts = append(pts, p)
	}
	rng.Shuffle(len(pts), func(a, b int) { pts[a], pts[b] = pts[b], pts[a] })
	return pts
}

// Summary holds quick descriptive statistics of a dataset, used by
// the CLI tools.
type Summary struct {
	N, D       int
	Min, Max   geom.Vector
	MedianSum  float64
	MeanSum    float64
	CorrFactor float64 // mean pairwise coordinate correlation proxy
}

// Summarize computes a Summary.
func Summarize(pts []geom.Vector) (Summary, error) {
	if len(pts) == 0 {
		return Summary{}, fmt.Errorf("%w: no points", ErrBadParams)
	}
	d := len(pts[0])
	s := Summary{N: len(pts), D: d}
	s.Min = pts[0].Clone()
	s.Max = pts[0].Clone()
	sums := make([]float64, len(pts))
	for i, p := range pts {
		if len(p) != d {
			return Summary{}, fmt.Errorf("%w: point %d has dimension %d, want %d", ErrBadParams, i, len(p), d)
		}
		for j, x := range p {
			s.Min[j] = math.Min(s.Min[j], x)
			s.Max[j] = math.Max(s.Max[j], x)
		}
		sums[i] = p.Sum()
		s.MeanSum += sums[i]
	}
	s.MeanSum /= float64(len(pts))
	sort.Float64s(sums)
	s.MedianSum = sums[len(sums)/2]
	// Correlation proxy: variance of coordinate sums relative to the
	// independent case (ratio > 1 means positively correlated
	// dimensions, < 1 anti-correlated).
	var varSum, varCoord float64
	meanCoord := s.MeanSum / float64(d)
	for _, p := range pts {
		dv := p.Sum() - s.MeanSum
		varSum += dv * dv
		for _, x := range p {
			dc := x - meanCoord
			varCoord += dc * dc
		}
	}
	varSum /= float64(len(pts))
	varCoord /= float64(len(pts) * d)
	if varCoord > 0 {
		s.CorrFactor = varSum / (varCoord * float64(d))
	}
	return s, nil
}
