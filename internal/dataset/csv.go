package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/geom"
)

// ErrBadCSV flags malformed CSV input.
var ErrBadCSV = errors.New("dataset: bad csv")

// ReadCSV parses points from CSV. Every record must have the same
// number of numeric fields; an optional single header row (any
// non-numeric first record) is skipped. Labels are not supported —
// every field must parse as a float.
func ReadCSV(r io.Reader) ([]geom.Vector, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated manually for better messages
	var pts []geom.Vector
	d := -1
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadCSV, err)
		}
		line++
		p := make(geom.Vector, len(rec))
		ok := true
		for j, f := range rec {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				ok = false
				break
			}
			p[j] = v
		}
		if !ok {
			if line == 1 {
				continue // header row
			}
			return nil, fmt.Errorf("%w: non-numeric field at line %d", ErrBadCSV, line)
		}
		if d < 0 {
			d = len(p)
		} else if len(p) != d {
			return nil, fmt.Errorf("%w: line %d has %d fields, want %d", ErrBadCSV, line, len(p), d)
		}
		pts = append(pts, p)
	}
	return pts, nil
}

// ReadCSVFile reads points from a CSV file on disk.
func ReadCSVFile(path string) (pts []geom.Vector, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { err = errors.Join(err, f.Close()) }()
	return ReadCSV(f)
}

// WriteCSV writes points as CSV with full float64 round-trip
// precision and an optional header.
func WriteCSV(w io.Writer, pts []geom.Vector, header []string) error {
	cw := csv.NewWriter(w)
	if len(header) > 0 {
		if len(pts) > 0 && len(header) != len(pts[0]) {
			return fmt.Errorf("%w: header has %d fields, points have %d", ErrBadCSV, len(header), len(pts[0]))
		}
		if err := cw.Write(header); err != nil {
			return err
		}
	}
	rec := make([]string, 0, 16)
	for _, p := range pts {
		rec = rec[:0]
		for _, x := range p {
			rec = append(rec, strconv.FormatFloat(x, 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes points to a CSV file on disk.
func WriteCSVFile(path string, pts []geom.Vector, header []string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, pts, header); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}
