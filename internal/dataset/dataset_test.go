package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestGeneratorShapes(t *testing.T) {
	type gen func() ([]geom.Vector, error)
	cases := map[string]gen{
		"independent":    func() ([]geom.Vector, error) { return Independent(100, 4, 1) },
		"correlated":     func() ([]geom.Vector, error) { return Correlated(100, 4, 1) },
		"anticorrelated": func() ([]geom.Vector, error) { return AntiCorrelated(100, 4, 1) },
		"clustered":      func() ([]geom.Vector, error) { return Clustered(100, 4, 3, 1) },
	}
	for name, g := range cases {
		pts, err := g()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(pts) != 100 {
			t.Fatalf("%s: %d points", name, len(pts))
		}
		for i, p := range pts {
			if len(p) != 4 {
				t.Fatalf("%s: point %d has dim %d", name, i, len(p))
			}
			for j, x := range p {
				if !(x > 0) || x > 1 {
					t.Fatalf("%s: point %d coord %d = %v outside (0,1]", name, i, j, x)
				}
			}
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a, _ := AntiCorrelated(50, 3, 7)
	b, _ := AntiCorrelated(50, 3, 7)
	for i := range a {
		if !a[i].Equal(b[i], 0) {
			t.Fatal("same seed produced different data")
		}
	}
	c, _ := AntiCorrelated(50, 3, 8)
	same := true
	for i := range a {
		if !a[i].Equal(c[i], 0) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGeneratorErrors(t *testing.T) {
	if _, err := Independent(-1, 3, 1); err == nil {
		t.Fatal("negative n accepted")
	}
	if _, err := Correlated(10, 0, 1); err == nil {
		t.Fatal("zero d accepted")
	}
	if _, err := Clustered(10, 3, 0, 1); err == nil {
		t.Fatal("zero clusters accepted")
	}
}

func TestAntiCorrelatedIsAntiCorrelated(t *testing.T) {
	pts, err := AntiCorrelated(5000, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Summarize(pts)
	if err != nil {
		t.Fatal(err)
	}
	if s.CorrFactor >= 1 {
		t.Fatalf("anti-correlated CorrFactor = %v, want < 1", s.CorrFactor)
	}
	c, _ := Correlated(5000, 5, 3)
	sc, _ := Summarize(c)
	if sc.CorrFactor <= 1 {
		t.Fatalf("correlated CorrFactor = %v, want > 1", sc.CorrFactor)
	}
}

func TestNormalize(t *testing.T) {
	pts := []geom.Vector{{2, 10}, {4, 5}}
	norm, err := Normalize(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !norm[0].Equal(geom.Vector{0.5, 1}, 1e-12) || !norm[1].Equal(geom.Vector{1, 0.5}, 1e-12) {
		t.Fatalf("Normalize = %v", norm)
	}
	// Input untouched.
	if pts[0][0] != 2 {
		t.Fatal("Normalize modified input")
	}
	if _, err := Normalize(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := Normalize([]geom.Vector{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged accepted")
	}
	if _, err := Normalize([]geom.Vector{{0, 0}}); err == nil {
		t.Fatal("all-zero dimension accepted")
	}
	if _, err := Normalize([]geom.Vector{{math.NaN(), 1}}); err == nil {
		t.Fatal("NaN accepted")
	}
	// Zero coordinates get floored to stay strictly positive.
	norm, err = Normalize([]geom.Vector{{0, 1}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !(norm[0][0] > 0) {
		t.Fatalf("zero coordinate not floored: %v", norm[0])
	}
}

func TestCSVRoundTrip(t *testing.T) {
	pts := []geom.Vector{{0.125, 0.5}, {1, 0.0009765625}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, pts, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("round trip size %d", len(got))
	}
	for i := range pts {
		if !got[i].Equal(pts[i], 0) {
			t.Fatalf("round trip %d: %v vs %v", i, got[i], pts[i])
		}
	}
}

func TestCSVHeaderHandling(t *testing.T) {
	got, err := ReadCSV(strings.NewReader("x,y\n1,2\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1][0] != 3 {
		t.Fatalf("ReadCSV with header = %v", got)
	}
	if _, err := ReadCSV(strings.NewReader("1,2\nbad,4\n")); err == nil {
		t.Fatal("non-numeric body accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Fatal("ragged rows accepted")
	}
	if err := WriteCSV(&bytes.Buffer{}, []geom.Vector{{1, 2}}, []string{"only"}); err == nil {
		t.Fatal("mismatched header accepted")
	}
}

func TestCSVFiles(t *testing.T) {
	path := t.TempDir() + "/pts.csv"
	pts := []geom.Vector{{0.25, 0.75}}
	if err := WriteCSVFile(path, pts, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Equal(pts[0], 0) {
		t.Fatalf("file round trip: %v", got)
	}
	if _, err := ReadCSVFile(path + ".missing"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSpecs(t *testing.T) {
	specs := Specs()
	if len(specs) != 4 {
		t.Fatalf("%d specs", len(specs))
	}
	hh := specs[0]
	if hh.Name != Household || hh.Dims != 6 || hh.Size != 903077 {
		t.Fatalf("household spec %+v", hh)
	}
	if _, err := Spec("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRealScaledShapes(t *testing.T) {
	for _, name := range RealNames {
		spec, _ := Spec(name)
		pts, err := RealScaled(name, 2000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(pts) != 2000 {
			t.Fatalf("%s: %d points", name, len(pts))
		}
		if len(pts[0]) != spec.Dims {
			t.Fatalf("%s: dim %d, want %d", name, len(pts[0]), spec.Dims)
		}
		// Normalized: every dimension max 1 and strictly positive.
		for j := 0; j < spec.Dims; j++ {
			maxv := 0.0
			for _, p := range pts {
				if !(p[j] > 0) {
					t.Fatalf("%s: non-positive coordinate", name)
				}
				maxv = math.Max(maxv, p[j])
			}
			if math.Abs(maxv-1) > 1e-12 {
				t.Fatalf("%s: dim %d max %v, want 1", name, j, maxv)
			}
		}
	}
	if _, err := RealScaled("bogus", 10); err == nil {
		t.Fatal("bogus dataset accepted")
	}
}

func TestSummarizeErrors(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := Summarize([]geom.Vector{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged accepted")
	}
}
