// Package dataset provides the data substrate for the experiments:
// the synthetic generators used by the paper's Section V-C
// (independent / correlated / anti-correlated in the style of
// Börzsönyi, Kossmann and Stocker, ICDE 2001), normalization to the
// paper's (0,1] domain, CSV input/output, and synthetic stand-ins for
// the four real datasets of Table III.
//
// The paper's real datasets (household from ipums.org, nba from
// basketballreference.com, color from the UCI KDD archive, stocks
// from pages.swcp.com) are not redistributable and not reachable from
// this offline build, so realdata.go generates stand-ins with the
// same name, dimensionality and cardinality, tuned so the candidate
// set sizes |D_sky|, |D_happy| and |D_conv| have the same character
// as Table III (a few thousand / a few hundred / slightly fewer).
// Every experimental claim reproduced from the paper depends on that
// structure, not on the original attribute semantics; see DESIGN.md §4.
package dataset

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// ErrBadParams flags invalid generator parameters.
var ErrBadParams = errors.New("dataset: bad parameters")

// minCoord is the floor applied to every generated coordinate so the
// paper's strict-positivity assumption holds.
const minCoord = 1e-6

func checkND(n, d int) error {
	if n < 0 {
		return fmt.Errorf("%w: n = %d", ErrBadParams, n)
	}
	if d < 1 {
		return fmt.Errorf("%w: d = %d", ErrBadParams, d)
	}
	return nil
}

// clampCoord forces a coordinate into [minCoord, 1].
func clampCoord(x float64) float64 {
	switch {
	case x < minCoord:
		return minCoord
	case x > 1:
		return 1
	}
	return x
}

// Independent generates n points with coordinates drawn uniformly and
// independently from (0, 1].
func Independent(n, d int, seed int64) ([]geom.Vector, error) {
	if err := checkND(n, d); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Vector, n)
	for i := range pts {
		p := make(geom.Vector, d)
		for j := range p {
			p[j] = clampCoord(rng.Float64())
		}
		pts[i] = p
	}
	return pts, nil
}

// Correlated generates points clustered around the main diagonal: a
// shared base level plus small per-dimension jitter, the regime where
// skylines are small.
func Correlated(n, d int, seed int64) ([]geom.Vector, error) {
	if err := checkND(n, d); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Vector, n)
	for i := range pts {
		base := rng.Float64()
		p := make(geom.Vector, d)
		for j := range p {
			p[j] = clampCoord(base + rng.NormFloat64()*0.05)
		}
		pts[i] = p
	}
	return pts, nil
}

// AntiCorrelated generates points concentrated near a hyperplane
// Σx_j ≈ const, so that a good value in one dimension tends to come
// with bad values elsewhere — the adversarial regime for skyline and
// regret queries, and the default workload of the paper's Section
// V-C. The construction follows the original skyline paper: draw the
// plate level from a narrow normal distribution around ½, then apply
// sum-preserving random transfers between coordinate pairs.
func AntiCorrelated(n, d int, seed int64) ([]geom.Vector, error) {
	if err := checkND(n, d); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Vector, n)
	for i := range pts {
		base := 0.5 + rng.NormFloat64()*0.05
		base = math.Min(math.Max(base, 0.05), 0.95)
		p := make(geom.Vector, d)
		for j := range p {
			p[j] = base
		}
		// Sum-preserving transfers spread mass across dimensions.
		for t := 0; t < 3*d; t++ {
			a, b := rng.Intn(d), rng.Intn(d)
			if a == b {
				continue
			}
			m := math.Min(p[a]-0, 1-p[b])
			if m <= 0 {
				continue
			}
			x := rng.Float64() * m
			p[a] -= x
			p[b] += x
		}
		for j := range p {
			p[j] = clampCoord(p[j])
		}
		pts[i] = p
	}
	return pts, nil
}

// Clustered generates a mixture of c Gaussian clusters with random
// centers in (0.2, 0.8)^d and per-cluster spread, a rough model of
// real multi-modal data.
func Clustered(n, d, c int, seed int64) ([]geom.Vector, error) {
	if err := checkND(n, d); err != nil {
		return nil, err
	}
	if c < 1 {
		return nil, fmt.Errorf("%w: clusters = %d", ErrBadParams, c)
	}
	rng := rand.New(rand.NewSource(seed))
	centers := make([]geom.Vector, c)
	spread := make([]float64, c)
	for i := range centers {
		ctr := make(geom.Vector, d)
		for j := range ctr {
			ctr[j] = 0.2 + 0.6*rng.Float64()
		}
		centers[i] = ctr
		spread[i] = 0.02 + 0.08*rng.Float64()
	}
	pts := make([]geom.Vector, n)
	for i := range pts {
		k := rng.Intn(c)
		p := make(geom.Vector, d)
		for j := range p {
			p[j] = clampCoord(centers[k][j] + rng.NormFloat64()*spread[k])
		}
		pts[i] = p
	}
	return pts, nil
}

// Normalize rescales every dimension of pts so that its maximum is
// exactly 1 and every coordinate stays strictly positive — the
// paper's standing normalization (zero coordinates are floored to a
// tiny positive value, the paper's "add a very small positive value"
// convention). The input is not modified. It returns an error for
// empty input, mixed dimensionality, non-finite or negative
// coordinates, or a dimension whose maximum is not positive; negate
// or shift smaller-is-better attributes before normalizing.
func Normalize(pts []geom.Vector) ([]geom.Vector, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("%w: no points", ErrBadParams)
	}
	d := len(pts[0])
	if d == 0 {
		return nil, fmt.Errorf("%w: zero-dimensional points", ErrBadParams)
	}
	maxs := make([]float64, d)
	for i, p := range pts {
		if len(p) != d {
			return nil, fmt.Errorf("%w: point %d has dimension %d, want %d", ErrBadParams, i, len(p), d)
		}
		if !p.IsFinite() {
			return nil, fmt.Errorf("%w: point %d has non-finite coordinates", ErrBadParams, i)
		}
		for j, x := range p {
			if x < 0 {
				return nil, fmt.Errorf("%w: point %d has negative coordinate %g on dimension %d (negate or shift smaller-is-better attributes first)",
					ErrBadParams, i, x, j)
			}
			if x > maxs[j] {
				maxs[j] = x
			}
		}
	}
	for j, m := range maxs {
		if m <= 0 {
			return nil, fmt.Errorf("%w: dimension %d has maximum %g, need positive", ErrBadParams, j, m)
		}
	}
	out := make([]geom.Vector, len(pts))
	for i, p := range pts {
		q := make(geom.Vector, d)
		for j, x := range p {
			q[j] = clampCoord(x / maxs[j])
		}
		out[i] = q
	}
	return out, nil
}
