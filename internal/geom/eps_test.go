package geom

import (
	"math"
	"testing"
)

func TestApproxEqual(t *testing.T) {
	// A power-of-two epsilon keeps the boundary arithmetic exact, so
	// the |a−b| == eps cases test the boundary and not rounding noise.
	eps := 0.25
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name string
		a, b float64
		want bool
	}{
		{"identical", 0.5, 0.5, true},
		{"exact boundary |a-b| == eps", 1, 1 + eps, true},
		{"just inside", 1, 1 + eps/2, true},
		{"just outside", 1, 1 + 2*eps, false},
		{"negative side boundary", -1 - eps, -1, true},
		{"far apart", 0, 1, false},
		{"both zero signed", 0.0, math.Copysign(0, -1), true},
		{"nan left", nan, 0, false},
		{"nan right", 0, nan, false},
		{"nan both", nan, nan, false},
		{"inf vs inf", inf, inf, false}, // Inf−Inf = NaN: not equal
		{"inf vs finite", inf, 1, false},
		{"-inf vs finite", -inf, 1, false},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, eps); got != c.want {
			t.Errorf("%s: ApproxEqual(%g, %g, %g) = %v, want %v", c.name, c.a, c.b, eps, got, c.want)
		}
	}
}

func TestLessEqAndLess(t *testing.T) {
	eps := 1e-9
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name           string
		a, b           float64
		lessEq, strict bool
	}{
		{"clearly less", 0, 1, true, true},
		{"equal", 1, 1, true, false},
		{"a barely above b", 1 + eps/2, 1, true, false},
		{"exact eps above", 1 + eps, 1, true, false},
		{"two eps above", 1 + 2*eps, 1, false, false},
		{"a barely below b", 1 - eps/2, 1, true, false},
		{"a two eps below b", 1 - 2*eps, 1, true, true},
		{"nan a", nan, 1, false, false},
		{"nan b", 1, nan, false, false},
		{"-inf below everything", -inf, 0, true, true},
		{"+inf above everything", inf, 0, false, false},
		{"finite below +inf", 0, inf, true, true},
	}
	for _, c := range cases {
		if got := LessEq(c.a, c.b, eps); got != c.lessEq {
			t.Errorf("%s: LessEq(%g, %g, %g) = %v, want %v", c.name, c.a, c.b, eps, got, c.lessEq)
		}
		if got := Less(c.a, c.b, eps); got != c.strict {
			t.Errorf("%s: Less(%g, %g, %g) = %v, want %v", c.name, c.a, c.b, eps, got, c.strict)
		}
	}
}

func TestZero(t *testing.T) {
	eps := 1e-9
	cases := []struct {
		name string
		x    float64
		want bool
	}{
		{"exact zero", 0, true},
		{"negative zero", math.Copysign(0, -1), true},
		{"exact boundary +eps", eps, true},
		{"exact boundary -eps", -eps, true},
		{"just outside", 2 * eps, false},
		{"one", 1, false},
		{"nan", math.NaN(), false},
		{"+inf", math.Inf(1), false},
		{"-inf", math.Inf(-1), false},
	}
	for _, c := range cases {
		if got := Zero(c.x, eps); got != c.want {
			t.Errorf("%s: Zero(%g, %g) = %v, want %v", c.name, c.x, eps, got, c.want)
		}
	}
}

func TestClamp01(t *testing.T) {
	cases := []struct {
		name  string
		x     float64
		want  float64
		isNaN bool
	}{
		{x: -0.1, want: 0, name: "below"},
		{x: 0, want: 0, name: "lower boundary"},
		{x: 0.5, want: 0.5, name: "interior"},
		{x: 1, want: 1, name: "upper boundary"},
		{x: 1.1, want: 1, name: "above"},
		{x: math.Inf(-1), want: 0, name: "-inf"},
		{x: math.Inf(1), want: 1, name: "+inf"},
		// NaN compares false to every bound, so it passes through —
		// callers must guard NaN before clamping.
		{x: math.NaN(), isNaN: true, name: "nan passes through"},
	}
	for _, c := range cases {
		got := Clamp01(c.x)
		if c.isNaN {
			if !math.IsNaN(got) {
				t.Errorf("%s: Clamp01(NaN) = %g, want NaN", c.name, got)
			}
			continue
		}
		if got != c.want {
			t.Errorf("%s: Clamp01(%g) = %g, want %g", c.name, c.x, got, c.want)
		}
	}
}

func TestRelEpsBoundaries(t *testing.T) {
	eps := 1e-9
	cases := []struct {
		name string
		a, b float64
		want float64
	}{
		{"both zero", 0, 0, eps},
		{"unit scale", 1, 0, 2 * eps},
		{"larger magnitude wins", -3, 2, 4 * eps},
		{"big operands scale up", 1e6, 0, eps * (1 + 1e6)},
	}
	for _, c := range cases {
		if got := RelEps(c.a, c.b, eps); !ApproxEqual(got, c.want, 1e-18) {
			t.Errorf("%s: RelEps(%g, %g, %g) = %g, want %g", c.name, c.a, c.b, eps, got, c.want)
		}
	}
	if got := RelEps(math.Inf(1), 0, eps); !math.IsInf(got, 1) {
		t.Errorf("RelEps(+Inf, 0, eps) = %g, want +Inf", got)
	}
	if got := RelEps(math.NaN(), 0, eps); !math.IsNaN(got) {
		t.Errorf("RelEps(NaN, 0, eps) = %g, want NaN", got)
	}
}

// TestEpsOrdering pins the relation between the two package
// tolerances that the analyzers and assertions rely on.
func TestEpsOrdering(t *testing.T) {
	if !(Eps > 0 && LooseEps > Eps && LooseEps < 1) {
		t.Fatalf("tolerance ordering broken: Eps=%g LooseEps=%g", Eps, LooseEps)
	}
}
