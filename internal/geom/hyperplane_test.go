package geom

import (
	"math"
	"testing"
)

func TestHyperplaneSide(t *testing.T) {
	h := Hyperplane{Normal: Vector{1, 1}, Offset: 1}
	if got := h.Side(Vector{0.2, 0.2}, Eps); got != -1 {
		t.Fatalf("below point classified %d", got)
	}
	if got := h.Side(Vector{0.5, 0.5}, Eps); got != 0 {
		t.Fatalf("on point classified %d", got)
	}
	if got := h.Side(Vector{0.9, 0.9}, Eps); got != 1 {
		t.Fatalf("above point classified %d", got)
	}
}

func TestHyperplaneEval(t *testing.T) {
	h := Hyperplane{Normal: Vector{2, 0}, Offset: 1}
	if got := h.Eval(Vector{1, 5}); got != 1 {
		t.Fatalf("Eval = %v, want 1", got)
	}
}

func TestRayIntersection(t *testing.T) {
	h := Hyperplane{Normal: Vector{1, 1}, Offset: 1}
	tt, ok := h.RayIntersection(Vector{1, 1})
	if !ok || !ApproxEqual(tt, 0.5, 1e-12) {
		t.Fatalf("RayIntersection = (%v, %v), want (0.5, true)", tt, ok)
	}
	// Parallel ray.
	h2 := Hyperplane{Normal: Vector{0, 1}, Offset: 1}
	if _, ok := h2.RayIntersection(Vector{1, 0}); ok {
		t.Fatal("parallel ray should not intersect")
	}
	// Negative-t hit.
	h3 := Hyperplane{Normal: Vector{-1, 0}, Offset: 1}
	if _, ok := h3.RayIntersection(Vector{1, 0}); ok {
		t.Fatal("behind-origin hit should be rejected")
	}
}

func TestHyperplaneValid(t *testing.T) {
	if !(Hyperplane{Normal: Vector{1, 0}, Offset: 1}).Valid() {
		t.Fatal("valid hyperplane rejected")
	}
	if (Hyperplane{Normal: Vector{0, 0}, Offset: 1}).Valid() {
		t.Fatal("zero normal accepted")
	}
	if (Hyperplane{Normal: Vector{1, 0}, Offset: math.NaN()}).Valid() {
		t.Fatal("NaN offset accepted")
	}
}

func TestEpsHelpers(t *testing.T) {
	if !ApproxEqual(1, 1+1e-12, 1e-9) {
		t.Fatal("ApproxEqual too strict")
	}
	if !LessEq(1, 1, 0) || LessEq(2, 1, 0.5) {
		t.Fatal("LessEq wrong")
	}
	if !Less(1, 2, 0.5) || Less(1.9, 2, 0.5) {
		t.Fatal("Less wrong")
	}
	if !Zero(1e-12, 1e-9) || Zero(1e-3, 1e-9) {
		t.Fatal("Zero wrong")
	}
	if Clamp01(-1) != 0 || Clamp01(2) != 1 || Clamp01(0.5) != 0.5 {
		t.Fatal("Clamp01 wrong")
	}
}

func TestRelEps(t *testing.T) {
	if RelEps(0, 0, 1e-9) != 1e-9 {
		t.Fatal("unit-range RelEps")
	}
	if RelEps(100, -3, 1e-9) != 1e-9*101 {
		t.Fatalf("scaled RelEps = %v", RelEps(100, -3, 1e-9))
	}
}
