// Package geom provides the d-dimensional vector and tolerance
// primitives shared by every geometric component of the repository:
// the skyline and happy-point filters, the double-description dual
// hull, the LP solver and the k-regret algorithms themselves.
//
// All coordinates are float64. Comparisons between derived quantities
// (dot products, norms, ratios) go through the tolerance helpers in
// eps.go so that every package agrees on what "equal" means.
package geom

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Vector is a point or direction in R^d. The zero-length vector is
// valid and represents a 0-dimensional point.
type Vector []float64

// ErrDimensionMismatch is returned when two vectors of different
// lengths are combined.
var ErrDimensionMismatch = errors.New("geom: dimension mismatch")

// NewVector returns a zero vector of dimension d.
func NewVector(d int) Vector { return make(Vector, d) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Dim returns the dimensionality of v.
func (v Vector) Dim() int { return len(v) }

// Dot returns the dot product v·w. It panics if the dimensions
// differ; use CheckSameDim first when the inputs are untrusted.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("geom: Dot dimension mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Norm returns the Euclidean norm ‖v‖.
func (v Vector) Norm() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	//kregret:allow naninf: s is a sum of squares, never negative
	return math.Sqrt(s)
}

// Norm1 returns the L1 norm Σ|v_i|.
func (v Vector) Norm1() float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// Sum returns Σ v_i (no absolute values).
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Add returns v + w as a new vector.
func (v Vector) Add(w Vector) Vector {
	mustSameDim(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v − w as a new vector.
func (v Vector) Sub(w Vector) Vector {
	mustSameDim(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns c·v as a new vector.
func (v Vector) Scale(c float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = c * v[i]
	}
	return out
}

// Normalize returns v/‖v‖. Returns an error if ‖v‖ is zero (within
// tolerance) or not finite.
func (v Vector) Normalize() (Vector, error) {
	n := v.Norm()
	if !math.IsInf(n, 0) && n > Eps {
		return v.Scale(1 / n), nil
	}
	return nil, fmt.Errorf("geom: cannot normalize vector with norm %g", n)
}

// Equal reports whether v and w agree component-wise within
// tolerance eps.
func (v Vector) Equal(w Vector, eps float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > eps {
			return false
		}
	}
	return true
}

// IsFinite reports whether every component is a finite number.
func (v Vector) IsFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// AllPositive reports whether every component is strictly positive.
func (v Vector) AllPositive() bool {
	for _, x := range v {
		if x <= 0 {
			return false
		}
	}
	return true
}

// NonNegative reports whether every component is ≥ −eps.
func (v Vector) NonNegative(eps float64) bool {
	for _, x := range v {
		if x < -eps {
			return false
		}
	}
	return true
}

// MaxComponent returns the index and value of the largest component.
// For the empty vector it returns (-1, -Inf).
func (v Vector) MaxComponent() (int, float64) {
	idx, best := -1, math.Inf(-1)
	for i, x := range v {
		if x > best {
			idx, best = i, x
		}
	}
	return idx, best
}

// String renders v as "(x1, x2, …)" with compact formatting.
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, x := range v {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(strconv.FormatFloat(x, 'g', 6, 64))
	}
	b.WriteByte(')')
	return b.String()
}

// CheckSameDim returns ErrDimensionMismatch when the vectors have
// different lengths.
func CheckSameDim(v, w Vector) error {
	if len(v) != len(w) {
		return fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	return nil
}

func mustSameDim(v, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("geom: dimension mismatch %d vs %d", len(v), len(w)))
	}
}

// Basis returns the i-th standard basis vector in dimension d — the
// paper's "virtual corner point" vc_i.
func Basis(d, i int) Vector {
	if i < 0 || i >= d {
		panic(fmt.Sprintf("geom: Basis index %d out of range for dimension %d", i, d))
	}
	v := make(Vector, d)
	v[i] = 1
	return v
}

// Dominates reports whether p dominates q in the skyline sense:
// p ≥ q on every dimension and p > q on at least one, using strict
// floating-point comparison. The two vectors must have equal length.
func Dominates(p, q Vector) bool {
	mustSameDim(p, q)
	strict := false
	for i := range p {
		if p[i] < q[i] {
			return false
		}
		if p[i] > q[i] {
			strict = true
		}
	}
	return strict
}
