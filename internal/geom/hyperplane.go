package geom

import (
	"fmt"
	"math"
)

// Hyperplane is the set {x : Normal·x = Offset}. For the hulls in
// this library normals are non-negative and offsets are positive for
// every facet that does not pass through the origin (the only facets
// the paper's Lemma 1 cares about).
type Hyperplane struct {
	Normal Vector
	Offset float64
}

// Side classifies a point against the hyperplane with tolerance eps:
// −1 below (Normal·p < Offset), 0 on, +1 above.
func (h Hyperplane) Side(p Vector, eps float64) int {
	v := h.Normal.Dot(p) - h.Offset
	switch {
	case v > eps:
		return 1
	case v < -eps:
		return -1
	}
	return 0
}

// Eval returns Normal·p − Offset (positive above, negative below).
func (h Hyperplane) Eval(p Vector) float64 { return h.Normal.Dot(p) - h.Offset }

// RayIntersection returns the scale t ≥ 0 such that t·q lies on the
// hyperplane, i.e. the intersection of ray 0→q with h. The second
// return value is false when the ray is parallel to h (Normal·q ≈ 0)
// or would hit it at negative t.
func (h Hyperplane) RayIntersection(q Vector) (float64, bool) {
	den := h.Normal.Dot(q)
	if Zero(den, Eps) {
		return 0, false
	}
	t := h.Offset / den
	if t < 0 {
		return 0, false
	}
	return t, true
}

// String renders the hyperplane as "n·x = c".
func (h Hyperplane) String() string {
	return fmt.Sprintf("%v·x = %g", h.Normal, h.Offset)
}

// Valid reports whether the hyperplane has a finite, non-zero normal
// and finite offset.
func (h Hyperplane) Valid() bool {
	if !h.Normal.IsFinite() || math.IsNaN(h.Offset) || math.IsInf(h.Offset, 0) {
		return false
	}
	return h.Normal.Norm() > Eps
}
