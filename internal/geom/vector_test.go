package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDotBasics(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := v.Dot(NewVector(3)); got != 0 {
		t.Fatalf("Dot with zero = %v, want 0", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestNorms(t *testing.T) {
	v := Vector{3, -4}
	if got := v.Norm(); got != 5 {
		t.Fatalf("Norm = %v, want 5", got)
	}
	if got := v.Norm1(); got != 7 {
		t.Fatalf("Norm1 = %v, want 7", got)
	}
	if got := v.Sum(); got != -1 {
		t.Fatalf("Sum = %v, want -1", got)
	}
}

func TestAddSubScale(t *testing.T) {
	v := Vector{1, 2}
	w := Vector{3, 5}
	if got := v.Add(w); !got.Equal(Vector{4, 7}, 0) {
		t.Fatalf("Add = %v", got)
	}
	if got := w.Sub(v); !got.Equal(Vector{2, 3}, 0) {
		t.Fatalf("Sub = %v", got)
	}
	if got := v.Scale(-2); !got.Equal(Vector{-2, -4}, 0) {
		t.Fatalf("Scale = %v", got)
	}
	// Originals untouched.
	if !v.Equal(Vector{1, 2}, 0) || !w.Equal(Vector{3, 5}, 0) {
		t.Fatal("operands modified")
	}
}

func TestNormalize(t *testing.T) {
	v := Vector{3, 4}
	n, err := v.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if !ApproxEqual(n.Norm(), 1, 1e-12) {
		t.Fatalf("normalized norm = %v", n.Norm())
	}
	if _, err := (Vector{0, 0}).Normalize(); err == nil {
		t.Fatal("expected error normalizing zero vector")
	}
	if _, err := (Vector{math.Inf(1), 0}).Normalize(); err == nil {
		t.Fatal("expected error normalizing infinite vector")
	}
}

func TestCloneIndependence(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 9
	if v[0] != 1 {
		t.Fatal("Clone aliases original")
	}
}

func TestIsFinite(t *testing.T) {
	if !(Vector{1, 2}).IsFinite() {
		t.Fatal("finite vector reported non-finite")
	}
	if (Vector{1, math.NaN()}).IsFinite() {
		t.Fatal("NaN not detected")
	}
	if (Vector{math.Inf(-1)}).IsFinite() {
		t.Fatal("Inf not detected")
	}
}

func TestPositivity(t *testing.T) {
	if !(Vector{0.1, 2}).AllPositive() {
		t.Fatal("positive vector rejected")
	}
	if (Vector{0, 1}).AllPositive() {
		t.Fatal("zero coordinate accepted as positive")
	}
	if !(Vector{0, 1}).NonNegative(0) {
		t.Fatal("non-negative vector rejected")
	}
	if (Vector{-1e-3, 1}).NonNegative(1e-6) {
		t.Fatal("negative coordinate accepted")
	}
}

func TestMaxComponent(t *testing.T) {
	i, v := (Vector{1, 7, 3}).MaxComponent()
	if i != 1 || v != 7 {
		t.Fatalf("MaxComponent = (%d, %v)", i, v)
	}
	i, v = Vector{}.MaxComponent()
	if i != -1 || !math.IsInf(v, -1) {
		t.Fatalf("empty MaxComponent = (%d, %v)", i, v)
	}
}

func TestBasis(t *testing.T) {
	b := Basis(3, 1)
	if !b.Equal(Vector{0, 1, 0}, 0) {
		t.Fatalf("Basis = %v", b)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range basis index")
		}
	}()
	Basis(2, 2)
}

func TestDominates(t *testing.T) {
	cases := []struct {
		p, q Vector
		want bool
	}{
		{Vector{1, 1}, Vector{1, 1}, false},      // equal: no strict dim
		{Vector{2, 1}, Vector{1, 1}, true},       // strictly better on one
		{Vector{2, 0.5}, Vector{1, 1}, false},    // trade-off
		{Vector{2, 2}, Vector{1, 1}, true},       // strictly better on all
		{Vector{1, 2}, Vector{1, 1}, true},       // equal on one, better on other
		{Vector{0.9, 2}, Vector{1, 1.5}, false},  // worse on one
		{Vector{1, 1, 1}, Vector{1, 1, 0}, true}, // 3-d
	}
	for _, c := range cases {
		if got := Dominates(c.p, c.q); got != c.want {
			t.Errorf("Dominates(%v, %v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestDominatesProperties(t *testing.T) {
	// Irreflexive and antisymmetric on random pairs.
	f := func(a, b [4]float64) bool {
		p := Vector(a[:])
		q := Vector(b[:])
		if Dominates(p, p) {
			return false
		}
		if Dominates(p, q) && Dominates(q, p) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDotLinearityProperty(t *testing.T) {
	f := func(a, b, c [3]float64, s float64) bool {
		if math.Abs(s) > 1e6 {
			return true
		}
		u, v, w := Vector(a[:]), Vector(b[:]), Vector(c[:])
		for _, x := range append(append(append([]float64{}, a[:]...), b[:]...), c[:]...) {
			if math.Abs(x) > 1e6 || math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		lhs := u.Add(v.Scale(s)).Dot(w)
		rhs := u.Dot(w) + s*v.Dot(w)
		return ApproxEqual(lhs, rhs, 1e-6*(1+math.Abs(lhs)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckSameDim(t *testing.T) {
	if err := CheckSameDim(Vector{1}, Vector{2}); err != nil {
		t.Fatal(err)
	}
	if err := CheckSameDim(Vector{1}, Vector{1, 2}); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestVectorString(t *testing.T) {
	got := Vector{1, 2.5}.String()
	if got != "(1, 2.5)" {
		t.Fatalf("String = %q", got)
	}
}
