package geom

import "math"

// Eps is the default absolute tolerance used throughout the library
// for comparing derived floating-point quantities (dot products,
// critical ratios, facet offsets). Input coordinates are normalized
// to (0,1], so an absolute tolerance is appropriate.
const Eps = 1e-9

// LooseEps is a relaxed tolerance used where quantities accumulate
// error across many operations (e.g. comparing regret ratios computed
// by two independent methods).
const LooseEps = 1e-6

// ApproxEqual reports |a − b| ≤ eps.
func ApproxEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

// LessEq reports a ≤ b + eps.
func LessEq(a, b, eps float64) bool { return a <= b+eps }

// Less reports a < b − eps (strictly less beyond tolerance).
func Less(a, b, eps float64) bool { return a < b-eps }

// Zero reports |a| ≤ eps.
func Zero(a, eps float64) bool { return math.Abs(a) <= eps }

// Clamp01 clamps x to the interval [0, 1].
func Clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	}
	return x
}

// RelEps returns a tolerance scaled to the magnitude of the operands:
// eps·(1 + max(|a|, |b|)). Use when comparing quantities that may
// leave the unit range.
func RelEps(a, b, eps float64) float64 {
	m := math.Abs(a)
	if v := math.Abs(b); v > m {
		m = v
	}
	return eps * (1 + m)
}
