package viz

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geom"
)

func render(t *testing.T, s *Scene) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestSceneBasics(t *testing.T) {
	s := NewScene(400)
	s.AddAxes()
	if err := s.AddPoints([]geom.Vector{{0.5, 0.5}, {0.9, 0.1}}, "#ff0000", 3, true); err != nil {
		t.Fatal(err)
	}
	s.AddLegend("#ff0000", "points")
	svg := render(t, s)
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	if got := strings.Count(svg, "<circle"); got != 3 { // 2 points + 1 legend dot
		t.Fatalf("%d circles, want 3", got)
	}
	if !strings.Contains(svg, ">p1</text>") || !strings.Contains(svg, ">p2</text>") {
		t.Fatal("labels missing")
	}
}

func TestAddPointsRejects3D(t *testing.T) {
	s := NewScene(400)
	if err := s.AddPoints([]geom.Vector{{1, 2, 3}}, "#000", 2, false); err == nil {
		t.Fatal("3-d point accepted")
	}
	if err := s.AddRay(geom.Vector{1, 2, 3}, "#000"); err == nil {
		t.Fatal("3-d ray accepted")
	}
}

func TestAddHullBoundary(t *testing.T) {
	s := NewScene(400)
	pts := []geom.Vector{{1, 0.1}, {0.1, 1}, {0.7, 0.7}, {0.3, 0.3}}
	if err := s.AddHullBoundary(pts, "#00f"); err != nil {
		t.Fatal(err)
	}
	svg := render(t, s)
	if !strings.Contains(svg, "<path") {
		t.Fatal("hull path missing")
	}
	// The chain has 3 extreme points → the path has 4 line segments
	// (drop + 3... measured as 4 "L" commands).
	if got := strings.Count(svg, " L "); got != 4 {
		t.Fatalf("%d path segments, want 4: %s", got, svg)
	}
}

func TestClipLineToBox(t *testing.T) {
	// Diagonal x + y = 1 crosses the unit-ish box at (0,1) and (1,0).
	pts := clipLineToBox(geom.Hyperplane{Normal: geom.Vector{1, 1}, Offset: 1}, 1.02)
	if len(pts) != 2 {
		t.Fatalf("%d clip points: %v", len(pts), pts)
	}
	// Horizontal y = 0.5.
	pts = clipLineToBox(geom.Hyperplane{Normal: geom.Vector{0, 1}, Offset: 0.5}, 1.02)
	if len(pts) != 2 {
		t.Fatalf("horizontal clip: %v", pts)
	}
	// A line missing the box entirely.
	pts = clipLineToBox(geom.Hyperplane{Normal: geom.Vector{1, 1}, Offset: 5}, 1.02)
	if len(pts) != 0 {
		t.Fatalf("far line clipped: %v", pts)
	}
}

func TestAddTentDrawsDashedLines(t *testing.T) {
	s := NewScene(400)
	s.AddTent([]geom.Hyperplane{
		{Normal: geom.Vector{1, 0.33}, Offset: 1},
		{Normal: geom.Vector{0, 1}, Offset: 1},
	}, "#c00")
	svg := render(t, s)
	if got := strings.Count(svg, "stroke-dasharray"); got != 2 {
		t.Fatalf("%d dashed lines, want 2", got)
	}
}

func TestMinimumSize(t *testing.T) {
	s := NewScene(10) // clamped to 100
	svg := render(t, s)
	if !strings.Contains(svg, `width="100"`) {
		t.Fatal("size not clamped")
	}
}
