// Package viz renders the paper's two-dimensional geometry as SVG:
// data points, the orthotope convex hull boundary, the happy-point
// tents Y(p), critical-ratio rays and selected answer sets. It exists
// for documentation and debugging — every construct in the paper's
// Figures 1–6 can be regenerated from real library state (see
// cmd/visualize).
package viz

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/geom"
	"repro/internal/hull2d"
)

// ErrNeed2D is returned for non-planar input.
var ErrNeed2D = errors.New("viz: only 2-dimensional scenes can be rendered")

// Scene is a 2-D visualization under construction. Coordinates are
// the data's own (assumed within (0, 1.05]); the viewport maps them
// to an SVG canvas with the Y axis flipped to mathematical
// orientation.
type Scene struct {
	size    int
	margin  int
	layers  []string
	legends []string
}

// NewScene creates an empty square scene of the given pixel size.
func NewScene(size int) *Scene {
	if size < 100 {
		size = 100
	}
	return &Scene{size: size, margin: 40}
}

// x/y map unit coordinates to canvas pixels.
func (s *Scene) x(v float64) float64 {
	return float64(s.margin) + v*float64(s.size-2*s.margin)
}

func (s *Scene) y(v float64) float64 {
	return float64(s.size-s.margin) - v*float64(s.size-2*s.margin)
}

func (s *Scene) add(layer string) { s.layers = append(s.layers, layer) }

// AddAxes draws the coordinate axes with unit ticks.
func (s *Scene) AddAxes() {
	s.add(fmt.Sprintf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#333" stroke-width="1.5"/>`,
		s.x(0), s.y(0), s.x(1.04), s.y(0)))
	s.add(fmt.Sprintf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#333" stroke-width="1.5"/>`,
		s.x(0), s.y(0), s.x(0), s.y(1.04)))
	s.add(fmt.Sprintf(`<text x="%.1f" y="%.1f" font-size="12" fill="#333">1.0</text>`, s.x(1.0)-8, s.y(0)+16))
	s.add(fmt.Sprintf(`<text x="%.1f" y="%.1f" font-size="12" fill="#333">1.0</text>`, s.x(0)-26, s.y(1.0)+4))
}

// AddPoints draws a point set with the given color and optional
// labels ("p1", "p2", …) when label is true.
func (s *Scene) AddPoints(pts []geom.Vector, color string, radius float64, label bool) error {
	for i, p := range pts {
		if len(p) != 2 {
			return fmt.Errorf("%w: point %d has dimension %d", ErrNeed2D, i, len(p))
		}
		s.add(fmt.Sprintf(`<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`,
			s.x(p[0]), s.y(p[1]), radius, color))
		if label {
			s.add(fmt.Sprintf(`<text x="%.1f" y="%.1f" font-size="11" fill="%s">p%d</text>`,
				s.x(p[0])+6, s.y(p[1])-6, color, i+1))
		}
	}
	return nil
}

// AddHullBoundary draws the non-origin boundary of the orthotope
// convex hull of pts: the vertical drop from (0, maxY), the
// upper-right chain, and the horizontal run to (maxX, 0).
func (s *Scene) AddHullBoundary(pts []geom.Vector, color string) error {
	p2, err := hull2d.FromVectors(pts)
	if err != nil {
		return fmt.Errorf("viz: %w", err)
	}
	chain := hull2d.UpperRightChain(p2)
	if len(chain) == 0 {
		return nil
	}
	var maxX, maxY float64
	for _, p := range p2 {
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<path d="M %.1f %.1f`, s.x(0), s.y(maxY))
	for _, c := range chain {
		fmt.Fprintf(&b, " L %.1f %.1f", s.x(c.X), s.y(c.Y))
	}
	fmt.Fprintf(&b, ` L %.1f %.1f" fill="none" stroke="%s" stroke-width="2"/>`, s.x(maxX), s.y(0), color)
	s.add(b.String())
	return nil
}

// AddTent draws the hyperplanes Y(p) of one point — the "tent" whose
// interior is the subjugation region of p. Planes are drawn as line
// segments across the unit square.
func (s *Scene) AddTent(planes []geom.Hyperplane, color string) {
	for _, h := range planes {
		// Segment endpoints: intersections of ω·x = c with the box
		// borders x ∈ {0, 1.02}, y ∈ {0, 1.02}.
		pts := clipLineToBox(h, 1.02)
		if len(pts) < 2 {
			continue
		}
		s.add(fmt.Sprintf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1" stroke-dasharray="5,3"/>`,
			s.x(pts[0][0]), s.y(pts[0][1]), s.x(pts[1][0]), s.y(pts[1][1]), color))
	}
}

// AddRay draws the critical-ratio ray from the origin through q.
func (s *Scene) AddRay(q geom.Vector, color string) error {
	if len(q) != 2 {
		return ErrNeed2D
	}
	// Extend to the box border.
	t := 1.02 / maxf(q[0], q[1])
	s.add(fmt.Sprintf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1" stroke-dasharray="2,3"/>`,
		s.x(0), s.y(0), s.x(q[0]*t), s.y(q[1]*t), color))
	return nil
}

// AddLegend appends a legend entry.
func (s *Scene) AddLegend(color, text string) {
	s.legends = append(s.legends, fmt.Sprintf("%s\x00%s", color, text))
}

// WriteTo renders the SVG document.
func (s *Scene) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		s.size, s.size, s.size, s.size)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	for _, l := range s.layers {
		b.WriteString(l)
	}
	// Legend block in the top-right corner.
	sort.Strings(s.legends)
	for i, entry := range s.legends {
		parts := strings.SplitN(entry, "\x00", 2)
		y := 20 + 18*i
		fmt.Fprintf(&b, `<circle cx="%d" cy="%d" r="5" fill="%s"/>`, s.size-170, y, parts[0])
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" fill="#333">%s</text>`, s.size-158, y+4, parts[1])
	}
	b.WriteString(`</svg>`)
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// clipLineToBox returns up to two intersection points of the line
// Normal·x = Offset with the borders of [0, lim]².
func clipLineToBox(h geom.Hyperplane, lim float64) []geom.Vector {
	var out []geom.Vector
	push := func(x, y float64) {
		if x < -1e-9 || x > lim+1e-9 || y < -1e-9 || y > lim+1e-9 {
			return
		}
		for _, p := range out {
			if geom.ApproxEqual(p[0], x, 1e-9) && geom.ApproxEqual(p[1], y, 1e-9) {
				return
			}
		}
		out = append(out, geom.Vector{x, y})
	}
	a, bb, c := h.Normal[0], h.Normal[1], h.Offset
	// Near-zero coefficients produce intercepts far outside the
	// viewport that push() would reject anyway; the eps guard keeps
	// the divisions finite.
	if !geom.Zero(bb, geom.Eps) {
		push(0, c/bb)
		push(lim, (c-a*lim)/bb)
	}
	if !geom.Zero(a, geom.Eps) {
		push(c/a, 0)
		push((c-bb*lim)/a, lim)
	}
	return out
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
