// Package interactive implements interactive regret minimization —
// the paper's second future direction (Section VIII), after
// Nanongkai, Lall and Das Sarma, "Interactive Regret Minimization",
// SIGMOD 2012.
//
// Instead of returning one k-set for all possible users, the system
// converses with one specific user: each round it displays a few
// tuples, the user picks the one they like best, and every pick
// teaches the system linear constraints on the user's hidden weight
// vector ("the chosen tuple has at least the utility of each
// displayed alternative"). The feasible region of weight vectors —
// a convex polytope maintained with the same double-description
// engine that powers GeoGreedy — shrinks until the system can
// recommend a tuple whose worst-case regret for *this* user is below
// a target.
//
// The displayed tuples are chosen from the happy points (Lemma 2
// applies round by round: only happy points can ever be a user's
// favourite under a linear utility, up to ties), ranked by how much
// they currently disagree across the feasible weight region.
package interactive

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/dd"
	"repro/internal/geom"
	"repro/internal/happy"
)

// Errors returned by the session.
var (
	ErrNoPoints    = errors.New("interactive: no points")
	ErrBadChoice   = errors.New("interactive: choice out of range")
	ErrNotShowing  = errors.New("interactive: no display round in progress")
	ErrBadDisplay  = errors.New("interactive: display size must be at least 2")
	ErrDegenerate  = errors.New("interactive: utility region collapsed")
	errInternalOpt = errors.New("interactive: internal optimization failure")
)

// Strategy selects how Show picks the tuples to display.
type Strategy int

// Display strategies.
const (
	// StrategyIncomparable (default) greedily builds a display of
	// mutually ranking-uncertain tuples, guaranteeing each answer
	// cuts the weight region. Fastest convergence.
	StrategyIncomparable Strategy = iota
	// StrategySpread shows the tuples whose utilities vary most over
	// the region, ignoring their mutual comparability. Can stall
	// when the most uncertain tuples are already mutually ranked.
	StrategySpread
	// StrategyRandom shows random candidates — the baseline an
	// informed strategy must beat.
	StrategyRandom
)

func (s Strategy) String() string {
	switch s {
	case StrategyIncomparable:
		return "incomparable"
	case StrategySpread:
		return "spread"
	case StrategyRandom:
		return "random"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Session is one interactive run against a single user. Not safe for
// concurrent use.
type Session struct {
	pts      []geom.Vector
	cand     []int // happy-point candidate indices into pts
	region   *dd.Polytope
	display  []int // current display (indices into pts), nil between rounds
	rounds   int
	strategy Strategy
	rngState uint64 // xorshift state for StrategyRandom (deterministic)
}

// SetStrategy selects the display strategy for subsequent Show calls
// (default StrategyIncomparable).
func (s *Session) SetStrategy(st Strategy) { s.strategy = st }

// NewSession prepares an interactive session over the dataset. All
// points must be strictly positive and share a dimension; the hidden
// user utility is assumed linear with non-negative weights.
func NewSession(pts []geom.Vector) (*Session, error) {
	if len(pts) == 0 {
		return nil, ErrNoPoints
	}
	d := len(pts[0])
	for i, p := range pts {
		if len(p) != d {
			return nil, fmt.Errorf("interactive: point %d has dimension %d, want %d", i, len(p), d)
		}
		if !p.IsFinite() || !p.AllPositive() {
			return nil, fmt.Errorf("interactive: point %d must be finite and strictly positive", i)
		}
	}
	cand, err := happy.Compute(pts)
	if err != nil {
		return nil, fmt.Errorf("interactive: %w", err)
	}
	// Weight region: the probability simplex {ω ≥ 0, Σω ≤ 1} as a
	// box-capped polytope. Scaling ω does not change rankings, so
	// the simplex normalization loses no generality.
	upper := make([]float64, d)
	for i := range upper {
		upper[i] = 1
	}
	region, err := dd.NewBox(upper)
	if err != nil {
		return nil, fmt.Errorf("interactive: %w", err)
	}
	ones := make(geom.Vector, d)
	for i := range ones {
		ones[i] = 1
	}
	if _, err := region.AddHalfspace(ones, 1); err != nil {
		return nil, fmt.Errorf("interactive: %w", err)
	}
	return &Session{pts: pts, cand: cand, region: region, rngState: 0x9e3779b97f4a7c15}, nil
}

// Rounds returns the number of completed feedback rounds.
func (s *Session) Rounds() int { return s.rounds }

// Candidates returns the indices the session may ever display (the
// happy points of the dataset).
func (s *Session) Candidates() []int { return append([]int(nil), s.cand...) }

// spread measures how much candidate i's utility varies over the
// current weight region: max_v v·p − min_v v·p over region vertices.
func (s *Session) spread(p geom.Vector) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range s.region.Vertices() {
		dot := v.Point.Dot(p)
		if dot < lo {
			lo = dot
		}
		if dot > hi {
			hi = dot
		}
	}
	return hi - lo
}

// comparisonUncertainty measures how unsettled the ranking of points
// x and y is under the current region: min over the two orderings of
// the best achievable utility gap. Zero means the region already
// ranks the pair (the user's answer would teach nothing).
func (s *Session) comparisonUncertainty(x, y geom.Vector) float64 {
	maxXY, maxYX := math.Inf(-1), math.Inf(-1)
	for _, v := range s.region.Vertices() {
		g := v.Point.Dot(x) - v.Point.Dot(y)
		if g > maxXY {
			maxXY = g
		}
		if -g > maxYX {
			maxYX = -g
		}
	}
	return math.Min(maxXY, maxYX)
}

// Show starts a feedback round: it returns `size` dataset indices for
// the user to compare. The display is built greedily for information
// gain: it seeds with the candidate whose utility varies most over
// the current weight region, then repeatedly adds the candidate whose
// ranking against every displayed tuple is most uncertain — a
// positive uncertainty guarantees the user's answer cuts the region
// (the chosen-beats-t constraint is violated somewhere in it).
func (s *Session) Show(size int) ([]int, error) {
	if size < 2 {
		return nil, ErrBadDisplay
	}
	if size > len(s.cand) {
		size = len(s.cand)
	}
	if s.strategy == StrategyRandom {
		display := make([]int, 0, size)
		seen := map[int]bool{}
		for len(display) < size {
			i := s.cand[int(s.nextRand()%uint64(len(s.cand)))]
			if !seen[i] {
				seen[i] = true
				display = append(display, i)
			}
		}
		s.display = display
		return append([]int(nil), display...), nil
	}
	// Seed: largest utility spread.
	type scored struct {
		idx    int
		spread float64
	}
	ranked := make([]scored, 0, len(s.cand))
	for _, ci := range s.cand {
		ranked = append(ranked, scored{ci, s.spread(s.pts[ci])})
	}
	sort.Slice(ranked, func(a, b int) bool {
		// Exact ordered comparisons keep the order transitive.
		if ranked[a].spread > ranked[b].spread {
			return true
		}
		if ranked[a].spread < ranked[b].spread {
			return false
		}
		return ranked[a].idx < ranked[b].idx
	})
	if s.strategy == StrategySpread {
		display := make([]int, size)
		for i := 0; i < size; i++ {
			display[i] = ranked[i].idx
		}
		s.display = display
		return append([]int(nil), display...), nil
	}
	display := []int{ranked[0].idx}
	chosen := map[int]bool{ranked[0].idx: true}
	for len(display) < size {
		bestIdx, bestScore := -1, 0.0
		for _, r := range ranked {
			if chosen[r.idx] {
				continue
			}
			score := math.Inf(1)
			for _, di := range display {
				u := s.comparisonUncertainty(s.pts[r.idx], s.pts[di])
				if u < score {
					score = u
				}
			}
			if score > bestScore {
				bestIdx, bestScore = r.idx, score
			}
		}
		if bestIdx < 0 {
			// Every remaining pair is already ranked by the region;
			// pad with the highest-spread leftovers so the caller
			// still gets `size` tuples.
			for _, r := range ranked {
				if !chosen[r.idx] {
					bestIdx = r.idx
					break
				}
			}
			if bestIdx < 0 {
				break
			}
		}
		chosen[bestIdx] = true
		display = append(display, bestIdx)
	}
	s.display = display
	return append([]int(nil), s.display...), nil
}

// Choose records the user's pick: position `choice` within the slice
// returned by the last Show call. Every non-chosen displayed tuple t
// contributes the constraint ω·(chosen − t) ≥ 0.
func (s *Session) Choose(choice int) error {
	if s.display == nil {
		return ErrNotShowing
	}
	if choice < 0 || choice >= len(s.display) {
		return fmt.Errorf("%w: %d of %d", ErrBadChoice, choice, len(s.display))
	}
	chosen := s.pts[s.display[choice]]
	for i, idx := range s.display {
		if i == choice {
			continue
		}
		diff := s.pts[idx].Sub(chosen) // ω·diff ≤ 0
		if _, err := s.region.AddHalfspace(diff, 0); err != nil {
			if errors.Is(err, dd.ErrEmpty) {
				return ErrDegenerate
			}
			return fmt.Errorf("interactive: %w", err)
		}
	}
	s.display = nil
	s.rounds++
	return nil
}

// Estimate returns the centroid of the current weight-region
// vertices, normalized to unit length — the session's best guess of
// the user's utility function.
func (s *Session) Estimate() (geom.Vector, error) {
	verts := s.region.Vertices()
	if len(verts) == 0 {
		return nil, ErrDegenerate
	}
	c := make(geom.Vector, s.region.Dim())
	for _, v := range verts {
		for j := range c {
			c[j] += v.Point[j]
		}
	}
	n, err := c.Normalize()
	if err != nil {
		// All vertices at the origin: no information yet beyond
		// non-negativity; return the uniform direction.
		u := make(geom.Vector, s.region.Dim())
		for j := range u {
			u[j] = 1
		}
		return u.Scale(1 / u.Norm()), nil
	}
	return n, nil
}

// Recommend returns the single tuple that minimizes the worst-case
// regret ratio for this user over the remaining weight region,
// together with that regret bound:
//
//	bound(p) = max_{ω ∈ region} (max_q ω·q − ω·p) / max_q ω·q
//
// evaluated at the region's vertices. This is exact: the level sets
// {ω : ω·p ≥ (1−t)·max_q ω·q} are intersections of halfspaces, so
// the utility ratio is quasi-concave in ω and its minimum (the
// regret's maximum) over the polytope is attained at a vertex.
func (s *Session) Recommend() (int, float64, error) {
	verts := s.region.Vertices()
	if len(verts) == 0 {
		return -1, 0, ErrDegenerate
	}
	// Precompute, per vertex, the dataset-wide top utility.
	tops := make([]float64, 0, len(verts))
	live := make([]*dd.Vertex, 0, len(verts))
	for _, v := range verts {
		if v.Point.Norm() < 1e-12 {
			continue // origin vertex ranks nothing
		}
		top := math.Inf(-1)
		for _, ci := range s.cand {
			if u := v.Point.Dot(s.pts[ci]); u > top {
				top = u
			}
		}
		if top > 0 {
			tops = append(tops, top)
			live = append(live, v)
		}
	}
	if len(live) == 0 {
		return -1, 0, ErrDegenerate
	}
	bestIdx, bestBound := -1, math.Inf(1)
	for _, ci := range s.cand {
		p := s.pts[ci]
		worst := 0.0
		for vi, v := range live {
			r := 1 - v.Point.Dot(p)/tops[vi]
			if r > worst {
				worst = r
			}
		}
		if worst < bestBound {
			bestIdx, bestBound = ci, worst
		}
	}
	if bestIdx < 0 {
		return -1, 0, errInternalOpt
	}
	return bestIdx, bestBound, nil
}

// SimulateUser is a test helper: it answers Show/Choose rounds on
// behalf of a user with the given hidden weight vector, running until
// the recommendation bound drops below target or maxRounds elapse.
// It returns the final recommendation and bound.
func SimulateUser(s *Session, hidden geom.Vector, displaySize, maxRounds int, target float64) (int, float64, error) {
	for round := 0; round < maxRounds; round++ {
		rec, bound, err := s.Recommend()
		if err != nil {
			return -1, 0, err
		}
		if bound <= target {
			return rec, bound, nil
		}
		shown, err := s.Show(displaySize)
		if err != nil {
			return -1, 0, err
		}
		best, bestU := 0, math.Inf(-1)
		for i, idx := range shown {
			if u := hidden.Dot(s.pts[idx]); u > bestU {
				best, bestU = i, u
			}
		}
		if err := s.Choose(best); err != nil {
			return -1, 0, err
		}
	}
	rec, bound, err := s.Recommend()
	return rec, bound, err
}

// nextRand is a tiny deterministic xorshift64* generator for
// StrategyRandom (keeps the session free of global randomness).
func (s *Session) nextRand() uint64 {
	x := s.rngState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	s.rngState = x
	return x * 0x2545f4914f6cdd1d
}
