package interactive

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func testData(rng *rand.Rand, n, d int) []geom.Vector {
	pts := make([]geom.Vector, n)
	for i := range pts {
		p := make(geom.Vector, d)
		var sum float64
		for j := range p {
			p[j] = 0.05 + rng.ExpFloat64()
			sum += p[j]
		}
		scale := (0.8 + 0.4*rng.Float64()) / sum
		for j := range p {
			p[j] = math.Min(1, math.Max(0.01, p[j]*scale))
		}
		pts[i] = p
	}
	for j := 0; j < d; j++ {
		maxv := 0.0
		for _, p := range pts {
			maxv = math.Max(maxv, p[j])
		}
		for _, p := range pts {
			p[j] /= maxv
		}
	}
	return pts
}

func TestNewSessionValidation(t *testing.T) {
	if _, err := NewSession(nil); err != ErrNoPoints {
		t.Fatalf("empty: %v", err)
	}
	if _, err := NewSession([]geom.Vector{{1, 1}, {1}}); err == nil {
		t.Fatal("ragged accepted")
	}
	if _, err := NewSession([]geom.Vector{{0, 1}}); err == nil {
		t.Fatal("zero coordinate accepted")
	}
}

func TestShowChooseProtocol(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s, err := NewSession(testData(rng, 60, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Choose(0); err != ErrNotShowing {
		t.Fatalf("choose before show: %v", err)
	}
	if _, err := s.Show(1); err != ErrBadDisplay {
		t.Fatalf("display size 1: %v", err)
	}
	shown, err := s.Show(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(shown) != 3 {
		t.Fatalf("shown %d", len(shown))
	}
	if err := s.Choose(5); err == nil {
		t.Fatal("out-of-range choice accepted")
	}
	if err := s.Choose(1); err != nil {
		t.Fatal(err)
	}
	if s.Rounds() != 1 {
		t.Fatalf("rounds = %d", s.Rounds())
	}
	// A second Choose without a Show must fail.
	if err := s.Choose(0); err != ErrNotShowing {
		t.Fatalf("double choose: %v", err)
	}
}

// TestFeedbackShrinksUncertainty: each round must not increase the
// recommendation's regret bound, and typically shrinks it.
func TestFeedbackShrinksUncertainty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := testData(rng, 100, 3)
	s, err := NewSession(pts)
	if err != nil {
		t.Fatal(err)
	}
	hidden := geom.Vector{0.5, 0.3, 0.2}
	_, bound0, err := s.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	prev := bound0
	for round := 0; round < 8; round++ {
		shown, err := s.Show(3)
		if err != nil {
			t.Fatal(err)
		}
		best, bestU := 0, math.Inf(-1)
		for i, idx := range shown {
			if u := hidden.Dot(pts[idx]); u > bestU {
				best, bestU = i, u
			}
		}
		if err := s.Choose(best); err != nil {
			t.Fatal(err)
		}
		_, bound, err := s.Recommend()
		if err != nil {
			t.Fatal(err)
		}
		if bound > prev+1e-9 {
			t.Fatalf("round %d: bound rose from %v to %v", round, prev, bound)
		}
		prev = bound
	}
	if prev > bound0 {
		t.Fatalf("no overall progress: %v → %v", bound0, prev)
	}
}

// TestSimulationConverges: for a random hidden utility the simulated
// session reaches a small regret bound, and the recommended tuple's
// true regret for the hidden utility is within that bound.
func TestSimulationConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		d := 2 + rng.Intn(3)
		pts := testData(rng, 120, d)
		s, err := NewSession(pts)
		if err != nil {
			t.Fatal(err)
		}
		hidden := make(geom.Vector, d)
		var norm float64
		for j := range hidden {
			hidden[j] = 0.1 + rng.Float64()
			norm += hidden[j] * hidden[j]
		}
		hidden = hidden.Scale(1 / math.Sqrt(norm))

		rec, bound, err := SimulateUser(s, hidden, 4, 40, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if bound > 0.25 {
			t.Fatalf("trial %d (d=%d): bound %v did not converge", trial, d, bound)
		}
		// True regret of the recommendation for the hidden utility.
		bestU := math.Inf(-1)
		for _, p := range pts {
			if u := hidden.Dot(p); u > bestU {
				bestU = u
			}
		}
		trueRegret := 1 - hidden.Dot(pts[rec])/bestU
		if trueRegret > bound+1e-9 {
			t.Fatalf("trial %d: true regret %v exceeds reported bound %v", trial, trueRegret, bound)
		}
	}
}

func TestEstimateRecoversUtilityDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := testData(rng, 150, 3)
	s, err := NewSession(pts)
	if err != nil {
		t.Fatal(err)
	}
	hidden := geom.Vector{0.7, 0.5, 0.2}
	hidden, _ = hidden.Normalize()
	if _, _, err := SimulateUser(s, hidden, 4, 25, 0.02); err != nil {
		t.Fatal(err)
	}
	est, err := s.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	// The estimate should correlate with the hidden direction far
	// better than a uniform guess would.
	cos := est.Dot(hidden)
	if cos < 0.85 {
		t.Fatalf("estimate %v poorly aligned with hidden %v (cos %v)", est, hidden, cos)
	}
}

func TestCandidatesAreHappyPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := testData(rng, 80, 3)
	s, err := NewSession(pts)
	if err != nil {
		t.Fatal(err)
	}
	cand := s.Candidates()
	if len(cand) == 0 || len(cand) > len(pts) {
		t.Fatalf("candidates %d", len(cand))
	}
	// Mutating the returned slice must not affect the session.
	cand[0] = -99
	if s.Candidates()[0] == -99 {
		t.Fatal("Candidates aliases internal state")
	}
}

// TestStrategiesConverge: every strategy makes progress; the
// incomparability strategy needs no more rounds than random to reach
// the same bound on this fixture.
func TestStrategiesConverge(t *testing.T) {
	hidden := geom.Vector{0.55, 0.35, 0.10}
	hidden, _ = hidden.Normalize()
	roundsFor := func(st Strategy) int {
		rng := rand.New(rand.NewSource(7)) // same data per strategy
		pts := testData(rng, 150, 3)
		s, err := NewSession(pts)
		if err != nil {
			t.Fatal(err)
		}
		s.SetStrategy(st)
		if _, _, err := SimulateUser(s, hidden, 4, 30, 0.03); err != nil {
			t.Fatal(err)
		}
		return s.Rounds()
	}
	inc := roundsFor(StrategyIncomparable)
	rnd := roundsFor(StrategyRandom)
	spr := roundsFor(StrategySpread)
	t.Logf("rounds to 3%%: incomparable=%d spread=%d random=%d", inc, spr, rnd)
	if inc > rnd {
		t.Fatalf("incomparable strategy (%d rounds) worse than random (%d)", inc, rnd)
	}
	if inc > 30 {
		t.Fatalf("incomparable did not converge within budget")
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyIncomparable.String() != "incomparable" ||
		StrategySpread.String() != "spread" ||
		StrategyRandom.String() != "random" {
		t.Fatal("strategy names")
	}
	if Strategy(9).String() == "" {
		t.Fatal("unknown strategy")
	}
}

func TestRandomStrategyDisplaysDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s, err := NewSession(testData(rng, 100, 3))
	if err != nil {
		t.Fatal(err)
	}
	s.SetStrategy(StrategyRandom)
	shown, err := s.Show(4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, i := range shown {
		if seen[i] {
			t.Fatalf("duplicate display entry %d", i)
		}
		seen[i] = true
	}
}
