package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/lp"
)

// Greedy is the best-known baseline the paper compares against
// (Nanongkai et al., VLDB 2010): the same greedy skeleton as
// GeoGreedy, but each iteration finds the candidate contributing the
// maximum regret ratio by solving one linear program per candidate —
// the "time-consuming constrained programming" of the paper's
// Section IV-A. For candidate q and selection S the LP is
//
//	maximize   ω·q
//	subject to ω·p ≤ 1 for every p ∈ S,   ω ≥ 0 ;
//
// its optimum z equals 1/cr(q, S), so the candidate with the largest
// optimum is the one GeoGreedy finds geometrically, and the regret
// contributed is 1 − 1/z. Greedy and GeoGreedy therefore return the
// same selection (ties aside) — property-tested — while their
// runtime profiles differ exactly as the paper reports.
func Greedy(pts []geom.Vector, k int) (*Result, error) {
	return GreedyCtx(context.Background(), pts, k)
}

// GreedyCtx is Greedy with cooperative cancellation: the context is
// checked before every per-candidate LP and inside each simplex solve
// (per pivot batch), so even iterations over large candidate sets
// stop promptly. The returned error wraps ctx.Err() when canceled.
func GreedyCtx(ctx context.Context, pts []geom.Vector, k int) (*Result, error) {
	_, err := validatePoints(pts)
	if err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, ErrBadK
	}
	if k > len(pts) {
		k = len(pts)
	}

	taken := make([]bool, len(pts))
	selected := make([]int, 0, k)
	seeds := BoundaryPoints(pts)
	if len(seeds) > k {
		seeds = seeds[:k]
	}
	for _, i := range seeds {
		taken[i] = true
		selected = append(selected, i)
	}

	exhausted := -1
	lastMax := math.Inf(1)
	for len(selected) < k {
		best, bestVal := -1, 1.0+geom.Eps
		for i := range pts {
			if taken[i] {
				continue
			}
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: Greedy canceled after %d selections: %w", len(selected), err)
			}
			z, err := supportByLP(ctx, pts, selected, pts[i])
			if err != nil {
				return nil, err
			}
			if z > bestVal {
				best, bestVal = i, z
			}
		}
		if best < 0 {
			exhausted = len(selected)
			lastMax = 1
			break
		}
		taken[best] = true
		selected = append(selected, best)
		lastMax = bestVal
	}
	_ = lastMax

	// Final regret over the remaining candidates. An unbounded
	// candidate LP means the selection does not span all dimensions
	// (k below the seed count); fall back to the exact geometric
	// evaluation so Greedy and GeoGreedy stay comparable there.
	mrr := 0.0
	for i := range pts {
		if taken[i] {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: Greedy canceled during final evaluation: %w", err)
		}
		z, err := supportByLP(ctx, pts, selected, pts[i])
		if err != nil {
			return nil, err
		}
		if math.IsInf(z, 1) {
			exact, err := MRRGeometricCtx(ctx, pts, selected)
			if err != nil {
				return nil, err
			}
			mrr = exact
			break
		}
		if z > 1 {
			if r := 1 - 1/z; r > mrr {
				mrr = r
			}
		}
	}

	return &Result{Indices: selected, MRR: mrr, ExhaustedAt: exhausted}, nil
}

// supportByLP solves max{ω·q : ω ≥ 0, ω·pts[i] ≤ 1 ∀i ∈ selected}.
// The optimum is 1/cr(q, S). Unbounded LPs (possible only when the
// selection does not yet span every dimension, e.g. k < d) are
// reported as +Inf.
func supportByLP(ctx context.Context, pts []geom.Vector, selected []int, q geom.Vector) (float64, error) {
	cons := make([]lp.Constraint, len(selected))
	for i, si := range selected {
		cons[i] = lp.Constraint{Coeffs: pts[si], Rel: lp.LE, RHS: 1}
	}
	sol, err := lp.SolveCtx(ctx, &lp.Problem{Objective: q, Maximize: true, Constraints: cons})
	if err != nil {
		return 0, fmt.Errorf("core: greedy candidate LP: %w", err)
	}
	switch sol.Status {
	case lp.Optimal:
		return sol.Objective, nil
	case lp.Unbounded:
		return math.Inf(1), nil
	default:
		// ω = 0 is always feasible; infeasibility indicates a solver
		// failure.
		return 0, fmt.Errorf("core: greedy candidate LP unexpectedly %v", sol.Status)
	}
}
