package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/lp"
	"repro/internal/parallel"
)

// Greedy is the best-known baseline the paper compares against
// (Nanongkai et al., VLDB 2010): the same greedy skeleton as
// GeoGreedy, but each iteration finds the candidate contributing the
// maximum regret ratio by solving one linear program per candidate —
// the "time-consuming constrained programming" of the paper's
// Section IV-A. For candidate q and selection S the LP is
//
//	maximize   ω·q
//	subject to ω·p ≤ 1 for every p ∈ S,   ω ≥ 0 ;
//
// its optimum z equals 1/cr(q, S), so the candidate with the largest
// optimum is the one GeoGreedy finds geometrically, and the regret
// contributed is 1 − 1/z. Greedy and GeoGreedy therefore return the
// same selection (ties aside) — property-tested — while their
// runtime profiles differ exactly as the paper reports.
func Greedy(pts []geom.Vector, k int) (*Result, error) {
	return greedyPar(context.Background(), pts, k, 1)
}

// GreedyCtx is Greedy with cooperative cancellation: the context is
// checked before every per-candidate LP and inside each simplex solve
// (per pivot batch), so even iterations over large candidate sets
// stop promptly. The returned error wraps ctx.Err() when canceled.
func GreedyCtx(ctx context.Context, pts []geom.Vector, k int) (*Result, error) {
	return greedyPar(ctx, pts, k, 1)
}

// GreedyParCtx is GreedyCtx with intra-query parallelism: the
// independent per-candidate LP solves of each iteration fan out over
// up to `workers` goroutines (0 = the process default, 1 = the exact
// sequential path). Each LP optimum is deterministic, the optima land
// in a per-candidate slot and the argmax fold runs sequentially in
// index order, so the selection is byte-identical to the sequential
// one for every worker count.
func GreedyParCtx(ctx context.Context, pts []geom.Vector, k, workers int) (*Result, error) {
	return greedyPar(ctx, pts, k, workers)
}

// grainLP is the minimum-work grain for per-candidate LP sweeps:
// sweeps under 2*grainLP candidates run inline (see the cutoff in
// parallel.newPlan), because at that size the whole sweep costs less
// than the goroutine fan-out it would buy.
const grainLP = 1024

func greedyPar(ctx context.Context, pts []geom.Vector, k, workers int) (*Result, error) {
	_, err := validatePoints(pts)
	if err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, ErrBadK
	}
	if k > len(pts) {
		k = len(pts)
	}

	taken := make([]bool, len(pts))
	selected := make([]int, 0, k)
	seeds := BoundaryPoints(pts)
	if len(seeds) > k {
		seeds = seeds[:k]
	}
	for _, i := range seeds {
		taken[i] = true
		selected = append(selected, i)
	}

	// Per-iteration scratch: the LP optimum of every candidate, and
	// the shared constraint rows ω·p ≤ 1 for the current selection
	// (read-only during the fan-out; lp copies coefficients into its
	// tableau, so sharing across solver goroutines is safe).
	zs := floatScratch(len(pts))
	defer putFloatScratch(zs)
	cons := make([]lp.Constraint, 0, k)

	solveAll := func() error {
		cons = consFor(cons[:0], pts, selected)
		// Each item is a full simplex solve, so chunks of any size
		// amortize scheduling; grainLP instead sets the minimum sweep
		// worth fanning out at all. Below 2*grainLP candidates the
		// cutoff in parallel.For takes the inline path — a sweep that
		// small finishes in single-digit milliseconds and the fan-out
		// overhead was measurably slowing it down (the 0.94x
		// Paper/Greedy speedup in BENCH_7f78352.json).
		return parallel.For(ctx, len(pts), workers, grainLP, func(start, end int) error {
			for i := start; i < end; i++ {
				if taken[i] {
					continue
				}
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("core: Greedy canceled after %d selections: %w", len(selected), err)
				}
				z, err := supportByLPCons(ctx, cons, pts[i])
				if err != nil {
					return err
				}
				zs[i] = z
			}
			return nil
		})
	}

	exhausted := -1
	fresh := false // zs reflects the current selection
	for len(selected) < k {
		if err := solveAll(); err != nil {
			return nil, err
		}
		fresh = true
		best, bestVal := -1, 1.0+geom.Eps
		for i := range pts {
			if !taken[i] && zs[i] > bestVal {
				best, bestVal = i, zs[i]
			}
		}
		if best < 0 {
			exhausted = len(selected)
			break
		}
		taken[best] = true
		selected = append(selected, best)
		fresh = false
	}

	// Final regret over the remaining candidates. An unbounded
	// candidate LP means the selection does not span all dimensions
	// (k below the seed count); fall back to the exact geometric
	// evaluation so Greedy and GeoGreedy stay comparable there.
	if !fresh {
		if err := solveAll(); err != nil {
			return nil, err
		}
	}
	mrr := 0.0
	for i := range pts {
		if taken[i] {
			continue
		}
		z := zs[i]
		if math.IsInf(z, 1) {
			exact, err := MRRGeometricParCtx(ctx, pts, selected, workers)
			if err != nil {
				return nil, err
			}
			mrr = exact
			break
		}
		if z > 1 {
			if r := 1 - 1/z; r > mrr {
				mrr = r
			}
		}
	}

	return &Result{Indices: selected, MRR: mrr, ExhaustedAt: exhausted}, nil
}

// consFor appends the selection's LP constraints ω·p ≤ 1 to cons.
// Coefficient slices alias the dataset vectors; the solver copies
// them before mutating its tableau.
func consFor(cons []lp.Constraint, pts []geom.Vector, selected []int) []lp.Constraint {
	for _, si := range selected {
		cons = append(cons, lp.Constraint{Coeffs: pts[si], Rel: lp.LE, RHS: 1})
	}
	return cons
}

// supportByLP solves max{ω·q : ω ≥ 0, ω·pts[i] ≤ 1 ∀i ∈ selected}.
// The optimum is 1/cr(q, S). Unbounded LPs (possible only when the
// selection does not yet span every dimension, e.g. k < d) are
// reported as +Inf.
func supportByLP(ctx context.Context, pts []geom.Vector, selected []int, q geom.Vector) (float64, error) {
	return supportByLPCons(ctx, consFor(nil, pts, selected), q)
}

// supportByLPCons is supportByLP over prebuilt constraint rows, so
// the per-iteration fan-out shares one constraint slice across all
// candidate solves.
func supportByLPCons(ctx context.Context, cons []lp.Constraint, q geom.Vector) (float64, error) {
	sol, err := lp.SolveCtx(ctx, &lp.Problem{Objective: q, Maximize: true, Constraints: cons})
	if err != nil {
		return 0, fmt.Errorf("core: greedy candidate LP: %w", err)
	}
	switch sol.Status {
	case lp.Optimal:
		return sol.Objective, nil
	case lp.Unbounded:
		return math.Inf(1), nil
	default:
		// ω = 0 is always feasible; infeasibility indicates a solver
		// failure.
		return 0, fmt.Errorf("core: greedy candidate LP unexpectedly %v", sol.Status)
	}
}
