package core

import (
	"context"
	"math"
	"sort"

	"repro/internal/geom"
)

// Cube is the second algorithm of Nanongkai et al. (VLDB 2010), the
// paper's reference [12]: a non-adaptive selection with a provable
// worst-case bound, used in the literature as the cheap baseline
// against which the greedy family is measured (the regret-minimizing
// substrate this repository reproduces includes both).
//
// Construction: keep the first d−1 dimensions and split each into t
// buckets, where t = ⌊(k − d + 1)^(1/(d−1))⌋; for every bucket cell,
// pick the point maximizing the d-th dimension among the points whose
// first d−1 coordinates fall in the cell's lower-left region
// (coordinates within the cell's upper bounds). The selection has at
// most k points and maximum regret ratio at most
// (d−1)/(t + d − 1) — the classic CUBE guarantee.
//
// Cube is dominated by Greedy/GeoGreedy in answer quality on real
// data but is essentially free to compute; it exists here for
// completeness of the baseline family and as a sanity bound in tests.
func Cube(pts []geom.Vector, k int) (*Result, error) {
	return CubeCtx(context.Background(), pts, k)
}

// CubeCtx is Cube with cooperative cancellation. Cube's own selection
// pass is linear and essentially free; the context mainly bounds the
// final exact regret evaluation, which runs on the same dual-hull
// machinery as GeoGreedy.
func CubeCtx(ctx context.Context, pts []geom.Vector, k int) (*Result, error) {
	d, err := validatePoints(pts)
	if err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, ErrBadK
	}
	if k > len(pts) {
		k = len(pts)
	}
	if d == 1 {
		// One dimension: the single maximum has zero regret.
		best := 0
		for i, p := range pts {
			if p[0] > pts[best][0] {
				best = i
			}
		}
		mrr, err := MRRGeometricCtx(ctx, pts, []int{best})
		if err != nil {
			return nil, err
		}
		return &Result{Indices: []int{best}, MRR: mrr, ExhaustedAt: -1}, nil
	}
	if k < d {
		// The guarantee needs at least d points (Section VII of the
		// paper discusses why k < d is hopeless anyway); degrade to
		// the d−1 boundary points truncated to k.
		sel := BoundaryPoints(pts)
		if len(sel) > k {
			sel = sel[:k]
		}
		mrr, err := MRRGeometricCtx(ctx, pts, sel)
		if err != nil {
			return nil, err
		}
		return &Result{Indices: sel, MRR: mrr, ExhaustedAt: -1}, nil
	}

	t := int(math.Floor(math.Pow(float64(k-d+1), 1/float64(d-1))))
	if t < 1 {
		t = 1
	}

	// Per-dimension maxima normalize bucket boundaries.
	maxs := maxPerDim(pts)

	// cellKey flattens the (d−1)-dimensional bucket index.
	cellOf := func(p geom.Vector) int {
		key := 0
		for j := 0; j < d-1; j++ {
			b := int(float64(t) * p[j] / maxs[j])
			if b >= t {
				b = t - 1
			}
			key = key*t + b
		}
		return key
	}

	bestInCell := make(map[int]int)
	for i, p := range pts {
		key := cellOf(p)
		if cur, ok := bestInCell[key]; !ok || p[d-1] > pts[cur][d-1] {
			bestInCell[key] = i
		}
	}

	chosen := make(map[int]bool, k)
	// Boundary points guarantee every dimension is represented.
	for _, b := range BoundaryPoints(pts) {
		chosen[b] = true
	}
	// Deterministic cell order (map iteration order is randomized).
	keys := make([]int, 0, len(bestInCell))
	for key := range bestInCell {
		keys = append(keys, key)
	}
	sort.Ints(keys)
	for _, key := range keys {
		if len(chosen) >= k {
			break
		}
		chosen[bestInCell[key]] = true
	}
	sel := make([]int, 0, len(chosen))
	for i := range chosen {
		sel = append(sel, i)
	}
	sort.Ints(sel)
	if len(sel) > k {
		sel = sel[:k]
	}
	mrr, err := MRRGeometricCtx(ctx, pts, sel)
	if err != nil {
		return nil, err
	}
	return &Result{Indices: sel, MRR: mrr, ExhaustedAt: -1}, nil
}

// CubeBound returns the CUBE guarantee (d−1)/(t+d−1) for the given
// k and d (t as in Cube). It is an upper bound on the regret of the
// Cube selection when k ≥ d.
func CubeBound(k, d int) float64 {
	if d < 2 || k < d {
		return 1
	}
	t := int(math.Floor(math.Pow(float64(k-d+1), 1/float64(d-1))))
	if t < 1 {
		t = 1
	}
	return float64(d-1) / float64(t+d-1)
}
