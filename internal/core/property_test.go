package core

// Property-based tests (testing/quick) on the core invariants. Each
// property receives random raw bytes/floats and derives a valid
// instance from them, so quick explores the input space while the
// derivation guarantees the paper's preconditions (positive
// normalized coordinates).

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// instanceFromSeed derives a random normalized dataset from a seed.
func instanceFromSeed(seed int64, maxN, maxD int) []geom.Vector {
	rng := rand.New(rand.NewSource(seed))
	n := 4 + rng.Intn(maxN-3)
	d := 2 + rng.Intn(maxD-1)
	return antiCorrelated(rng, n, d)
}

// Property: the two exact evaluators agree on arbitrary selections.
func TestPropertyEvaluatorAgreement(t *testing.T) {
	f := func(seed int64, selSeed int64) bool {
		pts := instanceFromSeed(seed, 24, 4)
		rng := rand.New(rand.NewSource(selSeed))
		selN := 1 + rng.Intn(len(pts))
		sel := rng.Perm(len(pts))[:selN]
		geo, err1 := MRRGeometric(pts, sel)
		viaLP, err2 := MRRByLP(pts, sel)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(geo-viaLP) <= 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: regret is monotone under selection growth — adding a
// point never increases the maximum regret ratio.
func TestPropertySelectionMonotone(t *testing.T) {
	f := func(seed int64, addSeed int64) bool {
		pts := instanceFromSeed(seed, 24, 4)
		rng := rand.New(rand.NewSource(addSeed))
		perm := rng.Perm(len(pts))
		base := perm[:1+rng.Intn(len(pts)-1)]
		extended := append(append([]int(nil), base...), perm[len(base):len(base)+1]...)
		if len(extended) > len(pts) {
			return true
		}
		m1, err1 := MRRGeometric(pts, base)
		m2, err2 := MRRGeometric(pts, extended)
		if err1 != nil || err2 != nil {
			return false
		}
		return m2 <= m1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the full selection always has zero regret.
func TestPropertyFullSelectionZero(t *testing.T) {
	f := func(seed int64) bool {
		pts := instanceFromSeed(seed, 20, 4)
		all := make([]int, len(pts))
		for i := range all {
			all[i] = i
		}
		mrr, err := MRRGeometric(pts, all)
		return err == nil && mrr <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: GeoGreedy's reported regret equals independent
// evaluation of its selection, for every k.
func TestPropertyReportedRegretConsistent(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		pts := instanceFromSeed(seed, 28, 4)
		k := 1 + int(kRaw)%len(pts)
		res, err := GeoGreedy(pts, k)
		if err != nil {
			return false
		}
		mrr, err := MRRGeometric(pts, res.Indices)
		if err != nil {
			return false
		}
		return math.Abs(mrr-res.MRR) <= 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: sampled regret never exceeds the exact maximum and the
// regret of any single sampled utility never exceeds the sampled
// maximum (internal consistency of the regret definitions).
func TestPropertySamplingBounds(t *testing.T) {
	f := func(seed int64) bool {
		pts := instanceFromSeed(seed, 20, 3)
		res, err := GeoGreedy(pts, 3)
		if err != nil {
			return false
		}
		exact, err := MRRGeometric(pts, res.Indices)
		if err != nil {
			return false
		}
		sampled, err := MRRSampled(pts, res.Indices, 500, seed)
		if err != nil {
			return false
		}
		avg, err := AverageRegretSampled(pts, res.Indices, 500, seed)
		if err != nil {
			return false
		}
		return sampled <= exact+1e-9 && avg <= sampled+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling utility weights does not change regret (the
// "concise and complete" function-class argument of Section II).
func TestPropertyRegretScaleInvariant(t *testing.T) {
	f := func(seed int64, scaleRaw uint16) bool {
		pts := instanceFromSeed(seed, 20, 3)
		res, err := GeoGreedy(pts, 3)
		if err != nil {
			return false
		}
		d := len(pts[0])
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		w := make(geom.Vector, d)
		for j := range w {
			w[j] = rng.Float64()
		}
		scale := 0.001 + float64(scaleRaw)/100
		r1, err1 := RegretOf(pts, res.Indices, w)
		r2, err2 := RegretOf(pts, res.Indices, w.Scale(scale))
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(r1-r2) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: cr(p, S) == 1 for every selected hull point, and ≥ 1 − mrr
// for every candidate (Lemma 1's internal consistency).
func TestPropertyCriticalRatioBounds(t *testing.T) {
	f := func(seed int64) bool {
		pts := instanceFromSeed(seed, 24, 3)
		res, err := GeoGreedy(pts, 4)
		if err != nil {
			return false
		}
		selPts := make([]geom.Vector, len(res.Indices))
		for i, s := range res.Indices {
			selPts[i] = pts[s]
		}
		hull, err := newDualHull(maxPerDim(selPts))
		if err != nil {
			return false
		}
		for _, p := range selPts {
			if _, err := hull.insert(context.Background(), p); err != nil {
				return false
			}
		}
		minCR := math.Inf(1)
		for _, q := range pts {
			cr := hull.criticalRatio(q)
			if cr < minCR {
				minCR = cr
			}
		}
		mrr, err := MRRGeometric(pts, res.Indices)
		if err != nil {
			return false
		}
		return math.Abs((1-minCR)-mrr) <= 1e-6 || (minCR >= 1 && mrr <= 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
