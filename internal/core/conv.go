package core

import (
	"fmt"
	"sort"

	"repro/internal/assert"
	"repro/internal/geom"
	"repro/internal/happy"
	"repro/internal/lp"
)

// ConvexHullPoints returns the indices of D_conv: the points of pts
// that are extreme points of Conv(pts) (the orthotope convex hull of
// the paper). By Lemma 3 D_conv ⊆ D_happy, so the happy filter is
// applied first and each surviving point p is tested for coverage:
// p is NOT extreme iff it lies in the downward-closed hull of the
// other candidates, i.e. iff the covering LP
//
//	minimize  Σ_q y_q
//	subject to Σ_q y_q·q[j] ≥ p[j]  for every dimension j,  y ≥ 0
//
// (over the other happy points q) has optimum ≤ 1. The LP has only d
// constraints, so it stays fast even with thousands of candidate
// columns. Exact duplicates of p are excluded from the covering set
// so that repeated extreme points are still reported (each copy once).
func ConvexHullPoints(pts []geom.Vector) ([]int, error) {
	if _, err := validatePoints(pts); err != nil {
		return nil, err
	}
	hp, err := happy.Compute(pts)
	if err != nil {
		return nil, fmt.Errorf("core: happy filter for hull extraction: %w", err)
	}
	return convexAmong(pts, hp)
}

// ConvexAmongHappy is ConvexHullPoints for callers that already hold
// the happy index set.
func ConvexAmongHappy(pts []geom.Vector, happyIdx []int) ([]int, error) {
	if _, err := validatePoints(pts); err != nil {
		return nil, err
	}
	for _, i := range happyIdx {
		if i < 0 || i >= len(pts) {
			return nil, fmt.Errorf("%w: %d (n=%d)", ErrBadSubset, i, len(pts))
		}
	}
	return convexAmong(pts, happyIdx)
}

func convexAmong(pts []geom.Vector, cand []int) ([]int, error) {
	if len(cand) == 0 {
		return nil, nil
	}
	d := len(pts[0])
	var out []int
	for _, pi := range cand {
		p := pts[pi]
		// Covering set: the other candidates, minus exact duplicates
		// of p.
		cols := make([]int, 0, len(cand)-1)
		for _, qi := range cand {
			if qi == pi || pts[qi].Equal(p, 0) {
				continue
			}
			cols = append(cols, qi)
		}
		extreme := true
		if len(cols) > 0 {
			covered, err := coverable(pts, cols, p, d)
			if err != nil {
				return nil, err
			}
			extreme = !covered
		}
		if extreme {
			out = append(out, pi)
		}
	}
	sort.Ints(out)
	return out, nil
}

// coverable solves the covering LP and reports whether the optimum
// is ≤ 1 (p is dominated by a convex combination, hence interior or
// on a face without being a vertex).
func coverable(pts []geom.Vector, cols []int, p geom.Vector, d int) (bool, error) {
	obj := make([]float64, len(cols))
	for i := range obj {
		obj[i] = 1
	}
	cons := make([]lp.Constraint, d)
	for j := 0; j < d; j++ {
		coeffs := make([]float64, len(cols))
		for i, qi := range cols {
			coeffs[i] = pts[qi][j]
		}
		cons[j] = lp.Constraint{Coeffs: coeffs, Rel: lp.GE, RHS: p[j]}
	}
	sol, err := lp.Solve(&lp.Problem{Objective: obj, Maximize: false, Constraints: cons})
	if err != nil {
		return false, fmt.Errorf("core: hull covering LP: %w", err)
	}
	switch sol.Status {
	case lp.Optimal:
		if assert.Enabled {
			// The objective Σ y_q over y ≥ 0 can never be negative; a
			// negative optimum means the tableau lost feasibility.
			assert.That(sol.Objective >= -geom.Eps,
				"hull covering LP returned negative mass %g", sol.Objective)
		}
		return sol.Objective <= 1+1e-7, nil
	case lp.Infeasible:
		// Cannot cover p at all (it has the strict per-dimension
		// maximum somewhere): definitely extreme.
		return false, nil
	default:
		return false, fmt.Errorf("core: hull covering LP unexpectedly %v", sol.Status)
	}
}
