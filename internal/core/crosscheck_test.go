package core

// Cross-oracle tests: the general d-dimensional dual machinery must
// agree with the independent exact 2-D implementation (hull2d) on
// planar inputs, and the happy filter must agree with the geometric
// critical-ratio picture.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/happy"
	"repro/internal/hull2d"
)

// TestDualCriticalRatioMatchesHull2D: cr(q, S) from the dual polytope
// equals the planar ray/segment computation.
func TestDualCriticalRatioMatchesHull2D(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(30)
		pts := antiCorrelated(rng, n, 2)
		selN := 2 + rng.Intn(n-1)
		sel := rng.Perm(n)[:selN]

		selPts := make([]hull2d.Point, 0, selN)
		for _, s := range sel {
			selPts = append(selPts, hull2d.Point{X: pts[s][0], Y: pts[s][1]})
		}
		for probe := 0; probe < 5; probe++ {
			q := pts[rng.Intn(n)]
			viaDual, err := CriticalRatioOf(pts, sel, q)
			if err != nil {
				t.Fatal(err)
			}
			via2D, err := hull2d.CriticalRatio(selPts, hull2d.Point{X: q[0], Y: q[1]})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(viaDual-via2D) > 1e-6*(1+via2D) {
				t.Fatalf("trial %d: dual %v vs hull2d %v (q=%v sel=%v)",
					trial, viaDual, via2D, q, sel)
			}
		}
	}
}

// TestHappyAgreesWithCriticalRatioPicture: a point that is strictly
// inside Conv(D \ {p}) with critical ratio comfortably above 1 ought
// not to be a hull extreme point, and hull extreme points always have
// cr ≤ 1 against the others.
func TestHappyAgreesWithCriticalRatioPicture(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.Intn(25)
		pts := antiCorrelated(rng, n, 3)
		hp, err := happy.Compute(pts)
		if err != nil {
			t.Fatal(err)
		}
		conv, err := ConvexAmongHappy(pts, hp)
		if err != nil {
			t.Fatal(err)
		}
		inConv := map[int]bool{}
		for _, c := range conv {
			inConv[c] = true
		}
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		for i := 0; i < n; i++ {
			others := make([]int, 0, n-1)
			for _, j := range all {
				if j != i {
					others = append(others, j)
				}
			}
			cr, err := CriticalRatioOf(pts, others, pts[i])
			if err != nil {
				t.Fatal(err)
			}
			if inConv[i] && cr > 1+1e-7 {
				t.Fatalf("trial %d: extreme point %d strictly inside others' hull (cr=%v)", trial, i, cr)
			}
			if !inConv[i] && cr < 1-1e-7 {
				t.Fatalf("trial %d: non-extreme point %d outside others' hull (cr=%v)", trial, i, cr)
			}
		}
	}
}

// FuzzSubjugates cross-validates the fast O(d²) subjugation test
// against the explicit facet-enumeration oracle on fuzzer-generated
// planar and 3-d points.
func FuzzSubjugates(f *testing.F) {
	f.Add(0.5, 0.5, 0.5, 0.4, 0.4, 0.4)
	f.Add(0.1, 1.0, 1.0, 0.2, 0.9, 0.9)
	f.Add(1.0, 0.05, 0.3, 0.9, 0.1, 0.31)
	f.Fuzz(func(t *testing.T, a, b, c, x, y, z float64) {
		clamp := func(v float64) float64 {
			v = math.Abs(v)
			v = math.Mod(v, 1)
			if v < 0.01 {
				v = 0.01
			}
			return v
		}
		p := geom.Vector{clamp(a), clamp(b), clamp(c)}
		q := geom.Vector{clamp(x), clamp(y), clamp(z)}
		fast, err1 := happy.Subjugates(p, q)
		oracle, err2 := happy.SubjugatesByPlanes(p, q)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error mismatch: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if fast != oracle {
			// Tolerance boundaries can legitimately disagree; accept
			// only if q is within eps of a facet of Y(p).
			planes, err := happy.EnumeratePlanes(p)
			if err != nil {
				t.Fatal(err)
			}
			for _, h := range planes {
				if math.Abs(h.Eval(q)) < 1e-7 {
					return
				}
			}
			if math.Abs(happy.Membership(p, q)-1) < 1e-7 {
				return
			}
			t.Fatalf("Subjugates(%v, %v) = %v, oracle %v", p, q, fast, oracle)
		}
	})
}
