package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// Differential tests: every Par entry point must return answers that
// are byte-identical to the sequential (workers=1) path — same
// selection indices in the same order, bitwise-equal regret ratios,
// same exhaustion point — for every worker count, dimension and data
// distribution. This is the determinism contract of
// internal/parallel; on a single-core CI box only explicit worker
// counts exercise the concurrent code path, so the counts below are
// passed explicitly rather than derived from GOMAXPROCS.

// diffWorkers are the parallel worker counts compared against the
// sequential baseline. 4 exceeds the chunk count of small inputs
// (exercising the worker cap) and 7 is deliberately not a power of
// two (uneven chunk boundaries).
var diffWorkers = []int{4, 7}

// diffFamilies builds the three distributions of the paper's
// synthetic benchmark at a fixed seed.
func diffFamilies(t *testing.T, n, d int, seed int64) map[string][]geom.Vector {
	t.Helper()
	out := make(map[string][]geom.Vector, 3)
	for name, gen := range map[string]func(int, int, int64) ([]geom.Vector, error){
		"independent":    dataset.Independent,
		"correlated":     dataset.Correlated,
		"anticorrelated": dataset.AntiCorrelated,
	} {
		pts, err := gen(n, d, seed)
		if err != nil {
			t.Fatalf("%s(n=%d d=%d): %v", name, n, d, err)
		}
		out[name] = pts
	}
	return out
}

// diffSize picks a dataset size that keeps the d-dimensional dual
// hull affordable: hull complexity grows sharply with d.
func diffSize(d int) int {
	switch {
	case d <= 3:
		return 3000
	case d == 4:
		return 1500
	case d == 5:
		return 500
	default:
		return 250
	}
}

func TestGeoGreedyParallelMatchesSequential(t *testing.T) {
	ctx := context.Background()
	for d := 2; d <= 6; d++ {
		n := diffSize(d)
		for name, pts := range diffFamilies(t, n, d, int64(100+d)) {
			k := d + 5
			ref, err := GeoGreedyParCtx(ctx, pts, k, 1)
			if err != nil {
				t.Fatalf("%s d=%d sequential: %v", name, d, err)
			}
			for _, w := range diffWorkers {
				got, err := GeoGreedyParCtx(ctx, pts, k, w)
				if err != nil {
					t.Fatalf("%s d=%d workers=%d: %v", name, d, w, err)
				}
				if !reflect.DeepEqual(got.Indices, ref.Indices) {
					t.Errorf("%s d=%d workers=%d: indices %v, want %v",
						name, d, w, got.Indices, ref.Indices)
				}
				if got.MRR != ref.MRR {
					t.Errorf("%s d=%d workers=%d: MRR %.17g, want %.17g",
						name, d, w, got.MRR, ref.MRR)
				}
				if got.ExhaustedAt != ref.ExhaustedAt {
					t.Errorf("%s d=%d workers=%d: ExhaustedAt %d, want %d",
						name, d, w, got.ExhaustedAt, ref.ExhaustedAt)
				}
			}
		}
	}
}

// TestGeoGreedyParallelLarge is the at-scale determinism check:
// 50k anti-correlated points, where the chunked fan-out genuinely
// splits work across many chunks per phase.
func TestGeoGreedyParallelLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large differential run skipped in -short")
	}
	ctx := context.Background()
	pts, err := dataset.AntiCorrelated(50000, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	const k = 12
	ref, err := GeoGreedyParCtx(ctx, pts, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, 8} {
		got, err := GeoGreedyParCtx(ctx, pts, k, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got.Indices, ref.Indices) || got.MRR != ref.MRR ||
			got.ExhaustedAt != ref.ExhaustedAt {
			t.Fatalf("workers=%d diverged: got {%v %.17g %d}, want {%v %.17g %d}",
				w, got.Indices, got.MRR, got.ExhaustedAt,
				ref.Indices, ref.MRR, ref.ExhaustedAt)
		}
	}
}

// TestGeoGreedyParallelExhaustion hits the early-exhaustion path
// (k larger than the convex-hull population) under parallel scans: a
// correlated distribution has a tiny upper hull, so the candidate
// pool dries up well before the budget.
func TestGeoGreedyParallelExhaustion(t *testing.T) {
	ctx := context.Background()
	pts, err := dataset.Correlated(800, 3, 21)
	if err != nil {
		t.Fatal(err)
	}
	const k = 200
	ref, err := GeoGreedyParCtx(ctx, pts, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ref.ExhaustedAt < 0 {
		t.Skipf("distribution did not exhaust at k=%d; pick a smaller hull", k)
	}
	for _, w := range diffWorkers {
		got, err := GeoGreedyParCtx(ctx, pts, k, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got.Indices, ref.Indices) || got.MRR != ref.MRR ||
			got.ExhaustedAt != ref.ExhaustedAt {
			t.Fatalf("workers=%d diverged on exhaustion: got {%v %.17g %d}, want {%v %.17g %d}",
				w, got.Indices, got.MRR, got.ExhaustedAt,
				ref.Indices, ref.MRR, ref.ExhaustedAt)
		}
	}
}

func TestGreedyParallelMatchesSequential(t *testing.T) {
	ctx := context.Background()
	for d := 2; d <= 4; d++ {
		for name, pts := range diffFamilies(t, 150, d, int64(40+d)) {
			k := d + 3
			ref, err := GreedyParCtx(ctx, pts, k, 1)
			if err != nil {
				t.Fatalf("%s d=%d sequential: %v", name, d, err)
			}
			for _, w := range diffWorkers {
				got, err := GreedyParCtx(ctx, pts, k, w)
				if err != nil {
					t.Fatalf("%s d=%d workers=%d: %v", name, d, w, err)
				}
				if !reflect.DeepEqual(got.Indices, ref.Indices) {
					t.Errorf("%s d=%d workers=%d: indices %v, want %v",
						name, d, w, got.Indices, ref.Indices)
				}
				if got.MRR != ref.MRR {
					t.Errorf("%s d=%d workers=%d: MRR %.17g, want %.17g",
						name, d, w, got.MRR, ref.MRR)
				}
				if got.ExhaustedAt != ref.ExhaustedAt {
					t.Errorf("%s d=%d workers=%d: ExhaustedAt %d, want %d",
						name, d, w, got.ExhaustedAt, ref.ExhaustedAt)
				}
			}
		}
	}
}

func TestEvaluatorsParallelMatchSequential(t *testing.T) {
	ctx := context.Background()
	for d := 2; d <= 5; d++ {
		for name, pts := range diffFamilies(t, 800, d, int64(9000+d)) {
			res, err := GeoGreedyParCtx(ctx, pts, d+4, 1)
			if err != nil {
				t.Fatalf("%s d=%d selection: %v", name, d, err)
			}
			sel := res.Indices

			refG, err := MRRGeometricParCtx(ctx, pts, sel, 1)
			if err != nil {
				t.Fatalf("%s d=%d geometric sequential: %v", name, d, err)
			}
			refS, err := MRRSampledParCtx(ctx, pts, sel, 300, 5, 1)
			if err != nil {
				t.Fatalf("%s d=%d sampled sequential: %v", name, d, err)
			}
			refA, err := AverageRegretSampledParCtx(ctx, pts, sel, 300, 5, 1)
			if err != nil {
				t.Fatalf("%s d=%d average sequential: %v", name, d, err)
			}
			for _, w := range diffWorkers {
				if got, err := MRRGeometricParCtx(ctx, pts, sel, w); err != nil || got != refG {
					t.Errorf("%s d=%d workers=%d geometric: (%.17g, %v), want (%.17g, nil)",
						name, d, w, got, err, refG)
				}
				if got, err := MRRSampledParCtx(ctx, pts, sel, 300, 5, w); err != nil || got != refS {
					t.Errorf("%s d=%d workers=%d sampled: (%.17g, %v), want (%.17g, nil)",
						name, d, w, got, err, refS)
				}
				if got, err := AverageRegretSampledParCtx(ctx, pts, sel, 300, 5, w); err != nil || got != refA {
					t.Errorf("%s d=%d workers=%d average: (%.17g, %v), want (%.17g, nil)",
						name, d, w, got, err, refA)
				}
			}
		}
	}
}

func TestStoredListParallelMatchesSequential(t *testing.T) {
	ctx := context.Background()
	pts, err := dataset.AntiCorrelated(1200, 4, 33)
	if err != nil {
		t.Fatal(err)
	}
	const maxLen = 10
	ref, err := BuildStoredListUpToParCtx(ctx, pts, maxLen, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range diffWorkers {
		got, err := BuildStoredListUpToParCtx(ctx, pts, maxLen, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if got.Len() != ref.Len() {
			t.Fatalf("workers=%d: list length %d, want %d", w, got.Len(), ref.Len())
		}
		for k := 1; k <= ref.Len(); k++ {
			refSel, err := ref.Query(k)
			if err != nil {
				t.Fatal(err)
			}
			gotSel, err := got.Query(k)
			if err != nil {
				t.Fatalf("workers=%d k=%d: %v", w, k, err)
			}
			if !reflect.DeepEqual(gotSel, refSel) {
				t.Errorf("workers=%d k=%d: prefix %v, want %v", w, k, gotSel, refSel)
			}
			refMRR, err := ref.MRRFor(k)
			if err != nil {
				t.Fatal(err)
			}
			gotMRR, err := got.MRRFor(k)
			if err != nil {
				t.Fatalf("workers=%d k=%d: %v", w, k, err)
			}
			if gotMRR != refMRR {
				t.Errorf("workers=%d k=%d: MRR %.17g, want %.17g", w, k, gotMRR, refMRR)
			}
		}
	}
}
