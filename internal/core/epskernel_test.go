package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestEpsKernelRejectsBadEps(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	pts := randomNormalized(rng, 20, 3)
	for _, eps := range []float64{math.NaN(), -0.01, 1, 1.5} {
		if _, err := EpsKernelParCtx(context.Background(), pts, eps, nil, 1); !errors.Is(err, ErrBadEps) {
			t.Fatalf("eps=%v: got %v, want ErrBadEps", eps, err)
		}
	}
}

// TestEpsKernelZeroIsExact pins the degenerate case eps = 0: the
// greedy runs to the usual unit-support stop, so the kernel covers the
// convex boundary exactly and its measured regret against the full set
// is zero (up to geometric tolerance).
func TestEpsKernelZeroIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	pts := antiCorrelated(rng, 300, 3)
	res, err := EpsKernelParCtx(context.Background(), pts, 0, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.MRR > geom.Eps {
		t.Fatalf("eps=0 kernel reports MRR %v", res.MRR)
	}
	mrr, err := MRRGeometric(pts, res.Indices)
	if err != nil {
		t.Fatal(err)
	}
	if mrr > 1e-9 {
		t.Fatalf("eps=0 kernel has independent MRR %v", mrr)
	}
}

// TestEpsKernelBoundHolds is the core guarantee: for every eps the
// returned subset's maximum regret ratio against the full point set,
// re-measured by the independent geometric evaluator, stays within eps.
func TestEpsKernelBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, d := range []int{2, 3, 4} {
		pts := antiCorrelated(rng, 400, d)
		for _, eps := range []float64{0.02, 0.1, 0.3} {
			res, err := EpsKernelParCtx(context.Background(), pts, eps, nil, 2)
			if err != nil {
				t.Fatalf("d=%d eps=%v: %v", d, eps, err)
			}
			if res.MRR > eps+geom.Eps {
				t.Fatalf("d=%d eps=%v: kernel reports MRR %v", d, eps, res.MRR)
			}
			mrr, err := MRRGeometric(pts, res.Indices)
			if err != nil {
				t.Fatal(err)
			}
			if mrr > eps+1e-9 {
				t.Fatalf("d=%d eps=%v: independent MRR %v exceeds bound", d, eps, mrr)
			}
		}
	}
}

// TestEpsKernelMonotoneInEps: the greedy adds candidates in an
// eps-independent order and only the stop threshold moves, so a looser
// eps must select a prefix of a tighter eps's kernel.
func TestEpsKernelMonotoneInEps(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	pts := antiCorrelated(rng, 500, 3)
	prev := -1
	for _, eps := range []float64{0.3, 0.1, 0.02, 0} {
		res, err := EpsKernelParCtx(context.Background(), pts, eps, nil, 1)
		if err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
		if prev >= 0 && len(res.Indices) < prev {
			t.Fatalf("tightening eps to %v shrank the kernel: %d < %d", eps, len(res.Indices), prev)
		}
		prev = len(res.Indices)
	}
}

func TestEpsKernelExtraSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	pts := antiCorrelated(rng, 120, 3)
	// Out-of-range seeds are a caller bug, reported as ErrBadSubset.
	if _, err := EpsKernelParCtx(context.Background(), pts, 0.1, []int{len(pts)}, 1); !errors.Is(err, ErrBadSubset) {
		t.Fatalf("out-of-range seed: %v", err)
	}
	if _, err := EpsKernelParCtx(context.Background(), pts, 0.1, []int{-1}, 1); !errors.Is(err, ErrBadSubset) {
		t.Fatalf("negative seed: %v", err)
	}
	// Valid seeds appear in the kernel, and seeding cannot weaken the
	// bound.
	seeds := []int{0, 7, 42}
	res, err := EpsKernelParCtx(context.Background(), pts, 0.15, seeds, 1)
	if err != nil {
		t.Fatal(err)
	}
	have := make(map[int]bool, len(res.Indices))
	for _, i := range res.Indices {
		have[i] = true
	}
	for _, s := range seeds {
		if !have[s] {
			t.Fatalf("seed %d missing from kernel %v", s, res.Indices)
		}
	}
	if res.MRR > 0.15+geom.Eps {
		t.Fatalf("seeded kernel MRR %v", res.MRR)
	}
}
