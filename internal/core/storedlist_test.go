package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
)

// geom2DFixture: two extremes plus interior points; the greedy
// exhausts the hull after the two extremes.
func geom2DFixture() []geom.Vector {
	pts := []geom.Vector{{1, 0.05}, {0.05, 1}}
	for i := 0; i < 20; i++ {
		f := 0.3 + 0.02*float64(i)
		pts = append(pts, geom.Vector{0.5 * f, 0.5 * f})
	}
	return pts
}

func TestBuildStoredListUpTo(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	pts := antiCorrelated(rng, 60, 3)
	full, err := BuildStoredList(pts)
	if err != nil {
		t.Fatal(err)
	}
	if full.Len() < 8 {
		t.Skipf("degenerate draw: full list only %d entries", full.Len())
	}
	partial, err := BuildStoredListUpTo(pts, 8)
	if err != nil {
		t.Fatal(err)
	}
	if partial.Len() != 8 {
		t.Fatalf("partial length %d, want 8", partial.Len())
	}
	// The partial list is a prefix of the full list with the same
	// regrets.
	for k := 1; k <= 8; k++ {
		a, err := full.Query(k)
		if err != nil {
			t.Fatal(err)
		}
		b, err := partial.Query(k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("k=%d: %v vs %v", k, a, b)
		}
		ma, _ := full.MRRFor(k)
		mb, _ := partial.MRRFor(k)
		if ma != mb {
			t.Fatalf("k=%d: regrets %v vs %v", k, ma, mb)
		}
	}
	// Beyond the prefix: partial refuses, full serves.
	if _, err := partial.Query(9); err == nil {
		t.Fatal("query beyond partial prefix accepted")
	}
	if _, err := partial.MRRFor(9); err == nil {
		t.Fatal("MRRFor beyond partial prefix accepted")
	}
	if _, err := full.Query(10_000); err != nil {
		t.Fatalf("full list oversized query: %v", err)
	}
	if _, err := BuildStoredListUpTo(pts, 0); err != ErrBadK {
		t.Fatalf("maxLen=0: %v", err)
	}
}

func TestBuildStoredListUpToCompleteWhenExhausted(t *testing.T) {
	// Two extreme points, many interior: the greedy exhausts the
	// hull within the budget, so even the "partial" list is complete.
	pts := geom2DFixture()
	list, err := BuildStoredListUpTo(pts, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := list.Query(10_000); err != nil {
		t.Fatalf("exhausted list should serve any k: %v", err)
	}
	mrr, err := list.MRRFor(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if mrr > 1e-9 {
		t.Fatalf("exhausted list regret %v", mrr)
	}
}

func TestPartialListSaveLoadKeepsCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := antiCorrelated(rng, 60, 3)
	partial, err := BuildStoredListUpTo(pts, 6)
	if err != nil {
		t.Fatal(err)
	}
	if partial.Len() < 6 {
		t.Skip("degenerate draw")
	}
	var buf bytes.Buffer
	if err := partial.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStoredList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.Query(7); err == nil {
		t.Fatal("loaded partial list served beyond prefix")
	}
}

func TestMinK(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	pts := antiCorrelated(rng, 80, 3)
	list, err := BuildStoredList(pts)
	if err != nil {
		t.Fatal(err)
	}
	// Zero budget: needs the full hull, still answerable.
	k0, ok := list.MinK(0)
	if !ok {
		t.Fatal("complete list must answer eps=0")
	}
	m, err := list.MRRFor(k0)
	if err != nil || m > 0 {
		t.Fatalf("MinK(0) = %d with regret %v, %v", k0, m, err)
	}
	if k0 > 1 {
		prev, err := list.MRRFor(k0 - 1)
		if err != nil || prev <= 0 {
			t.Fatalf("MinK(0) not minimal: regret at %d is %v", k0-1, prev)
		}
	}
	// A middling budget.
	for _, eps := range []float64{0.01, 0.05, 0.2} {
		k, ok := list.MinK(eps)
		if !ok {
			t.Fatalf("eps=%v unanswerable", eps)
		}
		m, err := list.MRRFor(k)
		if err != nil || m > eps {
			t.Fatalf("MinK(%v) = %d has regret %v", eps, k, m)
		}
		if k > 1 {
			prev, _ := list.MRRFor(k - 1)
			if prev <= eps {
				t.Fatalf("MinK(%v) = %d not minimal (regret %v at %d)", eps, k, prev, k-1)
			}
		}
	}
	// Negative budget: unanswerable.
	if _, ok := list.MinK(-0.1); ok {
		t.Fatal("negative eps answered")
	}
	// A partial list that never reaches a tiny budget.
	partial, err := BuildStoredListUpTo(pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := partial.MRRFor(partial.Len()); m > 1e-9 {
		if _, ok := partial.MinK(0); ok {
			t.Fatal("partial list answered eps=0 despite positive tail regret")
		}
	}
}
