//go:build kregretfault

// NaN-position sweep for GeoGreedy: a NaN critical ratio injected at
// ANY support evaluation — initial scan, post-insertion relocation,
// including the final relocation pass whose values are only ever read
// by the regret evaluation — must surface as ErrDegenerate, never as
// a silently wrong answer. Before the parallel reduction unified the
// argmax and currentMRR folds, a NaN produced by the very last
// insertion's relocation was dropped by the IsNaN guard in the regret
// fold; this sweep pins the fix for both the sequential and the
// parallel path.
package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/fault"
)

func TestGeoGreedyNaNSweepAlwaysDegenerate(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	ctx := context.Background()
	pts := antiCorrelated(rand.New(rand.NewSource(17)), 120, 3)
	const k = 7

	// Count the support evaluations of a clean run: Observe makes the
	// site tally fire() calls without corrupting anything.
	fault.Observe(fault.SiteGeoGreedySupport)
	ref, err := GeoGreedyParCtx(ctx, pts, k, 1)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	total := fault.Fired(fault.SiteGeoGreedySupport)
	if total < len(pts) {
		t.Fatalf("observed only %d support evaluations for n=%d", total, len(pts))
	}

	// Inject one NaN at every possible position. The run is identical
	// to the clean one up to the injection (workers=1), so every
	// skip < total is guaranteed to reach the armed site; with
	// workers=4 the per-phase evaluation counts are the same, only
	// the interleaving differs, so the site still fires and the NaN
	// must still poison whichever reduction reads it.
	for _, workers := range []int{1, 4} {
		for skip := 0; skip < total; skip++ {
			fault.Reset()
			fault.ArmAfter(fault.SiteGeoGreedySupport, skip, 1)
			res, err := GeoGreedyParCtx(ctx, pts, k, workers)
			if fault.Fired(fault.SiteGeoGreedySupport) == 0 {
				// The parallel run finished before reaching this
				// position (it errored out of an earlier phase on a
				// previous NaN — impossible with a single shot — or
				// evaluated fewer sites, which would be a real bug).
				t.Fatalf("workers=%d skip=%d: armed site never fired", workers, skip)
			}
			if err == nil {
				t.Fatalf("workers=%d skip=%d: NaN swallowed, got %v mrr=%g",
					workers, skip, res.Indices, res.MRR)
			}
			if !errors.Is(err, ErrDegenerate) {
				t.Fatalf("workers=%d skip=%d: error %v is not ErrDegenerate", workers, skip, err)
			}
		}
	}

	// And a clean run after the sweep still matches the reference.
	fault.Reset()
	got, err := GeoGreedyParCtx(ctx, pts, k, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.MRR != ref.MRR {
		t.Fatalf("post-sweep MRR %.17g, want %.17g", got.MRR, ref.MRR)
	}
}
