package core

import (
	"fmt"
	"math"
	"math/rand"

	"context"

	"repro/internal/assert"
	"repro/internal/geom"
	"repro/internal/mat"
	"repro/internal/parallel"
)

// EvalIndex is the reusable evaluation substrate for one dataset: the
// points flattened into a row-major mat.PointMatrix (built once, so
// every later scan is a contiguous kernel sweep instead of a
// pointer-chase over []geom.Vector), plus an optional extreme set —
// the skyline indices — that the "max over D" side of every evaluator
// scans instead of the full dataset.
//
// Pruning is exact, not approximate (DESIGN.md §12): every utility the
// evaluators maximize over D is non-negative (validated weights,
// sampled utilities, dual-hull vertices), and for w ≥ 0 the maximum of
// w·q over D is attained at a skyline point with the identical float64
// bits — FP multiply and add are monotone on non-negative operands, so
// a dominating point's dot product evaluates ≥ bit-for-bit. The
// differential suite asserts pruned and full-scan evaluators agree
// byte-identically on every distribution, dimension and worker count.
//
// The zero extreme set (SetExtreme never called) means full scans;
// that is the WithPruning(false) path and the reference side of the
// differential tests.
type EvalIndex struct {
	pts  []geom.Vector
	m    *mat.PointMatrix
	ext  []int            // skyline indices, ascending; nil = no pruning
	extM *mat.PointMatrix // gathered rows of ext
}

// NewEvalIndex validates the dataset and flattens it. The point slice
// is retained (read-only) for selection-side lookups and hull builds.
func NewEvalIndex(pts []geom.Vector) (*EvalIndex, error) {
	if _, err := validatePoints(pts); err != nil {
		return nil, err
	}
	return &EvalIndex{pts: pts, m: mat.FromVectors(pts)}, nil
}

// SetExtreme installs the extreme (skyline) index set consulted by the
// max-over-D side of the evaluators. idx must be non-empty and hold
// valid ascending dataset indices — it typically comes straight from
// the skyline pass, but it may also arrive from a persisted snapshot,
// so it is validated rather than trusted.
func (x *EvalIndex) SetExtreme(idx []int) error {
	if len(idx) == 0 {
		return fmt.Errorf("%w: empty extreme set", ErrBadSubset)
	}
	for k := 1; k < len(idx); k++ {
		if idx[k] <= idx[k-1] {
			return fmt.Errorf("%w: extreme set not strictly ascending at position %d", ErrBadSubset, k)
		}
	}
	em, err := x.m.Gather(idx)
	if err != nil {
		return fmt.Errorf("%w: extreme set: %v", ErrBadSubset, err)
	}
	x.ext = append([]int(nil), idx...)
	x.extM = em
	return nil
}

// Pruned reports whether an extreme set is installed.
func (x *EvalIndex) Pruned() bool { return x.extM != nil }

// scanMatrix returns the matrix the max-over-D scans run on: the
// extreme submatrix when pruning is on, the full matrix otherwise.
func (x *EvalIndex) scanMatrix() *mat.PointMatrix {
	if x.extM != nil {
		return x.extM
	}
	return x.m
}

// scanIndex maps a scan-row index back to its dataset index.
func (x *EvalIndex) scanIndex(i int) int {
	if x.ext != nil {
		return x.ext[i]
	}
	return i
}

// buildHull constructs the dual hull Q(S) of the selection, inserting
// every selected point under the context.
func (x *EvalIndex) buildHull(ctx context.Context, sel []int) (*dualHull, error) {
	selPts := make([]geom.Vector, len(sel))
	for i, s := range sel {
		selPts[i] = x.pts[s]
	}
	hull, err := newDualHull(maxPerDim(selPts))
	if err != nil {
		return nil, err
	}
	for _, p := range selPts {
		if _, err := hull.insert(ctx, p); err != nil {
			return nil, err
		}
	}
	return hull, nil
}

// supportScan fills (from the scratch pool — caller must
// putFloatScratch) the support value of every scan row against the
// hull: parallel.For chunks hand row ranges to the batched
// dd.SupportsInto kernel, with a cancellation check per scanBatch
// sub-range. The body returns the bare ctx error; callers wrap it with
// their site-specific message.
func (x *EvalIndex) supportScan(ctx context.Context, hull *dualHull, workers int) ([]float64, error) {
	qm := x.scanMatrix()
	vals := floatScratch(qm.Rows())
	err := parallel.For(ctx, qm.Rows(), workers, grainSupport, func(start, end int) error {
		for bs := start; bs < end; bs += scanBatch {
			if err := ctx.Err(); err != nil {
				return err
			}
			be := bs + scanBatch
			if be > end {
				be = end
			}
			hull.poly.SupportsInto(qm, bs, be, vals[bs:be], nil)
		}
		return nil
	})
	if err != nil {
		putFloatScratch(vals)
		return nil, err
	}
	return vals, nil
}

// MRRGeometricParCtx is the exact maximum regret ratio of sel
// (Lemma 1), scanned over the extreme set when pruning is on — the
// result is bit-identical either way, because the maximum support over
// D is attained at a skyline point with equal bits.
func (x *EvalIndex) MRRGeometricParCtx(ctx context.Context, sel []int, workers int) (float64, error) {
	if err := checkSelection(x.pts, sel); err != nil {
		return 0, err
	}
	hull, err := x.buildHull(ctx, sel)
	if err != nil {
		return 0, err
	}
	vals, err := x.supportScan(ctx, hull, workers)
	if err != nil {
		return 0, fmt.Errorf("core: regret evaluation canceled: %w", err)
	}
	defer putFloatScratch(vals)
	// Sequential fold in row order: NaN poisons (lowest index first,
	// reported as its dataset index), otherwise first-max — the same
	// semantics parallel.ArgMax guaranteed on the pre-kernel path.
	idx, maxSupport := -1, 0.0
	for i, s := range vals {
		if math.IsNaN(s) {
			return 0, fmt.Errorf("%w: point %d has NaN support in regret evaluation",
				ErrDegenerate, x.scanIndex(i))
		}
		if idx < 0 || s > maxSupport {
			idx, maxSupport = i, s
		}
	}
	if idx < 0 || maxSupport <= 1 {
		return 0, nil
	}
	mrr := 1 - 1/maxSupport
	if assert.Enabled {
		assert.UnitRange("MRRGeometric", mrr, geom.Eps)
	}
	return mrr, nil
}

// regretOf is rr(S, f) for weight vector w: both maxima run as flat
// kernels, the dataset side over the extreme set when pruning is on
// (bit-identical for the validated non-negative weights — see the
// exactness argument on EvalIndex).
func (x *EvalIndex) regretOf(sel []int, w geom.Vector) float64 {
	sm := x.scanMatrix()
	_, bestAll := sm.MaxDotRows(w, 0, sm.Rows())
	bestSel := math.Inf(-1)
	for _, i := range sel {
		if u := x.m.DotRow(w, i); u > bestSel {
			bestSel = u
		}
	}
	if bestAll <= 0 {
		return 0
	}
	r := 1 - bestSel/bestAll
	if r < 0 {
		return 0
	}
	return r
}

// RegretOf is the validated public form of regretOf (Definition 1).
func (x *EvalIndex) RegretOf(sel []int, w geom.Vector) (float64, error) {
	if err := checkSelection(x.pts, sel); err != nil {
		return 0, err
	}
	if err := geom.CheckSameDim(x.pts[0], w); err != nil {
		return 0, fmt.Errorf("core: utility weights: %w", err)
	}
	if !w.NonNegative(0) {
		return 0, fmt.Errorf("core: utility weights must be non-negative, got %v", w)
	}
	return x.regretOf(sel, w), nil
}

// sampledRegrets draws `samples` utilities from the seeded generator
// and fills their regret ratios, fanning the per-utility evaluation
// out over the workers. The returned slice comes from the scratch
// pool; the caller must putFloatScratch it.
func (x *EvalIndex) sampledRegrets(ctx context.Context, sel []int, samples int, seed int64, workers int) ([]float64, error) {
	if err := checkSelection(x.pts, sel); err != nil {
		return nil, err
	}
	if samples < 1 {
		return nil, fmt.Errorf("core: samples must be positive, got %d", samples)
	}
	d := len(x.pts[0])
	rng := rand.New(rand.NewSource(seed))
	// One flat backing for all sample vectors, returned to the pool on
	// exit: the per-sample utilities are read-only once drawn and never
	// outlive this call.
	wbuf := floatScratch(samples * d)
	defer putFloatScratch(wbuf)
	ws := make([]geom.Vector, samples)
	for s := range ws {
		w := geom.Vector(wbuf[s*d : (s+1)*d])
		randomUtilityInto(rng, w)
		ws[s] = w
	}
	regrets := floatScratch(samples)
	err := parallel.For(ctx, samples, workers, 1, func(start, end int) error {
		for s := start; s < end; s++ {
			if (s-start)%sampleCtxBatch == 0 {
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("core: sampled regret evaluation canceled: %w", err)
				}
			}
			regrets[s] = x.regretOf(sel, ws[s])
		}
		return nil
	})
	if err != nil {
		putFloatScratch(regrets)
		return nil, err
	}
	return regrets, nil
}

// MRRSampledParCtx estimates the maximum regret ratio over `samples`
// seeded random utilities (see the package-level MRRSampled).
func (x *EvalIndex) MRRSampledParCtx(ctx context.Context, sel []int, samples int, seed int64, workers int) (float64, error) {
	regrets, err := x.sampledRegrets(ctx, sel, samples, seed, workers)
	if err != nil {
		return 0, err
	}
	defer putFloatScratch(regrets)
	worst := 0.0
	for _, r := range regrets {
		if r > worst {
			worst = r
		}
	}
	return worst, nil
}

// AverageRegretSampledParCtx estimates the average regret ratio over
// `samples` seeded random utilities; the sum folds sequentially in
// sample order so the estimate is byte-identical at every worker
// count.
func (x *EvalIndex) AverageRegretSampledParCtx(ctx context.Context, sel []int, samples int, seed int64, workers int) (float64, error) {
	regrets, err := x.sampledRegrets(ctx, sel, samples, seed, workers)
	if err != nil {
		return 0, err
	}
	defer putFloatScratch(regrets)
	var sum float64
	for _, r := range regrets {
		sum += r
	}
	// sampledRegrets rejects samples < 1, so the divisor is ≥ 1.
	//kregret:allow naninf: samples validated positive above
	return sum / float64(samples), nil
}

// WorstUtilityParCtx returns a maximum regret ratio utility of the
// selection (Definition 2) and the witness point attaining it,
// scanning supports in parallel (see the package-level WorstUtility
// for the contract). The fold is first-max in row order with the same
// 1+eps threshold and NaN-skipping comparison the sequential scan
// used, so the witness is identical at every worker count. Under
// pruning the witness maps back through the extreme set; it can differ
// from the full-scan witness only when a dominated point ties its
// dominator's support to the last bit — a measure-zero event on
// continuous data, and the regret value itself is always identical.
func (x *EvalIndex) WorstUtilityParCtx(ctx context.Context, sel []int, workers int) (geom.Vector, int, error) {
	if err := checkSelection(x.pts, sel); err != nil {
		return nil, -1, err
	}
	hull, err := x.buildHull(ctx, sel)
	if err != nil {
		return nil, -1, err
	}
	vals, err := x.supportScan(ctx, hull, workers)
	if err != nil {
		return nil, -1, fmt.Errorf("core: worst-utility scan canceled: %w", err)
	}
	maxSupport, witness := 1.0+geom.Eps, -1
	for i, s := range vals {
		if s > maxSupport {
			maxSupport, witness = s, i
		}
	}
	putFloatScratch(vals)
	if witness < 0 {
		return nil, -1, nil
	}
	qi := x.scanIndex(witness)
	// Recover the argmax dual vertex for the witness (one extra
	// support evaluation; bit-identical to the scan's value).
	_, v := hull.supportOf(x.pts[qi])
	if v == nil {
		return nil, -1, fmt.Errorf("%w: witness %d lost its dual vertex", ErrDegenerate, qi)
	}
	w, err := v.Point.Normalize()
	if err != nil {
		return nil, -1, fmt.Errorf("core: degenerate worst-case utility: %w", err)
	}
	return w, qi, nil
}
