package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
)

// ErrBadEps rejects ε-kernel tolerances outside [0, 1).
var ErrBadEps = errors.New("core: eps must be in [0, 1)")

// EpsKernelParCtx greedily selects an ε-kernel of the candidate
// points: a subset C such that for every nonnegative preference w,
// max over C of w·p ≥ (1−eps)·max over pts of w·p — equivalently, the
// maximum regret ratio of C measured against pts is at most eps. It
// runs the same dual-hull greedy loop as GeoGreedy with the stop
// threshold relaxed from support > 1 (strictly outside the hull) to
// support > 1/(1−eps), so the loop ends exactly when every remaining
// candidate's regret contribution has dropped to eps. The budget is
// unbounded (k = n): the kernel is as large as the data demands, and
// its size depends on eps and the hull geometry, not on n.
//
// extraSeeds, when non-nil, are candidate indices inserted right after
// the dimension boundary seeds — the direction-net supports package
// coreset feeds in to warm-start the hull. They join the kernel
// unconditionally (duplicates skipped), which can only shrink the
// greedy tail, never violate the bound.
//
// eps = 0 degenerates to the exact convex-boundary expansion: the loop
// runs until every candidate is inside the hull, so the result carries
// MRR 0. The returned Result reports the kernel indices in selection
// order and the MRR of the kernel against pts (≤ eps up to the usual
// geometric tolerance).
func EpsKernelParCtx(ctx context.Context, pts []geom.Vector, eps float64, extraSeeds []int, workers int) (*Result, error) {
	if math.IsNaN(eps) || eps < 0 || eps >= 1 {
		return nil, fmt.Errorf("%w: got %v", ErrBadEps, eps)
	}
	return greedyHullTrace(ctx, pts, len(pts), workers, 1/(1-eps), extraSeeds, nil)
}
