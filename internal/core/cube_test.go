package core

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestCubeBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := antiCorrelated(rng, 200, 3)
	res, err := Cube(pts, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Indices) > 20 || len(res.Indices) == 0 {
		t.Fatalf("selected %d", len(res.Indices))
	}
	if res.MRR < 0 || res.MRR > 1 {
		t.Fatalf("mrr %v", res.MRR)
	}
}

func TestCubeValidation(t *testing.T) {
	if _, err := Cube(nil, 3); err != ErrNoPoints {
		t.Fatalf("empty: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	pts := antiCorrelated(rng, 10, 3)
	if _, err := Cube(pts, 0); err != ErrBadK {
		t.Fatalf("k=0: %v", err)
	}
}

func TestCubeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	pts := antiCorrelated(rng, 300, 4)
	a, err := Cube(pts, 25)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cube(pts, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Indices, b.Indices) {
		t.Fatal("non-deterministic selection")
	}
}

// TestCubeGuarantee: the CUBE bound holds when the full cell budget
// fits in k (boundary padding can consume part of the budget, so test
// with k comfortably above t^(d−1)+d).
func TestCubeGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		d := 2 + rng.Intn(3)
		pts := antiCorrelated(rng, 150+rng.Intn(300), d)
		k := 3*d + rng.Intn(40)
		res, err := Cube(pts, k)
		if err != nil {
			t.Fatal(err)
		}
		bound := CubeBound(k-d, d) // conservative: budget minus padding
		if res.MRR > bound+1e-9 {
			t.Fatalf("trial %d (d=%d k=%d): regret %v exceeds CUBE bound %v",
				trial, d, k, res.MRR, bound)
		}
	}
}

// TestCubeWorseOrEqualToGreedy: CUBE is the cheap baseline; the
// greedy should (weakly) beat it almost always. We assert only a
// loose relationship to avoid flaky adversarial draws.
func TestCubeVsGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	worseCount := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		pts := antiCorrelated(rng, 200, 3)
		k := 8 + rng.Intn(10)
		cube, err := Cube(pts, k)
		if err != nil {
			t.Fatal(err)
		}
		geo, err := GeoGreedy(pts, k)
		if err != nil {
			t.Fatal(err)
		}
		if cube.MRR > geo.MRR-1e-12 {
			worseCount++
		}
	}
	if worseCount < trials/2 {
		t.Fatalf("CUBE beat the greedy in %d/%d trials — suspicious", trials-worseCount, trials)
	}
}

func TestCubeBoundEdgeCases(t *testing.T) {
	if CubeBound(5, 1) != 1 || CubeBound(2, 4) != 1 {
		t.Fatal("degenerate bounds should be 1")
	}
	if b := CubeBound(100, 2); b <= 0 || b >= 1 {
		t.Fatalf("bound %v", b)
	}
}
